// Figure 7: box-and-whisker plot of application-launch execution time
// under {Stock, Shared PTP & TLB} x {original, 2MB alignment}.
//
// Paper shape: sharing improves launch time by 7% with the original
// alignment and 10% with 2 MB alignment.

#include "bench/launch_experiment.h"

namespace sat {
namespace {

int Run(const BenchOptions& options) {
  PrintHeader("Figure 7", "Application launch execution time (cycles)");

  LaunchExperiment experiment = MakeLaunchExperiment(
      "fig7", options, /*rounds=*/options.smoke ? 10 : 30, /*warmup=*/3);
  if (!experiment.Run()) {
    return 1;
  }
  const std::vector<LaunchSeries>& series = experiment.series;

  TablePrinter table({"Config", "min", "Q1", "median", "Q3", "max"});
  for (const LaunchSeries& s : series) {
    if (s.rounds.empty()) {
      continue;  // filtered out by --config
    }
    const FiveNumberSummary summary = Summarize(s.ExecCycles());
    table.AddRow({s.config.Name(), FormatDouble(summary.minimum / 1e6, 2),
                  FormatDouble(summary.q1 / 1e6, 2),
                  FormatDouble(summary.median / 1e6, 2),
                  FormatDouble(summary.q3 / 1e6, 2),
                  FormatDouble(summary.maximum / 1e6, 2)});
  }
  std::cout << "(all values x10^6 cycles)\n";
  table.Print(std::cout);
  if (options.phys_mb > 0) {
    PrintLaunchPressureSummaries(experiment);
  }
  if (!experiment.ran_all()) {
    std::cout << "\n--config filter active: cross-config shape checks "
                 "skipped\n";
    return 0;
  }

  const double stock = Median(series[0].ExecCycles());
  const double shared = Median(series[1].ExecCycles());
  const double stock_2mb = Median(series[2].ExecCycles());
  const double shared_2mb = Median(series[3].ExecCycles());

  std::cout << "\n";
  bool ok = true;
  ok &= ShapeCheck(std::cout, "launch speed improvement, original align (%)",
                   7.0, (1.0 - shared / stock) * 100.0, 0.6);
  ok &= ShapeCheck(std::cout, "launch speed improvement, 2MB align (%)", 10.0,
                   (1.0 - shared_2mb / stock_2mb) * 100.0, 0.6);
  // Ordering: 2MB sharing is the best configuration.
  ok &= ShapeCheck(std::cout, "2MB-shared beats original-shared (ratio < 1)",
                   0.97, shared_2mb / shared, 0.1);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  return sat::Run(options);
}
