// Extension experiment — multi-core TLB shootdown cost, the dimension the
// paper's single-core evaluation leaves unmeasured.
//
// Sharing page tables adds a new source of cross-core TLB maintenance:
// every unshare must invalidate stale translations on every core the
// process has used. This bench runs concurrent app workloads (one per
// core, each dirtying library data and thereby unsharing PTPs) on 1-4
// cores under the stock and shared kernels, and reports shootdown
// broadcasts, IPIs, and the initiator cycles burned waiting for them —
// quantifying how much of the fork/fault savings SMP maintenance gives
// back (answer: very little). One harness job per (cores, kernel) cell.

#include <array>

#include "bench/common.h"

namespace sat {
namespace {

struct SmpRow {
  uint32_t cores = 0;
  bool shared = false;
  bool ran = false;
  uint64_t shootdowns = 0;
  uint64_t ipis = 0;
  double ipi_mcycles = 0;
  uint64_t file_faults = 0;
  uint64_t unshares = 0;
};

SmpRow RunConcurrentApps(System& system, uint32_t cores, bool shared) {
  Kernel& kernel = system.kernel();

  // One app per core; each executes shared code and dirties library data
  // in an interleaved round-robin, so unshares happen while the victims'
  // translations are live on other cores.
  const char* kApps[] = {"Email", "Angrybirds", "Google Calendar",
                         "Adobe Reader"};
  std::vector<Task*> apps;
  std::vector<AppFootprint> footprints;
  for (uint32_t i = 0; i < cores; ++i) {
    footprints.push_back(
        system.workload().Generate(AppProfile::Named(kApps[i])));
    apps.push_back(system.android().ForkApp(footprints.back().app_name));
    kernel.ScheduleTo(*apps.back(), i);
  }

  kernel.machine().ResetShootdownStats();
  const KernelCounters kernel_before = kernel.counters();

  // Interleave: each round, every app fetches a slice of its code and
  // performs one library-data write. Apps migrate across cores every few
  // rounds, as a real scheduler would move them — which is what spreads
  // their cpumasks and makes unshares pay cross-core IPIs.
  const size_t rounds = 120;
  for (size_t round = 0; round < rounds; ++round) {
    const uint32_t rotation = static_cast<uint32_t>(round / 10) % cores;
    for (uint32_t i = 0; i < cores; ++i) {
      const uint32_t core_id = (i + rotation) % cores;
      const AppFootprint& fp = footprints[i];
      kernel.ScheduleTo(*apps[i], core_id);
      for (size_t k = 0; k < 12; ++k) {
        const TouchedPage& page =
            fp.pages[(round * 12 + k * 7) % fp.pages.size()];
        if (!IsZygotePreloadedCategory(page.category)) {
          continue;
        }
        kernel.core(core_id).FetchLine(
            system.android().CodePageVa(page.lib, page.page_index));
      }
      if (!fp.data_writes.empty()) {
        const DataWrite& write = fp.data_writes[round % fp.data_writes.size()];
        kernel.core(core_id).Store(
            system.android().DataPageVa(write.lib, write.page_index));
      }
    }
  }

  SmpRow row;
  row.cores = cores;
  row.shared = shared;
  row.ran = true;
  row.shootdowns = kernel.machine().shootdown_stats().shootdowns;
  row.ipis = kernel.machine().shootdown_stats().ipis;
  row.ipi_mcycles = static_cast<double>(row.ipis) *
                    static_cast<double>(kernel.costs().tlb_shootdown_ipi) / 1e6;
  const KernelCounters delta = kernel.counters() - kernel_before;
  row.file_faults = delta.faults_file_backed;
  row.unshares = delta.ptps_unshared;
  for (Task* app : apps) {
    kernel.Exit(*app);
  }
  return row;
}

int Run(const BenchOptions& options) {
  PrintHeader("Extension",
              "TLB shootdown cost of PTP sharing on 1-4 cores (concurrent "
              "apps, one per core)");

  std::array<SmpRow, 6> rows;
  Harness harness("smp", options);
  size_t n = 0;
  for (uint32_t cores : {1u, 2u, 4u}) {
    for (bool shared : {false, true}) {
      SystemConfig config =
          shared ? ConfigByName("shared-ptp-tlb") : ConfigByName("stock");
      config.num_cores = cores;
      harness.AddJob(
          std::string(shared ? "shared-ptp-tlb" : "stock") + "/cores" +
              std::to_string(cores),
          config,
          [&rows, n, cores, shared](System& system, JobRecord& record) {
            rows[n] = RunConcurrentApps(system, cores, shared);
            record.Metric("smp.unshares",
                          static_cast<double>(rows[n].unshares));
            record.Metric("smp.shootdowns",
                          static_cast<double>(rows[n].shootdowns));
            record.Metric("smp.ipis", static_cast<double>(rows[n].ipis));
            record.Metric("smp.ipi_mcycles", rows[n].ipi_mcycles);
            record.Metric("smp.file_faults",
                          static_cast<double>(rows[n].file_faults));
          });
      n++;
    }
  }
  if (!harness.Run()) {
    return 1;
  }

  TablePrinter table({"Cores", "Kernel", "unshares", "shootdowns", "IPIs",
                      "IPI wait (Mcycles)", "file faults"});
  for (const SmpRow& row : rows) {
    if (!row.ran) {
      continue;  // Skipped by --config.
    }
    table.AddRow({std::to_string(row.cores),
                  row.shared ? "Shared PTP & TLB" : "Stock Android",
                  std::to_string(row.unshares), std::to_string(row.shootdowns),
                  std::to_string(row.ipis), FormatDouble(row.ipi_mcycles, 3),
                  std::to_string(row.file_faults)});
  }
  table.Print(std::cout);

  if (!harness.ran_all()) {
    std::cout << "\n--config filter active: cross-config shape checks "
                 "skipped\n";
    return 0;
  }

  std::cout << "\n";
  bool ok = true;
  // Single core: sharing costs no IPIs at all.
  ok &= ShapeCheck(std::cout, "1-core shared kernel IPIs", 0,
                   static_cast<double>(rows[1].ipis), 0.01);
  // Sharing performs unshares; stock has none.
  ok &= ShapeCheck(std::cout, "stock kernel unshares (4 cores)", 0,
                   static_cast<double>(rows[4].unshares), 0.01);
  ok &= ShapeCheck(std::cout, "shared kernel unshares occur (4 cores)", 1.0,
                   rows[5].unshares > 0 ? 1.0 : 0.0, 0.01);
  // With migration, multi-core unshares do pay IPIs...
  ok &= ShapeCheck(std::cout, "4-core shared kernel sends IPIs", 1.0,
                   rows[5].ipis > 0 ? 1.0 : 0.0, 0.01);
  // ...but the headline holds: even at 4 cores, the IPI wait burned by
  // sharing's unshares is well under one zygote fork's savings
  // (~1.5 Mcycles).
  ok &= ShapeCheck(std::cout, "4-core shared IPI wait < 1.5 Mcycles", 1.0,
                   rows[5].ipi_mcycles < 1.5 ? 1.0 : 0.0, 0.01);
  // Sharing still eliminates faults in the concurrent setting.
  ok &= ShapeCheck(std::cout, "shared faults < stock faults (4 cores)", 1.0,
                   rows[5].file_faults < rows[4].file_faults ? 1.0 : 0.0,
                   0.01);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseBenchOptions(&argc, argv);
  return sat::Run(options);
}
