// Extension experiment — many-core TLB shootdown scaling, the dimension
// the paper's single-core evaluation leaves unmeasured.
//
// Sharing page tables makes one PTE visible to N address spaces, so every
// PTE mutation (unshare, KSM unmerge, swap-out) is a cross-core stale-TLB
// hazard. This bench runs an unshare/unmerge/swap-out *storm* — 2 apps
// per core executing shared code, dirtying library data, rewriting
// mergeable anonymous pages between ksmd passes, under periodic swap-out
// pressure — and sweeps cores × shootdown policy:
//
//   cores  ∈ {4, 16, 32}          (16 only under --smoke)
//   policy ∈ {immediate, batched}
//
// reporting shootdown broadcasts, IPIs, IPI wait cycles, batch-queue
// stats, and per-fork latency per cell. The headline: batched deferred
// flushing collapses the per-PTE IPI storms into one IPI per remote core
// per kernel sync point — ≥5x fewer IPIs at 32 cores — while converging
// to the same machine state (tests/smp_test.cc proves the equivalence).

#include <vector>

#include "bench/common.h"

namespace sat {
namespace {

struct StormRow {
  uint32_t cores = 0;
  bool batched = false;
  bool ran = false;
  uint64_t procs = 0;
  uint64_t shootdowns = 0;
  uint64_t ipis = 0;
  double ipi_mcycles = 0;
  uint64_t batch_drains = 0;
  uint64_t batch_overflows = 0;
  double fork_kcycles = 0;
  uint64_t unshares = 0;
  uint64_t ksm_unmerges = 0;
  uint64_t swap_outs = 0;
};

// The storm: every app round-robins across the cores (spreading its
// cpumask), executes shared library code, unshares library data pages,
// and rewrites mergeable anonymous pages that periodic ksmd passes keep
// re-merging; every third round a swap-out pass harvests young pages.
// All three mutation sources shoot down sharer TLBs.
StormRow RunStorm(System& system, uint32_t cores, bool batched, bool smoke) {
  Kernel& kernel = system.kernel();
  StormRow row;
  row.cores = cores;
  row.batched = batched;
  row.ran = true;
  row.procs = 2 * cores;

  const LibraryImage* libc = system.android().catalog().FindByName("libc.so");

  // Fork the fleet (2 apps per core) and measure mean per-fork latency.
  const Cycles fork_begin = kernel.machine().TotalCycles();
  std::vector<Task*> apps;
  for (uint64_t i = 0; i < row.procs; ++i) {
    Task* app = system.android().ForkApp("storm" + std::to_string(i));
    kernel.ScheduleTo(*app, static_cast<uint32_t>(i) % cores);
    apps.push_back(app);
  }
  row.fork_kcycles =
      static_cast<double>(kernel.machine().TotalCycles() - fork_begin) /
      static_cast<double>(row.procs) / 1e3;

  // One 8-page mergeable anonymous region per app, written with a small
  // content alphabet so ksmd finds duplicates across apps.
  constexpr uint32_t kAnonPages = 8;
  std::vector<VirtAddr> anon;
  for (uint64_t i = 0; i < row.procs; ++i) {
    MmapRequest request;
    request.length = kAnonPages * kPageSize;
    request.prot = VmProt::ReadWrite();
    request.kind = VmKind::kAnonPrivate;
    request.mergeable = true;
    const VirtAddr at = kernel.Mmap(*apps[i], request).value;
    anon.push_back(at);
    for (uint32_t p = 0; p < kAnonPages; ++p) {
      kernel.WritePage(*apps[i], at + p * kPageSize, p % 3);
    }
  }

  kernel.machine().ResetShootdownStats();
  const KernelCounters before = kernel.counters();

  const uint32_t rounds = smoke ? 6 : 18;
  for (uint32_t round = 0; round < rounds; ++round) {
    for (uint64_t i = 0; i < row.procs; ++i) {
      const uint32_t core_id = (static_cast<uint32_t>(i) + round) % cores;
      kernel.ScheduleTo(*apps[i], core_id);
      for (uint32_t k = 0; k < 6; ++k) {
        kernel.core(core_id).FetchLine(system.android().CodePageVa(
            libc->id, (round * 6 + k) % libc->code_pages));
      }
      // Unshare storm: dirty a shared library data page.
      kernel.core(core_id).Store(system.android().DataPageVa(
          libc->id, (static_cast<uint32_t>(i) + round) % libc->data_pages));
      // Unmerge storm: rewrite a page ksmd may have merged since.
      kernel.WritePage(*apps[i], anon[i] + (round % kAnonPages) * kPageSize,
                       (round + i) % 3);
    }
    if (round % 3 == 0) {
      kernel.RunKsmScan();           // merge duplicates (write-protects)
      kernel.SwapOutAnonPages(64);   // swap-out storm (young harvest)
    }
  }

  const KernelCounters delta = kernel.counters() - before;
  const ShootdownStats& stats = kernel.machine().shootdown_stats();
  row.shootdowns = stats.shootdowns;
  row.ipis = stats.ipis;
  row.ipi_mcycles = static_cast<double>(stats.ipis) *
                    static_cast<double>(kernel.costs().tlb_shootdown_ipi) / 1e6;
  row.batch_drains = stats.batch_drains;
  row.batch_overflows = stats.batch_overflows;
  row.unshares = delta.ptps_unshared;
  row.ksm_unmerges = delta.ksm_unmerge_faults;
  row.swap_outs = delta.swap_outs;
  for (Task* app : apps) {
    kernel.Exit(*app);
  }
  return row;
}

int Run(const BenchOptions& options) {
  PrintHeader("Extension",
              "Many-core shootdown scaling: cores x shootdown policy on an "
              "unshare/unmerge/swap-out storm (2 apps per core)");

  const std::vector<uint32_t> core_counts =
      options.smoke ? std::vector<uint32_t>{16}
                    : std::vector<uint32_t>{4, 16, 32};
  std::vector<StormRow> rows(core_counts.size() * 2);
  Harness harness("smp", options);
  size_t n = 0;
  for (uint32_t cores : core_counts) {
    for (bool batched : {false, true}) {
      SystemConfig config = ConfigByName("shared-ptp-tlb");
      config.num_cores = cores;
      config.shootdown_policy = batched ? ShootdownPolicy::kBatched
                                        : ShootdownPolicy::kImmediate;
      config.swap_bytes = 32ull * 1024 * 1024;
      config.ksm = true;
      const bool smoke = options.smoke;
      harness.AddJob(
          std::string(batched ? "batched" : "immediate") + "/cores" +
              std::to_string(cores),
          config,
          [&rows, n, cores, batched, smoke](System& system,
                                            JobRecord& record) {
            rows[n] = RunStorm(system, cores, batched, smoke);
            const StormRow& row = rows[n];
            record.Metric("smp.procs", static_cast<double>(row.procs));
            record.Metric("smp.shootdowns",
                          static_cast<double>(row.shootdowns));
            record.Metric("smp.ipis", static_cast<double>(row.ipis));
            record.Metric("smp.ipi_mcycles", row.ipi_mcycles);
            record.Metric("smp.batch_drains",
                          static_cast<double>(row.batch_drains));
            record.Metric("smp.batch_overflows",
                          static_cast<double>(row.batch_overflows));
            record.Metric("smp.fork_kcycles", row.fork_kcycles);
            record.Metric("smp.unshares", static_cast<double>(row.unshares));
            record.Metric("smp.ksm_unmerges",
                          static_cast<double>(row.ksm_unmerges));
            record.Metric("smp.swap_outs",
                          static_cast<double>(row.swap_outs));
          });
      n++;
    }
  }
  if (!harness.Run()) {
    return 1;
  }

  TablePrinter table({"Cores", "Policy", "procs", "shootdowns", "IPIs",
                      "IPI wait (Mcycles)", "drains", "fork (kcycles)",
                      "unshares", "unmerges", "swap-outs"});
  for (const StormRow& row : rows) {
    if (!row.ran) {
      continue;  // Skipped by --config.
    }
    table.AddRow({std::to_string(row.cores),
                  row.batched ? "batched" : "immediate",
                  std::to_string(row.procs), std::to_string(row.shootdowns),
                  std::to_string(row.ipis), FormatDouble(row.ipi_mcycles, 3),
                  std::to_string(row.batch_drains),
                  FormatDouble(row.fork_kcycles, 1),
                  std::to_string(row.unshares),
                  std::to_string(row.ksm_unmerges),
                  std::to_string(row.swap_outs)});
  }
  table.Print(std::cout);

  if (!harness.ran_all()) {
    std::cout << "\n--config filter active: cross-config shape checks "
                 "skipped\n";
    return 0;
  }

  std::cout << "\n";
  bool ok = true;
  for (size_t i = 0; i < core_counts.size(); ++i) {
    const StormRow& immediate = rows[2 * i];
    const StormRow& batched = rows[2 * i + 1];
    const std::string at = " @" + std::to_string(immediate.cores) + " cores";
    // Both policies drive the same storm: identical mutation work.
    ok &= ShapeCheck(std::cout, "same unshares across policies" + at,
                     static_cast<double>(immediate.unshares),
                     static_cast<double>(batched.unshares), 0.01);
    ok &= ShapeCheck(std::cout, "storm sends IPIs (immediate)" + at, 1.0,
                     immediate.ipis > 0 ? 1.0 : 0.0, 0.01);
    // The headline: batching coalesces per-PTE IPIs into per-drain IPIs.
    const double reduction =
        batched.ipis > 0 ? static_cast<double>(immediate.ipis) /
                               static_cast<double>(batched.ipis)
                         : static_cast<double>(immediate.ipis);
    ok &= ShapeCheck(std::cout,
                     "batched sends >=5x fewer IPIs" + at, 1.0,
                     reduction >= 5.0 ? 1.0 : 0.0, 0.01);
  }
  if (!options.smoke) {
    // IPI volume grows with core count under immediate shootdowns (the
    // scaling problem), far slower under batching (the fix).
    ok &= ShapeCheck(std::cout, "immediate IPIs grow 4 -> 32 cores", 1.0,
                     rows[4].ipis > rows[0].ipis ? 1.0 : 0.0, 0.01);
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  return sat::Run(options);
}
