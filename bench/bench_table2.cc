// Table 2: pairwise intersection of instruction footprints — the % of all
// instruction pages accessed by the row application whose zygote-preloaded
// (all shared, in brackets) code pages are also accessed by the column
// application. Plus the all-apps averages (paper: 37.9% / 45.7%).

#include "bench/common.h"
#include "src/workload/analysis.h"

namespace sat {
namespace {

int Run() {
  PrintHeader("Table 2",
              "% of row app's instruction footprint intersecting column app: "
              "zygote-preloaded (all shared code)");

  LibraryCatalog catalog = LibraryCatalog::AndroidDefault();
  WorkloadFactory factory(&catalog);

  const auto apps = AppProfile::PaperBenchmarks();
  std::vector<AppFootprint> fps;
  for (const AppProfile& app : apps) {
    fps.push_back(factory.Generate(app));
  }

  // The 4-app matrix the paper prints.
  const char* kShown[] = {"Adobe Reader", "Android Browser", "MX Player",
                          "Laya Music Player"};
  auto index_of = [&](const std::string& name) {
    for (size_t i = 0; i < apps.size(); ++i) {
      if (apps[i].name == name) {
        return i;
      }
    }
    return apps.size();
  };

  TablePrinter table({"", kShown[0], kShown[1], kShown[2], kShown[3]});
  for (const char* row_name : kShown) {
    std::vector<std::string> cells = {row_name};
    const size_t row = index_of(row_name);
    for (const char* col_name : kShown) {
      const size_t col = index_of(col_name);
      if (row == col) {
        cells.push_back("-");
        continue;
      }
      const double zygote = IntersectionFraction(fps[row], fps[col], true);
      const double all = IntersectionFraction(fps[row], fps[col], false);
      cells.push_back(FormatDouble(zygote * 100, 2) + " (" +
                      FormatDouble(all * 100, 2) + ")");
    }
    table.AddRow(cells);
  }
  table.Print(std::cout);

  // All-apps averages.
  double zygote_sum = 0;
  double all_sum = 0;
  uint32_t pairs = 0;
  for (size_t row = 0; row < fps.size(); ++row) {
    for (size_t col = 0; col < fps.size(); ++col) {
      if (row == col) {
        continue;
      }
      zygote_sum += IntersectionFraction(fps[row], fps[col], true);
      all_sum += IntersectionFraction(fps[row], fps[col], false);
      pairs++;
    }
  }
  std::cout << "\n";
  bool ok = true;
  ok &= ShapeCheck(std::cout, "avg zygote-preloaded intersection %", 37.9,
                   zygote_sum / pairs * 100, 0.25);
  ok &= ShapeCheck(std::cout, "avg all-shared-code intersection %", 45.7,
                   all_sum / pairs * 100, 0.25);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main() { return sat::Run(); }
