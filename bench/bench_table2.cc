// Table 2: pairwise intersection of instruction footprints — the % of all
// instruction pages accessed by the row application whose zygote-preloaded
// (all shared, in brackets) code pages are also accessed by the column
// application. Plus the all-apps averages (paper: 37.9% / 45.7%).
//
// The footprints come from one sequential factory stream, so generation
// and the pairwise matrix run as a single harness job.

#include "bench/common.h"
#include "src/workload/analysis.h"

namespace sat {
namespace {

int Run(const BenchOptions& options) {
  PrintHeader("Table 2",
              "% of row app's instruction footprint intersecting column app: "
              "zygote-preloaded (all shared code)");

  const auto apps = AppProfile::PaperBenchmarks();
  std::vector<AppFootprint> fps(apps.size());
  double zygote_avg = 0;
  double all_avg = 0;

  Harness harness("table2", options);
  harness.AddCustomJob("intersections", [&](JobRecord& record) {
    LibraryCatalog catalog = LibraryCatalog::AndroidDefault();
    WorkloadFactory factory(&catalog);
    for (size_t i = 0; i < apps.size(); ++i) {
      fps[i] = factory.Generate(apps[i]);
    }
    double zygote_sum = 0;
    double all_sum = 0;
    uint32_t pairs = 0;
    for (size_t row = 0; row < fps.size(); ++row) {
      for (size_t col = 0; col < fps.size(); ++col) {
        if (row == col) {
          continue;
        }
        zygote_sum += IntersectionFraction(fps[row], fps[col], true);
        all_sum += IntersectionFraction(fps[row], fps[col], false);
        pairs++;
      }
    }
    zygote_avg = zygote_sum / pairs * 100;
    all_avg = all_sum / pairs * 100;
    record.Metric("pairs", pairs);
    record.Metric("avg.zygote_intersection_pct", zygote_avg);
    record.Metric("avg.all_shared_intersection_pct", all_avg);
  });
  if (!harness.Run()) {
    return 1;
  }

  // The 4-app matrix the paper prints.
  const char* kShown[] = {"Adobe Reader", "Android Browser", "MX Player",
                          "Laya Music Player"};
  auto index_of = [&](const std::string& name) {
    for (size_t i = 0; i < apps.size(); ++i) {
      if (apps[i].name == name) {
        return i;
      }
    }
    return apps.size();
  };

  TablePrinter table({"", kShown[0], kShown[1], kShown[2], kShown[3]});
  for (const char* row_name : kShown) {
    std::vector<std::string> cells = {row_name};
    const size_t row = index_of(row_name);
    for (const char* col_name : kShown) {
      const size_t col = index_of(col_name);
      if (row == col) {
        cells.push_back("-");
        continue;
      }
      const double zygote = IntersectionFraction(fps[row], fps[col], true);
      const double all = IntersectionFraction(fps[row], fps[col], false);
      cells.push_back(FormatDouble(zygote * 100, 2) + " (" +
                      FormatDouble(all * 100, 2) + ")");
    }
    table.AddRow(cells);
  }
  table.Print(std::cout);

  std::cout << "\n";
  bool ok = true;
  ok &= ShapeCheck(std::cout, "avg zygote-preloaded intersection %", 37.9,
                   zygote_avg, 0.25);
  ok &= ShapeCheck(std::cout, "avg all-shared-code intersection %", 45.7,
                   all_avg, 0.25);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  return sat::Run(options);
}
