// Shared driver for the application-launch experiments (Figures 7-9):
// repeated Helloworld launches under the four kernel/alignment
// configurations, through the full cycle-level pipeline.

#ifndef BENCH_LAUNCH_EXPERIMENT_H_
#define BENCH_LAUNCH_EXPERIMENT_H_

#include <vector>

#include "bench/common.h"

namespace sat {

struct LaunchSeries {
  SystemConfig config;
  std::vector<LaunchResult> rounds;

  std::vector<double> ExecCycles() const {
    std::vector<double> out;
    for (const LaunchResult& r : rounds) {
      out.push_back(static_cast<double>(r.exec_cycles));
    }
    return out;
  }
  std::vector<double> IcacheStalls() const {
    std::vector<double> out;
    for (const LaunchResult& r : rounds) {
      out.push_back(static_cast<double>(r.icache_stall_cycles));
    }
    return out;
  }
  double MedianFileFaults() const {
    std::vector<double> out;
    for (const LaunchResult& r : rounds) {
      out.push_back(static_cast<double>(r.file_faults));
    }
    return Median(out);
  }
  double MedianPtps() const {
    std::vector<double> out;
    for (const LaunchResult& r : rounds) {
      out.push_back(static_cast<double>(r.ptps_allocated));
    }
    return Median(out);
  }
};

// Runs `rounds` launches per configuration. The first `warmup` rounds are
// dropped from the series: the paper's 100-execution box plots are
// dominated by the steady state, which sharing reaches after the shared
// PTPs are populated. `phys_mb` overrides each machine's physical memory
// (0 keeps the 512 MB default); pressure outcomes are printed per config.
inline std::vector<LaunchSeries> RunLaunchExperiment(int rounds, int warmup,
                                                     uint64_t phys_mb = 0) {
  std::vector<LaunchSeries> out;
  for (const SystemConfig& base : LaunchConfigs()) {
    const SystemConfig config = WithPhysMb(base, phys_mb);
    LaunchSeries series;
    series.config = config;
    System system(config);
    LaunchSimulator simulator(&system.android(), LaunchParams{});
    for (int round = 0; round < rounds + warmup; ++round) {
      const LaunchResult result =
          simulator.LaunchOnce(static_cast<uint32_t>(round));
      if (round >= warmup) {
        series.rounds.push_back(result);
      }
    }
    if (phys_mb > 0) {
      PrintPressureSummary(system);
    }
    out.push_back(std::move(series));
  }
  return out;
}

}  // namespace sat

#endif  // BENCH_LAUNCH_EXPERIMENT_H_
