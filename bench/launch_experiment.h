// Shared driver for the application-launch experiments (Figures 7-9):
// repeated Helloworld launches under the four kernel/alignment
// configurations, through the full cycle-level pipeline.
//
// Each configuration is one independent harness job (its own System), so
// the four series run concurrently under --jobs and come back in the
// paper's presentation order regardless of worker count.

#ifndef BENCH_LAUNCH_EXPERIMENT_H_
#define BENCH_LAUNCH_EXPERIMENT_H_

#include <string>
#include <vector>

#include "bench/common.h"

namespace sat {

struct LaunchSeries {
  SystemConfig config;
  std::vector<LaunchResult> rounds;

  std::vector<double> ExecCycles() const {
    std::vector<double> out;
    for (const LaunchResult& r : rounds) {
      out.push_back(static_cast<double>(r.exec_cycles));
    }
    return out;
  }
  std::vector<double> IcacheStalls() const {
    std::vector<double> out;
    for (const LaunchResult& r : rounds) {
      out.push_back(static_cast<double>(r.icache_stall_cycles));
    }
    return out;
  }
  double MedianFileFaults() const {
    std::vector<double> out;
    for (const LaunchResult& r : rounds) {
      out.push_back(static_cast<double>(r.file_faults));
    }
    return Median(out);
  }
  double MedianPtps() const {
    std::vector<double> out;
    for (const LaunchResult& r : rounds) {
      out.push_back(static_cast<double>(r.ptps_allocated));
    }
    return Median(out);
  }
};

// Registry keys of LaunchConfigs(), in the same order.
inline const std::vector<std::string>& LaunchConfigKeys() {
  static const std::vector<std::string> keys = {
      "stock", "shared-ptp-tlb", "stock-2mb", "shared-ptp-tlb-2mb"};
  return keys;
}

// A launch experiment bound to a harness: one job per configuration,
// `rounds` launches each after `warmup` dropped rounds (the paper's
// 100-execution box plots are dominated by the steady state, which
// sharing reaches after the shared PTPs are populated). series[i] stays
// empty when --config filtered configuration i out.
struct LaunchExperiment {
  Harness harness;
  std::vector<LaunchSeries> series;

  bool Run() { return harness.Run(); }
  bool ran_all() const { return harness.ran_all(); }
};

inline LaunchExperiment MakeLaunchExperiment(std::string bench,
                                             const BenchOptions& options,
                                             int rounds, int warmup) {
  LaunchExperiment experiment{Harness(std::move(bench), options), {}};
  const std::vector<std::string>& keys = LaunchConfigKeys();
  experiment.series.resize(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    const SystemConfig config = ConfigByName(keys[i]);
    LaunchSeries* series = &experiment.series[i];
    series->config = config;
    experiment.harness.AddJob(
        keys[i], config,
        [series, rounds, warmup](System& system, JobRecord& record) {
          LaunchSimulator simulator(&system.android(), LaunchParams{});
          for (int round = 0; round < rounds + warmup; ++round) {
            const LaunchResult result =
                simulator.LaunchOnce(static_cast<uint32_t>(round));
            if (round >= warmup) {
              series->rounds.push_back(result);
            }
          }
          record.Metric("launch.rounds",
                        static_cast<double>(series->rounds.size()));
          record.Metric("launch.exec_cycles_median",
                        Median(series->ExecCycles()));
          record.Metric("launch.icache_stalls_median",
                        Median(series->IcacheStalls()));
          record.Metric("launch.file_faults_median",
                        series->MedianFileFaults());
          record.Metric("launch.ptps_median", series->MedianPtps());
        });
  }
  return experiment;
}

// Prints the pressure summaries of every executed job (used by the
// launch benches when --phys-mb puts the machines under memory pressure).
inline void PrintLaunchPressureSummaries(const LaunchExperiment& experiment) {
  std::cout << "\n";
  for (const JobRecord& record : experiment.harness.records()) {
    if (!record.metrics.empty()) {
      PrintPressureSummary(record);
    }
  }
}

}  // namespace sat

#endif  // BENCH_LAUNCH_EXPERIMENT_H_
