// Figure 4: CDF of the number of 4 KB pages untouched within each 64 KB
// page of the zygote-preloaded shared code an application maps — the
// sparsity argument against simply using 64 KB large pages for code.
//
// Single-job characterization (the factory stream is order-dependent).

#include "bench/common.h"
#include "src/workload/analysis.h"

namespace sat {
namespace {

double FractionOverNine(const SparsityResult& sparsity) {
  if (sparsity.untouched_per_chunk.empty()) {
    return 0;
  }
  uint32_t over = 0;
  for (uint32_t untouched : sparsity.untouched_per_chunk) {
    if (untouched > 9) {
      over++;
    }
  }
  return static_cast<double>(over) /
         static_cast<double>(sparsity.untouched_per_chunk.size());
}

int Run(const BenchOptions& options) {
  PrintHeader("Figure 4",
              "CDF of # of 4KB pages untouched within a 64KB page of the "
              "zygote-preloaded shared code");

  std::vector<AppFootprint> fps;
  Harness harness("fig4", options);
  harness.AddCustomJob("sparsity", [&](JobRecord& record) {
    LibraryCatalog catalog = LibraryCatalog::AndroidDefault();
    WorkloadFactory factory(&catalog);
    for (const AppProfile& app : AppProfile::PaperBenchmarks()) {
      fps.push_back(factory.Generate(app));
    }
    double over9_sum = 0;
    double ratio_sum = 0;
    for (const AppFootprint& fp : fps) {
      const SparsityResult sparsity = AnalyzeSparsity(fp);
      over9_sum += FractionOverNine(sparsity);
      ratio_sum += sparsity.MemoryBytes64k() / sparsity.MemoryBytes4k();
    }
    const SparsityResult union_sparsity = AnalyzeSparsityUnion(fps);
    const auto n = static_cast<double>(fps.size());
    record.Metric("apps", n);
    record.Metric("avg.over9_pct", over9_sum / n * 100);
    record.Metric("avg.ratio_64k_4k", ratio_sum / n);
    record.Metric("union.ratio_64k_4k", union_sparsity.MemoryBytes64k() /
                                            union_sparsity.MemoryBytes4k());
  });
  if (!harness.Run()) {
    return 1;
  }

  TablePrinter table({"Benchmark", ">9 untouched", "4KB mem (MB)",
                      "64KB mem (MB)", "64KB/4KB"});
  double over9_sum = 0;
  double ratio_sum = 0;
  for (const AppFootprint& fp : fps) {
    const SparsityResult sparsity = AnalyzeSparsity(fp);
    const double over9 = FractionOverNine(sparsity);
    const double ratio = sparsity.MemoryBytes64k() / sparsity.MemoryBytes4k();
    table.AddRow({fp.app_name, FormatPercent(over9),
                  FormatDouble(sparsity.MemoryBytes4k() / 1048576.0, 1),
                  FormatDouble(sparsity.MemoryBytes64k() / 1048576.0, 1),
                  FormatDouble(ratio, 2)});
    over9_sum += over9;
    ratio_sum += ratio;
  }
  const SparsityResult union_sparsity = AnalyzeSparsityUnion(fps);
  table.AddRow({"Union", FormatPercent(FractionOverNine(union_sparsity)),
                FormatDouble(union_sparsity.MemoryBytes4k() / 1048576.0, 1),
                FormatDouble(union_sparsity.MemoryBytes64k() / 1048576.0, 1),
                FormatDouble(union_sparsity.MemoryBytes64k() /
                                 union_sparsity.MemoryBytes4k(),
                             2)});
  table.Print(std::cout);

  // One full CDF series (the figure's x axis runs 15 -> 0).
  std::cout << "\nCDF for " << fps[1].app_name
            << " (P[untouched <= x]), x = 0..15:\n  ";
  const SparsityResult example = AnalyzeSparsity(fps[1]);
  const auto cdf = EmpiricalCdf(example.untouched_per_chunk, 15);
  for (size_t x = 0; x < cdf.size(); ++x) {
    std::cout << FormatDouble(cdf[x] * 100, 0) << "% ";
  }
  std::cout << "\n\n";

  const auto n = static_cast<double>(fps.size());
  bool ok = true;
  // Paper: in 60% of cases more than 9 of 16 pages are untouched; 64 KB
  // pages cost ~2.6x the memory per app; even the union wastes most of
  // each 64 KB page ("7+ pages untouched the majority of the time",
  // 36 MB vs 18 MB => ~2x for the union).
  ok &= ShapeCheck(std::cout, "% of 64KB chunks with >9 pages untouched", 60.0,
                   over9_sum / n * 100, 0.35);
  ok &= ShapeCheck(std::cout, "64KB/4KB memory ratio (per app avg)", 2.6,
                   ratio_sum / n, 0.40);
  ok &= ShapeCheck(std::cout, "64KB/4KB memory ratio (union)", 2.0,
                   union_sparsity.MemoryBytes64k() /
                       union_sparsity.MemoryBytes4k(),
                   0.40);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  return sat::Run(options);
}
