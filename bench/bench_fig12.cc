// Figure 12: percent of each application's page-table pages that are
// shared across address spaces at the end of its execution. Paper shape:
// 39% of PTPs shared with the original alignment, 60% with 2 MB alignment
// (data writes can no longer unshare code PTPs).

#include "bench/common.h"

namespace sat {
namespace {

// Shared-slot fraction at steady state: run the app and inspect its
// address-space shape before exit.
double SharedFraction(const SystemConfig& config, const std::string& app_name) {
  System system(config);
  AppRunner runner(&system.android());
  const AppFootprint fp = system.workload().Generate(AppProfile::Named(app_name));
  const AppRunStats stats = runner.Run(fp, /*exit_after=*/false);
  return stats.SharedSlotFraction();
}

int Run() {
  PrintHeader("Figure 12", "% of the total PTPs that are shared");

  TablePrinter table({"Benchmark", "Shared PTP", "Shared PTP - 2MB"});
  double original_sum = 0;
  double aligned_sum = 0;
  const auto apps = AppProfile::PaperBenchmarks();
  for (const AppProfile& app : apps) {
    const double original = SharedFraction(SystemConfig::SharedPtp(), app.name);
    const double aligned = SharedFraction(SystemConfig::SharedPtp2Mb(), app.name);
    table.AddRow({app.name, FormatPercent(original), FormatPercent(aligned)});
    original_sum += original;
    aligned_sum += aligned;
  }
  table.Print(std::cout);

  const auto n = static_cast<double>(apps.size());
  std::cout << "\n";
  bool ok = true;
  ok &= ShapeCheck(std::cout, "avg % PTPs shared, original align", 39.0,
                   original_sum / n * 100, 0.4);
  ok &= ShapeCheck(std::cout, "avg % PTPs shared, 2MB align", 60.0,
                   aligned_sum / n * 100, 0.35);
  ok &= ShapeCheck(std::cout, "2MB shares a larger fraction", 1.0,
                   aligned_sum > original_sum ? 1.0 : 0.0, 0.01);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main() { return sat::Run(); }
