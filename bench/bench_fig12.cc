// Figure 12: percent of each application's page-table pages that are
// shared across address spaces at the end of its execution. Paper shape:
// 39% of PTPs shared with the original alignment, 60% with 2 MB alignment
// (data writes can no longer unshare code PTPs).
//
// One harness job per (configuration, application) pair — 22 independent
// systems.

#include <array>

#include "bench/common.h"

namespace sat {
namespace {

const char* kKeys[] = {"shared-ptp", "shared-ptp-2mb"};

int Run(const BenchOptions& options) {
  PrintHeader("Figure 12", "% of the total PTPs that are shared");

  const auto apps = AppProfile::PaperBenchmarks();
  std::vector<std::array<double, 2>> fractions(apps.size());
  Harness harness("fig12", options);
  for (size_t i = 0; i < apps.size(); ++i) {
    for (size_t c = 0; c < 2; ++c) {
      // Shared-slot fraction at steady state: run the app and inspect its
      // address-space shape before exit.
      harness.AddJob(std::string(kKeys[c]) + "/" + apps[i].name,
                     ConfigByName(kKeys[c]),
                     [&fractions, i, c, name = apps[i].name](
                         System& system, JobRecord& record) {
                       AppRunner runner(&system.android());
                       const AppFootprint fp = system.workload().Generate(
                           AppProfile::Named(name));
                       const AppRunStats stats =
                           runner.Run(fp, /*exit_after=*/false);
                       fractions[i][c] = stats.SharedSlotFraction();
                       record.Metric("shared_slot_fraction", fractions[i][c]);
                     });
    }
  }
  if (!harness.Run()) {
    return 1;
  }
  if (!harness.ran_all()) {
    TablePrinter partial({"Job", "shared slot fraction"});
    for (const JobRecord& record : harness.records()) {
      if (!record.metrics.empty()) {
        partial.AddRow(
            {record.config,
             FormatPercent(MetricOr(record, "shared_slot_fraction"))});
      }
    }
    partial.Print(std::cout);
    std::cout << "\n--config filter active: shape checks skipped\n";
    return 0;
  }

  TablePrinter table({"Benchmark", "Shared PTP", "Shared PTP - 2MB"});
  double original_sum = 0;
  double aligned_sum = 0;
  for (size_t i = 0; i < apps.size(); ++i) {
    table.AddRow({apps[i].name, FormatPercent(fractions[i][0]),
                  FormatPercent(fractions[i][1])});
    original_sum += fractions[i][0];
    aligned_sum += fractions[i][1];
  }
  table.Print(std::cout);

  const auto n = static_cast<double>(apps.size());
  std::cout << "\n";
  bool ok = true;
  ok &= ShapeCheck(std::cout, "avg % PTPs shared, original align", 39.0,
                   original_sum / n * 100, 0.4);
  ok &= ShapeCheck(std::cout, "avg % PTPs shared, 2MB align", 60.0,
                   aligned_sum / n * 100, 0.35);
  ok &= ShapeCheck(std::cout, "2MB shares a larger fraction", 1.0,
                   aligned_sum > original_sum ? 1.0 : 0.0, 0.01);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  return sat::Run(options);
}
