// Extension experiment — the numaPTE question: on a multi-node machine,
// is the paper's page-table *sharing* compatible with page-table
// *locality*?
//
// Sharing concentrates every process's hot L2 PTPs on the node that
// first touched them (the zygote's), so hardware walks from every other
// node fetch PTEs from remote DRAM. numaPTE-style replication spends one
// 4 KB frame per node per hot PTP to make every walk node-local. Stock
// (unshared) tables inherit the zygote's placement too — fork copies
// them on the forking node — but being sole-owner they can simply be
// *migrated* to the walking node, an option sharing forecloses. This
// bench sweeps the whole frontier:
//
//   cores     ∈ {16, 32, 64}       (32 only under --smoke)
//   sharing   ∈ {stock, shared-ptp-tlb}
//   placement ∈ {local, replicate, migrate}     (4 NUMA nodes)
//
// reporting walk counts, the remote-walk fraction, replica-served walks,
// PTP memory (masters + replicas), numad activity, and IPIs per cell.
// The headline: at 32+ cores, replication cuts the shared design's
// remote-walk fraction by >=5x for a replica overhead of a few hot PTPs
// x (nodes-1) frames — far below stock's per-process table bill.

#include <string>
#include <vector>

#include "bench/common.h"

namespace sat {
namespace {

struct NumaRow {
  uint32_t cores = 0;
  bool shared = false;
  PtPlacement placement = PtPlacement::kLocal;
  bool ran = false;
  uint64_t walks = 0;
  double remote_frac = 0;
  double replica_frac = 0;
  double ptp_kb = 0;       // masters + replicas
  double replica_kb = 0;   // replicas alone
  uint64_t promotions = 0;
  uint64_t migrations = 0;
  uint64_t numad_runs = 0;
  uint64_t ipis = 0;
};

// One app per core, every app walking the zygote-preloaded libc from its
// own core: a warm-up phase accumulates the walk statistics numad's
// policy runs on, one explicit numad pass applies the placement, and the
// measured phase counts where the walks land afterwards.
NumaRow RunCell(System& system, uint32_t cores, bool shared,
                PtPlacement placement) {
  Kernel& kernel = system.kernel();
  NumaRow row;
  row.cores = cores;
  row.shared = shared;
  row.placement = placement;
  row.ran = true;

  const LibraryImage* libc = system.android().catalog().FindByName("libc.so");
  std::vector<Task*> apps;
  for (uint32_t i = 0; i < cores; ++i) {
    Task* app = system.android().ForkApp("numa" + std::to_string(i));
    kernel.ScheduleTo(*app, i);
    apps.push_back(app);
  }

  // Warm-up: each app touches a window of shared code pages from its own
  // core, crossing the numad promotion threshold on the hot PTPs.
  constexpr uint32_t kWindow = 12;
  for (uint32_t i = 0; i < cores; ++i) {
    kernel.ScheduleTo(*apps[i], i);
    for (uint32_t k = 0; k < kWindow; ++k) {
      kernel.TouchPage(*apps[i],
                       system.android().CodePageVa(
                           libc->id, (i + k) % libc->code_pages),
                       AccessType::kExecute);
    }
  }
  kernel.RunNumadPass();  // apply the placement policy once, explicitly

  // Measured phase: the same walk pattern, counted from a clean delta.
  kernel.machine().ResetShootdownStats();
  const KernelCounters before = kernel.counters();
  constexpr uint32_t kRounds = 4;
  for (uint32_t round = 0; round < kRounds; ++round) {
    for (uint32_t i = 0; i < cores; ++i) {
      kernel.ScheduleTo(*apps[i], i);
      for (uint32_t k = 0; k < kWindow; ++k) {
        kernel.TouchPage(*apps[i],
                         system.android().CodePageVa(
                             libc->id, (i + round + k) % libc->code_pages),
                         AccessType::kExecute);
      }
    }
  }
  const KernelCounters delta = kernel.counters() - before;
  row.walks = delta.numa_walks;
  if (row.walks > 0) {
    row.remote_frac = static_cast<double>(delta.numa_remote_walks) /
                      static_cast<double>(row.walks);
    row.replica_frac = static_cast<double>(delta.numa_replica_walks) /
                       static_cast<double>(row.walks);
  }
  const uint64_t replica_bytes =
      kernel.numa() != nullptr ? kernel.numa()->replica_bytes() : 0;
  row.replica_kb = static_cast<double>(replica_bytes) / 1024.0;
  row.ptp_kb = static_cast<double>(kernel.ptp_allocator().live_ptps() *
                                       kPageSize +
                                   replica_bytes) /
               1024.0;
  row.promotions = kernel.counters().numa_replica_promotions;
  row.migrations = kernel.counters().numa_ptp_migrations;
  row.numad_runs = kernel.counters().numad_runs;
  row.ipis = kernel.machine().shootdown_stats().ipis;
  for (Task* app : apps) {
    kernel.Exit(*app);
  }
  return row;
}

int Run(const BenchOptions& options) {
  PrintHeader("Extension",
              "numaPTE vs shared PTPs: cores x sharing x page-table "
              "placement on a 4-node machine (1 app per core walking "
              "shared code)");

  const std::vector<uint32_t> core_counts =
      options.smoke ? std::vector<uint32_t>{32}
                    : std::vector<uint32_t>{16, 32, 64};
  const std::vector<PtPlacement> placements = {
      PtPlacement::kLocal, PtPlacement::kReplicate, PtPlacement::kMigrate};
  const size_t cells_per_cores = 2 * placements.size();
  std::vector<NumaRow> rows(core_counts.size() * cells_per_cores);
  Harness harness("numa", options);
  size_t n = 0;
  for (uint32_t cores : core_counts) {
    for (bool shared : {false, true}) {
      for (PtPlacement placement : placements) {
        SystemConfig config =
            ConfigByName(shared ? "shared-ptp-tlb" : "stock");
        config.num_cores = cores;
        config.num_nodes = 4;
        config.pt_placement = placement;
        harness.AddJob(
            std::string(shared ? "shared" : "stock") + "/" +
                PtPlacementName(placement) + "/cores" + std::to_string(cores),
            config,
            [&rows, n, cores, shared, placement](System& system,
                                                 JobRecord& record) {
              rows[n] = RunCell(system, cores, shared, placement);
              const NumaRow& row = rows[n];
              record.Metric("numa.walks", static_cast<double>(row.walks));
              record.Metric("numa.remote_frac", row.remote_frac);
              record.Metric("numa.replica_frac", row.replica_frac);
              record.Metric("numa.ptp_kb", row.ptp_kb);
              record.Metric("numa.replica_kb", row.replica_kb);
              record.Metric("numa.promotions",
                            static_cast<double>(row.promotions));
              record.Metric("numa.migrations",
                            static_cast<double>(row.migrations));
              record.Metric("numa.numad_runs",
                            static_cast<double>(row.numad_runs));
              record.Metric("numa.ipis", static_cast<double>(row.ipis));
            });
        n++;
      }
    }
  }
  if (!harness.Run()) {
    return 1;
  }

  TablePrinter table({"Cores", "Tables", "Placement", "walks",
                      "remote frac", "replica frac", "PTP (KB)",
                      "replicas (KB)", "promoted", "migrated", "IPIs"});
  for (const NumaRow& row : rows) {
    if (!row.ran) {
      continue;  // Skipped by --config.
    }
    table.AddRow({std::to_string(row.cores),
                  row.shared ? "shared" : "stock",
                  PtPlacementName(row.placement), std::to_string(row.walks),
                  FormatDouble(row.remote_frac, 3),
                  FormatDouble(row.replica_frac, 3),
                  FormatDouble(row.ptp_kb, 0),
                  FormatDouble(row.replica_kb, 0),
                  std::to_string(row.promotions),
                  std::to_string(row.migrations), std::to_string(row.ipis)});
  }
  table.Print(std::cout);

  if (!harness.ran_all()) {
    std::cout << "\n--config filter active: cross-config shape checks "
                 "skipped\n";
    return 0;
  }

  std::cout << "\n";
  bool ok = true;
  for (size_t c = 0; c < core_counts.size(); ++c) {
    const NumaRow* cell = &rows[c * cells_per_cores];
    const NumaRow& stock_local = cell[0];
    const NumaRow& stock_migrate = cell[2];
    const NumaRow& shared_local = cell[3];
    const NumaRow& shared_replicate = cell[4];
    const NumaRow& shared_migrate = cell[5];
    const std::string at = " @" + std::to_string(stock_local.cores) + " cores";
    // Sharing concentrates the tables on the zygote's node: most walks
    // from a 4-node fleet are remote. Fork-copied stock tables inherit
    // that placement too, but migration can rescue them — they have a
    // sole owner. Sharers pin shared PTPs in place, so migrate is a
    // no-op there and only replication helps.
    ok &= ShapeCheck(std::cout, "shared/local walks mostly remote" + at, 1.0,
                     shared_local.remote_frac > 0.5 ? 1.0 : 0.0, 0.01);
    ok &= ShapeCheck(std::cout,
                     "migrate localizes stock's sole-owner tables" + at, 1.0,
                     stock_migrate.remote_frac < 0.05 ? 1.0 : 0.0, 0.01);
    ok &= ShapeCheck(std::cout,
                     "sharers pin shared tables: migrate is a no-op" + at,
                     1.0, shared_migrate.remote_frac > 0.5 ? 1.0 : 0.0,
                     0.01);
    // Sharing's memory win: far fewer PTP frames than per-process tables.
    ok &= ShapeCheck(std::cout, "shared PTP memory below stock" + at, 1.0,
                     shared_local.ptp_kb < stock_local.ptp_kb ? 1.0 : 0.0,
                     0.01);
    // The headline, at 32+ cores: replication serves walks node-locally.
    if (stock_local.cores >= 32) {
      const double reduction =
          shared_replicate.remote_frac > 0
              ? shared_local.remote_frac / shared_replicate.remote_frac
              : 1e9;
      ok &= ShapeCheck(std::cout,
                       "replicate cuts remote fraction >=5x" + at, 1.0,
                       reduction >= 5.0 ? 1.0 : 0.0, 0.01);
    }
    // The overhead side of the frontier is really reported: replicas
    // cost memory, and the bench says how much.
    ok &= ShapeCheck(std::cout, "replicate reports replica bytes" + at, 1.0,
                     shared_replicate.replica_kb > 0 ? 1.0 : 0.0, 0.01);
    ok &= ShapeCheck(std::cout, "replicate serves walks from replicas" + at,
                     1.0, shared_replicate.replica_frac > 0.5 ? 1.0 : 0.0,
                     0.01);
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  return sat::Run(options);
}
