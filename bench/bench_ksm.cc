// Extension experiment — KSM-style same-page merging on top of zygote
// sharing. The paper's mechanism deduplicates *translations*; this bench
// measures the orthogonal win from deduplicating anonymous *content*, and
// what it costs.
//
// 8 zygote children each build a madvise(MERGEABLE) heap whose pages are
// 60% drawn from a dictionary shared across the fleet (the Android
// pattern: identical Dalvik/ART heap metadata in every app) and 40%
// process-unique. ksmd passes then merge the duplicates, and a write-back
// phase makes a quarter of each heap diverge again — paying the COW
// unmerge faults and the write-protection TLB shootdowns.
//
// Reported per kernel: anonymous RSS before/after merging, stable/sharing
// page gauges, merge/unmerge traffic, and the shootdown IPIs the
// write-protection sweeps cost. Shape target: >= 20% of anonymous memory
// back with KSM on, zero effect with it off.

#include "bench/common.h"

namespace sat {
namespace {

constexpr uint32_t kChildren = 8;
constexpr uint32_t kDictionarySize = 32;

struct KsmOutcome {
  uint64_t anon_before = 0;
  uint64_t anon_after = 0;
  uint64_t anon_final = 0;  // after the write-back phase
  uint64_t pages_shared = 0;
  uint64_t pages_sharing = 0;
  uint64_t shootdown_ipis = 0;

  double Reduction() const {
    return anon_before == 0
               ? 0.0
               : static_cast<double>(anon_before - anon_after) /
                     static_cast<double>(anon_before);
  }
};

// Anon-RSS saved by KSM, measured against the ksm-off kernel on the same
// workload (the on-kernel's own "before" is already partially merged —
// the periodic ksmd runs during population).
double ReductionVsOff(const KsmOutcome& off, const KsmOutcome& on) {
  return off.anon_after == 0
             ? 0.0
             : static_cast<double>(off.anon_after - on.anon_after) /
                   static_cast<double>(off.anon_after);
}

// The page's content: pages at 60% of the indices hold one of
// kDictionarySize fleet-wide values (the same value at the same index in
// every child, and recurring across indices — both cross-process and
// within-process duplicates); the rest are unique to (child, index).
uint64_t ContentFor(uint32_t child, uint32_t page) {
  if (page % 10 < 6) {
    return 1000 + (page * 7) % kDictionarySize;
  }
  return (static_cast<uint64_t>(child + 1) << 32) | page;
}

KsmOutcome RunFleet(System& system, uint32_t heap_pages, bool scan) {
  KsmOutcome out;
  Kernel& kernel = system.kernel();
  std::vector<Task*> children;
  std::vector<VirtAddr> heaps;
  for (uint32_t c = 0; c < kChildren; ++c) {
    Task* child = system.android().ForkApp("app" + std::to_string(c));
    // Spread the fleet: merges then write-protect PTEs whose owners ran
    // on other cores, so the rmap-derived sharer masks really span cores
    // (all-on-one-core would make every shootdown a local flush).
    kernel.ScheduleTo(*child, c % kernel.machine().num_cores());
    MmapRequest request;
    request.length = heap_pages * kPageSize;
    request.prot = VmProt::ReadWrite();
    request.kind = VmKind::kAnonPrivate;
    request.mergeable = true;
    request.name = "merge_heap";
    const VirtAddr heap = kernel.Mmap(*child, request).value;
    for (uint32_t p = 0; p < heap_pages; ++p) {
      kernel.WritePage(*child, heap + p * kPageSize, ContentFor(c, p));
    }
    children.push_back(child);
    heaps.push_back(heap);
  }
  out.anon_before = kernel.phys().CountFrames(FrameKind::kAnon);

  if (scan) {
    // Pass 1 records checksums, pass 2 merges; pass 3 verifies the scan
    // has converged (it finds nothing new).
    for (int pass = 0; pass < 3; ++pass) {
      kernel.RunKsmScan();
    }
  }
  out.anon_after = kernel.phys().CountFrames(FrameKind::kAnon);
  out.pages_shared = kernel.ksm().pages_shared();
  out.pages_sharing = kernel.ksm().pages_sharing();

  // Write-back phase: every child rewrites a quarter of its heap with
  // fresh private values. With KSM on, writes into merged pages take the
  // COW unmerge fault.
  for (uint32_t c = 0; c < kChildren; ++c) {
    for (uint32_t p = 0; p < heap_pages; p += 4) {
      kernel.WritePage(*children[c], heaps[c] + p * kPageSize,
                       (0xD1Dull << 48) | (static_cast<uint64_t>(c) << 32) | p);
    }
  }
  out.anon_final = kernel.phys().CountFrames(FrameKind::kAnon);
  out.shootdown_ipis = kernel.machine().shootdown_stats().ipis;

  for (Task* child : children) {
    kernel.Exit(*child);
  }
  return out;
}

void RecordOutcome(const KsmOutcome& outcome, JobRecord& record) {
  record.Metric("ksm.anon_frames_before", static_cast<double>(outcome.anon_before));
  record.Metric("ksm.anon_frames_after", static_cast<double>(outcome.anon_after));
  record.Metric("ksm.anon_frames_final", static_cast<double>(outcome.anon_final));
  record.Metric("ksm.reduction_pct", outcome.Reduction() * 100.0);
  record.Metric("ksm.pages_shared", static_cast<double>(outcome.pages_shared));
  record.Metric("ksm.pages_sharing", static_cast<double>(outcome.pages_sharing));
  record.Metric("ksm.shootdown_ipis", static_cast<double>(outcome.shootdown_ipis));
}

int Run(const BenchOptions& options) {
  PrintHeader("Extension",
              "KSM same-page merging over zygote fork: anonymous-RSS "
              "reduction and its unmerge/shootdown cost");

  const uint32_t heap_pages = options.smoke ? 384 : 1024;
  KsmOutcome off, on;
  Harness harness("ksm", options);
  // A 4-core machine, so the write-protection sweep's TLB flushes pay
  // real cross-core IPIs (on one core a shootdown is a local flush).
  SystemConfig base = ConfigByName("shared-ptp");
  base.num_cores = 4;
  harness.AddCustomJob("ksm-off/shared-ptp", [&](JobRecord& record) {
    System system(harness.Resolve(base, "ksm-off/shared-ptp"));
    off = RunFleet(system, heap_pages, /*scan=*/false);
    RecordOutcome(off, record);
    Harness::CaptureSystem(system, &record);
  });
  harness.AddCustomJob("ksm-on/shared-ptp", [&](JobRecord& record) {
    SystemConfig config = base;
    config.ksm = true;
    System system(harness.Resolve(config, "ksm-on/shared-ptp"));
    on = RunFleet(system, heap_pages, /*scan=*/true);
    RecordOutcome(on, record);
    Harness::CaptureSystem(system, &record);
  });
  if (!harness.Run()) {
    return 1;
  }

  TablePrinter table({"kernel", "anon frames (populated)", "anon frames "
                      "(post-scan)", "reduction", "pages_shared",
                      "pages_sharing", "shootdown IPIs"});
  table.AddRow({"ksm-off", std::to_string(off.anon_before),
                std::to_string(off.anon_after),
                FormatDouble(off.Reduction() * 100, 1) + "%",
                std::to_string(off.pages_shared),
                std::to_string(off.pages_sharing),
                std::to_string(off.shootdown_ipis)});
  table.AddRow({"ksm-on", std::to_string(on.anon_before),
                std::to_string(on.anon_after),
                FormatDouble(on.Reduction() * 100, 1) + "%",
                std::to_string(on.pages_shared),
                std::to_string(on.pages_sharing),
                std::to_string(on.shootdown_ipis)});
  table.Print(std::cout);

  const JobRecord& on_record = harness.record(1);
  std::cout << "\nksm-on traffic: "
            << MetricOr(on_record, "counters.ksm_pages_scanned")
            << " pages scanned over "
            << MetricOr(on_record, "counters.ksm_scans") << " passes, "
            << MetricOr(on_record, "counters.ksm_pages_merged") << " merged ("
            << MetricOr(on_record, "counters.ksm_unshares")
            << " PTP unshares), "
            << MetricOr(on_record, "counters.ksm_ptes_write_protected")
            << " PTEs write-protected, "
            << MetricOr(on_record, "counters.ksm_unmerge_faults")
            << " unmerge COW faults after write-back\n\n";

  bool ok = true;
  // The tentpole claim: merging wins back >= 20% of anonymous memory on
  // this fleet, measured on vs off. (60% duplicated pages collapse to
  // the dictionary, diluted by the zygote-inherited anon baseline.)
  const double reduction = ReductionVsOff(off, on);
  ok &= reduction >= 0.20;
  std::cout << "  [shape] anon-RSS reduction, KSM on vs off: floor=20%  "
            << "measured=" << FormatDouble(reduction * 100, 1) << "%  ("
            << (reduction >= 0.20 ? "ok" : "OFF") << ")\n";
  ok &= ShapeCheck(std::cout, "anon-RSS reduction with KSM off", 0.0,
                   off.Reduction(), 0.0);
  // The cost side is real: write-back unmerges via COW, and the
  // write-protection sweeps paid shootdown IPIs beyond the off-run's.
  const double unmerges = MetricOr(on_record, "counters.ksm_unmerge_faults");
  ok &= unmerges > 0;
  std::cout << "  [shape] unmerge COW faults after write-back: > 0  "
            << "measured=" << FormatDouble(unmerges, 0) << "  ("
            << (unmerges > 0 ? "ok" : "OFF") << ")\n";
  ok &= on.shootdown_ipis > off.shootdown_ipis;
  std::cout << "  [shape] shootdown IPIs, ksm-on vs off: "
            << on.shootdown_ipis << " vs " << off.shootdown_ipis << "  ("
            << (on.shootdown_ipis > off.shootdown_ipis ? "ok" : "OFF")
            << ")\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  return sat::Run(options);
}
