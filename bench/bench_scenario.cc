// bench_scenario: runs named scenario files (scenarios/*.scn) through the
// composable element-graph engine at fleet scale.
//
// Each scenario becomes one Harness whose jobs are the scenario's shards:
// shard i of N owns its own System (built from the scenario's `set`
// statements), instantiates the element graph against the default
// registry, and runs its 1/N slice of the declared populations. Records
// come back in submission order, so the merged output — and the
// BENCH_<scenario>.json written per scenario — is bit-identical at any
// --jobs value. A run exits nonzero if any shard fails, times out, or
// leaves the kernel audit unclean.
//
//   bench_scenario                          # the checked-in suite
//   bench_scenario scenarios/chaos_soak.scn # specific files
//   bench_scenario --smoke --jobs 2 --json-out results

#include <stdexcept>

#include "bench/common.h"

#ifndef SAT_SCENARIO_DIR
#define SAT_SCENARIO_DIR "scenarios"
#endif

namespace {

constexpr const char* kDefaultScenarios[] = {
    "app_server_farm.scn", "phone_fleet_diurnal.scn", "fork_storm_10k.scn",
    "swap_thrash_ksm.scn", "chaos_soak.scn",
};

double TotalFaults(const sat::JobRecord& record) {
  return sat::MetricOr(record, "counters.faults_file_backed") +
         sat::MetricOr(record, "counters.faults_anonymous") +
         sat::MetricOr(record, "counters.faults_cow") +
         sat::MetricOr(record, "counters.faults_hard");
}

std::string LabelOr(const sat::JobRecord& record, std::string_view name,
                    const std::string& fallback) {
  for (const auto& label : record.labels) {
    if (label.first == name) {
      return label.second;
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const sat::BenchOptions base_options = sat::ParseHarnessArgs(&argc, argv);

  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    paths.push_back(argv[i]);
  }
  if (paths.empty()) {
    for (const char* name : kDefaultScenarios) {
      paths.push_back(std::string(SAT_SCENARIO_DIR) + "/" + name);
    }
  }

  sat::PrintHeader("scenario",
                   "composable scenario engine: fleet-scale element graphs");

  bool all_ok = true;
  for (const std::string& path : paths) {
    const sat::ScenarioParseResult parsed =
        sat::ParseScenarioFile(path, &sat::ElementRegistry::Default());
    if (!parsed.ok()) {
      std::cerr << parsed.FormatError(path) << "\n";
      return 2;
    }
    const sat::ScenarioGraph graph = parsed.graph;
    const uint32_t shards = sat::ScenarioShardCount(graph);

    // One harness (and one BENCH_<scenario>.json) per scenario. The graph
    // itself is the workload here, so the generic --scenario
    // preconditioning hook stays off for these custom jobs.
    sat::BenchOptions options = base_options;
    options.scenario.clear();
    options.scenario_set = false;
    sat::Harness harness(graph.name, options);

    for (uint32_t shard = 0; shard < shards; ++shard) {
      const std::string job_name = "shard" + std::to_string(shard);
      harness.AddCustomJob(
          job_name, [&harness, &options, graph, shard, shards,
                     job_name](sat::JobRecord& record) {
            const sat::SystemConfig config =
                harness.Resolve(sat::ScenarioSystemConfig(graph), job_name);
            sat::System system(config);
            sat::ApplyScenarioChaos(graph, &system);
            sat::ScenarioRunConfig run;
            run.shard_index = shard;
            run.shard_count = shards;
            run.rng_seed =
                sat::DeriveJobSeed(config.seed, graph.name, job_name);
            run.scale = options.smoke ? sat::kScenarioSmokeScale : 1.0;
            const sat::ScenarioRunOutcome outcome = sat::RunScenarioOnSystem(
                &system, graph, sat::ElementRegistry::Default(), run);
            record.Label("scenario", graph.name);
            record.Label("audit",
                         outcome.audit_ok ? "clean" : "violations");
            record.Metric("scenario.audit_checks",
                          static_cast<double>(outcome.audit_checks));
            sat::RecordScenarioStats(outcome.stats, &record);
            sat::Harness::CaptureSystem(system, &record);
            if (!outcome.status.ok()) {
              throw std::runtime_error(outcome.status.message);
            }
            if (!outcome.audit_ok) {
              throw std::runtime_error("kernel audit failed:\n" +
                                       outcome.audit_report);
            }
          });
    }
    if (!harness.Run()) {
      all_ok = false;
    }

    std::cout << "\n-- " << graph.name << " (" << shards << " shard(s), "
              << graph.elements.size() << " element(s)) --\n";
    double spawned = 0, exited = 0, lost = 0, touched = 0, faults = 0;
    double ipc = 0, launches = 0, checks = 0;
    for (const sat::JobRecord& record : harness.records()) {
      const std::string status = LabelOr(record, "status", "?");
      std::cout << "  " << record.config << ": "
                << sat::MetricOr(record, "scenario.processes_spawned")
                << " spawned, "
                << sat::MetricOr(record, "scenario.processes_exited")
                << " exited, "
                << sat::MetricOr(record, "scenario.processes_lost")
                << " lost, " << TotalFaults(record) << " faults, "
                << sat::MetricOr(record, "scenario.ticks_run")
                << " tick(s), audit " << LabelOr(record, "audit", "?")
                << ", status " << status << "\n";
      if (status != "ok") {
        std::cout << "    " << LabelOr(record, "status_reason", "") << "\n";
        all_ok = false;
      }
      spawned += sat::MetricOr(record, "scenario.processes_spawned");
      exited += sat::MetricOr(record, "scenario.processes_exited");
      lost += sat::MetricOr(record, "scenario.processes_lost");
      touched += sat::MetricOr(record, "scenario.pages_touched");
      faults += TotalFaults(record);
      ipc += sat::MetricOr(record, "scenario.ipc_transactions");
      launches += sat::MetricOr(record, "scenario.launches");
      checks += sat::MetricOr(record, "scenario.audit_checks");
    }
    std::cout << "  total: " << spawned << " processes, " << faults
              << " faults, " << touched << " pages touched";
    if (ipc > 0) {
      std::cout << ", " << ipc << " IPC transaction(s)";
    }
    if (launches > 0) {
      std::cout << ", " << launches << " app launch(es)";
    }
    std::cout << ", " << checks << " audit check(s)\n";
  }

  if (!all_ok) {
    std::cout << "\n[scenario] FAILED: at least one shard did not complete "
                 "cleanly\n";
    return 1;
  }
  std::cout << "\n[scenario] all scenarios completed, audits clean\n";
  return 0;
}
