// Figure 8: box-and-whisker plot of application-launch L1 instruction
// cache stall cycles.
//
// Paper shape: sharing cuts I-cache stalls 15% (original alignment) and
// 24% (2 MB alignment), because eliminated soft faults stop dragging the
// kernel fault-handler text through the I-cache.

#include "bench/launch_experiment.h"

namespace sat {
namespace {

int Run(const BenchOptions& options) {
  PrintHeader("Figure 8", "Application launch L1 I-cache stall cycles");

  LaunchExperiment experiment = MakeLaunchExperiment(
      "fig8", options, /*rounds=*/options.smoke ? 10 : 30, /*warmup=*/3);
  if (!experiment.Run()) {
    return 1;
  }
  const std::vector<LaunchSeries>& series = experiment.series;

  TablePrinter table({"Config", "min", "Q1", "median", "Q3", "max"});
  for (const LaunchSeries& s : series) {
    if (s.rounds.empty()) {
      continue;  // filtered out by --config
    }
    const FiveNumberSummary summary = Summarize(s.IcacheStalls());
    table.AddRow({s.config.Name(), FormatDouble(summary.minimum / 1e6, 3),
                  FormatDouble(summary.q1 / 1e6, 3),
                  FormatDouble(summary.median / 1e6, 3),
                  FormatDouble(summary.q3 / 1e6, 3),
                  FormatDouble(summary.maximum / 1e6, 3)});
  }
  std::cout << "(all values x10^6 cycles)\n";
  table.Print(std::cout);
  if (options.phys_mb > 0) {
    PrintLaunchPressureSummaries(experiment);
  }
  if (!experiment.ran_all()) {
    std::cout << "\n--config filter active: cross-config shape checks "
                 "skipped\n";
    return 0;
  }

  const double stock = Median(series[0].IcacheStalls());
  const double shared = Median(series[1].IcacheStalls());
  const double stock_2mb = Median(series[2].IcacheStalls());
  const double shared_2mb = Median(series[3].IcacheStalls());

  std::cout << "\n";
  bool ok = true;
  ok &= ShapeCheck(std::cout, "I-cache stall reduction, original align (%)",
                   15.0, (1.0 - shared / stock) * 100.0, 0.6);
  ok &= ShapeCheck(std::cout, "I-cache stall reduction, 2MB align (%)", 24.0,
                   (1.0 - shared_2mb / stock_2mb) * 100.0, 0.6);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  return sat::Run(options);
}
