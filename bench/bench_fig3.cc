// Figure 3: breakdown of the % of instructions fetched by code category,
// normalized to the total user-mode instructions executed.
//
// Like Figure 2, a single-job characterization: the factory stream is
// order-dependent, so generation is not split across workers.

#include "bench/common.h"
#include "src/workload/analysis.h"

namespace sat {
namespace {

int Run(const BenchOptions& options) {
  PrintHeader("Figure 3", "Breakdown of % of instructions fetched");

  const auto apps = AppProfile::PaperBenchmarks();
  std::vector<CategoryBreakdown> breakdowns(apps.size());

  Harness harness("fig3", options);
  harness.AddCustomJob("characterization", [&](JobRecord& record) {
    LibraryCatalog catalog = LibraryCatalog::AndroidDefault();
    WorkloadFactory factory(&catalog);
    double shared_sum = 0;
    for (size_t i = 0; i < apps.size(); ++i) {
      const AppFootprint fp = factory.Generate(apps[i]);
      breakdowns[i] = AnalyzeCategories(fp);
      shared_sum += breakdowns[i].SharedCodeFetchFraction();
    }
    record.Metric("apps", static_cast<double>(apps.size()));
    record.Metric("avg.shared_code_fetch_pct",
                  shared_sum / static_cast<double>(apps.size()) * 100);
  });
  if (!harness.Run()) {
    return 1;
  }

  TablePrinter table({"Benchmark", "private", "other .so", "app_process",
                      "zygote Java", "zygote .so", "shared total"});
  double share_sum[5] = {};
  double shared_sum = 0;
  for (size_t i = 0; i < apps.size(); ++i) {
    const CategoryBreakdown& b = breakdowns[i];
    auto pct = [&](CodeCategory c) {
      return FormatPercent(b.fetch_share[static_cast<int>(c)]);
    };
    table.AddRow({apps[i].name, pct(CodeCategory::kPrivateCode),
                  pct(CodeCategory::kOtherSharedLib),
                  pct(CodeCategory::kZygoteProgramBinary),
                  pct(CodeCategory::kZygoteJavaLib),
                  pct(CodeCategory::kZygoteDynamicLib),
                  FormatPercent(b.SharedCodeFetchFraction())});
    for (int c = 0; c < 5; ++c) {
      share_sum[c] += b.fetch_share[c];
    }
    shared_sum += b.SharedCodeFetchFraction();
  }
  table.Print(std::cout);

  const auto n = static_cast<double>(apps.size());
  std::cout << "\nAverage fetch shares (paper: shared 98%, zygote .so 61%, "
               "Java 11%, other 26%):\n";
  bool ok = true;
  ok &= ShapeCheck(std::cout, "shared code % of fetches", 98.0,
                   shared_sum / n * 100, 0.05);
  ok &= ShapeCheck(std::cout, "zygote-preloaded .so fetch %", 61.0,
                   share_sum[static_cast<int>(CodeCategory::kZygoteDynamicLib)] /
                       n * 100,
                   0.15);
  ok &= ShapeCheck(std::cout, "zygote Java fetch %", 11.0,
                   share_sum[static_cast<int>(CodeCategory::kZygoteJavaLib)] / n *
                       100,
                   0.3);
  ok &= ShapeCheck(std::cout, "other shared lib fetch %", 26.0,
                   share_sum[static_cast<int>(CodeCategory::kOtherSharedLib)] / n *
                       100,
                   0.2);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  return sat::Run(options);
}
