// Figure 3: breakdown of the % of instructions fetched by code category,
// normalized to the total user-mode instructions executed.

#include "bench/common.h"
#include "src/workload/analysis.h"

namespace sat {
namespace {

int Run() {
  PrintHeader("Figure 3", "Breakdown of % of instructions fetched");

  LibraryCatalog catalog = LibraryCatalog::AndroidDefault();
  WorkloadFactory factory(&catalog);

  TablePrinter table({"Benchmark", "private", "other .so", "app_process",
                      "zygote Java", "zygote .so", "shared total"});
  double share_sum[5] = {};
  double shared_sum = 0;
  const auto apps = AppProfile::PaperBenchmarks();
  for (const AppProfile& app : apps) {
    const AppFootprint fp = factory.Generate(app);
    const CategoryBreakdown b = AnalyzeCategories(fp);
    auto pct = [&](CodeCategory c) {
      return FormatPercent(b.fetch_share[static_cast<int>(c)]);
    };
    table.AddRow({app.name, pct(CodeCategory::kPrivateCode),
                  pct(CodeCategory::kOtherSharedLib),
                  pct(CodeCategory::kZygoteProgramBinary),
                  pct(CodeCategory::kZygoteJavaLib),
                  pct(CodeCategory::kZygoteDynamicLib),
                  FormatPercent(b.SharedCodeFetchFraction())});
    for (int c = 0; c < 5; ++c) {
      share_sum[c] += b.fetch_share[c];
    }
    shared_sum += b.SharedCodeFetchFraction();
  }
  table.Print(std::cout);

  const auto n = static_cast<double>(apps.size());
  std::cout << "\nAverage fetch shares (paper: shared 98%, zygote .so 61%, "
               "Java 11%, other 26%):\n";
  bool ok = true;
  ok &= ShapeCheck(std::cout, "shared code % of fetches", 98.0,
                   shared_sum / n * 100, 0.05);
  ok &= ShapeCheck(std::cout, "zygote-preloaded .so fetch %", 61.0,
                   share_sum[static_cast<int>(CodeCategory::kZygoteDynamicLib)] /
                       n * 100,
                   0.15);
  ok &= ShapeCheck(std::cout, "zygote Java fetch %", 11.0,
                   share_sum[static_cast<int>(CodeCategory::kZygoteJavaLib)] / n *
                       100,
                   0.3);
  ok &= ShapeCheck(std::cout, "other shared lib fetch %", 26.0,
                   share_sum[static_cast<int>(CodeCategory::kOtherSharedLib)] / n *
                       100,
                   0.2);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main() { return sat::Run(); }
