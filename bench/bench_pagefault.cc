// Microbenchmarks (google-benchmark): the Section 4.2.1 soft-page-fault
// cost (the paper measures ~2,700 cycles / 2.25 us with LMbench
// lat_pagefault) plus host-side throughput of the simulator's hot paths.
//
// The simulated-cycle check runs as a harness job (so it lands in the
// BENCH_pagefault.json results file) and prints alongside the
// google-benchmark timings; absolute host-nanosecond numbers are
// informational only.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/common.h"

namespace sat {
namespace {

// Simulated cost of one soft (minor) page fault: trap + handler work +
// kernel-text I-cache effects, measured end-to-end through the core.
void MeasureSoftFaultCost(System& system, JobRecord& record) {
  Kernel& kernel = system.kernel();
  Task* task = kernel.CreateTask("lat_pagefault");
  MmapRequest request;
  request.length = 4096 * kPageSize;
  request.prot = VmProt::ReadOnly();
  request.kind = VmKind::kFilePrivate;
  request.file = 123456;
  const VirtAddr base = kernel.Mmap(*task, request).value;
  kernel.ScheduleTo(*task);

  // Pre-warm the page cache so every fault is soft (LMbench touches a
  // file that is resident).
  for (uint32_t page = 0; page < 4096; ++page) {
    bool hard = false;
    kernel.page_cache().GetOrLoad(123456, page, &hard);
  }

  // Warm the kernel fault path, then measure.
  for (uint32_t page = 0; page < 64; ++page) {
    kernel.core().Load(base + page * kPageSize);
  }
  const Cycles before = kernel.core().counters().cycles;
  const uint64_t faults_before = kernel.counters().faults_file_backed;
  constexpr uint32_t kFaults = 2048;
  for (uint32_t page = 64; page < 64 + kFaults; ++page) {
    kernel.core().Load(base + page * kPageSize);
  }
  const double cycles_per_fault =
      static_cast<double>(kernel.core().counters().cycles - before) / kFaults;
  const uint64_t faults_taken =
      kernel.counters().faults_file_backed - faults_before;

  record.Metric("lat_pagefault.cycles_per_fault", cycles_per_fault);
  record.Metric("lat_pagefault.faults_measured",
                static_cast<double>(faults_taken));
}

int CheckSoftFaultCost(const BenchOptions& options) {
  Harness harness("pagefault", options);
  harness.AddJob("lat_pagefault", ConfigByName("stock"),
                 [](System& system, JobRecord& record) {
                   MeasureSoftFaultCost(system, record);
                 });
  if (!harness.Run()) {
    return 1;
  }

  std::cout << "\n";
  PrintHeader("Sec 4.2.1", "Soft page fault cost (LMbench lat_pagefault)");
  if (!harness.ran_all()) {
    std::cout << "--config filter active: lat_pagefault runs under stock "
                 "only; nothing to report\n";
    return 0;
  }
  const JobRecord& record = harness.records()[0];
  std::cout << "  faults measured: "
            << FormatDouble(MetricOr(record, "lat_pagefault.faults_measured"),
                            0)
            << "\n";
  const bool ok =
      ShapeCheck(std::cout, "soft page fault cost (cycles)", 2700.0,
                 MetricOr(record, "lat_pagefault.cycles_per_fault"), 0.35);
  return ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Host-side microbenchmarks of the simulator itself.
// ---------------------------------------------------------------------------

void BM_TouchPageWarm(benchmark::State& state) {
  System system(ConfigByName("shared-ptp"));
  Kernel& kernel = system.kernel();
  Task* app = system.android().ForkApp("bm");
  const LibraryImage* libc = system.android().catalog().FindByName("libc.so");
  const VirtAddr va = system.android().CodePageVa(libc->id, 0);
  kernel.TouchPage(*app, va, AccessType::kExecute);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.TouchPage(*app, va, AccessType::kExecute));
  }
}
BENCHMARK(BM_TouchPageWarm);

void BM_CoreFetchWarm(benchmark::State& state) {
  System system(ConfigByName("shared-ptp-tlb"));
  Kernel& kernel = system.kernel();
  Task* app = system.android().ForkApp("bm");
  kernel.ScheduleTo(*app);
  const LibraryImage* libc = system.android().catalog().FindByName("libc.so");
  const VirtAddr va = system.android().CodePageVa(libc->id, 0);
  kernel.core().FetchLine(va);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.core().FetchLine(va));
  }
}
BENCHMARK(BM_CoreFetchWarm);

void BM_ZygoteFork(benchmark::State& state) {
  const bool share = state.range(0) != 0;
  System system(share ? ConfigByName("shared-ptp") : ConfigByName("stock"));
  for (auto _ : state) {
    Task* app = system.android().ForkApp("bm");
    state.PauseTiming();
    system.kernel().Exit(*app);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ZygoteFork)->Arg(0)->Arg(1);

void BM_MainTlbLookup(benchmark::State& state) {
  MainTlb tlb(128, 2);
  TlbEntry entry;
  entry.valid = true;
  entry.vpn = 0x40000;
  entry.size_pages = 1;
  entry.asid = 1;
  entry.domain = kDomainUser;
  entry.perm = PtePerm::kReadOnly;
  entry.executable = true;
  tlb.Insert(entry);
  const DomainAccessControl dacr = DomainAccessControl::StockDefault();
  for (auto _ : state) {
    TlbEntry out;
    benchmark::DoNotOptimize(
        tlb.Lookup(0x40000000, 1, AccessType::kRead, dacr, &out));
  }
}
BENCHMARK(BM_MainTlbLookup);

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  // Strip harness flags first so google-benchmark doesn't reject them.
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return sat::CheckSoftFaultCost(options);
}
