// Table 1: % of instructions fetched, user space versus kernel space.
//
// This is workload characterization (Section 2.3.1): the kernel share is a
// property of each application's I/O behaviour, measured by the paper with
// 100 Hz perf sampling and injected into our synthetic profiles as a
// calibrated input. The bench regenerates the table from the profiles'
// generated footprints and checks the calibration against the published
// values.

#include "bench/common.h"

namespace sat {
namespace {

struct PaperRow {
  const char* name;
  double user_pct;
};

constexpr PaperRow kPaper[] = {
    {"Angrybirds", 92.2},     {"Adobe Reader", 93.3},
    {"Android Browser", 85.8}, {"Chrome", 85.3},
    {"Chrome Sandbox", 88.8},  {"Chrome Privilege", 27.9},
    {"Email", 87.1 /* paper prints 87.1/13.0 */},
    {"Google Calendar", 96.2}, {"MX Player", 59.3},
    {"Laya Music Player", 82.6}, {"WPS", 47.1},
};

int Run() {
  PrintHeader("Table 1", "% of instructions fetched (user vs kernel space)");

  LibraryCatalog catalog = LibraryCatalog::AndroidDefault();
  WorkloadFactory factory(&catalog);

  TablePrinter table({"Benchmark", "User space (%)", "Kernel space (%)",
                      "paper user (%)"});
  double measured_sum = 0;
  double paper_sum = 0;
  for (const PaperRow& row : kPaper) {
    const AppFootprint fp = factory.Generate(AppProfile::Named(row.name));
    const double user = (1.0 - fp.kernel_fraction) * 100.0;
    table.AddRow({row.name, FormatDouble(user, 1),
                  FormatDouble(100.0 - user, 1), FormatDouble(row.user_pct, 1)});
    measured_sum += user;
    paper_sum += row.user_pct;
  }
  table.Print(std::cout);

  std::cout << "\n";
  bool ok = ShapeCheck(std::cout, "mean user-space fetch %",
                       paper_sum / std::size(kPaper),
                       measured_sum / std::size(kPaper), 0.10);
  // The qualitative claim: >80% user for the majority, except the three
  // I/O-heavy programs.
  uint32_t over80 = 0;
  LibraryCatalog catalog2 = LibraryCatalog::AndroidDefault();
  WorkloadFactory factory2(&catalog2);
  for (const PaperRow& row : kPaper) {
    const AppFootprint fp = factory2.Generate(AppProfile::Named(row.name));
    if ((1.0 - fp.kernel_fraction) > 0.8) {
      over80++;
    }
  }
  ok &= ShapeCheck(std::cout, "# apps with >80% user-space fetches", 8, over80,
                   0.15);
  return ok ? 0 : 1;
}

// --phys-mb: the table itself is pure workload characterization (no
// kernel runs), so the small-memory regime is exercised by one Email
// replay on a booted system of the requested size — reporting whether the
// run survived and how hard the reclaim/OOM machinery had to work.
// --swap-mb adds a zram device, letting the replay ride out pressure by
// compressing cold anonymous pages instead of killing the app.
void RunPressureReplay(uint64_t phys_mb, uint64_t swap_mb) {
  const SystemConfig config = WithSwapMb(
      WithPhysMb(SystemConfig::SharedPtpAndTlb(), phys_mb), swap_mb);
  std::cout << "\npressure replay (Email, " << phys_mb << " MB machine";
  if (swap_mb > 0) {
    std::cout << " + " << swap_mb << " MB zram";
  }
  std::cout << "):\n";
  System system(config);
  AppRunner runner(&system.android());
  const AppFootprint fp =
      system.workload().Generate(AppProfile::Named("Email"));
  const AppRunStats stats = runner.Run(fp, /*exit_after=*/true);
  std::cout << "  run " << (stats.completed ? "completed" : "cut short")
            << (stats.oom_killed ? " (app OOM-killed)" : "") << ", "
            << stats.file_faults + stats.anon_faults + stats.cow_faults
            << " faults, " << stats.ptps_allocated << " PTPs allocated\n  ";
  PrintPressureSummary(system);
}

// --trace-out: the traced slice is the same single-app replay on a booted
// system under the full sharing mechanism (at --phys-mb size if given).
bool WriteReplayTrace(const std::string& path, uint64_t phys_mb,
                      uint64_t swap_mb) {
  SystemConfig config = WithSwapMb(
      WithPhysMb(SystemConfig::SharedPtpAndTlb(), phys_mb), swap_mb);
  config.trace.enabled = true;
  System system(config);
  AppRunner runner(&system.android());
  const AppFootprint fp =
      system.workload().Generate(AppProfile::Named("Email"));
  runner.Run(fp, /*exit_after=*/true);
  return DumpTrace(system, path);
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const std::string trace_path = sat::TraceOutPath(argc, argv);
  const uint64_t phys_mb = sat::PhysMbArg(argc, argv);
  const uint64_t swap_mb = sat::SwapMbArg(argc, argv);
  const int status = sat::Run();
  if (phys_mb > 0) {
    sat::RunPressureReplay(phys_mb, swap_mb);
  }
  if (!trace_path.empty() &&
      !sat::WriteReplayTrace(trace_path, phys_mb, swap_mb)) {
    return 1;
  }
  return status;
}
