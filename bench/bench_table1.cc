// Table 1: % of instructions fetched, user space versus kernel space.
//
// This is workload characterization (Section 2.3.1): the kernel share is a
// property of each application's I/O behaviour, measured by the paper with
// 100 Hz perf sampling and injected into our synthetic profiles as a
// calibrated input. The bench regenerates the table from the profiles'
// generated footprints and checks the calibration against the published
// values.
//
// The characterization itself is factory-only and fast; the driver-run
// part is one full-system replay per application under the sharing
// kernel, which parallelizes across --jobs workers and feeds the per-app
// counters into BENCH_table1.json. Under --phys-mb/--swap-mb the replays
// run on the small machine and the pressure summaries are printed per app.

#include "bench/common.h"

namespace sat {
namespace {

struct PaperRow {
  const char* name;
  double user_pct;
};

constexpr PaperRow kPaper[] = {
    {"Angrybirds", 92.2},     {"Adobe Reader", 93.3},
    {"Android Browser", 85.8}, {"Chrome", 85.3},
    {"Chrome Sandbox", 88.8},  {"Chrome Privilege", 27.9},
    {"Email", 87.1 /* paper prints 87.1/13.0 */},
    {"Google Calendar", 96.2}, {"MX Player", 59.3},
    {"Laya Music Player", 82.6}, {"WPS", 47.1},
};

int Run(const BenchOptions& options) {
  PrintHeader("Table 1", "% of instructions fetched (user vs kernel space)");

  // One replay job per application: boot a system under the full sharing
  // mechanism and run the app the paper's 10 consecutive executions
  // (first cold, rest warm relaunches; 2 under --smoke). Each job is an
  // independent System, so the records are identical at any --jobs value.
  Harness harness("table1", options);
  const int runs = options.smoke ? 2 : 10;
  const size_t n = std::size(kPaper);
  for (size_t i = 0; i < n; ++i) {
    const std::string app = kPaper[i].name;
    harness.AddJob(
        app, ConfigByName("shared-ptp-tlb"),
        [app, runs](System& system, JobRecord& record) {
          AppRunner runner(&system.android());
          const AppFootprint fp =
              system.workload().Generate(AppProfile::Named(app));
          AppRunStats cold;
          double warm_faults = 0;
          bool oom_killed = false;
          bool completed = true;
          for (int r = 0; r < runs; ++r) {
            const AppRunStats stats =
                runner.Run(fp, /*exit_after=*/r + 1 == runs);
            if (r == 0) {
              cold = stats;
            } else {
              warm_faults += static_cast<double>(stats.file_faults);
            }
            oom_killed |= stats.oom_killed;
            completed &= stats.completed;
          }
          record.Metric("replay.runs", runs);
          record.Metric("replay.file_faults",
                        static_cast<double>(cold.file_faults));
          record.Metric("replay.warm_file_faults_mean",
                        runs > 1 ? warm_faults / (runs - 1) : 0.0);
          record.Metric("replay.ptps_allocated",
                        static_cast<double>(cold.ptps_allocated));
          record.Metric("replay.completed", completed ? 1.0 : 0.0);
          record.Metric("replay.oom_killed", oom_killed ? 1.0 : 0.0);
        });
  }
  // The graceful-degradation demo (DESIGN.md section 5i): a 16-core
  // machine under the full sharing mechanism, with scrubd on and seeded
  // bit flips landing in live PTE words and TLB tags while a stream of
  // apps forks, replays, and exits. The metrics pin the chaos contract:
  // the process never aborts, the overwhelming majority of apps finish,
  // the scrubber actually repairs damage, and the unrepairable rest is
  // contained to oops kills of the sharers.
  const uint32_t chaos_apps = options.smoke ? 8 : 24;
  harness.AddCustomJob("chaos-demo", [&harness, chaos_apps](
                                         JobRecord& record) {
    SystemConfig config = ConfigByName("shared-ptp-tlb");
    config.num_cores = 16;
    config.scrub = true;
    config.scrub_wake_interval = 64;
    System system(harness.Resolve(config, "chaos-demo"));
    Kernel& kernel = system.kernel();
    kernel.fault_injector().SetCorruptRule(CorruptSite::kPteWord,
                                           FaultRule{0, 0, 1e-4});
    kernel.fault_injector().SetCorruptRule(CorruptSite::kTlbTag,
                                           FaultRule{0, 0, 1e-4});

    AppRunner runner(&system.android());
    uint32_t finished = 0;
    uint32_t oops_killed = 0;
    uint32_t oom_killed = 0;
    for (uint32_t a = 0; a < chaos_apps; ++a) {
      // Spread the fork source across the machine: each app forks and
      // replays from a different core, so repairs and oops kills exercise
      // cross-core shootdowns too.
      kernel.ScheduleTo(*system.android().zygote(),
                        a % kernel.num_cores());
      const AppFootprint fp = system.workload().Generate(
          AppProfile::Named(kPaper[a % std::size(kPaper)].name));
      const AppRunStats stats = runner.Run(fp, /*exit_after=*/true);
      if (stats.completed) {
        finished++;
      }
      if (stats.oops_killed) {
        oops_killed++;
      }
      if (stats.oom_killed) {
        oom_killed++;
      }
    }
    // Cycle-level coda: fill every core's TLB from the zygote's boot
    // footprint, then keep touching with TLB-tag rot turned up — rotted
    // entries must be flushed by the scrubber's TLB cross-check, not left
    // to serve stale translations.
    const AppFootprint& boot = system.android().zygote_boot_footprint();
    Task* zygote = system.android().zygote();
    for (uint32_t c = 0; c < kernel.num_cores(); ++c) {
      kernel.ScheduleTo(*zygote, c);
      for (size_t i = 0; i < 64; ++i) {
        const TouchedPage& page =
            boot.pages[(c * 64 + i * 13) % boot.pages.size()];
        kernel.core(c).FetchLine(
            system.android().CodePageVa(page.lib, page.page_index));
      }
    }
    kernel.fault_injector().SetCorruptRule(CorruptSite::kTlbTag,
                                           FaultRule{0, 0, 0.01});
    for (size_t i = 0; i < 4096; ++i) {
      const TouchedPage& page = boot.pages[(i * 7) % boot.pages.size()];
      kernel.TouchPage(*zygote,
                       system.android().CodePageVa(page.lib, page.page_index),
                       AccessType::kRead);
    }
    kernel.RunScrubPass();

    record.Metric("chaos.apps", chaos_apps);
    record.Metric("chaos.apps_finished", finished);
    record.Metric("chaos.finish_rate",
                  static_cast<double>(finished) / chaos_apps);
    record.Metric("chaos.apps_oops_killed", oops_killed);
    record.Metric("chaos.apps_oom_killed", oom_killed);
    record.Metric(
        "chaos.corruptions_injected",
        static_cast<double>(kernel.fault_injector().total_corruptions()));
    Harness::CaptureSystem(system, &record);
  });
  if (!harness.Run()) {
    return 1;
  }

  // The characterization table: generated serially from one factory, in
  // the paper's row order (the factory's stream is order-dependent).
  LibraryCatalog catalog = LibraryCatalog::AndroidDefault();
  WorkloadFactory factory(&catalog);

  TablePrinter table({"Benchmark", "User space (%)", "Kernel space (%)",
                      "paper user (%)"});
  double measured_sum = 0;
  double paper_sum = 0;
  for (const PaperRow& row : kPaper) {
    const AppFootprint fp = factory.Generate(AppProfile::Named(row.name));
    const double user = (1.0 - fp.kernel_fraction) * 100.0;
    table.AddRow({row.name, FormatDouble(user, 1),
                  FormatDouble(100.0 - user, 1), FormatDouble(row.user_pct, 1)});
    measured_sum += user;
    paper_sum += row.user_pct;
  }
  table.Print(std::cout);

  std::cout << "\n";
  bool ok = ShapeCheck(std::cout, "mean user-space fetch %",
                       paper_sum / std::size(kPaper),
                       measured_sum / std::size(kPaper), 0.10);
  // The qualitative claim: >80% user for the majority, except the three
  // I/O-heavy programs.
  uint32_t over80 = 0;
  LibraryCatalog catalog2 = LibraryCatalog::AndroidDefault();
  WorkloadFactory factory2(&catalog2);
  for (const PaperRow& row : kPaper) {
    const AppFootprint fp = factory2.Generate(AppProfile::Named(row.name));
    if ((1.0 - fp.kernel_fraction) > 0.8) {
      over80++;
    }
  }
  ok &= ShapeCheck(std::cout, "# apps with >80% user-space fetches", 8, over80,
                   0.15);

  // The replay results, in submission order.
  std::cout << "\nper-app replay on the sharing kernel";
  if (options.phys_mb > 0) {
    std::cout << " (" << options.phys_mb << " MB machine";
    if (options.swap_mb > 0) {
      std::cout << " + " << options.swap_mb << " MB zram";
    }
    std::cout << ")";
  }
  std::cout << ":\n";
  TablePrinter replay_table(
      {"Benchmark", "file faults", "PTPs allocated", "outcome"});
  for (size_t i = 0; i < n; ++i) {
    const JobRecord& record = harness.record(i);
    std::string outcome = "completed";
    if (MetricOr(record, "replay.oom_killed") > 0) {
      outcome = "OOM-killed";
    } else if (MetricOr(record, "replay.completed") == 0) {
      outcome = "cut short";
    }
    replay_table.AddRow(
        {record.config,
         std::to_string(
             static_cast<uint64_t>(MetricOr(record, "replay.file_faults"))),
         std::to_string(static_cast<uint64_t>(
             MetricOr(record, "replay.ptps_allocated"))),
         outcome});
  }
  replay_table.Print(std::cout);

  const JobRecord& chaos = harness.record(n);
  std::cout << "\nchaos demo (16 cores, scrubd on, seeded bit flips): "
            << MetricOr(chaos, "chaos.apps_finished") << "/"
            << MetricOr(chaos, "chaos.apps") << " apps finished, "
            << MetricOr(chaos, "chaos.corruptions_injected")
            << " corruption(s) injected, "
            << MetricOr(chaos, "counters.scrub_repairs") << " repair(s), "
            << MetricOr(chaos, "counters.oops_kills") << " oops kill(s), "
            << MetricOr(chaos, "counters.frames_quarantined")
            << " frame(s) quarantined\n";

  if (options.phys_mb > 0) {
    std::cout << "\n";
    for (size_t i = 0; i < n; ++i) {
      PrintPressureSummary(harness.record(i));
    }
  }
  return ok ? 0 : 1;
}

// --trace-out: the traced slice is one Email replay on a booted system
// under the full sharing mechanism (at --phys-mb size if given).
bool WriteReplayTrace(const BenchOptions& options) {
  SystemConfig config = WithSwapMb(
      WithPhysMb(ConfigByName("shared-ptp-tlb"), options.phys_mb),
      options.swap_mb);
  config.trace.enabled = true;
  System system(config);
  AppRunner runner(&system.android());
  const AppFootprint fp =
      system.workload().Generate(AppProfile::Named("Email"));
  runner.Run(fp, /*exit_after=*/true);
  return DumpTrace(system, options.trace_out);
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  const int status = sat::Run(options);
  if (!options.trace_out.empty() && !sat::WriteReplayTrace(options)) {
    return 1;
  }
  return status;
}
