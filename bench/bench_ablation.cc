// Ablations of the Section 3.1.3 design choices:
//
//   (a) copy-referenced-PTEs-only on unshare ("Whether Page Table Entries
//       Should Be Copied Upon Unsharing"): cheaper unshares traded against
//       repopulation soft faults;
//   (b) x86-style first-level write-protect ("Hardware Support"): the
//       share-time per-PTE protection pass disappears from the fork path;
//   (c) lazy unshare on new-region creation: what the rejected lazy design
//       would save at mmap time;
//   (d) the domain-less portability fallback (Section 3.2.3): scheduler
//       grouping of zygote-like processes to reduce cross-group switches
//       (each of which would force a TLB flush without domains).

#include "bench/common.h"
#include "src/proc/scheduler.h"

namespace sat {
namespace {

bool AblationReferencedOnlyUnshare() {
  PrintHeader("Ablation (a)", "Copy only referenced PTEs on unshare");
  auto run = [](bool referenced_only) {
    SystemConfig config = SystemConfig::SharedPtp();
    config.copy_referenced_only_on_unshare = referenced_only;
    System system(config);
    AppRunner runner(&system.android());
    const AppFootprint fp = system.workload().Generate(AppProfile::Named("WPS"));
    return runner.Run(fp);
  };
  const AppRunStats full = run(false);
  const AppRunStats referenced = run(true);

  TablePrinter table({"Variant", "PTEs copied", "file faults"});
  table.AddRow({"copy all valid PTEs", std::to_string(full.ptes_copied),
                std::to_string(full.file_faults)});
  table.AddRow({"copy referenced only", std::to_string(referenced.ptes_copied),
                std::to_string(referenced.file_faults)});
  table.Print(std::cout);
  std::cout << "\n";

  bool ok = true;
  // Referenced-only must copy strictly less and fault at most slightly
  // more (skipped PTEs are repopulated by soft faults on demand).
  ok &= ShapeCheck(std::cout, "copy reduction holds (copied_ref < copied_all)",
                   1.0, referenced.ptes_copied < full.ptes_copied ? 1.0 : 0.0,
                   0.01);
  ok &= ShapeCheck(std::cout, "fault increase stays bounded (ratio)", 1.05,
                   static_cast<double>(referenced.file_faults) /
                       static_cast<double>(full.file_faults),
                   0.25);
  return ok;
}

bool AblationL1WriteProtect() {
  PrintHeader("Ablation (b)", "x86-style L1 write-protect hardware support");
  auto fork_cycles = [](bool l1_wp) {
    SystemConfig config = SystemConfig::SharedPtp();
    config.hw_l1_write_protect = l1_wp;
    System system(config);
    // First fork after boot performs the write-protect pass (or not).
    // system_server already forked at boot, so re-measure on a fresh
    // system where boot's own fork is excluded: measure the protection
    // work via counters instead.
    Task* app = system.android().ForkApp("probe");
    const ForkResult fork = system.kernel().last_fork_result();
    system.kernel().Exit(*app);
    return std::pair<Cycles, uint64_t>(
        fork.cycles, system.kernel().counters().ptes_write_protected);
  };
  const auto [baseline_cycles, baseline_wp] = fork_cycles(false);
  const auto [ablated_cycles, ablated_wp] = fork_cycles(true);

  TablePrinter table({"Variant", "fork cycles", "PTEs write-protected (boot+fork)"});
  table.AddRow({"software pass (ARM)", std::to_string(baseline_cycles),
                std::to_string(baseline_wp)});
  table.AddRow({"L1 write-protect (x86-like)", std::to_string(ablated_cycles),
                std::to_string(ablated_wp)});
  table.Print(std::cout);
  std::cout << "\n";

  bool ok = true;
  ok &= ShapeCheck(std::cout, "protection pass eliminated (PTEs protected)",
                   0.0, static_cast<double>(ablated_wp), 0.01);
  ok &= ShapeCheck(std::cout, "fork not slower without the pass", 1.0,
                   ablated_cycles <= baseline_cycles ? 1.0 : 0.0, 0.01);
  return ok;
}

bool AblationLazyUnshare() {
  PrintHeader("Ablation (c)", "Lazy unshare on new-region creation");
  auto run = [](bool lazy) {
    SystemConfig config = SystemConfig::SharedPtp();
    config.lazy_unshare_on_new_region = lazy;
    System system(config);
    AppRunner runner(&system.android());
    const AppFootprint fp =
        system.workload().Generate(AppProfile::Named("Chrome"));
    return runner.Run(fp);
  };
  const AppRunStats eager = run(false);
  const AppRunStats lazy = run(true);

  TablePrinter table({"Variant", "unshares", "PTEs copied", "file faults"});
  table.AddRow({"eager (paper's choice)", std::to_string(eager.ptps_unshared),
                std::to_string(eager.ptes_copied),
                std::to_string(eager.file_faults)});
  table.AddRow({"lazy (deferred to first fault)",
                std::to_string(lazy.ptps_unshared),
                std::to_string(lazy.ptes_copied),
                std::to_string(lazy.file_faults)});
  table.Print(std::cout);
  std::cout << "\n";

  // Deferring can only reduce (or equal) the number of unshares actually
  // performed: regions that are never touched never unshare.
  return ShapeCheck(std::cout, "lazy unshares <= eager unshares", 1.0,
                    lazy.ptps_unshared <= eager.ptps_unshared ? 1.0 : 0.0,
                    0.01);
}

bool AblationSchedulerGrouping() {
  PrintHeader("Ablation (d)",
              "Scheduler grouping of zygote-like processes (domain-less "
              "architecture fallback)");
  auto cross_switches = [](bool grouped) {
    System system(SystemConfig::SharedPtpAndTlb());
    Kernel& kernel = system.kernel();
    Scheduler scheduler(&kernel, grouped);
    for (int i = 0; i < 4; ++i) {
      scheduler.AddTask(system.android().ForkApp("app" + std::to_string(i)));
    }
    for (int i = 0; i < 3; ++i) {
      scheduler.AddTask(kernel.CreateTask("daemon" + std::to_string(i)));
    }
    for (int i = 0; i < 2000; ++i) {
      scheduler.RunQuantum();
    }
    return scheduler.stats();
  };
  const SchedulerStats plain = cross_switches(false);
  const SchedulerStats grouped = cross_switches(true);

  TablePrinter table({"Policy", "switches", "cross-group switches",
                      "cross-group %"});
  auto pct = [](const SchedulerStats& stats) {
    return FormatPercent(static_cast<double>(stats.cross_group_switches) /
                         static_cast<double>(stats.switches));
  };
  table.AddRow({"round-robin", std::to_string(plain.switches),
                std::to_string(plain.cross_group_switches), pct(plain)});
  table.AddRow({"grouped", std::to_string(grouped.switches),
                std::to_string(grouped.cross_group_switches), pct(grouped)});
  table.Print(std::cout);
  std::cout << "\n";

  return ShapeCheck(
      std::cout, "grouping cuts cross-group switches by >2x", 1.0,
      grouped.cross_group_switches * 2 < plain.cross_group_switches ? 1.0 : 0.0,
      0.01);
}

bool AblationFaultAround() {
  PrintHeader("Ablation (e)",
              "Fault-around (Linux 3.15+) vs shared PTPs: batching soft "
              "faults is not the same as deduplicating translations");
  struct Variant {
    const char* name;
    bool share;
    uint32_t fault_around;
  };
  const Variant variants[] = {{"stock", false, 0},
                              {"stock + fault-around(16)", false, 16},
                              {"shared PTPs", true, 0},
                              {"shared PTPs + fault-around(16)", true, 16}};
  TablePrinter table({"Variant", "file faults", "PTPs allocated",
                      "PTEs faulted around"});
  uint64_t faults[4];
  uint64_t ptps[4];
  int i = 0;
  for (const Variant& variant : variants) {
    SystemConfig config =
        variant.share ? SystemConfig::SharedPtp() : SystemConfig::Stock();
    config.fault_around_pages = variant.fault_around;
    System system(config);
    AppRunner runner(&system.android());
    const AppFootprint fp =
        system.workload().Generate(AppProfile::Named("Android Browser"));
    const AppRunStats stats = runner.Run(fp);
    table.AddRow({variant.name, std::to_string(stats.file_faults),
                  std::to_string(stats.ptps_allocated),
                  std::to_string(
                      system.kernel().counters().ptes_faulted_around)});
    faults[i] = stats.file_faults;
    ptps[i] = stats.ptps_allocated;
    i++;
  }
  table.Print(std::cout);
  std::cout << "\n";

  bool ok = true;
  // Fault-around does cut stock soft faults substantially...
  ok &= ShapeCheck(std::cout, "fault-around cuts stock faults by >25%", 1.0,
                   faults[1] * 4 < faults[0] * 3 ? 1.0 : 0.0, 0.01);
  // ...but it does nothing for page-table duplication...
  ok &= ShapeCheck(std::cout, "fault-around leaves PTP count ~unchanged", 1.0,
                   static_cast<double>(ptps[1]) / static_cast<double>(ptps[0]),
                   0.1);
  // ...and the two compose: sharing + fault-around is the best of all.
  ok &= ShapeCheck(std::cout, "sharing+FA has the fewest faults", 1.0,
                   faults[3] <= faults[1] && faults[3] <= faults[2] ? 1.0 : 0.0,
                   0.01);
  return ok;
}

int Run() {
  bool ok = true;
  ok &= AblationReferencedOnlyUnshare();
  std::cout << "\n";
  ok &= AblationL1WriteProtect();
  std::cout << "\n";
  ok &= AblationLazyUnshare();
  std::cout << "\n";
  ok &= AblationSchedulerGrouping();
  std::cout << "\n";
  ok &= AblationFaultAround();
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main() { return sat::Run(); }
