// Ablations of the Section 3.1.3 design choices:
//
//   (a) copy-referenced-PTEs-only on unshare ("Whether Page Table Entries
//       Should Be Copied Upon Unsharing"): cheaper unshares traded against
//       repopulation soft faults;
//   (b) x86-style first-level write-protect ("Hardware Support"): the
//       share-time per-PTE protection pass disappears from the fork path;
//   (c) lazy unshare on new-region creation: what the rejected lazy design
//       would save at mmap time;
//   (d) the domain-less portability fallback (Section 3.2.3): scheduler
//       grouping of zygote-like processes to reduce cross-group switches
//       (each of which would force a TLB flush without domains);
//   (e) fault-around vs shared PTPs.
//
// Every variant run is an independent system, submitted as one custom
// harness job (custom so that --config can never split an ablation pair);
// the five report sections print from the collected results afterwards.

#include "bench/common.h"
#include "src/proc/scheduler.h"

namespace sat {
namespace {

struct AblationResults {
  // (a) referenced-only unshare.
  AppRunStats unshare_full;
  AppRunStats unshare_referenced;
  // (b) L1 write-protect.
  Cycles wp_cycles[2] = {0, 0};  // [0]=software pass, [1]=L1 WP
  uint64_t wp_ptes[2] = {0, 0};
  // (c) lazy unshare.
  AppRunStats lazy_eager;
  AppRunStats lazy_lazy;
  // (d) scheduler grouping.
  SchedulerStats sched_plain;
  SchedulerStats sched_grouped;
  // (e) fault-around.
  uint64_t fa_faults[4] = {};
  uint64_t fa_ptps[4] = {};
  uint64_t fa_around[4] = {};
};

AppRunStats RunAppVariant(const SystemConfig& config, const char* app,
                          JobRecord& record) {
  System system(config);
  AppRunner runner(&system.android());
  const AppFootprint fp = system.workload().Generate(AppProfile::Named(app));
  const AppRunStats stats = runner.Run(fp);
  Harness::CaptureSystem(system, &record);
  return stats;
}

void AddJobs(Harness& harness, AblationResults& results) {
  // (a) copy-referenced-PTEs-only on unshare, WPS workload.
  for (const bool referenced_only : {false, true}) {
    harness.AddCustomJob(
        referenced_only ? "unshare/referenced-only" : "unshare/copy-all",
        [&harness, &results, referenced_only](JobRecord& record) {
          SystemConfig config = harness.Resolve(ConfigByName("shared-ptp"),
                                                record.config);
          config.copy_referenced_only_on_unshare = referenced_only;
          const AppRunStats stats = RunAppVariant(config, "WPS", record);
          (referenced_only ? results.unshare_referenced
                           : results.unshare_full) = stats;
        });
  }

  // (b) x86-style L1 write-protect: measure the first post-boot fork.
  for (const bool l1_wp : {false, true}) {
    harness.AddCustomJob(
        l1_wp ? "fork/l1-write-protect" : "fork/software-pass",
        [&harness, &results, l1_wp](JobRecord& record) {
          SystemConfig config = harness.Resolve(ConfigByName("shared-ptp"),
                                                record.config);
          config.hw_l1_write_protect = l1_wp;
          System system(config);
          const ForkOutcome outcome =
              system.android().ForkAppWithStats("probe");
          Task* app = outcome.child;
          const ForkResult& fork = outcome.stats;
          system.kernel().Exit(*app);
          results.wp_cycles[l1_wp ? 1 : 0] = fork.cycles;
          results.wp_ptes[l1_wp ? 1 : 0] =
              system.kernel().counters().ptes_write_protected;
          Harness::CaptureSystem(system, &record);
          record.Metric("fork.cycles", static_cast<double>(fork.cycles));
        });
  }

  // (c) lazy unshare on new-region creation, Chrome workload.
  for (const bool lazy : {false, true}) {
    harness.AddCustomJob(
        lazy ? "region/lazy-unshare" : "region/eager-unshare",
        [&harness, &results, lazy](JobRecord& record) {
          SystemConfig config = harness.Resolve(ConfigByName("shared-ptp"),
                                                record.config);
          config.lazy_unshare_on_new_region = lazy;
          const AppRunStats stats = RunAppVariant(config, "Chrome", record);
          (lazy ? results.lazy_lazy : results.lazy_eager) = stats;
        });
  }

  // (d) scheduler grouping of zygote-like processes.
  for (const bool grouped : {false, true}) {
    harness.AddCustomJob(
        grouped ? "sched/grouped" : "sched/round-robin",
        [&harness, &results, grouped](JobRecord& record) {
          const SystemConfig config =
              harness.Resolve(ConfigByName("shared-ptp-tlb"), record.config);
          System system(config);
          Kernel& kernel = system.kernel();
          Scheduler scheduler(&kernel, grouped);
          for (int i = 0; i < 4; ++i) {
            scheduler.AddTask(
                system.android().ForkApp("app" + std::to_string(i)));
          }
          for (int i = 0; i < 3; ++i) {
            scheduler.AddTask(
                kernel.CreateTask("daemon" + std::to_string(i)));
          }
          for (int i = 0; i < 2000; ++i) {
            scheduler.RunQuantum();
          }
          (grouped ? results.sched_grouped : results.sched_plain) =
              scheduler.stats();
          Harness::CaptureSystem(system, &record);
          record.Metric(
              "sched.cross_group_switches",
              static_cast<double>(scheduler.stats().cross_group_switches));
        });
  }

  // (e) fault-around vs shared PTPs, Android Browser workload.
  struct Variant {
    const char* job;
    bool share;
    uint32_t fault_around;
  };
  const Variant variants[] = {{"fa/stock", false, 0},
                              {"fa/stock-fa16", false, 16},
                              {"fa/shared", true, 0},
                              {"fa/shared-fa16", true, 16}};
  for (int i = 0; i < 4; ++i) {
    const Variant variant = variants[i];
    harness.AddCustomJob(
        variant.job, [&harness, &results, variant, i](JobRecord& record) {
          SystemConfig config = harness.Resolve(
              variant.share ? ConfigByName("shared-ptp")
                            : ConfigByName("stock"),
              record.config);
          config.fault_around_pages = variant.fault_around;
          System system(config);
          AppRunner runner(&system.android());
          const AppFootprint fp = system.workload().Generate(
              AppProfile::Named("Android Browser"));
          const AppRunStats stats = runner.Run(fp);
          results.fa_faults[i] = stats.file_faults;
          results.fa_ptps[i] = stats.ptps_allocated;
          results.fa_around[i] =
              system.kernel().counters().ptes_faulted_around;
          Harness::CaptureSystem(system, &record);
        });
  }
}

bool ReportReferencedOnlyUnshare(const AblationResults& results) {
  PrintHeader("Ablation (a)", "Copy only referenced PTEs on unshare");
  const AppRunStats& full = results.unshare_full;
  const AppRunStats& referenced = results.unshare_referenced;

  TablePrinter table({"Variant", "PTEs copied", "file faults"});
  table.AddRow({"copy all valid PTEs", std::to_string(full.ptes_copied),
                std::to_string(full.file_faults)});
  table.AddRow({"copy referenced only", std::to_string(referenced.ptes_copied),
                std::to_string(referenced.file_faults)});
  table.Print(std::cout);
  std::cout << "\n";

  bool ok = true;
  // Referenced-only must copy strictly less and fault at most slightly
  // more (skipped PTEs are repopulated by soft faults on demand).
  ok &= ShapeCheck(std::cout, "copy reduction holds (copied_ref < copied_all)",
                   1.0, referenced.ptes_copied < full.ptes_copied ? 1.0 : 0.0,
                   0.01);
  ok &= ShapeCheck(std::cout, "fault increase stays bounded (ratio)", 1.05,
                   static_cast<double>(referenced.file_faults) /
                       static_cast<double>(full.file_faults),
                   0.25);
  return ok;
}

bool ReportL1WriteProtect(const AblationResults& results) {
  PrintHeader("Ablation (b)", "x86-style L1 write-protect hardware support");
  TablePrinter table(
      {"Variant", "fork cycles", "PTEs write-protected (boot+fork)"});
  table.AddRow({"software pass (ARM)", std::to_string(results.wp_cycles[0]),
                std::to_string(results.wp_ptes[0])});
  table.AddRow({"L1 write-protect (x86-like)",
                std::to_string(results.wp_cycles[1]),
                std::to_string(results.wp_ptes[1])});
  table.Print(std::cout);
  std::cout << "\n";

  bool ok = true;
  ok &= ShapeCheck(std::cout, "protection pass eliminated (PTEs protected)",
                   0.0, static_cast<double>(results.wp_ptes[1]), 0.01);
  ok &= ShapeCheck(std::cout, "fork not slower without the pass", 1.0,
                   results.wp_cycles[1] <= results.wp_cycles[0] ? 1.0 : 0.0,
                   0.01);
  return ok;
}

bool ReportLazyUnshare(const AblationResults& results) {
  PrintHeader("Ablation (c)", "Lazy unshare on new-region creation");
  const AppRunStats& eager = results.lazy_eager;
  const AppRunStats& lazy = results.lazy_lazy;

  TablePrinter table({"Variant", "unshares", "PTEs copied", "file faults"});
  table.AddRow({"eager (paper's choice)", std::to_string(eager.ptps_unshared),
                std::to_string(eager.ptes_copied),
                std::to_string(eager.file_faults)});
  table.AddRow({"lazy (deferred to first fault)",
                std::to_string(lazy.ptps_unshared),
                std::to_string(lazy.ptes_copied),
                std::to_string(lazy.file_faults)});
  table.Print(std::cout);
  std::cout << "\n";

  // Deferring can only reduce (or equal) the number of unshares actually
  // performed: regions that are never touched never unshare.
  return ShapeCheck(std::cout, "lazy unshares <= eager unshares", 1.0,
                    lazy.ptps_unshared <= eager.ptps_unshared ? 1.0 : 0.0,
                    0.01);
}

bool ReportSchedulerGrouping(const AblationResults& results) {
  PrintHeader("Ablation (d)",
              "Scheduler grouping of zygote-like processes (domain-less "
              "architecture fallback)");
  const SchedulerStats& plain = results.sched_plain;
  const SchedulerStats& grouped = results.sched_grouped;

  TablePrinter table({"Policy", "switches", "cross-group switches",
                      "cross-group %"});
  auto pct = [](const SchedulerStats& stats) {
    return FormatPercent(static_cast<double>(stats.cross_group_switches) /
                         static_cast<double>(stats.switches));
  };
  table.AddRow({"round-robin", std::to_string(plain.switches),
                std::to_string(plain.cross_group_switches), pct(plain)});
  table.AddRow({"grouped", std::to_string(grouped.switches),
                std::to_string(grouped.cross_group_switches), pct(grouped)});
  table.Print(std::cout);
  std::cout << "\n";

  return ShapeCheck(
      std::cout, "grouping cuts cross-group switches by >2x", 1.0,
      grouped.cross_group_switches * 2 < plain.cross_group_switches ? 1.0 : 0.0,
      0.01);
}

bool ReportFaultAround(const AblationResults& results) {
  PrintHeader("Ablation (e)",
              "Fault-around (Linux 3.15+) vs shared PTPs: batching soft "
              "faults is not the same as deduplicating translations");
  const char* kNames[] = {"stock", "stock + fault-around(16)", "shared PTPs",
                          "shared PTPs + fault-around(16)"};
  TablePrinter table({"Variant", "file faults", "PTPs allocated",
                      "PTEs faulted around"});
  for (int i = 0; i < 4; ++i) {
    table.AddRow({kNames[i], std::to_string(results.fa_faults[i]),
                  std::to_string(results.fa_ptps[i]),
                  std::to_string(results.fa_around[i])});
  }
  table.Print(std::cout);
  std::cout << "\n";

  const uint64_t* faults = results.fa_faults;
  const uint64_t* ptps = results.fa_ptps;
  bool ok = true;
  // Fault-around does cut stock soft faults substantially...
  ok &= ShapeCheck(std::cout, "fault-around cuts stock faults by >25%", 1.0,
                   faults[1] * 4 < faults[0] * 3 ? 1.0 : 0.0, 0.01);
  // ...but it does nothing for page-table duplication...
  ok &= ShapeCheck(std::cout, "fault-around leaves PTP count ~unchanged", 1.0,
                   static_cast<double>(ptps[1]) / static_cast<double>(ptps[0]),
                   0.1);
  // ...and the two compose: sharing + fault-around is the best of all.
  ok &= ShapeCheck(std::cout, "sharing+FA has the fewest faults", 1.0,
                   faults[3] <= faults[1] && faults[3] <= faults[2] ? 1.0 : 0.0,
                   0.01);
  return ok;
}

int Run(const BenchOptions& options) {
  Harness harness("ablation", options);
  AblationResults results;
  AddJobs(harness, results);
  if (!harness.Run()) {
    return 1;
  }

  bool ok = true;
  ok &= ReportReferencedOnlyUnshare(results);
  std::cout << "\n";
  ok &= ReportL1WriteProtect(results);
  std::cout << "\n";
  ok &= ReportLazyUnshare(results);
  std::cout << "\n";
  ok &= ReportSchedulerGrouping(results);
  std::cout << "\n";
  ok &= ReportFaultAround(results);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  return sat::Run(options);
}
