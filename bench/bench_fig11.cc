// Figure 11: page-table pages allocated per application, normalized to the
// stock kernel with the original alignment. Paper shape: sharing cuts PTP
// allocation 35% with the original alignment and 26% with 2 MB alignment
// (the 2 MB layout spreads data over more slots, so its absolute counts
// are higher for both kernels).

#include "bench/common.h"

namespace sat {
namespace {

constexpr int kRuns = 3;

int Run() {
  PrintHeader("Figure 11",
              "# of PTPs allocated (normalized to stock, original alignment)");

  TablePrinter table({"Benchmark", "Stock", "Shared PTP", "Stock-2MB",
                      "Shared PTP-2MB"});
  double reduction_sum = 0;
  double reduction_2mb_sum = 0;
  const auto apps = AppProfile::PaperBenchmarks();
  for (const AppProfile& app : apps) {
    const double stock =
        MeanPtpsAllocated(RunApp(SystemConfig::Stock(), app.name, kRuns));
    const double shared =
        MeanPtpsAllocated(RunApp(SystemConfig::SharedPtp(), app.name, kRuns));
    const double stock_2mb =
        MeanPtpsAllocated(RunApp(SystemConfig::Stock2Mb(), app.name, kRuns));
    const double shared_2mb =
        MeanPtpsAllocated(RunApp(SystemConfig::SharedPtp2Mb(), app.name, kRuns));
    table.AddRow({app.name, FormatPercent(stock / stock),
                  FormatPercent(shared / stock),
                  FormatPercent(stock_2mb / stock),
                  FormatPercent(shared_2mb / stock)});
    // Both reductions are relative to the stock kernel with the
    // *original* alignment, as in the paper's Section 4.2.3 ("compared to
    // the stock kernel with the original alignment ... 35% ... and with
    // 2MB alignment it reduces PTP allocation by 26%").
    reduction_sum += (1.0 - shared / stock) * 100.0;
    reduction_2mb_sum += (1.0 - shared_2mb / stock) * 100.0;
  }
  table.Print(std::cout);

  const auto n = static_cast<double>(apps.size());
  std::cout << "\n";
  bool ok = true;
  ok &= ShapeCheck(std::cout, "avg PTP reduction, original align (%)", 35.0,
                   reduction_sum / n, 0.5);
  ok &= ShapeCheck(std::cout, "avg PTP reduction, 2MB align (%)", 26.0,
                   reduction_2mb_sum / n, 0.6);
  // Paper: the original-alignment reduction exceeds the 2MB one (the 2MB
  // layout spends extra data PTPs), yet both are substantial.
  ok &= ShapeCheck(std::cout, "original reduction > 2MB reduction", 1.0,
                   reduction_sum > reduction_2mb_sum ? 1.0 : 0.0, 0.01);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main() { return sat::Run(); }
