// Figure 11: page-table pages allocated per application, normalized to the
// stock kernel with the original alignment. Paper shape: sharing cuts PTP
// allocation 35% with the original alignment and 26% with 2 MB alignment
// (the 2 MB layout spreads data over more slots, so its absolute counts
// are higher for both kernels).
//
// One harness job per (configuration, application) pair, as in Figure 10.

#include <array>

#include "bench/common.h"

namespace sat {
namespace {

const char* kKeys[] = {"stock", "shared-ptp", "stock-2mb", "shared-ptp-2mb"};

int Run(const BenchOptions& options) {
  PrintHeader("Figure 11",
              "# of PTPs allocated (normalized to stock, original alignment)");

  const auto apps = AppProfile::PaperBenchmarks();
  const int runs = options.smoke ? 1 : 3;
  std::vector<std::array<double, 4>> ptps(apps.size());
  Harness harness("fig11", options);
  for (size_t i = 0; i < apps.size(); ++i) {
    for (size_t c = 0; c < 4; ++c) {
      harness.AddJob(
          std::string(kKeys[c]) + "/" + apps[i].name, ConfigByName(kKeys[c]),
          [&ptps, i, c, name = apps[i].name, runs](System& system,
                                                   JobRecord& record) {
            AppRunner runner(&system.android());
            const AppFootprint fp =
                system.workload().Generate(AppProfile::Named(name));
            std::vector<AppRunStats> stats;
            for (int r = 0; r < runs; ++r) {
              stats.push_back(runner.Run(fp));
            }
            ptps[i][c] = MeanPtpsAllocated(stats);
            record.Metric("mean_ptps_allocated", ptps[i][c]);
          });
    }
  }
  if (!harness.Run()) {
    return 1;
  }
  if (!harness.ran_all()) {
    TablePrinter partial({"Job", "mean PTPs allocated"});
    for (const JobRecord& record : harness.records()) {
      if (!record.metrics.empty()) {
        partial.AddRow(
            {record.config,
             FormatDouble(MetricOr(record, "mean_ptps_allocated"), 1)});
      }
    }
    partial.Print(std::cout);
    std::cout << "\n--config filter active: normalized columns and shape "
                 "checks skipped\n";
    return 0;
  }

  TablePrinter table({"Benchmark", "Stock", "Shared PTP", "Stock-2MB",
                      "Shared PTP-2MB"});
  double reduction_sum = 0;
  double reduction_2mb_sum = 0;
  for (size_t i = 0; i < apps.size(); ++i) {
    const double stock = ptps[i][0];
    const double shared = ptps[i][1];
    const double stock_2mb = ptps[i][2];
    const double shared_2mb = ptps[i][3];
    table.AddRow({apps[i].name, FormatPercent(stock / stock),
                  FormatPercent(shared / stock),
                  FormatPercent(stock_2mb / stock),
                  FormatPercent(shared_2mb / stock)});
    // Both reductions are relative to the stock kernel with the
    // *original* alignment, as in the paper's Section 4.2.3 ("compared to
    // the stock kernel with the original alignment ... 35% ... and with
    // 2MB alignment it reduces PTP allocation by 26%").
    reduction_sum += (1.0 - shared / stock) * 100.0;
    reduction_2mb_sum += (1.0 - shared_2mb / stock) * 100.0;
  }
  table.Print(std::cout);

  const auto n = static_cast<double>(apps.size());
  std::cout << "\n";
  bool ok = true;
  ok &= ShapeCheck(std::cout, "avg PTP reduction, original align (%)", 35.0,
                   reduction_sum / n, 0.5);
  ok &= ShapeCheck(std::cout, "avg PTP reduction, 2MB align (%)", 26.0,
                   reduction_2mb_sum / n, 0.6);
  // Paper: the original-alignment reduction exceeds the 2MB one (the 2MB
  // layout spends extra data PTPs), yet both are substantial.
  ok &= ShapeCheck(std::cout, "original reduction > 2MB reduction", 1.0,
                   reduction_sum > reduction_2mb_sum ? 1.0 : 0.0, 0.01);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  return sat::Run(options);
}
