// Figure 2: breakdown of the instruction pages accessed per application,
// by code category (private code / non-preloaded shared libs / zygote
// program binary / zygote Java libs / zygote dynamic libs).
//
// Pure workload characterization: the factory's random stream is
// order-dependent across apps, so the whole generation runs as a single
// harness job (the numbers must not depend on --jobs).

#include "bench/common.h"
#include "src/workload/analysis.h"

namespace sat {
namespace {

int Run(const BenchOptions& options) {
  PrintHeader("Figure 2", "Breakdown of the instruction pages accessed");

  const auto apps = AppProfile::PaperBenchmarks();
  std::vector<CategoryBreakdown> breakdowns(apps.size());

  Harness harness("fig2", options);
  harness.AddCustomJob("characterization", [&](JobRecord& record) {
    LibraryCatalog catalog = LibraryCatalog::AndroidDefault();
    WorkloadFactory factory(&catalog);
    double shared_fraction_sum = 0;
    for (size_t i = 0; i < apps.size(); ++i) {
      const AppFootprint fp = factory.Generate(apps[i]);
      breakdowns[i] = AnalyzeCategories(fp);
      shared_fraction_sum += breakdowns[i].SharedCodePageFraction();
    }
    record.Metric("apps", static_cast<double>(apps.size()));
    record.Metric(
        "avg.shared_code_page_pct",
        shared_fraction_sum / static_cast<double>(apps.size()) * 100);
  });
  if (!harness.Run()) {
    return 1;
  }

  TablePrinter table({"Benchmark", "total", "private", "other .so",
                      "app_process", "zygote Java", "zygote .so"});
  double share_sum[5] = {};
  double shared_fraction_sum = 0;
  for (size_t i = 0; i < apps.size(); ++i) {
    const CategoryBreakdown& b = breakdowns[i];
    table.AddRow(
        {apps[i].name, std::to_string(b.TotalPages()),
         std::to_string(b.pages[static_cast<int>(CodeCategory::kPrivateCode)]),
         std::to_string(b.pages[static_cast<int>(CodeCategory::kOtherSharedLib)]),
         std::to_string(
             b.pages[static_cast<int>(CodeCategory::kZygoteProgramBinary)]),
         std::to_string(b.pages[static_cast<int>(CodeCategory::kZygoteJavaLib)]),
         std::to_string(
             b.pages[static_cast<int>(CodeCategory::kZygoteDynamicLib)])});
    for (int c = 0; c < 5; ++c) {
      share_sum[c] +=
          static_cast<double>(b.pages[c]) / static_cast<double>(b.TotalPages());
    }
    shared_fraction_sum += b.SharedCodePageFraction();
  }
  table.Print(std::cout);

  const auto n = static_cast<double>(apps.size());
  std::cout << "\nAverage shares of the instruction-page footprint:\n";
  bool ok = true;
  // Paper averages (Section 2.3.1): shared code 92.8% of the footprint,
  // of which 35.4% zygote .so, 32.4% zygote Java, 0.1% app_process,
  // 24.9% other shared libraries.
  ok &= ShapeCheck(std::cout, "shared code % of inst pages", 92.8,
                   shared_fraction_sum / n * 100, 0.08);
  ok &= ShapeCheck(std::cout, "zygote-preloaded .so %", 35.4,
                   share_sum[static_cast<int>(CodeCategory::kZygoteDynamicLib)] /
                       n * 100,
                   0.25);
  ok &= ShapeCheck(std::cout, "zygote Java libs %", 32.4,
                   share_sum[static_cast<int>(CodeCategory::kZygoteJavaLib)] / n *
                       100,
                   0.25);
  ok &= ShapeCheck(std::cout, "other shared libs %", 24.9,
                   share_sum[static_cast<int>(CodeCategory::kOtherSharedLib)] / n *
                       100,
                   0.25);
  ok &= ShapeCheck(std::cout, "app_process %", 0.1,
                   share_sum[static_cast<int>(CodeCategory::kZygoteProgramBinary)] /
                       n * 100,
                   1.0);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  return sat::Run(options);
}
