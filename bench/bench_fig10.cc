// Figure 10: percent reduction in page faults for file-based mappings over
// each application's full execution, shared-PTP kernel vs stock, for both
// alignments. Paper shape: average 38% reduction; Angrybirds and Google
// Calendar above 70%.

#include "bench/common.h"

namespace sat {
namespace {

constexpr int kRuns = 3;

int Run() {
  PrintHeader("Figure 10",
              "Percent reduction in file-backed page faults (vs stock)");

  TablePrinter table({"Benchmark", "original align", "2MB align",
                      "stock faults", "shared faults"});
  double reduction_sum = 0;
  double angry_calendar_min = 100;
  const auto apps = AppProfile::PaperBenchmarks();
  for (const AppProfile& app : apps) {
    const double stock = MeanFileFaults(RunApp(SystemConfig::Stock(), app.name, kRuns));
    const double shared =
        MeanFileFaults(RunApp(SystemConfig::SharedPtp(), app.name, kRuns));
    const double stock_2mb =
        MeanFileFaults(RunApp(SystemConfig::Stock2Mb(), app.name, kRuns));
    const double shared_2mb =
        MeanFileFaults(RunApp(SystemConfig::SharedPtp2Mb(), app.name, kRuns));
    const double reduction = (1.0 - shared / stock) * 100.0;
    const double reduction_2mb = (1.0 - shared_2mb / stock_2mb) * 100.0;
    table.AddRow({app.name, FormatDouble(reduction, 1) + "%",
                  FormatDouble(reduction_2mb, 1) + "%",
                  FormatDouble(stock, 0), FormatDouble(shared, 0)});
    reduction_sum += reduction;
    if (app.name == "Angrybirds" || app.name == "Google Calendar") {
      angry_calendar_min = std::min(angry_calendar_min, reduction);
    }
  }
  table.Print(std::cout);

  std::cout << "\n";
  bool ok = true;
  ok &= ShapeCheck(std::cout, "average fault reduction (%)", 38.0,
                   reduction_sum / static_cast<double>(apps.size()), 0.45);
  ok &= ShapeCheck(std::cout,
                   "Angrybirds & Google Calendar reduction floor (%)", 70.0,
                   angry_calendar_min, 0.35);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main() { return sat::Run(); }
