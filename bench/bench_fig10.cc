// Figure 10: percent reduction in page faults for file-based mappings over
// each application's full execution, shared-PTP kernel vs stock, for both
// alignments. Paper shape: average 38% reduction; Angrybirds and Google
// Calendar above 70%.
//
// One harness job per (configuration, application) pair — 44 independent
// systems that run concurrently under --jobs.

#include <array>

#include "bench/common.h"

namespace sat {
namespace {

const char* kKeys[] = {"stock", "shared-ptp", "stock-2mb", "shared-ptp-2mb"};

int Run(const BenchOptions& options) {
  PrintHeader("Figure 10",
              "Percent reduction in file-backed page faults (vs stock)");

  const auto apps = AppProfile::PaperBenchmarks();
  // Warm reruns are part of Figure 10's shape (the Angrybirds/Calendar
  // floor needs the 3-run mean), and the full bench runs in under a
  // second — so --smoke does not reduce the run count here.
  const int runs = 3;
  std::vector<std::array<double, 4>> faults(apps.size());
  Harness harness("fig10", options);
  for (size_t i = 0; i < apps.size(); ++i) {
    for (size_t c = 0; c < 4; ++c) {
      harness.AddJob(
          std::string(kKeys[c]) + "/" + apps[i].name, ConfigByName(kKeys[c]),
          [&faults, i, c, name = apps[i].name, runs](System& system,
                                                     JobRecord& record) {
            AppRunner runner(&system.android());
            const AppFootprint fp =
                system.workload().Generate(AppProfile::Named(name));
            std::vector<AppRunStats> stats;
            for (int r = 0; r < runs; ++r) {
              stats.push_back(runner.Run(fp));
            }
            faults[i][c] = MeanFileFaults(stats);
            record.Metric("mean_file_faults", faults[i][c]);
          });
    }
  }
  if (!harness.Run()) {
    return 1;
  }
  if (!harness.ran_all()) {
    TablePrinter partial({"Job", "mean file faults"});
    for (const JobRecord& record : harness.records()) {
      if (!record.metrics.empty()) {
        partial.AddRow({record.config,
                        FormatDouble(MetricOr(record, "mean_file_faults"), 0)});
      }
    }
    partial.Print(std::cout);
    std::cout << "\n--config filter active: reductions and shape checks "
                 "skipped\n";
    return 0;
  }

  TablePrinter table({"Benchmark", "original align", "2MB align",
                      "stock faults", "shared faults"});
  double reduction_sum = 0;
  double angry_calendar_min = 100;
  for (size_t i = 0; i < apps.size(); ++i) {
    const double stock = faults[i][0];
    const double shared = faults[i][1];
    const double stock_2mb = faults[i][2];
    const double shared_2mb = faults[i][3];
    const double reduction = (1.0 - shared / stock) * 100.0;
    const double reduction_2mb = (1.0 - shared_2mb / stock_2mb) * 100.0;
    table.AddRow({apps[i].name, FormatDouble(reduction, 1) + "%",
                  FormatDouble(reduction_2mb, 1) + "%",
                  FormatDouble(stock, 0), FormatDouble(shared, 0)});
    reduction_sum += reduction;
    if (apps[i].name == "Angrybirds" || apps[i].name == "Google Calendar") {
      angry_calendar_min = std::min(angry_calendar_min, reduction);
    }
  }
  table.Print(std::cout);

  std::cout << "\n";
  bool ok = true;
  ok &= ShapeCheck(std::cout, "average fault reduction (%)", 38.0,
                   reduction_sum / static_cast<double>(apps.size()), 0.45);
  ok &= ShapeCheck(std::cout,
                   "Angrybirds & Google Calendar reduction floor (%)", 70.0,
                   angry_calendar_min, 0.35);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  return sat::Run(options);
}
