// Shared helpers for the evaluation harness. Every bench binary reproduces
// one table or figure of the paper: it runs the experiment on the
// simulated machine, prints the same rows/series the paper reports, and
// emits "[shape]" lines comparing against the paper's published values.
//
// Absolute cycle counts are not expected to match a 2012 Nexus 7; the
// shape — who wins, by roughly what factor, where crossovers fall — is the
// reproduction target (see EXPERIMENTS.md).

#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <iostream>
#include <string>
#include <vector>

#include "src/core/sat.h"
#include "src/stats/summary.h"

namespace sat {

inline void PrintHeader(const std::string& id, const std::string& title) {
  std::cout << "==============================================================\n"
            << id << ": " << title << "\n"
            << "==============================================================\n";
}

// The four kernel/alignment configurations of the launch and steady-state
// experiments (Figures 7-12), in the paper's order.
inline std::vector<SystemConfig> LaunchConfigs() {
  return {SystemConfig::Stock(), SystemConfig::SharedPtpAndTlb(),
          SystemConfig::Stock2Mb(), SystemConfig::SharedPtpAndTlb2Mb()};
}

inline std::vector<SystemConfig> SteadyStateConfigs() {
  return {SystemConfig::Stock(), SystemConfig::SharedPtp(),
          SystemConfig::Stock2Mb(), SystemConfig::SharedPtp2Mb()};
}

// Runs one app under one configuration: a fresh booted system, `runs`
// consecutive executions (first cold, rest warm relaunches — the paper
// averages over 10 interactive executions). Returns per-run stats.
inline std::vector<AppRunStats> RunApp(const SystemConfig& config,
                                       const std::string& app_name,
                                       int runs) {
  System system(config);
  AppRunner runner(&system.android());
  const AppFootprint fp =
      system.workload().Generate(AppProfile::Named(app_name));
  std::vector<AppRunStats> out;
  for (int i = 0; i < runs; ++i) {
    out.push_back(runner.Run(fp));
  }
  return out;
}

inline double MeanFileFaults(const std::vector<AppRunStats>& runs) {
  double total = 0;
  for (const AppRunStats& run : runs) {
    total += static_cast<double>(run.file_faults);
  }
  return total / static_cast<double>(runs.size());
}

inline double MeanPtpsAllocated(const std::vector<AppRunStats>& runs) {
  double total = 0;
  for (const AppRunStats& run : runs) {
    total += static_cast<double>(run.ptps_allocated);
  }
  return total / static_cast<double>(runs.size());
}

// Parses `--trace-out=<path>` from argv. Returns the path, or "" when the
// flag is absent. When present, the bench re-runs a representative slice
// of its workload with tracing enabled and exports the event timeline —
// the benchmark's normal (tracing-off) output and cycle totals are never
// affected.
inline std::string TraceOutPath(int argc, char** argv) {
  const std::string prefix = "--trace-out=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return arg.substr(prefix.size());
    }
  }
  return {};
}

// Parses `--phys-mb=<N>` from argv: the simulated machine's physical
// memory size in MB. Returns 0 when the flag is absent (each config keeps
// its 512 MB default). Small values put the bench in the memory-pressure
// regime the paper targets (Section 2.1's 1 GB-class devices): runs then
// exercise direct reclaim and, below the working set, the OOM killer.
inline uint64_t PhysMbArg(int argc, char** argv) {
  const std::string prefix = "--phys-mb=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::stoull(arg.substr(prefix.size()));
    }
  }
  return 0;
}

// Applies a --phys-mb override to a config (no-op when mb == 0).
inline SystemConfig WithPhysMb(SystemConfig config, uint64_t phys_mb) {
  if (phys_mb > 0) {
    config.phys_bytes = phys_mb * 1024 * 1024;
  }
  return config;
}

// Parses `--swap-mb=<N>` from argv: the size of the compressed zram swap
// device in MB. Returns 0 when the flag is absent (swap disabled).
// Combined with --phys-mb, this puts runs in the regime where anonymous
// memory survives pressure by being compressed instead of OOM-killed.
inline uint64_t SwapMbArg(int argc, char** argv) {
  const std::string prefix = "--swap-mb=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::stoull(arg.substr(prefix.size()));
    }
  }
  return 0;
}

// Applies a --swap-mb override to a config (no-op when mb == 0).
inline SystemConfig WithSwapMb(SystemConfig config, uint64_t swap_mb) {
  if (swap_mb > 0) {
    config.swap_bytes = swap_mb * 1024 * 1024;
  }
  return config;
}

// Prints the memory-pressure outcome of a finished system: how often the
// allocate → reclaim → swap-out → OOM-kill chain ran. All zeros on the
// default 512 MB machine; nonzero under --phys-mb pressure runs. With
// --swap-mb the swap traffic and the achieved compression ratio are
// reported too.
inline void PrintPressureSummary(System& system) {
  const KernelCounters& c = system.kernel().counters();
  std::cout << "memory pressure [" << system.name()
            << "]: " << c.direct_reclaims << " direct reclaim(s), "
            << c.oom_kills << " OOM kill(s), " << c.forks_failed
            << " failed fork(s)\n";
  const ZramStore& zram = system.kernel().zram();
  if (zram.enabled()) {
    std::cout << "  swap: " << c.swap_outs << " out, " << c.swap_ins << " in ("
              << c.swap_ins_cache_hit << " cache hit(s)), "
              << c.swap_clean_drops << " clean drop(s), " << c.kswapd_runs
              << " kswapd run(s)";
    if (zram.bytes_compressed_total() > 0) {
      const double ratio =
          static_cast<double>(zram.pages_stored_total()) * kPageSize /
          static_cast<double>(zram.bytes_compressed_total());
      std::cout << ", compression ratio " << FormatDouble(ratio, 2) << ":1";
    }
    std::cout << "\n";
  }
}

// Exports `system`'s recorded trace as Chrome trace_event JSON (loadable
// in about:tracing / Perfetto) and prints the latency-histogram summary.
inline bool DumpTrace(System& system, const std::string& path) {
  if (!system.tracer().WriteChromeTraceFile(path)) {
    std::cerr << "error: could not write trace to " << path << "\n";
    return false;
  }
  std::cout << "\nwrote Chrome trace (" << system.tracer().total_recorded()
            << " events) to " << path << "\n"
            << system.tracer().SummaryText();
  return true;
}

}  // namespace sat

#endif  // BENCH_COMMON_H_
