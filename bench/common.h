// Shared helpers for the evaluation harness. Every bench binary reproduces
// one table or figure of the paper: it runs the experiment on the
// simulated machine, prints the same rows/series the paper reports, and
// emits "[shape]" lines comparing against the paper's published values.
//
// Absolute cycle counts are not expected to match a 2012 Nexus 7; the
// shape — who wins, by roughly what factor, where crossovers fall — is the
// reproduction target (see EXPERIMENTS.md).

#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/core/sat.h"
#include "src/driver/results.h"
#include "src/driver/worker_pool.h"
#include "src/scenario/runner.h"
#include "src/stats/summary.h"

namespace sat {

inline void PrintHeader(const std::string& id, const std::string& title) {
  std::cout << "==============================================================\n"
            << id << ": " << title << "\n"
            << "==============================================================\n";
}

// The four kernel/alignment configurations of the launch and steady-state
// experiments (Figures 7-12), in the paper's order.
inline std::vector<SystemConfig> LaunchConfigs() {
  return {ConfigByName("stock"), ConfigByName("shared-ptp-tlb"),
          ConfigByName("stock-2mb"), ConfigByName("shared-ptp-tlb-2mb")};
}

inline std::vector<SystemConfig> SteadyStateConfigs() {
  return {ConfigByName("stock"), ConfigByName("shared-ptp"),
          ConfigByName("stock-2mb"), ConfigByName("shared-ptp-2mb")};
}

// Runs one app under one configuration: a fresh booted system, `runs`
// consecutive executions (first cold, rest warm relaunches — the paper
// averages over 10 interactive executions). Returns per-run stats.
inline std::vector<AppRunStats> RunApp(const SystemConfig& config,
                                       const std::string& app_name,
                                       int runs) {
  System system(config);
  AppRunner runner(&system.android());
  const AppFootprint fp =
      system.workload().Generate(AppProfile::Named(app_name));
  std::vector<AppRunStats> out;
  for (int i = 0; i < runs; ++i) {
    out.push_back(runner.Run(fp));
  }
  return out;
}

inline double MeanFileFaults(const std::vector<AppRunStats>& runs) {
  double total = 0;
  for (const AppRunStats& run : runs) {
    total += static_cast<double>(run.file_faults);
  }
  return total / static_cast<double>(runs.size());
}

inline double MeanPtpsAllocated(const std::vector<AppRunStats>& runs) {
  double total = 0;
  for (const AppRunStats& run : runs) {
    total += static_cast<double>(run.ptps_allocated);
  }
  return total / static_cast<double>(runs.size());
}

// Applies a --phys-mb override to a config (no-op when mb == 0).
inline SystemConfig WithPhysMb(SystemConfig config, uint64_t phys_mb) {
  if (phys_mb > 0) {
    config.phys_bytes = phys_mb * 1024 * 1024;
  }
  return config;
}

// Applies a --swap-mb override to a config (no-op when mb == 0).
inline SystemConfig WithSwapMb(SystemConfig config, uint64_t swap_mb) {
  if (swap_mb > 0) {
    config.swap_bytes = swap_mb * 1024 * 1024;
  }
  return config;
}

// Prints the memory-pressure outcome of a finished system: how often the
// allocate → reclaim → swap-out → OOM-kill chain ran. All zeros on the
// default 512 MB machine; nonzero under --phys-mb pressure runs. With
// --swap-mb the swap traffic and the achieved compression ratio are
// reported too.
inline void PrintPressureSummary(System& system) {
  const KernelCounters& c = system.kernel().counters();
  std::cout << "memory pressure [" << system.name()
            << "]: " << c.direct_reclaims << " direct reclaim(s), "
            << c.oom_kills << " OOM kill(s), " << c.forks_failed
            << " failed fork(s)\n";
  const ZramStore& zram = system.kernel().zram();
  if (zram.enabled()) {
    std::cout << "  swap: " << c.swap_outs << " out, " << c.swap_ins << " in ("
              << c.swap_ins_cache_hit << " cache hit(s)), "
              << c.swap_clean_drops << " clean drop(s), " << c.kswapd_runs
              << " kswapd run(s)";
    if (zram.bytes_compressed_total() > 0) {
      const double ratio =
          static_cast<double>(zram.pages_stored_total()) * kPageSize /
          static_cast<double>(zram.bytes_compressed_total());
      std::cout << ", compression ratio " << FormatDouble(ratio, 2) << ":1";
    }
    std::cout << "\n";
  }
}

// Exports `system`'s recorded trace as Chrome trace_event JSON (loadable
// in about:tracing / Perfetto) and prints the latency-histogram summary.
inline bool DumpTrace(System& system, const std::string& path) {
  if (!system.tracer().WriteChromeTraceFile(path)) {
    std::cerr << "error: could not write trace to " << path << "\n";
    return false;
  }
  std::cout << "\nwrote Chrome trace (" << system.tracer().total_recorded()
            << " events) to " << path << "\n"
            << system.tracer().SummaryText();
  return true;
}

// Looks up a numeric metric captured in a JobRecord; `fallback` when the
// record does not have it (e.g. the job was skipped by --config).
inline double MetricOr(const JobRecord& record, std::string_view name,
                       double fallback = 0.0) {
  for (const auto& metric : record.metrics) {
    if (metric.first == name) {
      return metric.second;
    }
  }
  return fallback;
}

// PrintPressureSummary for a job record collected on a worker thread: the
// same allocate → reclaim → swap-out → OOM-kill summary, read back from
// the captured counters instead of a live System.
inline void PrintPressureSummary(const JobRecord& record) {
  std::cout << "memory pressure [" << record.config
            << "]: " << MetricOr(record, "counters.direct_reclaims")
            << " direct reclaim(s), " << MetricOr(record, "counters.oom_kills")
            << " OOM kill(s), " << MetricOr(record, "counters.forks_failed")
            << " failed fork(s)\n";
  if (MetricOr(record, "swap.pages_stored", -1.0) >= 0.0) {
    std::cout << "  swap: " << MetricOr(record, "counters.swap_outs")
              << " out, " << MetricOr(record, "counters.swap_ins") << " in ("
              << MetricOr(record, "counters.swap_ins_cache_hit")
              << " cache hit(s)), "
              << MetricOr(record, "counters.swap_clean_drops")
              << " clean drop(s), " << MetricOr(record, "counters.kswapd_runs")
              << " kswapd run(s)";
    const double ratio = MetricOr(record, "swap.compression_ratio");
    if (ratio > 0) {
      std::cout << ", compression ratio " << FormatDouble(ratio, 2) << ":1";
    }
    std::cout << "\n";
  }
}

// ---------------------------------------------------------------------------
// The experiment harness: every bench binary parses BenchOptions, hands its
// independent measurement units to a Harness as jobs, and prints its tables
// and shape checks from the collected records after Run(). The driver
// (src/driver/) runs the jobs on --jobs workers; records come back in
// submission order, so parallel output is bit-identical to a serial run.
// ---------------------------------------------------------------------------

// Common command-line options, shared by every bench binary.
//
//   --jobs=N / --jobs N          worker threads (default: all host cores)
//   --json-out=PATH              write BENCH_<bench>.json; PATH ending in
//                                ".json" is the file, otherwise a directory
//   --config=KEY                 run only jobs whose configuration matches
//                                the named registry entry (see
//                                NamedConfigKeyList())
//   --smoke                      reduced footprints for CI smoke runs
//   --seed=S                     base seed; each job derives its own via
//                                DeriveJobSeed (default: per-config seeds)
//   --phys-mb=N / --swap-mb=N    simulated DRAM / zram size overrides
//   --trace-out=PATH             export a Chrome trace of a representative
//                                slice (bench-specific; tracing-off results
//                                are never affected)
//   --job-timeout=SECONDS        per-job deadline; a job exceeding it is
//                                recorded with status "timeout" (0 = off)
//   --retries=N                  re-run a failed/timed-out job up to N
//                                times with the same derived seed
//   --scenario=FILE.scn          precondition every System-backed job by
//                                running the scenario's element graph on
//                                its System first (fleet state — page
//                                cache, zram, KSM merges — before the
//                                bench's own measurement)
struct BenchOptions {
  uint32_t jobs = 0;  // 0 until parsed; ParseHarnessArgs defaults it
  std::string json_out;
  std::string only_config;
  bool smoke = false;
  uint64_t seed = 0;
  bool seed_set = false;
  uint64_t phys_mb = 0;
  uint64_t swap_mb = 0;
  std::string trace_out;
  double job_timeout_s = 0;
  uint32_t retries = 0;
  std::string scenario;  // .scn path; empty = no preconditioning
  ScenarioGraph scenario_graph;
  bool scenario_set = false;
};

// --smoke shrink factor applied to scenario populations, rates, and ticks.
inline constexpr double kScenarioSmokeScale = 0.05;

// Parses and REMOVES the harness flags from argv (so flags meant for other
// consumers — e.g. google-benchmark in bench_pagefault — pass through
// untouched). The single argument parser every bench binary shares: one
// flag vocabulary, one validation pass, one error style. Exits with a
// usage message on a malformed or unknown --config, and with the parser's
// file:line:column diagnostic on a bad --scenario file.
inline BenchOptions ParseHarnessArgs(int* argc, char** argv) {
  BenchOptions options;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    // Accepts both --flag=value and --flag value.
    const auto value = [&](const char* flag, std::string* v) {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) {
        *v = arg.substr(prefix.size());
        return true;
      }
      if (arg == flag && i + 1 < *argc) {
        *v = argv[++i];
        return true;
      }
      return false;
    };
    std::string v;
    if (value("--jobs", &v)) {
      options.jobs = static_cast<uint32_t>(std::stoul(v));
    } else if (value("--json-out", &v)) {
      options.json_out = v;
    } else if (value("--config", &v)) {
      options.only_config = v;
    } else if (arg == "--smoke") {
      options.smoke = true;
    } else if (value("--seed", &v)) {
      options.seed = std::stoull(v);
      options.seed_set = true;
    } else if (value("--phys-mb", &v)) {
      options.phys_mb = std::stoull(v);
    } else if (value("--swap-mb", &v)) {
      options.swap_mb = std::stoull(v);
    } else if (value("--trace-out", &v)) {
      options.trace_out = v;
    } else if (value("--job-timeout", &v)) {
      options.job_timeout_s = std::stod(v);
    } else if (value("--retries", &v)) {
      options.retries = static_cast<uint32_t>(std::stoul(v));
    } else if (value("--scenario", &v)) {
      options.scenario = v;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  argv[*argc] = nullptr;
  if (options.jobs == 0) {
    options.jobs = HardwareJobs();
  }
  if (!options.only_config.empty() &&
      !TryConfigByName(options.only_config).has_value()) {
    std::cerr << "error: unknown --config '" << options.only_config
              << "'; known configs: " << NamedConfigKeyList() << "\n";
    std::exit(2);
  }
  if (!options.scenario.empty()) {
    ScenarioParseResult parsed =
        ParseScenarioFile(options.scenario, &ElementRegistry::Default());
    if (!parsed.ok()) {
      std::cerr << parsed.FormatError(options.scenario) << "\n";
      std::exit(2);
    }
    options.scenario_graph = std::move(parsed.graph);
    options.scenario_set = true;
  }
  return options;
}

// Records a scenario run's workload-side stats into a job record,
// alongside the kernel counters CaptureSystem collects.
inline void RecordScenarioStats(const ScenarioStats& stats,
                                JobRecord* record) {
  record->Metric("scenario.processes_spawned",
                 static_cast<double>(stats.processes_spawned));
  record->Metric("scenario.processes_exited",
                 static_cast<double>(stats.processes_exited));
  record->Metric("scenario.processes_lost",
                 static_cast<double>(stats.processes_lost));
  record->Metric("scenario.pages_touched",
                 static_cast<double>(stats.pages_touched));
  record->Metric("scenario.launches", static_cast<double>(stats.launches));
  record->Metric("scenario.launches_incomplete",
                 static_cast<double>(stats.launches_incomplete));
  record->Metric("scenario.ipc_transactions",
                 static_cast<double>(stats.ipc_transactions));
  record->Metric("scenario.ticks_run", static_cast<double>(stats.ticks_run));
}

// Runs a bench's jobs through the driver and collects one JobRecord per
// job, in submission order. System-backed jobs get their System built on
// the worker thread (with --seed/--phys-mb/--swap-mb applied) and their
// kernel/core counters captured automatically; custom jobs fill their
// record themselves. Job bodies must not print — all output happens after
// Run(), from the records, so stdout is identical at any --jobs value.
class Harness {
 public:
  Harness(std::string bench, BenchOptions options)
      : bench_(std::move(bench)), options_(std::move(options)) {
    if (!options_.only_config.empty()) {
      only_name_ = ConfigByName(options_.only_config).Name();
    }
  }

  const BenchOptions& options() const { return options_; }
  bool smoke() const { return options_.smoke; }

  // A job that measures one System. The harness owns the System's
  // lifecycle; `body` runs the workload and may add bench-specific
  // metrics/labels to the record. With --scenario the parsed element
  // graph runs on the System first (fleet preconditioning), then `body`
  // measures the warmed machine.
  void AddJob(const std::string& job_name, const SystemConfig& config,
              std::function<void(System&, JobRecord&)> body) {
    const bool skip = !only_name_.empty() && config.Name() != only_name_;
    PendingJob job;
    job.name = job_name;
    job.skip = skip;
    if (skip) {
      skipped_++;
    } else {
      const SystemConfig resolved = Resolve(config, job_name);
      if (options_.scenario_set) {
        const ScenarioGraph graph = options_.scenario_graph;
        ScenarioRunConfig run;
        run.rng_seed = DeriveJobSeed(resolved.seed, graph.name, job_name);
        run.scale = options_.smoke ? kScenarioSmokeScale : 1.0;
        job.run = [resolved, graph, run,
                   body = std::move(body)](JobRecord* record) {
          System system(resolved);
          ApplyScenarioChaos(graph, &system);
          const ScenarioRunOutcome pre = RunScenarioOnSystem(
              &system, graph, ElementRegistry::Default(), run);
          record->Label("scenario", graph.name);
          RecordScenarioStats(pre.stats, record);
          if (!pre.ok()) {
            throw std::runtime_error(
                "scenario preconditioning failed: " +
                (pre.status.ok() ? pre.audit_report : pre.status.message));
          }
          body(system, *record);
          CaptureSystem(system, record);
        };
      } else {
        job.run = [resolved, body = std::move(body)](JobRecord* record) {
          System system(resolved);
          body(system, *record);
          CaptureSystem(system, record);
        };
      }
    }
    jobs_.push_back(std::move(job));
  }

  // A job that manages its own systems (multi-system comparisons,
  // raw-Kernel setups, factory-only work). Never filtered by --config.
  void AddCustomJob(const std::string& job_name,
                    std::function<void(JobRecord&)> body) {
    PendingJob job;
    job.name = job_name;
    job.run = [body = std::move(body)](JobRecord* record) { body(*record); };
    jobs_.push_back(std::move(job));
  }

  // Applies the harness overrides to a config, exactly as AddJob would —
  // for custom jobs that build their own Systems. The derived seed folds
  // the bench name in as a length-delimited scope, so two benches whose
  // job lists share config-key names still get decorrelated streams (and
  // "ab"+"c" vs "a"+"bc" concatenation collisions cannot happen).
  SystemConfig Resolve(const SystemConfig& config,
                       const std::string& job_name) const {
    SystemConfig resolved =
        WithSwapMb(WithPhysMb(config, options_.phys_mb), options_.swap_mb);
    if (options_.seed_set) {
      resolved.seed = DeriveJobSeed(options_.seed, bench_, job_name);
    }
    return resolved;
  }

  // Captures the standard per-System metrics into a record: every kernel
  // counter, every core-0 counter, and the swap/pressure summary fields.
  static void CaptureSystem(System& system, JobRecord* record) {
    record->Label("system", system.name());
    const KernelCounters& kernel = system.kernel().counters();
#define SAT_BENCH_CAPTURE(field) \
  record->Metric("counters." #field, static_cast<double>(kernel.field));
    SAT_KERNEL_COUNTER_FIELDS(SAT_BENCH_CAPTURE)
#undef SAT_BENCH_CAPTURE
    const CoreCounters& core = system.core().counters();
#define SAT_BENCH_CAPTURE(field) \
  record->Metric("core." #field, static_cast<double>(core.field));
    SAT_CORE_COUNTER_FIELDS(SAT_BENCH_CAPTURE)
#undef SAT_BENCH_CAPTURE
    const ZramStore& zram = system.kernel().zram();
    if (zram.enabled()) {
      record->Metric("swap.pages_stored",
                     static_cast<double>(zram.pages_stored_total()));
      record->Metric("swap.bytes_compressed",
                     static_cast<double>(zram.bytes_compressed_total()));
      if (zram.bytes_compressed_total() > 0) {
        record->Metric("swap.compression_ratio",
                       static_cast<double>(zram.pages_stored_total()) *
                           kPageSize /
                           static_cast<double>(zram.bytes_compressed_total()));
      }
    }
  }

  // Runs every non-skipped job on options().jobs workers and, when
  // --json-out is set, writes BENCH_<bench>.json. Returns false only if
  // the JSON write failed.
  //
  // Crash containment: a job body that throws is caught on its worker and
  // recorded with status "error" instead of taking the whole bench down;
  // with --job-timeout a job exceeding its deadline is recorded with
  // status "timeout". Either kind is re-run up to --retries times with
  // the same derived seed (so a flaky pass and a clean retry stay
  // comparable). Every executed job carries a "status" label; skipped
  // jobs keep only their "skipped" label.
  bool Run() {
    records_.assign(jobs_.size(), JobRecord{});
    std::vector<std::atomic<bool>> deadline_hit(jobs_.size());
    JobWatchdog watchdog(
        options_.job_timeout_s,
        [&deadline_hit](size_t token) { deadline_hit[token].store(true); });
    std::vector<std::function<void()>> work;
    for (size_t i = 0; i < jobs_.size(); ++i) {
      records_[i].config = jobs_[i].name;
      if (jobs_[i].skip) {
        records_[i].Label("skipped", "config-filter");
        continue;
      }
      JobRecord* record = &records_[i];
      std::function<void(JobRecord*)> run = std::move(jobs_[i].run);
      work.push_back([record, run = std::move(run), name = jobs_[i].name,
                      retries = options_.retries,
                      timeout = options_.job_timeout_s, dog = &watchdog,
                      hit = &deadline_hit[i], i] {
        const auto start = std::chrono::steady_clock::now();
        uint32_t attempt = 0;
        std::string status;
        std::string reason;
        while (true) {
          hit->store(false);
          dog->JobStarted(i);
          status = "ok";
          reason.clear();
          try {
            run(record);
          } catch (const std::exception& e) {
            status = "error";
            reason = e.what();
          } catch (...) {
            status = "error";
            reason = "unknown exception";
          }
          dog->JobFinished(i);
          if (status == "ok" && hit->load()) {
            status = "timeout";
            reason = "exceeded --job-timeout=" + FormatDouble(timeout, 1) + "s";
          }
          if (status == "ok" || attempt >= retries) {
            break;
          }
          // Retry from a clean slate; the run closure re-derives nothing —
          // it captured its resolved config (seed included) at AddJob time.
          attempt++;
          *record = JobRecord{};
          record->config = name;
        }
        record->Label("status", status);
        if (!reason.empty()) {
          record->Label("status_reason", reason);
        }
        if (attempt > 0) {
          record->Metric("driver.jobs_retried", static_cast<double>(attempt));
        }
        record->host_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
      });
    }
    const auto start = std::chrono::steady_clock::now();
    RunJobs(std::move(work), options_.jobs);
    const double host_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    if (options_.json_out.empty()) {
      return true;
    }
    ExperimentResult result;
    result.bench = bench_;
    result.jobs = options_.jobs;
    result.seed = options_.seed_set ? options_.seed : 0;
    result.smoke = options_.smoke;
    result.host_ms = host_ms;
    result.records = records_;
    std::string error;
    if (!WriteJsonFile(result, JsonPath(), &error)) {
      std::cerr << "error: writing " << JsonPath() << ": " << error << "\n";
      return false;
    }
    std::cout << "\nwrote " << JsonPath() << "\n";
    return true;
  }

  const std::vector<JobRecord>& records() const { return records_; }
  const JobRecord& record(size_t i) const { return records_[i]; }

  // False when --config filtered out jobs: cross-config tables and shape
  // checks are not meaningful on a partial run.
  bool ran_all() const { return skipped_ == 0; }

 private:
  struct PendingJob {
    std::string name;
    bool skip = false;
    std::function<void(JobRecord*)> run;
  };

  std::string JsonPath() const {
    const std::string& out = options_.json_out;
    if (out.size() >= 5 && out.substr(out.size() - 5) == ".json") {
      return out;
    }
    return out + "/BENCH_" + bench_ + ".json";
  }

  std::string bench_;
  BenchOptions options_;
  std::string only_name_;
  std::vector<PendingJob> jobs_;
  std::vector<JobRecord> records_;
  size_t skipped_ = 0;
};

}  // namespace sat

#endif  // BENCH_COMMON_H_
