// Extension experiment — the introduction's scalability claim, measured
// from the reclaim side: "while the amount of memory required for mapping
// a physical page of private data is small and constant ... for shared
// memory regions this overhead grows linearly with the number of
// processes."
//
// N live apps all map the preloaded shared code. Reclaiming one of its
// pages must unmap it from every page table that maps it:
//
//   stock kernel   N private PTEs -> N rmap entries, N clears, N flushes
//   shared PTPs    1 shared PTE   -> 1 rmap entry,  1 clear,  1 flush
//
// The bench sweeps N and reports both curves, plus the machine-wide rmap
// size (the memory cost of *tracking* the duplicated translations).
//
// The sweep runs as custom harness jobs pinned to the default machine
// size, so --phys-mb only affects the explicit pressure-mode jobs below.

#include "bench/common.h"

namespace sat {
namespace {

struct ReclaimRow {
  uint32_t apps = 0;
  uint64_t rmap_entries_stock = 0;
  uint64_t rmap_entries_shared = 0;
  double clears_per_page_stock = 0;
  double clears_per_page_shared = 0;
};

// Boots a system, keeps `apps` applications alive (each touching the same
// slice of preloaded code), reclaims 200 pages, and reports the unmap
// work per reclaimed page.
double MeasureClears(const SystemConfig& config, uint32_t apps,
                     uint64_t* rmap_entries, JobRecord& record) {
  System system(config);
  Kernel& kernel = system.kernel();
  const AppFootprint& boot = system.android().zygote_boot_footprint();

  std::vector<Task*> live;
  for (uint32_t i = 0; i < apps; ++i) {
    Task* app = system.android().ForkApp("app" + std::to_string(i));
    // Under stock, each app must fault the code in itself; under sharing
    // the touches find the inherited PTEs and fault nothing.
    for (size_t p = 0; p < boot.pages.size(); p += 4) {
      kernel.TouchPage(*app,
                       system.android().CodePageVa(boot.pages[p].lib,
                                                   boot.pages[p].page_index),
                       AccessType::kExecute);
    }
    live.push_back(app);
  }
  *rmap_entries = kernel.rmap().total_entries();

  const ReclaimStats stats = kernel.ReclaimFileCache(200);
  for (Task* app : live) {
    kernel.Exit(*app);
  }
  Harness::CaptureSystem(system, &record);
  if (stats.pages_reclaimed == 0) {
    return 0;
  }
  return static_cast<double>(stats.ptes_cleared) /
         static_cast<double>(stats.pages_reclaimed);
}

// --phys-mb / --swap-mb pressure mode: the same N-process shared-code
// workload, but on a machine small enough that keeping all N apps (and
// their anonymous heaps) resident forces the reclaim chain to run. Each
// app also dirties a private heap so there is anonymous memory for the
// swap stage to compress; the per-config summaries show how the stock and
// shared-PTP kernels fare on identical pressure.
void RunPressureWorkload(System& system) {
  Kernel& kernel = system.kernel();
  const AppFootprint& boot = system.android().zygote_boot_footprint();
  std::vector<Task*> live;
  for (uint32_t i = 0; i < 8; ++i) {
    Task* app = system.android().ForkApp("app" + std::to_string(i));
    if (app == nullptr) {
      continue;  // fork refused under pressure; counted in the summary
    }
    for (size_t p = 0; p < boot.pages.size(); p += 4) {
      kernel.TouchPage(*app,
                       system.android().CodePageVa(boot.pages[p].lib,
                                                   boot.pages[p].page_index),
                       AccessType::kExecute);
    }
    // A 1 MB private heap per app: the anonymous working set that the
    // file-cache-only reclaimer cannot touch but swap can.
    MmapRequest request;
    request.length = 256 * kPageSize;
    request.prot = VmProt::ReadWrite();
    request.kind = VmKind::kAnonPrivate;
    const VirtAddr heap = kernel.Mmap(*app, request).value;
    for (uint32_t page = 0; heap != 0 && page < 256 && app->alive; ++page) {
      kernel.TouchPage(*app, heap + page * kPageSize, AccessType::kWrite);
    }
    live.push_back(app);
  }
  kernel.ReclaimFileCache(200);
  for (Task* app : live) {
    if (app->alive) {
      kernel.Exit(*app);
    }
  }
}

int Run(const BenchOptions& options) {
  PrintHeader("Extension",
              "Reclaim cost vs number of processes: rmap entries and PTE "
              "clears per reclaimed shared-code page");

  const uint32_t kAppCounts[] = {1, 2, 4, 8};
  std::vector<ReclaimRow> rows(4);
  Harness harness("reclaim", options);
  for (size_t n = 0; n < 4; ++n) {
    const uint32_t apps = kAppCounts[n];
    rows[n].apps = apps;
    harness.AddCustomJob(
        "sweep/stock/apps" + std::to_string(apps),
        [&rows, n, apps](JobRecord& record) {
          rows[n].clears_per_page_stock = MeasureClears(
              ConfigByName("stock"), apps, &rows[n].rmap_entries_stock,
              record);
          record.Metric("reclaim.rmap_entries",
                        static_cast<double>(rows[n].rmap_entries_stock));
          record.Metric("reclaim.clears_per_page",
                        rows[n].clears_per_page_stock);
        });
    harness.AddCustomJob(
        "sweep/shared-ptp/apps" + std::to_string(apps),
        [&rows, n, apps](JobRecord& record) {
          rows[n].clears_per_page_shared = MeasureClears(
              ConfigByName("shared-ptp"), apps, &rows[n].rmap_entries_shared,
              record);
          record.Metric("reclaim.rmap_entries",
                        static_cast<double>(rows[n].rmap_entries_shared));
          record.Metric("reclaim.clears_per_page",
                        rows[n].clears_per_page_shared);
        });
  }

  // Pressure mode rides the harness overrides: --phys-mb/--swap-mb reach
  // these jobs through the normal AddJob config resolution.
  const size_t pressure_first = 8;  // jobs added by the sweep above
  if (options.phys_mb > 0) {
    for (const char* key : {"stock", "shared-ptp"}) {
      harness.AddJob(std::string("pressure/") + key, ConfigByName(key),
                     [](System& system, JobRecord&) {
                       RunPressureWorkload(system);
                     });
    }
  }

  if (!harness.Run()) {
    return 1;
  }

  TablePrinter table({"live apps", "rmap entries (stock)",
                      "rmap entries (shared)", "clears/page (stock)",
                      "clears/page (shared)"});
  for (const ReclaimRow& row : rows) {
    table.AddRow({std::to_string(row.apps),
                  std::to_string(row.rmap_entries_stock),
                  std::to_string(row.rmap_entries_shared),
                  FormatDouble(row.clears_per_page_stock, 2),
                  FormatDouble(row.clears_per_page_shared, 2)});
  }
  table.Print(std::cout);

  std::cout << "\n";
  bool ok = true;
  // Stock: unmap work grows with the process count...
  ok &= ShapeCheck(std::cout, "stock clears/page at 8 apps vs 1 app", 4.0,
                   rows[3].clears_per_page_stock /
                       rows[0].clears_per_page_stock,
                   0.6);
  // ...sharing keeps it flat.
  ok &= ShapeCheck(std::cout, "shared clears/page at 8 apps vs 1 app", 1.0,
                   rows[3].clears_per_page_shared /
                       rows[0].clears_per_page_shared,
                   0.15);
  // And the tracking state itself stays near-constant under sharing.
  ok &= ShapeCheck(
      std::cout, "rmap growth 1->8 apps, stock vs shared (ratio of ratios)",
      3.0,
      (static_cast<double>(rows[3].rmap_entries_stock) /
       static_cast<double>(rows[0].rmap_entries_stock)) /
          (static_cast<double>(rows[3].rmap_entries_shared) /
           static_cast<double>(rows[0].rmap_entries_shared)),
      0.7);

  if (options.phys_mb > 0) {
    std::cout << "\npressure mode (8 apps, " << options.phys_mb
              << " MB machine";
    if (options.swap_mb > 0) {
      std::cout << " + " << options.swap_mb << " MB zram";
    }
    std::cout << "):\n";
    const auto& records = harness.records();
    for (size_t i = pressure_first; i < records.size(); ++i) {
      if (records[i].metrics.empty()) {
        continue;  // Skipped by --config.
      }
      std::cout << "  ";
      PrintPressureSummary(records[i]);
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  return sat::Run(options);
}
