// Extension experiment — the introduction's scalability claim, measured
// from the reclaim side: "while the amount of memory required for mapping
// a physical page of private data is small and constant ... for shared
// memory regions this overhead grows linearly with the number of
// processes."
//
// N live apps all map the preloaded shared code. Reclaiming one of its
// pages must unmap it from every page table that maps it:
//
//   stock kernel   N private PTEs -> N rmap entries, N clears, N flushes
//   shared PTPs    1 shared PTE   -> 1 rmap entry,  1 clear,  1 flush
//
// The bench sweeps N and reports both curves, plus the machine-wide rmap
// size (the memory cost of *tracking* the duplicated translations).

#include "bench/common.h"

namespace sat {
namespace {

struct ReclaimRow {
  uint32_t apps;
  uint64_t rmap_entries_stock = 0;
  uint64_t rmap_entries_shared = 0;
  double clears_per_page_stock = 0;
  double clears_per_page_shared = 0;
};

// Boots a system, keeps `apps` applications alive (each touching the same
// slice of preloaded code), reclaims 200 pages, and reports the unmap
// work per reclaimed page.
double MeasureClears(const SystemConfig& config, uint32_t apps,
                     uint64_t* rmap_entries) {
  System system(config);
  Kernel& kernel = system.kernel();
  const AppFootprint& boot = system.android().zygote_boot_footprint();

  std::vector<Task*> live;
  for (uint32_t i = 0; i < apps; ++i) {
    Task* app = system.android().ForkApp("app" + std::to_string(i));
    // Under stock, each app must fault the code in itself; under sharing
    // the touches find the inherited PTEs and fault nothing.
    for (size_t p = 0; p < boot.pages.size(); p += 4) {
      kernel.TouchPage(
          *app,
          system.android().CodePageVa(boot.pages[p].lib, boot.pages[p].page_index),
          AccessType::kExecute);
    }
    live.push_back(app);
  }
  *rmap_entries = kernel.rmap().total_entries();

  const ReclaimStats stats = kernel.ReclaimFileCache(200);
  for (Task* app : live) {
    kernel.Exit(*app);
  }
  if (stats.pages_reclaimed == 0) {
    return 0;
  }
  return static_cast<double>(stats.ptes_cleared) /
         static_cast<double>(stats.pages_reclaimed);
}

int Run() {
  PrintHeader("Extension",
              "Reclaim cost vs number of processes: rmap entries and PTE "
              "clears per reclaimed shared-code page");

  TablePrinter table({"live apps", "rmap entries (stock)",
                      "rmap entries (shared)", "clears/page (stock)",
                      "clears/page (shared)"});
  std::vector<ReclaimRow> rows;
  for (uint32_t apps : {1u, 2u, 4u, 8u}) {
    ReclaimRow row;
    row.apps = apps;
    row.clears_per_page_stock =
        MeasureClears(SystemConfig::Stock(), apps, &row.rmap_entries_stock);
    row.clears_per_page_shared =
        MeasureClears(SystemConfig::SharedPtp(), apps, &row.rmap_entries_shared);
    table.AddRow({std::to_string(apps), std::to_string(row.rmap_entries_stock),
                  std::to_string(row.rmap_entries_shared),
                  FormatDouble(row.clears_per_page_stock, 2),
                  FormatDouble(row.clears_per_page_shared, 2)});
    rows.push_back(row);
  }
  table.Print(std::cout);

  std::cout << "\n";
  bool ok = true;
  // Stock: unmap work grows with the process count...
  ok &= ShapeCheck(std::cout, "stock clears/page at 8 apps vs 1 app", 4.0,
                   rows[3].clears_per_page_stock /
                       rows[0].clears_per_page_stock,
                   0.6);
  // ...sharing keeps it flat.
  ok &= ShapeCheck(std::cout, "shared clears/page at 8 apps vs 1 app", 1.0,
                   rows[3].clears_per_page_shared /
                       rows[0].clears_per_page_shared,
                   0.15);
  // And the tracking state itself stays near-constant under sharing.
  ok &= ShapeCheck(
      std::cout, "rmap growth 1->8 apps, stock vs shared (ratio of ratios)",
      3.0,
      (static_cast<double>(rows[3].rmap_entries_stock) /
       static_cast<double>(rows[0].rmap_entries_stock)) /
          (static_cast<double>(rows[3].rmap_entries_shared) /
           static_cast<double>(rows[0].rmap_entries_shared)),
      0.7);
  return ok ? 0 : 1;
}

// --phys-mb / --swap-mb pressure mode: the same N-process shared-code
// workload, but on a machine small enough that keeping all N apps (and
// their anonymous heaps) resident forces the reclaim chain to run. Each
// app also dirties a private heap so there is anonymous memory for the
// swap stage to compress; the per-config summaries show how the stock and
// shared-PTP kernels fare on identical pressure.
void RunPressureMode(uint64_t phys_mb, uint64_t swap_mb) {
  std::cout << "\npressure mode (8 apps, " << phys_mb << " MB machine";
  if (swap_mb > 0) {
    std::cout << " + " << swap_mb << " MB zram";
  }
  std::cout << "):\n";
  for (const SystemConfig& base :
       {SystemConfig::Stock(), SystemConfig::SharedPtp()}) {
    const SystemConfig config =
        WithSwapMb(WithPhysMb(base, phys_mb), swap_mb);
    System system(config);
    Kernel& kernel = system.kernel();
    const AppFootprint& boot = system.android().zygote_boot_footprint();
    std::vector<Task*> live;
    for (uint32_t i = 0; i < 8; ++i) {
      Task* app = system.android().ForkApp("app" + std::to_string(i));
      if (app == nullptr) {
        continue;  // fork refused under pressure; counted in the summary
      }
      for (size_t p = 0; p < boot.pages.size(); p += 4) {
        kernel.TouchPage(*app,
                         system.android().CodePageVa(
                             boot.pages[p].lib, boot.pages[p].page_index),
                         AccessType::kExecute);
      }
      // A 1 MB private heap per app: the anonymous working set that the
      // file-cache-only reclaimer cannot touch but swap can.
      MmapRequest request;
      request.length = 256 * kPageSize;
      request.prot = VmProt::ReadWrite();
      request.kind = VmKind::kAnonPrivate;
      const VirtAddr heap = kernel.Mmap(*app, request);
      for (uint32_t page = 0; heap != 0 && page < 256 && app->alive; ++page) {
        kernel.TouchPage(*app, heap + page * kPageSize, AccessType::kWrite);
      }
      live.push_back(app);
    }
    kernel.ReclaimFileCache(200);
    std::cout << "  ";
    PrintPressureSummary(system);
    for (Task* app : live) {
      if (app->alive) {
        kernel.Exit(*app);
      }
    }
  }
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const int status = sat::Run();
  const uint64_t phys_mb = sat::PhysMbArg(argc, argv);
  if (phys_mb > 0) {
    sat::RunPressureMode(phys_mb, sat::SwapMbArg(argc, argv));
  }
  return status;
}
