// Figure 13: instruction main-TLB stall cycles of the binder-IPC
// microbenchmark's client and server, under {ASID disabled, ASID enabled}
// x {Stock, Shared PTP, Shared PTP & TLB}, normalized to the stock kernel
// (ASIDs enabled).
//
// Paper shape: with ASIDs, sharing TLB entries improves client stalls by
// up to 36% and server stalls by 19%; ASIDs themselves beat flush-on-
// switch by 34% (client) / 86% (server); shared PTPs alone change little
// here (the working set fits the L1I).
//
// One harness job per (ASID, kernel) cell — six independent systems.

#include "bench/common.h"

namespace sat {
namespace {

struct Cell {
  double client = 0;
  double server = 0;
};

int Run(const BenchOptions& options) {
  PrintHeader("Figure 13",
              "Binder IPC instruction main-TLB stall cycles (normalized to "
              "Stock Android, ASIDs enabled)");

  BinderParams bench_params;
  bench_params.transactions = options.smoke ? 2000 : 6000;
  bench_params.warmup_transactions = options.smoke ? 400 : 1000;

  const char* kKeys[] = {"stock", "shared-ptp", "shared-ptp-tlb"};
  const SystemConfig kernels[] = {ConfigByName("stock"),
                                  ConfigByName("shared-ptp"),
                                  ConfigByName("shared-ptp-tlb")};
  Cell results[2][3];  // [asid disabled=0 / enabled=1][kernel]
  Harness harness("fig13", options);
  for (int asid = 0; asid < 2; ++asid) {
    for (int k = 0; k < 3; ++k) {
      SystemConfig config = kernels[k];
      config.asids_enabled = asid == 1;
      harness.AddJob(
          std::string(kKeys[k]) + (asid == 1 ? "/asid" : "/no-asid"), config,
          [&results, asid, k, bench_params](System& system,
                                            JobRecord& record) {
            BinderBenchmark bench(&system.android(), bench_params);
            const BinderResult result = bench.Run();
            results[asid][k].client =
                static_cast<double>(result.client.itlb_stall_cycles);
            results[asid][k].server =
                static_cast<double>(result.server.itlb_stall_cycles);
            record.Metric("binder.client_itlb_stalls",
                          results[asid][k].client);
            record.Metric("binder.server_itlb_stalls",
                          results[asid][k].server);
          });
    }
  }
  if (!harness.Run()) {
    return 1;
  }
  if (!harness.ran_all()) {
    TablePrinter partial({"Job", "client iTLB stalls", "server iTLB stalls"});
    for (const JobRecord& record : harness.records()) {
      if (!record.metrics.empty()) {
        partial.AddRow(
            {record.config,
             FormatDouble(MetricOr(record, "binder.client_itlb_stalls"), 0),
             FormatDouble(MetricOr(record, "binder.server_itlb_stalls"), 0)});
      }
    }
    partial.Print(std::cout);
    std::cout << "\n--config filter active: normalized columns and shape "
                 "checks skipped\n";
    return 0;
  }

  const double base_client = results[1][0].client;
  const double base_server = results[1][0].server;

  TablePrinter table({"Config", "Client (norm)", "Server (norm)"});
  const char* kAsidNames[] = {"Disabled ASID", "ASID"};
  for (int asid = 0; asid < 2; ++asid) {
    for (int k = 0; k < 3; ++k) {
      table.AddRow({std::string(kAsidNames[asid]) + " / " + kernels[k].Name(),
                    FormatPercent(results[asid][k].client / base_client),
                    FormatPercent(results[asid][k].server / base_server)});
    }
  }
  table.Print(std::cout);

  std::cout << "\n";
  bool ok = true;
  // Shared TLB vs stock, ASIDs enabled.
  // The magnitudes land in the paper's range; the exact client/server
  // *split* of the benefit depends on the microbenchmark's working-set
  // internals, which the paper does not publish (see EXPERIMENTS.md).
  ok &= ShapeCheck(std::cout, "client iTLB stall reduction, shared TLB (%)",
                   36.0, (1.0 - results[1][2].client / base_client) * 100,
                   0.60);
  ok &= ShapeCheck(std::cout, "server iTLB stall reduction, shared TLB (%)",
                   19.0, (1.0 - results[1][2].server / base_server) * 100,
                   0.95);
  // ASIDs vs flush-on-switch, stock kernel.
  ok &= ShapeCheck(std::cout, "client improvement from ASIDs (%)", 34.0,
                   (1.0 - base_client / results[0][0].client) * 100, 0.6);
  ok &= ShapeCheck(std::cout, "server improvement from ASIDs (%)", 86.0,
                   (1.0 - base_server / results[0][0].server) * 100, 0.35);
  // Shared PTPs alone barely move TLB stalls.
  ok &= ShapeCheck(std::cout, "shared-PTP-only client (norm %)", 100.0,
                   results[1][1].client / base_client * 100, 0.25);
  // With shared TLB entries, even the no-ASID configuration improves:
  // global entries survive the flushes.
  ok &= ShapeCheck(std::cout, "no-ASID shared-TLB < no-ASID stock", 1.0,
                   results[0][2].client < results[0][0].client ? 1.0 : 0.0,
                   0.01);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  return sat::Run(options);
}
