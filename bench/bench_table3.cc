// Table 3: the number of instruction PTEs an application inherits from the
// zygote when PTPs are shared — cold start (first run after boot) versus
// warm start (reinvoked after its first instantiation, by which time its
// own faults populated the shared PTPs).

#include "bench/common.h"

namespace sat {
namespace {

struct PaperRow {
  const char* name;
  double cold_h;  // x10^2
  double warm_h;  // x10^2
};

constexpr PaperRow kPaper[] = {
    {"Angrybirds", 13.7, 25},      {"Adobe Reader", 18.2, 55},
    {"Android Browser", 17.7, 59}, {"Chrome", 14.8, 25},
    {"Chrome Sandbox", 7.8, 10},   {"Chrome Privilege", 8.4, 11},
    {"Email", 6.4, 13},            {"Google Calendar", 15.2, 25},
    {"MX Player", 23.0, 58},       {"Laya Music Player", 17.4, 34},
    {"WPS", 15.0, 24},
};

int Run() {
  PrintHeader("Table 3",
              "# of instruction PTEs inherited from the zygote with shared "
              "PTPs (x10^2): cold vs warm start");

  TablePrinter table({"Benchmark", "Cold (x10^2)", "Warm (x10^2)",
                      "paper cold", "paper warm"});
  double cold_sum = 0;
  double warm_sum = 0;
  double paper_cold_sum = 0;
  double paper_warm_sum = 0;
  double warm_gain_apps = 0;
  for (const PaperRow& row : kPaper) {
    // Fresh system per app: the paper's cold start is "application is the
    // first to run".
    System system(SystemConfig::SharedPtp());
    AppRunner runner(&system.android());
    const AppFootprint fp =
        system.workload().Generate(AppProfile::Named(row.name));
    const AppRunStats cold = runner.Run(fp);   // run and exit
    const AppRunStats warm = runner.Run(fp);   // reinvoked
    table.AddRow({row.name, FormatDouble(cold.inherited_ptes / 100.0, 1),
                  FormatDouble(warm.inherited_ptes / 100.0, 1),
                  FormatDouble(row.cold_h, 1), FormatDouble(row.warm_h, 0)});
    cold_sum += cold.inherited_ptes / 100.0;
    warm_sum += warm.inherited_ptes / 100.0;
    paper_cold_sum += row.cold_h;
    paper_warm_sum += row.warm_h;
    if (warm.inherited_ptes > cold.inherited_ptes) {
      warm_gain_apps++;
    }
  }
  table.Print(std::cout);

  std::cout << "\n";
  bool ok = true;
  const double n = std::size(kPaper);
  ok &= ShapeCheck(std::cout, "mean cold inherited PTEs (x10^2)",
                   paper_cold_sum / n, cold_sum / n, 0.5);
  ok &= ShapeCheck(std::cout, "mean warm inherited PTEs (x10^2)",
                   paper_warm_sum / n, warm_sum / n, 0.5);
  ok &= ShapeCheck(std::cout, "# apps where warm > cold", 11, warm_gain_apps,
                   0.01);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main() { return sat::Run(); }
