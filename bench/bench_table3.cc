// Table 3: the number of instruction PTEs an application inherits from the
// zygote when PTPs are shared — cold start (first run after boot) versus
// warm start (reinvoked after its first instantiation, by which time its
// own faults populated the shared PTPs).
//
// One harness job per application: each already used a fresh system (the
// paper's cold start is "application is the first to run"), so the jobs
// are independent and run concurrently under --jobs.

#include "bench/common.h"

namespace sat {
namespace {

struct PaperRow {
  const char* name;
  double cold_h;  // x10^2
  double warm_h;  // x10^2
};

constexpr PaperRow kPaper[] = {
    {"Angrybirds", 13.7, 25},      {"Adobe Reader", 18.2, 55},
    {"Android Browser", 17.7, 59}, {"Chrome", 14.8, 25},
    {"Chrome Sandbox", 7.8, 10},   {"Chrome Privilege", 8.4, 11},
    {"Email", 6.4, 13},            {"Google Calendar", 15.2, 25},
    {"MX Player", 23.0, 58},       {"Laya Music Player", 17.4, 34},
    {"WPS", 15.0, 24},
};

int Run(const BenchOptions& options) {
  PrintHeader("Table 3",
              "# of instruction PTEs inherited from the zygote with shared "
              "PTPs (x10^2): cold vs warm start");

  const size_t n = std::size(kPaper);
  std::vector<AppRunStats> colds(n);
  std::vector<AppRunStats> warms(n);
  Harness harness("table3", options);
  for (size_t i = 0; i < n; ++i) {
    const std::string app = kPaper[i].name;
    harness.AddJob(app, ConfigByName("shared-ptp"),
                   [app, &colds, &warms, i](System& system, JobRecord& record) {
                     AppRunner runner(&system.android());
                     const AppFootprint fp =
                         system.workload().Generate(AppProfile::Named(app));
                     colds[i] = runner.Run(fp);  // run and exit
                     warms[i] = runner.Run(fp);  // reinvoked
                     record.Metric(
                         "cold.inherited_ptes",
                         static_cast<double>(colds[i].inherited_ptes));
                     record.Metric(
                         "warm.inherited_ptes",
                         static_cast<double>(warms[i].inherited_ptes));
                   });
  }
  if (!harness.Run()) {
    return 1;
  }
  if (!harness.ran_all()) {
    std::cout << "--config filter active: Table 3 only runs under "
                 "shared-ptp; nothing to report\n";
    return 0;
  }

  TablePrinter table({"Benchmark", "Cold (x10^2)", "Warm (x10^2)",
                      "paper cold", "paper warm"});
  double cold_sum = 0;
  double warm_sum = 0;
  double paper_cold_sum = 0;
  double paper_warm_sum = 0;
  double warm_gain_apps = 0;
  for (size_t i = 0; i < n; ++i) {
    const PaperRow& row = kPaper[i];
    table.AddRow({row.name, FormatDouble(colds[i].inherited_ptes / 100.0, 1),
                  FormatDouble(warms[i].inherited_ptes / 100.0, 1),
                  FormatDouble(row.cold_h, 1), FormatDouble(row.warm_h, 0)});
    cold_sum += colds[i].inherited_ptes / 100.0;
    warm_sum += warms[i].inherited_ptes / 100.0;
    paper_cold_sum += row.cold_h;
    paper_warm_sum += row.warm_h;
    if (warms[i].inherited_ptes > colds[i].inherited_ptes) {
      warm_gain_apps++;
    }
  }
  table.Print(std::cout);

  std::cout << "\n";
  bool ok = true;
  ok &= ShapeCheck(std::cout, "mean cold inherited PTEs (x10^2)",
                   paper_cold_sum / static_cast<double>(n),
                   cold_sum / static_cast<double>(n), 0.5);
  ok &= ShapeCheck(std::cout, "mean warm inherited PTEs (x10^2)",
                   paper_warm_sum / static_cast<double>(n),
                   warm_sum / static_cast<double>(n), 0.5);
  ok &= ShapeCheck(std::cout, "# apps where warm > cold", 11, warm_gain_apps,
                   0.01);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  return sat::Run(options);
}
