// Table 4: zygote fork performance under the three kernels — Shared PTPs,
// Stock Android, Copied PTEs. Execution cycles (minimum over 40 rounds, as
// in the paper), PTPs allocated for the child, shared PTPs, PTEs copied.
//
// One harness job per kernel; the three systems fork concurrently under
// --jobs and the table prints in the paper's order afterwards.

#include "bench/common.h"

namespace sat {
namespace {

struct PaperRow {
  const char* name;
  double mcycles;
  double ptps_allocated;
  double shared_ptps;
  double ptes_copied;
};

int Run(const BenchOptions& options) {
  PrintHeader("Table 4", "Zygote fork performance");

  const char* kKeys[] = {"shared-ptp", "stock", "copied-ptes"};
  const PaperRow paper[] = {
      {"Shared PTPs", 1.4, 1, 81, 7},
      {"Stock Android", 2.9, 38, 0, 3900},
      {"Copied PTEs", 4.6, 51, 0, 9800},
  };
  const int rounds = options.smoke ? 10 : 40;

  ForkResult results[3];
  Harness harness("table4", options);
  for (int i = 0; i < 3; ++i) {
    harness.AddJob(
        kKeys[i], ConfigByName(kKeys[i]),
        [&results, i, rounds](System& system, JobRecord& record) {
          Kernel& kernel = system.kernel();
          // Minimum over the rounds. Each round forks an app from the
          // zygote and exits it; warm-up noise disappears in the minimum
          // the same way it does in the paper's.
          ForkResult best;
          best.cycles = ~0ull;
          for (int round = 0; round < rounds; ++round) {
            const ForkOutcome outcome =
                system.android().ForkAppWithStats("fork_probe");
            Task* app = outcome.child;
            const ForkResult& fork = outcome.stats;
            if (fork.cycles < best.cycles) {
              best = fork;
            }
            kernel.Exit(*app);
          }
          results[i] = best;
          record.Metric("fork.min_cycles", static_cast<double>(best.cycles));
          record.Metric("fork.child_ptps_allocated",
                        static_cast<double>(best.child_ptps_allocated));
          record.Metric("fork.slots_shared",
                        static_cast<double>(best.slots_shared));
          record.Metric("fork.ptes_copied",
                        static_cast<double>(best.ptes_copied));
        });
  }
  if (!harness.Run()) {
    return 1;
  }

  TablePrinter table({"Kernel", "Cycles (x10^6)", "PTPs alloc", "Shared PTPs",
                      "PTEs copied", "paper cycles", "paper PTPs",
                      "paper shared", "paper PTEs"});
  for (int i = 0; i < 3; ++i) {
    if (harness.record(static_cast<size_t>(i)).metrics.empty()) {
      continue;  // filtered out by --config
    }
    const ForkResult& best = results[i];
    table.AddRow({paper[i].name,
                  FormatDouble(static_cast<double>(best.cycles) / 1e6, 2),
                  std::to_string(best.child_ptps_allocated),
                  std::to_string(best.slots_shared),
                  std::to_string(best.ptes_copied),
                  FormatDouble(paper[i].mcycles, 1),
                  FormatDouble(paper[i].ptps_allocated, 0),
                  FormatDouble(paper[i].shared_ptps, 0),
                  FormatDouble(paper[i].ptes_copied, 0)});
  }
  table.Print(std::cout);
  if (!harness.ran_all()) {
    std::cout << "\n--config filter active: cross-kernel shape checks "
                 "skipped\n";
    return 0;
  }

  std::cout << "\n";
  bool ok = true;
  const double speedup = static_cast<double>(results[1].cycles) /
                         static_cast<double>(results[0].cycles);
  const double slowdown = static_cast<double>(results[2].cycles) /
                          static_cast<double>(results[1].cycles);
  ok &= ShapeCheck(std::cout, "fork speedup (stock/shared)", 2.1, speedup, 0.25);
  ok &= ShapeCheck(std::cout, "copied-PTEs slowdown vs stock (+58.6%)", 1.586,
                   slowdown, 0.25);
  ok &= ShapeCheck(std::cout, "shared kernel: child PTPs allocated", 1,
                   results[0].child_ptps_allocated, 0.01);
  ok &= ShapeCheck(std::cout, "shared kernel: PTEs copied (stack)", 7,
                   results[0].ptes_copied, 0.3);
  ok &= ShapeCheck(std::cout, "shared kernel: shared PTPs", 81,
                   results[0].slots_shared, 0.3);
  ok &= ShapeCheck(std::cout, "stock kernel: PTEs copied", 3900,
                   results[1].ptes_copied, 0.3);
  ok &= ShapeCheck(std::cout, "copied kernel: PTEs copied", 9800,
                   results[2].ptes_copied, 0.3);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  return sat::Run(options);
}
