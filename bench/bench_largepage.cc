// Extension experiment — the Section 2.3.3 complement claim: "we can
// share address translation information for 64KB large pages in the same
// way as 4KB pages", and large pages trade physical memory for fewer
// faults and TLB entries (Figure 4's cost, measured live).
//
// Four machines: {4KB, 64KB code} x {stock, shared PTPs+TLB}, one harness
// job each. For each: boot-time faults and physical memory, fork-time
// sharing statistics, and a steady-state instruction TLB pressure probe.

#include <array>

#include "bench/common.h"

namespace sat {
namespace {

struct Row {
  std::string name;
  uint64_t boot_faults = 0;
  double boot_phys_mb = 0;
  uint32_t fork_shared = 0;
  uint32_t fork_ptes_copied = 0;
  uint64_t itlb_misses = 0;
};

Row Measure(System& system) {
  Kernel& kernel = system.kernel();

  Row row;
  row.name = system.name();
  row.boot_faults = kernel.counters().faults_file_backed;
  row.boot_phys_mb =
      static_cast<double>(kernel.phys().used_bytes()) / 1048576.0;

  const ForkOutcome fork = system.android().ForkAppWithStats("probe");
  Task* app = fork.child;
  row.fork_shared = fork.stats.slots_shared;
  row.fork_ptes_copied = fork.stats.ptes_copied;

  // Steady-state TLB probe: stream over a 4 MB slice of boot-image code.
  kernel.ScheduleTo(*app);
  const LibraryImage* boot_image =
      system.android().catalog().FindByName("boot.oat");
  const CoreCounters before = kernel.core().counters();
  for (int pass = 0; pass < 4; ++pass) {
    for (uint32_t page = 0; page < 1024; ++page) {
      kernel.core().FetchLine(
          system.android().CodePageVa(boot_image->id, page));
    }
  }
  row.itlb_misses = (kernel.core().counters() - before).itlb_main_misses;
  kernel.Exit(*app);
  return row;
}

int Run(const BenchOptions& options) {
  PrintHeader("Extension",
              "64KB large pages for shared code: sharing works identically, "
              "memory/faults/TLB trade-offs");

  struct Variant {
    const char* job;
    const char* key;
    bool large;
  };
  const Variant variants[] = {{"4kb/stock", "stock", false},
                              {"4kb/shared-ptp-tlb", "shared-ptp-tlb", false},
                              {"64kb/stock", "stock", true},
                              {"64kb/shared-ptp-tlb", "shared-ptp-tlb", true}};

  std::array<Row, 4> rows;
  Harness harness("largepage", options);
  for (size_t i = 0; i < 4; ++i) {
    SystemConfig config = ConfigByName(variants[i].key);
    config.large_pages_for_code = variants[i].large;
    config.phys_bytes = 1024ull * 1024 * 1024;
    harness.AddJob(variants[i].job, config,
                   [&rows, i](System& system, JobRecord& record) {
                     rows[i] = Measure(system);
                     record.Metric("boot.file_faults",
                                   static_cast<double>(rows[i].boot_faults));
                     record.Metric("boot.phys_mb", rows[i].boot_phys_mb);
                     record.Metric("fork.slots_shared",
                                   static_cast<double>(rows[i].fork_shared));
                     record.Metric(
                         "fork.ptes_copied",
                         static_cast<double>(rows[i].fork_ptes_copied));
                     record.Metric("probe.itlb_misses",
                                   static_cast<double>(rows[i].itlb_misses));
                   });
  }
  if (!harness.Run()) {
    return 1;
  }

  TablePrinter table({"Config", "boot faults", "boot phys (MB)",
                      "fork: shared PTPs", "fork: PTEs copied",
                      "iTLB misses (4MB stream)"});
  for (const Row& row : rows) {
    if (row.name.empty()) {
      continue;  // Skipped by --config.
    }
    table.AddRow({row.name, std::to_string(row.boot_faults),
                  FormatDouble(row.boot_phys_mb, 0),
                  std::to_string(row.fork_shared),
                  std::to_string(row.fork_ptes_copied),
                  std::to_string(row.itlb_misses)});
  }
  table.Print(std::cout);

  if (!harness.ran_all()) {
    std::cout << "\n--config filter active: cross-config shape checks "
                 "skipped\n";
    return 0;
  }

  std::cout << "\n";
  bool ok = true;
  // One large-page fault populates 16 PTEs: boot faults collapse.
  ok &= ShapeCheck(std::cout, "boot fault ratio 4KB/64KB (approx 16:4)", 3.5,
                   static_cast<double>(rows[0].boot_faults) /
                       static_cast<double>(rows[2].boot_faults),
                   0.5);
  // Figure 4's cost: 64 KB pages waste substantial physical memory.
  ok &= ShapeCheck(std::cout, "64KB extra physical memory (MB)", 38.0,
                   rows[2].boot_phys_mb - rows[0].boot_phys_mb, 0.5);
  // The complement claim: PTPs holding 64 KB entries share exactly like
  // 4 KB ones — same shared-PTP count, same 7-PTE stack copy.
  ok &= ShapeCheck(std::cout, "shared PTPs with 64KB code vs 4KB", 1.0,
                   static_cast<double>(rows[3].fork_shared) /
                       static_cast<double>(rows[1].fork_shared),
                   0.15);
  ok &= ShapeCheck(std::cout, "fork PTEs copied unchanged (stack only)",
                   static_cast<double>(rows[1].fork_ptes_copied),
                   static_cast<double>(rows[3].fork_ptes_copied), 0.15);
  // One TLB entry per 64 KB: a 16x drop in iTLB misses on the stream.
  ok &= ShapeCheck(std::cout, "iTLB miss ratio 4KB/64KB (approx 16x)", 16.0,
                   static_cast<double>(rows[1].itlb_misses) /
                       static_cast<double>(rows[3].itlb_misses),
                   0.4);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseBenchOptions(&argc, argv);
  return sat::Run(options);
}
