// Extension experiment — the Section 2.3.3 complement claim: "we can
// share address translation information for 64KB large pages in the same
// way as 4KB pages", and large pages trade physical memory for fewer
// faults and TLB entries (Figure 4's cost, measured live).
//
// Four machines: {4KB, 64KB code} x {stock, shared PTPs+TLB}, one harness
// job each. For each: boot-time faults and physical memory, fork-time
// sharing statistics, and a steady-state instruction TLB pressure probe.
//
// A second axis measures the translation-reach engine (src/huge): the
// shared design with promotion off / huged on / huged+KSM-unmerge, each
// running the same anonymous working set plus a code stream. huged
// collapses the anon pages to 64 KB entries (and the boot sections cover
// the code), so main-TLB reach grows and misses fall with no load-time
// page-size decision at all.

#include <array>

#include "bench/common.h"

namespace sat {
namespace {

struct Row {
  std::string name;
  uint64_t boot_faults = 0;
  double boot_phys_mb = 0;
  uint32_t fork_shared = 0;
  uint32_t fork_ptes_copied = 0;
  uint64_t itlb_misses = 0;
};

Row Measure(System& system) {
  Kernel& kernel = system.kernel();

  Row row;
  row.name = system.name();
  row.boot_faults = kernel.counters().faults_file_backed;
  row.boot_phys_mb =
      static_cast<double>(kernel.phys().used_bytes()) / 1048576.0;

  const ForkOutcome fork = system.android().ForkAppWithStats("probe");
  Task* app = fork.child;
  row.fork_shared = fork.stats.slots_shared;
  row.fork_ptes_copied = fork.stats.ptes_copied;

  // Steady-state TLB probe: stream over a 4 MB slice of boot-image code.
  kernel.ScheduleTo(*app);
  const LibraryImage* boot_image =
      system.android().catalog().FindByName("boot.oat");
  const CoreCounters before = kernel.core().counters();
  for (int pass = 0; pass < 4; ++pass) {
    for (uint32_t page = 0; page < 1024; ++page) {
      kernel.core().FetchLine(
          system.android().CodePageVa(boot_image->id, page));
    }
  }
  row.itlb_misses = (kernel.core().counters() - before).itlb_main_misses;
  kernel.Exit(*app);
  return row;
}

// The promotion-policy axis: off / huge / huge+ksm.
enum class Promotion { kOff, kHuge, kHugeKsm };

struct ReachRow {
  std::string name;
  uint64_t collapses = 0;
  uint64_t sections = 0;
  uint64_t ksm_unmerges = 0;
  uint64_t reach_bytes = 0;
  uint64_t main_misses = 0;
};

ReachRow MeasureReach(System& system, Promotion promotion) {
  Kernel& kernel = system.kernel();
  ReachRow row;
  row.name = system.name();

  Task* app = system.android().ForkApp("reach-probe");
  // A 4 MB anonymous working set at a 64 KB-aligned address: 64 whole
  // blocks for huged. The KSM variant writes from a 4-symbol alphabet so
  // merging collapses most of it into stable frames first — which the
  // unmerge policy then trades back for reach.
  MmapRequest request;
  request.length = 1024 * kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  request.fixed_address = 0x60000000;
  request.mergeable = promotion == Promotion::kHugeKsm;
  const VirtAddr base = kernel.Mmap(*app, request).value;
  for (uint32_t page = 0; page < 1024; ++page) {
    kernel.WritePage(*app, base + page * kPageSize,
                     promotion == Promotion::kHugeKsm ? page % 4 : page);
  }
  if (promotion == Promotion::kHugeKsm) {
    kernel.RunKsmScan();
    kernel.RunKsmScan();
  }
  if (promotion != Promotion::kOff) {
    kernel.RunHugeScan();
  }

  // The probe: a data stream over the working set plus an instruction
  // stream over boot-image code (covered by the eager 1 MB sections when
  // the engine is on).
  kernel.ScheduleTo(*app);
  const LibraryImage* boot_image =
      system.android().catalog().FindByName("boot.oat");
  const CoreCounters before = kernel.core().counters();
  for (int pass = 0; pass < 4; ++pass) {
    for (uint32_t page = 0; page < 1024; ++page) {
      kernel.core().Load(base + page * kPageSize);
      kernel.core().FetchLine(
          system.android().CodePageVa(boot_image->id, page));
    }
  }
  const CoreCounters delta = kernel.core().counters() - before;
  row.main_misses = delta.itlb_main_misses + delta.dtlb_main_misses;
  row.reach_bytes = kernel.core().main_tlb().ReachBytes();
  row.collapses = kernel.counters().huge_collapses;
  row.sections = kernel.counters().huge_sections_mapped;
  row.ksm_unmerges = kernel.counters().huge_ksm_unmerges;
  kernel.Exit(*app);
  return row;
}

int Run(const BenchOptions& options) {
  PrintHeader("Extension",
              "64KB large pages for shared code: sharing works identically, "
              "memory/faults/TLB trade-offs");

  struct Variant {
    const char* job;
    const char* key;
    bool large;
  };
  const Variant variants[] = {{"4kb/stock", "stock", false},
                              {"4kb/shared-ptp-tlb", "shared-ptp-tlb", false},
                              {"64kb/stock", "stock", true},
                              {"64kb/shared-ptp-tlb", "shared-ptp-tlb", true}};

  std::array<Row, 4> rows;
  Harness harness("largepage", options);
  for (size_t i = 0; i < 4; ++i) {
    SystemConfig config = ConfigByName(variants[i].key);
    config.large_pages_for_code = variants[i].large;
    config.phys_bytes = 1024ull * 1024 * 1024;
    harness.AddJob(variants[i].job, config,
                   [&rows, i](System& system, JobRecord& record) {
                     rows[i] = Measure(system);
                     record.Metric("boot.file_faults",
                                   static_cast<double>(rows[i].boot_faults));
                     record.Metric("boot.phys_mb", rows[i].boot_phys_mb);
                     record.Metric("fork.slots_shared",
                                   static_cast<double>(rows[i].fork_shared));
                     record.Metric(
                         "fork.ptes_copied",
                         static_cast<double>(rows[i].fork_ptes_copied));
                     record.Metric("probe.itlb_misses",
                                   static_cast<double>(rows[i].itlb_misses));
                   });
  }
  struct ReachVariant {
    const char* job;
    Promotion promotion;
  };
  const ReachVariant reach_variants[] = {
      {"reach/off", Promotion::kOff},
      {"reach/huge", Promotion::kHuge},
      {"reach/huge-ksm", Promotion::kHugeKsm}};

  std::array<ReachRow, 3> reach_rows;
  for (size_t i = 0; i < 3; ++i) {
    const Promotion promotion = reach_variants[i].promotion;
    SystemConfig config = promotion == Promotion::kOff
                              ? ConfigByName("shared-ptp-tlb")
                              : ConfigByName("huge");
    if (promotion == Promotion::kHugeKsm) {
      config.ksm = true;
      config.huge_unmerge_ksm = true;
    }
    config.phys_bytes = 1024ull * 1024 * 1024;
    harness.AddJob(reach_variants[i].job, config,
                   [&reach_rows, i, promotion](System& system,
                                               JobRecord& record) {
                     reach_rows[i] = MeasureReach(system, promotion);
                     record.Metric(
                         "huge.collapses",
                         static_cast<double>(reach_rows[i].collapses));
                     record.Metric(
                         "huge.sections",
                         static_cast<double>(reach_rows[i].sections));
                     record.Metric(
                         "huge.ksm_unmerges",
                         static_cast<double>(reach_rows[i].ksm_unmerges));
                     record.Metric(
                         "tlb.reach_bytes",
                         static_cast<double>(reach_rows[i].reach_bytes));
                     record.Metric(
                         "tlb.main_misses",
                         static_cast<double>(reach_rows[i].main_misses));
                   });
  }
  if (!harness.Run()) {
    return 1;
  }

  TablePrinter table({"Config", "boot faults", "boot phys (MB)",
                      "fork: shared PTPs", "fork: PTEs copied",
                      "iTLB misses (4MB stream)"});
  for (const Row& row : rows) {
    if (row.name.empty()) {
      continue;  // Skipped by --config.
    }
    table.AddRow({row.name, std::to_string(row.boot_faults),
                  FormatDouble(row.boot_phys_mb, 0),
                  std::to_string(row.fork_shared),
                  std::to_string(row.fork_ptes_copied),
                  std::to_string(row.itlb_misses)});
  }
  table.Print(std::cout);

  TablePrinter reach_table({"Promotion policy", "collapses", "sections",
                            "KSM unmerges", "TLB reach (KB)",
                            "main-TLB misses"});
  for (const ReachRow& row : reach_rows) {
    if (row.name.empty()) {
      continue;  // Skipped by --config.
    }
    reach_table.AddRow({row.name, std::to_string(row.collapses),
                        std::to_string(row.sections),
                        std::to_string(row.ksm_unmerges),
                        std::to_string(row.reach_bytes / 1024),
                        std::to_string(row.main_misses)});
  }
  std::cout << "\n";
  reach_table.Print(std::cout);

  if (!harness.ran_all()) {
    std::cout << "\n--config filter active: cross-config shape checks "
                 "skipped\n";
    return 0;
  }

  std::cout << "\n";
  bool ok = true;
  // One large-page fault populates 16 PTEs: boot faults collapse.
  ok &= ShapeCheck(std::cout, "boot fault ratio 4KB/64KB (approx 16:4)", 3.5,
                   static_cast<double>(rows[0].boot_faults) /
                       static_cast<double>(rows[2].boot_faults),
                   0.5);
  // Figure 4's cost: 64 KB pages waste substantial physical memory.
  ok &= ShapeCheck(std::cout, "64KB extra physical memory (MB)", 38.0,
                   rows[2].boot_phys_mb - rows[0].boot_phys_mb, 0.5);
  // The complement claim: PTPs holding 64 KB entries share exactly like
  // 4 KB ones — same shared-PTP count, same 7-PTE stack copy.
  ok &= ShapeCheck(std::cout, "shared PTPs with 64KB code vs 4KB", 1.0,
                   static_cast<double>(rows[3].fork_shared) /
                       static_cast<double>(rows[1].fork_shared),
                   0.15);
  ok &= ShapeCheck(std::cout, "fork PTEs copied unchanged (stack only)",
                   static_cast<double>(rows[1].fork_ptes_copied),
                   static_cast<double>(rows[3].fork_ptes_copied), 0.15);
  // One TLB entry per 64 KB: a 16x drop in iTLB misses on the stream.
  ok &= ShapeCheck(std::cout, "iTLB miss ratio 4KB/64KB (approx 16x)", 16.0,
                   static_cast<double>(rows[1].itlb_misses) /
                       static_cast<double>(rows[3].itlb_misses),
                   0.4);
  // The reach engine: promotion grows what the same 128-entry main TLB
  // covers and cuts misses on the identical access stream — with no
  // load-time page-size decision.
  // 244 blocks: the 64 of the probe's 4 MB buffer plus the zygote's own
  // anonymous heaps, which huged collapses system-wide.
  ok &= ShapeCheck(std::cout, "huged collapses the anon working set", 244.0,
                   static_cast<double>(reach_rows[1].collapses), 0.1);
  ok &= ShapeCheck(
      std::cout, "TLB reach ratio huge/off (approx 3.8x)", 3.8,
      static_cast<double>(reach_rows[1].reach_bytes) /
          static_cast<double>(reach_rows[0].reach_bytes),
      0.2);
  ok &= ShapeCheck(
      std::cout, "main-TLB miss ratio off/huge (approx 6x)", 6.0,
      static_cast<double>(reach_rows[0].main_misses) /
          static_cast<double>(reach_rows[1].main_misses),
      0.25);
  // The unmerge policy reaches the same end state: dedup traded back,
  // every block collapsed.
  ok &= ShapeCheck(std::cout, "huge+ksm collapses the working set too", 244.0,
                   static_cast<double>(reach_rows[2].collapses), 0.1);
  ok &= ShapeCheck(std::cout, "huge+ksm unmerged stable replicas (>0)", 1.0,
                   reach_rows[2].ksm_unmerges > 0 ? 1.0 : 0.0, 0.01);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  return sat::Run(options);
}
