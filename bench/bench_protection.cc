// Extension experiment — the Section 5.2 / Section 6 design-space
// argument, measured: how should hardware protect shared (global) TLB
// entries from processes outside the sharing group?
//
//   ARM domains       safe for data AND instructions, no flushing: the
//                     paper's mechanism, and its recommendation to future
//                     processors.
//   MPK (data-only)   x86 protection keys guard loads/stores only; a
//                     non-member's instruction fetch silently consumes
//                     the foreign global translation. We count those
//                     unsound hits.
//   flush-on-switch   the software fallback: sound, but every switch to a
//                     non-member drops all global entries — measured as
//                     extra walks when the apps come back. Scheduler
//                     grouping (bench_ablation) exists to soften this.
//
// Workload: two zygote apps and one non-zygote daemon time-slicing on one
// core; apps run shared code (global entries), the daemon runs its own.
// One harness job per isolation model — three independent systems.

#include <array>

#include "bench/common.h"

namespace sat {
namespace {

struct ProtectionRow {
  std::string name;
  uint64_t unsound_hits = 0;
  uint64_t domain_faults = 0;
  uint64_t app_walks = 0;       // main iTLB misses taken by the apps
  uint64_t global_flushes = 0;  // full-flush operations issued
};

ProtectionRow RunMix(System& system, IsolationModel isolation) {
  Kernel& kernel = system.kernel();

  Task* app_a = system.android().ForkApp("app_a");
  Task* app_b = system.android().ForkApp("app_b");
  Task* daemon = kernel.CreateTask("daemon");

  // The apps' shared working set: hot pages of the preload set.
  std::vector<VirtAddr> shared_pages;
  const AppFootprint& boot = system.android().zygote_boot_footprint();
  for (size_t i = 0; i < boot.pages.size() && shared_pages.size() < 48;
       i += 9) {
    shared_pages.push_back(system.android().CodePageVa(
        boot.pages[i].lib, boot.pages[i].page_index));
  }

  // The daemon's code: private pages, some at the same VAs as shared code
  // (the hazard), some elsewhere.
  MmapRequest daemon_code;
  daemon_code.length = 32 * kPageSize;
  daemon_code.prot = VmProt::ReadExec();
  daemon_code.kind = VmKind::kFilePrivate;
  daemon_code.file = 999001;
  daemon_code.fixed_address = PageAlignDown(shared_pages[0]);
  kernel.Mmap(*daemon, daemon_code);

  uint64_t app_walks = 0;
  const uint64_t flushes_before = kernel.counters().tlb_full_flushes;
  for (int round = 0; round < 300; ++round) {
    for (Task* app : {app_a, app_b}) {
      kernel.ScheduleTo(*app);
      const uint64_t walks_before = kernel.core().counters().itlb_main_misses;
      for (size_t i = 0; i < shared_pages.size(); i += 2) {
        kernel.core().FetchLine(shared_pages[i]);
      }
      app_walks += kernel.core().counters().itlb_main_misses - walks_before;
    }
    kernel.ScheduleTo(*daemon);
    for (uint32_t i = 0; i < 16; ++i) {
      kernel.core().FetchLine(daemon_code.fixed_address + i * kPageSize);
    }
  }

  ProtectionRow row;
  row.name = IsolationModelName(isolation);
  row.unsound_hits = kernel.core().counters().unsound_global_hits;
  row.domain_faults = kernel.counters().domain_faults;
  row.app_walks = app_walks;
  row.global_flushes = kernel.counters().tlb_full_flushes - flushes_before;
  return row;
}

int Run(const BenchOptions& options) {
  PrintHeader("Extension",
              "Protecting shared TLB entries: ARM domains vs MPK vs "
              "flush-on-switch (2 apps + 1 daemon, time-sliced)");

  const struct {
    const char* job;
    IsolationModel isolation;
  } kModels[] = {{"arm-domains", IsolationModel::kArmDomains},
                 {"mpk-data-only", IsolationModel::kMpkDataOnly},
                 {"flush-on-switch", IsolationModel::kFlushOnSwitch}};

  std::array<ProtectionRow, 3> rows;
  Harness harness("protection", options);
  for (size_t i = 0; i < 3; ++i) {
    SystemConfig config = ConfigByName("shared-ptp-tlb");
    config.isolation = kModels[i].isolation;
    harness.AddJob(kModels[i].job, config,
                   [&rows, i, isolation = kModels[i].isolation](
                       System& system, JobRecord& record) {
                     rows[i] = RunMix(system, isolation);
                     record.Metric("prot.unsound_hits",
                                   static_cast<double>(rows[i].unsound_hits));
                     record.Metric("prot.domain_faults",
                                   static_cast<double>(rows[i].domain_faults));
                     record.Metric("prot.app_walks",
                                   static_cast<double>(rows[i].app_walks));
                     record.Metric(
                         "prot.global_flushes",
                         static_cast<double>(rows[i].global_flushes));
                   });
  }
  if (!harness.Run()) {
    return 1;
  }

  TablePrinter table({"Model", "unsound I-fetches", "domain faults",
                      "app iTLB walks", "global flushes"});
  for (const ProtectionRow& row : rows) {
    if (row.name.empty()) {
      continue;  // Skipped by --config.
    }
    table.AddRow({row.name, std::to_string(row.unsound_hits),
                  std::to_string(row.domain_faults),
                  std::to_string(row.app_walks),
                  std::to_string(row.global_flushes)});
  }
  table.Print(std::cout);

  if (!harness.ran_all()) {
    std::cout << "\n--config filter active: cross-model shape checks "
                 "skipped\n";
    return 0;
  }

  std::cout << "\n";
  bool ok = true;
  // Domains: sound, and the cheapest for the apps.
  ok &= ShapeCheck(std::cout, "ARM domains: unsound fetches", 0,
                   static_cast<double>(rows[0].unsound_hits), 0.01);
  // MPK: unsound for instruction fetches — the paper's exact objection.
  ok &= ShapeCheck(std::cout, "MPK: unsound fetches occur", 1.0,
                   rows[1].unsound_hits > 0 ? 1.0 : 0.0, 0.01);
  // Flush-on-switch: sound...
  ok &= ShapeCheck(std::cout, "flush-on-switch: unsound fetches", 0,
                   static_cast<double>(rows[2].unsound_hits), 0.01);
  // ...but the apps re-walk their shared entries after every daemon slice.
  ok &= ShapeCheck(std::cout, "flush-on-switch walks >= 3x domain walks", 1.0,
                   rows[2].app_walks >= 3 * rows[0].app_walks ? 1.0 : 0.0,
                   0.01);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  return sat::Run(options);
}
