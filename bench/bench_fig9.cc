// Figure 9: PTPs allocated and page faults for file-based mappings during
// application launch, normalized to the stock kernel with the original
// alignment.
//
// Paper shape (baseline 72 PTPs / 1,900 faults): sharing drops faults to
// 110 (94% fewer; 93 with 2 MB alignment, 95% fewer) and PTPs to 23 (68%
// fewer; 28 with 2 MB, 61% fewer).

#include "bench/launch_experiment.h"

namespace sat {
namespace {

int Run(const BenchOptions& options) {
  PrintHeader("Figure 9",
              "PTPs allocated and file-backed page faults during launch "
              "(normalized to stock, original alignment)");
  if (options.phys_mb > 0) {
    std::cout << "physical memory override: " << options.phys_mb
              << " MB (small-memory pressure regime; shape checks are "
                 "calibrated for the 512 MB default)\n\n";
  }

  LaunchExperiment experiment = MakeLaunchExperiment(
      "fig9", options, /*rounds=*/options.smoke ? 10 : 30, /*warmup=*/3);
  if (!experiment.Run()) {
    return 1;
  }
  const std::vector<LaunchSeries>& series = experiment.series;
  if (options.phys_mb > 0) {
    PrintLaunchPressureSummaries(experiment);
  }
  if (!experiment.ran_all()) {
    TablePrinter partial({"Config", "PTPs", "file faults"});
    for (const LaunchSeries& s : series) {
      if (s.rounds.empty()) {
        continue;
      }
      partial.AddRow({s.config.Name(), FormatDouble(s.MedianPtps(), 0),
                      FormatDouble(s.MedianFileFaults(), 0)});
    }
    partial.Print(std::cout);
    std::cout << "\n--config filter active: normalized columns and shape "
                 "checks skipped\n";
    return 0;
  }

  const double base_faults = series[0].MedianFileFaults();
  const double base_ptps = series[0].MedianPtps();

  TablePrinter table({"Config", "PTPs", "PTPs (norm)", "file faults",
                      "faults (norm)"});
  for (const LaunchSeries& s : series) {
    table.AddRow({s.config.Name(), FormatDouble(s.MedianPtps(), 0),
                  FormatPercent(s.MedianPtps() / base_ptps),
                  FormatDouble(s.MedianFileFaults(), 0),
                  FormatPercent(s.MedianFileFaults() / base_faults)});
  }
  table.Print(std::cout);

  std::cout << "\n";
  bool ok = true;
  ok &= ShapeCheck(std::cout, "stock launch file faults", 1900, base_faults,
                   0.3);
  ok &= ShapeCheck(std::cout, "fault reduction, shared original (%)", 94.0,
                   (1.0 - series[1].MedianFileFaults() / base_faults) * 100,
                   0.15);
  ok &= ShapeCheck(std::cout, "fault reduction, shared 2MB (%)", 95.0,
                   (1.0 - series[3].MedianFileFaults() / base_faults) * 100,
                   0.15);
  ok &= ShapeCheck(std::cout, "PTP reduction, shared original (%)", 68.0,
                   (1.0 - series[1].MedianPtps() / base_ptps) * 100, 0.45);
  ok &= ShapeCheck(std::cout, "PTP reduction, shared 2MB (%)", 61.0,
                   (1.0 - series[3].MedianPtps() / base_ptps) * 100, 0.45);
  // 2MB-shared faults fewer than original-shared (code PTPs never unshare).
  ok &= ShapeCheck(std::cout, "2MB-shared faults <= original-shared", 1.0,
                   series[3].MedianFileFaults() <=
                           series[1].MedianFileFaults() + 1
                       ? 1.0
                       : 0.0,
                   0.01);
  return ok ? 0 : 1;
}

// --trace-out: replay a few launches under the full mechanism with tracing
// on and export the timeline (fork, faults, unshares, shootdowns, launch
// phases). A separate run so the figure's numbers stay untouched.
bool WriteLaunchTrace(const BenchOptions& options) {
  SystemConfig config =
      WithPhysMb(ConfigByName("shared-ptp-tlb-2mb"), options.phys_mb);
  config.trace.enabled = true;
  System system(config);
  LaunchSimulator simulator(&system.android(), LaunchParams{});
  for (uint32_t round = 0; round < 3; ++round) {
    simulator.LaunchOnce(round);
  }
  return DumpTrace(system, options.trace_out);
}

}  // namespace
}  // namespace sat

int main(int argc, char** argv) {
  const sat::BenchOptions options = sat::ParseHarnessArgs(&argc, argv);
  const int status = sat::Run(options);
  if (!options.trace_out.empty() && !sat::WriteLaunchTrace(options)) {
    return 1;
  }
  return status;
}
