// Binder IPC walkthrough, scenario-engine edition: the paper's Section
// 4.2.4 microbenchmark as a one-line element graph — client/server pairs
// ping-pong over the zygote-preloaded call path, two context switches
// per transaction, both processes pinned to one simulated core. Run
// under a ladder of configurations, it shows how the global bit + zygote
// domain turn the shared libbinder pages into single TLB entries.
//
//   $ ./build/examples/binder_ipc

#include <cstdio>

#include "src/scenario/parser.h"
#include "src/scenario/registry.h"
#include "src/scenario/runner.h"

namespace {

constexpr char kIpcLoop[] =
    "set ticks 40;\n"
    "ipc :: BinderIpcLoop(pairs 1, transactions 100, shared_pages 32, "
    "own_pages 12, hop_pages 6);\n";

void RunIpc(const sat::ScenarioGraph& graph, sat::SystemConfig config,
            const char* note) {
  sat::System system(config);
  sat::ScenarioRunConfig run;
  run.rng_seed = config.seed;
  const sat::ScenarioRunOutcome outcome = sat::RunScenarioOnSystem(
      &system, graph, sat::ElementRegistry::Default(), run);

  sat::Cycles itlb_stalls = 0;
  for (uint32_t c = 0; c < config.num_cores; ++c) {
    itlb_stalls += system.kernel().core(c).counters().itlb_stall_cycles;
  }
  const double per_txn =
      outcome.stats.ipc_transactions == 0
          ? 0.0
          : static_cast<double>(itlb_stalls) /
                static_cast<double>(outcome.stats.ipc_transactions);
  std::printf("%-34s %6llu txns   iTLB stalls/txn: %8.1f%s\n",
              system.name().c_str(),
              static_cast<unsigned long long>(outcome.stats.ipc_transactions),
              per_txn, note);
}

}  // namespace

int main() {
  const sat::ScenarioParseResult parsed = sat::ParseScenario(
      kIpcLoop, "binder_ipc", &sat::ElementRegistry::Default());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n",
                 parsed.FormatError("binder_ipc (inline)").c_str());
    return 2;
  }

  std::printf("Binder ping-pong as a scenario graph:\n\n%s\n",
              parsed.graph.ToString().c_str());

  // The ASID dimension: without ASIDs every context switch flushes all
  // non-global TLB entries.
  sat::SystemConfig stock_no_asid = sat::ConfigByName("stock");
  stock_no_asid.asids_enabled = false;
  RunIpc(parsed.graph, stock_no_asid, "   <- flush on every switch");
  RunIpc(parsed.graph, sat::ConfigByName("stock"), "");
  RunIpc(parsed.graph, sat::ConfigByName("shared-ptp"),
         "   <- page tables shared, TLB not");
  RunIpc(parsed.graph, sat::ConfigByName("shared-ptp-tlb"),
         "   <- libbinder pages: one global entry each");

  sat::SystemConfig shared_no_asid = sat::ConfigByName("shared-ptp-tlb");
  shared_no_asid.asids_enabled = false;
  RunIpc(parsed.graph, shared_no_asid,
         "   <- global entries survive even the flushes");

  std::printf(
      "\nThe shared-TLB configurations win because the client and server\n"
      "execute the same zygote-preloaded call path at the same virtual\n"
      "addresses: one global TLB entry serves both, halving the capacity\n"
      "demand that the 128-entry main TLB feels on every switch.\n");
  return 0;
}
