// Binder IPC walkthrough: the paper's Section 4.2.4 microbenchmark as an
// API example — a client process binds to a service and calls it in a
// tight loop, two context switches per transaction, both processes pinned
// to one simulated core. Shows how the global bit + zygote domain turn
// the shared libbinder pages into single TLB entries.
//
//   $ ./build/examples/binder_ipc

#include <cstdio>

#include "src/core/sat.h"

namespace {

void RunIpc(sat::SystemConfig config, const char* note) {
  sat::System system(config);
  sat::BinderParams params;
  params.transactions = 4000;
  params.warmup_transactions = 800;

  sat::BinderBenchmark bench(&system.android(), params);
  const sat::BinderResult result = bench.Run();

  const double per_txn_client =
      static_cast<double>(result.client.itlb_stall_cycles) /
      static_cast<double>(result.transactions);
  const double per_txn_server =
      static_cast<double>(result.server.itlb_stall_cycles) /
      static_cast<double>(result.transactions);
  std::printf("%-34s client iTLB stalls/txn: %7.1f   server: %7.1f%s\n",
              system.name().c_str(), per_txn_client, per_txn_server, note);
}

}  // namespace

int main() {
  std::printf("Binder ping-pong, 4000 transactions, one core:\n\n");

  // The ASID dimension: without ASIDs every context switch flushes all
  // non-global TLB entries.
  sat::SystemConfig stock_no_asid = sat::ConfigByName("stock");
  stock_no_asid.asids_enabled = false;
  RunIpc(stock_no_asid, "   <- flush on every switch");
  RunIpc(sat::ConfigByName("stock"), "");
  RunIpc(sat::ConfigByName("shared-ptp"), "   <- page tables shared, TLB not");
  RunIpc(sat::ConfigByName("shared-ptp-tlb"),
         "   <- libbinder pages: one global entry each");

  sat::SystemConfig shared_no_asid = sat::ConfigByName("shared-ptp-tlb");
  shared_no_asid.asids_enabled = false;
  RunIpc(shared_no_asid, "   <- global entries survive even the flushes");

  std::printf(
      "\nThe shared-TLB configurations win because the client and server\n"
      "execute the same zygote-preloaded call path at the same virtual\n"
      "addresses: one global TLB entry serves both, halving the capacity\n"
      "demand that the 128-entry main TLB feels on every switch.\n");
  return 0;
}
