// Launch storm, scenario-engine edition: the storm is no longer
// hand-coded — it is a three-line element graph handed to the scenario
// runner, executed under all four kernel/alignment configurations to
// watch the system-level effects: page faults eliminated, page-table
// memory saved, and the warm-start snowball (each app's faults populate
// the shared PTPs for the next one).
//
//   $ ./build/examples/launch_storm
//
// The same graph runs from any bench binary via `--scenario file.scn`,
// or at fleet scale via bench_scenario.

#include <cstdio>

#include "src/scenario/parser.h"
#include "src/scenario/registry.h"
#include "src/scenario/runner.h"

namespace {

// The whole workload, as the DSL the scenario engine parses: replay the
// paper's 11-app suite back to back, each app exiting before the next
// starts (its shared-PTP populations outlive it).
constexpr char kStorm[] =
    "set ticks 11;\n"
    "storm :: LaunchReplay(app paper, count 11, rate 1);\n";

void RunStorm(const sat::ScenarioGraph& graph, const std::string& config) {
  const sat::SystemConfig system_config = sat::ConfigByName(config);
  sat::System system(system_config);
  sat::ScenarioRunConfig run;
  run.rng_seed = system_config.seed;
  const sat::ScenarioRunOutcome outcome = sat::RunScenarioOnSystem(
      &system, graph, sat::ElementRegistry::Default(), run);

  const sat::KernelCounters& c = system.kernel().counters();
  std::printf("%-24s %8llu launches %10llu file faults %8llu PTPs "
              "(%6.1f KB)  audit %s\n",
              system.name().c_str(),
              static_cast<unsigned long long>(outcome.stats.launches),
              static_cast<unsigned long long>(c.faults_file_backed),
              static_cast<unsigned long long>(c.ptps_allocated),
              static_cast<double>(c.ptps_allocated) * 4.0,
              outcome.audit_ok ? "clean" : "VIOLATIONS");
}

}  // namespace

int main() {
  const sat::ScenarioParseResult parsed = sat::ParseScenario(
      kStorm, "launch_storm", &sat::ElementRegistry::Default());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n",
                 parsed.FormatError("launch_storm (inline)").c_str());
    return 2;
  }

  std::printf("The 11-app launch storm as a scenario graph:\n\n%s\n",
              parsed.graph.ToString().c_str());

  RunStorm(parsed.graph, "stock");
  RunStorm(parsed.graph, "shared-ptp");
  RunStorm(parsed.graph, "stock-2mb");
  RunStorm(parsed.graph, "shared-ptp-2mb");

  std::printf(
      "\nThings to notice:\n"
      "  * shared configs fault far less — later apps reuse PTEs the\n"
      "    earlier ones faulted into the shared PTPs (Table 3's warm\n"
      "    start);\n"
      "  * the 2MB layouts allocate more PTPs in the stock kernel (data\n"
      "    segments get their own slots) but keep a larger fraction of\n"
      "    them shared (Figure 12);\n"
      "  * the same graph text drives bench_scenario at fleet scale, and\n"
      "    any bench binary accepts it via --scenario.\n");
  return 0;
}
