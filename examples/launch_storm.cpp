// Launch storm: run the paper's 11-app suite back to back under all four
// kernel/alignment configurations and watch the system-level effects —
// page faults eliminated, page-table memory saved, and the warm-start
// snowball (each app's faults populate the shared PTPs for the next one).
//
//   $ ./build/examples/launch_storm

#include <cstdio>
#include <vector>

#include "src/core/sat.h"

namespace {

void RunStorm(const sat::SystemConfig& config) {
  sat::System system(config);
  sat::AppRunner runner(&system.android());

  std::printf("--- %s ---\n", system.name().c_str());
  std::printf("%-18s %10s %10s %12s %10s\n", "app", "faults", "inherited",
              "PTPs alloc", "shared%");

  uint64_t total_faults = 0;
  uint64_t total_ptps = 0;
  for (const sat::AppProfile& profile : sat::AppProfile::PaperBenchmarks()) {
    const sat::AppFootprint footprint = system.workload().Generate(profile);
    // exit_after keeps the storm realistic: each app quits before the
    // next starts, but its shared-PTP populations outlive it.
    const sat::AppRunStats stats = runner.Run(footprint, /*exit_after=*/true);
    std::printf("%-18s %10llu %10u %12llu %9.0f%%\n", profile.name.c_str(),
                static_cast<unsigned long long>(stats.file_faults),
                stats.inherited_ptes,
                static_cast<unsigned long long>(stats.ptps_allocated),
                stats.SharedSlotFraction() * 100);
    total_faults += stats.file_faults;
    total_ptps += stats.ptps_allocated;
  }
  std::printf("%-18s %10llu %10s %12llu\n", "TOTAL",
              static_cast<unsigned long long>(total_faults), "",
              static_cast<unsigned long long>(total_ptps));
  std::printf("page-table memory allocated over the storm: %.1f KB\n\n",
              static_cast<double>(total_ptps) * 4.0);
}

}  // namespace

int main() {
  RunStorm(sat::ConfigByName("stock"));
  RunStorm(sat::ConfigByName("shared-ptp"));
  RunStorm(sat::ConfigByName("stock-2mb"));
  RunStorm(sat::ConfigByName("shared-ptp-2mb"));

  std::printf(
      "Things to notice:\n"
      "  * shared configs fault far less, and their 'inherited' column\n"
      "    grows as the storm proceeds — later apps reuse PTEs the\n"
      "    earlier ones faulted into the shared PTPs (Table 3's warm\n"
      "    start);\n"
      "  * the 2MB layouts allocate more PTPs in the stock kernel (data\n"
      "    segments get their own slots) but keep a larger fraction of\n"
      "    them shared (Figure 12).\n");
  return 0;
}
