// satr_cli: a command-line driver for the simulator — run any experiment
// under any kernel configuration without writing C++.
//
//   satr_cli fork   [config flags]          zygote-fork statistics
//   satr_cli launch [config flags]          one app launch (cycle-level)
//   satr_cli steady --app <name> [flags]    full-execution replay
//   satr_cli ipc    [config flags]          binder ping-pong
//   satr_cli smaps  [config flags]          smaps report for a fresh app
//   satr_cli reclaim --pages N [flags]      page-cache reclaim pass
//   satr_cli scenario FILE.scn [--check]    run (or just validate) a graph
//
// Config flags: --share-ptps --share-tlb --2mb --copy-ptes --no-asids
//               --large-pages --cores N --fault-around N
//               --isolation {domains|mpk|flush}
//
//   $ ./build/examples/satr_cli fork --share-ptps --share-tlb
//   $ ./build/examples/satr_cli steady --app "Google Calendar" --share-ptps
//   $ ./build/examples/satr_cli scenario scenarios/chaos_soak.scn

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/sat.h"
#include "src/scenario/parser.h"
#include "src/scenario/registry.h"
#include "src/scenario/runner.h"

namespace {

struct Cli {
  std::string command;
  sat::SystemConfig config;
  std::string app = "Email";
  uint32_t pages = 200;
  std::string scenario_file;
  bool check_only = false;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: satr_cli <fork|launch|steady|ipc|smaps|reclaim> [flags]\n"
      "       satr_cli scenario FILE.scn [--check]\n"
      "flags: --share-ptps --share-tlb --2mb --copy-ptes --no-asids\n"
      "       --large-pages --cores N --fault-around N\n"
      "       --isolation {domains|mpk|flush} --app NAME --pages N\n");
  std::exit(2);
}

Cli Parse(int argc, char** argv) {
  if (argc < 2) {
    Usage();
  }
  Cli cli;
  cli.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (cli.command == "scenario" && !flag.empty() && flag[0] != '-') {
      cli.scenario_file = flag;
      continue;
    }
    if (cli.command == "scenario" && flag == "--check") {
      cli.check_only = true;
      continue;
    }
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        Usage();
      }
      return argv[++i];
    };
    if (flag == "--share-ptps") {
      cli.config.share_ptps = true;
    } else if (flag == "--share-tlb") {
      cli.config.share_ptps = true;
      cli.config.share_tlb = true;
    } else if (flag == "--2mb") {
      cli.config.two_mb_alignment = true;
    } else if (flag == "--copy-ptes") {
      cli.config.copy_ptes_at_fork = true;
    } else if (flag == "--no-asids") {
      cli.config.asids_enabled = false;
    } else if (flag == "--large-pages") {
      cli.config.large_pages_for_code = true;
      cli.config.phys_bytes = 1024ull * 1024 * 1024;
    } else if (flag == "--cores") {
      cli.config.num_cores = static_cast<uint32_t>(std::atoi(next().c_str()));
    } else if (flag == "--fault-around") {
      cli.config.fault_around_pages =
          static_cast<uint32_t>(std::atoi(next().c_str()));
    } else if (flag == "--isolation") {
      const std::string model = next();
      if (model == "domains") {
        cli.config.isolation = sat::IsolationModel::kArmDomains;
      } else if (model == "mpk") {
        cli.config.isolation = sat::IsolationModel::kMpkDataOnly;
      } else if (model == "flush") {
        cli.config.isolation = sat::IsolationModel::kFlushOnSwitch;
      } else {
        Usage();
      }
    } else if (flag == "--app") {
      cli.app = next();
    } else if (flag == "--pages") {
      cli.pages = static_cast<uint32_t>(std::atoi(next().c_str()));
    } else {
      Usage();
    }
  }
  return cli;
}

int RunFork(const Cli& cli) {
  sat::System system(cli.config);
  const sat::ForkOutcome outcome = system.android().ForkAppWithStats("cli_app");
  sat::Task* app = outcome.child;
  const sat::ForkResult& fork = outcome.stats;
  std::printf("%s\n", system.name().c_str());
  std::printf("zygote fork: %.2f Mcycles, %u PTPs allocated, %u shared, "
              "%u PTEs copied, %u write-protected\n",
              static_cast<double>(fork.cycles) / 1e6,
              fork.child_ptps_allocated, fork.slots_shared, fork.ptes_copied,
              fork.ptes_write_protected);
  system.kernel().Exit(*app);
  return 0;
}

int RunLaunch(const Cli& cli) {
  sat::System system(cli.config);
  sat::LaunchSimulator simulator(&system.android(), sat::LaunchParams{});
  simulator.LaunchOnce(0);  // warm up the shared PTPs
  const sat::LaunchResult result = simulator.LaunchOnce(1);
  std::printf("%s\n", system.name().c_str());
  std::printf("launch: %.1f Mcycles, %.2f Mcycles I$ stalls, "
              "%llu file faults, %llu PTPs allocated\n",
              static_cast<double>(result.exec_cycles) / 1e6,
              static_cast<double>(result.icache_stall_cycles) / 1e6,
              static_cast<unsigned long long>(result.file_faults),
              static_cast<unsigned long long>(result.ptps_allocated));
  return 0;
}

int RunSteady(const Cli& cli) {
  sat::System system(cli.config);
  sat::AppRunner runner(&system.android());
  const sat::AppFootprint fp =
      system.workload().Generate(sat::AppProfile::Named(cli.app));
  const sat::AppRunStats stats = runner.Run(fp);
  std::printf("%s / %s\n", system.name().c_str(), cli.app.c_str());
  std::printf("file faults %llu, anon faults %llu, COW %llu\n",
              static_cast<unsigned long long>(stats.file_faults),
              static_cast<unsigned long long>(stats.anon_faults),
              static_cast<unsigned long long>(stats.cow_faults));
  std::printf("PTPs allocated %llu, unshared %llu; %u/%u slots shared "
              "(%.0f%%); %u PTEs inherited at fork\n",
              static_cast<unsigned long long>(stats.ptps_allocated),
              static_cast<unsigned long long>(stats.ptps_unshared),
              stats.shared_slots, stats.present_slots,
              stats.SharedSlotFraction() * 100, stats.inherited_ptes);
  return 0;
}

int RunIpc(const Cli& cli) {
  sat::System system(cli.config);
  sat::BinderParams params;
  params.transactions = 4000;
  params.warmup_transactions = 800;
  sat::BinderBenchmark bench(&system.android(), params);
  const sat::BinderResult result = bench.Run();
  std::printf("%s\n", system.name().c_str());
  std::printf("binder x%llu: client iTLB stalls/txn %.1f, server %.1f, "
              "domain faults %llu\n",
              static_cast<unsigned long long>(result.transactions),
              static_cast<double>(result.client.itlb_stall_cycles) /
                  static_cast<double>(result.transactions),
              static_cast<double>(result.server.itlb_stall_cycles) /
                  static_cast<double>(result.transactions),
              static_cast<unsigned long long>(result.domain_faults));
  return 0;
}

int RunSmaps(const Cli& cli) {
  sat::System system(cli.config);
  sat::Task* app = system.android().ForkApp("cli_app");
  // Touch its inherited footprint so the report is non-trivial.
  const sat::AppFootprint& boot = system.android().zygote_boot_footprint();
  for (size_t i = 0; i < boot.pages.size(); i += 2) {
    system.kernel().TouchPage(
        *app,
        system.android().CodePageVa(boot.pages[i].lib, boot.pages[i].page_index),
        sat::AccessType::kExecute);
  }
  const sat::SmapsReport report = GenerateSmaps(
      *app->mm, system.kernel().ptp_allocator(), &system.kernel().rmap(),
      &system.kernel().phys());
  std::printf("%s\n%s", system.name().c_str(), report.ToString().c_str());
  return 0;
}

int RunReclaim(const Cli& cli) {
  sat::System system(cli.config);
  sat::Task* a = system.android().ForkApp("a");
  sat::Task* b = system.android().ForkApp("b");
  (void)a;
  (void)b;
  const sat::ReclaimStats stats = system.kernel().ReclaimFileCache(cli.pages);
  std::printf("%s\n", system.name().c_str());
  std::printf("reclaimed %u pages (%u skipped): %u PTE clears, %u TLB "
              "flushes => %.2f clears/page\n",
              stats.pages_reclaimed, stats.pages_skipped, stats.ptes_cleared,
              stats.tlb_flushes,
              stats.pages_reclaimed == 0
                  ? 0.0
                  : static_cast<double>(stats.ptes_cleared) /
                        static_cast<double>(stats.pages_reclaimed));
  return 0;
}

// Parse, validate, and (unless --check) run one shard of a scenario
// graph. Parse errors come out errno-style with line:column, exactly as
// the engine reports them:
//
//   scenarios/bad.scn:3:9: error: unknown element kind 'Storm' (EFAULT)
int RunScenario(const Cli& cli) {
  if (cli.scenario_file.empty()) {
    Usage();
  }
  const sat::ElementRegistry& registry = sat::ElementRegistry::Default();
  const sat::ScenarioParseResult parsed =
      sat::ParseScenarioFile(cli.scenario_file, &registry);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n",
                 parsed.FormatError(cli.scenario_file).c_str());
    return 2;
  }
  std::printf("%s: parsed OK\n\n%s\n", cli.scenario_file.c_str(),
              parsed.graph.ToString().c_str());
  if (cli.check_only) {
    return 0;
  }

  sat::SystemConfig config = sat::ScenarioSystemConfig(parsed.graph);
  sat::System system(config);
  sat::ScenarioRunConfig run;
  run.rng_seed = config.seed;
  sat::ApplyScenarioChaos(parsed.graph, &system);
  const sat::ScenarioRunOutcome outcome =
      sat::RunScenarioOnSystem(&system, parsed.graph, registry, run);
  if (!outcome.status.ok()) {
    std::fprintf(stderr, "scenario failed: %s (%s)\n",
                 outcome.status.message.c_str(),
                 sat::ErrnoName(outcome.status.error));
    return 1;
  }
  const sat::ScenarioStats& s = outcome.stats;
  std::printf("%s\n", system.name().c_str());
  std::printf("ticks %llu  spawned %llu  exited %llu  lost %llu\n",
              static_cast<unsigned long long>(s.ticks_run),
              static_cast<unsigned long long>(s.processes_spawned),
              static_cast<unsigned long long>(s.processes_exited),
              static_cast<unsigned long long>(s.processes_lost));
  std::printf("pages touched %llu  launches %llu  ipc txns %llu\n",
              static_cast<unsigned long long>(s.pages_touched),
              static_cast<unsigned long long>(s.launches),
              static_cast<unsigned long long>(s.ipc_transactions));
  std::printf("audit: %s (%llu checks)\n",
              outcome.audit_ok ? "clean" : "VIOLATIONS",
              static_cast<unsigned long long>(outcome.audit_checks));
  if (!outcome.audit_ok) {
    std::printf("%s", outcome.audit_report.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli = Parse(argc, argv);
  if (cli.command == "scenario") {
    return RunScenario(cli);
  }
  if (cli.command == "fork") {
    return RunFork(cli);
  }
  if (cli.command == "launch") {
    return RunLaunch(cli);
  }
  if (cli.command == "steady") {
    return RunSteady(cli);
  }
  if (cli.command == "ipc") {
    return RunIpc(cli);
  }
  if (cli.command == "smaps") {
    return RunSmaps(cli);
  }
  if (cli.command == "reclaim") {
    return RunReclaim(cli);
  }
  Usage();
  return 2;
}
