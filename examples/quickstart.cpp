// Quickstart: boot a simulated Android machine with shared address
// translation, fork an app from the zygote, and look at what the paper's
// mechanism changed.
//
//   $ ./build/examples/quickstart
//
// Walks through the public API surface: SystemConfig -> System ->
// ZygoteSystem -> Kernel, plus the per-fork statistics of Table 4.

#include <cstdio>

#include "src/core/sat.h"

int main() {
  // 1. Pick a kernel configuration. Stock() is unmodified Android;
  //    SharedPtpAndTlb() enables both of the paper's mechanisms.
  const sat::SystemConfig config = sat::ConfigByName("shared-ptp-tlb");

  // 2. Boot. This creates init, forks and execs the zygote, preloads the
  //    88 shared objects, runs the zygote's boot work (populating ~5,900
  //    instruction PTEs), and forks the system_server.
  sat::System system(config);
  std::printf("booted: %s\n", system.name().c_str());
  std::printf("zygote mapped %zu shared objects, %u page-table pages live\n",
              system.loader().zygote_layout().size(),
              static_cast<unsigned>(system.kernel().ptp_allocator().live_ptps()));

  // 3. Fork an application. No exec follows — the Android process model —
  //    so the child inherits the preloaded address space, and with shared
  //    PTPs it inherits the page tables themselves.
  const sat::ForkOutcome outcome = system.android().ForkAppWithStats("my_app");
  sat::Task* app = outcome.child;
  const sat::ForkResult& fork = outcome.stats;
  std::printf("\nzygote fork:\n");
  std::printf("  cycles            : %.2f x10^6\n",
              static_cast<double>(fork.cycles) / 1e6);
  std::printf("  PTPs shared       : %u\n", fork.slots_shared);
  std::printf("  PTPs allocated    : %u (the stack)\n", fork.child_ptps_allocated);
  std::printf("  PTEs copied       : %u\n", fork.ptes_copied);

  // 4. Touch a preloaded code page the zygote already ran at boot: with
  //    shared PTPs the PTE is already there — no soft page fault.
  const sat::TouchedPage& boot_page =
      system.android().zygote_boot_footprint().pages.front();
  const sat::VirtAddr va =
      system.android().CodePageVa(boot_page.lib, boot_page.page_index);
  const uint64_t faults_before = system.kernel().counters().faults_file_backed;
  system.kernel().TouchPage(*app, va, sat::AccessType::kExecute);
  std::printf("\ntouching a zygote-warmed code page: %s\n",
              system.kernel().counters().faults_file_backed == faults_before
                  ? "no page fault (PTE inherited through the shared PTP)"
                  : "page fault (stock behaviour)");

  // 5. Write to libc's data segment: copy-on-write *of the page table
  //    itself* — the PTP covering that 2 MB range is unshared first.
  const sat::LibraryImage* libc =
      system.android().catalog().FindByName("libc.so");
  const uint64_t unshares_before = system.kernel().counters().ptps_unshared;
  system.kernel().TouchPage(*app, system.android().DataPageVa(libc->id, 0),
                            sat::AccessType::kWrite);
  std::printf("writing libc.so data: %llu PTP unshare(s) performed\n",
              static_cast<unsigned long long>(
                  system.kernel().counters().ptps_unshared - unshares_before));

  system.kernel().Exit(*app);
  std::printf("\napp exited; PTPs live again: %u\n",
              static_cast<unsigned>(system.kernel().ptp_allocator().live_ptps()));
  return 0;
}
