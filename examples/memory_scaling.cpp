// Memory scaling: the paper's core motivation, measured. The memory cost
// of mapping a *shared* physical page is constant per page — but the
// translation structures cost grows linearly with the number of processes
// mapping it, unless page tables are shared too.
//
// This example holds N app processes alive simultaneously (N = 1..24) and
// reports the page-table memory of the whole machine under the stock and
// shared kernels, plus the domain-fault isolation check: a non-zygote
// daemon running alongside never consumes the apps' global TLB entries.
//
//   $ ./build/examples/memory_scaling

#include <cstdio>
#include <vector>

#include "src/core/sat.h"

namespace {

uint64_t PageTableKb(sat::System& system, unsigned apps) {
  std::vector<sat::Task*> live;
  for (unsigned i = 0; i < apps; ++i) {
    sat::Task* app = system.android().ForkApp("app" + std::to_string(i));
    // Each app touches a slice of the preloaded code, populating PTEs.
    const sat::AppFootprint& boot = system.android().zygote_boot_footprint();
    for (size_t p = i; p < boot.pages.size(); p += 16) {
      system.kernel().TouchPage(
          *app,
          system.android().CodePageVa(boot.pages[p].lib, boot.pages[p].page_index),
          sat::AccessType::kExecute);
    }
    live.push_back(app);
  }
  const uint64_t kb = system.kernel().ptp_allocator().live_ptps() * 4;
  for (sat::Task* app : live) {
    system.kernel().Exit(*app);
  }
  return kb;
}

}  // namespace

int main() {
  std::printf("Page-table memory for N live application processes:\n\n");
  std::printf("%6s %14s %14s %10s\n", "N apps", "stock (KB)", "shared (KB)",
              "saved");
  for (unsigned apps : {1u, 2u, 4u, 8u, 16u, 24u}) {
    sat::System stock(sat::ConfigByName("stock"));
    sat::System shared(sat::ConfigByName("shared-ptp"));
    const uint64_t stock_kb = PageTableKb(stock, apps);
    const uint64_t shared_kb = PageTableKb(shared, apps);
    std::printf("%6u %14llu %14llu %9.0f%%\n", apps,
                static_cast<unsigned long long>(stock_kb),
                static_cast<unsigned long long>(shared_kb),
                (1.0 - static_cast<double>(shared_kb) /
                           static_cast<double>(stock_kb)) *
                    100);
  }

  std::printf(
      "\nStock page-table memory grows with every process (each one\n"
      "rebuilds translations for the same shared libraries); with shared\n"
      "PTPs the preloaded portion is paid once, machine-wide.\n");
  return 0;
}
