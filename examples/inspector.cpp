// Inspector: the paper's measurement methodology (Section 4.1.1), turned
// on the simulation itself — a /proc/pid/smaps report with PSS accounting
// extended to page-table memory, and a perf-style PC sampler classifying
// what an app actually executes.
//
//   $ ./build/examples/inspector

#include <algorithm>
#include <cstdio>

#include "src/core/sat.h"

namespace {

void InspectUnder(const sat::SystemConfig& config) {
  sat::System system(config);
  sat::Kernel& kernel = system.kernel();
  sat::Task* app = system.android().ForkApp("inspected_app");
  kernel.ScheduleTo(*app);

  // Profile a burst of execution through the preloaded libraries.
  sat::PerfSampler sampler(&system.android(), 0, /*interval=*/2000);
  const sat::AppFootprint& boot = system.android().zygote_boot_footprint();
  for (size_t i = 0; i < 20000; ++i) {
    const sat::TouchedPage& page = boot.pages[(i * 31) % boot.pages.size()];
    kernel.core().FetchBurst(
        system.android().CodePageVa(page.lib, page.page_index), 25);
  }

  const sat::SampleBreakdown profile = sampler.Analyze(*app);
  const sat::SmapsReport smaps =
      GenerateSmaps(*app->mm, kernel.ptp_allocator(), &kernel.rmap(),
                    &kernel.phys());

  std::printf("--- %s ---\n", system.name().c_str());
  std::printf("perf: %zu samples, %.1f%% kernel, %.1f%% shared code\n",
              sampler.sample_count(), profile.KernelFraction() * 100,
              profile.SharedCodeShare() * 100);
  std::printf("smaps: Rss %u kB, Pss %.0f kB across %zu mappings\n",
              smaps.total_rss_kb, smaps.total_pss_kb, smaps.vmas.size());
  std::printf("page tables: %u kB this process, %.1f kB proportional share"
              " (%u shared PTPs)\n\n",
              smaps.page_table_kb, smaps.page_table_pss_kb, smaps.shared_ptps);

  // The five biggest mappings by Rss, smaps-style.
  std::vector<const sat::VmaReport*> by_rss;
  for (const sat::VmaReport& vma : smaps.vmas) {
    by_rss.push_back(&vma);
  }
  std::sort(by_rss.begin(), by_rss.end(),
            [](const auto* a, const auto* b) { return a->rss_kb > b->rss_kb; });
  std::printf("  %-28s %8s %8s %8s\n", "mapping", "Rss kB", "Pss kB", "shared");
  for (size_t i = 0; i < by_rss.size() && i < 5; ++i) {
    std::printf("  %-28s %8u %8.1f %8u\n", by_rss[i]->name.c_str(),
                by_rss[i]->rss_kb, by_rss[i]->pss_kb,
                by_rss[i]->shared_clean_kb);
  }
  std::printf("\n");

  kernel.Exit(*app);
}

}  // namespace

int main() {
  InspectUnder(sat::ConfigByName("stock"));
  InspectUnder(sat::ConfigByName("shared-ptp-tlb"));
  std::printf(
      "Rss is identical either way — physical sharing was never the\n"
      "problem (data PSS differs only because shared PTPs make the\n"
      "zygote's inherited PTEs count as co-mappers). The line to watch is\n"
      "page tables: stock charges every process the full footprint; with\n"
      "shared PTPs the proportional share collapses. And the profiler\n"
      "catches the behavioural difference: the stock run spends most of\n"
      "its samples in the kernel fault path that sharing eliminates.\n");
  return 0;
}
