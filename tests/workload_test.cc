// Unit tests for the workload substrate: profile calibration, footprint
// generation (determinism, category targets, overlap, sparsity), and the
// Section 2 analysis functions.

#include <gtest/gtest.h>

#include <set>

#include "src/workload/analysis.h"
#include "src/workload/app_profile.h"
#include "src/workload/footprint.h"

namespace sat {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest()
      : catalog_(LibraryCatalog::AndroidDefault()), factory_(&catalog_) {}

  LibraryCatalog catalog_;
  WorkloadFactory factory_;
};

TEST_F(WorkloadTest, PaperBenchmarksMatchTable1) {
  const auto apps = AppProfile::PaperBenchmarks();
  ASSERT_EQ(apps.size(), 11u);
  // Table 1's kernel-heavy apps.
  EXPECT_GT(AppProfile::Named("Chrome Privilege").kernel_fraction, 0.5);
  EXPECT_GT(AppProfile::Named("WPS").kernel_fraction, 0.5);
  EXPECT_GT(AppProfile::Named("MX Player").kernel_fraction, 0.3);
  // And the user-dominated majority.
  uint32_t user_dominated = 0;
  for (const AppProfile& app : apps) {
    if (app.kernel_fraction < 0.2) {
      user_dominated++;
    }
  }
  EXPECT_GE(user_dominated, 7u);
  // Library spread within the paper's reported 40-62 range.
  for (const AppProfile& app : apps) {
    EXPECT_GE(app.num_zygote_libs, 40u) << app.name;
    EXPECT_LE(app.num_zygote_libs, 62u) << app.name;
  }
}

TEST_F(WorkloadTest, GenerationIsDeterministic) {
  LibraryCatalog catalog2 = LibraryCatalog::AndroidDefault();
  WorkloadFactory factory2(&catalog2);
  const AppProfile profile = AppProfile::Named("Email");
  const AppFootprint a = factory_.Generate(profile);
  const AppFootprint b = factory2.Generate(profile);
  ASSERT_EQ(a.pages.size(), b.pages.size());
  for (size_t i = 0; i < a.pages.size(); ++i) {
    EXPECT_EQ(a.pages[i].lib, b.pages[i].lib);
    EXPECT_EQ(a.pages[i].page_index, b.pages[i].page_index);
    EXPECT_DOUBLE_EQ(a.pages[i].fetch_weight, b.pages[i].fetch_weight);
  }
}

TEST_F(WorkloadTest, FootprintHitsCategoryTargets) {
  const AppProfile profile = AppProfile::Named("Angrybirds");
  const AppFootprint fp = factory_.Generate(profile);
  const CategoryBreakdown breakdown = AnalyzeCategories(fp);
  // Within 25% of each Figure 2 target (clustering makes counts inexact).
  const auto near = [](uint32_t actual, uint32_t target) {
    return actual > target * 3 / 4 && actual < target * 5 / 4;
  };
  EXPECT_TRUE(near(breakdown.pages[static_cast<int>(CodeCategory::kZygoteDynamicLib)],
                   profile.zygote_so_pages));
  EXPECT_TRUE(near(breakdown.pages[static_cast<int>(CodeCategory::kZygoteJavaLib)],
                   profile.zygote_java_pages));
  EXPECT_TRUE(near(breakdown.pages[static_cast<int>(CodeCategory::kPrivateCode)],
                   profile.private_pages));
}

TEST_F(WorkloadTest, SharedCodeDominatesFootprintAndFetches) {
  // Section 2's headline numbers: ~93% of instruction pages and ~98% of
  // fetches are shared code.
  double page_fraction_sum = 0;
  double fetch_fraction_sum = 0;
  const auto apps = AppProfile::PaperBenchmarks();
  for (const AppProfile& app : apps) {
    const CategoryBreakdown b = AnalyzeCategories(factory_.Generate(app));
    page_fraction_sum += b.SharedCodePageFraction();
    fetch_fraction_sum += b.SharedCodeFetchFraction();
  }
  EXPECT_GT(page_fraction_sum / static_cast<double>(apps.size()), 0.85);
  EXPECT_GT(fetch_fraction_sum / static_cast<double>(apps.size()), 0.95);
}

TEST_F(WorkloadTest, FetchWeightsAreNormalized) {
  const AppFootprint fp = factory_.Generate(AppProfile::Named("Chrome"));
  double total = 0;
  for (const TouchedPage& page : fp.pages) {
    EXPECT_GE(page.fetch_weight, 0.0);
    total += page.fetch_weight;
  }
  EXPECT_NEAR(total, 1.0, 0.02);
}

TEST_F(WorkloadTest, PairwiseOverlapIsSubstantial) {
  // Table 2: zygote-preloaded intersections average 37.9% of each app's
  // footprint; all-shared-code 45.7%.
  const AppFootprint a = factory_.Generate(AppProfile::Named("Adobe Reader"));
  const AppFootprint b = factory_.Generate(AppProfile::Named("Android Browser"));
  const double zygote_only = IntersectionFraction(a, b, true);
  const double all_shared = IntersectionFraction(a, b, false);
  EXPECT_GT(zygote_only, 0.2);
  EXPECT_LT(zygote_only, 0.75);
  EXPECT_GE(all_shared, zygote_only);  // superset of page universe
}

TEST_F(WorkloadTest, SelfIntersectionIsTotalSharedFraction) {
  const AppFootprint a = factory_.Generate(AppProfile::Named("Email"));
  const CategoryBreakdown b = AnalyzeCategories(a);
  EXPECT_NEAR(IntersectionFraction(a, a, false), b.SharedCodePageFraction(),
              1e-9);
}

TEST_F(WorkloadTest, SparsityMatchesFigure4Shape) {
  // Figure 4: for ~60% of occupied 64 KB chunks, more than 9 of the 16
  // 4 KB pages are untouched.
  const AppFootprint fp = factory_.Generate(AppProfile::Named("Adobe Reader"));
  const SparsityResult sparsity = AnalyzeSparsity(fp);
  ASSERT_FALSE(sparsity.untouched_per_chunk.empty());
  uint32_t over9 = 0;
  for (uint32_t untouched : sparsity.untouched_per_chunk) {
    EXPECT_LE(untouched, 15u);  // an occupied chunk has >= 1 touched page
    if (untouched > 9) {
      over9++;
    }
  }
  const double fraction =
      static_cast<double>(over9) /
      static_cast<double>(sparsity.untouched_per_chunk.size());
  EXPECT_GT(fraction, 0.35);
  // 64 KB paging wastes substantial memory relative to 4 KB paging.
  EXPECT_GT(sparsity.MemoryBytes64k(), 1.5 * sparsity.MemoryBytes4k());
}

TEST_F(WorkloadTest, UnionSparsityDenserThanSingleApp) {
  std::vector<AppFootprint> fps;
  for (const AppProfile& app : AppProfile::PaperBenchmarks()) {
    fps.push_back(factory_.Generate(app));
  }
  const SparsityResult single = AnalyzeSparsity(fps[0]);
  const SparsityResult all = AnalyzeSparsityUnion(fps);
  EXPECT_GT(all.touched_pages_4k, single.touched_pages_4k);
  // Mean untouched per chunk shrinks as footprints union.
  double single_mean = 0;
  double union_mean = 0;
  for (uint32_t u : single.untouched_per_chunk) single_mean += u;
  for (uint32_t u : all.untouched_per_chunk) union_mean += u;
  single_mean /= static_cast<double>(single.untouched_per_chunk.size());
  union_mean /= static_cast<double>(all.untouched_per_chunk.size());
  EXPECT_LT(union_mean, single_mean);
}

TEST_F(WorkloadTest, ZygoteFootprintTargetsBootPages) {
  const AppFootprint boot = factory_.GenerateZygoteFootprint(5900);
  EXPECT_GT(boot.pages.size(), 4500u);
  EXPECT_LT(boot.pages.size(), 7500u);
  for (const TouchedPage& page : boot.pages) {
    EXPECT_TRUE(IsZygotePreloadedCategory(page.category));
  }
}

TEST_F(WorkloadTest, AppFootprintsOverlapZygoteBootSet) {
  // Table 3's premise: a large slice of each app's zygote-preloaded pages
  // was already populated by the zygote at boot.
  const AppFootprint boot = factory_.GenerateZygoteFootprint(5900);
  std::set<uint64_t> boot_keys;
  for (uint64_t key : boot.SharedPageKeys(true)) {
    boot_keys.insert(key);
  }
  const AppFootprint app = factory_.Generate(AppProfile::Named("MX Player"));
  uint32_t inherited = 0;
  for (uint64_t key : app.SharedPageKeys(true)) {
    if (boot_keys.count(key) > 0) {
      inherited++;
    }
  }
  // Paper: 640-2,300 inherited instruction PTEs per app (cold start).
  EXPECT_GT(inherited, 400u);
  EXPECT_LT(inherited, 4000u);
}

TEST_F(WorkloadTest, DataWritesTargetValidDataPages) {
  const AppFootprint fp = factory_.Generate(AppProfile::Named("WPS"));
  EXPECT_FALSE(fp.data_writes.empty());
  for (const DataWrite& write : fp.data_writes) {
    EXPECT_LT(write.page_index, catalog_.Get(write.lib).data_pages);
  }
}

TEST_F(WorkloadTest, PerAppLibrariesAreRegisteredPerApp) {
  const size_t before = catalog_.size();
  const AppFootprint fp = factory_.Generate(AppProfile::Named("Email"));
  EXPECT_GT(catalog_.size(), before);  // private libs + own code registered
  EXPECT_GE(fp.private_code_lib, 0);
  EXPECT_EQ(catalog_.Get(fp.private_code_lib).category,
            CodeCategory::kPrivateCode);
}

TEST_F(WorkloadTest, EveryPaperBenchmarkIsNamedRoundTrip) {
  for (const AppProfile& app : AppProfile::PaperBenchmarks()) {
    const AppProfile named = AppProfile::Named(app.name);
    EXPECT_EQ(named.seed, app.seed);
    EXPECT_EQ(named.zygote_so_pages, app.zygote_so_pages);
    EXPECT_EQ(named.kernel_fraction, app.kernel_fraction);
  }
}

TEST_F(WorkloadTest, ZygoteFootprintIsDeterministicPerSeed) {
  const AppFootprint a = factory_.GenerateZygoteFootprint(3000, 42);
  LibraryCatalog catalog2 = LibraryCatalog::AndroidDefault();
  WorkloadFactory factory2(&catalog2);
  const AppFootprint b = factory2.GenerateZygoteFootprint(3000, 42);
  ASSERT_EQ(a.pages.size(), b.pages.size());
  for (size_t i = 0; i < a.pages.size(); i += 37) {
    EXPECT_EQ(a.pages[i].lib, b.pages[i].lib);
    EXPECT_EQ(a.pages[i].page_index, b.pages[i].page_index);
  }
  // A different seed selects a different (but same-sized-ish) set.
  const AppFootprint c = factory_.GenerateZygoteFootprint(3000, 43);
  uint32_t diffs = 0;
  for (size_t i = 0; i < std::min(a.pages.size(), c.pages.size()); ++i) {
    if (a.pages[i].page_index != c.pages[i].page_index) {
      diffs++;
    }
  }
  EXPECT_GT(diffs, 0u);
}

TEST_F(WorkloadTest, PagesAreWithinLibraryBounds) {
  for (const AppProfile& app : AppProfile::PaperBenchmarks()) {
    const AppFootprint fp = factory_.Generate(app);
    for (const TouchedPage& page : fp.pages) {
      EXPECT_LT(page.page_index, catalog_.Get(page.lib).code_pages)
          << app.name << " " << catalog_.Get(page.lib).name;
    }
  }
}

}  // namespace
}  // namespace sat
