// KSM-style same-page merging (src/ksm): scan/merge mechanics, the
// checksum-skip heuristic, COW unmerge, the interaction with shared page-
// table pages (merging under a shared PTP must privatize it first), swap
// of stable frames (one compressed slot for N sharers), and clean ENOMEM
// rollback when the lazy unshare cannot allocate.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/core/sat.h"

namespace sat {
namespace {

KernelParams SmallParams(uint64_t phys_mb = 32, uint64_t swap_mb = 0) {
  KernelParams params;
  params.phys_bytes = phys_mb * 1024 * 1024;
  params.swap_bytes = swap_mb * 1024 * 1024;
  return params;
}

// Maps `pages` anonymous RW pages at `base`, MERGEABLE from birth.
VirtAddr MapMergeable(Kernel& kernel, Task& task, uint32_t pages,
                      VirtAddr base) {
  MmapRequest request;
  request.length = pages * kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  request.fixed_address = base;
  request.mergeable = true;
  EXPECT_EQ(kernel.Mmap(task, request).value, base);
  return base;
}

FrameNumber FrameAt(Task& task, VirtAddr va) {
  const auto ref = task.mm->page_table().FindPte(va);
  if (!ref.has_value() || !ref->ptp->hw(ref->index).valid()) {
    return static_cast<FrameNumber>(-1);
  }
  return MappedFrameOf(ref->ptp->hw(ref->index), ref->index);
}

PtePerm PermAt(Task& task, VirtAddr va) {
  const auto ref = task.mm->page_table().FindPte(va);
  EXPECT_TRUE(ref.has_value() && ref->ptp->hw(ref->index).valid());
  return ref->ptp->hw(ref->index).perm();
}

void ExpectAuditOk(Kernel& kernel, const char* where) {
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << where << ":\n" << report.ToString();
}

uint32_t SwapOutAll(Kernel& kernel, uint32_t target) {
  uint32_t freed = 0;
  for (int pass = 0; pass < 8 && freed < target; ++pass) {
    freed += kernel.SwapOutAnonPages(target - freed);
  }
  return freed;
}

// ---------------------------------------------------------------------------
// Basic merging.
// ---------------------------------------------------------------------------

TEST(KsmTest, MergesIdenticalPagesAfterTwoPasses) {
  Kernel kernel(SmallParams());
  Task* task = kernel.CreateTask("app");
  const VirtAddr base = MapMergeable(kernel, *task, 4, 0x40000000);
  const uint64_t contents[] = {7, 7, 13, 21};
  for (uint32_t i = 0; i < 4; ++i) {
    ASSERT_EQ(kernel.WritePage(*task, base + i * kPageSize, contents[i]),
              TouchStatus::kOk);
  }
  const uint64_t anon_before = kernel.phys().CountFrames(FrameKind::kAnon);

  // Pass 1 only records checksums (the unstable tree admits a page after
  // its content survives one full scan interval unchanged).
  EXPECT_EQ(kernel.RunKsmScan(), 0u);
  EXPECT_EQ(kernel.counters().ksm_scans, 1u);
  EXPECT_EQ(kernel.counters().ksm_pages_scanned, 4u);
  EXPECT_EQ(kernel.counters().ksm_pages_merged, 0u);
  EXPECT_EQ(kernel.ksm().pages_shared(), 0u);

  // Pass 2 merges the duplicate pair.
  EXPECT_EQ(kernel.RunKsmScan(), 1u);
  EXPECT_EQ(kernel.counters().ksm_pages_merged, 1u);
  EXPECT_GT(kernel.counters().ksm_ptes_write_protected, 0u);
  EXPECT_EQ(kernel.ksm().pages_shared(), 1u);
  EXPECT_EQ(kernel.ksm().pages_sharing(), 1u);
  EXPECT_EQ(kernel.phys().CountFrames(FrameKind::kAnon), anon_before - 1);

  // Both duplicates map the same write-protected stable frame.
  const FrameNumber f0 = FrameAt(*task, base);
  EXPECT_EQ(f0, FrameAt(*task, base + kPageSize));
  EXPECT_TRUE(kernel.ksm().IsStableFrame(f0));
  EXPECT_TRUE(kernel.phys().frame(f0).ksm_stable);
  EXPECT_EQ(PermAt(*task, base), PtePerm::kReadOnly);
  EXPECT_EQ(PermAt(*task, base + kPageSize), PtePerm::kReadOnly);
  // The unique pages are untouched.
  EXPECT_NE(FrameAt(*task, base + 2 * kPageSize),
            FrameAt(*task, base + 3 * kPageSize));
  ExpectAuditOk(kernel, "after merge");

  // A third pass is a no-op: stable pages are skipped, nothing else matches.
  EXPECT_EQ(kernel.RunKsmScan(), 0u);
  EXPECT_EQ(kernel.counters().ksm_pages_merged, 1u);
  ExpectAuditOk(kernel, "after idle rescan");
}

TEST(KsmTest, ChecksumSkipDefersActivelyWrittenPages) {
  Kernel kernel(SmallParams());
  Task* task = kernel.CreateTask("app");
  const VirtAddr base = MapMergeable(kernel, *task, 2, 0x40000000);
  // The page pair matches within every pass but changes between passes:
  // the checksum heuristic must keep it out of the unstable tree forever.
  for (uint64_t round = 0; round < 4; ++round) {
    ASSERT_EQ(kernel.WritePage(*task, base, 100 + round), TouchStatus::kOk);
    ASSERT_EQ(kernel.WritePage(*task, base + kPageSize, 100 + round),
              TouchStatus::kOk);
    EXPECT_EQ(kernel.RunKsmScan(), 0u);
  }
  EXPECT_EQ(kernel.counters().ksm_pages_merged, 0u);
  EXPECT_EQ(kernel.ksm().pages_shared(), 0u);
  ExpectAuditOk(kernel, "after churn");
}

TEST(KsmTest, OnlyMergeableRegionsAreScanned) {
  Kernel kernel(SmallParams());
  Task* task = kernel.CreateTask("app");
  const VirtAddr advised = MapMergeable(kernel, *task, 2, 0x40000000);
  // A second region with identical content but no madvise.
  MmapRequest request;
  request.length = 2 * kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  request.fixed_address = 0x50000000;
  ASSERT_NE(kernel.Mmap(*task, request).value, 0u);
  for (uint32_t i = 0; i < 2; ++i) {
    ASSERT_EQ(kernel.WritePage(*task, advised + i * kPageSize, 9),
              TouchStatus::kOk);
    ASSERT_EQ(kernel.WritePage(*task, 0x50000000 + i * kPageSize, 9),
              TouchStatus::kOk);
  }
  kernel.RunKsmScan();
  kernel.RunKsmScan();
  // Only the advised region's pages were examined; its internal duplicate
  // merged, the unadvised twins were never considered.
  EXPECT_EQ(kernel.counters().ksm_pages_scanned, 4u);  // 2 pages x 2 passes
  EXPECT_EQ(kernel.counters().ksm_pages_merged, 1u);
  EXPECT_FALSE(kernel.phys().frame(FrameAt(*task, 0x50000000)).ksm_stable);

  // madvise(MERGEABLE) after the fact brings the region in.
  EXPECT_EQ(kernel.Madvise(*task, 0x50000000, 2 * kPageSize,
                           MadviseAdvice::kMergeable)
                .error,
            Errno::kOk);
  kernel.RunKsmScan();
  kernel.RunKsmScan();
  EXPECT_EQ(kernel.counters().ksm_pages_merged, 3u);  // both twins joined
  EXPECT_EQ(kernel.ksm().pages_shared(), 1u);
  EXPECT_EQ(kernel.ksm().pages_sharing(), 3u);
  ExpectAuditOk(kernel, "after late advice");
}

TEST(KsmTest, MadviseValidatesItsArguments) {
  Kernel kernel(SmallParams());
  Task* task = kernel.CreateTask("app");
  MapMergeable(kernel, *task, 2, 0x40000000);
  EXPECT_EQ(kernel.Madvise(*task, 0x40000000, 0, MadviseAdvice::kMergeable)
                .error,
            Errno::kEinval);
  EXPECT_EQ(kernel.Madvise(*task, 0x40000001, kPageSize,
                           MadviseAdvice::kMergeable)
                .error,
            Errno::kEinval);
  EXPECT_EQ(kernel.Madvise(*task, 0x70000000, kPageSize,
                           MadviseAdvice::kMergeable)
                .error,
            Errno::kEfault);
  // Splitting: un-advise one page out of the middle of the two.
  EXPECT_EQ(kernel.Madvise(*task, 0x40000000, kPageSize,
                           MadviseAdvice::kUnmergeable)
                .error,
            Errno::kOk);
  const VmArea* first = task->mm->FindVma(0x40000000);
  const VmArea* second = task->mm->FindVma(0x40000000 + kPageSize);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_FALSE(first->mergeable);
  EXPECT_TRUE(second->mergeable);
  ExpectAuditOk(kernel, "after split");
}

// ---------------------------------------------------------------------------
// Unmerge via the COW path.
// ---------------------------------------------------------------------------

TEST(KsmTest, WriteFaultUnmergesByCopying) {
  Kernel kernel(SmallParams());
  Task* task = kernel.CreateTask("app");
  const VirtAddr base = MapMergeable(kernel, *task, 2, 0x40000000);
  ASSERT_EQ(kernel.WritePage(*task, base, 5), TouchStatus::kOk);
  ASSERT_EQ(kernel.WritePage(*task, base + kPageSize, 5), TouchStatus::kOk);
  kernel.RunKsmScan();
  ASSERT_EQ(kernel.RunKsmScan(), 1u);
  const FrameNumber stable = FrameAt(*task, base);

  // First write: COW away from the stable frame; the other sharer stays.
  ASSERT_EQ(kernel.WritePage(*task, base, 6), TouchStatus::kOk);
  EXPECT_EQ(kernel.counters().ksm_unmerge_faults, 1u);
  EXPECT_NE(FrameAt(*task, base), stable);
  EXPECT_EQ(FrameAt(*task, base + kPageSize), stable);
  EXPECT_TRUE(kernel.ksm().IsStableFrame(stable));
  EXPECT_EQ(kernel.ksm().pages_sharing(), 0u);
  ExpectAuditOk(kernel, "after first unmerge");

  // Second write: even at one remaining mapping a stable page is never
  // reused in place (the PageKsm rule) — the copy frees the stable frame
  // and the daemon prunes its tree node.
  ASSERT_EQ(kernel.WritePage(*task, base + kPageSize, 6), TouchStatus::kOk);
  EXPECT_EQ(kernel.counters().ksm_unmerge_faults, 2u);
  EXPECT_EQ(kernel.ksm().pages_shared(), 0u);
  EXPECT_FALSE(kernel.ksm().IsStableFrame(stable));
  ExpectAuditOk(kernel, "after last unmerge");

  // The copies carried the content: the pair is identical again and can
  // re-merge from scratch.
  kernel.RunKsmScan();
  EXPECT_EQ(kernel.RunKsmScan(), 1u);
  EXPECT_EQ(kernel.ksm().pages_shared(), 1u);
  ExpectAuditOk(kernel, "after re-merge");
}

// ---------------------------------------------------------------------------
// Shared page-table pages: merging must privatize the PTP first.
// ---------------------------------------------------------------------------

TEST(KsmTest, MergeUnderSharedPtpForcesLazyUnshare) {
  KernelParams params = SmallParams();
  params.vm.share_ptps = true;
  Kernel kernel(params);
  Task* parent = kernel.CreateTask("parent");
  // Two regions in different 2 MB slots, one duplicate page in each.
  const VirtAddr a = MapMergeable(kernel, *parent, 1, 0x40000000);
  const VirtAddr b = MapMergeable(kernel, *parent, 1, 0x50000000);
  ASSERT_EQ(kernel.WritePage(*parent, a, 42), TouchStatus::kOk);
  ASSERT_EQ(kernel.WritePage(*parent, b, 42), TouchStatus::kOk);

  Task* child = kernel.Fork(*parent, "child").child;
  ASSERT_NE(child, nullptr);
  PageTable& ppt = parent->mm->page_table();
  PageTable& cpt = child->mm->page_table();
  ASSERT_TRUE(ppt.SlotNeedsCopy(a));
  ASSERT_TRUE(ppt.SlotNeedsCopy(b));
  const FrameNumber fa = FrameAt(*parent, a);
  const FrameNumber fb = FrameAt(*parent, b);
  ASSERT_NE(fa, fb);

  kernel.RunKsmScan();
  const uint32_t merged = kernel.RunKsmScan();
  // Parent's b merged into a's frame (unsharing the parent's b-slot), then
  // the child's b — a stable-tree hit — did the same on the child's side.
  EXPECT_EQ(merged, 2u);
  EXPECT_EQ(kernel.counters().ksm_unshares, 2u);
  EXPECT_GE(kernel.counters().ptps_unshared, 2u);
  EXPECT_FALSE(ppt.SlotNeedsCopy(b));
  EXPECT_FALSE(cpt.SlotNeedsCopy(b));
  // The a-slot stayed shared: its PTE already mapped the (now stable)
  // frame, so no merge — and no unshare — was needed there.
  EXPECT_TRUE(ppt.SlotNeedsCopy(a));
  EXPECT_TRUE(cpt.SlotNeedsCopy(a));
  EXPECT_EQ(FrameAt(*parent, b), fa);
  EXPECT_EQ(FrameAt(*child, b), fa);
  EXPECT_EQ(kernel.ksm().pages_shared(), 1u);
  // fb lost its last mapping in the merge and was freed.
  EXPECT_EQ(kernel.phys().frame(fb).kind, FrameKind::kFree);
  ExpectAuditOk(kernel, "after shared-ptp merge");

  kernel.Exit(*child);
  ExpectAuditOk(kernel, "after child exit");
  kernel.Exit(*parent);
  EXPECT_EQ(kernel.ksm().pages_shared(), 0u);  // freed frames pruned
  ExpectAuditOk(kernel, "after teardown");
}

// ---------------------------------------------------------------------------
// Stable frames and swap.
// ---------------------------------------------------------------------------

TEST(KsmTest, StableFrameSwapsOnceForAllSharers) {
  Kernel kernel(SmallParams(32, 16));
  Task* task = kernel.CreateTask("app");
  const VirtAddr base = MapMergeable(kernel, *task, 2, 0x40000000);
  ASSERT_EQ(kernel.WritePage(*task, base, 77), TouchStatus::kOk);
  ASSERT_EQ(kernel.WritePage(*task, base + kPageSize, 77), TouchStatus::kOk);
  kernel.RunKsmScan();
  ASSERT_EQ(kernel.RunKsmScan(), 1u);
  const FrameNumber stable = FrameAt(*task, base);

  // Swap the merged page out: both sharers' PTEs become swap PTEs against
  // ONE compressed slot, and the freed stable frame leaves the tree.
  ASSERT_GE(SwapOutAll(kernel, 2), 1u);
  PageTable& pt = task->mm->page_table();
  const auto ref0 = pt.FindPte(base);
  const auto ref1 = pt.FindPte(base + kPageSize);
  ASSERT_TRUE(ref0.has_value() && ref0->ptp->sw(ref0->index).is_swap());
  ASSERT_TRUE(ref1.has_value() && ref1->ptp->sw(ref1->index).is_swap());
  EXPECT_EQ(ref0->ptp->sw(ref0->index).swap_slot(),
            ref1->ptp->sw(ref1->index).swap_slot());
  const SwapSlotId slot = ref0->ptp->sw(ref0->index).swap_slot();
  EXPECT_EQ(kernel.zram().SlotRefCount(slot), 2u);
  EXPECT_EQ(kernel.zram().SlotContent(slot), 77u);
  EXPECT_FALSE(kernel.ksm().IsStableFrame(stable));
  EXPECT_EQ(kernel.ksm().pages_shared(), 0u);
  ExpectAuditOk(kernel, "after swap-out");

  // Swap back in: the first fault decompresses, the second hits the swap
  // cache and maps the same frame — still deduplicated.
  ASSERT_TRUE(kernel.TouchPage(*task, base, AccessType::kRead));
  ASSERT_TRUE(kernel.TouchPage(*task, base + kPageSize, AccessType::kRead));
  EXPECT_EQ(kernel.counters().swap_ins_cache_hit, 1u);
  EXPECT_EQ(FrameAt(*task, base), FrameAt(*task, base + kPageSize));
  // The content tag rode through the compressed slot, so a later scan
  // re-promotes the shared frame to stable without any copying.
  EXPECT_EQ(kernel.phys().frame(FrameAt(*task, base)).content, 77u);
  kernel.RunKsmScan();
  kernel.RunKsmScan();
  EXPECT_EQ(kernel.ksm().pages_shared(), 1u);
  EXPECT_TRUE(kernel.phys().frame(FrameAt(*task, base)).ksm_stable);
  ExpectAuditOk(kernel, "after swap-in and re-promote");
}

// ---------------------------------------------------------------------------
// ENOMEM rollback mid-merge.
// ---------------------------------------------------------------------------

TEST(KsmTest, EnomemDuringLazyUnshareAbandonsTheMergeCleanly) {
  KernelParams params = SmallParams();
  params.vm.share_ptps = true;
  Kernel kernel(params);
  Task* parent = kernel.CreateTask("parent");
  const VirtAddr a = MapMergeable(kernel, *parent, 1, 0x40000000);
  const VirtAddr b = MapMergeable(kernel, *parent, 1, 0x50000000);
  ASSERT_EQ(kernel.WritePage(*parent, a, 42), TouchStatus::kOk);
  ASSERT_EQ(kernel.WritePage(*parent, b, 42), TouchStatus::kOk);
  Task* child = kernel.Fork(*parent, "child").child;
  ASSERT_NE(child, nullptr);
  const FrameNumber fb = FrameAt(*parent, b);

  kernel.RunKsmScan();  // record checksums
  // Every PTP allocation now fails: both b-merges need the lazy unshare
  // and must abandon their candidate without touching the shared slot.
  kernel.fault_injector().SetRule(AllocSite::kPtp, FaultRule{0, 1, 0.0});
  EXPECT_EQ(kernel.RunKsmScan(), 0u);
  EXPECT_EQ(kernel.counters().ksm_merge_failures, 2u);
  EXPECT_EQ(kernel.counters().ksm_unshares, 0u);
  EXPECT_TRUE(parent->mm->page_table().SlotNeedsCopy(b));
  EXPECT_TRUE(child->mm->page_table().SlotNeedsCopy(b));
  EXPECT_EQ(FrameAt(*parent, b), fb);
  EXPECT_EQ(FrameAt(*child, b), fb);
  // The promotion half did happen — a's frame is stable, b's pages simply
  // could not join it yet. That is a complete, consistent state.
  EXPECT_EQ(kernel.ksm().pages_shared(), 1u);
  ExpectAuditOk(kernel, "after injected failure");

  // With memory back, the next pass finishes the job via stable-tree hits.
  kernel.fault_injector().Reset();
  EXPECT_EQ(kernel.RunKsmScan(), 2u);
  EXPECT_EQ(kernel.counters().ksm_unshares, 2u);
  EXPECT_EQ(kernel.phys().frame(fb).kind, FrameKind::kFree);
  ExpectAuditOk(kernel, "after recovery");
}

// ---------------------------------------------------------------------------
// The periodic wake-up path.
// ---------------------------------------------------------------------------

TEST(KsmTest, KsmdWakesFromTheKswapdHookPoints) {
  KernelParams params = SmallParams();
  params.ksm_enabled = true;
  params.ksm_wake_interval = 8;  // every 8th kswapd wake point
  Kernel kernel(params);
  Task* task = kernel.CreateTask("app");
  const VirtAddr base = MapMergeable(kernel, *task, 2, 0x40000000);
  ASSERT_EQ(kernel.WritePage(*task, base, 3), TouchStatus::kOk);
  ASSERT_EQ(kernel.WritePage(*task, base + kPageSize, 3), TouchStatus::kOk);
  // Touches hit the wake point once each; after enough of them ksmd has
  // run at least twice and the pair is merged without any explicit scan.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(kernel.TouchPage(*task, base, AccessType::kRead));
  }
  EXPECT_GE(kernel.counters().ksm_scans, 2u);
  EXPECT_EQ(kernel.counters().ksm_pages_merged, 1u);
  EXPECT_EQ(kernel.ksm().pages_shared(), 1u);
  ExpectAuditOk(kernel, "after periodic merges");
}

}  // namespace
}  // namespace sat
