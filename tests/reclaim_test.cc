// Tests for the reverse map and the page-cache reclaim path — the
// "translation overhead grows linearly with the number of processes"
// claim, exercised from the unmap side.

#include <gtest/gtest.h>

#include "src/core/sat.h"

namespace sat {
namespace {

// ---------------------------------------------------------------------------
// ReverseMap unit tests.
// ---------------------------------------------------------------------------

TEST(RmapTest, AddRemoveCount) {
  ReverseMap rmap;
  EXPECT_EQ(rmap.MapCount(5), 0u);
  rmap.Add(5, 1, 10, 0x40000000);
  rmap.Add(5, 2, 10, 0x40000000);
  rmap.Add(6, 1, 11, 0x40001000);
  EXPECT_EQ(rmap.MapCount(5), 2u);
  EXPECT_EQ(rmap.MapCount(6), 1u);
  EXPECT_EQ(rmap.total_entries(), 3u);

  rmap.Remove(5, 1, 10);
  EXPECT_EQ(rmap.MapCount(5), 1u);
  rmap.Remove(5, 9, 9);  // absent: no-op
  EXPECT_EQ(rmap.MapCount(5), 1u);
  rmap.Remove(5, 2, 10);
  EXPECT_EQ(rmap.MapCount(5), 0u);
  EXPECT_EQ(rmap.total_entries(), 1u);
}

TEST(RmapTest, ForEachVisitsAllMappings) {
  ReverseMap rmap;
  rmap.Add(7, 1, 0, 0x40000000);
  rmap.Add(7, 2, 0, 0x40000000);
  uint32_t visited = 0;
  rmap.ForEach(7, [&](const RmapEntry& entry) {
    EXPECT_EQ(entry.va, 0x40000000u);
    visited++;
  });
  EXPECT_EQ(visited, 2u);
  rmap.ForEach(99, [&](const RmapEntry&) { FAIL(); });
}

// ---------------------------------------------------------------------------
// Rmap maintenance through the kernel.
// ---------------------------------------------------------------------------

class ReclaimTest : public ::testing::Test {
 protected:
  ReclaimTest() : system_(ConfigByName("shared-ptp")) {}

  Kernel& kernel() { return system_.kernel(); }

  FrameNumber FrameAt(Task& task, VirtAddr va) {
    const auto ref = task.mm->page_table().FindPte(va);
    return ref->ptp->hw(ref->index).frame();
  }

  System system_;
};

TEST_F(ReclaimTest, SharedPtpPageHasOneRmapEntryForAllSharers) {
  // The headline property: N sharers, one rmap entry.
  Task* a = system_.android().ForkApp("a");
  Task* b = system_.android().ForkApp("b");
  Task* c = system_.android().ForkApp("c");
  (void)b;
  (void)c;
  const LibraryImage* libc = system_.android().catalog().FindByName("libc.so");
  const VirtAddr va = system_.android().CodePageVa(libc->id, 1);
  kernel().TouchPage(*a, va, AccessType::kExecute);  // populates shared PTP
  EXPECT_EQ(kernel().rmap().MapCount(FrameAt(*a, va)), 1u);
}

TEST_F(ReclaimTest, StockPagesHaveOneEntryPerProcess) {
  System stock(ConfigByName("stock"));
  Task* a = stock.android().ForkApp("a");
  Task* b = stock.android().ForkApp("b");
  Task* c = stock.android().ForkApp("c");
  const LibraryImage* libc = stock.android().catalog().FindByName("libc.so");
  const VirtAddr va = stock.android().CodePageVa(libc->id, 1);
  for (Task* task : {a, b, c}) {
    stock.kernel().TouchPage(*task, va, AccessType::kExecute);
  }
  const auto ref = a->mm->page_table().FindPte(va);
  EXPECT_EQ(stock.kernel().rmap().MapCount(ref->ptp->hw(ref->index).frame()),
            3u);
}

TEST_F(ReclaimTest, ReclaimUnmapsFromEverySharerAtOnce) {
  Task* a = system_.android().ForkApp("a");
  Task* b = system_.android().ForkApp("b");
  const LibraryImage* libc = system_.android().catalog().FindByName("libc.so");
  const VirtAddr va = system_.android().CodePageVa(libc->id, 1);
  kernel().TouchPage(*a, va, AccessType::kExecute);

  ReclaimStats stats;
  EXPECT_TRUE(system_.kernel().vm().config().share_ptps);
  Reclaimer reclaimer(&kernel().phys(), &kernel().page_cache(),
                      &kernel().ptp_allocator(), &kernel().rmap(),
                      &kernel().counters());
  EXPECT_TRUE(reclaimer.ReclaimPage(libc->file, 1, nullptr, &stats));
  EXPECT_EQ(stats.pages_reclaimed, 1u);
  EXPECT_EQ(stats.ptes_cleared, 1u);  // one clear serves both sharers

  // Both sharers now fault again on access.
  const uint64_t faults = kernel().counters().faults_file_backed;
  kernel().TouchPage(*a, va, AccessType::kExecute);
  EXPECT_EQ(kernel().counters().faults_file_backed, faults + 1);
  // ...and b sees the repopulated entry without another fault (shared PTP).
  kernel().TouchPage(*b, va, AccessType::kExecute);
  EXPECT_EQ(kernel().counters().faults_file_backed, faults + 1);
}

TEST_F(ReclaimTest, ReclaimFreesTheFrame) {
  Task* a = system_.android().ForkApp("a");
  const LibraryImage* libpng = system_.android().catalog().FindByName("libpng.so");
  const VirtAddr va = system_.android().CodePageVa(libpng->id, 0);
  kernel().TouchPage(*a, va, AccessType::kExecute);
  const FrameNumber frame = FrameAt(*a, va);
  EXPECT_EQ(kernel().phys().frame(frame).kind, FrameKind::kFileCache);

  ReclaimStats stats;
  Reclaimer reclaimer(&kernel().phys(), &kernel().page_cache(),
                      &kernel().ptp_allocator(), &kernel().rmap(),
                      &kernel().counters());
  reclaimer.ReclaimPage(libpng->file, 0, nullptr, &stats);
  EXPECT_EQ(kernel().phys().frame(frame).kind, FrameKind::kFree);
  EXPECT_EQ(kernel().page_cache().Lookup(libpng->file, 0),
            PageCache::kNoFrame);
}

TEST_F(ReclaimTest, DirtyAndLargeMappingsAreSkipped) {
  Task* a = system_.android().ForkApp("a");
  // A shared-writable mapping: its page may be dirty -> unreclaimable.
  MmapRequest request;
  request.length = 2 * kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kFileShared;
  request.file = 424242;
  request.fixed_address = 0x70000000;
  kernel().Mmap(*a, request);
  kernel().TouchPage(*a, 0x70000000, AccessType::kWrite);

  ReclaimStats stats;
  Reclaimer reclaimer(&kernel().phys(), &kernel().page_cache(),
                      &kernel().ptp_allocator(), &kernel().rmap(),
                      &kernel().counters());
  EXPECT_FALSE(reclaimer.ReclaimPage(424242, 0, nullptr, &stats));
  EXPECT_EQ(stats.pages_skipped, 1u);

  // A large-page mapping: skipped (the block would need splitting).
  SystemConfig large_config = ConfigByName("shared-ptp");
  large_config.large_pages_for_code = true;
  large_config.phys_bytes = 1024ull * 1024 * 1024;
  System large_system(large_config);
  Kernel& large_kernel = large_system.kernel();
  Task* app = large_system.android().ForkApp("app");
  (void)app;
  const LibraryImage* libc = large_system.android().catalog().FindByName("libc.so");
  Reclaimer large_reclaimer(&large_kernel.phys(), &large_kernel.page_cache(),
                            &large_kernel.ptp_allocator(), &large_kernel.rmap(),
                            &large_kernel.counters());
  ReclaimStats large_stats;
  EXPECT_FALSE(large_reclaimer.ReclaimPage(libc->file, 0, nullptr, &large_stats));
  EXPECT_EQ(large_stats.pages_skipped, 1u);
}

TEST_F(ReclaimTest, KernelLevelReclaimFlushesTlbs) {
  Task* a = system_.android().ForkApp("a");
  kernel().ScheduleTo(*a);
  const AppFootprint& boot = system_.android().zygote_boot_footprint();
  const TouchedPage& page = boot.pages.front();
  const VirtAddr va = system_.android().CodePageVa(page.lib, page.page_index);
  EXPECT_TRUE(kernel().core().FetchLine(va));  // TLB entry live

  const ReclaimStats stats = kernel().ReclaimFileCache(50);
  EXPECT_EQ(stats.pages_reclaimed, 50u);
  EXPECT_GT(stats.tlb_flushes, 0u);
  EXPECT_EQ(kernel().counters().pages_reclaimed, 50u);

  // The system still works: accesses refault and repopulate.
  EXPECT_TRUE(kernel().core().FetchLine(va));
}

TEST_F(ReclaimTest, ReclaimThenFullRunStaysBalanced) {
  AppRunner runner(&system_.android());
  const AppFootprint fp = system_.workload().Generate(AppProfile::Named("Email"));
  runner.Run(fp, /*exit_after=*/true);
  kernel().ReclaimFileCache(500);
  // Another full app lifecycle on the post-reclaim machine.
  const AppRunStats stats = runner.Run(fp, /*exit_after=*/true);
  EXPECT_GT(stats.file_faults, 0u);
  EXPECT_EQ(kernel().phys().CountFrames(FrameKind::kAnon) > 0, true);
}

}  // namespace
}  // namespace sat
