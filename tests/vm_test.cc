// Unit tests for the VM subsystem: region management, the page-fault
// handler (soft fill, COW, populate-into-shared-PTP, unshare-on-write),
// the three fork policies, and the mmap family's unshare triggers.

#include <gtest/gtest.h>

#include "src/mem/page_cache.h"
#include "src/mem/phys_memory.h"
#include "src/proc/kernel.h"
#include "src/pt/ptp.h"
#include "src/vm/mm.h"
#include "src/vm/smaps.h"
#include "src/vm/vm_manager.h"

namespace sat {
namespace {

class VmTest : public ::testing::Test {
 protected:
  VmTest()
      : phys_(4096 * kPageSize),
        cache_(&phys_),
        alloc_(&phys_, &counters_),
        vm_(&phys_, &cache_, &counters_, &CostModel::Default(),
            VmConfig::Stock()) {}

  std::unique_ptr<MmStruct> NewMm() {
    return std::make_unique<MmStruct>(&alloc_, &phys_, &counters_, kDomainUser);
  }

  MemoryAbort Abort(VirtAddr va, AccessType access,
                    FaultStatus status = FaultStatus::kTranslation) {
    MemoryAbort abort;
    abort.status = status;
    abort.fault_address = va;
    abort.access = access;
    return abort;
  }

  // Maps a private file region of `pages` pages at a fixed address.
  VirtAddr MapFile(MmStruct& mm, VirtAddr at, uint32_t pages, VmProt prot,
                   FileId file = 42, bool global = false) {
    MmapRequest request;
    request.length = pages * kPageSize;
    request.prot = prot;
    request.kind = VmKind::kFilePrivate;
    request.file = file;
    request.fixed_address = at;
    request.global = global;
    return vm_.Mmap(mm, request, nullptr);
  }

  VirtAddr MapAnon(MmStruct& mm, VirtAddr at, uint32_t pages,
                   bool is_stack = false) {
    MmapRequest request;
    request.length = pages * kPageSize;
    request.prot = VmProt::ReadWrite();
    request.kind = VmKind::kAnonPrivate;
    request.fixed_address = at;
    request.is_stack = is_stack;
    return vm_.Mmap(mm, request, nullptr);
  }

  const HwPte* PteAt(MmStruct& mm, VirtAddr va) {
    const auto ref = mm.page_table().FindPte(va);
    if (!ref || !ref->ptp->hw(ref->index).valid()) {
      return nullptr;
    }
    static HwPte copy;
    copy = ref->ptp->hw(ref->index);
    return &copy;
  }

  PhysicalMemory phys_;
  PageCache cache_;
  KernelCounters counters_;
  PtpAllocator alloc_;
  VmManager vm_;
};

// ---------------------------------------------------------------------------
// MmStruct region management.
// ---------------------------------------------------------------------------

TEST_F(VmTest, FindVmaMatchesRange) {
  auto mm = NewMm();
  MapAnon(*mm, 0x40000000, 4);
  EXPECT_NE(mm->FindVma(0x40000000), nullptr);
  EXPECT_NE(mm->FindVma(0x40003FFF), nullptr);
  EXPECT_EQ(mm->FindVma(0x40004000), nullptr);
  EXPECT_EQ(mm->FindVma(0x3FFFF000), nullptr);
}

TEST_F(VmTest, RemoveRangeSplitsVmas) {
  auto mm = NewMm();
  MapFile(*mm, 0x40000000, 10, VmProt::ReadOnly());
  const auto removed = mm->RemoveRange(0x40003000, 0x40006000);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].start, 0x40003000u);
  EXPECT_EQ(removed[0].end, 0x40006000u);
  EXPECT_EQ(removed[0].file_page_offset, 3u);  // adjusted for the split

  // The left and right remainders survive with correct offsets.
  const VmArea* left = mm->FindVma(0x40000000);
  const VmArea* right = mm->FindVma(0x40006000);
  ASSERT_NE(left, nullptr);
  ASSERT_NE(right, nullptr);
  EXPECT_EQ(left->end, 0x40003000u);
  EXPECT_EQ(right->file_page_offset, 6u);
  EXPECT_EQ(mm->FindVma(0x40004000), nullptr);
}

TEST_F(VmTest, RemoveRangeSpanningMultipleVmas) {
  auto mm = NewMm();
  MapAnon(*mm, 0x40000000, 2);
  MapAnon(*mm, 0x40002000, 2);
  MapAnon(*mm, 0x40004000, 2);
  const auto removed = mm->RemoveRange(0x40001000, 0x40005000);
  EXPECT_EQ(removed.size(), 3u);
  EXPECT_EQ(mm->vma_count(), 2u);  // two edge remainders
}

TEST_F(VmTest, FindFreeRangeSkipsMappings) {
  auto mm = NewMm();
  MapAnon(*mm, 0x40000000, 4);
  const auto found =
      mm->FindFreeRange(4 * kPageSize, 0x40000000, 0x50000000);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 0x40004000u);
}

TEST_F(VmTest, FindFreeRangeAlignedRespectsAlignment) {
  auto mm = NewMm();
  MapAnon(*mm, 0x40000000, 1);
  const auto found =
      mm->FindFreeRangeAligned(kPageSize, kPtpSpan, 0x40000000, 0x50000000);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found % kPtpSpan, 0u);
  EXPECT_GE(*found, 0x40200000u);
}

// ---------------------------------------------------------------------------
// Page faults.
// ---------------------------------------------------------------------------

TEST_F(VmTest, FaultOutsideAnyRegionFails) {
  auto mm = NewMm();
  const auto outcome =
      vm_.HandleFault(*mm, Abort(0x40000000, AccessType::kRead), nullptr);
  EXPECT_FALSE(outcome.ok);
}

TEST_F(VmTest, FaultAgainstRegionProtectionFails) {
  auto mm = NewMm();
  MapFile(*mm, 0x40000000, 2, VmProt::ReadOnly());
  const auto outcome =
      vm_.HandleFault(*mm, Abort(0x40000000, AccessType::kWrite), nullptr);
  EXPECT_FALSE(outcome.ok);
}

TEST_F(VmTest, FirstFileTouchIsHardSecondProcessSoft) {
  auto mm1 = NewMm();
  auto mm2 = NewMm();
  MapFile(*mm1, 0x40000000, 2, VmProt::ReadExec());
  MapFile(*mm2, 0x40000000, 2, VmProt::ReadExec());

  auto outcome =
      vm_.HandleFault(*mm1, Abort(0x40000000, AccessType::kExecute), nullptr);
  EXPECT_TRUE(outcome.ok);
  EXPECT_TRUE(outcome.hard);
  outcome =
      vm_.HandleFault(*mm2, Abort(0x40000000, AccessType::kExecute), nullptr);
  EXPECT_TRUE(outcome.ok);
  EXPECT_FALSE(outcome.hard);  // page cache hit: soft fault

  // Both processes map the same physical frame.
  EXPECT_EQ(PteAt(*mm1, 0x40000000)->frame(), PteAt(*mm2, 0x40000000)->frame());
  EXPECT_EQ(counters_.faults_file_backed, 2u);
  EXPECT_EQ(counters_.faults_hard, 1u);
}

TEST_F(VmTest, PrivateWritableFilePageInstalledWriteProtected) {
  auto mm = NewMm();
  MapFile(*mm, 0x40000000, 2, VmProt::ReadWrite());
  vm_.HandleFault(*mm, Abort(0x40000000, AccessType::kRead), nullptr);
  EXPECT_EQ(PteAt(*mm, 0x40000000)->perm(), PtePerm::kReadOnly);  // COW guard
}

TEST_F(VmTest, WriteToPrivateFilePageCopiesImmediately) {
  auto mm = NewMm();
  MapFile(*mm, 0x40000000, 2, VmProt::ReadWrite());
  const auto outcome =
      vm_.HandleFault(*mm, Abort(0x40000000, AccessType::kWrite), nullptr);
  EXPECT_TRUE(outcome.ok);
  const HwPte* pte = PteAt(*mm, 0x40000000);
  EXPECT_EQ(pte->perm(), PtePerm::kReadWrite);
  EXPECT_EQ(phys_.frame(pte->frame()).kind, FrameKind::kAnon);
  EXPECT_EQ(counters_.faults_cow, 1u);
}

TEST_F(VmTest, CowAfterReadFault) {
  auto mm = NewMm();
  MapFile(*mm, 0x40000000, 2, VmProt::ReadWrite());
  vm_.HandleFault(*mm, Abort(0x40000000, AccessType::kRead), nullptr);
  const FrameNumber file_frame = PteAt(*mm, 0x40000000)->frame();
  vm_.HandleFault(*mm, Abort(0x40000000, AccessType::kWrite,
                             FaultStatus::kPermission),
                  nullptr);
  const HwPte* pte = PteAt(*mm, 0x40000000);
  EXPECT_NE(pte->frame(), file_frame);
  EXPECT_EQ(pte->perm(), PtePerm::kReadWrite);
  // The file-cache frame keeps only the cache's reference.
  EXPECT_EQ(phys_.frame(file_frame).ref_count, 1u);
}

TEST_F(VmTest, AnonReadMapsZeroPageThenCowsOnWrite) {
  auto mm = NewMm();
  MapAnon(*mm, 0x40000000, 2);
  vm_.HandleFault(*mm, Abort(0x40000000, AccessType::kRead), nullptr);
  EXPECT_EQ(PteAt(*mm, 0x40000000)->frame(), phys_.zero_frame());
  EXPECT_EQ(PteAt(*mm, 0x40000000)->perm(), PtePerm::kReadOnly);

  vm_.HandleFault(*mm, Abort(0x40000000, AccessType::kWrite,
                             FaultStatus::kPermission),
                  nullptr);
  const HwPte* pte = PteAt(*mm, 0x40000000);
  EXPECT_NE(pte->frame(), phys_.zero_frame());
  EXPECT_EQ(phys_.frame(pte->frame()).kind, FrameKind::kAnon);
}

TEST_F(VmTest, AnonWriteFaultAllocatesDirectly) {
  auto mm = NewMm();
  MapAnon(*mm, 0x40000000, 2);
  vm_.HandleFault(*mm, Abort(0x40001000, AccessType::kWrite), nullptr);
  const HwPte* pte = PteAt(*mm, 0x40001000);
  EXPECT_EQ(pte->perm(), PtePerm::kReadWrite);
  EXPECT_EQ(counters_.faults_anonymous, 1u);
}

TEST_F(VmTest, ExclusiveAnonFrameIsReusedOnCow) {
  // Write fault on a write-protected anon page whose frame has no other
  // references: upgrade in place rather than copy.
  auto mm = NewMm();
  MapAnon(*mm, 0x40000000, 1);
  vm_.HandleFault(*mm, Abort(0x40000000, AccessType::kWrite), nullptr);
  const FrameNumber frame = PteAt(*mm, 0x40000000)->frame();
  // Simulate a protection downgrade (as fork's COW pass would).
  mm->page_table().WriteProtectRange(0x40000000, 0x40001000);
  vm_.HandleFault(*mm, Abort(0x40000000, AccessType::kWrite,
                             FaultStatus::kPermission),
                  nullptr);
  EXPECT_EQ(PteAt(*mm, 0x40000000)->frame(), frame);  // reused, not copied
  EXPECT_EQ(counters_.faults_cow, 0u);
}

TEST_F(VmTest, GlobalBitRequiresConfigAndRegionFlag) {
  auto mm = NewMm();
  MapFile(*mm, 0x40000000, 2, VmProt::ReadExec(), 42, /*global=*/true);
  vm_.HandleFault(*mm, Abort(0x40000000, AccessType::kExecute), nullptr);
  // share_tlb_global is off in the stock config.
  EXPECT_FALSE(PteAt(*mm, 0x40000000)->global());

  VmConfig config = VmConfig::SharedPtpAndTlb();
  vm_.set_config(config);
  vm_.HandleFault(*mm, Abort(0x40001000, AccessType::kExecute), nullptr);
  EXPECT_TRUE(PteAt(*mm, 0x40001000)->global());
  vm_.set_config(VmConfig::Stock());
}

// ---------------------------------------------------------------------------
// Fork policies.
// ---------------------------------------------------------------------------

TEST_F(VmTest, StockForkSkipsFilePtesCopiesAnon) {
  auto parent = NewMm();
  auto child = NewMm();
  MapFile(*parent, 0x40000000, 4, VmProt::ReadExec());
  MapAnon(*parent, 0x50000000, 4);
  vm_.HandleFault(*parent, Abort(0x40000000, AccessType::kExecute), nullptr);
  vm_.HandleFault(*parent, Abort(0x50000000, AccessType::kWrite), nullptr);
  vm_.HandleFault(*parent, Abort(0x50001000, AccessType::kWrite), nullptr);

  const ForkResult result = vm_.Fork(*parent, *child, nullptr);
  EXPECT_EQ(result.vmas_copied, 2u);
  EXPECT_EQ(result.slots_shared, 0u);
  EXPECT_EQ(result.ptes_copied, 2u);  // only the anon pages
  EXPECT_EQ(PteAt(*child, 0x40000000), nullptr);  // file PTE left to fault
  ASSERT_NE(PteAt(*child, 0x50000000), nullptr);

  // COW: both sides write-protected, same frame.
  EXPECT_EQ(PteAt(*child, 0x50000000)->perm(), PtePerm::kReadOnly);
  EXPECT_EQ(PteAt(*parent, 0x50000000)->perm(), PtePerm::kReadOnly);
  EXPECT_EQ(PteAt(*child, 0x50000000)->frame(),
            PteAt(*parent, 0x50000000)->frame());
}

TEST_F(VmTest, StockForkFlushesParentWhenDowngrading) {
  auto parent = NewMm();
  auto child = NewMm();
  MapAnon(*parent, 0x50000000, 1);
  vm_.HandleFault(*parent, Abort(0x50000000, AccessType::kWrite), nullptr);
  bool flushed = false;
  vm_.Fork(*parent, *child, [&flushed]() { flushed = true; });
  EXPECT_TRUE(flushed);
}

TEST_F(VmTest, CowAfterForkCopiesSharedFrame) {
  auto parent = NewMm();
  auto child = NewMm();
  MapAnon(*parent, 0x50000000, 1);
  vm_.HandleFault(*parent, Abort(0x50000000, AccessType::kWrite), nullptr);
  vm_.Fork(*parent, *child, nullptr);

  const FrameNumber shared_frame = PteAt(*parent, 0x50000000)->frame();
  vm_.HandleFault(*child, Abort(0x50000000, AccessType::kWrite,
                                FaultStatus::kPermission),
                  nullptr);
  EXPECT_NE(PteAt(*child, 0x50000000)->frame(), shared_frame);
  EXPECT_EQ(PteAt(*parent, 0x50000000)->frame(), shared_frame);
  EXPECT_EQ(counters_.faults_cow, 1u);
}

TEST_F(VmTest, SharedPtpForkSharesEverythingButStack) {
  vm_.set_config(VmConfig::SharedPtp());
  auto parent = NewMm();
  auto child = NewMm();
  MapFile(*parent, 0x40000000, 4, VmProt::ReadExec());
  MapAnon(*parent, 0x50000000, 4);
  MapAnon(*parent, 0xB0000000, 4, /*is_stack=*/true);
  vm_.HandleFault(*parent, Abort(0x40000000, AccessType::kExecute), nullptr);
  vm_.HandleFault(*parent, Abort(0x50000000, AccessType::kWrite), nullptr);
  vm_.HandleFault(*parent, Abort(0xB0000000, AccessType::kWrite), nullptr);

  const ForkResult result = vm_.Fork(*parent, *child, nullptr);
  EXPECT_EQ(result.slots_shared, 2u);        // file slot + anon slot
  EXPECT_EQ(result.ptes_copied, 1u);         // the stack page
  EXPECT_EQ(result.child_ptps_allocated, 1u);  // the stack PTP
  EXPECT_TRUE(child->page_table().SlotNeedsCopy(0x40000000));
  EXPECT_TRUE(child->page_table().SlotNeedsCopy(0x50000000));
  EXPECT_FALSE(child->page_table().SlotNeedsCopy(0xB0000000));

  // The shared file PTE is immediately visible in the child: no soft fault.
  EXPECT_NE(PteAt(*child, 0x40000000), nullptr);
  vm_.set_config(VmConfig::Stock());
}

TEST_F(VmTest, SharedForkWriteProtectsAnonPages) {
  vm_.set_config(VmConfig::SharedPtp());
  auto parent = NewMm();
  auto child = NewMm();
  MapAnon(*parent, 0x50000000, 2);
  vm_.HandleFault(*parent, Abort(0x50000000, AccessType::kWrite), nullptr);
  const ForkResult result = vm_.Fork(*parent, *child, nullptr);
  EXPECT_EQ(result.ptes_write_protected, 1u);
  EXPECT_EQ(PteAt(*parent, 0x50000000)->perm(), PtePerm::kReadOnly);
  vm_.set_config(VmConfig::Stock());
}

TEST_F(VmTest, CopiedPtesForkCopiesZygoteCode) {
  vm_.set_config(VmConfig::CopiedPtes());
  auto parent = NewMm();
  auto child = NewMm();
  MmapRequest request;
  request.length = 4 * kPageSize;
  request.prot = VmProt::ReadExec();
  request.kind = VmKind::kFilePrivate;
  request.file = 42;
  request.fixed_address = 0x40000000;
  request.zygote_preloaded = true;
  vm_.Mmap(*parent, request, nullptr);
  vm_.HandleFault(*parent, Abort(0x40000000, AccessType::kExecute), nullptr);
  vm_.HandleFault(*parent, Abort(0x40001000, AccessType::kExecute), nullptr);

  const ForkResult result = vm_.Fork(*parent, *child, nullptr);
  EXPECT_EQ(result.ptes_copied, 2u);
  EXPECT_NE(PteAt(*child, 0x40000000), nullptr);
  vm_.set_config(VmConfig::Stock());
}

// ---------------------------------------------------------------------------
// Unshare triggers (Section 3.1.2).
// ---------------------------------------------------------------------------

class SharedVmTest : public VmTest {
 protected:
  SharedVmTest() {
    vm_.set_config(VmConfig::SharedPtp());
    parent_ = NewMm();
    child_ = NewMm();
    MapFile(*parent_, 0x40000000, 8, VmProt::ReadExec(), 42);
    MapFile(*parent_, 0x40008000, 8, VmProt::ReadWrite(), 43);  // same slot
    vm_.HandleFault(*parent_, Abort(0x40000000, AccessType::kExecute), nullptr);
    vm_.HandleFault(*parent_, Abort(0x40008000, AccessType::kRead), nullptr);
    vm_.Fork(*parent_, *child_, nullptr);
  }

  std::unique_ptr<MmStruct> parent_;
  std::unique_ptr<MmStruct> child_;
};

TEST_F(SharedVmTest, Case1WriteFaultUnshares) {
  // A write into the data region unshares the whole PTP — including the
  // co-resident code region's translations (the original-alignment cost).
  const auto outcome = vm_.HandleFault(
      *child_, Abort(0x40008000, AccessType::kWrite), nullptr);
  EXPECT_TRUE(outcome.ok);
  EXPECT_TRUE(outcome.unshared);
  EXPECT_GT(outcome.ptes_copied, 0u);
  EXPECT_FALSE(child_->page_table().SlotNeedsCopy(0x40000000));
  EXPECT_TRUE(parent_->page_table().SlotNeedsCopy(0x40000000));
}

TEST_F(SharedVmTest, Case2MprotectUnshares) {
  vm_.Mprotect(*child_, 0x40008000, 4 * kPageSize, VmProt::ReadOnly(), nullptr);
  EXPECT_FALSE(child_->page_table().SlotNeedsCopy(0x40008000));
  EXPECT_EQ(counters_.ptps_unshared, 1u);
}

TEST_F(SharedVmTest, Case3MmapIntoSharedSlotUnsharesEagerly) {
  MmapRequest request;
  request.length = 2 * kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  request.fixed_address = 0x40010000;  // inside the shared slot
  const VirtAddr at = vm_.Mmap(*child_, request, nullptr);
  EXPECT_EQ(at, 0x40010000u);
  EXPECT_FALSE(child_->page_table().SlotNeedsCopy(0x40000000));
  EXPECT_EQ(counters_.ptps_unshared, 1u);
}

TEST_F(SharedVmTest, Case3LazyAblationDefersToFirstFault) {
  VmConfig config = VmConfig::SharedPtp();
  config.lazy_unshare_on_new_region = true;
  vm_.set_config(config);

  MmapRequest request;
  request.length = 2 * kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  request.fixed_address = 0x40010000;
  vm_.Mmap(*child_, request, nullptr);
  EXPECT_TRUE(child_->page_table().SlotNeedsCopy(0x40000000));  // still shared

  const auto outcome = vm_.HandleFault(
      *child_, Abort(0x40010000, AccessType::kRead), nullptr);
  EXPECT_TRUE(outcome.ok);
  EXPECT_TRUE(outcome.unshared);  // deferred unshare fired
  EXPECT_FALSE(child_->page_table().SlotNeedsCopy(0x40000000));
}

TEST_F(SharedVmTest, Case4MunmapPartOfSharedSlotUnshares) {
  vm_.Munmap(*child_, 0x40008000, 8 * kPageSize, nullptr);
  EXPECT_EQ(counters_.ptps_unshared, 1u);
  EXPECT_FALSE(child_->page_table().SlotNeedsCopy(0x40000000));
  // The parent's view of the unmapped range is intact.
  EXPECT_NE(PteAt(*parent_, 0x40008000), nullptr);
  EXPECT_EQ(PteAt(*child_, 0x40008000), nullptr);
}

TEST_F(SharedVmTest, Case5ExitDropsSharerWithoutCopy) {
  const uint64_t copies_before = counters_.ptes_copied;
  vm_.ExitMm(*child_);
  EXPECT_EQ(counters_.ptes_copied, copies_before);  // no unshare copies
  // Parent's PTEs are untouched.
  EXPECT_NE(PteAt(*parent_, 0x40000000), nullptr);
  EXPECT_EQ(child_->vma_count(), 0u);
}

TEST_F(SharedVmTest, ReadFaultPopulatesSharedPtpForAllSharers) {
  // Child faults a page the zygote never touched: the new PTE lands in
  // the shared PTP, so the parent sees it too (no second soft fault).
  EXPECT_EQ(PteAt(*parent_, 0x40002000), nullptr);
  const auto outcome = vm_.HandleFault(
      *child_, Abort(0x40002000, AccessType::kExecute), nullptr);
  EXPECT_TRUE(outcome.ok);
  EXPECT_FALSE(outcome.unshared);
  EXPECT_NE(PteAt(*parent_, 0x40002000), nullptr);
  EXPECT_TRUE(child_->page_table().SlotNeedsCopy(0x40002000));  // still shared
}

TEST_F(SharedVmTest, UnshareFlushCallbackRuns) {
  bool flushed = false;
  vm_.HandleFault(*child_, Abort(0x40008000, AccessType::kWrite),
                  [&flushed]() { flushed = true; });
  EXPECT_TRUE(flushed);
}

// ---------------------------------------------------------------------------
// mmap family details.
// ---------------------------------------------------------------------------

TEST_F(VmTest, MmapFindsAddressWhenNotFixed) {
  auto mm = NewMm();
  MmapRequest request;
  request.length = 4 * kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  const VirtAddr first = vm_.Mmap(*mm, request, nullptr);
  const VirtAddr second = vm_.Mmap(*mm, request, nullptr);
  EXPECT_NE(first, 0u);
  EXPECT_NE(second, 0u);
  EXPECT_NE(first, second);
  EXPECT_TRUE(IsPageAligned(first));
}

TEST_F(VmTest, MunmapReleasesFramesAndEmptySlots) {
  auto mm = NewMm();
  MapAnon(*mm, 0x40000000, 4);
  for (uint32_t i = 0; i < 4; ++i) {
    vm_.HandleFault(*mm, Abort(0x40000000 + i * kPageSize, AccessType::kWrite),
                    nullptr);
  }
  const uint64_t used = phys_.used_frames();
  vm_.Munmap(*mm, 0x40000000, 4 * kPageSize, nullptr);
  // 4 anon frames and the now-empty PTP are gone.
  EXPECT_EQ(phys_.used_frames(), used - 5);
  EXPECT_FALSE(mm->page_table().l1(PtpSlotIndex(0x40000000)).present());
}

TEST_F(VmTest, MprotectRemovingWriteProtectsPtes) {
  auto mm = NewMm();
  MapAnon(*mm, 0x40000000, 2);
  vm_.HandleFault(*mm, Abort(0x40000000, AccessType::kWrite), nullptr);
  vm_.Mprotect(*mm, 0x40000000, 2 * kPageSize, VmProt::ReadOnly(), nullptr);
  EXPECT_EQ(PteAt(*mm, 0x40000000)->perm(), PtePerm::kReadOnly);
  const VmArea* vma = mm->FindVma(0x40000000);
  EXPECT_FALSE(vma->prot.write);
  // A write now faults unresolvably.
  const auto outcome = vm_.HandleFault(
      *mm, Abort(0x40000000, AccessType::kWrite, FaultStatus::kPermission),
      nullptr);
  EXPECT_FALSE(outcome.ok);
}

TEST_F(VmTest, MprotectSplitsAtBoundaries) {
  auto mm = NewMm();
  MapAnon(*mm, 0x40000000, 6);
  vm_.Mprotect(*mm, 0x40002000, 2 * kPageSize, VmProt::ReadOnly(), nullptr);
  EXPECT_EQ(mm->vma_count(), 3u);
  EXPECT_TRUE(mm->FindVma(0x40000000)->prot.write);
  EXPECT_FALSE(mm->FindVma(0x40002000)->prot.write);
  EXPECT_TRUE(mm->FindVma(0x40004000)->prot.write);
}

TEST_F(VmTest, FaultAroundPopulatesResidentNeighboursOnly) {
  VmConfig config = VmConfig::Stock();
  config.fault_around_pages = 16;
  vm_.set_config(config);

  auto warm = NewMm();
  auto mm = NewMm();
  MapFile(*warm, 0x40000000, 32, VmProt::ReadExec());
  MapFile(*mm, 0x40000000, 32, VmProt::ReadExec());
  // Warm pages 0..7 into the page cache via another process.
  for (uint32_t i = 0; i < 8; ++i) {
    vm_.HandleFault(*warm, Abort(0x40000000 + i * kPageSize, AccessType::kExecute),
                    nullptr);
  }

  // One fault on page 2: pages 0..7 are resident and get populated; pages
  // 8..15 are not resident and must NOT be loaded (fault-around never
  // touches disk).
  const uint64_t faults_before = counters_.faults_file_backed;
  vm_.HandleFault(*mm, Abort(0x40002000, AccessType::kExecute), nullptr);
  EXPECT_EQ(counters_.faults_file_backed, faults_before + 1);
  EXPECT_EQ(counters_.ptes_faulted_around, 7u);
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_NE(PteAt(*mm, 0x40000000 + i * kPageSize), nullptr) << i;
  }
  for (uint32_t i = 8; i < 16; ++i) {
    EXPECT_EQ(PteAt(*mm, 0x40000000 + i * kPageSize), nullptr) << i;
  }
  // Speculative entries are installed not-referenced (they were never
  // accessed), so the referenced-only unshare ablation skips them.
  const auto ref = mm->page_table().FindPte(0x40000000);
  EXPECT_FALSE(ref->ptp->sw(ref->index).young());
  vm_.set_config(VmConfig::Stock());
}

TEST_F(VmTest, FaultAroundRespectsVmaBounds) {
  VmConfig config = VmConfig::Stock();
  config.fault_around_pages = 16;
  vm_.set_config(config);

  auto warm = NewMm();
  auto mm = NewMm();
  // A 4-page mapping in the middle of a fault-around window.
  MapFile(*warm, 0x40002000, 4, VmProt::ReadOnly());
  MapFile(*mm, 0x40002000, 4, VmProt::ReadOnly());
  for (uint32_t i = 0; i < 4; ++i) {
    vm_.HandleFault(*warm, Abort(0x40002000 + i * kPageSize, AccessType::kRead),
                    nullptr);
  }
  vm_.HandleFault(*mm, Abort(0x40002000, AccessType::kRead), nullptr);
  EXPECT_EQ(counters_.ptes_faulted_around, 3u);  // clipped to the vma
  vm_.set_config(VmConfig::Stock());
}

TEST_F(VmTest, MprotectAddingWriteUpgradesLazily) {
  auto mm = NewMm();
  MapAnon(*mm, 0x40000000, 2);
  vm_.HandleFault(*mm, Abort(0x40000000, AccessType::kWrite), nullptr);
  vm_.Mprotect(*mm, 0x40000000, 2 * kPageSize, VmProt::ReadOnly(), nullptr);
  vm_.Mprotect(*mm, 0x40000000, 2 * kPageSize, VmProt::ReadWrite(), nullptr);
  // The PTE stays write-protected until the next write fault upgrades it.
  EXPECT_EQ(PteAt(*mm, 0x40000000)->perm(), PtePerm::kReadOnly);
  const auto outcome = vm_.HandleFault(
      *mm, Abort(0x40000000, AccessType::kWrite, FaultStatus::kPermission),
      nullptr);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(PteAt(*mm, 0x40000000)->perm(), PtePerm::kReadWrite);
}

TEST_F(VmTest, SharedFileWriteUpgradesInPlace) {
  auto mm = NewMm();
  MmapRequest request;
  request.length = 2 * kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kFileShared;
  request.file = 77;
  request.fixed_address = 0x40000000;
  vm_.Mmap(*mm, request, nullptr);
  vm_.HandleFault(*mm, Abort(0x40000000, AccessType::kRead), nullptr);
  const FrameNumber cache_frame = PteAt(*mm, 0x40000000)->frame();
  vm_.HandleFault(*mm, Abort(0x40000000, AccessType::kWrite,
                             FaultStatus::kPermission),
                  nullptr);
  // Shared mapping: the write goes to the page-cache frame, no COW copy.
  EXPECT_EQ(PteAt(*mm, 0x40000000)->frame(), cache_frame);
  EXPECT_EQ(PteAt(*mm, 0x40000000)->perm(), PtePerm::kReadWrite);
  EXPECT_EQ(counters_.faults_cow, 0u);
}

TEST_F(VmTest, TouchInUnmappedHoleSegfaults) {
  auto mm = NewMm();
  MapAnon(*mm, 0x40000000, 8);
  vm_.Munmap(*mm, 0x40002000, 2 * kPageSize, nullptr);
  EXPECT_FALSE(
      vm_.HandleFault(*mm, Abort(0x40002000, AccessType::kRead), nullptr).ok);
  // The flanks still work.
  EXPECT_TRUE(
      vm_.HandleFault(*mm, Abort(0x40000000, AccessType::kRead), nullptr).ok);
  EXPECT_TRUE(
      vm_.HandleFault(*mm, Abort(0x40004000, AccessType::kRead), nullptr).ok);
}

TEST_F(VmTest, ForkCopiesCowDirtiedFilePages) {
  // A private file page the parent wrote (now an anon frame) cannot be
  // refilled by a soft fault: the stock fork must copy its PTE.
  auto parent = NewMm();
  auto child = NewMm();
  MapFile(*parent, 0x40000000, 4, VmProt::ReadWrite());
  vm_.HandleFault(*parent, Abort(0x40000000, AccessType::kWrite), nullptr);
  vm_.HandleFault(*parent, Abort(0x40001000, AccessType::kRead), nullptr);
  const ForkResult result = vm_.Fork(*parent, *child, nullptr);
  EXPECT_EQ(result.ptes_copied, 1u);  // only the dirtied page
  ASSERT_NE(PteAt(*child, 0x40000000), nullptr);
  EXPECT_EQ(PteAt(*child, 0x40000000)->frame(),
            PteAt(*parent, 0x40000000)->frame());
  EXPECT_EQ(PteAt(*child, 0x40001000), nullptr);  // clean page left to fault
}

TEST_F(VmTest, ExitReleasesEverything) {
  auto mm = NewMm();
  const uint64_t used_before = phys_.used_frames();
  MapAnon(*mm, 0x40000000, 8);
  MapFile(*mm, 0x50000000, 8, VmProt::ReadExec());
  for (uint32_t i = 0; i < 8; ++i) {
    vm_.HandleFault(*mm, Abort(0x40000000 + i * kPageSize, AccessType::kWrite),
                    nullptr);
    vm_.HandleFault(*mm, Abort(0x50000000 + i * kPageSize, AccessType::kExecute),
                    nullptr);
  }
  vm_.ExitMm(*mm);
  // Anonymous frames and PTPs are gone; file frames persist in the cache.
  EXPECT_EQ(phys_.used_frames(), used_before + 8);
  EXPECT_EQ(phys_.CountFrames(FrameKind::kAnon), 0u);
  EXPECT_EQ(alloc_.live_ptps(), 0u);
}

TEST(SmapsKsmTest, MergedPagesAreReportedAndCountFractionallyInPss) {
  KernelParams params;
  params.phys_bytes = 32ull * 1024 * 1024;
  Kernel kernel(params);
  Task* task = kernel.CreateTask("app");
  MmapRequest request;
  request.length = 3 * kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  request.fixed_address = 0x40000000;
  request.mergeable = true;
  request.name = "heap";
  ASSERT_EQ(kernel.Mmap(*task, request).value, 0x40000000u);
  ASSERT_EQ(kernel.WritePage(*task, 0x40000000, 11), TouchStatus::kOk);
  ASSERT_EQ(kernel.WritePage(*task, 0x40001000, 11), TouchStatus::kOk);
  ASSERT_EQ(kernel.WritePage(*task, 0x40002000, 12), TouchStatus::kOk);

  const SmapsReport before = GenerateSmaps(
      *task->mm, kernel.ptp_allocator(), &kernel.rmap(), &kernel.phys());
  EXPECT_EQ(before.total_ksm_merged_kb, 0u);

  kernel.RunKsmScan();
  ASSERT_EQ(kernel.RunKsmScan(), 1u);
  const SmapsReport after = GenerateSmaps(
      *task->mm, kernel.ptp_allocator(), &kernel.rmap(), &kernel.phys());
  ASSERT_EQ(after.vmas.size(), 1u);
  // Rss is unchanged (the PTEs are still resident) but the two merged
  // pages now show as KsmMerged and split their stable frame in PSS: both
  // rmap entries of the shared frame count as co-mappers.
  EXPECT_EQ(after.vmas[0].rss_kb, before.vmas[0].rss_kb);
  EXPECT_EQ(after.vmas[0].ksm_merged_kb, 8u);
  EXPECT_EQ(after.total_ksm_merged_kb, 8u);
  EXPECT_DOUBLE_EQ(after.vmas[0].pss_kb, 4.0 / 2 + 4.0 / 2 + 4.0);
  EXPECT_EQ(after.vmas[0].shared_clean_kb, 8u);
  EXPECT_EQ(after.vmas[0].private_kb, 4u);
  // Passing no PhysicalMemory degrades gracefully: KsmMerged reads 0.
  const SmapsReport blind =
      GenerateSmaps(*task->mm, kernel.ptp_allocator(), &kernel.rmap());
  EXPECT_EQ(blind.total_ksm_merged_kb, 0u);
  EXPECT_NE(blind.ToString().find("KsmMerged"), std::string::npos);
}

}  // namespace
}  // namespace sat
