// Tests for the experiment driver: the worker pool's ordering and
// determinism contract (a parallel run's records are bit-identical to a
// serial run's), per-job seed derivation, and the structured results sink
// (JSON rendering, validation, file round-trip).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/driver/results.h"
#include "src/driver/worker_pool.h"

namespace sat {
namespace {

// ---------------------------------------------------------------------------
// Worker pool.
// ---------------------------------------------------------------------------

TEST(WorkerPoolTest, HardwareJobsIsAtLeastOne) {
  EXPECT_GE(HardwareJobs(), 1u);
}

TEST(WorkerPoolTest, RunJobsExecutesEveryJobIntoItsOwnSlot) {
  for (const uint32_t jobs : {1u, 2u, 8u}) {
    std::vector<int> slots(37, -1);
    std::vector<std::function<void()>> work;
    for (int i = 0; i < 37; ++i) {
      work.push_back([&slots, i] { slots[static_cast<size_t>(i)] = i * i; });
    }
    RunJobs(std::move(work), jobs);
    for (int i = 0; i < 37; ++i) {
      EXPECT_EQ(slots[static_cast<size_t>(i)], i * i) << "jobs=" << jobs;
    }
  }
}

TEST(WorkerPoolTest, WaitBlocksUntilAllSubmittedTasksFinish) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 64);
  // The pool is reusable after a Wait.
  pool.Submit([&done] { done.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(done.load(), 65);
}

TEST(WorkerPoolTest, WatchdogFiresOncePerExpiredJobOnly) {
  std::mutex mu;
  std::vector<size_t> fired;
  JobWatchdog dog(0.05, [&](size_t token) {
    std::lock_guard<std::mutex> lock(mu);
    fired.push_back(token);
  });
  ASSERT_TRUE(dog.enabled());
  dog.JobStarted(1);
  dog.JobStarted(2);
  dog.JobFinished(2);  // beats the deadline: must never fire
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  dog.JobFinished(1);
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(fired, std::vector<size_t>{1});  // once, despite many polls
}

TEST(WorkerPoolTest, WatchdogWithZeroTimeoutIsInert) {
  JobWatchdog dog(0, [](size_t) { FAIL() << "must not fire"; });
  EXPECT_FALSE(dog.enabled());
  dog.JobStarted(1);  // no-op; the destructor must not hang either
}

TEST(WorkerPoolTest, DeriveJobSeedIsDeterministicAndDistinct) {
  const uint64_t a = DeriveJobSeed(42, "table1/Email");
  EXPECT_EQ(a, DeriveJobSeed(42, "table1/Email"));
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, DeriveJobSeed(42, "table1/Chrome"));
  EXPECT_NE(a, DeriveJobSeed(43, "table1/Email"));
}

TEST(WorkerPoolTest, ScopedDeriveJobSeedHasNoConcatenationCollisions) {
  // The scoped overload length-delimits its components: two jobs that
  // differ only in where the scope/name boundary falls must not share a
  // seed (the 2-arg form, fed pre-concatenated strings, collides here).
  EXPECT_NE(DeriveJobSeed(7, "ab", "c"), DeriveJobSeed(7, "a", "bc"));
  EXPECT_NE(DeriveJobSeed(7, "storm", ""), DeriveJobSeed(7, "", "storm"));
  // Deterministic, nonzero, and distinct across every component.
  const uint64_t a = DeriveJobSeed(7, "fork_storm_10k", "shard0");
  EXPECT_EQ(a, DeriveJobSeed(7, "fork_storm_10k", "shard0"));
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, DeriveJobSeed(7, "fork_storm_10k", "shard1"));
  EXPECT_NE(a, DeriveJobSeed(7, "chaos_soak", "shard0"));
  EXPECT_NE(a, DeriveJobSeed(8, "fork_storm_10k", "shard0"));
}

// ---------------------------------------------------------------------------
// The determinism contract: serial and parallel harness runs produce
// identical records (DESIGN.md section 5f).
// ---------------------------------------------------------------------------

BenchOptions TestOptions(uint32_t jobs) {
  BenchOptions options;
  options.jobs = jobs;
  return options;
}

// A small but non-trivial workload: boot a system, run one app, capture
// the counters. Every simulated metric must be independent of --jobs.
void AddAppJobs(Harness& harness) {
  for (const char* key : {"stock", "shared-ptp", "shared-ptp-tlb"}) {
    for (const char* app : {"Email", "Chrome"}) {
      harness.AddJob(std::string(key) + "/" + app, ConfigByName(key),
                     [name = std::string(app)](System& system,
                                               JobRecord& record) {
                       AppRunner runner(&system.android());
                       const AppFootprint fp = system.workload().Generate(
                           AppProfile::Named(name));
                       const AppRunStats stats = runner.Run(fp);
                       record.Metric("file_faults",
                                     static_cast<double>(stats.file_faults));
                     });
    }
  }
}

TEST(HarnessTest, ParallelRunIsBitIdenticalToSerialRun) {
  Harness serial("driver_test", TestOptions(1));
  AddAppJobs(serial);
  ASSERT_TRUE(serial.Run());

  Harness parallel("driver_test", TestOptions(8));
  AddAppJobs(parallel);
  ASSERT_TRUE(parallel.Run());

  ASSERT_EQ(serial.records().size(), parallel.records().size());
  for (size_t i = 0; i < serial.records().size(); ++i) {
    const JobRecord& s = serial.records()[i];
    const JobRecord& p = parallel.records()[i];
    EXPECT_EQ(s.config, p.config);  // submission order is preserved
    EXPECT_EQ(s.labels, p.labels);
    // Every metric — all kernel counters, all core counters, the bench's
    // own figures — must match exactly, name by name, bit by bit.
    ASSERT_EQ(s.metrics.size(), p.metrics.size()) << s.config;
    for (size_t m = 0; m < s.metrics.size(); ++m) {
      EXPECT_EQ(s.metrics[m].first, p.metrics[m].first) << s.config;
      EXPECT_EQ(s.metrics[m].second, p.metrics[m].second)
          << s.config << " metric " << s.metrics[m].first;
    }
  }
}

TEST(HarnessTest, CapturedRecordsIncludeCountersAndSystemLabel) {
  Harness harness("driver_test", TestOptions(2));
  AddAppJobs(harness);
  ASSERT_TRUE(harness.Run());
  const JobRecord& record = harness.records()[0];
  EXPECT_GT(MetricOr(record, "counters.faults_file_backed"), 0.0);
  EXPECT_GT(MetricOr(record, "core.cycles"), 0.0);
  bool has_system_label = false;
  for (const auto& [name, value] : record.labels) {
    if (name == "system") {
      has_system_label = true;
      EXPECT_EQ(value, "Stock Android");
    }
  }
  EXPECT_TRUE(has_system_label);
}

TEST(HarnessTest, ConfigFilterSkipsNonMatchingJobsAndClearsRanAll) {
  BenchOptions options = TestOptions(2);
  options.only_config = "stock";
  Harness harness("driver_test", options);
  AddAppJobs(harness);
  ASSERT_TRUE(harness.Run());
  EXPECT_FALSE(harness.ran_all());
  // stock jobs ran; shared-ptp ones carry the skip label and no metrics.
  EXPECT_FALSE(harness.records()[0].metrics.empty());
  const JobRecord& skipped = harness.records()[2];
  EXPECT_TRUE(skipped.metrics.empty());
  EXPECT_EQ(skipped.labels.size(), 1u);
  EXPECT_EQ(skipped.labels[0].first, "skipped");
}

TEST(HarnessTest, ExplicitSeedDerivesPerJobSeeds) {
  BenchOptions options = TestOptions(1);
  options.seed = 7;
  options.seed_set = true;
  const Harness harness("driver_test", options);
  const SystemConfig a = harness.Resolve(ConfigByName("stock"), "job_a");
  const SystemConfig b = harness.Resolve(ConfigByName("stock"), "job_b");
  EXPECT_EQ(a.seed, DeriveJobSeed(7, "driver_test", "job_a"));
  EXPECT_NE(a.seed, b.seed);
  // Without --seed the config keeps its own calibrated default.
  const Harness plain("driver_test", TestOptions(1));
  EXPECT_EQ(plain.Resolve(ConfigByName("stock"), "job_a").seed,
            ConfigByName("stock").seed);
}

TEST(HarnessTest, PhysAndSwapOverridesReachResolvedConfigs) {
  BenchOptions options = TestOptions(1);
  options.phys_mb = 96;
  options.swap_mb = 64;
  const Harness harness("driver_test", options);
  const SystemConfig resolved =
      harness.Resolve(ConfigByName("stock"), "job");
  EXPECT_EQ(resolved.phys_bytes, 96ull * 1024 * 1024);
  EXPECT_EQ(resolved.swap_bytes, 64ull * 1024 * 1024);
}

// ---------------------------------------------------------------------------
// Crash containment: job failures become status labels, not bench deaths.
// ---------------------------------------------------------------------------

std::string LabelOr(const JobRecord& record, std::string_view name) {
  for (const auto& [key, value] : record.labels) {
    if (key == name) {
      return value;
    }
  }
  return "";
}

TEST(HarnessTest, ThrowingJobIsContainedAndRetriedWithStatusLabels) {
  BenchOptions options = TestOptions(2);
  options.retries = 1;
  Harness harness("driver_test", options);
  std::atomic<int> attempts{0};
  harness.AddCustomJob("flaky", [&attempts](JobRecord& record) {
    record.Metric("partial", 1);  // must not survive into the retry
    if (attempts.fetch_add(1) == 0) {
      throw std::runtime_error("injected job crash");
    }
    record.Metric("final", 2);
  });
  harness.AddCustomJob("hopeless", [](JobRecord&) -> void {
    throw std::runtime_error("always down");
  });
  harness.AddCustomJob("healthy",
                       [](JobRecord& record) { record.Metric("final", 3); });
  ASSERT_TRUE(harness.Run());

  const JobRecord& flaky = harness.records()[0];
  EXPECT_EQ(LabelOr(flaky, "status"), "ok");
  EXPECT_EQ(MetricOr(flaky, "driver.jobs_retried"), 1.0);
  EXPECT_EQ(MetricOr(flaky, "final"), 2.0);
  EXPECT_EQ(attempts.load(), 2);

  const JobRecord& hopeless = harness.records()[1];
  EXPECT_EQ(LabelOr(hopeless, "status"), "error");
  EXPECT_EQ(LabelOr(hopeless, "status_reason"), "always down");

  const JobRecord& healthy = harness.records()[2];
  EXPECT_EQ(LabelOr(healthy, "status"), "ok");
  EXPECT_EQ(LabelOr(healthy, "status_reason"), "");
  EXPECT_EQ(MetricOr(healthy, "driver.jobs_retried"), 0.0);
}

TEST(HarnessTest, JobExceedingItsDeadlineGetsTimeoutStatus) {
  BenchOptions options = TestOptions(1);
  options.job_timeout_s = 0.02;
  Harness harness("driver_test", options);
  harness.AddCustomJob("slow", [](JobRecord&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  });
  ASSERT_TRUE(harness.Run());
  const JobRecord& slow = harness.records()[0];
  EXPECT_EQ(LabelOr(slow, "status"), "timeout");
  EXPECT_NE(LabelOr(slow, "status_reason").find("--job-timeout"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Results sink.
// ---------------------------------------------------------------------------

TEST(ResultsTest, JsonEscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  const std::string escaped = JsonEscape(std::string("a\nb\tc\x01"));
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(escaped.find('\x01'), std::string::npos);
  std::string error;
  EXPECT_TRUE(ValidateJsonSyntax("\"" + escaped + "\"", &error)) << error;
}

TEST(ResultsTest, ValidateJsonSyntaxAcceptsWellFormedDocuments) {
  std::string error;
  for (const char* json :
       {"{}", "[]", "null", "true", "-1.5e3",
        R"({"a": [1, 2.5, "x", {"b": null}], "c": false})",
        R"(["A", "\\", "\n"])"}) {
    EXPECT_TRUE(ValidateJsonSyntax(json, &error)) << json << ": " << error;
    error.clear();
  }
}

TEST(ResultsTest, ValidateJsonSyntaxRejectsMalformedDocuments) {
  for (const char* json :
       {"", "{", "}", "[1,]", R"({"a": })", R"({a: 1})", "[1] trailing",
        R"({"a" 1})", "nul", "[01]x", "\"unterminated"}) {
    std::string error;
    EXPECT_FALSE(ValidateJsonSyntax(json, &error)) << json;
    EXPECT_FALSE(error.empty()) << json;
  }
}

TEST(ResultsTest, ValidateJsonSyntaxCapsNestingDepth) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  deep += "1";
  for (int i = 0; i < 100; ++i) deep += ']';
  std::string error;
  EXPECT_FALSE(ValidateJsonSyntax(deep, &error));
}

ExperimentResult SampleResult() {
  ExperimentResult result;
  result.bench = "unit";
  result.jobs = 4;
  result.seed = 42;
  result.smoke = true;
  result.host_ms = 12.5;
  JobRecord record;
  record.config = "stock/\"quoted\"";
  record.host_ms = 3.25;
  record.Metric("counters.faults", 123);
  record.Metric("ratio", 0.375);
  record.Metric("bad", std::numeric_limits<double>::quiet_NaN());
  record.Label("system", "Stock Android");
  result.records.push_back(record);
  result.records.push_back(JobRecord{});  // empty record renders too
  return result;
}

TEST(ResultsTest, ToJsonOutputValidatesAndKeepsIntegersExact) {
  const std::string json = ToJson(SampleResult());
  std::string error;
  EXPECT_TRUE(ValidateJsonSyntax(json, &error)) << error;
  // Integral metrics render without an exponent; NaN becomes null.
  EXPECT_NE(json.find("\"counters.faults\": 123"), std::string::npos);
  EXPECT_NE(json.find("\"ratio\": 0.375"), std::string::npos);
  EXPECT_NE(json.find("\"bad\": null"), std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"unit\""), std::string::npos);
}

TEST(ResultsTest, WriteJsonFileRoundTripsAndFailsLoudlyOnBadPath) {
  const std::string path = testing::TempDir() + "/sat_driver_test.json";
  std::string error;
  ASSERT_TRUE(WriteJsonFile(SampleResult(), path, &error)) << error;
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), ToJson(SampleResult()));
  std::remove(path.c_str());

  error.clear();
  EXPECT_FALSE(WriteJsonFile(SampleResult(),
                             "/nonexistent-dir/x/y/out.json", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace sat
