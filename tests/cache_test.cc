// Unit tests for the cache models: hit/miss behaviour, LRU replacement,
// hierarchy latencies, and the PTE-duplication pollution effect the paper
// targets.

#include <gtest/gtest.h>

#include "src/cache/cache.h"

namespace sat {
namespace {

TEST(CacheTest, MissThenHit) {
  Cache cache("t", 1024, 32, 2);
  EXPECT_FALSE(cache.Access(0x1000));
  EXPECT_TRUE(cache.Access(0x1000));
  EXPECT_TRUE(cache.Access(0x101F));   // same 32-byte line
  EXPECT_FALSE(cache.Access(0x1020));  // next line
  EXPECT_EQ(cache.stats().accesses, 4u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(CacheTest, ProbeDoesNotFill) {
  Cache cache("t", 1024, 32, 2);
  EXPECT_FALSE(cache.Probe(0x1000));
  cache.Access(0x1000);
  EXPECT_TRUE(cache.Probe(0x1000));
  EXPECT_FALSE(cache.Probe(0x2000));
}

TEST(CacheTest, LruEvictsColdest) {
  // 2 ways, 4 sets, 32B lines => lines 0, 128, 256 map to set 0.
  Cache cache("t", 256, 32, 2);
  cache.Access(0);    // A
  cache.Access(128);  // B
  cache.Access(0);    // A touched again: B is LRU
  cache.Access(256);  // C evicts B
  EXPECT_TRUE(cache.Probe(0));
  EXPECT_FALSE(cache.Probe(128));
  EXPECT_TRUE(cache.Probe(256));
}

TEST(CacheTest, InvalidateAllEmptiesCache) {
  Cache cache("t", 1024, 32, 2);
  cache.Access(0x1000);
  cache.InvalidateAll();
  EXPECT_FALSE(cache.Probe(0x1000));
}

TEST(CacheTest, DistinctSetsDoNotConflict) {
  Cache cache("t", 256, 32, 2);
  for (PhysAddr line = 0; line < 4; ++line) {
    cache.Access(line * 32);
  }
  for (PhysAddr line = 0; line < 4; ++line) {
    EXPECT_TRUE(cache.Probe(line * 32));
  }
}

TEST(CacheHierarchyTest, LatenciesFollowCostModel) {
  const CostModel& costs = CostModel::Default();
  Cache l2 = CacheHierarchy::MakeL2();
  CacheHierarchy hierarchy(&costs, &l2);
  CoreCounters counters;

  // Cold: L1 miss, L2 miss -> DRAM.
  const Cycles cold = hierarchy.AccessInst(0x10000, &counters);
  EXPECT_EQ(cold, costs.l1_hit + costs.l2_hit + costs.dram);
  EXPECT_EQ(counters.l1i_misses, 1u);
  EXPECT_EQ(counters.l2_misses, 1u);
  EXPECT_EQ(counters.icache_stall_cycles, costs.l2_hit + costs.dram);

  // Warm: L1 hit.
  const Cycles warm = hierarchy.AccessInst(0x10000, &counters);
  EXPECT_EQ(warm, costs.l1_hit);
}

TEST(CacheHierarchyTest, L2HitAfterL1Eviction) {
  const CostModel& costs = CostModel::Default();
  Cache l2 = CacheHierarchy::MakeL2();
  CacheHierarchy hierarchy(&costs, &l2);
  CoreCounters counters;
  hierarchy.AccessInst(0x10000, &counters);
  // Evict it from L1I (32 KB, 4 ways, 256 sets): touch 4 conflicting lines.
  for (int i = 1; i <= 4; ++i) {
    hierarchy.AccessInst(0x10000 + static_cast<PhysAddr>(i) * 32 * 1024,
                         &counters);
  }
  const Cycles latency = hierarchy.AccessInst(0x10000, &counters);
  EXPECT_EQ(latency, costs.l1_hit + costs.l2_hit);  // L2 still has it
}

TEST(CacheHierarchyTest, InstAndDataSidesAreSeparate) {
  Cache l2 = CacheHierarchy::MakeL2();
  CacheHierarchy hierarchy(&CostModel::Default(), &l2);
  CoreCounters counters;
  hierarchy.AccessInst(0x10000, &counters);
  // Same line through the D side still misses L1D (but hits shared L2).
  const Cycles latency = hierarchy.AccessData(0x10000, &counters);
  EXPECT_EQ(latency,
            CostModel::Default().l1_hit + CostModel::Default().l2_hit);
  EXPECT_EQ(counters.l1d_misses, 1u);
}

TEST(CacheHierarchyTest, PtwAllocatesIntoL1DAndL2) {
  // ARMv7 walker behaviour: PTE fetches fill the data cache, so a
  // subsequent data access to the same line hits.
  Cache l2 = CacheHierarchy::MakeL2();
  CacheHierarchy hierarchy(&CostModel::Default(), &l2);
  CoreCounters counters;
  hierarchy.AccessPtw(0x20000, &counters);
  EXPECT_EQ(hierarchy.AccessData(0x20000, &counters),
            CostModel::Default().l1_hit);
}

TEST(CacheHierarchyTest, PtwDoesNotChargeDcacheStalls) {
  Cache l2 = CacheHierarchy::MakeL2();
  CacheHierarchy hierarchy(&CostModel::Default(), &l2);
  CoreCounters counters;
  hierarchy.AccessPtw(0x20000, &counters);
  EXPECT_EQ(counters.dcache_stall_cycles, 0u);  // attributed as TLB stall
  EXPECT_EQ(counters.l1d_misses, 1u);
}

TEST(CacheHierarchyTest, SharedPteLinesReduceL2Pressure) {
  // The paper's cache argument in miniature: two processes walking
  // *shared* PTPs touch one set of PTE lines; private page tables touch
  // two. Model both and compare L2 misses.
  const CostModel& costs = CostModel::Default();

  auto walk_lines = [&](bool shared) {
    Cache l2("L2", 4096, 32, 2);  // deliberately tiny to expose pressure
    CacheHierarchy a(&costs, &l2);
    CacheHierarchy b(&costs, &l2);
    CoreCounters counters;
    // Each "process" walks 256 PTE lines; shared => same physical lines.
    for (int round = 0; round < 4; ++round) {
      for (PhysAddr i = 0; i < 256; ++i) {
        a.AccessPtw(0x100000 + i * 32, &counters);
        b.AccessPtw((shared ? 0x100000 : 0x200000) + i * 32, &counters);
      }
    }
    return counters.l2_misses;
  };

  EXPECT_LT(walk_lines(true), walk_lines(false));
}

}  // namespace
}  // namespace sat
