// Tests for the multi-core extension: TLB shootdowns over cpumasks, IPI
// cost accounting, and cross-core correctness of unsharing.

#include <gtest/gtest.h>

#include <algorithm>
#include <compare>
#include <vector>

#include "src/core/sat.h"

namespace sat {
namespace {

KernelParams SmpParams(uint32_t cores, bool share = true) {
  KernelParams params;
  params.num_cores = cores;
  params.vm = share ? VmConfig::SharedPtpAndTlb() : VmConfig::Stock();
  return params;
}

MmapRequest Anon(VirtAddr at, uint32_t pages) {
  MmapRequest request;
  request.length = pages * kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  request.fixed_address = at;
  return request;
}

TEST(MachineTest, CoresShareTheL2) {
  Kernel kernel{SmpParams(2)};
  Task* task = kernel.CreateTask("t");
  kernel.Mmap(*task, Anon(0x50000000, 1));
  kernel.TouchPage(*task, 0x50000000, AccessType::kWrite);

  kernel.SetCurrent(*task, 0);
  kernel.core(0).Load(0x50000000);  // cold: L2 filled
  const uint64_t l2_misses = kernel.core(1).counters().l2_misses;
  kernel.SetCurrent(*task, 1);
  kernel.core(1).Load(0x50000000);  // L1 misses on core 1 (data + PTE
                                    // walk), but both lines hit the L2
  EXPECT_EQ(kernel.core(1).counters().l2_misses, l2_misses);
  EXPECT_EQ(kernel.core(1).counters().l1d_misses, 2u);
}

TEST(MachineTest, ShootdownFlushesMaskedCoresOnly) {
  Kernel kernel{SmpParams(4)};
  Machine& machine = kernel.machine();
  // Seed the same entry into three cores' TLBs by hand.
  TlbEntry entry;
  entry.valid = true;
  entry.vpn = 0x40000;
  entry.size_pages = 1;
  entry.asid = 9;
  entry.domain = kDomainUser;
  entry.perm = PtePerm::kReadOnly;
  entry.executable = true;
  for (uint32_t core : {0u, 1u, 2u}) {
    machine.core(core).main_tlb().Insert(entry);
  }

  machine.ShootdownAsid(9, /*mask=*/0b011, /*initiator=*/0);
  EXPECT_EQ(machine.core(0).main_tlb().ValidEntryCount(), 0u);
  EXPECT_EQ(machine.core(1).main_tlb().ValidEntryCount(), 0u);
  EXPECT_EQ(machine.core(2).main_tlb().ValidEntryCount(), 1u);  // not masked
  EXPECT_EQ(machine.shootdown_stats().shootdowns, 1u);
  EXPECT_EQ(machine.shootdown_stats().ipis, 1u);  // core 1 only
}

TEST(MachineTest, IpiCostChargedToInitiator) {
  Kernel kernel{SmpParams(4)};
  Machine& machine = kernel.machine();
  const Cycles before0 = machine.core(0).counters().cycles;
  const Cycles before2 = machine.core(2).counters().cycles;
  machine.ShootdownVa(0x40000000, /*mask=*/0b1111, /*initiator=*/2);
  // Core 2 pays three IPI round trips; core 0 pays nothing.
  EXPECT_EQ(machine.core(2).counters().cycles - before2,
            3 * kernel.costs().tlb_shootdown_ipi);
  EXPECT_EQ(machine.core(0).counters().cycles, before0);
}

TEST(SmpKernelTest, CpumaskTracksWhereTheTaskRan) {
  Kernel kernel{SmpParams(4)};
  Task* task = kernel.CreateTask("t");
  EXPECT_EQ(task->cpu_mask, 0u);
  kernel.ScheduleTo(*task, 1);
  kernel.ScheduleTo(*task, 3);
  EXPECT_EQ(task->cpu_mask, 0b1010u);
  EXPECT_EQ(task->last_core, 3u);
}

TEST(SmpKernelTest, UnshareShootsDownEveryCoreTheTaskUsed) {
  // A plain (non-zygote) parent: its code mappings are not global, so the
  // TLB entries are ASID-tagged and the shootdown's effect is observable
  // as fresh walks. (Global zygote-code entries deliberately survive an
  // ASID shootdown — their translations are unchanged by an unshare.)
  KernelParams params = SmpParams(4);
  Kernel kernel(params);
  Task* zygote = kernel.CreateTask("parent");
  MmapRequest code;
  code.length = 8 * kPageSize;
  code.prot = VmProt::ReadExec();
  code.kind = VmKind::kFilePrivate;
  code.file = 7;
  code.fixed_address = 0x40000000;
  kernel.Mmap(*zygote, code);
  MmapRequest data;
  data.length = 8 * kPageSize;
  data.prot = VmProt::ReadWrite();
  data.kind = VmKind::kFilePrivate;
  data.file = 7;
  data.file_page_offset = 8;
  data.fixed_address = 0x40008000;  // same 2 MB slot as the code
  kernel.Mmap(*zygote, data);
  kernel.TouchPage(*zygote, 0x40000000, AccessType::kExecute);
  Task* app = kernel.Fork(*zygote, "app").child;

  // The app executes the shared code on cores 0 and 2, loading TLB
  // entries on both.
  kernel.ScheduleTo(*app, 0);
  EXPECT_TRUE(kernel.core(0).FetchLine(0x40000000));
  kernel.ScheduleTo(*app, 2);
  EXPECT_TRUE(kernel.core(2).FetchLine(0x40000000));

  // A write into the same slot unshares: the shootdown must reach both
  // cores the app ran on.
  kernel.machine().ResetShootdownStats();
  EXPECT_TRUE(kernel.TouchPage(*app, 0x40008000, AccessType::kWrite));
  EXPECT_GE(kernel.machine().shootdown_stats().shootdowns, 1u);
  EXPECT_GE(kernel.machine().shootdown_stats().ipis, 1u);

  // Core 0's stale entry for the app's ASID is gone (its next fetch walks
  // the now-private table).
  const uint64_t walks_before = kernel.core(0).counters().itlb_main_misses;
  kernel.ScheduleTo(*app, 0);
  EXPECT_TRUE(kernel.core(0).FetchLine(0x40000000));
  EXPECT_GT(kernel.core(0).counters().itlb_main_misses, walks_before);
}

TEST(SmpKernelTest, ShootdownSkipsCoresTheTaskNeverUsed) {
  Kernel kernel{SmpParams(4)};
  Task* task = kernel.CreateTask("t");
  kernel.Mmap(*task, Anon(0x50000000, 64));
  kernel.ScheduleTo(*task, 1);  // only ever core 1
  kernel.TouchPage(*task, 0x50000000, AccessType::kWrite);

  kernel.machine().ResetShootdownStats();
  kernel.Munmap(*task, 0x50000000, 64 * kPageSize);
  // Flushes happened, but no IPIs: the mask is {core 1} and core 1
  // initiates.
  EXPECT_GT(kernel.machine().shootdown_stats().shootdowns, 0u);
  EXPECT_EQ(kernel.machine().shootdown_stats().ipis, 0u);
}

TEST(SmpKernelTest, TwoAppsOnTwoCoresShareAndDivergeCorrectly) {
  ZygoteParams params;
  params.kernel = SmpParams(2);
  ZygoteSystem system(params);
  Kernel& kernel = system.kernel();
  Task* a = system.ForkApp("a");
  Task* b = system.ForkApp("b");
  kernel.ScheduleTo(*a, 0);
  kernel.ScheduleTo(*b, 1);

  const LibraryImage* libc = system.catalog().FindByName("libc.so");
  const VirtAddr code_va = system.CodePageVa(libc->id, 0);
  const VirtAddr data_va = system.DataPageVa(libc->id, 0);

  // Both execute the same shared code on their own cores.
  EXPECT_TRUE(kernel.core(0).FetchLine(code_va));
  EXPECT_TRUE(kernel.core(1).FetchLine(code_va));

  // App b writes library data (unshares its copy); app a's view of the
  // pristine data is unchanged.
  EXPECT_TRUE(kernel.core(1).Store(data_va));
  EXPECT_TRUE(kernel.core(0).Load(data_va));
  const auto ra = a->mm->page_table().FindPte(data_va);
  const auto rb = b->mm->page_table().FindPte(data_va);
  EXPECT_NE(ra->ptp->hw(ra->index).frame(), rb->ptp->hw(rb->index).frame());
  EXPECT_TRUE(a->mm->page_table().SlotNeedsCopy(data_va));
  EXPECT_FALSE(b->mm->page_table().SlotNeedsCopy(data_va));
}

// Regression (shared-PTP under-flush): a munmap of a *global* mapping
// used to flush only the unmapping task's own cpu_mask, so a global TLB
// entry cached by some other zygote descendant on another core kept
// serving the dead translation (globals match every ASID, so any
// zygote-like task scheduled there could hit it). The flush mask must
// widen to every core zygote-domain code has run on.
TEST(SmpKernelTest, GlobalEntryFlushedOnCoresOtherSharersUsed) {
  Kernel kernel{SmpParams(2)};
  Task* zygote = kernel.CreateTask("zygote");
  kernel.Exec(*zygote, "app_process", /*is_zygote=*/true);
  MmapRequest code;
  code.length = 8 * kPageSize;
  code.prot = VmProt::ReadExec();
  code.kind = VmKind::kFilePrivate;
  code.file = 7;
  code.fixed_address = 0x40000000;
  kernel.Mmap(*zygote, code);
  kernel.ScheduleTo(*zygote, 0);
  kernel.TouchPage(*zygote, 0x40000000, AccessType::kExecute);

  // A forked app executes the shared code on core 1 and caches a GLOBAL
  // entry there, then exits (a non-zygote exit legitimately leaves
  // global entries in place — their translations are still live).
  Task* app = kernel.Fork(*zygote, "app").child;
  kernel.ScheduleTo(*app, 1);
  EXPECT_TRUE(kernel.core(1).FetchLine(0x40000000));
  kernel.Exit(*app);

  // The zygote, on core 0, unmaps the region. Pre-fix the flush mask was
  // {core 0}; core 1's global entry survived and kept translating.
  kernel.ScheduleTo(*zygote, 0);
  kernel.Munmap(*zygote, 0x40000000, 8 * kPageSize);

  kernel.ScheduleTo(*zygote, 1);
  EXPECT_FALSE(kernel.core(1).FetchLine(0x40000000));
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// Satellite: cpumask arithmetic at 64 cores. With a 32-bit mask (or
// `1u << core`), scheduling to core 63 is UB and the shootdown below
// would never reach it.
TEST(SmpKernelTest, SixtyFourCoreSmokeUsesHighMaskBits) {
  Kernel kernel{SmpParams(64)};
  Task* task = kernel.CreateTask("t");
  kernel.Mmap(*task, Anon(0x50000000, 4));
  kernel.ScheduleTo(*task, 63);
  for (uint32_t i = 0; i < 4; ++i) {
    kernel.TouchPage(*task, 0x50000000 + i * kPageSize, AccessType::kWrite);
  }
  EXPECT_EQ(task->cpu_mask, 1ull << 63);
  kernel.ScheduleTo(*task, 0);
  EXPECT_EQ(task->cpu_mask, (1ull << 63) | 1u);

  kernel.machine().ResetShootdownStats();
  kernel.Munmap(*task, 0x50000000, 4 * kPageSize);  // must reach core 63
  EXPECT_GE(kernel.machine().shootdown_stats().ipis, 1u);
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// Regression (initiator mis-attribution): daemon-path shootdowns
// (swap-out, reclaim, ksmd) used to hardcode initiator=0, charging the
// IPI round trips to core 0 no matter where the daemon actually ran.
// They must bill the core whose kernel entry drove the pass.
TEST(SmpKernelTest, DaemonShootdownsChargeTheInitiatingCore) {
  KernelParams params = SmpParams(4);
  params.swap_bytes = 16ull * 1024 * 1024;
  Kernel kernel(params);
  Task* task = kernel.CreateTask("t");
  kernel.Mmap(*task, Anon(0x50000000, 16));
  kernel.ScheduleTo(*task, 1);
  for (uint32_t i = 0; i < 16; ++i) {
    kernel.TouchPage(*task, 0x50000000 + i * kPageSize, AccessType::kWrite);
  }
  // The swap pass runs from core 3's kernel entry; the sharer mask spans
  // cores 1 and 3, so the IPIs (to core 1) are core 3's to pay.
  kernel.ScheduleTo(*task, 3);
  kernel.machine().ResetShootdownStats();
  const Cycles core0_before = kernel.core(0).counters().cycles;
  kernel.SwapOutAnonPages(16);
  EXPECT_GT(kernel.machine().shootdown_stats().ipis, 0u);
  EXPECT_EQ(kernel.core(0).counters().cycles, core0_before);
}

// ---------------------------------------------------------------------------
// Batched (deferred) shootdowns.
// ---------------------------------------------------------------------------

// The visibility window itself: under the batched policy a remote TLB
// keeps serving the stale entry — with zero IPIs sent — until the next
// drain, which applies every queued flush with one IPI per distinct
// remote target.
TEST(MachineTest, BatchedPolicyDefersRemoteFlushesUntilDrain) {
  KernelParams params = SmpParams(4);
  params.shootdown_policy = ShootdownPolicy::kBatched;
  Kernel kernel(params);
  Machine& machine = kernel.machine();
  TlbEntry entry;
  entry.valid = true;
  entry.vpn = 0x40000;
  entry.size_pages = 1;
  entry.asid = 9;
  entry.domain = kDomainUser;
  entry.perm = PtePerm::kReadOnly;
  entry.executable = true;
  for (uint32_t core : {0u, 1u, 2u}) {
    machine.core(core).main_tlb().Insert(entry);
  }

  machine.ShootdownAsid(9, /*mask=*/0b0111, /*initiator=*/0);
  // The initiator flushes synchronously; the remotes are only enqueued.
  EXPECT_EQ(machine.core(0).main_tlb().ValidEntryCount(), 0u);
  EXPECT_EQ(machine.core(1).main_tlb().ValidEntryCount(), 1u);
  EXPECT_EQ(machine.core(2).main_tlb().ValidEntryCount(), 1u);
  EXPECT_EQ(machine.shootdown_stats().ipis, 0u);
  EXPECT_TRUE(machine.HasPendingFlushes());
  // The auditor's exemption input sees the window: a covering entry with
  // both remote cores in its mask.
  const auto pending = machine.PendingFlushesSnapshot();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].asid, 9);
  EXPECT_EQ(pending[0].mask, 0b0110u);

  machine.DrainPendingFlushes(0);
  EXPECT_EQ(machine.core(1).main_tlb().ValidEntryCount(), 0u);
  EXPECT_EQ(machine.core(2).main_tlb().ValidEntryCount(), 0u);
  EXPECT_EQ(machine.shootdown_stats().ipis, 2u);  // one per remote target
  EXPECT_EQ(machine.shootdown_stats().batch_drains, 1u);
  EXPECT_FALSE(machine.HasPendingFlushes());
}

// Queue overflow collapses to a full flush instead of dropping entries.
TEST(MachineTest, BatchedQueueOverflowCollapsesToFullFlush) {
  KernelParams params = SmpParams(2);
  params.shootdown_policy = ShootdownPolicy::kBatched;
  Kernel kernel(params);
  Machine& machine = kernel.machine();
  TlbEntry entry;
  entry.valid = true;
  entry.vpn = 0x90000;
  entry.size_pages = 1;
  entry.asid = 3;
  entry.domain = kDomainUser;
  entry.perm = PtePerm::kReadOnly;
  machine.core(1).main_tlb().Insert(entry);

  // Far more distinct VAs than the queue holds — none covering the entry
  // above, so only the overflow collapse can flush it.
  for (uint32_t i = 0; i < 100; ++i) {
    machine.ShootdownVa(0x50000000 + i * kPageSize, 0b11, /*initiator=*/0);
  }
  EXPECT_GT(machine.shootdown_stats().batch_overflows, 0u);
  machine.DrainPendingFlushes(0);
  EXPECT_EQ(machine.core(1).main_tlb().ValidEntryCount(), 0u);
  EXPECT_EQ(machine.shootdown_stats().ipis, 1u);
}

// One element of a per-core TLB state snapshot, ordered so two runs'
// snapshots can be compared wholesale.
struct TlbKey {
  uint32_t core;
  uint32_t vpn;
  uint32_t size_pages;
  Asid asid;
  bool global;
  FrameNumber frame;
  auto operator<=>(const TlbKey&) const = default;
};

std::vector<TlbKey> SnapshotTlbs(Kernel& kernel) {
  std::vector<TlbKey> keys;
  for (uint32_t c = 0; c < kernel.machine().num_cores(); ++c) {
    const MainTlb& tlb = kernel.core(c).main_tlb();
    for (uint32_t set = 0; set < tlb.num_sets(); ++set) {
      for (uint32_t way = 0; way < tlb.ways(); ++way) {
        const TlbEntry& e = tlb.EntryAt(set, way);
        if (e.valid) {
          keys.push_back({c, e.vpn, e.size_pages, e.asid, e.global, e.frame});
        }
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

struct PolicyRun {
  std::vector<TlbKey> tlb;
  uint64_t ipis = 0;
  uint64_t faults = 0;
  bool audit_ok = false;
};

// One deterministic unshare-heavy workload, parameterized only by the
// shootdown policy.
PolicyRun RunShootdownWorkload(ShootdownPolicy policy) {
  KernelParams params = SmpParams(4);
  params.shootdown_policy = policy;
  Kernel kernel(params);
  Task* parent = kernel.CreateTask("parent");
  MmapRequest code;
  code.length = 8 * kPageSize;
  code.prot = VmProt::ReadExec();
  code.kind = VmKind::kFilePrivate;
  code.file = 7;
  code.fixed_address = 0x40000000;
  kernel.Mmap(*parent, code);
  MmapRequest data;
  data.length = 8 * kPageSize;
  data.prot = VmProt::ReadWrite();
  data.kind = VmKind::kFilePrivate;
  data.file = 7;
  data.file_page_offset = 8;
  data.fixed_address = 0x40008000;
  kernel.Mmap(*parent, data);
  kernel.ScheduleTo(*parent, 0);
  for (uint32_t i = 0; i < 8; ++i) {
    kernel.TouchPage(*parent, 0x40000000 + i * kPageSize,
                     AccessType::kExecute);
  }

  Task* apps[3];
  for (uint32_t a = 0; a < 3; ++a) {
    apps[a] = kernel.Fork(*parent, "app").child;
  }
  // Each app executes shared code on two cores, then unshares by writing
  // library data from a third — every write shoots down the other cores.
  for (uint32_t a = 0; a < 3; ++a) {
    kernel.ScheduleTo(*apps[a], a % 4);
    kernel.core(a % 4).FetchLine(0x40000000 + a * kPageSize);
    kernel.ScheduleTo(*apps[a], (a + 1) % 4);
    kernel.core((a + 1) % 4).FetchLine(0x40000000 + a * kPageSize);
  }
  for (uint32_t a = 0; a < 3; ++a) {
    kernel.ScheduleTo(*apps[a], (a + 2) % 4);
    kernel.TouchPage(*apps[a], 0x40008000 + a * kPageSize,
                     AccessType::kWrite);
  }
  kernel.Munmap(*apps[0], 0x40008000, 8 * kPageSize);
  kernel.Exit(*apps[2]);

  PolicyRun run;
  run.tlb = SnapshotTlbs(kernel);
  run.ipis = kernel.machine().shootdown_stats().ipis;
  run.faults = kernel.counters().faults_file_backed;
  run.audit_ok = kernel.AuditInvariants().ok();
  return run;
}

// Batched and immediate shootdowns must converge to the same machine
// state at every sync point — batching only coalesces the IPIs. The
// simulator is sequential, so no core can observe the window between a
// mutation and the drain that ends its kernel entry.
TEST(SmpKernelTest, BatchedAndImmediatePoliciesConverge) {
  const PolicyRun immediate = RunShootdownWorkload(ShootdownPolicy::kImmediate);
  const PolicyRun batched = RunShootdownWorkload(ShootdownPolicy::kBatched);
  EXPECT_TRUE(immediate.audit_ok);
  EXPECT_TRUE(batched.audit_ok);
  EXPECT_EQ(immediate.faults, batched.faults);
  EXPECT_EQ(immediate.tlb.size(), batched.tlb.size());
  EXPECT_TRUE(immediate.tlb == batched.tlb);
  EXPECT_GT(immediate.ipis, 0u);
  EXPECT_LT(batched.ipis, immediate.ipis);
}

// ---------------------------------------------------------------------------
// NUMA.
// ---------------------------------------------------------------------------

// First-touch placement: the frame lands on the faulting core's node,
// and only off-node L2 misses pay the remote-DRAM surcharge.
TEST(SmpKernelTest, FirstTouchPlacementAndRemoteAccessCharging) {
  KernelParams params = SmpParams(4);
  params.num_nodes = 2;  // cores {0,1} node 0, cores {2,3} node 1
  Kernel kernel(params);
  Task* task = kernel.CreateTask("t");
  kernel.Mmap(*task, Anon(0x50000000, 1));
  kernel.ScheduleTo(*task, 2);
  kernel.TouchPage(*task, 0x50000000, AccessType::kWrite);
  const auto ref = task->mm->page_table().FindPte(0x50000000);
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(kernel.phys().NodeOfFrame(ref->ptp->hw(ref->index).frame()), 1u);

  // Core 0 (node 0) takes the cold L2 misses against node-1 memory.
  kernel.SetCurrent(*task, 0);
  EXPECT_TRUE(kernel.core(0).Load(0x50000000));
  EXPECT_GE(kernel.core(0).counters().numa_remote_accesses, 1u);
  // Core 2 is node-local to the frame and is never charged.
  EXPECT_EQ(kernel.core(2).counters().numa_remote_accesses, 0u);
}

TEST(MachineTest, CrossNodeIpiPaysRemoteSurcharge) {
  KernelParams params = SmpParams(4);
  params.num_nodes = 2;
  Kernel kernel(params);
  Machine& machine = kernel.machine();
  const Cycles before = machine.core(0).counters().cycles;
  // Targets: core 1 (same node as the initiator) and core 2 (remote).
  machine.ShootdownVa(0x40000000, /*mask=*/0b0110, /*initiator=*/0);
  EXPECT_EQ(machine.core(0).counters().cycles - before,
            2 * kernel.costs().tlb_shootdown_ipi +
                kernel.costs().numa_remote_ipi);
}

TEST(SmpKernelTest, SingleCoreMachineNeverSendsIpis) {
  Kernel kernel{SmpParams(1)};
  Task* task = kernel.CreateTask("t");
  kernel.ScheduleTo(*task, 0);
  kernel.Mmap(*task, Anon(0x50000000, 32));
  for (uint32_t i = 0; i < 32; ++i) {
    kernel.TouchPage(*task, 0x50000000 + i * kPageSize, AccessType::kWrite);
  }
  kernel.Munmap(*task, 0x50000000, 32 * kPageSize);
  kernel.Exit(*task);
  EXPECT_EQ(kernel.machine().shootdown_stats().ipis, 0u);
}

}  // namespace
}  // namespace sat
