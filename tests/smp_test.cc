// Tests for the multi-core extension: TLB shootdowns over cpumasks, IPI
// cost accounting, and cross-core correctness of unsharing.

#include <gtest/gtest.h>

#include "src/core/sat.h"

namespace sat {
namespace {

KernelParams SmpParams(uint32_t cores, bool share = true) {
  KernelParams params;
  params.num_cores = cores;
  params.vm = share ? VmConfig::SharedPtpAndTlb() : VmConfig::Stock();
  return params;
}

MmapRequest Anon(VirtAddr at, uint32_t pages) {
  MmapRequest request;
  request.length = pages * kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  request.fixed_address = at;
  return request;
}

TEST(MachineTest, CoresShareTheL2) {
  Kernel kernel{SmpParams(2)};
  Task* task = kernel.CreateTask("t");
  kernel.Mmap(*task, Anon(0x50000000, 1));
  kernel.TouchPage(*task, 0x50000000, AccessType::kWrite);

  kernel.SetCurrent(*task, 0);
  kernel.core(0).Load(0x50000000);  // cold: L2 filled
  const uint64_t l2_misses = kernel.core(1).counters().l2_misses;
  kernel.SetCurrent(*task, 1);
  kernel.core(1).Load(0x50000000);  // L1 misses on core 1 (data + PTE
                                    // walk), but both lines hit the L2
  EXPECT_EQ(kernel.core(1).counters().l2_misses, l2_misses);
  EXPECT_EQ(kernel.core(1).counters().l1d_misses, 2u);
}

TEST(MachineTest, ShootdownFlushesMaskedCoresOnly) {
  Kernel kernel{SmpParams(4)};
  Machine& machine = kernel.machine();
  // Seed the same entry into three cores' TLBs by hand.
  TlbEntry entry;
  entry.valid = true;
  entry.vpn = 0x40000;
  entry.size_pages = 1;
  entry.asid = 9;
  entry.domain = kDomainUser;
  entry.perm = PtePerm::kReadOnly;
  entry.executable = true;
  for (uint32_t core : {0u, 1u, 2u}) {
    machine.core(core).main_tlb().Insert(entry);
  }

  machine.ShootdownAsid(9, /*mask=*/0b011, /*initiator=*/0);
  EXPECT_EQ(machine.core(0).main_tlb().ValidEntryCount(), 0u);
  EXPECT_EQ(machine.core(1).main_tlb().ValidEntryCount(), 0u);
  EXPECT_EQ(machine.core(2).main_tlb().ValidEntryCount(), 1u);  // not masked
  EXPECT_EQ(machine.shootdown_stats().shootdowns, 1u);
  EXPECT_EQ(machine.shootdown_stats().ipis, 1u);  // core 1 only
}

TEST(MachineTest, IpiCostChargedToInitiator) {
  Kernel kernel{SmpParams(4)};
  Machine& machine = kernel.machine();
  const Cycles before0 = machine.core(0).counters().cycles;
  const Cycles before2 = machine.core(2).counters().cycles;
  machine.ShootdownVa(0x40000000, /*mask=*/0b1111, /*initiator=*/2);
  // Core 2 pays three IPI round trips; core 0 pays nothing.
  EXPECT_EQ(machine.core(2).counters().cycles - before2,
            3 * kernel.costs().tlb_shootdown_ipi);
  EXPECT_EQ(machine.core(0).counters().cycles, before0);
}

TEST(SmpKernelTest, CpumaskTracksWhereTheTaskRan) {
  Kernel kernel{SmpParams(4)};
  Task* task = kernel.CreateTask("t");
  EXPECT_EQ(task->cpu_mask, 0u);
  kernel.ScheduleTo(*task, 1);
  kernel.ScheduleTo(*task, 3);
  EXPECT_EQ(task->cpu_mask, 0b1010u);
  EXPECT_EQ(task->last_core, 3u);
}

TEST(SmpKernelTest, UnshareShootsDownEveryCoreTheTaskUsed) {
  // A plain (non-zygote) parent: its code mappings are not global, so the
  // TLB entries are ASID-tagged and the shootdown's effect is observable
  // as fresh walks. (Global zygote-code entries deliberately survive an
  // ASID shootdown — their translations are unchanged by an unshare.)
  KernelParams params = SmpParams(4);
  Kernel kernel(params);
  Task* zygote = kernel.CreateTask("parent");
  MmapRequest code;
  code.length = 8 * kPageSize;
  code.prot = VmProt::ReadExec();
  code.kind = VmKind::kFilePrivate;
  code.file = 7;
  code.fixed_address = 0x40000000;
  kernel.Mmap(*zygote, code);
  MmapRequest data;
  data.length = 8 * kPageSize;
  data.prot = VmProt::ReadWrite();
  data.kind = VmKind::kFilePrivate;
  data.file = 7;
  data.file_page_offset = 8;
  data.fixed_address = 0x40008000;  // same 2 MB slot as the code
  kernel.Mmap(*zygote, data);
  kernel.TouchPage(*zygote, 0x40000000, AccessType::kExecute);
  Task* app = kernel.Fork(*zygote, "app").child;

  // The app executes the shared code on cores 0 and 2, loading TLB
  // entries on both.
  kernel.ScheduleTo(*app, 0);
  EXPECT_TRUE(kernel.core(0).FetchLine(0x40000000));
  kernel.ScheduleTo(*app, 2);
  EXPECT_TRUE(kernel.core(2).FetchLine(0x40000000));

  // A write into the same slot unshares: the shootdown must reach both
  // cores the app ran on.
  kernel.machine().ResetShootdownStats();
  EXPECT_TRUE(kernel.TouchPage(*app, 0x40008000, AccessType::kWrite));
  EXPECT_GE(kernel.machine().shootdown_stats().shootdowns, 1u);
  EXPECT_GE(kernel.machine().shootdown_stats().ipis, 1u);

  // Core 0's stale entry for the app's ASID is gone (its next fetch walks
  // the now-private table).
  const uint64_t walks_before = kernel.core(0).counters().itlb_main_misses;
  kernel.ScheduleTo(*app, 0);
  EXPECT_TRUE(kernel.core(0).FetchLine(0x40000000));
  EXPECT_GT(kernel.core(0).counters().itlb_main_misses, walks_before);
}

TEST(SmpKernelTest, ShootdownSkipsCoresTheTaskNeverUsed) {
  Kernel kernel{SmpParams(4)};
  Task* task = kernel.CreateTask("t");
  kernel.Mmap(*task, Anon(0x50000000, 64));
  kernel.ScheduleTo(*task, 1);  // only ever core 1
  kernel.TouchPage(*task, 0x50000000, AccessType::kWrite);

  kernel.machine().ResetShootdownStats();
  kernel.Munmap(*task, 0x50000000, 64 * kPageSize);
  // Flushes happened, but no IPIs: the mask is {core 1} and core 1
  // initiates.
  EXPECT_GT(kernel.machine().shootdown_stats().shootdowns, 0u);
  EXPECT_EQ(kernel.machine().shootdown_stats().ipis, 0u);
}

TEST(SmpKernelTest, TwoAppsOnTwoCoresShareAndDivergeCorrectly) {
  ZygoteParams params;
  params.kernel = SmpParams(2);
  ZygoteSystem system(params);
  Kernel& kernel = system.kernel();
  Task* a = system.ForkApp("a");
  Task* b = system.ForkApp("b");
  kernel.ScheduleTo(*a, 0);
  kernel.ScheduleTo(*b, 1);

  const LibraryImage* libc = system.catalog().FindByName("libc.so");
  const VirtAddr code_va = system.CodePageVa(libc->id, 0);
  const VirtAddr data_va = system.DataPageVa(libc->id, 0);

  // Both execute the same shared code on their own cores.
  EXPECT_TRUE(kernel.core(0).FetchLine(code_va));
  EXPECT_TRUE(kernel.core(1).FetchLine(code_va));

  // App b writes library data (unshares its copy); app a's view of the
  // pristine data is unchanged.
  EXPECT_TRUE(kernel.core(1).Store(data_va));
  EXPECT_TRUE(kernel.core(0).Load(data_va));
  const auto ra = a->mm->page_table().FindPte(data_va);
  const auto rb = b->mm->page_table().FindPte(data_va);
  EXPECT_NE(ra->ptp->hw(ra->index).frame(), rb->ptp->hw(rb->index).frame());
  EXPECT_TRUE(a->mm->page_table().SlotNeedsCopy(data_va));
  EXPECT_FALSE(b->mm->page_table().SlotNeedsCopy(data_va));
}

TEST(SmpKernelTest, SingleCoreMachineNeverSendsIpis) {
  Kernel kernel{SmpParams(1)};
  Task* task = kernel.CreateTask("t");
  kernel.ScheduleTo(*task, 0);
  kernel.Mmap(*task, Anon(0x50000000, 32));
  for (uint32_t i = 0; i < 32; ++i) {
    kernel.TouchPage(*task, 0x50000000 + i * kPageSize, AccessType::kWrite);
  }
  kernel.Munmap(*task, 0x50000000, 32 * kPageSize);
  kernel.Exit(*task);
  EXPECT_EQ(kernel.machine().shootdown_stats().ipis, 0u);
}

}  // namespace
}  // namespace sat
