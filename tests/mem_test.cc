// Unit tests for physical memory and the page cache.

#include <gtest/gtest.h>

#include "src/mem/page_cache.h"
#include "src/mem/phys_memory.h"

namespace sat {
namespace {

TEST(PhysMemoryTest, ConstructionReservesZeroPage) {
  PhysicalMemory phys(64 * kPageSize);
  EXPECT_EQ(phys.total_frames(), 64u);
  EXPECT_EQ(phys.free_frames(), 63u);
  EXPECT_EQ(phys.frame(phys.zero_frame()).kind, FrameKind::kZero);
}

TEST(PhysMemoryTest, AllocSetsMetadata) {
  PhysicalMemory phys(64 * kPageSize);
  const FrameNumber frame = phys.AllocFrame(FrameKind::kAnon);
  EXPECT_EQ(phys.frame(frame).kind, FrameKind::kAnon);
  EXPECT_EQ(phys.frame(frame).ref_count, 1u);
  EXPECT_EQ(phys.free_frames(), 62u);
  EXPECT_EQ(phys.used_frames(), 2u);  // zero page + this one
}

TEST(PhysMemoryTest, RefUnrefLifecycle) {
  PhysicalMemory phys(64 * kPageSize);
  const FrameNumber frame = phys.AllocFrame(FrameKind::kFileCache);
  phys.RefFrame(frame);
  EXPECT_EQ(phys.frame(frame).ref_count, 2u);
  EXPECT_FALSE(phys.UnrefFrame(frame));  // still referenced
  EXPECT_TRUE(phys.UnrefFrame(frame));   // now freed
  EXPECT_EQ(phys.frame(frame).kind, FrameKind::kFree);
  EXPECT_EQ(phys.free_frames(), 63u);
}

TEST(PhysMemoryTest, FreedFramesAreReused) {
  PhysicalMemory phys(8 * kPageSize);
  std::vector<FrameNumber> frames;
  for (int i = 0; i < 7; ++i) {
    frames.push_back(phys.AllocFrame(FrameKind::kAnon));
  }
  EXPECT_EQ(phys.free_frames(), 0u);
  phys.UnrefFrame(frames[3]);
  const FrameNumber again = phys.AllocFrame(FrameKind::kAnon);
  EXPECT_EQ(again, frames[3]);
}

TEST(PhysMemoryTest, ZeroPageIsNeverFreedOrCounted) {
  PhysicalMemory phys(16 * kPageSize);
  const FrameNumber zero = phys.zero_frame();
  phys.RefFrame(zero);   // no-op
  EXPECT_EQ(phys.frame(zero).ref_count, 1u);
  EXPECT_FALSE(phys.UnrefFrame(zero));
  EXPECT_EQ(phys.frame(zero).kind, FrameKind::kZero);
}

TEST(PhysMemoryTest, CountFramesByKind) {
  PhysicalMemory phys(32 * kPageSize);
  phys.AllocFrame(FrameKind::kAnon);
  phys.AllocFrame(FrameKind::kAnon);
  phys.AllocFrame(FrameKind::kPageTable);
  EXPECT_EQ(phys.CountFrames(FrameKind::kAnon), 2u);
  EXPECT_EQ(phys.CountFrames(FrameKind::kPageTable), 1u);
  EXPECT_NE(phys.ToString().find("anon=2"), std::string::npos);
}

TEST(PageCacheTest, FirstAccessIsHardFault) {
  PhysicalMemory phys(64 * kPageSize);
  PageCache cache(&phys);
  bool hard = false;
  const FrameNumber frame = cache.GetOrLoad(7, 3, &hard);
  EXPECT_TRUE(hard);
  EXPECT_EQ(phys.frame(frame).kind, FrameKind::kFileCache);
  EXPECT_EQ(phys.frame(frame).file, 7);
  EXPECT_EQ(phys.frame(frame).file_page_index, 3u);
}

TEST(PageCacheTest, SecondAccessIsSoft) {
  PhysicalMemory phys(64 * kPageSize);
  PageCache cache(&phys);
  bool hard = false;
  const FrameNumber first = cache.GetOrLoad(7, 3, &hard);
  const FrameNumber second = cache.GetOrLoad(7, 3, &hard);
  EXPECT_FALSE(hard);
  EXPECT_EQ(first, second);
  EXPECT_EQ(cache.resident_pages(), 1u);
}

TEST(PageCacheTest, DistinctPagesAndFilesAreDistinct) {
  PhysicalMemory phys(64 * kPageSize);
  PageCache cache(&phys);
  const FrameNumber a = cache.GetOrLoad(1, 0, nullptr);
  const FrameNumber b = cache.GetOrLoad(1, 1, nullptr);
  const FrameNumber c = cache.GetOrLoad(2, 0, nullptr);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(cache.resident_pages(), 3u);
}

TEST(PageCacheTest, LookupDoesNotLoad) {
  PhysicalMemory phys(64 * kPageSize);
  PageCache cache(&phys);
  EXPECT_EQ(cache.Lookup(9, 0), PageCache::kNoFrame);
  cache.GetOrLoad(9, 0, nullptr);
  EXPECT_NE(cache.Lookup(9, 0), PageCache::kNoFrame);
}

TEST(PageCacheTest, EvictFileReleasesFrames) {
  PhysicalMemory phys(64 * kPageSize);
  PageCache cache(&phys);
  cache.GetOrLoad(5, 0, nullptr);
  cache.GetOrLoad(5, 1, nullptr);
  cache.GetOrLoad(6, 0, nullptr);
  const uint64_t used_before = phys.used_frames();
  cache.EvictFile(5);
  EXPECT_EQ(cache.resident_pages(), 1u);
  EXPECT_EQ(phys.used_frames(), used_before - 2);
}

TEST(PageCacheTest, EvictionRespectsMapReferences) {
  // A frame still mapped by a PTE (extra reference) survives the cache
  // drop; only the cache's own reference is released.
  PhysicalMemory phys(64 * kPageSize);
  PageCache cache(&phys);
  const FrameNumber frame = cache.GetOrLoad(5, 0, nullptr);
  phys.RefFrame(frame);  // the "PTE" reference
  cache.EvictFile(5);
  EXPECT_EQ(phys.frame(frame).kind, FrameKind::kFileCache);
  EXPECT_EQ(phys.frame(frame).ref_count, 1u);
  phys.UnrefFrame(frame);
  EXPECT_EQ(phys.frame(frame).kind, FrameKind::kFree);
}

}  // namespace
}  // namespace sat
