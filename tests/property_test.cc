// Property-based tests: parameterized sweeps asserting invariants that
// must hold for *every* configuration, seed, and workload — not just the
// calibrated paper scenarios.
//
//   * Randomized kernel-op fuzzing (mmap/munmap/mprotect/touch/fork/exit)
//     with resource-balance checks at teardown, across seeds x configs.
//   * Translation equivalence: whatever the kernel configuration, the
//     virtual-to-physical mapping an app observes for preloaded code is
//     identical — sharing changes the *structures*, never the semantics.
//   * Fault-count dominance: shared-PTP kernels never take more
//     file-backed faults than stock for the same replay.
//   * TLB geometry sweeps: accounting identities hold for any size/ways.

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "src/core/sat.h"

namespace sat {
namespace {

// ---------------------------------------------------------------------------
// Randomized kernel-op fuzzing.
// ---------------------------------------------------------------------------

struct FuzzCase {
  uint64_t seed;
  bool share_ptps;
  bool hw_l1_wp;
  bool lazy_unshare;
  bool ref_only_unshare;
};

class KernelFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(KernelFuzzTest, RandomOpsPreserveResourceBalance) {
  const FuzzCase fuzz = GetParam();
  KernelParams params;
  params.phys_bytes = 128ull * 1024 * 1024;
  params.vm.share_ptps = fuzz.share_ptps;
  params.vm.hw_l1_write_protect = fuzz.hw_l1_wp;
  params.vm.lazy_unshare_on_new_region = fuzz.lazy_unshare;
  params.vm.copy_referenced_only_on_unshare = fuzz.ref_only_unshare;
  Kernel kernel(params);

  std::mt19937_64 rng(fuzz.seed);
  Task* root = kernel.CreateTask("root");
  std::vector<Task*> live = {root};
  // Track each task's regions so touches stay in-bounds.
  std::map<Task*, std::vector<std::pair<VirtAddr, uint32_t>>> regions;

  const uint64_t frames_baseline = kernel.phys().used_frames();

  for (int op = 0; op < 600; ++op) {
    Task* task = live[rng() % live.size()];
    switch (rng() % 10) {
      case 0:
      case 1: {  // mmap (anon or file, sometimes into fresh 2 MB slots)
        MmapRequest request;
        const uint32_t pages = 1 + static_cast<uint32_t>(rng() % 64);
        request.length = pages * kPageSize;
        if (rng() % 2 == 0) {
          request.prot = VmProt::ReadWrite();
          request.kind = VmKind::kAnonPrivate;
        } else {
          request.prot = (rng() % 2 == 0) ? VmProt::ReadExec() : VmProt::ReadWrite();
          request.kind = VmKind::kFilePrivate;
          request.file = static_cast<FileId>(rng() % 8);
          request.file_page_offset = static_cast<uint32_t>(rng() % 32);
        }
        const VirtAddr at = kernel.Mmap(*task, request).value;
        if (at != 0) {
          regions[task].push_back({at, pages});
        }
        break;
      }
      case 2: {  // munmap a random region (possibly partially)
        auto& list = regions[task];
        if (list.empty()) {
          break;
        }
        const size_t index = rng() % list.size();
        auto [start, pages] = list[index];
        const uint32_t drop = 1 + static_cast<uint32_t>(rng() % pages);
        kernel.Munmap(*task, start, drop * kPageSize);
        if (drop == pages) {
          list.erase(list.begin() + static_cast<std::ptrdiff_t>(index));
        } else {
          list[index] = {start + drop * kPageSize, pages - drop};
        }
        break;
      }
      case 3: {  // mprotect
        auto& list = regions[task];
        if (list.empty()) {
          break;
        }
        auto [start, pages] = list[rng() % list.size()];
        const VmProt prot =
            (rng() % 2 == 0) ? VmProt::ReadOnly() : VmProt::ReadWrite();
        kernel.Mprotect(*task, start, pages * kPageSize, prot);
        break;
      }
      case 4:
      case 5:
      case 6: {  // touch
        auto& list = regions[task];
        if (list.empty()) {
          break;
        }
        auto [start, pages] = list[rng() % list.size()];
        const VirtAddr va = start + static_cast<uint32_t>(rng() % pages) * kPageSize;
        const VmArea* vma = task->mm->FindVma(va);
        if (vma == nullptr) {
          break;  // that part was since unmapped
        }
        const AccessType access = vma->prot.write && (rng() % 2 == 0)
                                      ? AccessType::kWrite
                                      : AccessType::kRead;
        kernel.TouchPage(*task, va, access);
        break;
      }
      case 7:
      case 8: {  // fork (nullptr on ENOMEM is a legal outcome)
        if (live.size() >= 12) {
          break;
        }
        Task* child = kernel.Fork(*task, "child").child;
        if (child != nullptr) {
          live.push_back(child);
          regions[child] = regions[task];  // inherited regions
        }
        break;
      }
      case 9: {  // exit (keep at least one task)
        if (live.size() <= 1) {
          break;
        }
        const size_t index = rng() % live.size();
        Task* dying = live[index];
        kernel.Exit(*dying);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(index));
        regions.erase(dying);
        break;
      }
    }
  }

  // Every redundant structure must agree before teardown...
  const AuditReport mid_report = kernel.AuditInvariants();
  EXPECT_TRUE(mid_report.ok()) << mid_report.ToString();

  // Teardown: exit everything. All anonymous memory and all PTPs must be
  // gone; only page-cache frames may outlive the processes.
  for (Task* task : live) {
    if (task->alive) {
      kernel.Exit(*task);
    }
  }
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(kernel.ptp_allocator().live_ptps(), 0u);
  EXPECT_EQ(kernel.phys().CountFrames(FrameKind::kAnon), 0u);
  EXPECT_EQ(kernel.phys().CountFrames(FrameKind::kPageTable), 0u);
  EXPECT_EQ(kernel.phys().used_frames() - frames_baseline,
            kernel.phys().CountFrames(FrameKind::kFileCache));
}

std::vector<FuzzCase> FuzzCases() {
  std::vector<FuzzCase> cases;
  for (uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
    cases.push_back({seed, false, false, false, false});
    cases.push_back({seed, true, false, false, false});
    cases.push_back({seed, true, true, false, false});
    cases.push_back({seed, true, false, true, false});
    cases.push_back({seed, true, false, false, true});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, KernelFuzzTest, ::testing::ValuesIn(FuzzCases()),
    [](const ::testing::TestParamInfo<FuzzCase>& param_info) {
      const FuzzCase& c = param_info.param;
      std::string name = "seed" + std::to_string(c.seed);
      name += c.share_ptps ? "_shared" : "_stock";
      if (c.hw_l1_wp) name += "_l1wp";
      if (c.lazy_unshare) name += "_lazy";
      if (c.ref_only_unshare) name += "_refonly";
      return name;
    });

// ---------------------------------------------------------------------------
// Translation equivalence across kernel configurations.
// ---------------------------------------------------------------------------

class TranslationEquivalenceTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(TranslationEquivalenceTest, SharingNeverChangesTranslations) {
  const std::string app_name = GetParam();

  // Run the same app replay under stock and shared kernels and compare
  // every resulting translation of its shared-code footprint.
  auto translations = [&](SystemConfig config) {
    System system(config);
    AppRunner runner(&system.android());
    const AppFootprint fp =
        system.workload().Generate(AppProfile::Named(app_name));
    Task* app = system.android().ForkApp(fp.app_name + "#probe");
    Kernel& kernel = system.kernel();
    std::map<uint64_t, uint32_t> out;  // page key -> file page index
    for (const TouchedPage& page : fp.pages) {
      if (!IsZygotePreloadedCategory(page.category)) {
        continue;
      }
      const VirtAddr va =
          system.android().CodePageVa(page.lib, page.page_index);
      EXPECT_TRUE(kernel.TouchPage(*app, va, AccessType::kExecute));
      const auto ref = app->mm->page_table().FindPte(va);
      const FrameNumber frame = ref->ptp->hw(ref->index).frame();
      const PageFrame& meta = kernel.phys().frame(frame);
      // Identify the *content*, not the frame number (allocation order
      // differs between configs): it must be the right page of the right
      // file.
      EXPECT_EQ(meta.kind, FrameKind::kFileCache);
      EXPECT_EQ(meta.file, static_cast<FileId>(page.lib));
      out[(static_cast<uint64_t>(static_cast<uint32_t>(page.lib)) << 32) |
          page.page_index] = meta.file_page_index;
    }
    return out;
  };

  const auto stock = translations(ConfigByName("stock"));
  const auto shared = translations(ConfigByName("shared-ptp-tlb"));
  EXPECT_EQ(stock, shared);
  EXPECT_FALSE(stock.empty());
}

INSTANTIATE_TEST_SUITE_P(Apps, TranslationEquivalenceTest,
                         ::testing::Values("Angrybirds", "Email",
                                           "Google Calendar"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == ' ') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Fault-count dominance.
// ---------------------------------------------------------------------------

class FaultDominanceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FaultDominanceTest, SharedKernelNeverFaultsMore) {
  const std::string app_name = GetParam();
  auto faults = [&](SystemConfig config) {
    System system(config);
    AppRunner runner(&system.android());
    const AppFootprint fp =
        system.workload().Generate(AppProfile::Named(app_name));
    return runner.Run(fp).file_faults;
  };
  EXPECT_LE(faults(ConfigByName("shared-ptp")), faults(ConfigByName("stock")));
  EXPECT_LE(faults(ConfigByName("shared-ptp-2mb")),
            faults(ConfigByName("stock-2mb")));
}

INSTANTIATE_TEST_SUITE_P(Apps, FaultDominanceTest,
                         ::testing::Values("Angrybirds", "Adobe Reader",
                                           "Chrome", "WPS", "MX Player"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == ' ') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// TLB geometry sweep.
// ---------------------------------------------------------------------------

struct TlbGeometry {
  uint32_t entries;
  uint32_t ways;
};

class TlbGeometryTest : public ::testing::TestWithParam<TlbGeometry> {};

TEST_P(TlbGeometryTest, AccountingIdentitiesHold) {
  const TlbGeometry geometry = GetParam();
  MainTlb tlb(geometry.entries, geometry.ways);
  const DomainAccessControl dacr = DomainAccessControl::StockDefault();
  std::mt19937_64 rng(99);

  for (int i = 0; i < 4000; ++i) {
    const uint32_t vpn = static_cast<uint32_t>(rng() % 512);
    const Asid asid = static_cast<Asid>(1 + rng() % 3);
    TlbEntry entry;
    if (tlb.Lookup(vpn << 12, asid, AccessType::kRead, dacr, &entry) ==
        TlbResult::kMiss) {
      entry.valid = true;
      entry.vpn = vpn;
      entry.size_pages = 1;
      entry.asid = asid;
      entry.domain = kDomainUser;
      entry.perm = PtePerm::kReadOnly;
      entry.executable = true;
      entry.frame = vpn;
      tlb.Insert(entry);
    }
  }

  const TlbStats& stats = tlb.stats();
  EXPECT_EQ(stats.lookups, 4000u);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_EQ(stats.insertions, stats.misses);
  EXPECT_LE(tlb.ValidEntryCount(), geometry.entries);
  EXPECT_GT(tlb.ValidEntryCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TlbGeometryTest,
    ::testing::Values(TlbGeometry{32, 1}, TlbGeometry{64, 2},
                      TlbGeometry{128, 2}, TlbGeometry{128, 4},
                      TlbGeometry{256, 2}, TlbGeometry{512, 4}),
    [](const ::testing::TestParamInfo<TlbGeometry>& param_info) {
      return "e" + std::to_string(param_info.param.entries) + "w" +
             std::to_string(param_info.param.ways);
    });

// ---------------------------------------------------------------------------
// Duplicate-freedom: after ANY sequence of inserts and flushes, no two
// valid entries may answer the same (vpn, asid) lookup — same-ASID or
// global duplicates, at either page size. This is the invariant behind the
// stale-duplicate re-insert fix: before it, re-inserting a VPN with a
// changed global bit, ASID, or page size left both copies valid.
// ---------------------------------------------------------------------------

class TlbDuplicateFreedomTest : public ::testing::TestWithParam<TlbGeometry> {
};

TEST_P(TlbDuplicateFreedomTest, NoTwoEntriesAnswerTheSameLookup) {
  const TlbGeometry geometry = GetParam();
  std::mt19937_64 rng(geometry.entries * 31ull + geometry.ways);

  for (int round = 0; round < 6; ++round) {
    MainTlb tlb(geometry.entries, geometry.ways);
    for (int op = 0; op < 2000; ++op) {
      const uint32_t roll = static_cast<uint32_t>(rng() % 100);
      if (roll < 80) {
        // Insert: small or large page, random ASID, sometimes global —
        // deliberately revisiting a small VPN range so attribute-changing
        // re-inserts (the bug's trigger) happen constantly.
        TlbEntry entry;
        entry.valid = true;
        const bool large = (rng() % 8) == 0;
        entry.size_pages = large ? kPtesPerLargePage : 1;
        entry.vpn = static_cast<uint32_t>(rng() % 256);
        if (large) {
          entry.vpn &= ~(kPtesPerLargePage - 1);
        }
        entry.asid = static_cast<Asid>(1 + rng() % 4);
        entry.global = (rng() % 4) == 0;
        entry.domain = kDomainUser;
        entry.perm = PtePerm::kReadOnly;
        entry.executable = true;
        entry.frame = entry.vpn + 7;
        tlb.Insert(entry);
      } else if (roll < 90) {
        tlb.FlushAsid(static_cast<Asid>(1 + rng() % 4));
      } else {
        tlb.FlushVa(static_cast<VirtAddr>(rng() % 256) << 12);
      }
    }

    std::vector<TlbEntry> live;
    for (uint32_t set = 0; set < tlb.num_sets(); ++set) {
      for (uint32_t way = 0; way < tlb.ways(); ++way) {
        const TlbEntry& entry = tlb.EntryAt(set, way);
        if (entry.valid) {
          live.push_back(entry);
        }
      }
    }
    for (size_t i = 0; i < live.size(); ++i) {
      for (size_t j = i + 1; j < live.size(); ++j) {
        EXPECT_FALSE(EntriesConflict(live[i], live[j]))
            << "duplicate entries: vpn " << live[i].vpn << "/" << live[j].vpn
            << " size " << live[i].size_pages << "/" << live[j].size_pages
            << " asid " << static_cast<int>(live[i].asid) << "/"
            << static_cast<int>(live[j].asid) << " global " << live[i].global
            << "/" << live[j].global;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TlbDuplicateFreedomTest,
    ::testing::Values(TlbGeometry{8, 2}, TlbGeometry{32, 1},
                      TlbGeometry{64, 2}, TlbGeometry{128, 4},
                      TlbGeometry{256, 2}),
    [](const ::testing::TestParamInfo<TlbGeometry>& param_info) {
      return "e" + std::to_string(param_info.param.entries) + "w" +
             std::to_string(param_info.param.ways);
    });

// ---------------------------------------------------------------------------
// Cache accounting sweep.
// ---------------------------------------------------------------------------

struct CacheGeometry {
  uint32_t size;
  uint32_t ways;
};

class CacheGeometryTest : public ::testing::TestWithParam<CacheGeometry> {};

TEST_P(CacheGeometryTest, StatsAreConsistentAndBounded) {
  const CacheGeometry geometry = GetParam();
  Cache cache("sweep", geometry.size, 32, geometry.ways);
  std::mt19937_64 rng(7);
  uint64_t observed_hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (cache.Access((rng() % 4096) * 32)) {
      observed_hits++;
    }
  }
  EXPECT_EQ(cache.stats().accesses, 20000u);
  EXPECT_EQ(cache.stats().accesses - cache.stats().misses, observed_hits);
  EXPECT_GE(cache.stats().MissRate(), 0.0);
  EXPECT_LE(cache.stats().MissRate(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(CacheGeometry{4096, 2}, CacheGeometry{16384, 4},
                      CacheGeometry{32768, 4}, CacheGeometry{65536, 8},
                      CacheGeometry{1048576, 16}),
    [](const ::testing::TestParamInfo<CacheGeometry>& param_info) {
      return "s" + std::to_string(param_info.param.size) + "w" +
             std::to_string(param_info.param.ways);
    });

// ---------------------------------------------------------------------------
// Config-matrix sweep: every extension combination boots a full system,
// runs an app lifecycle, and leaves the machine balanced.
// ---------------------------------------------------------------------------

struct MatrixCase {
  bool share_ptps;
  bool share_tlb;
  bool two_mb;
  bool large_pages;
  bool no_asids;
  uint32_t cores;
  uint32_t fault_around;
  IsolationModel isolation;
};

class ConfigMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ConfigMatrixTest, BootRunExitStaysBalanced) {
  const MatrixCase m = GetParam();
  SystemConfig config;
  config.share_ptps = m.share_ptps;
  config.share_tlb = m.share_tlb;
  config.two_mb_alignment = m.two_mb;
  config.large_pages_for_code = m.large_pages;
  config.asids_enabled = !m.no_asids;
  config.num_cores = m.cores;
  config.fault_around_pages = m.fault_around;
  config.isolation = m.isolation;
  config.phys_bytes = 1024ull * 1024 * 1024;

  System system(config);
  Kernel& kernel = system.kernel();
  const uint64_t ptps_baseline = kernel.ptp_allocator().live_ptps();
  const uint64_t anon_baseline = kernel.phys().CountFrames(FrameKind::kAnon);

  // One full app lifecycle in touch-replay mode...
  AppRunner runner(&system.android());
  const AppFootprint fp =
      system.workload().Generate(AppProfile::Named("Chrome Sandbox"));
  const AppRunStats stats = runner.Run(fp, /*exit_after=*/true);
  EXPECT_GT(stats.file_faults + stats.inherited_ptes, 100u);

  // ...and a burst through the cycle-level pipeline on the last core.
  Task* app = system.android().ForkApp("pipeline");
  kernel.ScheduleTo(*app, m.cores - 1);
  const AppFootprint& boot = system.android().zygote_boot_footprint();
  for (size_t i = 0; i < 400; ++i) {
    const TouchedPage& page = boot.pages[(i * 17) % boot.pages.size()];
    EXPECT_TRUE(kernel.core(m.cores - 1)
                    .FetchLine(system.android().CodePageVa(page.lib,
                                                           page.page_index)));
  }
  kernel.Exit(*app);

  EXPECT_EQ(kernel.ptp_allocator().live_ptps(), ptps_baseline);
  EXPECT_EQ(kernel.phys().CountFrames(FrameKind::kAnon), anon_baseline);
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
  // The sound isolation models never leak instruction translations.
  if (m.isolation != IsolationModel::kMpkDataOnly) {
    EXPECT_EQ(kernel.machine().TotalCounters().unsound_global_hits, 0u);
  }
}

std::vector<MatrixCase> MatrixCases() {
  std::vector<MatrixCase> cases;
  cases.push_back({false, false, false, false, false, 1, 0,
                   IsolationModel::kArmDomains});
  cases.push_back({true, false, false, false, false, 1, 0,
                   IsolationModel::kArmDomains});
  cases.push_back({true, true, true, false, false, 1, 0,
                   IsolationModel::kArmDomains});
  cases.push_back({true, true, false, true, false, 1, 0,
                   IsolationModel::kArmDomains});
  cases.push_back({true, true, false, false, true, 1, 0,
                   IsolationModel::kArmDomains});
  cases.push_back({true, true, false, false, false, 4, 0,
                   IsolationModel::kArmDomains});
  cases.push_back({true, true, true, true, false, 2, 16,
                   IsolationModel::kArmDomains});
  cases.push_back({true, true, false, false, false, 1, 0,
                   IsolationModel::kFlushOnSwitch});
  cases.push_back({true, true, false, false, false, 2, 8,
                   IsolationModel::kMpkDataOnly});
  cases.push_back({false, false, true, true, true, 4, 16,
                   IsolationModel::kArmDomains});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConfigMatrixTest, ::testing::ValuesIn(MatrixCases()),
    [](const ::testing::TestParamInfo<MatrixCase>& param_info) {
      const MatrixCase& m = param_info.param;
      std::string name;
      name += m.share_ptps ? "ptp" : "stock";
      if (m.share_tlb) name += "_tlb";
      if (m.two_mb) name += "_2mb";
      if (m.large_pages) name += "_lp";
      if (m.no_asids) name += "_noasid";
      if (m.cores > 1) name += "_c" + std::to_string(m.cores);
      if (m.fault_around > 0) name += "_fa" + std::to_string(m.fault_around);
      if (m.isolation == IsolationModel::kMpkDataOnly) name += "_mpk";
      if (m.isolation == IsolationModel::kFlushOnSwitch) name += "_flush";
      return name;
    });

// ---------------------------------------------------------------------------
// Fork-depth sweep: chains of forks keep sharer counts exact.
// ---------------------------------------------------------------------------

class ForkChainTest : public ::testing::TestWithParam<int> {};

TEST_P(ForkChainTest, SharerCountsMatchChainDepth) {
  const int depth = GetParam();
  KernelParams params;
  params.vm.share_ptps = true;
  Kernel kernel(params);
  Task* zygote = kernel.CreateTask("zygote");
  kernel.Exec(*zygote, "app_process", true);
  MmapRequest request;
  request.length = 8 * kPageSize;
  request.prot = VmProt::ReadExec();
  request.kind = VmKind::kFilePrivate;
  request.file = 5;
  request.fixed_address = 0x40000000;
  kernel.Mmap(*zygote, request);
  kernel.TouchPage(*zygote, 0x40000000, AccessType::kExecute);

  std::vector<Task*> chain = {zygote};
  for (int i = 0; i < depth; ++i) {
    chain.push_back(kernel.Fork(*chain.back(), "c" + std::to_string(i)).child);
  }
  const PtpId shared = zygote->mm->page_table().l1(PtpSlotIndex(0x40000000)).ptp;
  EXPECT_EQ(kernel.ptp_allocator().SharerCount(shared),
            static_cast<uint32_t>(depth + 1));

  // Tear down leaf-first; count drops one per exit.
  for (int i = depth; i >= 1; --i) {
    kernel.Exit(*chain[static_cast<size_t>(i)]);
    EXPECT_EQ(kernel.ptp_allocator().SharerCount(shared),
              static_cast<uint32_t>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, ForkChainTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace sat
