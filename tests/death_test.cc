// Death tests: the simulator enforces its kernel invariants with live
// assertions (NDEBUG is stripped in every build type — see the top-level
// CMakeLists); these tests pin the contract that misuse aborts loudly
// instead of corrupting state.

#include <gtest/gtest.h>

#include "src/core/sat.h"

namespace sat {
namespace {

class InvariantDeathTest : public ::testing::Test {
 protected:
  InvariantDeathTest()
      : phys_(1024 * kPageSize), alloc_(&phys_, &counters_) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }

  HwPte AnonPte(PtePerm perm) {
    const FrameNumber frame = phys_.AllocFrame(FrameKind::kAnon);
    return HwPte::MakePage(frame, perm, false, true);
  }

  PhysicalMemory phys_;
  KernelCounters counters_;
  PtpAllocator alloc_;
};

TEST_F(InvariantDeathTest, MutatingASharedSlotWithoutUnshareAborts) {
  PageTable parent(&alloc_, &phys_, &counters_);
  PageTable child(&alloc_, &phys_, &counters_);
  LinuxPte sw;
  sw.set_present(true);
  parent.EnsurePtp(0x40000000, kDomainUser);
  parent.SetPte(0x40000000, AnonPte(PtePerm::kReadOnly), sw);
  parent.ShareSlotInto(child, PtpSlotIndex(0x40000000));

  // SetPte without allow_shared on a NEED_COPY slot is a kernel bug.
  EXPECT_DEATH(child.SetPte(0x40001000, AnonPte(PtePerm::kReadOnly), sw),
               "unshare first");
  // So is clearing a PTE there.
  EXPECT_DEATH(child.ClearPte(0x40000000), "unshare first");
  // And so is installing a *writable* entry even via the shared path:
  // every PTE in a shared PTP must be COW-safe.
  EXPECT_DEATH(child.SetPte(0x40001000, AnonPte(PtePerm::kReadWrite), sw,
                            /*allow_shared=*/true),
               "write-protected");
}

TEST_F(InvariantDeathTest, EnsurePtpOnSharedSlotAborts) {
  PageTable parent(&alloc_, &phys_, &counters_);
  PageTable child(&alloc_, &phys_, &counters_);
  LinuxPte sw;
  sw.set_present(true);
  parent.EnsurePtp(0x40000000, kDomainUser);
  parent.SetPte(0x40000000, AnonPte(PtePerm::kReadOnly), sw);
  parent.ShareSlotInto(child, PtpSlotIndex(0x40000000));
  EXPECT_DEATH(child.EnsurePtp(0x40000000, kDomainUser), "NEED_COPY");
}

TEST_F(InvariantDeathTest, SetPteWithoutPtpAborts) {
  PageTable pt(&alloc_, &phys_, &counters_);
  LinuxPte sw;
  sw.set_present(true);
  EXPECT_DEATH(pt.SetPte(0x40000000, AnonPte(PtePerm::kReadOnly), sw),
               "EnsurePtp");
}

TEST_F(InvariantDeathTest, SharingAnEmptySlotAborts) {
  PageTable parent(&alloc_, &phys_, &counters_);
  PageTable child(&alloc_, &phys_, &counters_);
  EXPECT_DEATH(parent.ShareSlotInto(child, 5), "empty slot");
}

TEST_F(InvariantDeathTest, UnrefOfADeadFrameAborts) {
  const FrameNumber frame = phys_.AllocFrame(FrameKind::kAnon);
  phys_.UnrefFrame(frame);  // frees it
  EXPECT_DEATH(phys_.UnrefFrame(frame), "dead frame|free frame");
}

TEST_F(InvariantDeathTest, RefOfAFreeFrameAborts) {
  const FrameNumber frame = phys_.AllocFrame(FrameKind::kAnon);
  phys_.UnrefFrame(frame);
  EXPECT_DEATH(phys_.RefFrame(frame), "free frame");
}

TEST_F(InvariantDeathTest, UseOfAFreedPtpAborts) {
  const PtpId id = alloc_.Alloc();
  alloc_.DropSharer(id);
  EXPECT_DEATH(alloc_.Get(id), "freed PTP");
}

TEST_F(InvariantDeathTest, OverlappingVmaInsertAborts) {
  MmStruct mm(&alloc_, &phys_, &counters_, kDomainUser);
  VmArea vma;
  vma.start = 0x40000000;
  vma.end = 0x40004000;
  vma.prot = VmProt::ReadWrite();
  mm.InsertVma(vma);
  VmArea overlapping = vma;
  overlapping.start = 0x40002000;
  overlapping.end = 0x40006000;
  EXPECT_DEATH(mm.InsertVma(overlapping), "overlapping");
}

TEST_F(InvariantDeathTest, MisalignedTlbEntryInsertAborts) {
  MainTlb tlb(128, 2);
  TlbEntry entry;
  entry.valid = true;
  entry.vpn = 3;                       // not 16-aligned
  entry.size_pages = kPtesPerLargePage;
  EXPECT_DEATH(tlb.Insert(entry), "size-aligned");
}

}  // namespace
}  // namespace sat
