// Death tests: the simulator enforces its kernel invariants with live
// assertions (NDEBUG is stripped in every build type — see the top-level
// CMakeLists); these tests pin the contract that misuse aborts loudly
// instead of corrupting state.

#include <gtest/gtest.h>

#include "src/core/sat.h"

namespace sat {
namespace {

class InvariantDeathTest : public ::testing::Test {
 protected:
  InvariantDeathTest()
      : phys_(1024 * kPageSize), alloc_(&phys_, &counters_) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }

  HwPte AnonPte(PtePerm perm) {
    const FrameNumber frame = phys_.AllocFrame(FrameKind::kAnon);
    return HwPte::MakePage(frame, perm, false, true);
  }

  PhysicalMemory phys_;
  KernelCounters counters_;
  PtpAllocator alloc_;
};

TEST_F(InvariantDeathTest, MutatingASharedSlotWithoutUnshareAborts) {
  PageTable parent(&alloc_, &phys_, &counters_);
  PageTable child(&alloc_, &phys_, &counters_);
  LinuxPte sw;
  sw.set_present(true);
  parent.EnsurePtp(0x40000000, kDomainUser);
  parent.SetPte(0x40000000, AnonPte(PtePerm::kReadOnly), sw);
  parent.ShareSlotInto(child, PtpSlotIndex(0x40000000));

  // SetPte without allow_shared on a NEED_COPY slot is a kernel bug.
  EXPECT_DEATH(child.SetPte(0x40001000, AnonPte(PtePerm::kReadOnly), sw),
               "unshare first");
  // So is clearing a PTE there.
  EXPECT_DEATH(child.ClearPte(0x40000000), "unshare first");
  // And so is installing a *writable* entry even via the shared path:
  // every PTE in a shared PTP must be COW-safe.
  EXPECT_DEATH(child.SetPte(0x40001000, AnonPte(PtePerm::kReadWrite), sw,
                            /*allow_shared=*/true),
               "write-protected");
}

TEST_F(InvariantDeathTest, EnsurePtpOnSharedSlotAborts) {
  PageTable parent(&alloc_, &phys_, &counters_);
  PageTable child(&alloc_, &phys_, &counters_);
  LinuxPte sw;
  sw.set_present(true);
  parent.EnsurePtp(0x40000000, kDomainUser);
  parent.SetPte(0x40000000, AnonPte(PtePerm::kReadOnly), sw);
  parent.ShareSlotInto(child, PtpSlotIndex(0x40000000));
  EXPECT_DEATH(child.EnsurePtp(0x40000000, kDomainUser), "NEED_COPY");
}

TEST_F(InvariantDeathTest, SetPteWithoutPtpAborts) {
  PageTable pt(&alloc_, &phys_, &counters_);
  LinuxPte sw;
  sw.set_present(true);
  EXPECT_DEATH(pt.SetPte(0x40000000, AnonPte(PtePerm::kReadOnly), sw),
               "EnsurePtp");
}

TEST_F(InvariantDeathTest, SharingAnEmptySlotAborts) {
  PageTable parent(&alloc_, &phys_, &counters_);
  PageTable child(&alloc_, &phys_, &counters_);
  EXPECT_DEATH(parent.ShareSlotInto(child, 5), "empty slot");
}

TEST_F(InvariantDeathTest, UnrefOfADeadFrameAborts) {
  const FrameNumber frame = phys_.AllocFrame(FrameKind::kAnon);
  phys_.UnrefFrame(frame);  // frees it
  EXPECT_DEATH(phys_.UnrefFrame(frame), "dead frame|free frame");
}

TEST_F(InvariantDeathTest, RefOfAFreeFrameAborts) {
  const FrameNumber frame = phys_.AllocFrame(FrameKind::kAnon);
  phys_.UnrefFrame(frame);
  EXPECT_DEATH(phys_.RefFrame(frame), "free frame");
}

TEST_F(InvariantDeathTest, UseOfAFreedPtpAborts) {
  const PtpId id = alloc_.Alloc();
  alloc_.DropSharer(id);
  EXPECT_DEATH(alloc_.Get(id), "freed PTP");
}

TEST_F(InvariantDeathTest, OverlappingVmaInsertAborts) {
  MmStruct mm(&alloc_, &phys_, &counters_, kDomainUser);
  VmArea vma;
  vma.start = 0x40000000;
  vma.end = 0x40004000;
  vma.prot = VmProt::ReadWrite();
  mm.InsertVma(vma);
  VmArea overlapping = vma;
  overlapping.start = 0x40002000;
  overlapping.end = 0x40006000;
  EXPECT_DEATH(mm.InsertVma(overlapping), "overlapping");
}

TEST_F(InvariantDeathTest, MisalignedTlbEntryInsertAborts) {
  MainTlb tlb(128, 2);
  TlbEntry entry;
  entry.valid = true;
  entry.vpn = 3;                       // not 16-aligned
  entry.size_pages = kPtesPerLargePage;
  EXPECT_DEATH(tlb.Insert(entry), "size-aligned");
}

TEST_F(InvariantDeathTest, ReissuingAQuarantinedFrameAborts) {
  const FrameNumber frame = phys_.AllocFrame(FrameKind::kAnon);
  phys_.QuarantineFrame(frame);  // live: flagged, condemned on last unref
  phys_.UnrefFrame(frame);
  EXPECT_EQ(phys_.frame(frame).kind, FrameKind::kQuarantined);
  EXPECT_DEATH(phys_.RefFrame(frame), "quarantined");
}

// ---------------------------------------------------------------------------
// Recoverable oops: unrepairable corruption kills exactly the sharers of
// the damaged state; damage reaching the zygote still panics the kernel.
// ---------------------------------------------------------------------------

class OopsRecoveryTest : public ::testing::Test {
 protected:
  OopsRecoveryTest() {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    params_.phys_bytes = 16ull * 1024 * 1024;
    params_.vm.share_ptps = true;
  }

  // Maps one anonymous RW page into `task` and dirties it. Returns the VA.
  static VirtAddr MapDirtyPage(Kernel& kernel, Task& task) {
    MmapRequest request;
    request.length = kPageSize;
    request.prot = VmProt::ReadWrite();
    request.kind = VmKind::kAnonPrivate;
    const VirtAddr at = kernel.Mmap(task, request).value;
    EXPECT_NE(at, 0u);
    EXPECT_EQ(kernel.WritePage(task, at, 7), TouchStatus::kOk);
    return at;
  }

  // Unrepairable compound damage at `task`'s PTE for `va`: flip a frame
  // bit in the hardware word AND lose the rmap entry, so no trusted copy
  // of the dirty page's location survives.
  static void InflictCompoundDamage(Kernel& kernel, Task& task, VirtAddr va) {
    const auto ref = task.mm->page_table().FindPte(va);
    ASSERT_TRUE(ref.has_value());
    ASSERT_TRUE(ref->ptp->sw(ref->index).dirty());
    const FrameNumber frame = ref->ptp->hw(ref->index).frame();
    ref->ptp->CorruptHwForChaos(ref->index, 1u << kPageShift);
    kernel.rmap().Remove(frame, ref->ptp->id(), ref->index);
  }

  KernelParams params_;
};

TEST_F(OopsRecoveryTest, UnrepairableSiteOopsKillsExactlyTheSharers) {
  Kernel kernel(params_);
  Task* parent = kernel.CreateTask("parent");
  Task* bystander = kernel.CreateTask("bystander");
  const VirtAddr va = MapDirtyPage(kernel, *parent);
  MapDirtyPage(kernel, *bystander);

  Task* child = kernel.Fork(*parent, "child").child;
  ASSERT_NE(child, nullptr);
  ASSERT_TRUE(kernel.AuditInvariants().ok());
  InflictCompoundDamage(kernel, *parent, va);

  kernel.RunScrubPass();

  // Blast radius: both sharers of the damaged PTP die as oops kills; the
  // bystander (own PTP, untouched state) keeps running.
  EXPECT_FALSE(parent->alive);
  EXPECT_TRUE(parent->oops_killed);
  EXPECT_FALSE(child->alive);
  EXPECT_TRUE(child->oops_killed);
  EXPECT_TRUE(bystander->alive);
  EXPECT_FALSE(bystander->oops_killed);
  EXPECT_EQ(kernel.counters().oops_kills, 2u);
  EXPECT_GE(kernel.counters().scrub_unrepairable, 1u);
  // The orphaned dirty frame and the damaged PTP's frame both left
  // circulation instead of being re-issued.
  EXPECT_GE(kernel.counters().frames_quarantined, 1u);

  // The surviving system is internally consistent and keeps working.
  kernel.RunScrubPass();
  EXPECT_TRUE(kernel.AuditInvariants().ok());
  EXPECT_TRUE(kernel.TouchPage(*bystander, MapDirtyPage(kernel, *bystander),
                               AccessType::kRead));
  kernel.Exit(*bystander);
  EXPECT_TRUE(kernel.AuditInvariants().ok());
}

TEST_F(OopsRecoveryTest, UnrepairableZygoteDamageStillPanics) {
  Kernel kernel(params_);
  Task* zygote = kernel.CreateTask("zygote");
  kernel.Exec(*zygote, "zygote", /*is_zygote=*/true);
  const VirtAddr va = MapDirtyPage(kernel, *zygote);
  InflictCompoundDamage(kernel, *zygote, va);
  EXPECT_DEATH(kernel.RunScrubPass(), "KERNEL PANIC");
}

}  // namespace
}  // namespace sat
