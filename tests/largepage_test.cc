// Tests for the 64 KB large-page extension (the Section 2.3.3
// complement): contiguous frame allocation, block page-cache, the VM's
// large-fault path, sharing semantics, and end-to-end TLB behaviour.

#include <gtest/gtest.h>

#include "src/core/sat.h"

namespace sat {
namespace {

// ---------------------------------------------------------------------------
// Physical layer.
// ---------------------------------------------------------------------------

TEST(ContiguousAllocTest, RunsAreAlignedAndExclusive) {
  PhysicalMemory phys(256 * kPageSize);
  const FrameNumber a = phys.AllocContiguousFrames(16, FrameKind::kFileCache);
  const FrameNumber b = phys.AllocContiguousFrames(16, FrameKind::kFileCache);
  EXPECT_EQ(a % 16, 0u);
  EXPECT_EQ(b % 16, 0u);
  EXPECT_NE(a, b);
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(phys.frame(a + i).kind, FrameKind::kFileCache);
    EXPECT_EQ(phys.frame(a + i).ref_count, 1u);
  }
}

TEST(ContiguousAllocTest, CoexistsWithSingleFrameAllocation) {
  PhysicalMemory phys(128 * kPageSize);
  // Grab some singles first; the contiguous run must avoid them.
  std::vector<FrameNumber> singles;
  for (int i = 0; i < 10; ++i) {
    singles.push_back(phys.AllocFrame(FrameKind::kAnon));
  }
  const FrameNumber run = phys.AllocContiguousFrames(16, FrameKind::kAnon);
  for (FrameNumber single : singles) {
    EXPECT_TRUE(single < run || single >= run + 16);
  }
  // And subsequent singles must avoid the run.
  for (int i = 0; i < 40; ++i) {
    const FrameNumber single = phys.AllocFrame(FrameKind::kAnon);
    EXPECT_TRUE(single < run || single >= run + 16);
  }
}

TEST(ContiguousAllocTest, FreedRunIsReusable) {
  PhysicalMemory phys(64 * kPageSize);
  const FrameNumber run = phys.AllocContiguousFrames(16, FrameKind::kAnon);
  for (uint32_t i = 0; i < 16; ++i) {
    phys.UnrefFrame(run + i);
  }
  const uint64_t free_before = phys.free_frames();
  // The same run can be claimed again, and single allocation still works.
  const FrameNumber again = phys.AllocContiguousFrames(16, FrameKind::kAnon);
  EXPECT_EQ(again, run);
  EXPECT_EQ(phys.free_frames(), free_before - 16);
  const FrameNumber single = phys.AllocFrame(FrameKind::kAnon);
  EXPECT_TRUE(single < again || single >= again + 16);
}

TEST(PageCacheLargeTest, BlockLoadsOnceContiguously) {
  PhysicalMemory phys(256 * kPageSize);
  PageCache cache(&phys);
  bool hard = false;
  const FrameNumber base = cache.GetOrLoadLargeBlock(9, 0, &hard);
  EXPECT_TRUE(hard);
  EXPECT_EQ(base % 16, 0u);
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(phys.frame(base + i).file, 9);
    EXPECT_EQ(phys.frame(base + i).file_page_index, i);
  }
  // Second access: soft, same base.
  EXPECT_EQ(cache.GetOrLoadLargeBlock(9, 0, &hard), base);
  EXPECT_FALSE(hard);
  // The per-page lookup view is consistent with the block.
  EXPECT_EQ(cache.Lookup(9, 3), base + 3);
  EXPECT_EQ(cache.resident_pages(), 16u);
}

// ---------------------------------------------------------------------------
// VM layer.
// ---------------------------------------------------------------------------

class LargePageVmTest : public ::testing::Test {
 protected:
  LargePageVmTest()
      : phys_(4096 * kPageSize),
        cache_(&phys_),
        alloc_(&phys_, &counters_),
        vm_(&phys_, &cache_, &counters_, &CostModel::Default(),
            VmConfig::SharedPtpAndTlb()) {}

  std::unique_ptr<MmStruct> NewMm() {
    return std::make_unique<MmStruct>(&alloc_, &phys_, &counters_, kDomainUser);
  }

  // A 64 KB-aligned, large-page code mapping.
  void MapLargeCode(MmStruct& mm, VirtAddr at, uint32_t pages, FileId file,
                    bool global = true) {
    MmapRequest request;
    request.length = pages * kPageSize;
    request.prot = VmProt::ReadExec();
    request.kind = VmKind::kFilePrivate;
    request.file = file;
    request.fixed_address = at;
    request.use_large_pages = true;
    request.global = global;
    vm_.Mmap(mm, request, nullptr);
  }

  FaultOutcome Touch(MmStruct& mm, VirtAddr va, AccessType access) {
    MemoryAbort abort;
    abort.status = FaultStatus::kTranslation;
    abort.fault_address = va;
    abort.access = access;
    return vm_.HandleFault(mm, abort, nullptr);
  }

  PhysicalMemory phys_;
  PageCache cache_;
  KernelCounters counters_;
  PtpAllocator alloc_;
  VmManager vm_;
};

TEST_F(LargePageVmTest, OneFaultPopulatesSixteenPtes) {
  auto mm = NewMm();
  MapLargeCode(*mm, 0x40000000, 32, 5);
  EXPECT_TRUE(Touch(*mm, 0x40000000 + 5 * kPageSize, AccessType::kExecute).ok);
  EXPECT_EQ(counters_.faults_file_backed, 1u);
  // All 16 pages of the block are mapped with large descriptors naming
  // the base frame.
  const auto first = mm->page_table().FindPte(0x40000000);
  ASSERT_TRUE(first.has_value());
  const FrameNumber base = first->ptp->hw(first->index).frame();
  EXPECT_EQ(base % 16, 0u);
  for (uint32_t i = 0; i < 16; ++i) {
    const auto ref = mm->page_table().FindPte(0x40000000 + i * kPageSize);
    EXPECT_TRUE(ref->ptp->hw(ref->index).valid());
    EXPECT_TRUE(ref->ptp->hw(ref->index).large());
    EXPECT_EQ(ref->ptp->hw(ref->index).frame(), base);  // replicated base
    EXPECT_TRUE(ref->ptp->hw(ref->index).global());
  }
  // The 17th page is a separate block: still unmapped.
  const auto beyond = mm->page_table().FindPte(0x40010000);
  EXPECT_FALSE(beyond->ptp->hw(beyond->index).valid());
}

TEST_F(LargePageVmTest, UnalignedRegionFallsBackToSmallPages) {
  auto mm = NewMm();
  // 8 pages only: smaller than a 64 KB block.
  MapLargeCode(*mm, 0x40000000, 8, 6);
  EXPECT_TRUE(Touch(*mm, 0x40000000, AccessType::kExecute).ok);
  const auto ref = mm->page_table().FindPte(0x40000000);
  EXPECT_FALSE(ref->ptp->hw(ref->index).large());
}

TEST_F(LargePageVmTest, SecondProcessSharesTheBlockFrames) {
  auto mm1 = NewMm();
  auto mm2 = NewMm();
  MapLargeCode(*mm1, 0x40000000, 16, 7);
  MapLargeCode(*mm2, 0x40000000, 16, 7);
  Touch(*mm1, 0x40000000, AccessType::kExecute);
  const auto outcome = Touch(*mm2, 0x40000000, AccessType::kExecute);
  EXPECT_TRUE(outcome.ok);
  EXPECT_FALSE(outcome.hard);  // block cache hit
  const auto r1 = mm1->page_table().FindPte(0x40000000);
  const auto r2 = mm2->page_table().FindPte(0x40000000);
  EXPECT_EQ(r1->ptp->hw(r1->index).frame(), r2->ptp->hw(r2->index).frame());
}

TEST_F(LargePageVmTest, LargeBlocksLiveInSharedPtps) {
  // The complement claim at the PT level: a PTP full of large-page
  // entries shares and unshares exactly like one full of 4 KB entries.
  auto parent = NewMm();
  auto child = NewMm();
  MapLargeCode(*parent, 0x40000000, 64, 8);
  Touch(*parent, 0x40000000, AccessType::kExecute);
  Touch(*parent, 0x40010000, AccessType::kExecute);

  vm_.Fork(*parent, *child, nullptr);
  EXPECT_TRUE(child->page_table().SlotNeedsCopy(0x40000000));
  // Inherited without faults.
  const auto ref = child->page_table().FindPte(0x40010000);
  EXPECT_TRUE(ref->ptp->hw(ref->index).valid());
  EXPECT_TRUE(ref->ptp->hw(ref->index).large());

  // A fault by the child populates a new block into the shared PTP,
  // visible to the parent.
  EXPECT_TRUE(Touch(*child, 0x40020000, AccessType::kExecute).ok);
  const auto parent_ref = parent->page_table().FindPte(0x40020000);
  EXPECT_TRUE(parent_ref->ptp->hw(parent_ref->index).valid());
}

TEST_F(LargePageVmTest, ExitBalancesBlockFrameReferences) {
  const uint64_t used_before = phys_.used_frames();
  {
    auto mm = NewMm();
    MapLargeCode(*mm, 0x40000000, 32, 11);
    Touch(*mm, 0x40000000, AccessType::kExecute);
    Touch(*mm, 0x40010000, AccessType::kExecute);
    vm_.ExitMm(*mm);
  }
  // Only the page-cache copies remain (32 pages = 2 blocks).
  EXPECT_EQ(phys_.used_frames(), used_before + 32);
  EXPECT_EQ(phys_.CountFrames(FrameKind::kPageTable), 0u);
  cache_.EvictFile(11);
  EXPECT_EQ(phys_.used_frames(), used_before);
}

// ---------------------------------------------------------------------------
// End to end.
// ---------------------------------------------------------------------------

TEST(LargePageSystemTest, BootsAndServesFetchesWithFewTlbEntries) {
  SystemConfig config = ConfigByName("shared-ptp-tlb");
  config.large_pages_for_code = true;
  config.phys_bytes = 1024ull * 1024 * 1024;
  System system(config);
  Kernel& kernel = system.kernel();

  Task* app = system.android().ForkApp("probe");
  kernel.ScheduleTo(*app);
  const LibraryImage* libc = system.android().catalog().FindByName("libc.so");

  // Populate the block first (one fault installs all 16 PTEs), then
  // stream 64 KB of libc: one main-TLB miss serves the whole block.
  EXPECT_TRUE(kernel.TouchPage(*app, system.android().CodePageVa(libc->id, 0),
                               AccessType::kExecute));
  const uint64_t misses_before = kernel.core().counters().itlb_main_misses;
  for (uint32_t page = 0; page < 16; ++page) {
    EXPECT_TRUE(kernel.core().FetchLine(
        system.android().CodePageVa(libc->id, page)));
  }
  EXPECT_EQ(kernel.core().counters().itlb_main_misses, misses_before + 1);
  kernel.Exit(*app);
}

TEST(LargePageSystemTest, AppLifecyclesBalanceWithLargePages) {
  SystemConfig config = ConfigByName("shared-ptp-2mb");
  config.large_pages_for_code = true;
  config.phys_bytes = 1024ull * 1024 * 1024;
  System system(config);
  const uint64_t ptps = system.kernel().ptp_allocator().live_ptps();
  AppRunner runner(&system.android());
  for (int i = 0; i < 3; ++i) {
    const AppFootprint fp =
        system.workload().Generate(AppProfile::Named("Email"));
    runner.Run(fp, /*exit_after=*/true);
  }
  EXPECT_EQ(system.kernel().ptp_allocator().live_ptps(), ptps);
  EXPECT_EQ(system.kernel().phys().CountFrames(FrameKind::kPageTable), ptps);
}

}  // namespace
}  // namespace sat
