// Tests for the isolation-model extension (Section 5.2's design space):
// ARM domains vs data-only protection keys vs flush-on-switch, protecting
// shared global TLB entries from non-member processes.

#include <gtest/gtest.h>

#include "src/core/sat.h"

namespace sat {
namespace {

// A machine with one zygote app (global TLB entries live) and one
// non-zygote daemon mapping different content at the same VA — the
// hazard scenario of Section 3.2.3.
struct HazardRig {
  explicit HazardRig(IsolationModel isolation) {
    SystemConfig config = ConfigByName("shared-ptp-tlb");
    config.isolation = isolation;
    system = std::make_unique<System>(config);
    Kernel& kernel = system->kernel();
    app = system->android().ForkApp("app");
    daemon = kernel.CreateTask("daemon");

    const LibraryImage* libc = system->android().catalog().FindByName("libc.so");
    va = system->android().CodePageVa(libc->id, 0);

    MmapRequest request;
    request.length = 4 * kPageSize;
    request.prot = VmProt::ReadExec();
    request.kind = VmKind::kFilePrivate;
    request.file = 777777;
    request.fixed_address = PageAlignDown(va);
    kernel.Mmap(*daemon, request);
  }

  // App loads the global entry; daemon then fetches the same VA.
  // Returns the frame the daemon's fetch actually used... observable via
  // which mapping its page table ended up with plus the hazard counter.
  void RunScenario() {
    Kernel& kernel = system->kernel();
    kernel.ScheduleTo(*app);
    ASSERT_TRUE(kernel.core().FetchLine(va));
    kernel.ScheduleTo(*daemon);
    ASSERT_TRUE(kernel.core().FetchLine(va));
  }

  std::unique_ptr<System> system;
  Task* app = nullptr;
  Task* daemon = nullptr;
  VirtAddr va = 0;
};

TEST(IsolationTest, ArmDomainsFaultAndStaySound) {
  HazardRig rig(IsolationModel::kArmDomains);
  rig.RunScenario();
  EXPECT_EQ(rig.system->kernel().counters().domain_faults, 1u);
  EXPECT_EQ(rig.system->core().counters().unsound_global_hits, 0u);
  // The daemon faulted, flushed, and walked its own table: its private
  // mapping exists.
  const auto ref = rig.daemon->mm->page_table().FindPte(rig.va);
  ASSERT_TRUE(ref.has_value());
  EXPECT_TRUE(ref->ptp->hw(ref->index).valid());
}

TEST(IsolationTest, MpkDataOnlyLeaksInstructionTranslations) {
  // The paper's warning, reproduced: pkeys do not check instruction
  // fetches, so the daemon silently executes through the zygote's global
  // entry — the wrong address space's translation.
  HazardRig rig(IsolationModel::kMpkDataOnly);
  rig.RunScenario();
  EXPECT_GE(rig.system->core().counters().unsound_global_hits, 1u);
  EXPECT_EQ(rig.system->kernel().counters().domain_faults, 0u);
  // The daemon never even faulted in its own mapping.
  const auto ref = rig.daemon->mm->page_table().FindPte(rig.va);
  const bool own_mapping_populated =
      ref.has_value() && ref->ptp->hw(ref->index).valid();
  EXPECT_FALSE(own_mapping_populated);
}

TEST(IsolationTest, MpkStillProtectsDataAccesses) {
  // Loads/stores are checked: a daemon data access to a zygote-domain
  // global entry takes the (pkey) fault path and lands on its own page.
  SystemConfig config = ConfigByName("shared-ptp-tlb");
  config.isolation = IsolationModel::kMpkDataOnly;
  System system(config);
  Kernel& kernel = system.kernel();
  Task* app = system.android().ForkApp("app");
  Task* daemon = kernel.CreateTask("daemon");
  const LibraryImage* libc = system.android().catalog().FindByName("libc.so");
  const VirtAddr va = system.android().CodePageVa(libc->id, 0);

  MmapRequest request;
  request.length = 4 * kPageSize;
  request.prot = VmProt::ReadOnly();
  request.kind = VmKind::kFilePrivate;
  request.file = 888111;
  request.fixed_address = PageAlignDown(va);
  kernel.Mmap(*daemon, request);

  kernel.ScheduleTo(*app);
  ASSERT_TRUE(kernel.core().FetchLine(va));
  kernel.ScheduleTo(*daemon);
  ASSERT_TRUE(kernel.core().Load(va));  // data access: checked
  EXPECT_EQ(kernel.counters().domain_faults, 1u);
  EXPECT_EQ(kernel.core().counters().unsound_global_hits, 0u);
}

TEST(IsolationTest, FlushOnSwitchIsSoundButDropsGlobals) {
  HazardRig rig(IsolationModel::kFlushOnSwitch);
  Kernel& kernel = rig.system->kernel();

  kernel.ScheduleTo(*rig.app);
  ASSERT_TRUE(kernel.core().FetchLine(rig.va));
  const uint32_t globals_before = kernel.core().main_tlb().ValidEntryCount();
  EXPECT_GT(globals_before, 0u);

  // Switching to the daemon flushes every global entry...
  kernel.ScheduleTo(*rig.daemon);
  ASSERT_TRUE(kernel.core().FetchLine(rig.va));
  EXPECT_EQ(kernel.core().counters().unsound_global_hits, 0u);
  EXPECT_EQ(kernel.counters().domain_faults, 0u);  // nothing to fault on

  // ...so the app pays a fresh walk when it returns: the fallback's cost.
  const uint64_t walks = kernel.core().counters().itlb_main_misses;
  kernel.ScheduleTo(*rig.app);
  ASSERT_TRUE(kernel.core().FetchLine(rig.va));
  EXPECT_GT(kernel.core().counters().itlb_main_misses, walks);
}

TEST(IsolationTest, FlushOnSwitchSparesGlobalsBetweenGroupMembers) {
  SystemConfig config = ConfigByName("shared-ptp-tlb");
  config.isolation = IsolationModel::kFlushOnSwitch;
  System system(config);
  Kernel& kernel = system.kernel();
  Task* a = system.android().ForkApp("a");
  Task* b = system.android().ForkApp("b");
  const LibraryImage* libc = system.android().catalog().FindByName("libc.so");
  const VirtAddr va = system.android().CodePageVa(libc->id, 0);

  kernel.ScheduleTo(*a);
  ASSERT_TRUE(kernel.core().FetchLine(va));
  const uint64_t walks = kernel.core().counters().itlb_main_misses;
  // Zygote-like to zygote-like: globals survive; b reuses a's entry.
  kernel.ScheduleTo(*b);
  ASSERT_TRUE(kernel.core().FetchLine(va));
  EXPECT_EQ(kernel.core().counters().itlb_main_misses, walks);
}

TEST(IsolationTest, ConfigNamesIncludeTheModel) {
  SystemConfig config = ConfigByName("shared-ptp-tlb");
  config.isolation = IsolationModel::kMpkDataOnly;
  EXPECT_EQ(config.Name(), "Shared PTP & TLB [MPK (data-only)]");
  config.isolation = IsolationModel::kFlushOnSwitch;
  EXPECT_EQ(config.Name(), "Shared PTP & TLB [flush-on-switch]");
}

}  // namespace
}  // namespace sat
