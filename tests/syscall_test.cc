// Tests for the errno-style syscall surface: every error path of
// Mmap/Munmap/Mprotect (EINVAL argument validation, EFAULT unmapped
// ranges, ENOMEM exhaustion, the kKilled last resort) and the ForkOutcome
// contract. The happy paths are covered throughout the rest of the suite;
// this file pins down how each call *fails*.

#include <gtest/gtest.h>

#include "src/proc/kernel.h"

namespace sat {
namespace {

MmapRequest AnonRequest(VirtAddr at, uint32_t pages) {
  MmapRequest request;
  request.length = pages * kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  request.fixed_address = at;
  return request;
}

MmapRequest CodeRequest(VirtAddr at, uint32_t pages, FileId file) {
  MmapRequest request;
  request.length = pages * kPageSize;
  request.prot = VmProt::ReadExec();
  request.kind = VmKind::kFilePrivate;
  request.file = file;
  request.fixed_address = at;
  return request;
}

// A zygote with a touched, shared-PTP-eligible code region, plus a forked
// child that inherits the region's PTPs shared — the setup in which
// unshare operations (and therefore unshare allocation failures) occur.
struct SharedFixture {
  Kernel kernel;
  Task* zygote;
  Task* child;
  static constexpr VirtAddr kCode = 0x40000000;

  SharedFixture()
      : kernel([] {
          KernelParams params;
          params.vm = VmConfig::SharedPtpAndTlb();
          return params;
        }()) {
    zygote = kernel.CreateTask("zygote");
    kernel.Exec(*zygote, "app_process", /*is_zygote=*/true);
    EXPECT_TRUE(kernel.Mmap(*zygote, CodeRequest(kCode, 64, 7)).ok());
    for (uint32_t page = 0; page < 64; ++page) {
      kernel.TouchPage(*zygote, kCode + page * kPageSize,
                       AccessType::kExecute);
    }
    const ForkOutcome fork = kernel.Fork(*zygote, "child");
    EXPECT_TRUE(fork.ok());
    child = fork.child;
    EXPECT_GT(fork.stats.slots_shared, 0u);
  }
};

// ---------------------------------------------------------------------------
// EINVAL: malformed arguments never touch the address space.
// ---------------------------------------------------------------------------

TEST(SyscallTest, MmapRejectsMalformedRequests) {
  Kernel kernel{KernelParams{}};
  Task* task = kernel.CreateTask("t");

  MmapRequest zero = AnonRequest(0x40000000, 1);
  zero.length = 0;
  EXPECT_EQ(kernel.Mmap(*task, zero).error, Errno::kEinval);

  MmapRequest unaligned_length = AnonRequest(0x40000000, 1);
  unaligned_length.length = kPageSize / 2;
  EXPECT_EQ(kernel.Mmap(*task, unaligned_length).error, Errno::kEinval);

  MmapRequest unaligned_addr = AnonRequest(0x40000000 + 123, 1);
  const SyscallResult<VirtAddr> result = kernel.Mmap(*task, unaligned_addr);
  EXPECT_EQ(result.error, Errno::kEinval);
  EXPECT_EQ(result.value, 0u);  // value stays the T default on failure
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(static_cast<bool>(result));
  EXPECT_TRUE(task->mm->VmasOverlapping(0x40000000, 0x50000000).empty());
}

TEST(SyscallTest, MunmapAndMprotectRejectMalformedRanges) {
  Kernel kernel{KernelParams{}};
  Task* task = kernel.CreateTask("t");
  EXPECT_TRUE(kernel.Mmap(*task, AnonRequest(0x40000000, 4)).ok());

  EXPECT_EQ(kernel.Munmap(*task, 0x40000000, 0).error, Errno::kEinval);
  EXPECT_EQ(kernel.Munmap(*task, 0x40000001, kPageSize).error,
            Errno::kEinval);
  EXPECT_EQ(kernel.Munmap(*task, 0x40000000, kPageSize / 2).error,
            Errno::kEinval);
  EXPECT_EQ(
      kernel.Mprotect(*task, 0x40000001, kPageSize, VmProt::ReadOnly()).error,
      Errno::kEinval);
  // The mapping is untouched.
  EXPECT_NE(task->mm->FindVma(0x40000000), nullptr);
}

// ---------------------------------------------------------------------------
// EFAULT: ranges that touch no mapping.
// ---------------------------------------------------------------------------

TEST(SyscallTest, MunmapAndMprotectReportEfaultOnUnmappedRanges) {
  Kernel kernel{KernelParams{}};
  Task* task = kernel.CreateTask("t");
  EXPECT_TRUE(kernel.Mmap(*task, AnonRequest(0x40000000, 4)).ok());

  EXPECT_EQ(kernel.Munmap(*task, 0x50000000, 4 * kPageSize).error,
            Errno::kEfault);
  EXPECT_EQ(kernel
                .Mprotect(*task, 0x50000000, 4 * kPageSize,
                          VmProt::ReadOnly())
                .error,
            Errno::kEfault);
  // A range that overlaps the mapping at all is not EFAULT.
  EXPECT_TRUE(kernel.Munmap(*task, 0x40000000, 2 * kPageSize).ok());
}

// ---------------------------------------------------------------------------
// ENOMEM.
// ---------------------------------------------------------------------------

TEST(SyscallTest, MmapReportsEnomemWhenNoFreeRangeExists) {
  Kernel kernel{KernelParams{}};
  Task* task = kernel.CreateTask("t");
  MmapRequest huge;
  huge.length = 0xC0000000u;  // 3 GB: larger than the whole mmap window
  huge.prot = VmProt::ReadWrite();
  huge.kind = VmKind::kAnonPrivate;
  EXPECT_EQ(kernel.Mmap(*task, huge).error, Errno::kEnomem);
  EXPECT_TRUE(task->alive);
}

TEST(SyscallTest, MmapReportsEnomemWhenUnshareCannotAllocate) {
  SharedFixture fixture;
  Kernel& kernel = fixture.kernel;

  // Creating a new region inside a shared PTP's span unshares it eagerly,
  // which needs a fresh PTP frame. Fail every PTP allocation: the kernel
  // reclaims what it can, then gives up with ENOMEM (the caller survives;
  // only Munmap/Mprotect resort to killing it).
  kernel.fault_injector().SetRule(AllocSite::kPtp, FaultRule{0, 1, 0.0});
  const SyscallResult<VirtAddr> result = kernel.Mmap(
      *fixture.child, AnonRequest(SharedFixture::kCode + 64 * kPageSize, 1));
  kernel.fault_injector().Reset();
  EXPECT_EQ(result.error, Errno::kEnomem);
  EXPECT_EQ(result.value, 0u);
  EXPECT_TRUE(fixture.child->alive);
}

// ---------------------------------------------------------------------------
// kKilled: the caller as the last resort.
// ---------------------------------------------------------------------------

TEST(SyscallTest, MunmapKillsCallerWhenUnshareCannotAllocate) {
  SharedFixture fixture;
  Kernel& kernel = fixture.kernel;

  // A partial unmap of a shared slot must unshare it first. With every
  // PTP allocation failing and nothing reclaimable left, the kernel's
  // only way to complete the operation is to OOM-kill the caller (whose
  // teardown finishes the unmap).
  kernel.fault_injector().SetRule(AllocSite::kPtp, FaultRule{0, 1, 0.0});
  const SyscallResult<void> result =
      kernel.Munmap(*fixture.child, SharedFixture::kCode, kPageSize);
  kernel.fault_injector().Reset();
  EXPECT_EQ(result.error, Errno::kKilled);
  EXPECT_FALSE(fixture.child->alive);
  EXPECT_TRUE(fixture.zygote->alive);  // never the zygote's fault
}

TEST(SyscallTest, MprotectKillsCallerWhenUnshareCannotAllocate) {
  SharedFixture fixture;
  Kernel& kernel = fixture.kernel;

  kernel.fault_injector().SetRule(AllocSite::kPtp, FaultRule{0, 1, 0.0});
  const SyscallResult<void> result = kernel.Mprotect(
      *fixture.child, SharedFixture::kCode, kPageSize, VmProt::ReadOnly());
  kernel.fault_injector().Reset();
  EXPECT_EQ(result.error, Errno::kKilled);
  EXPECT_FALSE(fixture.child->alive);
}

// ---------------------------------------------------------------------------
// ForkOutcome and ErrnoName.
// ---------------------------------------------------------------------------

TEST(SyscallTest, ForkOutcomeCarriesChildStatsAndError) {
  SharedFixture fixture;
  const ForkOutcome ok = fixture.kernel.Fork(*fixture.zygote, "second");
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.error, Errno::kOk);
  ASSERT_NE(ok.child, nullptr);
  EXPECT_GT(ok.stats.cycles, 0u);
  EXPECT_GT(ok.stats.slots_shared, 0u);

  // A stock-kernel parent with touched private memory: its fork must
  // copy, and with every allocation failing that copy cannot proceed.
  Kernel stock{KernelParams{}};
  Task* parent = stock.CreateTask("parent");
  EXPECT_TRUE(stock.Mmap(*parent, AnonRequest(0x40000000, 16)).ok());
  for (uint32_t page = 0; page < 16; ++page) {
    stock.TouchPage(*parent, 0x40000000 + page * kPageSize,
                    AccessType::kWrite);
  }
  stock.fault_injector().SetRule(AllocSite::kPtp, FaultRule{0, 1, 0.0});
  stock.fault_injector().SetRule(AllocSite::kFrame, FaultRule{0, 1, 0.0});
  const ForkOutcome failed = stock.Fork(*parent, "child");
  stock.fault_injector().Reset();
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.child, nullptr);
  EXPECT_EQ(failed.error, Errno::kEnomem);
}

TEST(SyscallTest, ErrnoNamesAreStable) {
  EXPECT_STREQ(ErrnoName(Errno::kOk), "OK");
  EXPECT_STREQ(ErrnoName(Errno::kEnomem), "ENOMEM");
  EXPECT_STREQ(ErrnoName(Errno::kEfault), "EFAULT");
  EXPECT_STREQ(ErrnoName(Errno::kEinval), "EINVAL");
  EXPECT_STREQ(ErrnoName(Errno::kKilled), "KILLED");
}

}  // namespace
}  // namespace sat
