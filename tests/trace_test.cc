// Unit tests for the event-tracing subsystem: ring-buffer semantics,
// latency histograms, span timing, the Chrome exporter's JSON shape, and
// the zero-overhead-when-disabled contract — including an end-to-end check
// that a traced launch records the event kinds the exporters promise.

#include <gtest/gtest.h>

#include <sstream>

#include "src/core/sat.h"
#include "src/trace/trace.h"

namespace sat {
namespace {

TraceConfig EnabledConfig(uint32_t capacity = 1 << 10) {
  TraceConfig config;
  config.enabled = true;
  config.capacity = capacity;
  return config;
}

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer tracer(TraceConfig{});
  EXPECT_FALSE(tracer.enabled());
  tracer.EmitInstant(TraceEventType::kFork, 1, 2, 3);
  Tracer::Emit(&tracer, TraceEventType::kExit, 1);
  { TraceSpan span(&tracer, TraceEventType::kUnshareSlot); }
  EXPECT_EQ(tracer.total_recorded(), 0u);
  EXPECT_TRUE(tracer.Events().empty());
}

TEST(TracerTest, NullTracerIsTolerated) {
  Tracer::Emit(nullptr, TraceEventType::kFork);
  TraceSpan span(nullptr, TraceEventType::kFork);
  span.set_args(1, 2);
  span.set_duration(10);
  EXPECT_FALSE(span.armed());
}

TEST(TracerTest, RecordsInstantWithClockTimestamp) {
  Tracer tracer(EnabledConfig());
  Cycles now = 500;
  tracer.set_clock([&now] { return now; });
  tracer.EmitInstant(TraceEventType::kTlbIpi, 7, 3);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, TraceEventType::kTlbIpi);
  EXPECT_EQ(events[0].pid, 7u);
  EXPECT_EQ(events[0].a, 3u);
  EXPECT_EQ(events[0].start, 500u);
  EXPECT_EQ(events[0].end, 500u);
  EXPECT_EQ(events[0].duration(), 0u);
}

TEST(TracerTest, RingOverwritesOldestAndCountsDrops) {
  Tracer tracer(EnabledConfig(/*capacity=*/4));
  for (uint64_t i = 0; i < 10; ++i) {
    tracer.EmitInstant(TraceEventType::kFork, 0, /*a=*/i);
  }
  EXPECT_EQ(tracer.total_recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: the survivors are events 6..9.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 6 + i);
  }
}

TEST(TracerTest, HistogramSurvivesRingOverwrite) {
  Tracer tracer(EnabledConfig(/*capacity=*/2));
  for (uint64_t i = 0; i < 8; ++i) {
    TraceEvent event;
    event.type = TraceEventType::kFork;
    event.start = 0;
    event.end = 100;
    tracer.Record(event);
  }
  // The ring kept 2 events, but the histogram saw all 8.
  EXPECT_EQ(tracer.histogram(TraceEventType::kFork).count(), 8u);
}

TEST(TraceSpanTest, SpanUsesClockDelta) {
  Tracer tracer(EnabledConfig());
  Cycles now = 1000;
  tracer.set_clock([&now] { return now; });
  {
    TraceSpan span(&tracer, TraceEventType::kFork, 42);
    now = 1600;
    span.set_args(43, 7);
  }
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start, 1000u);
  EXPECT_EQ(events[0].end, 1600u);
  EXPECT_EQ(events[0].pid, 42u);
  EXPECT_EQ(events[0].a, 43u);
}

TEST(TraceSpanTest, ExplicitDurationIsAFloor) {
  Tracer tracer(EnabledConfig());
  Cycles now = 0;
  tracer.set_clock([&now] { return now; });
  // Lump-charged cost: the clock never moves inside the span, but the
  // modelled cost must still appear on the timeline.
  {
    TraceSpan span(&tracer, TraceEventType::kUnshareSlot);
    span.set_duration(250);
  }
  // Clock delta larger than the explicit duration wins.
  {
    TraceSpan span(&tracer, TraceEventType::kUnshareSlot);
    now += 900;
    span.set_duration(250);
  }
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].duration(), 250u);
  EXPECT_EQ(events[1].duration(), 900u);
}

TEST(LatencyHistogramTest, PercentilesBracketTheData) {
  LatencyHistogram h;
  for (Cycles c = 1; c <= 1000; ++c) {
    h.Record(c);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.Mean(), 500.5);
  EXPECT_EQ(h.Percentile(0.0), 1u);
  EXPECT_EQ(h.Percentile(1.0), 1000u);
  // Bucket-boundary estimates: p50 of 1..1000 lands in [256, 512).
  const Cycles p50 = h.Percentile(0.5);
  EXPECT_GE(p50, 256u);
  EXPECT_LE(p50, 1000u);
  // Monotone in p.
  EXPECT_LE(h.Percentile(0.5), h.Percentile(0.95));
  EXPECT_LE(h.Percentile(0.95), h.Percentile(0.99));
}

TEST(LatencyHistogramTest, ZeroDurationsAndEmpty) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  h.Record(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0u);
}

TEST(ChromeExporterTest, EmitsValidShape) {
  Tracer tracer(EnabledConfig());
  Cycles now = 0;
  tracer.set_clock([&now] { return now; });
  {
    TraceSpan span(&tracer, TraceEventType::kFork, 1);
    now += 1200;
    span.set_args(2, 50);
  }
  tracer.EmitInstant(TraceEventType::kTlbIpi, 0, 1);
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const std::string json = os.str();
  // Shape, not a JSON parser: the envelope, one complete event with a
  // duration, one instant, and labelled args.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fork\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"tlb_ipi\""), std::string::npos);
  EXPECT_NE(json.find("\"child_pid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"dur_cycles\":1200"), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TextExporterTest, SummaryListsRecordedTypes) {
  Tracer tracer(EnabledConfig());
  TraceEvent event;
  event.type = TraceEventType::kFaultFile;
  event.start = 0;
  event.end = 64;
  tracer.Record(event);
  const std::string text = tracer.SummaryText();
  EXPECT_NE(text.find("fault_file"), std::string::npos);
}

// End-to-end: a traced launch on the full system records the event kinds
// the ISSUE's acceptance criteria name — fork, faults, unshares,
// shootdowns — and the exporter writes them all out.
TEST(TracedRunTest, LaunchRecordsTheAdvertisedEventKinds) {
  SystemConfig config = ConfigByName("shared-ptp-tlb");
  config.num_cores = 2;  // so shootdowns have a remote core to IPI
  config.trace.enabled = true;
  System system(config);
  LaunchSimulator simulator(&system.android(), LaunchParams{});
  simulator.LaunchOnce(0);
  simulator.LaunchOnce(1);

  Tracer& tracer = system.tracer();
  EXPECT_GT(tracer.total_recorded(), 0u);
  EXPECT_GT(tracer.histogram(TraceEventType::kFork).count(), 0u);
  EXPECT_GT(tracer.histogram(TraceEventType::kFaultFile).count(), 0u);
  EXPECT_GT(tracer.histogram(TraceEventType::kShareSlot).count(), 0u);
  EXPECT_GT(tracer.histogram(TraceEventType::kUnshareSlot).count(), 0u);
  EXPECT_GT(tracer.histogram(TraceEventType::kTlbShootdown).count(), 0u);
  EXPECT_GT(tracer.histogram(TraceEventType::kAppPhase).count(), 0u);

  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const std::string json = os.str();
  for (const char* name :
       {"fork", "fault_file", "unshare_slot", "tlb_shootdown", "launch"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
}

// The zero-overhead contract: the same workload with tracing off and on
// produces identical counters and cycle totals.
TEST(TracedRunTest, TracingNeverPerturbsTheExperiment) {
  auto run = [](bool traced) {
    SystemConfig config = ConfigByName("shared-ptp-tlb");
    config.trace.enabled = traced;
    System system(config);
    LaunchSimulator simulator(&system.android(), LaunchParams{});
    simulator.LaunchOnce(0);
    const LaunchResult result = simulator.LaunchOnce(1);
    return std::make_pair(result.exec_cycles,
                          system.kernel().counters().ToString());
  };
  const auto off = run(false);
  const auto on = run(true);
  EXPECT_EQ(off.first, on.first);
  EXPECT_EQ(off.second, on.second);
}

}  // namespace
}  // namespace sat
