// Integration tests: whole-system scenarios through the public facade,
// cross-config consistency, and resource-balance invariants over long
// process lifecycles.

#include <gtest/gtest.h>

#include "src/core/sat.h"

namespace sat {
namespace {

TEST(SystemTest, ConfigNamesAreDescriptive) {
  EXPECT_EQ(ConfigByName("stock").Name(), "Stock Android");
  EXPECT_EQ(ConfigByName("shared-ptp").Name(), "Shared PTP");
  EXPECT_EQ(ConfigByName("shared-ptp-tlb-2mb").Name(), "Shared PTP & TLB - 2MB");
  EXPECT_EQ(ConfigByName("copied-ptes").Name(), "Copied PTEs");
  SystemConfig no_asid = ConfigByName("stock");
  no_asid.asids_enabled = false;
  EXPECT_EQ(no_asid.Name(), "Stock Android (no ASID)");
}

TEST(SystemTest, AllNamedConfigsBoot) {
  for (const SystemConfig& config :
       {ConfigByName("stock"), ConfigByName("shared-ptp"),
        ConfigByName("shared-ptp-tlb"), ConfigByName("stock-2mb"),
        ConfigByName("shared-ptp-2mb"), ConfigByName("shared-ptp-tlb-2mb"),
        ConfigByName("copied-ptes")}) {
    System system(config);
    EXPECT_NE(system.android().zygote(), nullptr) << config.Name();
    EXPECT_EQ(system.loader().zygote_layout().size(), 88u) << config.Name();
    const AuditReport report = system.kernel().AuditInvariants();
    EXPECT_TRUE(report.ok()) << config.Name() << ":\n" << report.ToString();
  }
}

TEST(SystemTest, IdenticalTranslationsAcrossAppsUnderSharing) {
  // The paper's foundational observation: translations of preloaded code
  // are identical across apps. With shared PTPs they are not merely
  // identical — they are the same physical PTEs.
  System system(ConfigByName("shared-ptp"));
  Task* a = system.android().ForkApp("a");
  Task* b = system.android().ForkApp("b");
  const AppFootprint& boot = system.android().zygote_boot_footprint();
  uint32_t checked = 0;
  for (size_t i = 0; i < boot.pages.size(); i += 97) {
    const VirtAddr va =
        system.android().CodePageVa(boot.pages[i].lib, boot.pages[i].page_index);
    const auto ra = a->mm->page_table().FindPte(va);
    const auto rb = b->mm->page_table().FindPte(va);
    ASSERT_TRUE(ra.has_value());
    ASSERT_TRUE(rb.has_value());
    EXPECT_EQ(ra->ptp, rb->ptp);  // same PTP object: shared
    EXPECT_EQ(ra->ptp->hw(ra->index).frame(), rb->ptp->hw(rb->index).frame());
    checked++;
  }
  EXPECT_GT(checked, 30u);
}

TEST(SystemTest, StockAppsHavePrivateTablesButSharedFrames) {
  System system(ConfigByName("stock"));
  Kernel& kernel = system.kernel();
  Task* a = system.android().ForkApp("a");
  Task* b = system.android().ForkApp("b");
  const LibraryImage* libc = system.android().catalog().FindByName("libc.so");
  const VirtAddr va = system.android().CodePageVa(libc->id, 0);
  kernel.TouchPage(*a, va, AccessType::kExecute);
  kernel.TouchPage(*b, va, AccessType::kExecute);
  const auto ra = a->mm->page_table().FindPte(va);
  const auto rb = b->mm->page_table().FindPte(va);
  EXPECT_NE(ra->ptp, rb->ptp);  // duplicated translation structures...
  EXPECT_EQ(ra->ptp->hw(ra->index).frame(),
            rb->ptp->hw(rb->index).frame());  // ...same physical page
}

TEST(SystemTest, ManyAppLifecyclesBalanceResources) {
  // Fork/run/exit 12 apps under sharing; afterwards the machine is back
  // to its post-boot resource footprint.
  System system(ConfigByName("shared-ptp-2mb"));
  Kernel& kernel = system.kernel();
  const uint64_t frames_baseline = kernel.phys().used_frames();
  const uint64_t ptps_baseline = kernel.ptp_allocator().live_ptps();

  AppRunner runner(&system.android());
  const auto apps = AppProfile::PaperBenchmarks();
  for (int round = 0; round < 12; ++round) {
    const AppFootprint fp =
        system.workload().Generate(apps[static_cast<size_t>(round) % apps.size()]);
    runner.Run(fp, /*exit_after=*/true);
  }
  // PTPs: exactly the boot set again (apps' private PTPs were freed; the
  // shared ones survive by design).
  EXPECT_EQ(kernel.ptp_allocator().live_ptps(), ptps_baseline);
  // Frames: only page-cache growth (new libraries read) may remain above
  // the baseline — no anonymous-memory leak across app lifecycles.
  System fresh(ConfigByName("shared-ptp-2mb"));
  EXPECT_EQ(kernel.phys().CountFrames(FrameKind::kAnon),
            fresh.kernel().phys().CountFrames(FrameKind::kAnon));
  EXPECT_GE(kernel.phys().used_frames(), frames_baseline);
  EXPECT_EQ(kernel.phys().used_frames() - frames_baseline,
            kernel.phys().CountFrames(FrameKind::kFileCache) -
                fresh.kernel().phys().CountFrames(FrameKind::kFileCache));
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(SystemTest, ConcurrentAppsShareUnsharedIndependently) {
  // Two live apps diverge independently: one writes library data (and
  // unshares), the other keeps sharing.
  System system(ConfigByName("shared-ptp"));
  Kernel& kernel = system.kernel();
  Task* writer = system.android().ForkApp("writer");
  Task* reader = system.android().ForkApp("reader");

  const LibraryImage* libc = system.android().catalog().FindByName("libc.so");
  const VirtAddr data_va = system.android().DataPageVa(libc->id, 0);
  const VirtAddr code_va = system.android().CodePageVa(libc->id, 0);

  EXPECT_TRUE(kernel.TouchPage(*writer, data_va, AccessType::kWrite));
  EXPECT_FALSE(writer->mm->page_table().SlotNeedsCopy(data_va));
  EXPECT_TRUE(reader->mm->page_table().SlotNeedsCopy(data_va));

  // The reader still reads the pristine data through the shared PTP; the
  // writer sees its private COW copy.
  EXPECT_TRUE(kernel.TouchPage(*reader, data_va, AccessType::kRead));
  const auto wr = writer->mm->page_table().FindPte(data_va);
  const auto rd = reader->mm->page_table().FindPte(data_va);
  EXPECT_NE(wr->ptp->hw(wr->index).frame(), rd->ptp->hw(rd->index).frame());

  // Code in the same slot: the writer privatized it, translations match.
  kernel.TouchPage(*writer, code_va, AccessType::kExecute);
  kernel.TouchPage(*reader, code_va, AccessType::kExecute);
  const auto wc = writer->mm->page_table().FindPte(code_va);
  const auto rc = reader->mm->page_table().FindPte(code_va);
  if (wc.has_value() && rc.has_value() && wc->ptp->hw(wc->index).valid() &&
      rc->ptp->hw(rc->index).valid()) {
    EXPECT_EQ(wc->ptp->hw(wc->index).frame(), rc->ptp->hw(rc->index).frame());
  }
}

TEST(SystemTest, CycleSimAndTouchReplayAgreeOnFaultCounts) {
  // The two drive modes must produce the same page-fault arithmetic for
  // the same access pattern.
  auto faults_via = [](bool cycle_sim) {
    System system(ConfigByName("shared-ptp"));
    Kernel& kernel = system.kernel();
    Task* app = system.android().ForkApp("app");
    const LibraryImage* libskia =
        system.android().catalog().FindByName("libskia.so");
    const KernelCounters before = kernel.counters();
    if (cycle_sim) {
      kernel.ScheduleTo(*app);
    }
    for (uint32_t page = 0; page < 64; ++page) {
      const VirtAddr va = system.android().CodePageVa(libskia->id, page * 3);
      if (cycle_sim) {
        EXPECT_TRUE(kernel.core().FetchLine(va));
      } else {
        EXPECT_TRUE(kernel.TouchPage(*app, va, AccessType::kExecute));
      }
    }
    return (kernel.counters() - before).faults_file_backed;
  };
  EXPECT_EQ(faults_via(false), faults_via(true));
}

TEST(SystemTest, DomainIsolationAcrossTheWholeStack) {
  // A non-zygote daemon running on the same core as zygote apps never
  // consumes their global TLB entries — end-to-end.
  System system(ConfigByName("shared-ptp-tlb"));
  Kernel& kernel = system.kernel();
  Task* app = system.android().ForkApp("app");
  Task* daemon = kernel.CreateTask("daemon");

  const LibraryImage* libc = system.android().catalog().FindByName("libc.so");
  const VirtAddr va = system.android().CodePageVa(libc->id, 0);

  // The daemon maps something private at the same VA.
  MmapRequest request;
  request.length = 4 * kPageSize;
  request.prot = VmProt::ReadExec();
  request.kind = VmKind::kFilePrivate;
  request.file = 777777;
  request.fixed_address = PageAlignDown(va);
  kernel.Mmap(*daemon, request);

  kernel.ScheduleTo(*app);
  EXPECT_TRUE(kernel.core().FetchLine(va));  // loads a global zygote entry

  kernel.ScheduleTo(*daemon);
  EXPECT_TRUE(kernel.core().FetchLine(va));
  EXPECT_EQ(kernel.counters().domain_faults, 1u);

  // The daemon got *its* mapping, not the zygote's.
  const auto daemon_pte = daemon->mm->page_table().FindPte(va);
  ASSERT_TRUE(daemon_pte.has_value());
  const FrameNumber daemon_frame = daemon_pte->ptp->hw(daemon_pte->index).frame();
  const auto app_pte = app->mm->page_table().FindPte(va);
  EXPECT_NE(daemon_frame, app_pte->ptp->hw(app_pte->index).frame());

  // With global and per-ASID TLB entries live on the core, every
  // structure still agrees.
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(SystemTest, LargePageMappingsWorkEndToEnd) {
  // The complement experiment: a 64 KB large-page mapping flows from mmap
  // through the fault handler (16 replicated PTEs over 16 contiguous
  // frames) and occupies a single TLB entry.
  System system(ConfigByName("stock"));
  Kernel& kernel = system.kernel();
  Task* task = kernel.CreateTask("large");
  MmapRequest request;
  request.length = kLargePageSize;
  request.prot = VmProt::ReadExec();
  request.kind = VmKind::kFilePrivate;
  request.file = 888888;
  request.fixed_address = 0x70000000;  // 64 KB aligned
  request.use_large_pages = true;
  kernel.Mmap(*task, request);

  // One touch populates the whole block.
  const uint64_t faults_before = kernel.counters().faults_file_backed;
  EXPECT_TRUE(kernel.TouchPage(*task, 0x70000000, AccessType::kExecute));
  EXPECT_EQ(kernel.counters().faults_file_backed, faults_before + 1);

  kernel.ScheduleTo(*task);
  EXPECT_TRUE(kernel.core().FetchLine(0x70000000));
  const uint64_t misses = kernel.core().counters().itlb_main_misses;
  // Every page of the 64 KB region hits the single large TLB entry.
  for (uint32_t i = 1; i < kPtesPerLargePage; ++i) {
    EXPECT_TRUE(kernel.core().FetchLine(0x70000000 + i * kPageSize));
  }
  EXPECT_EQ(kernel.core().counters().itlb_main_misses, misses);

  // A live large-page TLB entry audits against its 16 replicated PTEs.
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace sat
