// The kernel invariant auditor (src/vm/audit): its own correctness, and
// its use as a fuzzing oracle.
//
//   * A freshly booted system audits clean; so does one that has run the
//     full cycle-level pipeline (populated TLBs, shared PTPs, globals).
//   * The auditor actually detects corruption (a deliberately skewed
//     frame reference count is reported, not absorbed).
//   * Randomized kernel-op fuzzing with deterministic allocation-failure
//     injection, auditing after EVERY step: >= 10k steps across the
//     suite (>= 12k of them with zram swap enabled, and another >= 12k
//     with KSM merging active), every intermediate state must be
//     internally consistent — including the states reached through
//     ENOMEM rollback, direct reclaim, swap-out/swap-in under injected
//     pool-allocation failures, OOM kills, and ksmd merge/unmerge.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "src/core/sat.h"

namespace sat {
namespace {

// ---------------------------------------------------------------------------
// Clean-state audits.
// ---------------------------------------------------------------------------

TEST(AuditTest, FreshBootedSystemAuditsClean) {
  System system(ConfigByName("shared-ptp-tlb-2mb"));
  const AuditReport report = system.kernel().AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.checks, 1000u);  // it really looked at things
}

TEST(AuditTest, CycleLevelRunAuditsClean) {
  // Drive the full pipeline so the TLBs hold live entries (global and
  // per-ASID, small and large pages) when the audit runs.
  SystemConfig config = ConfigByName("shared-ptp-tlb");
  config.large_pages_for_code = true;
  System system(config);
  Kernel& kernel = system.kernel();

  Task* app = system.android().ForkApp("audited");
  ASSERT_NE(app, nullptr);
  kernel.ScheduleTo(*app);
  const AppFootprint& boot = system.android().zygote_boot_footprint();
  for (size_t i = 0; i < 300; ++i) {
    const TouchedPage& page = boot.pages[(i * 13) % boot.pages.size()];
    kernel.core().FetchLine(
        system.android().CodePageVa(page.lib, page.page_index));
  }
  AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();

  kernel.Exit(*app);
  report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(AuditTest, DetectsRefcountCorruption) {
  KernelParams params;
  params.phys_bytes = 16ull * 1024 * 1024;
  Kernel kernel(params);
  Task* task = kernel.CreateTask("victim");
  MmapRequest request;
  request.length = 4 * kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  const VirtAddr at = kernel.Mmap(*task, request).value;
  ASSERT_NE(at, 0u);
  ASSERT_TRUE(kernel.TouchPage(*task, at, AccessType::kWrite));
  ASSERT_TRUE(kernel.AuditInvariants().ok());

  // Skew one anon frame's reference count behind the kernel's back.
  const auto ref = task->mm->page_table().FindPte(at);
  ASSERT_TRUE(ref.has_value());
  const FrameNumber frame = ref->ptp->hw(ref->index).frame();
  kernel.phys().RefFrame(frame);

  const AuditReport report = kernel.AuditInvariants();
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const AuditViolation& violation : report.violations) {
    if (violation.check == "frame-refcount") {
      found = true;
    }
  }
  EXPECT_TRUE(found) << report.ToString();

  kernel.phys().UnrefFrame(frame);  // restore for a clean teardown
  EXPECT_TRUE(kernel.AuditInvariants().ok());
}

// ---------------------------------------------------------------------------
// Fuzzing with the auditor as oracle, under allocation-failure injection.
// ---------------------------------------------------------------------------

struct AuditFuzzCase {
  uint64_t seed;
  bool share_ptps;
  bool hw_l1_wp;
  uint64_t swap_mb = 0;  // zram size; 0 disables swap for the case
  bool ksm = false;      // interleave madvise/WritePage/ksmd scans
  uint32_t cores = 1;    // >1 adds random cross-core migration
  bool batched = false;  // defer shootdowns to per-core queues
  bool chaos = false;    // seeded bit flips in PTEs/zram/TLB + scrubd
  bool huge = false;     // huged collapse/split (periodic and explicit)
  uint32_t nodes = 1;    // >1 boots a NUMA machine with the numaPTE engine
  uint32_t placement = 0;  // PtPlacement as int: 0 local, 1 repl., 2 migr.
};

class AuditFuzzTest : public ::testing::TestWithParam<AuditFuzzCase> {};

TEST_P(AuditFuzzTest, EveryIntermediateStateAuditsClean) {
  const AuditFuzzCase fuzz = GetParam();
  KernelParams params;
  // Small enough that genuine exhaustion happens on top of the injected
  // failures: both OOM paths (rollback and kill) run many times.
  params.phys_bytes = 24ull * 1024 * 1024;
  params.vm.share_ptps = fuzz.share_ptps;
  params.vm.hw_l1_write_protect = fuzz.hw_l1_wp;
  params.swap_bytes = fuzz.swap_mb * 1024 * 1024;
  params.fault_injection_seed = fuzz.seed * 97 + 1;
  params.num_cores = fuzz.cores;
  params.shootdown_policy = fuzz.batched ? ShootdownPolicy::kBatched
                                         : ShootdownPolicy::kImmediate;
  if (fuzz.ksm) {
    // Periodic ksmd wakes fire from inside TouchPage/Fork/Mmap, on top of
    // the explicit scan op below — merges happen at awkward moments.
    params.ksm_enabled = true;
    params.ksm_wake_interval = 7;
  }
  if (fuzz.chaos) {
    // Chaos cases: seeded bit flips land in live PTE words, zram slot
    // bytes, and TLB tags (MaybeInjectChaos, fired from the touch path).
    // Periodic scrubd wakes run on top of the explicit sweeps below.
    params.scrub = true;
    params.scrub_wake_interval = 17;
  }
  if (fuzz.huge) {
    // Periodic huged wakes collapse runs at awkward moments, on top of
    // the explicit scans below; munmap/mprotect/COW then split them
    // again. With KSM active the unmerge policy is on too, so collapses
    // eat stable frames back.
    params.huge = true;
    params.huge_wake_interval = 13;
    params.huge_unmerge_ksm = fuzz.ksm;
  }
  if (fuzz.nodes > 1) {
    // NUMA cases: the numaPTE engine write-through-replicates every PTE
    // mutation the ops below make; periodic numad wakes promote, migrate,
    // and (under reclaim pressure) sacrifice replicas at awkward moments.
    // A low promotion threshold keeps replicas churning at fuzz scale.
    params.num_nodes = fuzz.nodes;
    params.pt_placement = static_cast<PtPlacement>(fuzz.placement);
    params.numad_wake_interval = 11;
    params.numad_remote_threshold = 4;
  }
  Kernel kernel(params);
  kernel.fault_injector().SetRule(AllocSite::kFrame, FaultRule{0, 0, 0.02});
  kernel.fault_injector().SetRule(AllocSite::kPtp, FaultRule{0, 0, 0.02});
  kernel.fault_injector().SetRule(AllocSite::kContiguous,
                                  FaultRule{0, 0, 0.02});
  if (fuzz.swap_mb > 0) {
    // Compressed-pool growth must also survive ENOMEM mid-swap-out.
    kernel.fault_injector().SetRule(AllocSite::kZram, FaultRule{0, 0, 0.02});
  }
  if (fuzz.chaos) {
    kernel.fault_injector().SetCorruptRule(CorruptSite::kPteWord,
                                           FaultRule{0, 0, 0.01});
    kernel.fault_injector().SetCorruptRule(CorruptSite::kTlbTag,
                                           FaultRule{0, 0, 0.01});
    if (fuzz.swap_mb > 0) {
      kernel.fault_injector().SetCorruptRule(CorruptSite::kZramByte,
                                             FaultRule{0, 0, 0.01});
    }
    if (fuzz.nodes > 1) {
      // Replica words rot too; scrubd's majority vote across the replica
      // set (and the master) must repair them before the audit's
      // bit-identity check sees the damage.
      kernel.fault_injector().SetCorruptRule(CorruptSite::kNumaReplica,
                                             FaultRule{0, 0, 0.01});
    }
  }

  std::mt19937_64 rng(fuzz.seed);
  std::vector<Task*> live = {kernel.CreateTask("root")};
  std::map<Task*, std::vector<std::pair<VirtAddr, uint32_t>>> regions;

  for (int op = 0; op < 2000; ++op) {
    // Any op can OOM-kill bystanders: drop the dead before choosing.
    for (size_t i = live.size(); i-- > 0;) {
      if (!live[i]->alive) {
        regions.erase(live[i]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
    if (live.empty()) {
      live.push_back(kernel.CreateTask("respawn"));
    }
    Task* task = live[rng() % live.size()];

    // On multi-core cases, migrate: the chosen task lands on a random
    // core, spreading TLB state (and shootdown masks) across cores. Each
    // switch is also a batched-drain sync point.
    if (fuzz.cores > 1 && rng() % 4 == 0) {
      kernel.ScheduleTo(*task, static_cast<uint32_t>(rng() % fuzz.cores));
    }

    const uint64_t op_count = fuzz.ksm ? 16 : (fuzz.swap_mb > 0 ? 13 : 12);
    switch (rng() % op_count) {
      case 0:
      case 1: {  // mmap
        MmapRequest request;
        const uint32_t pages = 1 + static_cast<uint32_t>(rng() % 64);
        request.length = pages * kPageSize;
        if (rng() % 2 == 0) {
          request.prot = VmProt::ReadWrite();
          request.kind = VmKind::kAnonPrivate;
          if (fuzz.ksm) {
            request.mergeable = rng() % 2 == 0;
          }
        } else {
          request.prot =
              (rng() % 2 == 0) ? VmProt::ReadExec() : VmProt::ReadWrite();
          request.kind = VmKind::kFilePrivate;
          request.file = static_cast<FileId>(rng() % 8);
          request.file_page_offset = static_cast<uint32_t>(rng() % 32);
        }
        const VirtAddr at = kernel.Mmap(*task, request).value;
        if (at != 0 && task->alive) {
          regions[task].push_back({at, pages});
        }
        break;
      }
      case 2: {  // munmap (may OOM-kill the caller as last resort)
        auto& list = regions[task];
        if (list.empty()) {
          break;
        }
        const size_t index = rng() % list.size();
        auto [start, pages] = list[index];
        const uint32_t drop = 1 + static_cast<uint32_t>(rng() % pages);
        kernel.Munmap(*task, start, drop * kPageSize);
        if (drop == pages) {
          list.erase(list.begin() + static_cast<std::ptrdiff_t>(index));
        } else {
          list[index] = {start + drop * kPageSize, pages - drop};
        }
        break;
      }
      case 3: {  // mprotect
        auto& list = regions[task];
        if (list.empty()) {
          break;
        }
        auto [start, pages] = list[rng() % list.size()];
        const VmProt prot =
            (rng() % 2 == 0) ? VmProt::ReadOnly() : VmProt::ReadWrite();
        kernel.Mprotect(*task, start, pages * kPageSize, prot);
        break;
      }
      case 4:
      case 5:
      case 6:
      case 7: {  // touch (every outcome is legal; state must stay sound)
        auto& list = regions[task];
        if (list.empty()) {
          break;
        }
        auto [start, pages] = list[rng() % list.size()];
        const VirtAddr va =
            start + static_cast<uint32_t>(rng() % pages) * kPageSize;
        const VmArea* vma = task->mm->FindVma(va);
        if (vma == nullptr) {
          break;
        }
        const AccessType access = vma->prot.write && (rng() % 2 == 0)
                                      ? AccessType::kWrite
                                      : AccessType::kRead;
        kernel.TouchPageStatus(*task, va, access);
        break;
      }
      case 8:
      case 9: {  // fork (nullptr on ENOMEM is a legal outcome)
        if (live.size() >= 10) {
          break;
        }
        Task* child = kernel.Fork(*task, "child").child;
        if (child != nullptr) {
          live.push_back(child);
          regions[child] = regions[task];
        }
        break;
      }
      case 10: {  // exec (occasionally into a zygote-like space — but not
                  // under chaos, where random damage reaching a zygote is
                  // a legitimate panic; the panic path has its own test)
        kernel.Exec(*task, "fuzz-exec", !fuzz.chaos && rng() % 8 == 0);
        regions[task].clear();
        break;
      }
      case 11: {  // exit
        if (live.size() <= 1) {
          break;
        }
        const size_t index = rng() % live.size();
        Task* dying = live[index];
        kernel.Exit(*dying);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(index));
        regions.erase(dying);
        break;
      }
      case 12: {  // swap-out pressure (only when the case enables zram)
        kernel.SwapOutAnonPages(1 + static_cast<uint32_t>(rng() % 16));
        break;
      }
      case 13: {  // madvise (KSM cases only)
        auto& list = regions[task];
        if (list.empty()) {
          break;
        }
        auto [start, pages] = list[rng() % list.size()];
        const uint32_t first = static_cast<uint32_t>(rng() % pages);
        const uint32_t count =
            1 + static_cast<uint32_t>(rng() % (pages - first));
        const MadviseAdvice advice = rng() % 4 == 0
                                         ? MadviseAdvice::kUnmergeable
                                         : MadviseAdvice::kMergeable;
        kernel.Madvise(*task, start + first * kPageSize, count * kPageSize,
                       advice);
        break;
      }
      case 14: {  // write content (small alphabet => duplicates to merge,
                  // and rewrites that unmerge/defeat the checksum skip)
        auto& list = regions[task];
        if (list.empty()) {
          break;
        }
        auto [start, pages] = list[rng() % list.size()];
        const VirtAddr va =
            start + static_cast<uint32_t>(rng() % pages) * kPageSize;
        const VmArea* vma = task->mm->FindVma(va);
        if (vma == nullptr || !vma->prot.write) {
          break;
        }
        kernel.WritePage(*task, va, rng() % 5);
        break;
      }
      case 15: {  // explicit full ksmd pass
        kernel.RunKsmScan();
        break;
      }
    }

    // Huge cases run explicit scans on top of the periodic wakes; gating
    // the draw on fuzz.huge keeps every other case's rng stream (and so
    // its whole op sequence) bit-identical to what it was before huged
    // existed.
    if (fuzz.huge && rng() % 29 == 0) {
      kernel.RunHugeScan();
    }

    // Same gating trick for the numa cases' explicit placement passes.
    if (fuzz.nodes > 1 && rng() % 23 == 0) {
      kernel.RunNumadPass();
    }

    if (fuzz.chaos) {
      // A flipped bit is only guaranteed visible to scrubd (the cheap
      // touch-time checks deliberately skip the rmap cross-check), so
      // sweep the whole PTP population — the pass budget is 64 — before
      // handing the state to the auditor: every audited state is
      // post-detection, with repairs applied and unrepairable damage
      // contained to oops kills, never an abort.
      const uint64_t passes =
          1 + kernel.ptp_allocator().live_ptps() / 64;
      for (uint64_t pass = 0; pass < passes; ++pass) {
        kernel.RunScrubPass();
      }
    }
    const AuditReport report = kernel.AuditInvariants();
    ASSERT_TRUE(report.ok())
        << "after op " << op << ":\n"
        << report.ToString();
  }

  for (Task* task : live) {
    if (task->alive) {
      kernel.Exit(*task);
    }
  }
  if (fuzz.chaos) {
    kernel.RunScrubPass();  // final orphan sweep before the teardown audit
    EXPECT_GT(kernel.fault_injector().total_corruptions(), 0u);
  }
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(kernel.ptp_allocator().live_ptps(), 0u);
  EXPECT_EQ(kernel.phys().CountFrames(FrameKind::kAnon), 0u);
  // Every swap slot was released with its last swap PTE; the compressed
  // pool returned its frames.
  EXPECT_EQ(kernel.zram().live_slots(), 0u);
  EXPECT_EQ(kernel.zram().stored_bytes(), 0u);
  EXPECT_EQ(kernel.phys().CountFrames(FrameKind::kZram), 0u);
  // Every stable frame died with its last mapping and was pruned from the
  // stable tree (the daemon observes frame frees).
  EXPECT_EQ(kernel.ksm().pages_shared(), 0u);
  // The injector really fired; the suite fuzzes the failure paths, not
  // just the happy ones.
  EXPECT_GT(kernel.fault_injector().total_injected(), 0u);
}

std::vector<AuditFuzzCase> AuditFuzzCases() {
  return {
      {101, false, false}, {202, false, false}, {303, true, false},
      {404, true, false},  {505, true, true},   {606, true, true},
      // Swap-enabled cases: the same op mix plus explicit swap-out
      // pressure, with zram pool allocations also failure-injected.
      {711, false, false, 16}, {812, false, false, 16},
      {913, true, false, 16},  {1014, true, false, 16},
      {1115, true, true, 16},  {1216, true, true, 16},
      // KSM cases: ksmd scans (periodic and explicit) interleaved with
      // fork/swap/munmap/fault under the same failure injection. 6 cases
      // x 2000 ops = 12k audited steps with merging active.
      {1317, false, false, 0, true}, {1418, false, false, 16, true},
      {1519, true, false, 0, true},  {1620, true, false, 16, true},
      {1721, true, true, 16, true},  {1822, true, true, 16, true},
      // SMP cases: 4 cores with random migration, under both shootdown
      // policies — every audited step may have flushes still sitting in
      // pending queues (the auditor's exemption logic is on trial too).
      {1923, true, false, 0, false, 4, false},
      {2024, true, false, 0, false, 4, true},
      {2125, true, false, 16, true, 4, false},
      {2226, true, false, 16, true, 4, true},
      {2327, true, true, 16, true, 4, true},
      // Chaos cases: on top of the allocation-failure injection, seeded
      // bit flips corrupt live PTE words, TLB tags, and (with swap) zram
      // slot bytes. scrubd repairs what it can; the unrepairable rest is
      // contained to oops kills of the sharers — never a whole-process
      // abort, and never an audit violation.
      {2428, true, false, 0, false, 1, false, true},
      {2529, true, true, 0, false, 1, false, true},
      {2630, true, false, 16, false, 1, false, true},
      {2731, true, false, 16, true, 1, false, true},
      {2832, true, false, 0, false, 4, true, true},
      // Huge cases: huged collapses (in place and by migration, with the
      // lazy unshare under shared PTPs) interleaved with the splits that
      // munmap/mprotect/COW force, under the same allocation-failure
      // injection — including the contiguous-run site migration depends
      // on. The KSM case also runs the unmerge policy; the chaos case
      // lets scrubd's replica vote race against live collapses.
      {2933, false, false, 0, false, 1, false, false, true},
      {3034, true, false, 0, false, 1, false, false, true},
      {3135, true, false, 16, true, 1, false, false, true},
      {3236, true, false, 0, false, 1, false, true, true},
      {3337, true, true, 16, true, 4, true, false, true},
      // NUMA cases: a 2- or 4-node machine with the numaPTE engine
      // write-through-replicating (or migrating) under the same op mix —
      // replicas must stay bit-identical to their masters through fork,
      // munmap, COW, swap, reclaim's replica sacrifice, and teardown.
      // The chaos case adds seeded replica-word rot for scrubd's
      // majority vote to repair.
      {3438, true, false, 0, false, 4, false, false, false, 4, 1},
      {3539, true, false, 16, false, 4, true, false, false, 2, 1},
      {3640, true, false, 0, false, 4, false, false, false, 4, 2},
      {3741, false, false, 0, false, 4, false, false, false, 4, 1},
      {3842, true, false, 16, true, 4, false, false, true, 2, 1},
      {3943, true, false, 0, false, 4, false, true, false, 4, 1},
  };
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, AuditFuzzTest, ::testing::ValuesIn(AuditFuzzCases()),
    [](const ::testing::TestParamInfo<AuditFuzzCase>& param_info) {
      const AuditFuzzCase& c = param_info.param;
      std::string name = "seed" + std::to_string(c.seed);
      name += c.share_ptps ? "_shared" : "_stock";
      if (c.hw_l1_wp) name += "_l1wp";
      if (c.swap_mb > 0) name += "_swap";
      if (c.ksm) name += "_ksm";
      if (c.cores > 1) name += "_c" + std::to_string(c.cores);
      if (c.batched) name += "_batched";
      if (c.chaos) name += "_chaos";
      if (c.huge) name += "_huge";
      if (c.nodes > 1) {
        name += "_numa" + std::to_string(c.nodes);
        name += c.placement == 1 ? "r" : c.placement == 2 ? "m" : "l";
      }
      return name;
    });

}  // namespace
}  // namespace sat
