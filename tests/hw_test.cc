// Unit tests for the core model: the access pipeline (micro TLB → main
// TLB → walk → abort), context-switch TLB behaviour, the domain-fault
// service path, and kernel-path charging.

#include <gtest/gtest.h>

#include "src/hw/core.h"
#include "src/mem/page_cache.h"
#include "src/mem/phys_memory.h"
#include "src/vm/vm_manager.h"

namespace sat {
namespace {

// A miniature kernel: enough wiring to drive the Core against real page
// tables without the process layer.
class HwTest : public ::testing::Test {
 protected:
  HwTest()
      : phys_(4096 * kPageSize),
        cache_(&phys_),
        alloc_(&phys_, &counters_),
        vm_(&phys_, &cache_, &counters_, &CostModel::Default(),
            VmConfig::Stock()),
        l2_(CacheHierarchy::MakeL2()),
        core_(&CostModel::Default(), &l2_, &counters_,
              FrameToPhys(static_cast<FrameNumber>(phys_.total_frames())),
              CoreConfig{}) {
    core_.set_abort_handler([this](const MemoryAbort& abort) {
      if (current_mm_ == nullptr) {
        return false;
      }
      return vm_.HandleFault(*current_mm_, abort, nullptr).ok;
    });
  }

  std::unique_ptr<MmStruct> NewMm(DomainId domain = kDomainUser) {
    return std::make_unique<MmStruct>(&alloc_, &phys_, &counters_, domain);
  }

  void Use(MmStruct* mm, Asid asid, DomainAccessControl dacr, bool switch_cost) {
    current_mm_ = mm;
    MmuContext context;
    context.asid = asid;
    context.dacr = dacr;
    context.page_table = mm ? &mm->page_table() : nullptr;
    if (switch_cost) {
      core_.SwitchContext(context);
    } else {
      core_.SetContext(context);
    }
  }

  VirtAddr MapFile(MmStruct& mm, VirtAddr at, uint32_t pages, VmProt prot,
                   FileId file, bool global = false) {
    MmapRequest request;
    request.length = pages * kPageSize;
    request.prot = prot;
    request.kind = VmKind::kFilePrivate;
    request.file = file;
    request.fixed_address = at;
    request.global = global;
    return vm_.Mmap(mm, request, nullptr);
  }

  PhysicalMemory phys_;
  PageCache cache_;
  KernelCounters counters_;
  PtpAllocator alloc_;
  VmManager vm_;
  Cache l2_;
  Core core_;
  MmStruct* current_mm_ = nullptr;
};

TEST_F(HwTest, FetchFaultsInPageThenHitsTlb) {
  auto mm = NewMm();
  MapFile(*mm, 0x40000000, 2, VmProt::ReadExec(), 1);
  Use(mm.get(), 1, DomainAccessControl::StockDefault(), false);

  EXPECT_TRUE(core_.FetchLine(0x40000000));
  EXPECT_EQ(counters_.faults_file_backed, 1u);
  EXPECT_EQ(core_.counters().itlb_main_misses, 2u);  // miss, fault, remiss

  const uint64_t misses = core_.counters().itlb_main_misses;
  EXPECT_TRUE(core_.FetchLine(0x40000020));  // same page, micro-TLB hit
  EXPECT_EQ(core_.counters().itlb_main_misses, misses);
  EXPECT_EQ(counters_.faults_file_backed, 1u);  // no new fault
}

TEST_F(HwTest, UnmappedFetchSegfaults) {
  auto mm = NewMm();
  Use(mm.get(), 1, DomainAccessControl::StockDefault(), false);
  EXPECT_FALSE(core_.FetchLine(0x40000000));
}

TEST_F(HwTest, KernelAddressFetchFailsFromUserPipeline) {
  auto mm = NewMm();
  Use(mm.get(), 1, DomainAccessControl::StockDefault(), false);
  EXPECT_FALSE(core_.FetchLine(0xC0000000));
}

TEST_F(HwTest, StoreDrivesCowThroughPermissionFault) {
  auto mm = NewMm();
  MmapRequest request;
  request.length = kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  request.fixed_address = 0x50000000;
  vm_.Mmap(*mm, request, nullptr);
  Use(mm.get(), 1, DomainAccessControl::StockDefault(), false);

  // Load first: zero page mapped read-only; the store then COWs.
  EXPECT_TRUE(core_.Load(0x50000000));
  EXPECT_TRUE(core_.Store(0x50000000));
  EXPECT_EQ(counters_.faults_anonymous, 2u);
  // And the new mapping is writable without further faults.
  const uint64_t faults = counters_.faults_anonymous;
  EXPECT_TRUE(core_.Store(0x50000004));
  EXPECT_EQ(counters_.faults_anonymous, faults);
}

TEST_F(HwTest, ContextSwitchFlushesMicroTlb) {
  auto mm = NewMm();
  MapFile(*mm, 0x40000000, 1, VmProt::ReadExec(), 1);
  Use(mm.get(), 1, DomainAccessControl::StockDefault(), false);
  EXPECT_TRUE(core_.FetchLine(0x40000000));

  const uint64_t micro_misses = core_.counters().micro_tlb_misses;
  Use(mm.get(), 1, DomainAccessControl::StockDefault(), true);  // switch
  EXPECT_TRUE(core_.FetchLine(0x40000000));
  // Micro TLB was flushed, so this is a micro miss — but the main TLB
  // (ASIDs enabled) still holds the entry.
  EXPECT_GT(core_.counters().micro_tlb_misses, micro_misses);
  EXPECT_EQ(counters_.faults_file_backed, 1u);
}

TEST_F(HwTest, NoAsidSwitchFlushesNonGlobalOnly) {
  CoreConfig config;
  config.asids_enabled = false;
  Core core(&CostModel::Default(), &l2_, &counters_,
            FrameToPhys(static_cast<FrameNumber>(phys_.total_frames())),
            config);
  core.set_abort_handler([this](const MemoryAbort& abort) {
    return vm_.HandleFault(*current_mm_, abort, nullptr).ok;
  });

  auto mm = NewMm(kDomainZygote);
  MapFile(*mm, 0x40000000, 1, VmProt::ReadExec(), 1, /*global=*/false);
  MapFile(*mm, 0x40400000, 1, VmProt::ReadExec(), 2, /*global=*/true);
  vm_.set_config(VmConfig::SharedPtpAndTlb());

  current_mm_ = mm.get();
  MmuContext context;
  context.asid = 1;
  context.dacr = DomainAccessControl::ZygoteLike();
  context.page_table = &mm->page_table();
  core.SetContext(context);
  EXPECT_TRUE(core.FetchLine(0x40000000));
  EXPECT_TRUE(core.FetchLine(0x40400000));

  const uint64_t main_misses_before = core.counters().itlb_main_misses;
  core.SwitchContext(context);  // flushes all non-global entries
  EXPECT_TRUE(core.FetchLine(0x40400000));  // global survived: no main miss
  EXPECT_EQ(core.counters().itlb_main_misses, main_misses_before);
  EXPECT_TRUE(core.FetchLine(0x40000000));  // non-global was flushed
  EXPECT_EQ(core.counters().itlb_main_misses, main_misses_before + 1);
  vm_.set_config(VmConfig::Stock());
}

TEST_F(HwTest, DomainFaultFlushesAndRetriesIntoOwnTable) {
  vm_.set_config(VmConfig::SharedPtpAndTlb());

  // A zygote-like process loads a global TLB entry for 0x40000000.
  auto zygote_mm = NewMm(kDomainZygote);
  MapFile(*zygote_mm, 0x40000000, 1, VmProt::ReadExec(), 1, /*global=*/true);
  Use(zygote_mm.get(), 1, DomainAccessControl::ZygoteLike(), false);
  EXPECT_TRUE(core_.FetchLine(0x40000000));

  // A non-zygote process maps the same VA to a different file, and has no
  // access to the zygote domain.
  auto other_mm = NewMm(kDomainUser);
  MapFile(*other_mm, 0x40000000, 1, VmProt::ReadExec(), 99, /*global=*/false);
  Use(other_mm.get(), 2, DomainAccessControl::StockDefault(), true);

  EXPECT_TRUE(core_.FetchLine(0x40000000));
  EXPECT_EQ(counters_.domain_faults, 1u);
  // The retry walked the non-zygote process's own table: its file page.
  const auto ref = other_mm->page_table().FindPte(0x40000000);
  ASSERT_TRUE(ref.has_value());
  EXPECT_TRUE(ref->ptp->hw(ref->index).valid());

  // Back on the zygote side, everything still works (its entry was the
  // one flushed, but the walk restores it).
  Use(zygote_mm.get(), 1, DomainAccessControl::ZygoteLike(), true);
  EXPECT_TRUE(core_.FetchLine(0x40000000));
  EXPECT_EQ(counters_.domain_faults, 1u);  // no new fault
  vm_.set_config(VmConfig::Stock());
}

TEST_F(HwTest, L1WriteProtectAblationFaultsOnSharedSlotWrite) {
  VmConfig config = VmConfig::SharedPtp();
  config.hw_l1_write_protect = true;
  vm_.set_config(config);

  auto parent = NewMm();
  auto child = NewMm();
  MmapRequest request;
  request.length = kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  request.fixed_address = 0x50000000;
  vm_.Mmap(*parent, request, nullptr);
  vm_.HandleFault(*parent,
                  MemoryAbort{FaultStatus::kTranslation, 0x50000000,
                              AccessType::kWrite, false},
                  nullptr);
  vm_.Fork(*parent, *child, nullptr);
  // No per-PTE protection pass happened, yet the write must still fault
  // (L1-level COW) and unshare.
  EXPECT_EQ(counters_.ptes_write_protected, 0u);
  Use(child.get(), 3, DomainAccessControl::StockDefault(), false);
  EXPECT_TRUE(core_.Store(0x50000000));
  EXPECT_EQ(counters_.ptps_unshared, 1u);
  EXPECT_FALSE(child->page_table().SlotNeedsCopy(0x50000000));
  vm_.set_config(VmConfig::Stock());
}

TEST_F(HwTest, NoPageTableContextSegfaults) {
  Use(nullptr, 0, DomainAccessControl::StockDefault(), false);
  MmuContext context;  // page_table == nullptr (kernel thread)
  core_.SetContext(context);
  current_mm_ = nullptr;
  EXPECT_FALSE(core_.FetchLine(0x40000000));
}

TEST_F(HwTest, FetchBurstPropagatesFailure) {
  auto mm = NewMm();
  Use(mm.get(), 1, DomainAccessControl::StockDefault(), false);
  EXPECT_FALSE(core_.FetchBurst(0x40000000, 16));  // unmapped
}

TEST_F(HwTest, FetchBurstChargesTailCycles) {
  auto mm = NewMm();
  MapFile(*mm, 0x40000000, 1, VmProt::ReadExec(), 1);
  Use(mm.get(), 1, DomainAccessControl::StockDefault(), false);
  core_.FetchLine(0x40000000);  // warm everything

  const CoreCounters before = core_.counters();
  EXPECT_TRUE(core_.FetchBurst(0x40000000, 10));
  const CoreCounters delta = core_.counters() - before;
  EXPECT_EQ(delta.inst_fetch_lines, 10u);
  EXPECT_EQ(delta.cycles, 10 * CostModel::Default().l1_hit);
}

TEST_F(HwTest, RunKernelPathChargesCyclesAndLines) {
  const CoreCounters before = core_.counters();
  core_.RunKernelPath(KernelPath::kFaultHandler, 1000, 50);
  const CoreCounters delta = core_.counters() - before;
  EXPECT_EQ(delta.kernel_inst_lines, 50u);
  EXPECT_GE(delta.cycles, 1000u + 50);  // base + at least a cycle per line
}

TEST_F(HwTest, KernelPathsRotateThroughDistinctTextWindows) {
  // Each invocation continues through the path's text window (the fault
  // path is bigger than the L1I, so faults keep costing I-cache misses).
  core_.RunKernelPath(KernelPath::kContextSwitch, 0, 10);
  const uint64_t misses_first = core_.counters().l1i_misses;
  EXPECT_EQ(misses_first, 10u);  // cold window
  core_.RunKernelPath(KernelPath::kContextSwitch, 0, 10);
  EXPECT_EQ(core_.counters().l1i_misses, misses_first + 10);  // rotated on

  // The context-switch window (512 lines = 16 KB) fits the L1I: once the
  // rotation wraps, its lines are warm again.
  core_.RunKernelPath(KernelPath::kContextSwitch, 0, 512 - 20);
  const uint64_t misses_wrapped = core_.counters().l1i_misses;
  core_.RunKernelPath(KernelPath::kContextSwitch, 0, 20);
  EXPECT_EQ(core_.counters().l1i_misses, misses_wrapped);

  // A different path uses a distinct window: cold lines again.
  core_.RunKernelPath(KernelPath::kBinder, 0, 10);
  EXPECT_EQ(core_.counters().l1i_misses, misses_wrapped + 10);
}

TEST_F(HwTest, WalkChargesTlbStallsNotDcacheStalls) {
  auto mm = NewMm();
  MapFile(*mm, 0x40000000, 1, VmProt::ReadExec(), 1);
  Use(mm.get(), 1, DomainAccessControl::StockDefault(), false);
  core_.FetchLine(0x40000000);
  EXPECT_GT(core_.counters().itlb_stall_cycles, 0u);
  EXPECT_EQ(core_.counters().dcache_stall_cycles, 0u);
}

TEST_F(HwTest, WalkSetsReferencedBit) {
  auto mm = NewMm();
  MapFile(*mm, 0x40000000, 1, VmProt::ReadExec(), 1);
  Use(mm.get(), 1, DomainAccessControl::StockDefault(), false);
  core_.FetchLine(0x40000000);
  const auto ref = mm->page_table().FindPte(0x40000000);
  EXPECT_TRUE(ref->ptp->sw(ref->index).young());
}

}  // namespace
}  // namespace sat
