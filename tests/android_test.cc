// Unit tests for the Android layer: zygote boot, app forking, the
// touch-replay app runner, the launch simulator, and the binder
// microbenchmark.

#include <gtest/gtest.h>

#include "src/android/app_runner.h"
#include "src/android/binder.h"
#include "src/android/launch.h"
#include "src/android/zygote.h"

namespace sat {
namespace {

ZygoteParams Params(bool share_ptps, bool share_tlb = false,
                    MappingPolicy policy = MappingPolicy::kOriginal) {
  ZygoteParams params;
  params.kernel.vm.share_ptps = share_ptps;
  params.kernel.vm.share_tlb_global = share_tlb;
  params.mapping_policy = policy;
  return params;
}

TEST(ZygoteTest, BootProducesPreloadedZygote) {
  ZygoteSystem system(Params(true, true));
  Task* zygote = system.zygote();
  ASSERT_NE(zygote, nullptr);
  EXPECT_TRUE(zygote->zygote);
  EXPECT_EQ(zygote->mm->user_domain(), kDomainZygote);
  // All 88 objects mapped.
  EXPECT_EQ(system.loader().zygote_layout().size(), 88u);
  // Boot populated thousands of instruction PTEs (Table 4: ~5,900).
  const AppFootprint& boot = system.zygote_boot_footprint();
  EXPECT_GT(boot.pages.size(), 4500u);
  uint32_t populated = system.CountInheritedPtes(*zygote, boot);
  EXPECT_EQ(populated, boot.pages.size());
  // And the system server exists as the first child.
  EXPECT_TRUE(system.system_server()->zygote_child);
}

TEST(ZygoteTest, ForkAppInheritsAddressSpace) {
  ZygoteSystem system(Params(true));
  Task* app = system.ForkApp("test_app");
  EXPECT_TRUE(app->zygote_child);
  EXPECT_EQ(app->mm->vma_count(), system.zygote()->mm->vma_count());
  // Inherited PTEs: the whole boot footprint is visible without faults.
  EXPECT_EQ(system.CountInheritedPtes(*app, system.zygote_boot_footprint()),
            system.zygote_boot_footprint().pages.size());
}

TEST(ZygoteTest, StockForkInheritsNoFilePtes) {
  ZygoteSystem system(Params(false));
  Task* app = system.ForkApp("test_app");
  EXPECT_EQ(system.CountInheritedPtes(*app, system.zygote_boot_footprint()), 0u);
}

TEST(ZygoteTest, VaResolutionMatchesLayout) {
  ZygoteSystem system(Params(false));
  const LibraryImage* libc = system.catalog().FindByName("libc.so");
  const MappedLibrary* mapped = system.loader().FindZygoteMapping(libc->id);
  EXPECT_EQ(system.CodePageVa(libc->id, 0), mapped->code_base);
  EXPECT_EQ(system.CodePageVa(libc->id, 3), mapped->code_base + 3 * kPageSize);
  EXPECT_EQ(system.DataPageVa(libc->id, 1), mapped->data_base + kPageSize);
}

TEST(ZygoteTest, Table4ForkShape) {
  // The zygote fork under the three kernels (Table 4): sharing is fastest
  // and allocates only the stack PTP; copying PTEs is slowest.
  ZygoteSystem shared(Params(true));
  const ForkResult shared_fork = shared.ForkAppWithStats("a").stats;

  ZygoteSystem stock(Params(false));
  const ForkResult stock_fork = stock.ForkAppWithStats("a").stats;

  ZygoteParams copied_params = Params(false);
  copied_params.kernel.vm.copy_zygote_code_ptes_at_fork = true;
  ZygoteSystem copied(copied_params);
  const ForkResult copied_fork = copied.ForkAppWithStats("a").stats;

  EXPECT_EQ(shared_fork.child_ptps_allocated, 1u);  // just the stack
  EXPECT_LE(shared_fork.ptes_copied, 10u);
  EXPECT_GT(shared_fork.slots_shared, 50u);

  EXPECT_GT(stock_fork.ptes_copied, 3000u);   // anon + COW'd data
  EXPECT_GT(stock_fork.child_ptps_allocated, 30u);

  EXPECT_GT(copied_fork.ptes_copied, stock_fork.ptes_copied + 4000);

  // Cycle ordering: shared < stock < copied, roughly 1 : 2 : 3.5.
  EXPECT_LT(shared_fork.cycles * 17 / 10, stock_fork.cycles);
  EXPECT_LT(stock_fork.cycles, copied_fork.cycles);
}

TEST(AppRunnerTest, RunProducesConsistentStats) {
  ZygoteSystem system(Params(true));
  LibraryCatalog& catalog = system.catalog();
  WorkloadFactory& factory = system.workload();
  (void)catalog;
  AppRunner runner(&system);
  const AppFootprint fp = factory.Generate(AppProfile::Named("Email"));
  const AppRunStats stats = runner.Run(fp);
  EXPECT_GT(stats.inherited_ptes, 0u);
  EXPECT_GT(stats.file_faults, 0u);
  EXPECT_GT(stats.present_slots, 0u);
  EXPECT_GT(stats.shared_slots, 0u);
  EXPECT_LE(stats.shared_slots, stats.present_slots);
}

TEST(AppRunnerTest, SharingReducesFileFaults) {
  // Figure 10's mechanism: PTEs inherited in shared PTPs never fault.
  auto run = [](bool share) {
    ZygoteSystem system(Params(share));
    AppRunner runner(&system);
    const AppFootprint fp =
        system.workload().Generate(AppProfile::Named("Google Calendar"));
    return runner.Run(fp);
  };
  const AppRunStats stock = run(false);
  const AppRunStats shared = run(true);
  EXPECT_LT(shared.file_faults, stock.file_faults);
  EXPECT_LT(shared.ptps_allocated, stock.ptps_allocated);
  EXPECT_EQ(stock.shared_slots, 0u);
}

TEST(AppRunnerTest, WarmRunInheritsMoreThanCold) {
  // Table 3: a reinvoked app inherits the PTEs its first run populated
  // into the shared PTPs.
  ZygoteSystem system(Params(true));
  AppRunner runner(&system);
  const AppFootprint fp =
      system.workload().Generate(AppProfile::Named("Adobe Reader"));
  const AppRunStats cold = runner.Run(fp);
  const AppRunStats warm = runner.Run(fp);
  EXPECT_GT(warm.inherited_ptes, cold.inherited_ptes);
  EXPECT_LT(warm.file_faults, cold.file_faults);
}

TEST(AppRunnerTest, DataWritesUnshareUnderOriginalAlignment) {
  ZygoteSystem system(Params(true, false, MappingPolicy::kOriginal));
  AppRunner runner(&system);
  const AppFootprint fp = system.workload().Generate(AppProfile::Named("WPS"));
  const AppRunStats stats = runner.Run(fp);
  EXPECT_GT(stats.ptps_unshared, 0u);
  EXPECT_GT(stats.ptes_copied, 0u);
}

TEST(AppRunnerTest, TwoMbAlignmentSharesMoreSlots) {
  // Figure 12: 2 MB alignment raises the shared fraction of PTPs.
  auto shared_fraction = [](MappingPolicy policy) {
    ZygoteSystem system(Params(true, false, policy));
    AppRunner runner(&system);
    const AppFootprint fp =
        system.workload().Generate(AppProfile::Named("Android Browser"));
    // Keep the app alive so end-of-run shape reflects steady state.
    return runner.Run(fp, /*exit_after=*/false).SharedSlotFraction();
  };
  const double original = shared_fraction(MappingPolicy::kOriginal);
  const double aligned = shared_fraction(MappingPolicy::kTwoMbAligned);
  EXPECT_GT(aligned, original);
}

TEST(LaunchTest, LaunchRunsAndSharingHelps) {
  LaunchParams launch_params;
  launch_params.fetch_entries = 8000;  // trimmed for test time

  ZygoteSystem stock(Params(false));
  LaunchSimulator stock_sim(&stock, launch_params);
  LaunchResult stock_result = stock_sim.LaunchOnce(0);
  EXPECT_GT(stock_result.exec_cycles, 0u);
  EXPECT_GT(stock_result.file_faults, 1000u);  // ~the paper's 1,900

  ZygoteSystem shared(Params(true, true));
  LaunchSimulator shared_sim(&shared, launch_params);
  // Warm up one launch; measure the second (steady state, as the paper's
  // repeated-launch medians do).
  shared_sim.LaunchOnce(0);
  LaunchResult shared_result = shared_sim.LaunchOnce(1);
  EXPECT_LT(shared_result.file_faults, stock_result.file_faults / 3);
  EXPECT_LT(shared_result.exec_cycles, stock_result.exec_cycles);
  EXPECT_LT(shared_result.ptps_allocated, stock_result.ptps_allocated);
}

TEST(LaunchTest, RepeatedLaunchesConvergeUnderSharing) {
  ZygoteParams params = Params(true, true);
  ZygoteSystem system(params);
  LaunchParams launch_params;
  launch_params.fetch_entries = 6000;
  LaunchSimulator sim(&system, launch_params);
  const LaunchResult first = sim.LaunchOnce(0);
  const LaunchResult third = sim.LaunchOnce(2);
  // Populations persist in shared PTPs: later launches fault less.
  EXPECT_LT(third.file_faults, first.file_faults);
}

TEST(BinderTest, TransactionsRunAndTlbSharingReducesStalls) {
  BinderParams bench_params;
  bench_params.transactions = 800;
  bench_params.warmup_transactions = 200;

  ZygoteParams stock_params = Params(true, false);
  ZygoteSystem stock(stock_params);
  BinderBenchmark stock_bench(&stock, bench_params);
  const BinderResult stock_result = stock_bench.Run();
  EXPECT_GT(stock_result.client.itlb_stall_cycles, 0u);
  EXPECT_GT(stock_result.server.inst_lines, 0u);

  ZygoteParams shared_params = Params(true, true);
  ZygoteSystem shared(shared_params);
  BinderBenchmark shared_bench(&shared, bench_params);
  const BinderResult shared_result = shared_bench.Run();

  EXPECT_LT(shared_result.client.itlb_main_misses,
            stock_result.client.itlb_main_misses);
  EXPECT_LT(shared_result.client.itlb_stall_cycles,
            stock_result.client.itlb_stall_cycles);
  EXPECT_LE(shared_result.server.itlb_stall_cycles,
            stock_result.server.itlb_stall_cycles);
}

TEST(BinderTest, AsidsBeatFlushing) {
  // Figure 13's other dimension: with ASIDs disabled every switch flushes
  // non-global entries, so stalls rise sharply.
  BinderParams bench_params;
  bench_params.transactions = 600;
  bench_params.warmup_transactions = 150;

  ZygoteParams with_asids = Params(true, false);
  ZygoteSystem a(with_asids);
  const BinderResult with_result = BinderBenchmark(&a, bench_params).Run();

  ZygoteParams without_asids = Params(true, false);
  without_asids.kernel.core.asids_enabled = false;
  ZygoteSystem b(without_asids);
  const BinderResult without_result = BinderBenchmark(&b, bench_params).Run();

  EXPECT_GT(without_result.client.itlb_stall_cycles,
            with_result.client.itlb_stall_cycles);
  EXPECT_GT(without_result.server.itlb_stall_cycles,
            with_result.server.itlb_stall_cycles);
}

TEST(LaunchTest, LaunchWindowIsDeterministicPerRound) {
  // Same system, same round index => identical trace => identical window
  // counters (determinism is what makes the box plots meaningful).
  auto run = []() {
    ZygoteSystem system(Params(true, true));
    LaunchParams launch_params;
    launch_params.fetch_entries = 5000;
    LaunchSimulator sim(&system, launch_params);
    sim.LaunchOnce(0);
    return sim.LaunchOnce(1);
  };
  const LaunchResult a = run();
  const LaunchResult b = run();
  EXPECT_EQ(a.exec_cycles, b.exec_cycles);
  EXPECT_EQ(a.file_faults, b.file_faults);
  EXPECT_EQ(a.icache_stall_cycles, b.icache_stall_cycles);
}

TEST(LaunchTest, RoundsVaryButOnlyModestly) {
  ZygoteSystem system(Params(true, true));
  LaunchParams launch_params;
  launch_params.fetch_entries = 5000;
  LaunchSimulator sim(&system, launch_params);
  sim.LaunchOnce(0);
  const LaunchResult r1 = sim.LaunchOnce(1);
  const LaunchResult r2 = sim.LaunchOnce(2);
  EXPECT_NE(r1.exec_cycles, r2.exec_cycles);  // per-round trace jitter
  const double ratio = static_cast<double>(r1.exec_cycles) /
                       static_cast<double>(r2.exec_cycles);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(BinderTest, ZeroWarmupStillMeasuresEveryTransaction) {
  BinderParams bench_params;
  bench_params.transactions = 50;
  bench_params.warmup_transactions = 0;
  ZygoteSystem system(Params(true, true));
  BinderBenchmark bench(&system, bench_params);
  const BinderResult result = bench.Run();
  EXPECT_EQ(result.transactions, 50u);
  EXPECT_GT(result.client.inst_lines, 0u);
  EXPECT_GT(result.file_faults, 0u);  // cold working sets fault in
}

TEST(BinderTest, NoDomainFaultsBetweenZygoteLikePeers) {
  BinderParams bench_params;
  bench_params.transactions = 100;
  bench_params.warmup_transactions = 20;
  ZygoteSystem system(Params(true, true));
  const BinderResult result = BinderBenchmark(&system, bench_params).Run();
  EXPECT_EQ(result.domain_faults, 0u);
}

}  // namespace
}  // namespace sat
