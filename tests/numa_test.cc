// Tests for the NUMA page-table placement engine (src/numa): numad
// promotion and migration policy, write-through replica coherence,
// replica reclaim under pressure, scrubd majority-vote repair, and the
// per-node allocator accounting the engine rides on.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/sat.h"

namespace sat {
namespace {

KernelParams NumaParams(uint32_t cores, uint32_t nodes,
                        PtPlacement placement, uint32_t threshold = 4) {
  KernelParams params;
  params.num_cores = cores;
  params.num_nodes = nodes;
  params.pt_placement = placement;
  params.numad_remote_threshold = threshold;
  params.vm = VmConfig::SharedPtpAndTlb();
  return params;
}

MmapRequest Anon(VirtAddr at, uint32_t pages) {
  MmapRequest request;
  request.length = pages * kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  request.fixed_address = at;
  return request;
}

TEST(NumaEngineTest, SingleNodeMachineHasNoEngine) {
  Kernel kernel{NumaParams(4, 1, PtPlacement::kReplicate)};
  EXPECT_EQ(kernel.numa(), nullptr);
}

TEST(NumaEngineTest, ReplicatePromotesHotPtpAndWalksGoLocal) {
  // Cores {0,1} on node 0, {2,3} on node 1.
  Kernel kernel{NumaParams(4, 2, PtPlacement::kReplicate)};
  ASSERT_NE(kernel.numa(), nullptr);
  Task* task = kernel.CreateTask("t");
  kernel.Mmap(*task, Anon(0x50000000, 4));
  kernel.ScheduleTo(*task, 0);  // first-touch: frames + PTP on node 0
  for (uint32_t i = 0; i < 4; ++i) {
    kernel.TouchPage(*task, 0x50000000 + i * kPageSize, AccessType::kWrite);
  }
  const auto ref = task->mm->page_table().FindPte(0x50000000);
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(kernel.phys().NodeOfFrame(ref->ptp->frame()), 0u);

  // Node-1 touches accumulate remote walks past the promotion threshold.
  kernel.ScheduleTo(*task, 2);
  for (uint32_t i = 0; i < 8; ++i) {
    kernel.TouchPage(*task, 0x50000000 + (i % 4) * kPageSize,
                     AccessType::kRead);
  }
  EXPECT_GE(kernel.counters().numa_remote_walks, 4u);

  EXPECT_EQ(kernel.RunNumadPass(), 1u);
  EXPECT_EQ(kernel.numa()->replicated_ptps(), 1u);
  EXPECT_EQ(kernel.numa()->replica_count(), 1u);  // one per non-home node
  EXPECT_EQ(kernel.numa()->replica_bytes(), kPageSize);
  EXPECT_GE(kernel.counters().numa_replica_promotions, 1u);
  EXPECT_GE(kernel.counters().numad_runs, 1u);
  kernel.numa()->ForEachReplica([&](PtpId id, const NumaEngine::Replica& r) {
    EXPECT_EQ(id, ref->ptp->id());
    EXPECT_EQ(r.node, 1u);
    EXPECT_EQ(kernel.phys().NodeOfFrame(r.frame), 1u);
  });

  // Post-promotion, node-1 walks are served from the replica: the
  // replica-walk counter moves, the remote-walk counter does not.
  const uint64_t remote_before = kernel.counters().numa_remote_walks;
  const uint64_t replica_before = kernel.counters().numa_replica_walks;
  kernel.TouchPage(*task, 0x50000000, AccessType::kRead);
  EXPECT_GT(kernel.counters().numa_replica_walks, replica_before);
  EXPECT_EQ(kernel.counters().numa_remote_walks, remote_before);

  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(NumaEngineTest, WriteThroughKeepsReplicasCoherent) {
  Kernel kernel{NumaParams(4, 2, PtPlacement::kReplicate, /*threshold=*/2)};
  Task* task = kernel.CreateTask("t");
  kernel.Mmap(*task, Anon(0x50000000, 8));
  kernel.ScheduleTo(*task, 0);
  kernel.TouchPage(*task, 0x50000000, AccessType::kWrite);
  kernel.ScheduleTo(*task, 2);
  for (uint32_t i = 0; i < 4; ++i) {
    kernel.TouchPage(*task, 0x50000000, AccessType::kRead);
  }
  ASSERT_EQ(kernel.RunNumadPass(), 1u);

  // Mutations after promotion — a fresh fault (Set) and an unmap (Clear)
  // — must land in the replica through the write-through observer.
  kernel.TouchPage(*task, 0x50000000 + kPageSize, AccessType::kWrite);
  kernel.Munmap(*task, 0x50000000, kPageSize);
  EXPECT_GE(kernel.counters().numa_replica_updates, 2u);

  const auto ref = task->mm->page_table().FindPte(0x50000000 + kPageSize);
  ASSERT_TRUE(ref.has_value());
  uint32_t replicas_seen = 0;
  kernel.numa()->ForEachReplica([&](PtpId id, const NumaEngine::Replica& r) {
    replicas_seen++;
    for (uint32_t i = 0; i < kPtesPerPtp; ++i) {
      ASSERT_EQ(r.words[i], kernel.ptp_allocator().Get(id).hw(i).raw())
          << "replica word " << i << " desynced";
    }
  });
  EXPECT_EQ(replicas_seen, 1u);
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(NumaEngineTest, MigrateMovesSoleOwnerPtpToDominantNode) {
  Kernel kernel{NumaParams(4, 2, PtPlacement::kMigrate, /*threshold=*/4)};
  Task* task = kernel.CreateTask("t");
  kernel.Mmap(*task, Anon(0x50000000, 2));
  kernel.ScheduleTo(*task, 0);
  kernel.TouchPage(*task, 0x50000000, AccessType::kWrite);
  const auto ref = task->mm->page_table().FindPte(0x50000000);
  ASSERT_TRUE(ref.has_value());
  ASSERT_EQ(kernel.phys().NodeOfFrame(ref->ptp->frame()), 0u);

  kernel.ScheduleTo(*task, 2);
  for (uint32_t i = 0; i < 8; ++i) {
    kernel.TouchPage(*task, 0x50000000, AccessType::kRead);
  }
  EXPECT_EQ(kernel.RunNumadPass(), 1u);
  EXPECT_EQ(kernel.counters().numa_ptp_migrations, 1u);
  // The PTP now lives wholesale on the dominant accessor's node; no
  // replica memory was spent.
  EXPECT_EQ(kernel.phys().NodeOfFrame(ref->ptp->frame()), 1u);
  EXPECT_EQ(kernel.numa()->replica_count(), 0u);

  // Translations were untouched; the page still reads fine and the
  // sharer count survived the frame move.
  EXPECT_EQ(kernel.ptp_allocator().SharerCount(ref->ptp->id()), 1u);
  EXPECT_TRUE(kernel.TouchPage(*task, 0x50000000, AccessType::kRead));
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(NumaEngineTest, ExitDropsReplicasWithTheirMaster) {
  Kernel kernel{NumaParams(4, 2, PtPlacement::kReplicate, /*threshold=*/2)};
  Task* task = kernel.CreateTask("t");
  kernel.Mmap(*task, Anon(0x50000000, 2));
  kernel.ScheduleTo(*task, 0);
  kernel.TouchPage(*task, 0x50000000, AccessType::kWrite);
  kernel.ScheduleTo(*task, 2);
  for (uint32_t i = 0; i < 4; ++i) {
    kernel.TouchPage(*task, 0x50000000, AccessType::kRead);
  }
  ASSERT_EQ(kernel.RunNumadPass(), 1u);
  ASSERT_EQ(kernel.numa()->replica_count(), 1u);

  const uint64_t free_before = kernel.phys().free_frames();
  kernel.Exit(*task);
  // No stale replica may outlive its master, and the replica frame went
  // back to the allocator along with the task's own memory.
  EXPECT_EQ(kernel.numa()->replica_count(), 0u);
  EXPECT_GT(kernel.phys().free_frames(), free_before);
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(NumaEngineTest, ReclaimSacrificesReplicasAndTheyComeBack) {
  Kernel kernel{NumaParams(4, 2, PtPlacement::kReplicate, /*threshold=*/2)};
  Task* task = kernel.CreateTask("t");
  kernel.Mmap(*task, Anon(0x50000000, 2));
  kernel.ScheduleTo(*task, 0);
  kernel.TouchPage(*task, 0x50000000, AccessType::kWrite);
  kernel.ScheduleTo(*task, 2);
  for (uint32_t i = 0; i < 4; ++i) {
    kernel.TouchPage(*task, 0x50000000, AccessType::kRead);
  }
  ASSERT_EQ(kernel.RunNumadPass(), 1u);

  const uint64_t free_before = kernel.phys().free_frames();
  EXPECT_EQ(kernel.numa()->ReclaimReplicas(1), 1u);
  EXPECT_EQ(kernel.numa()->replica_count(), 0u);
  EXPECT_EQ(kernel.counters().numa_replica_reclaims, 1u);
  EXPECT_EQ(kernel.phys().free_frames(), free_before + 1);

  // The PTP is still walk-hot from node 1, so the next numad pass simply
  // re-promotes it — reclaim trades locality, never correctness.
  kernel.ScheduleTo(*task, 2);
  for (uint32_t i = 0; i < 4; ++i) {
    kernel.TouchPage(*task, 0x50000000, AccessType::kRead);
  }
  EXPECT_EQ(kernel.RunNumadPass(), 1u);
  EXPECT_EQ(kernel.numa()->replica_count(), 1u);
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(NumaEngineTest, ScrubSweepVotesRottenWordsBackToHealth) {
  // Four nodes, one core each: promotion yields three replicas, so
  // {master, r0, r1, r2} can outvote a rotten master 3-to-1.
  Kernel kernel{NumaParams(4, 4, PtPlacement::kReplicate, /*threshold=*/4)};
  Task* task = kernel.CreateTask("t");
  kernel.Mmap(*task, Anon(0x50000000, 2));
  kernel.ScheduleTo(*task, 0);
  kernel.TouchPage(*task, 0x50000000, AccessType::kWrite);
  for (uint32_t core : {1u, 2u, 3u}) {
    kernel.ScheduleTo(*task, core);
    kernel.TouchPage(*task, 0x50000000, AccessType::kRead);
    kernel.TouchPage(*task, 0x50000000, AccessType::kRead);
  }
  ASSERT_EQ(kernel.RunNumadPass(), 1u);
  ASSERT_EQ(kernel.numa()->replica_count(), 3u);

  const auto ref = task->mm->page_table().FindPte(0x50000000);
  ASSERT_TRUE(ref.has_value());
  const PtpId id = ref->ptp->id();
  const uint32_t index = ref->index;
  const uint32_t healthy = ref->ptp->hw(index).raw();

  // Rot in one replica: the master-majority side rewrites the replica.
  ASSERT_TRUE(kernel.numa()->CorruptReplicaForChaos(0, index, 0x2));
  EXPECT_EQ(kernel.numa()->ScrubReplicaSweep(nullptr), 1u);
  EXPECT_EQ(kernel.counters().numa_replica_repairs, 1u);

  // Rot in the master: three bit-identical replicas outvote it, and the
  // RepairHw write-through reconverges everyone on the healthy word.
  kernel.ptp_allocator().Get(id).CorruptHwForChaos(index, 0x2);
  EXPECT_GE(kernel.numa()->ScrubReplicaSweep(nullptr), 1u);
  EXPECT_GE(kernel.counters().numa_master_repairs, 1u);
  EXPECT_EQ(kernel.ptp_allocator().Get(id).hw(index).raw(), healthy);
  kernel.numa()->ForEachReplica(
      [&](PtpId /*ptp*/, const NumaEngine::Replica& r) {
        EXPECT_EQ(r.words[index], healthy);
      });
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(NumaEngineTest, SharedZygotePtpGetsOneReplicaPerNodeNotPerProcess) {
  ZygoteParams zparams;
  zparams.kernel = NumaParams(4, 2, PtPlacement::kReplicate, /*threshold=*/2);
  ZygoteSystem system(zparams);
  Kernel& kernel = system.kernel();
  Task* a = system.ForkApp("a");
  Task* b = system.ForkApp("b");

  const LibraryImage* libc = system.catalog().FindByName("libc.so");
  ASSERT_NE(libc, nullptr);
  const VirtAddr code_va = system.CodePageVa(libc->id, 0);
  // Both apps walk the shared zygote code from node 1.
  kernel.ScheduleTo(*a, 2);
  kernel.ScheduleTo(*b, 3);
  for (uint32_t i = 0; i < 4; ++i) {
    kernel.TouchPage(*a, code_va, AccessType::kExecute);
    kernel.TouchPage(*b, code_va, AccessType::kExecute);
  }
  ASSERT_GE(kernel.RunNumadPass(), 1u);

  // The shared PTP is replicated once per non-home node — never once per
  // sharing process (that is the whole memory argument of sharing).
  bool saw_shared = false;
  std::vector<PtpId> seen;
  kernel.numa()->ForEachReplica([&](PtpId id, const NumaEngine::Replica& r) {
    EXPECT_EQ(r.node, 1u);  // two nodes: only node 1 can hold a replica
    for (PtpId prior : seen) {
      EXPECT_NE(prior, id) << "two replicas of ptp " << id << " on one node";
    }
    seen.push_back(id);
    saw_shared |= kernel.ptp_allocator().SharerCount(id) >= 2;
  });
  EXPECT_TRUE(saw_shared);
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(NumaEngineTest, NumadTicksOffTheKswapdWakePlumbing) {
  KernelParams params = NumaParams(4, 2, PtPlacement::kReplicate,
                                   /*threshold=*/2);
  params.numad_wake_interval = 4;  // every 4th kernel wake point
  Kernel kernel(params);
  Task* task = kernel.CreateTask("t");
  kernel.Mmap(*task, Anon(0x50000000, 8));
  kernel.ScheduleTo(*task, 0);
  kernel.TouchPage(*task, 0x50000000, AccessType::kWrite);
  kernel.ScheduleTo(*task, 2);
  for (uint32_t i = 0; i < 16; ++i) {
    kernel.TouchPage(*task, 0x50000000, AccessType::kRead);
  }
  // No explicit RunNumadPass: the touches alone drove the daemon.
  EXPECT_GE(kernel.counters().numad_runs, 1u);
  EXPECT_GE(kernel.counters().numa_replica_promotions, 1u);
  EXPECT_EQ(kernel.numa()->replica_count(), 1u);
}

// ---------------------------------------------------------------------------
// Per-node allocator accounting (the kswapd-watermark satellite).
// ---------------------------------------------------------------------------

TEST(NumaPhysTest, NodeStrictAndFallbackAccounting) {
  PhysicalMemory phys(64 * kPageSize, /*num_nodes=*/2);
  EXPECT_EQ(phys.free_frames_on_node(0) + phys.free_frames_on_node(1),
            phys.free_frames());

  // Drain node 0 (the zero frame already lives there).
  phys.set_preferred_node(0);
  while (phys.free_frames_on_node(0) > 0) {
    const auto frame = phys.TryAllocFrame(FrameKind::kAnon);
    ASSERT_TRUE(frame.has_value());
    ASSERT_EQ(phys.NodeOfFrame(*frame), 0u);
  }
  EXPECT_EQ(phys.numa_fallbacks(), 0u);

  // Node 0 exhausted: the preferred-node allocation falls back remote and
  // says so; the node-strict variant refuses instead.
  const auto fallback = phys.TryAllocFrame(FrameKind::kAnon);
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(phys.NodeOfFrame(*fallback), 1u);
  EXPECT_EQ(phys.numa_fallbacks(), 1u);
  EXPECT_FALSE(phys.TryAllocFrameOnNode(0, FrameKind::kAnon).has_value());
  const auto strict = phys.TryAllocFrameOnNode(1, FrameKind::kPageTable);
  ASSERT_TRUE(strict.has_value());
  EXPECT_EQ(phys.NodeOfFrame(*strict), 1u);
}

TEST(NumaPhysTest, ContiguousRunsPreferOneNodeAndCountStraddles) {
  // 48 frames, 24 per node: the 16-aligned runs are [0,16) on node 0,
  // [16,32) straddling, [32,48) on node 1.
  PhysicalMemory phys(48 * kPageSize, /*num_nodes=*/2);
  phys.set_preferred_node(1);
  const auto run = phys.TryAllocContiguousFrames(16, FrameKind::kAnon);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(phys.NodeOfFrame(*run), phys.NodeOfFrame(*run + 15));
  EXPECT_EQ(phys.numa_cross_node_runs(), 0u);

  // Exhaust everything, then free exactly the straddling window: only a
  // cross-node run can satisfy the next request, and it is counted.
  std::vector<FrameNumber> singles;
  while (const auto f = phys.TryAllocFrame(FrameKind::kAnon)) {
    singles.push_back(*f);
  }
  for (FrameNumber f = 16; f < 32; ++f) {
    phys.UnrefFrame(f);
  }
  const auto straddle = phys.TryAllocContiguousFrames(16, FrameKind::kAnon);
  ASSERT_TRUE(straddle.has_value());
  EXPECT_EQ(*straddle, 16u);
  EXPECT_NE(phys.NodeOfFrame(*straddle), phys.NodeOfFrame(*straddle + 15));
  EXPECT_EQ(phys.numa_cross_node_runs(), 1u);
}

TEST(NumaKernelTest, KswapdWakesOnNodePressureAndEatsReplicasFirst) {
  // Small machine with swap so kswapd can actually run; node 0 will be
  // squeezed while the global watermark still looks healthy.
  KernelParams params = NumaParams(2, 2, PtPlacement::kReplicate,
                                   /*threshold=*/2);
  params.phys_bytes = 16ull * 1024 * 1024;
  params.swap_bytes = 16ull * 1024 * 1024;
  Kernel kernel(params);
  Task* task = kernel.CreateTask("t");
  kernel.ScheduleTo(*task, 0);
  // Build one replica to sacrifice.
  kernel.Mmap(*task, Anon(0x50000000, 2));
  kernel.TouchPage(*task, 0x50000000, AccessType::kWrite);
  kernel.ScheduleTo(*task, 1);
  for (uint32_t i = 0; i < 4; ++i) {
    kernel.TouchPage(*task, 0x50000000, AccessType::kRead);
  }
  ASSERT_EQ(kernel.RunNumadPass(), 1u);
  ASSERT_EQ(kernel.numa()->replica_count(), 1u);

  // Direct pressure relief must free the replica before swapping pages.
  EXPECT_TRUE(kernel.RelieveMemoryPressure(nullptr));
  EXPECT_EQ(kernel.numa()->replica_count(), 0u);
  EXPECT_EQ(kernel.counters().numa_replica_reclaims, 1u);
  EXPECT_EQ(kernel.counters().direct_reclaims, 0u);
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace sat
