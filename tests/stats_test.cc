// Unit tests for counters and statistics helpers.

#include <gtest/gtest.h>

#include <sstream>

#include "src/stats/counters.h"
#include "src/stats/summary.h"

namespace sat {
namespace {

TEST(CountersTest, KernelCounterArithmetic) {
  KernelCounters a;
  a.faults_file_backed = 10;
  a.ptps_allocated = 5;
  a.ptes_copied = 100;
  KernelCounters b;
  b.faults_file_backed = 3;
  b.ptps_allocated = 2;
  b.ptes_copied = 40;
  const KernelCounters diff = a - b;
  EXPECT_EQ(diff.faults_file_backed, 7u);
  EXPECT_EQ(diff.ptps_allocated, 3u);
  EXPECT_EQ(diff.ptes_copied, 60u);

  KernelCounters sum = b;
  sum += diff;
  EXPECT_EQ(sum.faults_file_backed, a.faults_file_backed);
  EXPECT_EQ(sum.ptes_copied, a.ptes_copied);
}

TEST(CountersTest, CoreCounterArithmetic) {
  CoreCounters a;
  a.cycles = 1000;
  a.icache_stall_cycles = 100;
  a.itlb_main_misses = 7;
  CoreCounters b;
  b.cycles = 400;
  b.icache_stall_cycles = 30;
  b.itlb_main_misses = 2;
  const CoreCounters diff = a - b;
  EXPECT_EQ(diff.cycles, 600u);
  EXPECT_EQ(diff.icache_stall_cycles, 70u);
  EXPECT_EQ(diff.itlb_main_misses, 5u);
}

TEST(CountersTest, ToStringMentionsKeyFields) {
  KernelCounters counters;
  counters.faults_file_backed = 42;
  EXPECT_NE(counters.ToString().find("faults_file_backed=42"),
            std::string::npos);
  CoreCounters core;
  core.cycles = 7;
  EXPECT_NE(core.ToString().find("cycles=7"), std::string::npos);
}

// Sentinel round-trip: every field in the X-macro lists must appear in
// ToString with its exact value. Guards against a field being added to the
// struct but dropped from printing (the original bug: ptes_faulted_around,
// pages_reclaimed, ptes_cleared_by_reclaim and the tlb_*_flushes counters
// were silently missing from KernelCounters::ToString).
TEST(CountersTest, ToStringRoundTripsEveryField) {
  KernelCounters kernel;
  uint64_t sentinel = 1000;
#define SAT_SET_FIELD(field) kernel.field = sentinel++;
  SAT_KERNEL_COUNTER_FIELDS(SAT_SET_FIELD)
#undef SAT_SET_FIELD
  const std::string ks = kernel.ToString();
  sentinel = 1000;
#define SAT_CHECK_FIELD(field)                                       \
  EXPECT_NE(                                                         \
      ks.find(std::string(#field) + "=" + std::to_string(sentinel++)), \
      std::string::npos)                                             \
      << #field << " missing from " << ks;
  SAT_KERNEL_COUNTER_FIELDS(SAT_CHECK_FIELD)
#undef SAT_CHECK_FIELD

  CoreCounters core;
  sentinel = 5000;
#define SAT_SET_FIELD(field) core.field = sentinel++;
  SAT_CORE_COUNTER_FIELDS(SAT_SET_FIELD)
#undef SAT_SET_FIELD
  const std::string cs = core.ToString();
  sentinel = 5000;
#define SAT_CHECK_FIELD(field)                                       \
  EXPECT_NE(                                                         \
      cs.find(std::string(#field) + "=" + std::to_string(sentinel++)), \
      std::string::npos)                                             \
      << #field << " missing from " << cs;
  SAT_CORE_COUNTER_FIELDS(SAT_CHECK_FIELD)
#undef SAT_CHECK_FIELD
}

// Arithmetic must cover every field too: a - b then b += diff restores a,
// field by field.
TEST(CountersTest, ArithmeticCoversEveryField) {
  KernelCounters a, b;
  uint64_t next = 100;
#define SAT_SET_PAIR(field) \
  a.field = next * 3;       \
  b.field = next;           \
  next++;
  SAT_KERNEL_COUNTER_FIELDS(SAT_SET_PAIR)
#undef SAT_SET_PAIR
  KernelCounters sum = b;
  sum += a - b;
#define SAT_CHECK_PAIR(field) EXPECT_EQ(sum.field, a.field) << #field;
  SAT_KERNEL_COUNTER_FIELDS(SAT_CHECK_PAIR)
#undef SAT_CHECK_PAIR

  CoreCounters ca, cb;
  next = 100;
#define SAT_SET_PAIR(field) \
  ca.field = next * 3;      \
  cb.field = next;          \
  next++;
  SAT_CORE_COUNTER_FIELDS(SAT_SET_PAIR)
#undef SAT_SET_PAIR
  CoreCounters csum = cb;
  csum += ca - cb;
#define SAT_CHECK_PAIR(field) EXPECT_EQ(csum.field, ca.field) << #field;
  SAT_CORE_COUNTER_FIELDS(SAT_CHECK_PAIR)
#undef SAT_CHECK_PAIR
}

TEST(SummaryTest, FiveNumberSummaryOfKnownData) {
  const FiveNumberSummary s = Summarize({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.minimum, 1);
  EXPECT_DOUBLE_EQ(s.q1, 2);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_DOUBLE_EQ(s.q3, 4);
  EXPECT_DOUBLE_EQ(s.maximum, 5);
}

TEST(SummaryTest, QuartilesInterpolate) {
  const FiveNumberSummary s = Summarize({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.q1, 1.75);
  EXPECT_DOUBLE_EQ(s.q3, 3.25);
}

TEST(SummaryTest, EmptyAndSingleton) {
  const FiveNumberSummary empty = Summarize({});
  EXPECT_DOUBLE_EQ(empty.median, 0);
  const FiveNumberSummary one = Summarize({7});
  EXPECT_DOUBLE_EQ(one.minimum, 7);
  EXPECT_DOUBLE_EQ(one.maximum, 7);
  EXPECT_DOUBLE_EQ(one.median, 7);
}

TEST(SummaryTest, UnsortedInputIsSorted) {
  const FiveNumberSummary s = Summarize({5, 1, 4, 2, 3});
  EXPECT_DOUBLE_EQ(s.minimum, 1);
  EXPECT_DOUBLE_EQ(s.maximum, 5);
  EXPECT_DOUBLE_EQ(s.median, 3);
}

TEST(SummaryTest, MeanAndMedian) {
  EXPECT_DOUBLE_EQ(Mean({2, 4, 6}), 4);
  EXPECT_DOUBLE_EQ(Mean({}), 0);
  EXPECT_DOUBLE_EQ(Median({9, 1, 5}), 5);
}

TEST(SummaryTest, EmpiricalCdfMonotoneAndComplete) {
  const std::vector<double> cdf = EmpiricalCdf({0, 1, 1, 3, 3, 3}, 4);
  ASSERT_EQ(cdf.size(), 5u);
  EXPECT_NEAR(cdf[0], 1.0 / 6, 1e-12);
  EXPECT_NEAR(cdf[1], 3.0 / 6, 1e-12);
  EXPECT_NEAR(cdf[2], 3.0 / 6, 1e-12);
  EXPECT_NEAR(cdf[3], 1.0, 1e-12);
  EXPECT_NEAR(cdf[4], 1.0, 1e-12);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i], cdf[i - 1]);
  }
}

TEST(SummaryTest, EmpiricalCdfClampsOverflow) {
  const std::vector<double> cdf = EmpiricalCdf({10}, 4);
  EXPECT_DOUBLE_EQ(cdf[4], 1.0);
  EXPECT_DOUBLE_EQ(cdf[3], 0.0);
}

TEST(SummaryTest, TablePrinterAlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Four lines: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(SummaryTest, FormatHelpers) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatPercent(0.375), "37.5%");
}

TEST(SummaryTest, ShapeCheckTolerance) {
  std::ostringstream os;
  EXPECT_TRUE(ShapeCheck(os, "x", 100, 120, 0.5));
  EXPECT_FALSE(ShapeCheck(os, "x", 100, 200, 0.5));
  EXPECT_TRUE(ShapeCheck(os, "x", 100, 150, 0.5));
  EXPECT_TRUE(ShapeCheck(os, "zero", 0, 0, 0.1));
  EXPECT_NE(os.str().find("paper=100.00"), std::string::npos);
}

TEST(CostModelTest, ExtensionCostsAreSane) {
  const CostModel& costs = CostModel::Default();
  // A shootdown IPI costs more than a context switch's base work but far
  // less than a fork.
  EXPECT_GT(costs.tlb_shootdown_ipi, costs.main_tlb_hit);
  EXPECT_LT(costs.tlb_shootdown_ipi, costs.fork_base);
  // Unshare copies are cheaper per PTE than fork copies (in-kernel loop,
  // no COW bookkeeping).
  EXPECT_LT(costs.unshare_per_pte_copy, costs.fork_per_pte_copy);
}

TEST(CostModelTest, DefaultsAreSane) {
  const CostModel& costs = CostModel::Default();
  EXPECT_GT(costs.l2_hit, costs.l1_hit);
  EXPECT_GT(costs.dram, costs.l2_hit);
  EXPECT_GT(costs.fault_disk, costs.fault_trap);
  // Fork-cost decomposition reproduces Table 4's ordering: a PTE copy is
  // costlier than a write-protect, a PTP allocation costlier still.
  EXPECT_GT(costs.fork_per_pte_copy, costs.fork_per_pte_wrprotect);
  EXPECT_GT(costs.fork_per_ptp_alloc, costs.fork_per_pte_copy);
}

}  // namespace
}  // namespace sat
