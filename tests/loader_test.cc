// Unit tests for the library catalog and the dynamic loader's two mapping
// policies.

#include <gtest/gtest.h>

#include "src/loader/library.h"
#include "src/loader/loader.h"
#include "src/proc/kernel.h"

namespace sat {
namespace {

TEST(CatalogTest, AndroidDefaultHas88PreloadedObjects) {
  const LibraryCatalog catalog = LibraryCatalog::AndroidDefault();
  EXPECT_EQ(catalog.ZygotePreloadSet().size(), 88u);
  EXPECT_NE(catalog.FindByName("libc.so"), nullptr);
  EXPECT_NE(catalog.FindByName("libbinder.so"), nullptr);
  EXPECT_NE(catalog.FindByName("app_process"), nullptr);
  EXPECT_NE(catalog.FindByName("boot.oat"), nullptr);
  EXPECT_EQ(catalog.FindByName("libnothere.so"), nullptr);
}

TEST(CatalogTest, PreloadedCodeSizesMatchPaperRange) {
  // The paper: preloaded shared code objects range from 4 KB to ~35 MB,
  // with a total large enough that per-app footprints of 2.7-30 MB are
  // subsets.
  const LibraryCatalog catalog = LibraryCatalog::AndroidDefault();
  uint32_t max_pages = 0;
  uint32_t min_pages = UINT32_MAX;
  for (LibraryId lib : catalog.ZygotePreloadSet()) {
    max_pages = std::max(max_pages, catalog.Get(lib).code_pages);
    min_pages = std::min(min_pages, catalog.Get(lib).code_pages);
  }
  EXPECT_LE(min_pages, 4u);                      // ~16 KB floor
  EXPECT_GE(max_pages, 7000u);                   // tens of MB ceiling
  EXPECT_GT(catalog.TotalPreloadedCodePages(), 20000u);  // > 80 MB total
  EXPECT_LT(catalog.TotalPreloadedCodePages(), 35000u);  // < 140 MB total
}

TEST(CatalogTest, RegisterAssignsSequentialIdsAndFiles) {
  LibraryCatalog catalog;
  const LibraryId a = catalog.Register("a.so", CodeCategory::kOtherSharedLib, 10, 2);
  const LibraryId b = catalog.Register("b.so", CodeCategory::kPrivateCode, 20, 0);
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(catalog.Get(a).file, static_cast<FileId>(a));
  EXPECT_EQ(catalog.Get(b).code_pages, 20u);
  EXPECT_TRUE(catalog.ZygotePreloadSet().empty());
}

class LoaderTest : public ::testing::Test {
 protected:
  LoaderTest() : catalog_(LibraryCatalog::AndroidDefault()) {
    kernel_ = std::make_unique<Kernel>(KernelParams{});
    zygote_ = kernel_->CreateTask("zygote");
    kernel_->Exec(*zygote_, "app_process", /*is_zygote=*/true);
  }

  LibraryCatalog catalog_;
  std::unique_ptr<Kernel> kernel_;
  Task* zygote_;
};

TEST_F(LoaderTest, OriginalPolicyPlacesDataRightAfterCode) {
  DynamicLoader loader(kernel_.get(), &catalog_, MappingPolicy::kOriginal);
  const LibraryImage* libc = catalog_.FindByName("libc.so");
  const MappedLibrary mapped =
      loader.MapLibrary(*zygote_, libc->id, DynamicLoader::kPreloadRegionLow,
                        DynamicLoader::kPreloadRegionHigh);
  EXPECT_EQ(mapped.data_base, mapped.code_base + libc->code_pages * kPageSize);
  // Code and data typically share a PTP: the paper's lost-sharing hazard.
  EXPECT_EQ(PtpSlotIndex(mapped.data_base),
            PtpSlotIndex(mapped.data_base - kPageSize));
}

TEST_F(LoaderTest, TwoMbPolicySeparatesCodeAndDataSlots) {
  DynamicLoader loader(kernel_.get(), &catalog_, MappingPolicy::kTwoMbAligned);
  const LibraryImage* libc = catalog_.FindByName("libc.so");
  const MappedLibrary mapped =
      loader.MapLibrary(*zygote_, libc->id, DynamicLoader::kPreloadRegionLow,
                        DynamicLoader::kPreloadRegionHigh);
  EXPECT_EQ(mapped.code_base % kPtpSpan, 0u);
  EXPECT_EQ(mapped.data_base % kPtpSpan, 0u);
  // No 2 MB slot holds both code and data.
  const uint32_t code_last_slot =
      PtpSlotIndex(mapped.code_base + libc->code_pages * kPageSize - 1);
  EXPECT_GT(PtpSlotIndex(mapped.data_base), code_last_slot);
}

TEST_F(LoaderTest, MappedSegmentsHaveExpectedProtections) {
  DynamicLoader loader(kernel_.get(), &catalog_, MappingPolicy::kOriginal);
  const LibraryImage* libc = catalog_.FindByName("libc.so");
  const MappedLibrary mapped =
      loader.MapLibrary(*zygote_, libc->id, DynamicLoader::kPreloadRegionLow,
                        DynamicLoader::kPreloadRegionHigh);
  const VmArea* code = zygote_->mm->FindVma(mapped.code_base);
  const VmArea* data = zygote_->mm->FindVma(mapped.data_base);
  ASSERT_NE(code, nullptr);
  ASSERT_NE(data, nullptr);
  EXPECT_TRUE(code->prot.execute);
  EXPECT_FALSE(code->prot.write);
  EXPECT_TRUE(data->prot.write);
  EXPECT_FALSE(data->prot.execute);
  EXPECT_EQ(code->kind, VmKind::kFilePrivate);
  // Data follows code within the library's backing file.
  EXPECT_EQ(data->file, code->file);
  EXPECT_EQ(data->file_page_offset, libc->code_pages);
}

TEST_F(LoaderTest, PreloadAllMapsEveryObjectAndRecordsLayout) {
  DynamicLoader loader(kernel_.get(), &catalog_, MappingPolicy::kOriginal);
  const auto& layout = loader.PreloadAll(*zygote_);
  EXPECT_EQ(layout.size(), 88u);
  // Every preloaded library is findable and non-overlapping.
  for (const MappedLibrary& mapped : layout) {
    EXPECT_EQ(loader.FindZygoteMapping(mapped.lib)->code_base,
              mapped.code_base);
    EXPECT_NE(zygote_->mm->FindVma(mapped.code_base), nullptr);
  }
  EXPECT_EQ(loader.FindZygoteMapping(99999), nullptr);
}

TEST_F(LoaderTest, PreloadedCodeIsGlobalPreloadedDataIsNot) {
  DynamicLoader loader(kernel_.get(), &catalog_, MappingPolicy::kOriginal);
  loader.PreloadAll(*zygote_);
  const MappedLibrary* libc =
      loader.FindZygoteMapping(catalog_.FindByName("libc.so")->id);
  EXPECT_TRUE(zygote_->mm->FindVma(libc->code_base)->global);
  EXPECT_FALSE(zygote_->mm->FindVma(libc->data_base)->global);
  EXPECT_TRUE(zygote_->mm->FindVma(libc->data_base)->zygote_preloaded);
}

TEST_F(LoaderTest, TwoMbPolicyUsesMoreAddressSpace) {
  DynamicLoader original(kernel_.get(), &catalog_, MappingPolicy::kOriginal);
  original.PreloadAll(*zygote_);
  const uint64_t original_span = zygote_->mm->MappedBytes();

  Kernel kernel2{KernelParams{}};
  Task* zygote2 = kernel2.CreateTask("zygote");
  kernel2.Exec(*zygote2, "app_process", true);
  DynamicLoader aligned(&kernel2, &catalog_, MappingPolicy::kTwoMbAligned);
  aligned.PreloadAll(*zygote2);

  // Mapped bytes are identical; it is the *span* (gaps included) that
  // grows. Compare the highest mapped address instead.
  EXPECT_EQ(zygote2->mm->MappedBytes(), original_span);
  VirtAddr original_top = 0;
  VirtAddr aligned_top = 0;
  zygote_->mm->ForEachVma(
      [&](const VmArea& vma) { original_top = std::max(original_top, vma.end); });
  zygote2->mm->ForEachVma(
      [&](const VmArea& vma) { aligned_top = std::max(aligned_top, vma.end); });
  EXPECT_GT(aligned_top, original_top);
}

TEST_F(LoaderTest, LargeCodePagesAlignCodeBases) {
  DynamicLoader loader(kernel_.get(), &catalog_, MappingPolicy::kOriginal);
  loader.set_large_code_pages(true);
  const LibraryImage* libc = catalog_.FindByName("libc.so");
  const MappedLibrary mapped =
      loader.MapLibrary(*zygote_, libc->id, DynamicLoader::kPreloadRegionLow,
                        DynamicLoader::kPreloadRegionHigh);
  EXPECT_EQ(mapped.code_base % kLargePageSize, 0u);
  EXPECT_TRUE(zygote_->mm->FindVma(mapped.code_base)->use_large_pages);
  EXPECT_FALSE(zygote_->mm->FindVma(mapped.data_base)->use_large_pages);
  // Data sits beyond the code at a 64 KB boundary (never inside a block).
  EXPECT_EQ(mapped.data_base % kLargePageSize, 0u);
  EXPECT_GE(mapped.data_base, mapped.code_base + libc->code_pages * kPageSize);
}

TEST_F(LoaderTest, TwoMbPolicyComposesWithLargeCodePages) {
  DynamicLoader loader(kernel_.get(), &catalog_, MappingPolicy::kTwoMbAligned);
  loader.set_large_code_pages(true);
  const LibraryImage* libm = catalog_.FindByName("libm.so");
  const MappedLibrary mapped =
      loader.MapLibrary(*zygote_, libm->id, DynamicLoader::kPreloadRegionLow,
                        DynamicLoader::kPreloadRegionHigh);
  // 2 MB alignment subsumes 64 KB alignment.
  EXPECT_EQ(mapped.code_base % kPtpSpan, 0u);
  EXPECT_TRUE(zygote_->mm->FindVma(mapped.code_base)->use_large_pages);
}

TEST_F(LoaderTest, AppLibraryWindowIsSeparate) {
  DynamicLoader loader(kernel_.get(), &catalog_, MappingPolicy::kOriginal);
  loader.PreloadAll(*zygote_);
  Task* app = kernel_->Fork(*zygote_, "app").child;
  LibraryCatalog& catalog = catalog_;
  const LibraryId own = catalog.Register("own.so", CodeCategory::kOtherSharedLib,
                                         16, 4);
  const MappedLibrary mapped = loader.MapAppLibrary(*app, own);
  EXPECT_GE(mapped.code_base, DynamicLoader::kAppLibRegionLow);
  EXPECT_LT(mapped.code_base, DynamicLoader::kAppLibRegionHigh);
}

}  // namespace
}  // namespace sat
