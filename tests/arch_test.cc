// Unit tests for the ARMv7 architecture model: address helpers, PTE bit
// layouts, the domain access control register, and fault records.

#include <gtest/gtest.h>

#include "src/arch/domain.h"
#include "src/arch/fault.h"
#include "src/arch/pte.h"
#include "src/arch/types.h"

namespace sat {
namespace {

// ---------------------------------------------------------------------------
// Address helpers.
// ---------------------------------------------------------------------------

TEST(AddressTest, PageGeometryConstants) {
  EXPECT_EQ(kPageSize, 4096u);
  EXPECT_EQ(kPtpSpan, 2u * 1024 * 1024);
  EXPECT_EQ(kPtesPerPtp, 512u);
  EXPECT_EQ(kL2EntriesPerTable, 256u);
  EXPECT_EQ(kPtesPerLargePage, 16u);
}

TEST(AddressTest, UserSpaceCoversThreeGigabytes) {
  EXPECT_EQ(kUserSpaceEnd, 0xC0000000u);
  EXPECT_EQ(kUserPtpSlots, 1536u);
  EXPECT_TRUE(IsUserAddress(0));
  EXPECT_TRUE(IsUserAddress(0xBFFFFFFFu));
  EXPECT_FALSE(IsUserAddress(0xC0000000u));
}

TEST(AddressTest, PtpSlotIndexing) {
  EXPECT_EQ(PtpSlotIndex(0), 0u);
  EXPECT_EQ(PtpSlotIndex(kPtpSpan - 1), 0u);
  EXPECT_EQ(PtpSlotIndex(kPtpSpan), 1u);
  EXPECT_EQ(PtpSlotBase(3), 3u * kPtpSpan);
}

TEST(AddressTest, PteIndexWithinPtpWraps) {
  EXPECT_EQ(PteIndexInPtp(0), 0u);
  EXPECT_EQ(PteIndexInPtp(kPageSize), 1u);
  EXPECT_EQ(PteIndexInPtp(kPtpSpan - kPageSize), 511u);
  EXPECT_EQ(PteIndexInPtp(kPtpSpan), 0u);  // next slot starts over
}

TEST(AddressTest, PageAlignment) {
  EXPECT_EQ(PageAlignDown(0x1234u), 0x1000u);
  EXPECT_EQ(PageAlignUp(0x1234u), 0x2000u);
  EXPECT_EQ(PageAlignUp(0x1000u), 0x1000u);
  EXPECT_TRUE(IsPageAligned(0x7000u));
  EXPECT_FALSE(IsPageAligned(0x7004u));
}

TEST(AddressTest, FramePhysicalConversion) {
  EXPECT_EQ(FrameToPhys(3), 3u * kPageSize);
  EXPECT_EQ(PhysToFrame(FrameToPhys(1234)), 1234u);
}

// ---------------------------------------------------------------------------
// Hardware PTEs.
// ---------------------------------------------------------------------------

TEST(HwPteTest, DefaultIsInvalid) {
  HwPte pte;
  EXPECT_FALSE(pte.valid());
  EXPECT_EQ(pte.raw(), 0u);
}

TEST(HwPteTest, RoundTripsAllFields) {
  const HwPte pte = HwPte::MakePage(0x12345, PtePerm::kReadWrite,
                                    /*global=*/true, /*executable=*/true);
  EXPECT_TRUE(pte.valid());
  EXPECT_EQ(pte.frame(), 0x12345u);
  EXPECT_EQ(pte.perm(), PtePerm::kReadWrite);
  EXPECT_TRUE(pte.global());
  EXPECT_TRUE(pte.executable());
  EXPECT_FALSE(pte.large());
}

TEST(HwPteTest, NotGlobalNotExecutable) {
  const HwPte pte = HwPte::MakePage(7, PtePerm::kReadOnly, /*global=*/false,
                                    /*executable=*/false);
  EXPECT_FALSE(pte.global());
  EXPECT_FALSE(pte.executable());
  EXPECT_EQ(pte.perm(), PtePerm::kReadOnly);
}

TEST(HwPteTest, InvalidEntryIsNeverGlobal) {
  HwPte pte;
  EXPECT_FALSE(pte.global());
}

TEST(HwPteTest, WriteProtectDowngradesOnlyReadWrite) {
  HwPte rw = HwPte::MakePage(1, PtePerm::kReadWrite, false, false);
  rw.WriteProtect();
  EXPECT_EQ(rw.perm(), PtePerm::kReadOnly);

  HwPte ro = HwPte::MakePage(1, PtePerm::kReadOnly, false, true);
  ro.WriteProtect();
  EXPECT_EQ(ro.perm(), PtePerm::kReadOnly);
}

TEST(HwPteTest, LargePageFlag) {
  const HwPte pte = HwPte::MakePage(16, PtePerm::kReadOnly, true, true,
                                    /*large=*/true);
  EXPECT_TRUE(pte.large());
  EXPECT_TRUE(pte.valid());
}

TEST(HwPteTest, ClearInvalidates) {
  HwPte pte = HwPte::MakePage(5, PtePerm::kReadWrite, false, true);
  pte.Clear();
  EXPECT_FALSE(pte.valid());
}

TEST(HwPteTest, SetGlobalTogglesBit) {
  HwPte pte = HwPte::MakePage(5, PtePerm::kReadOnly, false, true);
  EXPECT_FALSE(pte.global());
  pte.set_global(true);
  EXPECT_TRUE(pte.global());
  pte.set_global(false);
  EXPECT_FALSE(pte.global());
}

TEST(HwPteTest, ToStringDescribesEntry) {
  const HwPte pte = HwPte::MakePage(5, PtePerm::kReadOnly, true, true);
  const std::string str = pte.ToString();
  EXPECT_NE(str.find("frame=5"), std::string::npos);
  EXPECT_NE(str.find("global"), std::string::npos);
  EXPECT_EQ(HwPte().ToString(), "HwPte{invalid}");
}

// ---------------------------------------------------------------------------
// Linux shadow PTEs.
// ---------------------------------------------------------------------------

TEST(LinuxPteTest, FlagsAreIndependent) {
  LinuxPte pte;
  EXPECT_FALSE(pte.present());
  pte.set_present(true);
  pte.set_young(true);
  EXPECT_TRUE(pte.present());
  EXPECT_TRUE(pte.young());
  EXPECT_FALSE(pte.dirty());
  EXPECT_FALSE(pte.writable());
  pte.set_dirty(true);
  pte.set_young(false);
  EXPECT_TRUE(pte.dirty());
  EXPECT_FALSE(pte.young());
  EXPECT_TRUE(pte.present());
}

TEST(LinuxPteTest, ClearResetsEverything) {
  LinuxPte pte;
  pte.set_present(true);
  pte.set_dirty(true);
  pte.set_writable(true);
  pte.Clear();
  EXPECT_EQ(pte, LinuxPte{});
}

// ---------------------------------------------------------------------------
// L1 entries.
// ---------------------------------------------------------------------------

TEST(L1EntryTest, PresenceTracksPtpId) {
  L1Entry entry;
  EXPECT_FALSE(entry.present());
  entry.ptp = 12;
  entry.need_copy = true;
  entry.domain = kDomainZygote;
  EXPECT_TRUE(entry.present());
  entry.Clear();
  EXPECT_FALSE(entry.present());
  EXPECT_FALSE(entry.need_copy);
}

// ---------------------------------------------------------------------------
// Domain access control.
// ---------------------------------------------------------------------------

TEST(DomainTest, DefaultDeniesEverything) {
  DomainAccessControl dacr;
  for (uint32_t d = 0; d < kNumDomains; ++d) {
    EXPECT_EQ(dacr.Get(static_cast<DomainId>(d)), DomainAccess::kNoAccess);
  }
}

TEST(DomainTest, SetGetRoundTrip) {
  DomainAccessControl dacr;
  dacr.Set(5, DomainAccess::kClient);
  dacr.Set(15, DomainAccess::kManager);
  EXPECT_EQ(dacr.Get(5), DomainAccess::kClient);
  EXPECT_EQ(dacr.Get(15), DomainAccess::kManager);
  EXPECT_EQ(dacr.Get(4), DomainAccess::kNoAccess);
  dacr.Set(5, DomainAccess::kNoAccess);
  EXPECT_EQ(dacr.Get(5), DomainAccess::kNoAccess);
  // Field 15 must be untouched by the update to field 5.
  EXPECT_EQ(dacr.Get(15), DomainAccess::kManager);
}

TEST(DomainTest, StockDefaultGrantsUserAndKernelOnly) {
  const DomainAccessControl dacr = DomainAccessControl::StockDefault();
  EXPECT_EQ(dacr.Get(kDomainKernel), DomainAccess::kClient);
  EXPECT_EQ(dacr.Get(kDomainUser), DomainAccess::kClient);
  EXPECT_EQ(dacr.Get(kDomainZygote), DomainAccess::kNoAccess);
}

TEST(DomainTest, ZygoteLikeAddsZygoteDomain) {
  const DomainAccessControl dacr = DomainAccessControl::ZygoteLike();
  EXPECT_EQ(dacr.Get(kDomainZygote), DomainAccess::kClient);
  EXPECT_EQ(dacr.Get(kDomainUser), DomainAccess::kClient);
}

TEST(DomainTest, PackedLayoutMatchesHardware) {
  // Two bits per domain, domain 0 at bits [1:0].
  DomainAccessControl dacr;
  dacr.Set(0, DomainAccess::kClient);   // 01
  dacr.Set(1, DomainAccess::kManager);  // 11
  EXPECT_EQ(dacr.raw(), 0b1101u);
}

// ---------------------------------------------------------------------------
// Memory aborts.
// ---------------------------------------------------------------------------

TEST(FaultTest, AbortRecordsFields) {
  MemoryAbort abort;
  EXPECT_FALSE(abort.faulted());
  abort.status = FaultStatus::kDomain;
  abort.fault_address = 0x40001000;
  abort.access = AccessType::kExecute;
  abort.is_prefetch_abort = true;
  EXPECT_TRUE(abort.faulted());
  const std::string str = abort.ToString();
  EXPECT_NE(str.find("PrefetchAbort"), std::string::npos);
  EXPECT_NE(str.find("domain"), std::string::npos);
  EXPECT_NE(str.find("40001000"), std::string::npos);
}

TEST(FaultTest, StatusNames) {
  EXPECT_STREQ(FaultStatusName(FaultStatus::kTranslation), "translation");
  EXPECT_STREQ(FaultStatusName(FaultStatus::kPermission), "permission");
  EXPECT_STREQ(FaultStatusName(FaultStatus::kDomain), "domain");
  EXPECT_STREQ(FaultStatusName(FaultStatus::kNoRegion), "no-region");
}

}  // namespace
}  // namespace sat
