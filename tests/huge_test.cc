// The translation-reach engine (src/huge): khugepaged-style collapse of
// 64 KB runs into large PTEs (in place when the frames already line up,
// by migration otherwise), demotion back to 4 KB on partial munmap /
// mprotect / COW, the interactions with shared PTPs (one in-place
// promotion serves every sharer; migration privatizes first), KSM stable
// frames (skip by default, unmerge under the opt-in policy), swap
// entries, injected ENOMEM, scrubd's replica-vote repair, and the
// boot-time 1 MB sections over the zygote's preloaded code.

#include <gtest/gtest.h>

#include "src/core/sat.h"

namespace sat {
namespace {

KernelParams SmallParams(uint64_t phys_mb = 32, uint64_t swap_mb = 0) {
  KernelParams params;
  params.phys_bytes = phys_mb * 1024 * 1024;
  params.swap_bytes = swap_mb * 1024 * 1024;
  params.huge = true;
  return params;
}

// Maps `pages` anonymous RW pages at `base` (64 KB-aligned in every test
// so whole blocks qualify for collapse).
VirtAddr MapAnon(Kernel& kernel, Task& task, uint32_t pages, VirtAddr base,
                 bool mergeable = false) {
  MmapRequest request;
  request.length = pages * kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  request.fixed_address = base;
  request.mergeable = mergeable;
  EXPECT_EQ(kernel.Mmap(task, request).value, base);
  return base;
}

FrameNumber FrameAt(Task& task, VirtAddr va) {
  const auto ref = task.mm->page_table().FindPte(va);
  if (!ref.has_value() || !ref->ptp->hw(ref->index).valid()) {
    return static_cast<FrameNumber>(-1);
  }
  return MappedFrameOf(ref->ptp->hw(ref->index), ref->index);
}

bool LargeAt(Task& task, VirtAddr va) {
  const auto ref = task.mm->page_table().FindPte(va);
  return ref.has_value() && ref->ptp->hw(ref->index).large();
}

// True iff all 16 replicas of the block at `base` are large and name the
// expected contiguous frames.
bool BlockIsCollapsed(Task& task, VirtAddr base) {
  const FrameNumber first = FrameAt(task, base);
  if (first == static_cast<FrameNumber>(-1) || first % kPtesPerLargePage != 0) {
    return false;
  }
  for (uint32_t i = 0; i < kPtesPerLargePage; ++i) {
    const VirtAddr va = base + i * kPageSize;
    if (!LargeAt(task, va) || FrameAt(task, va) != first + i) {
      return false;
    }
  }
  return true;
}

void ExpectAuditOk(Kernel& kernel, const char* where) {
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << where << ":\n" << report.ToString();
}

// ---------------------------------------------------------------------------
// Collapse.
// ---------------------------------------------------------------------------

TEST(HugeTest, CollapsesEligibleRunByMigration) {
  Kernel kernel(SmallParams());
  Task* task = kernel.CreateTask("app");
  const VirtAddr base = MapAnon(kernel, *task, 16, 0x40000000);
  for (uint32_t i = 0; i < 16; ++i) {
    ASSERT_EQ(kernel.WritePage(*task, base + i * kPageSize, 100 + i),
              TouchStatus::kOk);
  }

  EXPECT_EQ(kernel.RunHugeScan(), 1u);
  EXPECT_EQ(kernel.counters().huge_scans, 1u);
  EXPECT_EQ(kernel.counters().huge_collapses, 1u);
  EXPECT_EQ(kernel.counters().huge_pages_migrated, 16u);
  EXPECT_TRUE(BlockIsCollapsed(*task, base));
  // The migration preserved every page's content.
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(kernel.phys().frame(FrameAt(*task, base + i * kPageSize)).content,
              100 + i);
  }
  ExpectAuditOk(kernel, "after collapse");

  // A second pass finds nothing: collapsed blocks are skipped.
  EXPECT_EQ(kernel.RunHugeScan(), 0u);
  EXPECT_EQ(kernel.counters().huge_collapses, 1u);
  ExpectAuditOk(kernel, "after idle rescan");

  kernel.Exit(*task);
  ExpectAuditOk(kernel, "after exit");
  EXPECT_EQ(kernel.phys().CountFrames(FrameKind::kAnon), 0u);
}

TEST(HugeTest, UnalignedAndPartialBlocksAreSkipped) {
  Kernel kernel(SmallParams());
  Task* task = kernel.CreateTask("app");
  // 8 pages: no full 64 KB block fits.
  const VirtAddr small = MapAnon(kernel, *task, 8, 0x40000000);
  // 16 pages but starting half-way into a 64 KB block.
  const VirtAddr skewed = MapAnon(kernel, *task, 16, 0x50008000);
  for (uint32_t i = 0; i < 8; ++i) {
    kernel.WritePage(*task, small + i * kPageSize, 1);
  }
  for (uint32_t i = 0; i < 16; ++i) {
    kernel.WritePage(*task, skewed + i * kPageSize, 2);
  }
  EXPECT_EQ(kernel.RunHugeScan(), 0u);
  EXPECT_EQ(kernel.counters().huge_collapses, 0u);
  ExpectAuditOk(kernel, "after scan");
}

TEST(HugeTest, ZeroFilledRunIsNotWorthCollapsing) {
  Kernel kernel(SmallParams());
  Task* task = kernel.CreateTask("app");
  const VirtAddr base = MapAnon(kernel, *task, 16, 0x40000000);
  // Read faults only: every PTE maps the shared zero frame.
  for (uint32_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(kernel.TouchPage(*task, base + i * kPageSize,
                                 AccessType::kRead));
  }
  EXPECT_EQ(kernel.RunHugeScan(), 0u);
  ExpectAuditOk(kernel, "after scan");
}

// ---------------------------------------------------------------------------
// Demotion: munmap / mprotect / COW.
// ---------------------------------------------------------------------------

TEST(HugeTest, PartialMunmapSplitsTheBlock) {
  Kernel kernel(SmallParams());
  Task* task = kernel.CreateTask("app");
  const VirtAddr base = MapAnon(kernel, *task, 16, 0x40000000);
  for (uint32_t i = 0; i < 16; ++i) {
    kernel.WritePage(*task, base + i * kPageSize, 100 + i);
  }
  ASSERT_EQ(kernel.RunHugeScan(), 1u);
  const FrameNumber first = FrameAt(*task, base);

  // Punch a 4-page hole in the middle: the block must demote to 4 KB
  // PTEs first so the survivors keep precise mappings.
  ASSERT_TRUE(kernel.Munmap(*task, base + 4 * kPageSize, 4 * kPageSize).ok());
  EXPECT_EQ(kernel.counters().huge_splits, 1u);
  for (uint32_t i = 0; i < 16; ++i) {
    const VirtAddr va = base + i * kPageSize;
    EXPECT_FALSE(LargeAt(*task, va)) << "page " << i;
    if (i >= 4 && i < 8) {
      EXPECT_EQ(FrameAt(*task, va), static_cast<FrameNumber>(-1));
    } else {
      // Survivors still map their slice of the once-contiguous run.
      EXPECT_EQ(FrameAt(*task, va), first + i);
    }
  }
  ExpectAuditOk(kernel, "after partial munmap");

  kernel.Exit(*task);
  EXPECT_EQ(kernel.phys().CountFrames(FrameKind::kAnon), 0u);
}

TEST(HugeTest, MprotectSplitsOnlyPartiallyCoveredBlocks) {
  Kernel kernel(SmallParams());
  Task* task = kernel.CreateTask("app");
  const VirtAddr base = MapAnon(kernel, *task, 32, 0x40000000);
  for (uint32_t i = 0; i < 32; ++i) {
    kernel.WritePage(*task, base + i * kPageSize, 7);
  }
  ASSERT_EQ(kernel.RunHugeScan(), 2u);

  // A protection change covering a whole block keeps it large: the
  // replicas are rewritten uniformly, so the run stays intact.
  ASSERT_TRUE(
      kernel.Mprotect(*task, base, 16 * kPageSize, VmProt::ReadOnly()).ok());
  EXPECT_TRUE(LargeAt(*task, base));
  EXPECT_EQ(kernel.counters().huge_splits, 0u);
  ExpectAuditOk(kernel, "after full-block mprotect");

  // A change cutting into a block splits it.
  const VirtAddr second = base + 16 * kPageSize;
  ASSERT_TRUE(kernel.Mprotect(*task, second + 8 * kPageSize, 8 * kPageSize,
                              VmProt::ReadOnly())
                  .ok());
  EXPECT_FALSE(LargeAt(*task, second));
  EXPECT_EQ(kernel.counters().huge_splits, 1u);
  ExpectAuditOk(kernel, "after partial mprotect");

  // The split block stays 4 KB: the mprotect also split the region, so
  // no single anonymous VMA fully contains the 64 KB block any more (and
  // its halves differ in permission besides).
  EXPECT_EQ(kernel.RunHugeScan(), 0u);
  EXPECT_EQ(kernel.counters().huge_collapses, 2u);
  ExpectAuditOk(kernel, "after rescan of split block");
}

TEST(HugeTest, CowWriteSplitsOnlyTheWriterAfterFork) {
  Kernel kernel(SmallParams());
  Task* task = kernel.CreateTask("parent");
  const VirtAddr base = MapAnon(kernel, *task, 16, 0x40000000);
  for (uint32_t i = 0; i < 16; ++i) {
    kernel.WritePage(*task, base + i * kPageSize, 100 + i);
  }
  ASSERT_EQ(kernel.RunHugeScan(), 1u);

  // The stock fork copies the large replicas (write-protected) into the
  // child: both sides keep the collapsed view of the shared frames.
  Task* child = kernel.Fork(*task, "child").child;
  ASSERT_NE(child, nullptr);
  EXPECT_TRUE(BlockIsCollapsed(*child, base));
  EXPECT_EQ(FrameAt(*child, base), FrameAt(*task, base));
  ExpectAuditOk(kernel, "after fork");

  // The child's COW write demotes its copy of the block before the 4 KB
  // copy-on-write; the parent's stays collapsed.
  ASSERT_EQ(kernel.WritePage(*child, base + 2 * kPageSize, 9),
            TouchStatus::kOk);
  EXPECT_FALSE(LargeAt(*child, base + 2 * kPageSize));
  EXPECT_TRUE(BlockIsCollapsed(*task, base));
  EXPECT_EQ(kernel.counters().huge_splits, 1u);
  EXPECT_NE(FrameAt(*child, base + 2 * kPageSize),
            FrameAt(*task, base + 2 * kPageSize));
  EXPECT_EQ(kernel.phys().frame(FrameAt(*child, base + 2 * kPageSize)).content,
            9u);
  ExpectAuditOk(kernel, "after COW write");

  kernel.Exit(*child);
  kernel.Exit(*task);
  EXPECT_EQ(kernel.phys().CountFrames(FrameKind::kAnon), 0u);
}

// ---------------------------------------------------------------------------
// Shared PTPs.
// ---------------------------------------------------------------------------

TEST(HugeTest, InPlacePromotionServesEverySharer) {
  KernelParams params = SmallParams();
  params.vm.share_ptps = true;
  Kernel kernel(params);
  Task* task = kernel.CreateTask("parent");
  const VirtAddr base = MapAnon(kernel, *task, 16, 0x40000000);
  for (uint32_t i = 0; i < 16; ++i) {
    kernel.WritePage(*task, base + i * kPageSize, 100 + i);
  }
  // Collapse while private, then fork: the child shares the PTP that
  // already holds the large run — no per-child work at all.
  ASSERT_EQ(kernel.RunHugeScan(), 1u);
  Task* child = kernel.Fork(*task, "child").child;
  ASSERT_NE(child, nullptr);
  EXPECT_TRUE(BlockIsCollapsed(*task, base));
  EXPECT_TRUE(BlockIsCollapsed(*child, base));
  EXPECT_EQ(FrameAt(*task, base), FrameAt(*child, base));
  EXPECT_EQ(kernel.counters().huge_unshares, 0u);
  ExpectAuditOk(kernel, "after fork of collapsed block");

  // A child write privatizes the slot (lazy unshare) and demotes only
  // the private copy.
  ASSERT_EQ(kernel.WritePage(*child, base + 5 * kPageSize, 9),
            TouchStatus::kOk);
  EXPECT_FALSE(LargeAt(*child, base + 5 * kPageSize));
  EXPECT_TRUE(BlockIsCollapsed(*task, base));
  ExpectAuditOk(kernel, "after child COW write");

  kernel.Exit(*child);
  kernel.Exit(*task);
  EXPECT_EQ(kernel.phys().CountFrames(FrameKind::kAnon), 0u);
}

TEST(HugeTest, MigrationUnderSharedPtpPrivatizesFirst) {
  KernelParams params = SmallParams();
  params.vm.share_ptps = true;
  Kernel kernel(params);
  Task* task = kernel.CreateTask("parent");
  const VirtAddr base = MapAnon(kernel, *task, 16, 0x40000000);
  for (uint32_t i = 0; i < 16; ++i) {
    kernel.WritePage(*task, base + i * kPageSize, 55);
  }
  Task* child = kernel.Fork(*task, "child").child;
  ASSERT_NE(child, nullptr);

  // Both address spaces hold the scattered run in a NEED_COPY slot.
  // Migration repoints PTEs, so each collapse must unshare first — one
  // per address space, unlike the in-place path.
  EXPECT_EQ(kernel.RunHugeScan(), 2u);
  EXPECT_EQ(kernel.counters().huge_unshares, 2u);
  EXPECT_TRUE(BlockIsCollapsed(*task, base));
  EXPECT_TRUE(BlockIsCollapsed(*child, base));
  // Separate contiguous blocks: the collapse broke the fork sharing.
  EXPECT_NE(FrameAt(*task, base), FrameAt(*child, base));
  ExpectAuditOk(kernel, "after shared-slot collapse");

  kernel.Exit(*child);
  kernel.Exit(*task);
  EXPECT_EQ(kernel.phys().CountFrames(FrameKind::kAnon), 0u);
}

// ---------------------------------------------------------------------------
// KSM interaction.
// ---------------------------------------------------------------------------

TEST(HugeTest, KsmStableFrameBlocksCollapseByDefault) {
  KernelParams params = SmallParams();
  params.ksm_enabled = true;
  Kernel kernel(params);
  Task* task = kernel.CreateTask("app");
  const VirtAddr base = MapAnon(kernel, *task, 16, 0x40000000,
                                /*mergeable=*/true);
  for (uint32_t i = 0; i < 16; ++i) {
    kernel.WritePage(*task, base + i * kPageSize, i < 2 ? 7 : 100 + i);
  }
  kernel.RunKsmScan();
  ASSERT_EQ(kernel.RunKsmScan(), 1u);  // the two 7-pages merged
  ASSERT_EQ(kernel.ksm().pages_shared(), 1u);

  // Deduplicated content wins by default: the run is ineligible.
  EXPECT_EQ(kernel.RunHugeScan(), 0u);
  EXPECT_EQ(kernel.counters().huge_collapses, 0u);
  EXPECT_EQ(kernel.counters().huge_ksm_unmerges, 0u);
  EXPECT_EQ(kernel.ksm().pages_shared(), 1u);
  ExpectAuditOk(kernel, "after skipped collapse");
}

TEST(HugeTest, UnmergePolicyTradesDedupBackForReach) {
  KernelParams params = SmallParams();
  params.ksm_enabled = true;
  params.huge_unmerge_ksm = true;
  Kernel kernel(params);
  Task* task = kernel.CreateTask("app");
  const VirtAddr base = MapAnon(kernel, *task, 16, 0x40000000,
                                /*mergeable=*/true);
  for (uint32_t i = 0; i < 16; ++i) {
    kernel.WritePage(*task, base + i * kPageSize, i < 2 ? 7 : 100 + i);
  }
  kernel.RunKsmScan();
  ASSERT_EQ(kernel.RunKsmScan(), 1u);
  ASSERT_EQ(kernel.ksm().pages_shared(), 1u);

  // The collapse copies the stable frame's content out into the new
  // contiguous block — an unmerge per stable replica — and the stable
  // frame dies with its last mapping.
  EXPECT_EQ(kernel.RunHugeScan(), 1u);
  EXPECT_EQ(kernel.counters().huge_ksm_unmerges, 2u);
  EXPECT_EQ(kernel.ksm().pages_shared(), 0u);
  EXPECT_TRUE(BlockIsCollapsed(*task, base));
  EXPECT_EQ(kernel.phys().frame(FrameAt(*task, base)).content, 7u);
  EXPECT_EQ(kernel.phys().frame(FrameAt(*task, base + kPageSize)).content, 7u);
  ExpectAuditOk(kernel, "after unmerging collapse");

  kernel.Exit(*task);
  EXPECT_EQ(kernel.phys().CountFrames(FrameKind::kAnon), 0u);
  EXPECT_EQ(kernel.ksm().pages_shared(), 0u);
}

// ---------------------------------------------------------------------------
// Swap interaction.
// ---------------------------------------------------------------------------

TEST(HugeTest, SwapEntryBreaksTheRun) {
  Kernel kernel(SmallParams(32, /*swap_mb=*/16));
  Task* task = kernel.CreateTask("app");
  const VirtAddr base = MapAnon(kernel, *task, 16, 0x40000000);
  for (uint32_t i = 0; i < 16; ++i) {
    kernel.WritePage(*task, base + i * kPageSize, 100 + i);
  }
  uint32_t freed = 0;
  for (int pass = 0; pass < 8 && freed < 8; ++pass) {
    freed += kernel.SwapOutAnonPages(8 - freed);
  }
  ASSERT_GT(freed, 0u);
  uint32_t non_resident = 0;
  for (uint32_t i = 0; i < 16; ++i) {
    if (FrameAt(*task, base + i * kPageSize) == static_cast<FrameNumber>(-1)) {
      non_resident++;
    }
  }
  ASSERT_GT(non_resident, 0u);

  // Swap entries break the run until their pages fault back in.
  EXPECT_EQ(kernel.RunHugeScan(), 0u);
  EXPECT_EQ(kernel.counters().huge_collapses, 0u);
  ExpectAuditOk(kernel, "after scan over swapped run");

  // Fault everything back in and make the permissions uniform again (a
  // swap-in read fault maps the page read-only until the next write).
  for (uint32_t i = 0; i < 16; ++i) {
    ASSERT_EQ(kernel.WritePage(*task, base + i * kPageSize, 200 + i),
              TouchStatus::kOk);
  }
  EXPECT_EQ(kernel.RunHugeScan(), 1u);
  EXPECT_TRUE(BlockIsCollapsed(*task, base));
  ExpectAuditOk(kernel, "after fault-back collapse");

  kernel.Exit(*task);
  EXPECT_EQ(kernel.phys().CountFrames(FrameKind::kAnon), 0u);
  EXPECT_EQ(kernel.zram().live_slots(), 0u);
}

// ---------------------------------------------------------------------------
// ENOMEM.
// ---------------------------------------------------------------------------

TEST(HugeTest, InjectedEnomemAbandonsTheCollapseCleanly) {
  Kernel kernel(SmallParams());
  Task* task = kernel.CreateTask("app");
  const VirtAddr base = MapAnon(kernel, *task, 16, 0x40000000);
  for (uint32_t i = 0; i < 16; ++i) {
    kernel.WritePage(*task, base + i * kPageSize, 100 + i);
  }
  const FrameNumber before = FrameAt(*task, base);

  // Every contiguous allocation fails: migration abandons with nothing
  // touched — same frames, same (small) PTEs, clean audit.
  kernel.fault_injector().SetRule(AllocSite::kContiguous, FaultRule{0, 1, 0.0});
  EXPECT_EQ(kernel.RunHugeScan(), 0u);
  EXPECT_EQ(kernel.counters().huge_collapses, 0u);
  EXPECT_GE(kernel.counters().huge_collapse_failures, 1u);
  EXPECT_FALSE(LargeAt(*task, base));
  EXPECT_EQ(FrameAt(*task, base), before);
  ExpectAuditOk(kernel, "after abandoned collapse");

  // With the rule lifted the same block collapses.
  kernel.fault_injector().SetRule(AllocSite::kContiguous, FaultRule{});
  EXPECT_EQ(kernel.RunHugeScan(), 1u);
  EXPECT_TRUE(BlockIsCollapsed(*task, base));
  ExpectAuditOk(kernel, "after retry");
}

// ---------------------------------------------------------------------------
// Scrub interaction: replica-vote repair.
// ---------------------------------------------------------------------------

TEST(HugeTest, ScrubRepairsRottenLargeReplicaByMajorityVote) {
  KernelParams params = SmallParams();
  params.scrub = true;
  Kernel kernel(params);
  Task* task = kernel.CreateTask("app");
  const VirtAddr base = MapAnon(kernel, *task, 16, 0x40000000);
  for (uint32_t i = 0; i < 16; ++i) {
    kernel.WritePage(*task, base + i * kPageSize, 100 + i);
  }
  ASSERT_EQ(kernel.RunHugeScan(), 1u);

  // Flip the large bit on one replica: fifteen bit-identical siblings
  // outvote it and scrubd rewrites the word from their exemplar.
  const auto rotted = task->mm->page_table().FindPte(base + 3 * kPageSize);
  ASSERT_TRUE(rotted.has_value());
  rotted->ptp->CorruptHwForChaos(rotted->index, 1u << 8);
  ASSERT_FALSE(LargeAt(*task, base + 3 * kPageSize));
  uint32_t repairs = 0;
  for (int pass = 0; pass < 4; ++pass) {
    repairs += kernel.RunScrubPass();
  }
  EXPECT_GE(repairs, 1u);
  EXPECT_TRUE(BlockIsCollapsed(*task, base));
  ExpectAuditOk(kernel, "after large-bit repair");

  // A frame-bit flip on another replica is repaired the same way.
  const auto rotted2 = task->mm->page_table().FindPte(base + 7 * kPageSize);
  rotted2->ptp->CorruptHwForChaos(rotted2->index, 1u << 12);
  repairs = 0;
  for (int pass = 0; pass < 4; ++pass) {
    repairs += kernel.RunScrubPass();
  }
  EXPECT_GE(repairs, 1u);
  EXPECT_TRUE(BlockIsCollapsed(*task, base));
  ExpectAuditOk(kernel, "after frame-bit repair");
}

// ---------------------------------------------------------------------------
// smaps and tracing.
// ---------------------------------------------------------------------------

TEST(HugeTest, SmapsReportsHugePages) {
  Kernel kernel(SmallParams());
  Task* task = kernel.CreateTask("app");
  const VirtAddr base = MapAnon(kernel, *task, 32, 0x40000000);
  for (uint32_t i = 0; i < 16; ++i) {
    kernel.WritePage(*task, base + i * kPageSize, 100 + i);
  }
  ASSERT_EQ(kernel.RunHugeScan(), 1u);

  const SmapsReport report =
      GenerateSmaps(*task->mm, kernel.ptp_allocator(), &kernel.rmap(),
                    &kernel.phys());
  ASSERT_FALSE(report.vmas.empty());
  const VmaReport* row = nullptr;
  for (const VmaReport& vma : report.vmas) {
    if (vma.start == base) {
      row = &vma;
    }
  }
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->rss_kb, 64u);
  EXPECT_EQ(row->huge_kb, 64u);  // exactly the collapsed block
  EXPECT_EQ(report.total_huge_kb, 64u);
  EXPECT_NE(report.ToString().find("HugePages"), std::string::npos);
}

TEST(HugeTest, TraceRecordsCollapseAndSplitEvents) {
  KernelParams params = SmallParams();
  params.trace.enabled = true;
  params.trace.capacity = 1 << 10;
  Kernel kernel(params);
  Task* task = kernel.CreateTask("app");
  const VirtAddr base = MapAnon(kernel, *task, 16, 0x40000000);
  for (uint32_t i = 0; i < 16; ++i) {
    kernel.WritePage(*task, base + i * kPageSize, 100 + i);
  }
  ASSERT_EQ(kernel.RunHugeScan(), 1u);
  ASSERT_TRUE(kernel.Munmap(*task, base + 4 * kPageSize, 4 * kPageSize).ok());

  bool saw_collapse = false;
  bool saw_split = false;
  for (const TraceEvent& event : kernel.tracer().Events()) {
    if (event.type == TraceEventType::kHugeCollapse) {
      saw_collapse = true;
      EXPECT_EQ(event.a, VirtPageNumber(base));
      EXPECT_EQ(event.b, 1u);  // collapsed by migration
    }
    if (event.type == TraceEventType::kHugeSplit) {
      saw_split = true;
      EXPECT_EQ(event.a, VirtPageNumber(base));
      EXPECT_EQ(event.b,
                static_cast<uint64_t>(HugeSplitReason::kMunmap));
    }
  }
  EXPECT_TRUE(saw_collapse);
  EXPECT_TRUE(saw_split);
  EXPECT_EQ(kernel.tracer().histogram(TraceEventType::kHugeCollapse).count(),
            1u);
}

// ---------------------------------------------------------------------------
// Periodic wake-ups.
// ---------------------------------------------------------------------------

TEST(HugeTest, PeriodicWakeRunsTheDaemonFromTheTouchPath) {
  KernelParams params = SmallParams();
  params.huge_wake_interval = 64;
  Kernel kernel(params);
  Task* task = kernel.CreateTask("app");
  const VirtAddr base = MapAnon(kernel, *task, 16, 0x40000000);
  for (uint32_t i = 0; i < 16; ++i) {
    kernel.WritePage(*task, base + i * kPageSize, 100 + i);
  }
  // Touch traffic drives the wake counter past the interval; huged runs
  // from the same wake points as kswapd/ksmd and collapses the block.
  for (uint32_t i = 0; i < 256 && kernel.counters().huge_scans == 0; ++i) {
    kernel.TouchPage(*task, base, AccessType::kRead);
  }
  EXPECT_GE(kernel.counters().huge_scans, 1u);
  EXPECT_EQ(kernel.counters().huge_collapses, 1u);
  EXPECT_TRUE(BlockIsCollapsed(*task, base));
  ExpectAuditOk(kernel, "after periodic collapse");
}

// ---------------------------------------------------------------------------
// Boot-time 1 MB sections over the zygote's preloaded code.
// ---------------------------------------------------------------------------

VirtAddr FirstSectionVa(Task& task) {
  const PageTable& pt = task.mm->page_table();
  for (uint64_t va = 0; va < kUserSpaceEnd; va += kSectionSize) {
    if (pt.SectionAt(static_cast<VirtAddr>(va)) != nullptr) {
      return static_cast<VirtAddr>(va);
    }
  }
  return 0;
}

TEST(HugeSectionTest, BootMapsZygoteCodeWithSections) {
  System system(ConfigByName("huge"));
  Kernel& kernel = system.kernel();
  Task* zygote = system.android().zygote();

  EXPECT_GT(kernel.counters().huge_sections_mapped, 0u);
  const VirtAddr section_va = FirstSectionVa(*zygote);
  ASSERT_NE(section_va, 0u);
  const SectionDesc* section =
      zygote->mm->page_table().SectionAt(section_va);
  ASSERT_NE(section, nullptr);
  EXPECT_EQ(section->base % kPtesPerSection, 0u);
  EXPECT_TRUE(section->executable);

  // Execution through the section works; writing into the read-only
  // zygote code does not.
  EXPECT_TRUE(kernel.TouchPage(*zygote, section_va + 5 * kPageSize,
                               AccessType::kExecute));
  EXPECT_EQ(kernel.TouchPageStatus(*zygote, section_va, AccessType::kWrite),
            TouchStatus::kSigSegv);

  // The section halves show up as resident huge pages in smaps.
  const SmapsReport report = GenerateSmaps(
      *zygote->mm, kernel.ptp_allocator(), &kernel.rmap(), &kernel.phys());
  EXPECT_GE(report.total_huge_kb,
            kernel.counters().huge_sections_mapped * (kSectionSize / 1024));

  const AuditReport audit = kernel.AuditInvariants();
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST(HugeSectionTest, ForkedAppInheritsSections) {
  System system(ConfigByName("huge"));
  Kernel& kernel = system.kernel();
  Task* zygote = system.android().zygote();
  const VirtAddr section_va = FirstSectionVa(*zygote);
  ASSERT_NE(section_va, 0u);

  Task* app = system.android().ForkApp("app");
  ASSERT_NE(app, nullptr);
  const SectionDesc* parent_section =
      zygote->mm->page_table().SectionAt(section_va);
  const SectionDesc* child_section =
      app->mm->page_table().SectionAt(section_va);
  ASSERT_NE(child_section, nullptr);
  EXPECT_EQ(child_section->base, parent_section->base);
  EXPECT_TRUE(kernel.TouchPage(*app, section_va, AccessType::kExecute));

  const AuditReport audit = kernel.AuditInvariants();
  EXPECT_TRUE(audit.ok()) << audit.ToString();

  kernel.Exit(*app);
  const AuditReport after = kernel.AuditInvariants();
  EXPECT_TRUE(after.ok()) << after.ToString();
}

}  // namespace
}  // namespace sat
