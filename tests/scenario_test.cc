// Tests for the composable scenario engine (src/scenario): the DSL
// parser's round-trip and errno-style rejection behaviour, the element
// library's configuration validation, sharding arithmetic, and the
// determinism contract — a sharded scenario run is bit-identical whether
// its shard jobs run serially or on 4 workers.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/common.h"
#include "src/scenario/parser.h"
#include "src/scenario/registry.h"
#include "src/scenario/runner.h"

#ifndef SAT_SCENARIO_DIR
#define SAT_SCENARIO_DIR "scenarios"
#endif

namespace sat {
namespace {

const char* const kCheckedInScenarios[] = {
    "app_server_farm.scn", "phone_fleet_diurnal.scn", "fork_storm_10k.scn",
    "swap_thrash_ksm.scn", "chaos_soak.scn", "numa_fleet.scn",
};

// ---------------------------------------------------------------------------
// Parser: round-trip, settings, chains, anonymous elements.
// ---------------------------------------------------------------------------

TEST(ScenarioParserTest, EveryCheckedInScenarioParsesAndRoundTrips) {
  for (const char* name : kCheckedInScenarios) {
    const std::string path = std::string(SAT_SCENARIO_DIR) + "/" + name;
    const ScenarioParseResult first =
        ParseScenarioFile(path, &ElementRegistry::Default());
    ASSERT_TRUE(first.ok()) << first.FormatError(path);
    EXPECT_FALSE(first.graph.elements.empty()) << path;

    // Print -> reparse -> print must be a fixed point: the canonical
    // form loses nothing the engine consumes.
    const std::string printed = first.graph.ToString();
    const ScenarioParseResult second = ParseScenario(
        printed, first.graph.name, &ElementRegistry::Default());
    ASSERT_TRUE(second.ok()) << path << " reparse: "
                             << second.FormatError("<printed>");
    EXPECT_EQ(printed, second.graph.ToString()) << path;
    ASSERT_EQ(first.graph.elements.size(), second.graph.elements.size());
    for (size_t i = 0; i < first.graph.elements.size(); ++i) {
      EXPECT_EQ(first.graph.elements[i].name, second.graph.elements[i].name);
      EXPECT_EQ(first.graph.elements[i].kind, second.graph.elements[i].kind);
    }
    ASSERT_EQ(first.graph.edges.size(), second.graph.edges.size());
    for (size_t i = 0; i < first.graph.edges.size(); ++i) {
      EXPECT_EQ(first.graph.edges[i].from, second.graph.edges[i].from);
      EXPECT_EQ(first.graph.edges[i].to, second.graph.edges[i].to);
    }
    ASSERT_EQ(first.graph.settings.size(), second.graph.settings.size());
    for (size_t i = 0; i < first.graph.settings.size(); ++i) {
      EXPECT_EQ(first.graph.settings[i].key, second.graph.settings[i].key);
      EXPECT_EQ(first.graph.settings[i].value,
                second.graph.settings[i].value);
    }
  }
}

TEST(ScenarioParserTest, ChainDeclaresAnonymousElementsInline) {
  const ScenarioParseResult result = ParseScenario(
      "storm :: SpawnStorm(count 8, rate 2);\n"
      "storm -> MemoryChurn(pages 16) -> SwapThrash(pages 8, procs 0);\n",
      "inline", &ElementRegistry::Default());
  ASSERT_TRUE(result.ok()) << result.FormatError("inline");
  ASSERT_EQ(result.graph.elements.size(), 3u);
  EXPECT_EQ(result.graph.elements[1].kind, "MemoryChurn");
  EXPECT_EQ(result.graph.elements[2].kind, "SwapThrash");
  ASSERT_EQ(result.graph.edges.size(), 2u);
  EXPECT_EQ(result.graph.edges[0].from, 0u);
  EXPECT_EQ(result.graph.edges[0].to, 1u);
  EXPECT_EQ(result.graph.edges[1].from, 1u);
  EXPECT_EQ(result.graph.edges[1].to, 2u);
}

TEST(ScenarioParserTest, UnknownElementKindIsEfaultWithPosition) {
  const ScenarioParseResult result =
      ParseScenario("x :: FrokStorm(count 8);\n", "bad",
                    &ElementRegistry::Default());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error, Errno::kEfault);
  EXPECT_EQ(result.line, 1);
  EXPECT_EQ(result.column, 6);
  EXPECT_NE(result.message.find("FrokStorm"), std::string::npos);
  // Known kinds are listed so a typo is a one-glance fix.
  EXPECT_NE(result.message.find("SpawnStorm"), std::string::npos);
  EXPECT_NE(result.FormatError("bad.scn").find("bad.scn:1:6"),
            std::string::npos);
  EXPECT_NE(result.FormatError("bad.scn").find("EFAULT"), std::string::npos);
}

TEST(ScenarioParserTest, UnknownParameterIsEinvalAtTheElementLine) {
  const ScenarioParseResult result = ParseScenario(
      "# comment\nx :: SpawnStorm(cout 8);\n", "bad",
      &ElementRegistry::Default());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error, Errno::kEinval);
  EXPECT_EQ(result.line, 2);
  EXPECT_NE(result.message.find("cout"), std::string::npos);
}

TEST(ScenarioParserTest, IllTypedParameterIsEinval) {
  const ScenarioParseResult result =
      ParseScenario("x :: SpawnStorm(count lots);\n", "bad",
                    &ElementRegistry::Default());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error, Errno::kEinval);
  EXPECT_NE(result.message.find("count"), std::string::npos);
}

TEST(ScenarioParserTest, ElementLevelValidationRejectsBadValues) {
  // ForkBomb rejects fanout 0; MemoryChurn rejects dirty outside [0,1];
  // LaunchReplay rejects apps not in the paper suite.
  EXPECT_EQ(ParseScenario("x :: ForkBomb(fanout 0);", "b",
                          &ElementRegistry::Default())
                .error,
            Errno::kEinval);
  EXPECT_EQ(ParseScenario("x :: MemoryChurn(dirty 1.5);", "b",
                          &ElementRegistry::Default())
                .error,
            Errno::kEinval);
  EXPECT_EQ(ParseScenario("x :: LaunchReplay(app NoSuchApp);", "b",
                          &ElementRegistry::Default())
                .error,
            Errno::kEfault);
}

TEST(ScenarioParserTest, UnknownSettingAndBadSettingValuesAreRejected) {
  const ElementRegistry& reg = ElementRegistry::Default();
  EXPECT_EQ(ParseScenario("set tiks 100;", "b", &reg).error, Errno::kEinval);
  EXPECT_EQ(ParseScenario("set ticks many;", "b", &reg).error,
            Errno::kEinval);
  EXPECT_EQ(ParseScenario("set config no-such-config;", "b", &reg).error,
            Errno::kEfault);
  EXPECT_EQ(ParseScenario("set shootdown sometimes;", "b", &reg).error,
            Errno::kEinval);
  EXPECT_EQ(ParseScenario("set pt_placement sometimes;", "b", &reg).error,
            Errno::kEinval);
  EXPECT_EQ(ParseScenario("set ksm maybe;", "b", &reg).error, Errno::kEinval);
}

TEST(ScenarioParserTest, SyntaxErrorsCarryLineAndColumn) {
  const ScenarioParseResult result = ParseScenario(
      "storm :: SpawnStorm(count 4);\nstorm -> ;\n", "bad",
      &ElementRegistry::Default());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error, Errno::kEinval);
  EXPECT_EQ(result.line, 2);
}

TEST(ScenarioParserTest, ChainToUndeclaredElementIsEfault) {
  const ScenarioParseResult result =
      ParseScenario("a :: SpawnStorm(count 4);\na -> b;\n", "bad",
                    &ElementRegistry::Default());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error, Errno::kEfault);
  EXPECT_NE(result.message.find("'b'"), std::string::npos);
}

TEST(ScenarioParserTest, DuplicateElementNameIsRejected) {
  const ScenarioParseResult result = ParseScenario(
      "a :: SpawnStorm(count 4);\na :: MemoryChurn(pages 8);\n", "bad",
      &ElementRegistry::Default());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error, Errno::kEinval);
}

TEST(ScenarioParserTest, MissingFileIsEfault) {
  const ScenarioParseResult result = ParseScenarioFile(
      "/no/such/dir/x.scn", &ElementRegistry::Default());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error, Errno::kEfault);
}

TEST(ScenarioParserTest, NameFromPathStripsDirectoryAndExtension) {
  EXPECT_EQ(ScenarioNameFromPath("scenarios/fork_storm_10k.scn"),
            "fork_storm_10k");
  EXPECT_EQ(ScenarioNameFromPath("chaos.scn"), "chaos");
  EXPECT_EQ(ScenarioNameFromPath("noext"), "noext");
}

// ---------------------------------------------------------------------------
// Settings reach the built SystemConfig.
// ---------------------------------------------------------------------------

TEST(ScenarioRunnerTest, SettingsShapeTheSystemConfig) {
  const ScenarioParseResult result = ParseScenario(
      "set config stock;\nset phys_mb 128;\nset swap_mb 64;\n"
      "set cores 4;\nset nodes 2;\nset shootdown batched;\n"
      "set ksm true;\nset seed 99;\nset shards 3;\n"
      "x :: SpawnStorm(count 4);\n",
      "cfg", &ElementRegistry::Default());
  ASSERT_TRUE(result.ok()) << result.FormatError("cfg");
  const SystemConfig config = ScenarioSystemConfig(result.graph);
  EXPECT_FALSE(config.share_ptps);
  EXPECT_EQ(config.pt_placement, PtPlacement::kLocal);
  EXPECT_EQ(config.phys_bytes, 128ull * 1024 * 1024);
  EXPECT_EQ(config.swap_bytes, 64ull * 1024 * 1024);
  EXPECT_EQ(config.num_cores, 4u);
  EXPECT_EQ(config.num_nodes, 2u);
  EXPECT_EQ(config.shootdown_policy, ShootdownPolicy::kBatched);
  EXPECT_TRUE(config.ksm);
  EXPECT_EQ(config.seed, 99u);
  EXPECT_EQ(ScenarioShardCount(result.graph), 3u);
}

// ---------------------------------------------------------------------------
// Sharding arithmetic.
// ---------------------------------------------------------------------------

TEST(ScenarioContextTest, ShardSharesSumToTheDeclaredTotal) {
  for (uint32_t shards : {1u, 2u, 3u, 4u, 7u}) {
    for (uint64_t total : {0ull, 1ull, 5ull, 100ull, 2400ull, 10007ull}) {
      uint64_t sum = 0;
      uint64_t max_share = 0, min_share = ~0ull;
      for (uint32_t i = 0; i < shards; ++i) {
        ScenarioContext ctx(nullptr, 1, i, shards, 1.0);
        const uint64_t share = ctx.ShardShare(total);
        sum += share;
        max_share = std::max(max_share, share);
        min_share = std::min(min_share, share);
      }
      EXPECT_EQ(sum, total) << shards << " shards of " << total;
      EXPECT_LE(max_share - min_share, 1u);
    }
  }
}

TEST(ScenarioContextTest, SmokeScalingNeverRoundsToZero) {
  ScenarioContext ctx(nullptr, 1, 0, 1, 0.05);
  EXPECT_EQ(ctx.Scaled(0), 0u);    // zero stays zero (feature off)
  EXPECT_EQ(ctx.Scaled(1), 1u);    // tiny populations survive
  EXPECT_EQ(ctx.Scaled(10000), 500u);
}

// ---------------------------------------------------------------------------
// End-to-end: a small graph runs, spawns, tears down audit-clean.
// ---------------------------------------------------------------------------

const char kSmallGraph[] =
    "set ticks 12;\n"
    "set shards 4;\n"
    "storm :: SpawnStorm(count 24, rate 4, lifetime 2, touch_pages 4);\n"
    "churn :: MemoryChurn(pages 32, touches 8, dirty 0.5, values 4);\n"
    "storm -> churn;\n";

TEST(ScenarioRunnerTest, SmallGraphRunsToCompletionAuditClean) {
  const ScenarioParseResult parsed =
      ParseScenario(kSmallGraph, "small", &ElementRegistry::Default());
  ASSERT_TRUE(parsed.ok()) << parsed.FormatError("small");
  System system(ScenarioSystemConfig(parsed.graph));
  ScenarioRunConfig run;
  run.shard_index = 0;
  run.shard_count = 1;
  run.rng_seed = 7;
  const ScenarioRunOutcome outcome = RunScenarioOnSystem(
      &system, parsed.graph, ElementRegistry::Default(), run);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.message;
  EXPECT_TRUE(outcome.audit_ok) << outcome.audit_report;
  EXPECT_GT(outcome.audit_checks, 0u);
  EXPECT_EQ(outcome.stats.processes_spawned, 24u);
  EXPECT_EQ(outcome.stats.processes_exited + outcome.stats.processes_lost,
            outcome.stats.processes_spawned);
  EXPECT_GT(outcome.stats.pages_touched, 0u);
}

TEST(ScenarioRunnerTest, UnknownKindAtRunTimeIsEfault) {
  // A graph parsed without registry validation can carry kinds the
  // runtime registry lacks; the runner must fail cleanly, not crash.
  const ScenarioParseResult parsed =
      ParseScenario("x :: NotARealElement(a 1);", "bad", nullptr);
  ASSERT_TRUE(parsed.ok());
  System system(ScenarioSystemConfig(parsed.graph));
  const ScenarioRunOutcome outcome = RunScenarioOnSystem(
      &system, parsed.graph, ElementRegistry::Default(), ScenarioRunConfig{});
  EXPECT_EQ(outcome.status.error, Errno::kEfault);
}

// ---------------------------------------------------------------------------
// The determinism contract: the sharded scenario run is bit-identical
// whether its shard jobs run serially or on 4 workers.
// ---------------------------------------------------------------------------

std::vector<JobRecord> RunShardedScenario(const ScenarioGraph& graph,
                                          uint32_t jobs) {
  BenchOptions options;
  options.jobs = jobs;
  Harness harness(graph.name, options);
  const uint32_t shards = ScenarioShardCount(graph);
  for (uint32_t shard = 0; shard < shards; ++shard) {
    const std::string job_name = "shard" + std::to_string(shard);
    harness.AddCustomJob(job_name, [&harness, graph, shard, shards,
                                    job_name](JobRecord& record) {
      const SystemConfig config =
          harness.Resolve(ScenarioSystemConfig(graph), job_name);
      System system(config);
      ScenarioRunConfig run;
      run.shard_index = shard;
      run.shard_count = shards;
      run.rng_seed = DeriveJobSeed(config.seed, graph.name, job_name);
      const ScenarioRunOutcome outcome = RunScenarioOnSystem(
          &system, graph, ElementRegistry::Default(), run);
      ASSERT_TRUE(outcome.ok()) << outcome.status.message
                                << outcome.audit_report;
      RecordScenarioStats(outcome.stats, &record);
      Harness::CaptureSystem(system, &record);
    });
  }
  EXPECT_TRUE(harness.Run());
  return harness.records();
}

TEST(ScenarioRunnerTest, ShardedRunIsBitIdenticalAcrossJobCounts) {
  const ScenarioParseResult parsed =
      ParseScenario(kSmallGraph, "small", &ElementRegistry::Default());
  ASSERT_TRUE(parsed.ok()) << parsed.FormatError("small");

  const std::vector<JobRecord> serial = RunShardedScenario(parsed.graph, 1);
  const std::vector<JobRecord> parallel = RunShardedScenario(parsed.graph, 4);

  ASSERT_EQ(serial.size(), 4u);
  ASSERT_EQ(serial.size(), parallel.size());
  uint64_t spawned_total = 0;
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].config, parallel[i].config);
    // Every metric — scenario stats AND all captured kernel/core
    // counters — must match exactly; host_ms is the only field allowed
    // to differ between runs.
    ASSERT_EQ(serial[i].metrics.size(), parallel[i].metrics.size());
    for (size_t m = 0; m < serial[i].metrics.size(); ++m) {
      EXPECT_EQ(serial[i].metrics[m].first, parallel[i].metrics[m].first);
      EXPECT_EQ(serial[i].metrics[m].second, parallel[i].metrics[m].second)
          << serial[i].config << " " << serial[i].metrics[m].first;
    }
    spawned_total += static_cast<uint64_t>(
        MetricOr(serial[i], "scenario.processes_spawned"));
  }
  // The shards split the scenario-wide population exactly.
  EXPECT_EQ(spawned_total, 24u);
}

// ---------------------------------------------------------------------------
// The NUMA fleet: SpawnStorm sharded across the cores places anon
// frames first-touch on the spawning core's node, NumaSweep feeds
// numad's placement policy, and the whole run stays bit-identical at
// any --jobs value — with the numa counters live in every record.
// ---------------------------------------------------------------------------

TEST(ScenarioRunnerTest, SpawnStormPlacesAnonFramesFirstTouchAcrossNodes) {
  SystemConfig config = ConfigByName("shared-ptp-tlb");
  config.num_cores = 8;
  config.num_nodes = 4;
  System system(config);
  PhysicalMemory& phys = system.kernel().phys();
  const uint64_t fallbacks_before = phys.numa_fallbacks();
  std::vector<uint64_t> before(phys.num_nodes());
  for (uint32_t n = 0; n < phys.num_nodes(); ++n) {
    before[n] = phys.free_frames_on_node(n);
  }

  ScenarioContext ctx(&system, /*rng_seed=*/7, 0, 1, 1.0);
  std::unique_ptr<WorkloadElement> storm =
      ElementRegistry::Default().Create("SpawnStorm");
  ASSERT_NE(storm, nullptr);
  storm->set_name("storm");
  ElementParams params;
  params.items = {{"count", "8"}, {"rate", "8"}, {"lifetime", "100"},
                  {"touch_pages", "8"}};
  ASSERT_TRUE(storm->Configure(params).ok());
  ctx.set_tick(0);
  storm->Tick(ctx);

  // Eight workers round-robin over eight cores = two per node, each
  // touching an 8-page heap: first-touch placement puts those frames
  // (and the PTPs behind them) on the touching core's node, so every
  // node's free count drops — not just node 0's — and no allocation had
  // to fall back to a remote node to get there.
  for (uint32_t n = 0; n < phys.num_nodes(); ++n) {
    EXPECT_LT(phys.free_frames_on_node(n), before[n]) << "node " << n;
  }
  EXPECT_EQ(phys.numa_fallbacks(), fallbacks_before);

  ctx.ExitAll();
  const AuditReport audit = system.kernel().AuditInvariants();
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

const char kNumaGraph[] =
    "set config shared-ptp-tlb;\n"
    "set ticks 16;\n"
    "set shards 4;\n"
    "set cores 8;\n"
    "set nodes 4;\n"
    "set pt_placement replicate;\n"
    "storm :: SpawnStorm(count 48, rate 6, lifetime 2, touch_pages 8);\n"
    "sweep :: NumaSweep(procs 8, shared_pages 12, anon_pages 8, "
    "touches 16, numad_every 4);\n"
    "storm -> sweep;\n";

TEST(ScenarioRunnerTest, NumaFleetIsBitIdenticalAcrossJobCounts) {
  const ScenarioParseResult parsed =
      ParseScenario(kNumaGraph, "numa", &ElementRegistry::Default());
  ASSERT_TRUE(parsed.ok()) << parsed.FormatError("numa");

  const std::vector<JobRecord> serial = RunShardedScenario(parsed.graph, 1);
  const std::vector<JobRecord> parallel = RunShardedScenario(parsed.graph, 4);

  ASSERT_EQ(serial.size(), 4u);
  ASSERT_EQ(serial.size(), parallel.size());
  double walks = 0, promotions = 0;
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].config, parallel[i].config);
    ASSERT_EQ(serial[i].metrics.size(), parallel[i].metrics.size());
    for (size_t m = 0; m < serial[i].metrics.size(); ++m) {
      EXPECT_EQ(serial[i].metrics[m].first, parallel[i].metrics[m].first);
      EXPECT_EQ(serial[i].metrics[m].second, parallel[i].metrics[m].second)
          << serial[i].config << " " << serial[i].metrics[m].first;
    }
    walks += MetricOr(serial[i], "counters.numa_walks");
    promotions += MetricOr(serial[i], "counters.numa_replica_promotions");
  }
  // The numa counters made it into the records, and the fleet actually
  // exercised the replication machinery on every shard set.
  EXPECT_GT(walks, 0.0);
  EXPECT_GT(promotions, 0.0);
}

// ---------------------------------------------------------------------------
// The --scenario preconditioning hook in the shared harness parser.
// ---------------------------------------------------------------------------

TEST(HarnessScenarioTest, ParseHarnessArgsLoadsAndValidatesScenario) {
  const std::string path = std::string(SAT_SCENARIO_DIR) + "/chaos_soak.scn";
  std::string scenario_flag = "--scenario=" + path;
  std::string jobs_flag = "--jobs=1";
  char prog[] = "scenario_test";
  char* argv[] = {prog, scenario_flag.data(), jobs_flag.data(), nullptr};
  int argc = 3;
  const BenchOptions options = ParseHarnessArgs(&argc, argv);
  EXPECT_EQ(argc, 1);  // harness flags consumed
  ASSERT_TRUE(options.scenario_set);
  EXPECT_EQ(options.scenario_graph.name, "chaos_soak");
  EXPECT_FALSE(options.scenario_graph.elements.empty());
}

TEST(HarnessScenarioTest, SystemJobsRunTheScenarioAsPreconditioning) {
  BenchOptions options;
  options.jobs = 1;
  options.smoke = true;  // shrink the soak for test time
  const ScenarioParseResult parsed =
      ParseScenario(kSmallGraph, "small", &ElementRegistry::Default());
  ASSERT_TRUE(parsed.ok());
  options.scenario_graph = parsed.graph;
  options.scenario_set = true;
  Harness harness("scenario_precondition_test", options);
  harness.AddJob("stock", ConfigByName("stock"),
                 [](System& system, JobRecord& record) {
                   record.Metric("live_after",
                                 static_cast<double>(
                                     system.kernel().tasks().size()));
                 });
  ASSERT_TRUE(harness.Run());
  const JobRecord& record = harness.record(0);
  EXPECT_GT(MetricOr(record, "scenario.processes_spawned"), 0.0);
  EXPECT_EQ(MetricOr(record, "scenario.processes_spawned"),
            MetricOr(record, "scenario.processes_exited") +
                MetricOr(record, "scenario.processes_lost"));
}

}  // namespace
}  // namespace sat
