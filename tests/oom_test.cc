// Memory-pressure robustness: the allocate -> direct-reclaim -> OOM-kill
// chain, fork's ENOMEM rollback, and TouchPage's outcome reporting.
//
// The deterministic FaultInjector stands in for exhaustion where a
// precise failure point matters (rollback at every partial-copy depth);
// genuinely tiny machines exercise the real thing (self-sacrifice under
// pressure, the 32 MB fork-bomb of the acceptance criteria).

#include <gtest/gtest.h>

#include <vector>

#include "src/core/sat.h"

namespace sat {
namespace {

// A non-zygote task with `regions` separately-slotted anon regions of
// `pages` pages each, all touched — so a stock fork must copy one PTP per
// region and the task has a predictable RSS.
Task* MakeTouchedTask(Kernel& kernel, const std::string& name,
                      uint32_t regions, uint32_t pages,
                      VirtAddr base = 0x40000000) {
  Task* task = kernel.CreateTask(name);
  for (uint32_t r = 0; r < regions; ++r) {
    MmapRequest request;
    request.length = pages * kPageSize;
    request.prot = VmProt::ReadWrite();
    request.kind = VmKind::kAnonPrivate;
    request.fixed_address = base + r * kPtpSpan;
    EXPECT_NE(kernel.Mmap(*task, request).value, 0u);
    for (uint32_t i = 0; i < pages; ++i) {
      EXPECT_TRUE(kernel.TouchPage(*task, request.fixed_address + i * kPageSize,
                                   AccessType::kWrite));
    }
  }
  return task;
}

// ---------------------------------------------------------------------------
// Fork ENOMEM rollback.
// ---------------------------------------------------------------------------

TEST(OomTest, ForkEnomemRollsBackCompletely) {
  KernelParams params;
  params.phys_bytes = 32ull * 1024 * 1024;
  Kernel kernel(params);
  Task* parent = MakeTouchedTask(kernel, "parent", 4, 16);

  const uint64_t frames_before = kernel.phys().used_frames();
  const uint64_t ptps_before = kernel.ptp_allocator().live_ptps();
  const size_t tasks_before = kernel.tasks().size();

  // Every allocation fails; there is no file cache and both fork sides
  // are immune, so the fork must fail and fully undo itself.
  kernel.fault_injector().SetRule(AllocSite::kPtp, FaultRule{0, 1, 0.0});
  kernel.fault_injector().SetRule(AllocSite::kFrame, FaultRule{0, 1, 0.0});
  const ForkOutcome failed = kernel.Fork(*parent, "child");
  EXPECT_EQ(failed.child, nullptr);
  EXPECT_EQ(failed.error, Errno::kEnomem);
  EXPECT_EQ(kernel.counters().forks_failed, 1u);

  EXPECT_EQ(kernel.phys().used_frames(), frames_before);
  EXPECT_EQ(kernel.ptp_allocator().live_ptps(), ptps_before);
  EXPECT_EQ(kernel.tasks().size(), tasks_before);
  AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();

  // With injection off the retry succeeds — and gets the pid and ASID the
  // failed attempt un-issued (nothing leaked from the id spaces either).
  kernel.fault_injector().Reset();
  Task* child = kernel.Fork(*parent, "child").child;
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->pid, parent->pid + 1);
  EXPECT_EQ(child->asid, parent->asid + 1);
  report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(OomTest, ForkRollbackLeaksNothingAtAnyDepth) {
  // Fail the Nth page-table-page allocation of the fork's copy loop, for
  // every N: each depth leaves a differently-shaped partial child, and
  // every one must be torn down to exactly the pre-fork state.
  for (uint64_t depth = 1; depth <= 10; ++depth) {
    KernelParams params;
    params.phys_bytes = 32ull * 1024 * 1024;
    Kernel kernel(params);
    Task* parent = MakeTouchedTask(kernel, "parent", 8, 4);

    const uint64_t frames_before = kernel.phys().used_frames();
    const uint64_t ptps_before = kernel.ptp_allocator().live_ptps();

    kernel.fault_injector().Reset();
    kernel.fault_injector().SetRule(AllocSite::kPtp,
                                    FaultRule{depth, 0, 0.0});
    Task* child = kernel.Fork(*parent, "child").child;
    if (child == nullptr) {
      EXPECT_EQ(kernel.phys().used_frames(), frames_before)
          << "frames leaked at rollback depth " << depth;
      EXPECT_EQ(kernel.ptp_allocator().live_ptps(), ptps_before)
          << "PTPs leaked at rollback depth " << depth;
    } else {
      // The fork needed fewer than `depth` PTP allocations (fail_nth
      // never fired, or reclaim saved it): a success is fine too.
      kernel.Exit(*child);
    }
    const AuditReport report = kernel.AuditInvariants();
    EXPECT_TRUE(report.ok()) << "depth " << depth << ":\n"
                             << report.ToString();
  }
}

// ---------------------------------------------------------------------------
// TouchPage outcome reporting.
// ---------------------------------------------------------------------------

TEST(OomTest, TouchDistinguishesSegvFromOomKill) {
  KernelParams params;
  params.phys_bytes = 8ull * 1024 * 1024;
  Kernel kernel(params);
  Task* task = kernel.CreateTask("toucher");

  // A bad address is a SIGSEGV, not a death sentence.
  EXPECT_EQ(kernel.TouchPageStatus(*task, 0x70000000, AccessType::kRead),
            TouchStatus::kSigSegv);
  EXPECT_TRUE(task->alive);
  EXPECT_EQ(kernel.counters().oom_kills, 0u);

  // Touching more anon memory than the machine has: with no file cache to
  // reclaim and no other task to kill, the toucher falls on its own sword.
  MmapRequest request;
  request.length = 3000 * kPageSize;  // > 2048 frames of an 8 MB machine
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  const VirtAddr base = kernel.Mmap(*task, request).value;
  ASSERT_NE(base, 0u);

  TouchStatus status = TouchStatus::kOk;
  uint32_t touched = 0;
  for (uint32_t i = 0; i < 3000 && status == TouchStatus::kOk; ++i) {
    status = kernel.TouchPageStatus(*task, base + i * kPageSize,
                                    AccessType::kWrite);
    if (status == TouchStatus::kOk) {
      touched++;
    }
  }
  EXPECT_EQ(status, TouchStatus::kOomKill);
  EXPECT_FALSE(task->alive);
  EXPECT_TRUE(task->oom_killed);
  EXPECT_EQ(kernel.counters().oom_kills, 1u);
  EXPECT_GT(touched, 1000u);  // it got most of the machine first

  // The kill tore the whole address space down: nothing anon remains.
  EXPECT_EQ(kernel.phys().CountFrames(FrameKind::kAnon), 0u);
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// ---------------------------------------------------------------------------
// Victim selection and the reclaim-first policy.
// ---------------------------------------------------------------------------

TEST(OomTest, OomKillerPrefersLargestRssAndSparesZygote) {
  KernelParams params;
  params.phys_bytes = 64ull * 1024 * 1024;
  Kernel kernel(params);

  Task* zygote = MakeTouchedTask(kernel, "zygote", 2, 64, 0x40000000);
  kernel.Exec(*zygote, "app_process", /*is_zygote=*/true);
  MmapRequest request;
  request.length = 64 * kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  request.fixed_address = 0x40000000;
  ASSERT_NE(kernel.Mmap(*zygote, request).value, 0u);
  for (uint32_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(kernel.TouchPage(*zygote, 0x40000000 + i * kPageSize,
                                 AccessType::kWrite));
  }

  Task* small = MakeTouchedTask(kernel, "small", 1, 8, 0x50000000);
  Task* big = MakeTouchedTask(kernel, "big", 2, 24, 0x60000000);
  EXPECT_GT(kernel.TaskRssPages(*zygote), kernel.TaskRssPages(*big));
  EXPECT_GT(kernel.TaskRssPages(*big), kernel.TaskRssPages(*small));

  // The zygote has the largest RSS but is never a victim.
  EXPECT_EQ(kernel.PickOomVictim(nullptr), big);
  EXPECT_EQ(kernel.PickOomVictim(big), small);
  EXPECT_EQ(kernel.PickOomVictim(big, small), nullptr);

  // No file cache: stage 1 reclaims nothing, stage 2 kills `big`.
  EXPECT_TRUE(kernel.RelieveMemoryPressure(nullptr));
  EXPECT_EQ(kernel.counters().oom_kills, 1u);
  EXPECT_FALSE(big->alive);
  EXPECT_TRUE(big->oom_killed);
  EXPECT_TRUE(zygote->alive);
  EXPECT_TRUE(small->alive);
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(OomTest, DirectReclaimRunsBeforeAnyKill) {
  KernelParams params;
  params.phys_bytes = 64ull * 1024 * 1024;
  Kernel kernel(params);

  // One task with plenty of clean file-cache pages, one pure-anon task.
  Task* reader = kernel.CreateTask("reader");
  MmapRequest request;
  request.length = 300 * kPageSize;
  request.prot = VmProt::ReadOnly();
  request.kind = VmKind::kFilePrivate;
  request.file = 7;
  const VirtAddr base = kernel.Mmap(*reader, request).value;
  ASSERT_NE(base, 0u);
  for (uint32_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        kernel.TouchPage(*reader, base + i * kPageSize, AccessType::kRead));
  }
  Task* anon = MakeTouchedTask(kernel, "anon", 1, 32, 0x60000000);

  const uint64_t free_before = kernel.phys().free_frames();
  EXPECT_TRUE(kernel.RelieveMemoryPressure(nullptr));
  EXPECT_EQ(kernel.counters().direct_reclaims, 1u);
  EXPECT_EQ(kernel.counters().oom_kills, 0u);  // cache spared everyone
  EXPECT_GT(kernel.phys().free_frames(), free_before);
  EXPECT_TRUE(reader->alive);
  EXPECT_TRUE(anon->alive);
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// ---------------------------------------------------------------------------
// The acceptance scenario: a fork-bomb on a 32 MB machine.
// ---------------------------------------------------------------------------

TEST(OomTest, ForkBombOn32MbMachineTerminatesCleanly) {
  SystemConfig config = ConfigByName("shared-ptp-tlb");
  config.phys_bytes = 32ull * 1024 * 1024;
  System system(config);
  Kernel& kernel = system.kernel();

  uint64_t forks_attempted = 0;
  uint64_t forks_denied = 0;
  std::vector<Task*> children;
  for (int i = 0; i < 24; ++i) {
    forks_attempted++;
    Task* child = system.android().ForkApp("bomb" + std::to_string(i));
    if (child == nullptr) {
      forks_denied++;
      continue;
    }
    children.push_back(child);
    // Each surviving child dirties a fresh anon region, pushing the
    // machine into reclaim and then into the OOM killer.
    MmapRequest request;
    request.length = 192 * kPageSize;
    request.prot = VmProt::ReadWrite();
    request.kind = VmKind::kAnonPrivate;
    const VirtAddr base = kernel.Mmap(*child, request).value;
    if (base == 0 || !child->alive) {
      continue;
    }
    for (uint32_t page = 0; page < 192; ++page) {
      if (kernel.TouchPageStatus(*child, base + page * kPageSize,
                                 AccessType::kWrite) != TouchStatus::kOk) {
        break;
      }
    }
  }

  // The machine survived; the zygote is untouchable and still alive.
  EXPECT_TRUE(system.android().zygote()->alive);
  EXPECT_FALSE(system.android().zygote()->oom_killed);

  // Pressure actually happened, and the chain ran in order: reclaim
  // passes first, OOM kills once the cache was spent.
  const KernelCounters& counters = kernel.counters();
  EXPECT_GT(counters.direct_reclaims, 0u);
  EXPECT_GT(counters.oom_kills + counters.forks_failed, 0u);
  EXPECT_EQ(counters.forks_failed, forks_denied);

  // Counter accuracy: every recorded kill is a dead task flagged
  // oom_killed, and vice versa.
  uint64_t flagged = 0;
  for (const auto& task : kernel.tasks()) {
    if (task->oom_killed) {
      EXPECT_FALSE(task->alive);
      flagged++;
    }
  }
  EXPECT_EQ(flagged, counters.oom_kills);

  AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();

  for (Task* child : children) {
    if (child->alive) {
      kernel.Exit(*child);
    }
  }
  report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace sat
