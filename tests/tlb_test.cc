// Unit tests for the TLB models: ASID/global matching, domain checks,
// permission checks, flush operations, replacement, and large pages.

#include <gtest/gtest.h>

#include "src/tlb/tlb.h"

namespace sat {
namespace {

TlbEntry MakeEntry(uint32_t vpn, Asid asid, bool global = false,
                   DomainId domain = kDomainUser,
                   PtePerm perm = PtePerm::kReadOnly, bool executable = true,
                   uint32_t size_pages = 1) {
  TlbEntry entry;
  entry.valid = true;
  entry.vpn = vpn;
  entry.size_pages = size_pages;
  entry.asid = asid;
  entry.global = global;
  entry.domain = domain;
  entry.perm = perm;
  entry.executable = executable;
  entry.frame = vpn + 1000;
  return entry;
}

DomainAccessControl UserDacr() { return DomainAccessControl::StockDefault(); }
DomainAccessControl ZygoteDacr() { return DomainAccessControl::ZygoteLike(); }

// ---------------------------------------------------------------------------
// Entry matching.
// ---------------------------------------------------------------------------

TEST(TlbEntryTest, AsidMatch) {
  const TlbEntry entry = MakeEntry(100, 5);
  EXPECT_TRUE(entry.Matches(100, 5));
  EXPECT_FALSE(entry.Matches(100, 6));
  EXPECT_FALSE(entry.Matches(101, 5));
}

TEST(TlbEntryTest, GlobalIgnoresAsid) {
  const TlbEntry entry = MakeEntry(100, 5, /*global=*/true);
  EXPECT_TRUE(entry.Matches(100, 5));
  EXPECT_TRUE(entry.Matches(100, 99));
}

TEST(TlbEntryTest, LargePageCoversSixteenPages) {
  const TlbEntry entry = MakeEntry(0x40000000 >> 12, 1, false, kDomainUser,
                                   PtePerm::kReadOnly, true,
                                   kPtesPerLargePage);
  EXPECT_TRUE(entry.Matches((0x40000000 >> 12) + 0, 1));
  EXPECT_TRUE(entry.Matches((0x40000000 >> 12) + 15, 1));
  EXPECT_FALSE(entry.Matches((0x40000000 >> 12) + 16, 1));
}

// ---------------------------------------------------------------------------
// Access checks.
// ---------------------------------------------------------------------------

TEST(TlbCheckTest, DomainNoAccessFaults) {
  const TlbEntry entry = MakeEntry(1, 1, true, kDomainZygote);
  EXPECT_EQ(CheckEntryAccess(entry, AccessType::kRead, UserDacr()),
            TlbResult::kDomainFault);
  EXPECT_EQ(CheckEntryAccess(entry, AccessType::kRead, ZygoteDacr()),
            TlbResult::kHit);
}

TEST(TlbCheckTest, ClientChecksPermissions) {
  const TlbEntry ro = MakeEntry(1, 1, false, kDomainUser, PtePerm::kReadOnly);
  EXPECT_EQ(CheckEntryAccess(ro, AccessType::kRead, UserDacr()), TlbResult::kHit);
  EXPECT_EQ(CheckEntryAccess(ro, AccessType::kWrite, UserDacr()),
            TlbResult::kPermissionFault);
  const TlbEntry rw = MakeEntry(1, 1, false, kDomainUser, PtePerm::kReadWrite);
  EXPECT_EQ(CheckEntryAccess(rw, AccessType::kWrite, UserDacr()), TlbResult::kHit);
}

TEST(TlbCheckTest, ExecuteRequiresExecutable) {
  const TlbEntry nx = MakeEntry(1, 1, false, kDomainUser, PtePerm::kReadOnly,
                                /*executable=*/false);
  EXPECT_EQ(CheckEntryAccess(nx, AccessType::kExecute, UserDacr()),
            TlbResult::kPermissionFault);
  EXPECT_EQ(CheckEntryAccess(nx, AccessType::kRead, UserDacr()), TlbResult::kHit);
}

TEST(TlbCheckTest, ManagerBypassesPermissions) {
  DomainAccessControl dacr;
  dacr.Set(kDomainUser, DomainAccess::kManager);
  const TlbEntry ro = MakeEntry(1, 1, false, kDomainUser, PtePerm::kReadOnly,
                                /*executable=*/false);
  EXPECT_EQ(CheckEntryAccess(ro, AccessType::kWrite, dacr), TlbResult::kHit);
  EXPECT_EQ(CheckEntryAccess(ro, AccessType::kExecute, dacr), TlbResult::kHit);
}

// ---------------------------------------------------------------------------
// Main TLB.
// ---------------------------------------------------------------------------

TEST(MainTlbTest, InsertLookupMissCycle) {
  MainTlb tlb(128, 2);
  TlbEntry out;
  EXPECT_EQ(tlb.Lookup(0x40000000, 1, AccessType::kRead, UserDacr(), &out),
            TlbResult::kMiss);
  tlb.Insert(MakeEntry(0x40000000 >> 12, 1));
  EXPECT_EQ(tlb.Lookup(0x40000000, 1, AccessType::kRead, UserDacr(), &out),
            TlbResult::kHit);
  EXPECT_EQ(out.frame, (0x40000000u >> 12) + 1000);
  EXPECT_EQ(tlb.stats().hits, 1u);
  EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(MainTlbTest, LookupWithinPageHits) {
  MainTlb tlb(128, 2);
  tlb.Insert(MakeEntry(0x40000000 >> 12, 1));
  EXPECT_EQ(tlb.Lookup(0x40000ABC, 1, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kHit);
}

TEST(MainTlbTest, SetConflictEvictsRoundRobin) {
  MainTlb tlb(8, 2);  // 4 sets x 2 ways
  // Three pages mapping to the same set (vpn ≡ 0 mod 4).
  tlb.Insert(MakeEntry(0, 1));
  tlb.Insert(MakeEntry(4, 1));
  tlb.Insert(MakeEntry(8, 1));  // evicts one of the first two
  uint32_t hits = 0;
  for (uint32_t vpn : {0u, 4u, 8u}) {
    if (tlb.Lookup(vpn << 12, 1, AccessType::kRead, UserDacr(), nullptr) ==
        TlbResult::kHit) {
      hits++;
    }
  }
  EXPECT_EQ(hits, 2u);
  EXPECT_EQ(tlb.ValidEntryCount(), 2u);
}

TEST(MainTlbTest, ReinsertSamePageReplacesInPlace) {
  MainTlb tlb(8, 2);
  tlb.Insert(MakeEntry(0, 1));
  TlbEntry updated = MakeEntry(0, 1, false, kDomainUser, PtePerm::kReadWrite);
  tlb.Insert(updated);
  EXPECT_EQ(tlb.ValidEntryCount(), 1u);
  TlbEntry out;
  tlb.Lookup(0, 1, AccessType::kWrite, UserDacr(), &out);
  EXPECT_EQ(out.perm, PtePerm::kReadWrite);
}

// Regression: re-inserting a VPN with a *changed* attribute used to leave
// the stale entry valid alongside the new one (the in-place replace only
// triggered when vpn, size, global and asid were all identical). The
// zygote global-bit promotion is the real-world trigger: a page first
// cached per-ASID is later re-walked as global, and a lookup could then
// return either copy.
TEST(MainTlbTest, GlobalBitPromotionLeavesSingleEntry) {
  MainTlb tlb(8, 2);
  tlb.Insert(MakeEntry(0, 1, /*global=*/false));
  tlb.Insert(MakeEntry(0, 1, /*global=*/true));
  EXPECT_EQ(tlb.ValidEntryCount(), 1u);
  TlbEntry out;
  ASSERT_EQ(tlb.Lookup(0, 1, AccessType::kRead, UserDacr(), &out),
            TlbResult::kHit);
  EXPECT_TRUE(out.global);
}

// The converse: a stale global entry must not survive a re-insert of the
// same page as a per-ASID mapping — the global copy would keep answering
// for every other ASID.
TEST(MainTlbTest, GlobalDemotionScrubsGlobalEntry) {
  MainTlb tlb(8, 2);
  tlb.Insert(MakeEntry(0, 1, /*global=*/true));
  tlb.Insert(MakeEntry(0, 2, /*global=*/false));
  EXPECT_EQ(tlb.ValidEntryCount(), 1u);
}

// 4KB -> 64KB upgrade: the large entry covers the small one's page, so the
// stale 4KB entry must be scrubbed even though it can live in a different
// set (large entries index by their aligned base VPN).
TEST(MainTlbTest, SmallToLargeUpgradeScrubsCoveredEntry) {
  MainTlb tlb(128, 2);
  tlb.Insert(MakeEntry(35, 1));  // 4KB page inside the 64KB region [32, 48)
  tlb.Insert(MakeEntry(32, 1, false, kDomainUser, PtePerm::kReadOnly, true,
                       kPtesPerLargePage));
  EXPECT_EQ(tlb.ValidEntryCount(), 1u);
  TlbEntry out;
  ASSERT_EQ(tlb.Lookup(35u << 12, 1, AccessType::kRead, UserDacr(), &out),
            TlbResult::kHit);
  EXPECT_EQ(out.size_pages, kPtesPerLargePage);
}

// 64KB -> 4KB downgrade scrubs the covering large entry.
TEST(MainTlbTest, LargeToSmallDowngradeScrubsLargeEntry) {
  MainTlb tlb(128, 2);
  tlb.Insert(MakeEntry(32, 1, false, kDomainUser, PtePerm::kReadOnly, true,
                       kPtesPerLargePage));
  tlb.Insert(MakeEntry(35, 1));
  EXPECT_EQ(tlb.ValidEntryCount(), 1u);
  EXPECT_EQ(tlb.Lookup(32u << 12, 1, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kMiss);
  EXPECT_EQ(tlb.Lookup(35u << 12, 1, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kHit);
}

TEST(MainTlbTest, DistinctAsidsOccupyDistinctEntries) {
  MainTlb tlb(128, 2);
  tlb.Insert(MakeEntry(100, 1));
  tlb.Insert(MakeEntry(100, 2));
  EXPECT_EQ(tlb.ValidEntryCount(), 2u);
  EXPECT_EQ(tlb.Lookup(100 << 12, 1, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kHit);
  EXPECT_EQ(tlb.Lookup(100 << 12, 2, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kHit);
}

TEST(MainTlbTest, GlobalEntryServesAllAsids) {
  // The paper's mechanism in miniature: one global entry replaces N
  // per-ASID copies.
  MainTlb tlb(128, 2);
  tlb.Insert(MakeEntry(100, 1, /*global=*/true, kDomainZygote));
  EXPECT_EQ(tlb.ValidEntryCount(), 1u);
  for (Asid asid : {Asid{1}, Asid{2}, Asid{3}, Asid{4}}) {
    EXPECT_EQ(tlb.Lookup(100 << 12, asid, AccessType::kRead, ZygoteDacr(),
                         nullptr),
              TlbResult::kHit);
  }
}

TEST(MainTlbTest, FlushAllClearsEverything) {
  MainTlb tlb(128, 2);
  tlb.Insert(MakeEntry(1, 1));
  tlb.Insert(MakeEntry(2, 1, /*global=*/true));
  tlb.FlushAll();
  EXPECT_EQ(tlb.ValidEntryCount(), 0u);
}

TEST(MainTlbTest, FlushNonGlobalSparesGlobals) {
  MainTlb tlb(128, 2);
  tlb.Insert(MakeEntry(1, 1));
  tlb.Insert(MakeEntry(2, 1, /*global=*/true));
  tlb.FlushNonGlobal();
  EXPECT_EQ(tlb.ValidEntryCount(), 1u);
  EXPECT_EQ(tlb.Lookup(2 << 12, 9, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kHit);
}

TEST(MainTlbTest, FlushAsidIsSelective) {
  MainTlb tlb(128, 2);
  tlb.Insert(MakeEntry(1, 1));
  tlb.Insert(MakeEntry(2, 2));
  tlb.Insert(MakeEntry(3, 1, /*global=*/true));
  tlb.FlushAsid(1);
  EXPECT_EQ(tlb.Lookup(1 << 12, 1, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kMiss);
  EXPECT_EQ(tlb.Lookup(2 << 12, 2, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kHit);
  // Globals survive an ASID flush.
  EXPECT_EQ(tlb.Lookup(3 << 12, 1, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kHit);
}

TEST(MainTlbTest, FlushVaHitsGlobalsToo) {
  // The domain-fault handler's flush must remove matching *global*
  // entries, or the retry would fault forever.
  MainTlb tlb(128, 2);
  tlb.Insert(MakeEntry(5, 1, /*global=*/true, kDomainZygote));
  tlb.Insert(MakeEntry(6, 1));
  tlb.FlushVa(5 << 12);
  EXPECT_EQ(tlb.ValidEntryCount(), 1u);
  EXPECT_EQ(tlb.Lookup(6 << 12, 1, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kHit);
}

TEST(MainTlbTest, LargePageInsertAndLookupFromAnyCoveredPage) {
  MainTlb tlb(128, 2);
  TlbEntry large = MakeEntry(32, 1, false, kDomainUser, PtePerm::kReadOnly,
                             true, kPtesPerLargePage);
  tlb.Insert(large);
  // Probe through a page in the middle of the 64 KB region.
  EXPECT_EQ(tlb.Lookup((32 + 7) << 12, 1, AccessType::kRead, UserDacr(),
                       nullptr),
            TlbResult::kHit);
  tlb.FlushVa((32 + 9) << 12);
  EXPECT_EQ(tlb.ValidEntryCount(), 0u);
}

TEST(MainTlbTest, DomainFaultCountedInStats) {
  MainTlb tlb(128, 2);
  tlb.Insert(MakeEntry(7, 1, /*global=*/true, kDomainZygote));
  EXPECT_EQ(tlb.Lookup(7 << 12, 2, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kDomainFault);
  EXPECT_EQ(tlb.stats().domain_faults, 1u);
}

// ---------------------------------------------------------------------------
// Deferred-flush visibility windows.
// ---------------------------------------------------------------------------

// The premise of the batched-shootdown design, stated at the TLB model:
// a TLB never self-invalidates, so after the page tables change, an
// entry keeps serving the *old* translation until the (possibly
// deferred) flush lands. The flush is the only event that closes the
// window, and the flushed-entry count it reports is what the drain
// accounting consumes.
TEST(MainTlbTest, StaleEntryServesOldTranslationUntilFlushLands) {
  MainTlb tlb(128, 2);
  tlb.Insert(MakeEntry(100, 1));  // frame = 1100
  // The PTE now points elsewhere; the TLB cannot know. Every lookup in
  // the window still returns the old frame.
  TlbEntry out;
  for (int probe = 0; probe < 3; ++probe) {
    ASSERT_EQ(tlb.Lookup(100 << 12, 1, AccessType::kRead, UserDacr(), &out),
              TlbResult::kHit);
    EXPECT_EQ(out.frame, 1100u);
  }
  const uint64_t flushed_before = tlb.stats().entries_flushed;
  tlb.FlushVa(100 << 12);  // the deferred flush arrives
  EXPECT_EQ(tlb.stats().entries_flushed, flushed_before + 1);
  EXPECT_EQ(tlb.Lookup(100 << 12, 1, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kMiss);
}

// A deferred ASID flush closes the window only for that address space:
// entries under other ASIDs (and globals) keep their translations, which
// is why a pending kAsid queue entry exempts exactly one ASID in the
// auditor.
TEST(MainTlbTest, DeferredAsidFlushClosesOnlyThatAddressSpacesWindow) {
  MainTlb tlb(128, 2);
  tlb.Insert(MakeEntry(1, 5));
  tlb.Insert(MakeEntry(2, 5));
  tlb.Insert(MakeEntry(3, 6));
  tlb.Insert(MakeEntry(4, 5, /*global=*/true));
  tlb.FlushAsid(5);
  EXPECT_EQ(tlb.Lookup(1 << 12, 5, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kMiss);
  EXPECT_EQ(tlb.Lookup(2 << 12, 5, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kMiss);
  EXPECT_EQ(tlb.Lookup(3 << 12, 6, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kHit);
  EXPECT_EQ(tlb.Lookup(4 << 12, 9, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kHit);
}

// ---------------------------------------------------------------------------
// Micro TLB.
// ---------------------------------------------------------------------------

TEST(MicroTlbTest, BasicHitMiss) {
  MicroTlb tlb(32);
  EXPECT_EQ(tlb.Lookup(0x1000, 1, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kMiss);
  tlb.Insert(MakeEntry(1, 1));
  EXPECT_EQ(tlb.Lookup(0x1000, 1, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kHit);
}

TEST(MicroTlbTest, FifoReplacementWhenFull) {
  MicroTlb tlb(4);
  for (uint32_t vpn = 0; vpn < 4; ++vpn) {
    tlb.Insert(MakeEntry(vpn, 1));
  }
  tlb.Insert(MakeEntry(100, 1));  // evicts vpn 0 (FIFO)
  EXPECT_EQ(tlb.Lookup(0, 1, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kMiss);
  EXPECT_EQ(tlb.Lookup(100 << 12, 1, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kHit);
}

TEST(MicroTlbTest, FlushAllAndByVa) {
  MicroTlb tlb(32);
  tlb.Insert(MakeEntry(1, 1));
  tlb.Insert(MakeEntry(2, 1));
  tlb.FlushVa(1 << 12);
  EXPECT_EQ(tlb.Lookup(1 << 12, 1, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kMiss);
  EXPECT_EQ(tlb.Lookup(2 << 12, 1, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kHit);
  tlb.FlushAll();
  EXPECT_EQ(tlb.Lookup(2 << 12, 1, AccessType::kRead, UserDacr(), nullptr),
            TlbResult::kMiss);
}

}  // namespace
}  // namespace sat
