// Unit tests for page-table pages and the PTP sharing machinery — the
// paper's core mechanism (Sections 3.1.1-3.1.2, Figure 6).

#include <gtest/gtest.h>

#include "src/mem/phys_memory.h"
#include "src/pt/page_table.h"
#include "src/pt/ptp.h"
#include "src/stats/counters.h"

namespace sat {
namespace {

class PtTest : public ::testing::Test {
 protected:
  PtTest() : phys_(4096 * kPageSize), alloc_(&phys_, &counters_) {}

  // Convenience: a data frame the PTE can map.
  FrameNumber NewAnonFrame() { return phys_.AllocFrame(FrameKind::kAnon); }

  HwPte MakePte(FrameNumber frame, PtePerm perm = PtePerm::kReadOnly) {
    return HwPte::MakePage(frame, perm, /*global=*/false, /*executable=*/true);
  }

  LinuxPte MakeSw(bool young = false) {
    LinuxPte sw;
    sw.set_present(true);
    sw.set_young(young);
    return sw;
  }

  // Installs an anon RO page at `va` into `pt`, transferring the creation
  // reference to the PTE.
  void InstallAnon(PageTable& pt, VirtAddr va,
                   PtePerm perm = PtePerm::kReadOnly, bool young = false) {
    const FrameNumber frame = NewAnonFrame();
    pt.EnsurePtp(va, kDomainUser);
    pt.SetPte(va, MakePte(frame, perm), MakeSw(young));
    phys_.UnrefFrame(frame);
  }

  PhysicalMemory phys_;
  KernelCounters counters_;
  PtpAllocator alloc_;
};

// ---------------------------------------------------------------------------
// PageTablePage basics.
// ---------------------------------------------------------------------------

TEST_F(PtTest, PtpTracksPresentCount) {
  const PtpId id = alloc_.Alloc();
  PageTablePage& ptp = alloc_.Get(id);
  EXPECT_EQ(ptp.present_count(), 0u);
  ptp.Set(3, MakePte(NewAnonFrame()), MakeSw());
  ptp.Set(4, MakePte(NewAnonFrame()), MakeSw());
  EXPECT_EQ(ptp.present_count(), 2u);
  ptp.Set(3, MakePte(NewAnonFrame()), MakeSw());  // replace: no change
  EXPECT_EQ(ptp.present_count(), 2u);
  ptp.Clear(3);
  EXPECT_EQ(ptp.present_count(), 1u);
  ptp.Clear(3);  // double clear is a no-op
  EXPECT_EQ(ptp.present_count(), 1u);
}

TEST_F(PtTest, PtpHwEntryAddressesMatchLinuxArmLayout) {
  // Figure 5: Linux tables at +0/+1024, hardware tables at +2048/+3072.
  const PtpId id = alloc_.Alloc();
  PageTablePage& ptp = alloc_.Get(id);
  const PhysAddr base = FrameToPhys(ptp.frame());
  EXPECT_EQ(ptp.HwEntryPhysAddr(0), base + 2048);
  EXPECT_EQ(ptp.HwEntryPhysAddr(255), base + 2048 + 255 * 4);
  EXPECT_EQ(ptp.HwEntryPhysAddr(256), base + 3072);  // second MB's table
  EXPECT_EQ(ptp.HwEntryPhysAddr(511), base + 3072 + 255 * 4);
}

TEST_F(PtTest, AllocatorCountsAndSharerLifecycle) {
  const PtpId id = alloc_.Alloc();
  EXPECT_EQ(counters_.ptps_allocated, 1u);
  EXPECT_EQ(alloc_.SharerCount(id), 1u);
  EXPECT_EQ(alloc_.live_ptps(), 1u);
  alloc_.AddSharer(id);
  EXPECT_EQ(alloc_.SharerCount(id), 2u);
  EXPECT_FALSE(alloc_.DropSharer(id));
  EXPECT_TRUE(alloc_.DropSharer(id));
  EXPECT_EQ(alloc_.live_ptps(), 0u);
}

TEST_F(PtTest, AllocatorReusesSlabSlots) {
  const PtpId first = alloc_.Alloc();
  alloc_.DropSharer(first);
  const PtpId second = alloc_.Alloc();
  EXPECT_EQ(first, second);  // slab slot recycled
}

// ---------------------------------------------------------------------------
// PageTable basics.
// ---------------------------------------------------------------------------

TEST_F(PtTest, FindPteReflectsPopulation) {
  PageTable pt(&alloc_, &phys_, &counters_);
  const VirtAddr va = 0x40000000;
  EXPECT_FALSE(pt.FindPte(va).has_value());
  InstallAnon(pt, va);
  const auto ref = pt.FindPte(va);
  ASSERT_TRUE(ref.has_value());
  EXPECT_TRUE(ref->ptp->hw(ref->index).valid());
  EXPECT_EQ(ref->index, PteIndexInPtp(va));
}

TEST_F(PtTest, SetPteManagesFrameReferences) {
  PageTable pt(&alloc_, &phys_, &counters_);
  const VirtAddr va = 0x40000000;
  const FrameNumber a = NewAnonFrame();
  const FrameNumber b = NewAnonFrame();
  pt.EnsurePtp(va, kDomainUser);
  pt.SetPte(va, MakePte(a), MakeSw());
  EXPECT_EQ(phys_.frame(a).ref_count, 2u);  // creation + PTE
  pt.SetPte(va, MakePte(b), MakeSw());      // replace
  EXPECT_EQ(phys_.frame(a).ref_count, 1u);  // PTE ref released
  pt.ClearPte(va);
  EXPECT_EQ(phys_.frame(b).ref_count, 1u);
}

TEST_F(PtTest, ClearRangeAndCountPresent) {
  PageTable pt(&alloc_, &phys_, &counters_);
  for (uint32_t i = 0; i < 8; ++i) {
    InstallAnon(pt, 0x40000000 + i * kPageSize);
  }
  EXPECT_EQ(pt.CountPresentInRange(0x40000000, 0x40000000 + 8 * kPageSize), 8u);
  pt.ClearRange(0x40000000 + 2 * kPageSize, 0x40000000 + 5 * kPageSize);
  EXPECT_EQ(pt.CountPresentInRange(0x40000000, 0x40000000 + 8 * kPageSize), 5u);
}

TEST_F(PtTest, WriteProtectRangeDowngradesWritableEntries) {
  PageTable pt(&alloc_, &phys_, &counters_);
  InstallAnon(pt, 0x40000000, PtePerm::kReadWrite);
  InstallAnon(pt, 0x40001000, PtePerm::kReadOnly);
  pt.WriteProtectRange(0x40000000, 0x40002000);
  EXPECT_EQ(pt.FindPte(0x40000000)->ptp->hw(PteIndexInPtp(0x40000000)).perm(),
            PtePerm::kReadOnly);
  EXPECT_EQ(pt.FindPte(0x40001000)->ptp->hw(PteIndexInPtp(0x40001000)).perm(),
            PtePerm::kReadOnly);
}

// ---------------------------------------------------------------------------
// Sharing (Section 3.1.1).
// ---------------------------------------------------------------------------

TEST_F(PtTest, ShareSlotWriteProtectsAndMarksBothSides) {
  PageTable parent(&alloc_, &phys_, &counters_);
  PageTable child(&alloc_, &phys_, &counters_);
  const VirtAddr va = 0x40000000;
  InstallAnon(parent, va, PtePerm::kReadWrite);
  InstallAnon(parent, va + kPageSize, PtePerm::kReadOnly);

  const uint32_t slot = PtpSlotIndex(va);
  const uint32_t protected_count = parent.ShareSlotInto(child, slot);
  EXPECT_EQ(protected_count, 1u);  // only the RW entry needed protection
  EXPECT_EQ(counters_.ptes_write_protected, 1u);
  EXPECT_EQ(counters_.ptps_shared, 1u);

  EXPECT_TRUE(parent.l1(slot).need_copy);
  EXPECT_TRUE(child.l1(slot).need_copy);
  EXPECT_EQ(parent.l1(slot).ptp, child.l1(slot).ptp);
  EXPECT_EQ(alloc_.SharerCount(parent.l1(slot).ptp), 2u);

  // The writable PTE is now write-protected (COW) and visible via both.
  const auto ref = child.FindPte(va);
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->ptp->hw(ref->index).perm(), PtePerm::kReadOnly);
}

TEST_F(PtTest, ReShareTakesFastPath) {
  PageTable parent(&alloc_, &phys_, &counters_);
  PageTable child1(&alloc_, &phys_, &counters_);
  PageTable child2(&alloc_, &phys_, &counters_);
  const VirtAddr va = 0x40000000;
  InstallAnon(parent, va, PtePerm::kReadWrite);
  const uint32_t slot = PtpSlotIndex(va);

  EXPECT_EQ(parent.ShareSlotInto(child1, slot), 1u);
  // Second share: NEED_COPY already set, no protection pass.
  EXPECT_EQ(parent.ShareSlotInto(child2, slot), 0u);
  EXPECT_EQ(alloc_.SharerCount(parent.l1(slot).ptp), 3u);
  EXPECT_EQ(counters_.ptps_shared, 2u);
}

TEST_F(PtTest, PopulateIntoSharedPtpIsVisibleToAllSharers) {
  // The paper's read-fault path: a PTE created by one sharer eliminates
  // the other sharers' soft faults for that page.
  PageTable parent(&alloc_, &phys_, &counters_);
  PageTable child(&alloc_, &phys_, &counters_);
  const VirtAddr va = 0x40000000;
  InstallAnon(parent, va);
  parent.ShareSlotInto(child, PtpSlotIndex(va));

  const VirtAddr new_va = va + 7 * kPageSize;
  const FrameNumber frame = NewAnonFrame();
  child.SetPte(new_va, MakePte(frame), MakeSw(), /*allow_shared=*/true);
  phys_.UnrefFrame(frame);

  const auto parent_ref = parent.FindPte(new_va);
  ASSERT_TRUE(parent_ref.has_value());
  EXPECT_TRUE(parent_ref->ptp->hw(parent_ref->index).valid());
  EXPECT_EQ(parent_ref->ptp->hw(parent_ref->index).frame(), frame);
}

// ---------------------------------------------------------------------------
// Unsharing (Figure 6).
// ---------------------------------------------------------------------------

TEST_F(PtTest, UnshareSoleSharerJustClearsNeedCopy) {
  PageTable parent(&alloc_, &phys_, &counters_);
  const VirtAddr va = 0x40000000;
  InstallAnon(parent, va);
  {
    PageTable child(&alloc_, &phys_, &counters_);
    parent.ShareSlotInto(child, PtpSlotIndex(va));
    child.ReleaseSlot(PtpSlotIndex(va));
  }
  // Parent is now the only sharer.
  bool flushed = false;
  const uint32_t copied = parent.UnshareSlot(
      PtpSlotIndex(va), /*copy_referenced_only=*/false,
      [&flushed]() { flushed = true; });
  EXPECT_EQ(copied, 0u);
  EXPECT_FALSE(flushed);  // fast path: no flush, no copy
  EXPECT_FALSE(parent.l1(PtpSlotIndex(va)).need_copy);
  EXPECT_TRUE(parent.l1(PtpSlotIndex(va)).present());
}

TEST_F(PtTest, UnshareCopiesAllValidPtes) {
  PageTable parent(&alloc_, &phys_, &counters_);
  PageTable child(&alloc_, &phys_, &counters_);
  const VirtAddr base = 0x40000000;
  for (uint32_t i = 0; i < 5; ++i) {
    InstallAnon(parent, base + i * kPageSize);
  }
  const uint32_t slot = PtpSlotIndex(base);
  parent.ShareSlotInto(child, slot);
  const PtpId shared = parent.l1(slot).ptp;

  bool flushed = false;
  const uint32_t copied =
      child.UnshareSlot(slot, false, [&flushed]() { flushed = true; });
  EXPECT_EQ(copied, 5u);
  EXPECT_TRUE(flushed);
  EXPECT_EQ(counters_.ptes_copied, 5u);
  EXPECT_EQ(counters_.ptps_unshared, 1u);

  // Child has a private PTP now; parent still uses the shared one.
  EXPECT_NE(child.l1(slot).ptp, shared);
  EXPECT_FALSE(child.l1(slot).need_copy);
  EXPECT_EQ(parent.l1(slot).ptp, shared);
  EXPECT_EQ(alloc_.SharerCount(shared), 1u);

  // Copies map the same frames (translations unchanged), with extra refs.
  for (uint32_t i = 0; i < 5; ++i) {
    const auto p = parent.FindPte(base + i * kPageSize);
    const auto c = child.FindPte(base + i * kPageSize);
    EXPECT_EQ(p->ptp->hw(p->index).frame(), c->ptp->hw(c->index).frame());
    EXPECT_EQ(phys_.frame(p->ptp->hw(p->index).frame()).ref_count, 2u);
  }
}

TEST_F(PtTest, ShareAgesReferencedBits) {
  // First share clears the referenced bits: "young" thereafter means
  // "accessed since the PTP became shared".
  PageTable parent(&alloc_, &phys_, &counters_);
  PageTable child(&alloc_, &phys_, &counters_);
  const VirtAddr va = 0x40000000;
  InstallAnon(parent, va, PtePerm::kReadOnly, /*young=*/true);
  parent.ShareSlotInto(child, PtpSlotIndex(va));
  const auto ref = parent.FindPte(va);
  EXPECT_FALSE(ref->ptp->sw(ref->index).young());
}

TEST_F(PtTest, UnshareReferencedOnlyAblationSkipsColdPtes) {
  PageTable parent(&alloc_, &phys_, &counters_);
  PageTable child(&alloc_, &phys_, &counters_);
  const VirtAddr base = 0x40000000;
  InstallAnon(parent, base, PtePerm::kReadOnly, /*young=*/true);
  InstallAnon(parent, base + kPageSize, PtePerm::kReadOnly, /*young=*/true);
  InstallAnon(parent, base + 2 * kPageSize, PtePerm::kReadOnly, /*young=*/true);
  const uint32_t slot = PtpSlotIndex(base);
  parent.ShareSlotInto(child, slot);  // ages every referenced bit

  // Two of the three pages are accessed after the share (the walker sets
  // young through the shared PTP).
  for (VirtAddr va : {base, base + 2 * kPageSize}) {
    const auto ref = child.FindPte(va);
    LinuxPte sw = ref->ptp->sw(ref->index);
    sw.set_young(true);
    child.UpdatePte(va, ref->ptp->hw(ref->index), sw, /*allow_shared=*/true);
  }

  const uint32_t copied = child.UnshareSlot(slot, /*copy_referenced_only=*/true,
                                            nullptr);
  EXPECT_EQ(copied, 2u);
  const auto cold = child.FindPte(base + kPageSize);
  EXPECT_FALSE(cold->ptp->hw(cold->index).valid());  // left for a soft fault
}

TEST_F(PtTest, UnshareWriteProtectOnCopyAblation) {
  // x86-style L1 write-protect: the share pass was skipped, so unshare
  // must write-protect RW entries as it copies them out.
  PageTable parent(&alloc_, &phys_, &counters_);
  PageTable child(&alloc_, &phys_, &counters_);
  const VirtAddr va = 0x40000000;
  InstallAnon(parent, va, PtePerm::kReadWrite);
  const uint32_t slot = PtpSlotIndex(va);
  parent.ShareSlotInto(child, slot, /*skip_write_protect_pass=*/true);
  EXPECT_EQ(counters_.ptes_write_protected, 0u);
  // The shared PTP still holds a hardware-writable entry.
  const auto shared_ref = parent.FindPte(va);
  EXPECT_EQ(shared_ref->ptp->hw(shared_ref->index).perm(), PtePerm::kReadWrite);

  child.UnshareSlot(slot, false, nullptr, /*write_protect_on_copy=*/true);
  const auto child_ref = child.FindPte(va);
  EXPECT_EQ(child_ref->ptp->hw(child_ref->index).perm(), PtePerm::kReadOnly);
}

// ---------------------------------------------------------------------------
// Release / teardown (Section 3.1.2 case 5).
// ---------------------------------------------------------------------------

TEST_F(PtTest, ReleaseSharedSlotSkipsReclamation) {
  PageTable parent(&alloc_, &phys_, &counters_);
  PageTable child(&alloc_, &phys_, &counters_);
  const VirtAddr va = 0x40000000;
  InstallAnon(parent, va);
  const uint32_t slot = PtpSlotIndex(va);
  parent.ShareSlotInto(child, slot);
  const PtpId shared = parent.l1(slot).ptp;

  child.ReleaseSlot(slot);  // child exits: decrement, do not reclaim
  EXPECT_FALSE(child.l1(slot).present());
  EXPECT_EQ(alloc_.SharerCount(shared), 1u);
  EXPECT_EQ(alloc_.live_ptps(), 1u);

  parent.ReleaseSlot(slot);  // last sharer: reclaim PTP and frames
  EXPECT_EQ(alloc_.live_ptps(), 0u);
}

TEST_F(PtTest, LastReleaseFreesMappedFrames) {
  PageTable pt(&alloc_, &phys_, &counters_);
  const VirtAddr va = 0x40000000;
  const uint64_t used_before = phys_.used_frames();
  InstallAnon(pt, va);
  InstallAnon(pt, va + kPageSize);
  pt.ReleaseSlot(PtpSlotIndex(va));
  EXPECT_EQ(phys_.used_frames(), used_before);
}

TEST_F(PtTest, DestructorReleasesEverything) {
  const uint64_t used_before = phys_.used_frames();
  {
    PageTable pt(&alloc_, &phys_, &counters_);
    InstallAnon(pt, 0x40000000);
    InstallAnon(pt, 0x50000000);
    InstallAnon(pt, 0x60000000);
  }
  EXPECT_EQ(phys_.used_frames(), used_before);
  EXPECT_EQ(alloc_.live_ptps(), 0u);
}

TEST_F(PtTest, SlotCounters) {
  PageTable parent(&alloc_, &phys_, &counters_);
  PageTable child(&alloc_, &phys_, &counters_);
  InstallAnon(parent, 0x40000000);
  InstallAnon(parent, 0x50000000);
  EXPECT_EQ(parent.PresentSlotCount(), 2u);
  EXPECT_EQ(parent.SharedSlotCount(), 0u);
  parent.ShareSlotInto(child, PtpSlotIndex(0x40000000));
  EXPECT_EQ(parent.SharedSlotCount(), 1u);
  EXPECT_EQ(child.PresentSlotCount(), 1u);
  EXPECT_EQ(child.SharedSlotCount(), 1u);
}

}  // namespace
}  // namespace sat
