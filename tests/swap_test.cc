// Anonymous-memory swap: the zram store, swap PTEs, the LRU/kswapd
// machinery, and — the part the paper's sharing design makes interesting —
// swapping pages that are mapped through *shared* page-table pages, where
// one swap entry serves every sharer and a later write fault must
// COW-unshare both the PTP and the swapped page without corrupting the
// other sharers.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/core/sat.h"

namespace sat {
namespace {

KernelParams SwapParams(uint64_t phys_mb, uint64_t swap_mb) {
  KernelParams params;
  params.phys_bytes = phys_mb * 1024 * 1024;
  params.swap_bytes = swap_mb * 1024 * 1024;
  return params;
}

// Maps `pages` anonymous RW pages at `base` and writes each once.
VirtAddr MapAndWrite(Kernel& kernel, Task& task, uint32_t pages,
                     VirtAddr base) {
  MmapRequest request;
  request.length = pages * kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  request.fixed_address = base;
  EXPECT_NE(kernel.Mmap(task, request).value, 0u);
  for (uint32_t i = 0; i < pages; ++i) {
    EXPECT_TRUE(
        kernel.TouchPage(task, base + i * kPageSize, AccessType::kWrite));
  }
  return base;
}

// Swap-out with retries: the first pass over freshly touched pages only
// harvests referenced bits (second chance); subsequent passes evict.
uint32_t SwapOutAll(Kernel& kernel, uint32_t target) {
  uint32_t freed = 0;
  for (int pass = 0; pass < 8 && freed < target; ++pass) {
    freed += kernel.SwapOutAnonPages(target - freed);
  }
  return freed;
}

// Every (va, slot) pair for swap PTEs in [base, base + pages).
std::vector<std::pair<VirtAddr, SwapSlotId>> SwapPtesIn(Task& task,
                                                        VirtAddr base,
                                                        uint32_t pages) {
  std::vector<std::pair<VirtAddr, SwapSlotId>> out;
  PageTable& pt = task.mm->page_table();
  for (uint32_t i = 0; i < pages; ++i) {
    const VirtAddr va = base + i * kPageSize;
    const auto ref = pt.FindPte(va);
    if (ref.has_value() && ref->ptp->sw(ref->index).is_swap()) {
      out.emplace_back(va, ref->ptp->sw(ref->index).swap_slot());
    }
  }
  return out;
}

FrameNumber FrameAt(Task& task, VirtAddr va) {
  const auto ref = task.mm->page_table().FindPte(va);
  if (!ref.has_value() || !ref->ptp->hw(ref->index).valid()) {
    return static_cast<FrameNumber>(-1);
  }
  return MappedFrameOf(ref->ptp->hw(ref->index), ref->index);
}

void ExpectAuditOk(Kernel& kernel, const char* where) {
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << where << ":\n" << report.ToString();
}

// ---------------------------------------------------------------------------
// Round trip.
// ---------------------------------------------------------------------------

TEST(SwapTest, RoundTripSwapOutAndBackIn) {
  Kernel kernel(SwapParams(32, 16));
  Task* task = kernel.CreateTask("app");
  const VirtAddr base = MapAndWrite(kernel, *task, 64, 0x40000000);

  const uint64_t anon_before = kernel.phys().CountFrames(FrameKind::kAnon);
  EXPECT_EQ(SwapOutAll(kernel, 64), 64u);
  EXPECT_EQ(kernel.counters().swap_outs, 64u);
  EXPECT_GT(kernel.counters().lru_activations, 0u);  // second chance ran
  EXPECT_EQ(kernel.phys().CountFrames(FrameKind::kAnon), anon_before - 64);

  // Everything is compressed now: 64 live slots, pool frames backing them.
  EXPECT_EQ(kernel.zram().live_slots(), 64u);
  EXPECT_GT(kernel.zram().stored_bytes(), 0u);
  EXPECT_GT(kernel.zram().pool_frame_count(), 0u);
  EXPECT_LT(kernel.zram().pool_frame_count(), 64u);  // compression won
  EXPECT_EQ(SwapPtesIn(*task, base, 64).size(), 64u);
  ExpectAuditOk(kernel, "after swap-out");

  // Read every page back: each swap-in decompresses once, and with a
  // single swap PTE per slot the slot is freed eagerly afterwards (the
  // try_to_free_swap analogue) — no compressed copy lingers.
  for (uint32_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(
        kernel.TouchPage(*task, base + i * kPageSize, AccessType::kRead));
  }
  EXPECT_EQ(kernel.counters().swap_ins, 64u);
  EXPECT_EQ(kernel.counters().swap_ins_cache_hit, 0u);
  EXPECT_EQ(kernel.zram().live_slots(), 0u);
  EXPECT_EQ(kernel.zram().pool_frame_count(), 0u);
  EXPECT_EQ(kernel.phys().CountFrames(FrameKind::kZram), 0u);
  ExpectAuditOk(kernel, "after swap-in");

  // Swapped-in pages come back read-only; writes COW-upgrade in place.
  for (uint32_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(
        kernel.TouchPage(*task, base + i * kPageSize, AccessType::kWrite));
  }
  ExpectAuditOk(kernel, "after write-back");

  kernel.Exit(*task);
  EXPECT_EQ(kernel.zram().live_slots(), 0u);
  ExpectAuditOk(kernel, "after exit");
}

// ---------------------------------------------------------------------------
// Swap under shared page-table pages.
// ---------------------------------------------------------------------------

TEST(SwapTest, SharedPtpSwapsOnceAndServesAllSharers) {
  KernelParams params = SwapParams(32, 16);
  params.vm.share_ptps = true;
  Kernel kernel(params);
  Task* parent = kernel.CreateTask("parent");
  const VirtAddr base = MapAndWrite(kernel, *parent, 8, 0x40000000);

  const ForkOutcome fork = kernel.Fork(*parent, "child");
  Task* child = fork.child;
  ASSERT_NE(child, nullptr);
  EXPECT_GT(fork.stats.slots_shared, 0u);

  // Swapping a page out of a shared PTP clears exactly one PTE and leaves
  // exactly one slot reference — the entry serves both sharers.
  EXPECT_EQ(SwapOutAll(kernel, 8), 8u);
  const auto parent_swaps = SwapPtesIn(*parent, base, 8);
  const auto child_swaps = SwapPtesIn(*child, base, 8);
  ASSERT_EQ(parent_swaps.size(), 8u);
  ASSERT_EQ(child_swaps.size(), 8u);
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(parent_swaps[i].second, child_swaps[i].second)
        << "sharers disagree about the swap slot at page " << i;
    EXPECT_EQ(kernel.zram().SlotRefCount(parent_swaps[i].second), 1u);
  }
  ExpectAuditOk(kernel, "after shared swap-out");

  // One sharer's read fault populates the shared PTP for everyone: the
  // other sharer sees the present page without faulting.
  const auto [va, slot] = parent_swaps[0];
  EXPECT_TRUE(kernel.TouchPage(*child, va, AccessType::kRead));
  EXPECT_EQ(kernel.counters().swap_ins, 1u);
  const uint64_t ins_before = kernel.counters().swap_ins;
  EXPECT_TRUE(kernel.TouchPage(*parent, va, AccessType::kRead));
  EXPECT_EQ(kernel.counters().swap_ins, ins_before);
  EXPECT_EQ(FrameAt(*parent, va), FrameAt(*child, va));
  // The lone swap PTE was consumed, so the slot was freed eagerly.
  EXPECT_FALSE(kernel.zram().SlotLive(slot));
  ExpectAuditOk(kernel, "after shared swap-in");

  kernel.Exit(*child);
  kernel.Exit(*parent);
  EXPECT_EQ(kernel.zram().live_slots(), 0u);
  ExpectAuditOk(kernel, "after exits");
}

TEST(SwapTest, WriteFaultUnsharesPtpAndCowsSwappedPage) {
  KernelParams params = SwapParams(32, 16);
  params.vm.share_ptps = true;
  Kernel kernel(params);
  Task* parent = kernel.CreateTask("parent");
  const VirtAddr base = MapAndWrite(kernel, *parent, 8, 0x40000000);
  const ForkOutcome fork = kernel.Fork(*parent, "child");
  Task* child = fork.child;
  ASSERT_NE(child, nullptr);
  ASSERT_GT(fork.stats.slots_shared, 0u);

  ASSERT_EQ(SwapOutAll(kernel, 8), 8u);
  const auto swaps = SwapPtesIn(*parent, base, 8);
  ASSERT_EQ(swaps.size(), 8u);
  const auto [va, slot] = swaps[0];

  // The crux: a write by one sharer to a swapped-out page. The fault must
  // (1) unshare the PTP, duplicating every swap entry with its own slot
  // reference, (2) swap the page in, and (3) COW it — because the swap
  // cache still holds the pristine copy for the other sharer.
  EXPECT_TRUE(kernel.TouchPage(*child, va, AccessType::kWrite));
  EXPECT_GT(kernel.counters().ptps_unshared, 0u);
  EXPECT_EQ(kernel.counters().swap_ins, 1u);
  EXPECT_GT(kernel.counters().faults_cow, 0u);

  // The parent's copy is untouched: still a swap PTE on the same slot,
  // whose references are now the parent's entry plus the swap cache.
  const auto parent_ref = parent->mm->page_table().FindPte(va);
  ASSERT_TRUE(parent_ref.has_value());
  EXPECT_TRUE(parent_ref->ptp->sw(parent_ref->index).is_swap());
  EXPECT_EQ(parent_ref->ptp->sw(parent_ref->index).swap_slot(), slot);
  EXPECT_EQ(kernel.zram().SlotRefCount(slot), 2u);
  EXPECT_NE(kernel.zram().CacheLookup(slot), ZramStore::kNoFrame);
  // Every other duplicated swap entry counts both page tables.
  for (uint32_t i = 1; i < 8; ++i) {
    EXPECT_EQ(kernel.zram().SlotRefCount(swaps[i].second), 2u);
  }
  ExpectAuditOk(kernel, "after write-fault COW");

  // The parent's read is a swap-cache hit: the slot decompressed once for
  // the child's fault and is reused here, then freed (last swap PTE gone).
  EXPECT_TRUE(kernel.TouchPage(*parent, va, AccessType::kRead));
  EXPECT_EQ(kernel.counters().swap_ins_cache_hit, 1u);
  EXPECT_FALSE(kernel.zram().SlotLive(slot));
  EXPECT_NE(FrameAt(*parent, va), FrameAt(*child, va));  // truly COWed
  ExpectAuditOk(kernel, "after cache-hit swap-in");

  kernel.Exit(*child);
  kernel.Exit(*parent);
  EXPECT_EQ(kernel.zram().live_slots(), 0u);
  ExpectAuditOk(kernel, "after exits");
}

// ---------------------------------------------------------------------------
// Fork and exit with swap PTEs (stock kernel).
// ---------------------------------------------------------------------------

TEST(SwapTest, StockForkCopiesSwapPtesAndExitReleasesSlots) {
  Kernel kernel(SwapParams(32, 16));
  Task* parent = kernel.CreateTask("parent");
  const VirtAddr base = MapAndWrite(kernel, *parent, 16, 0x40000000);
  ASSERT_EQ(SwapOutAll(kernel, 16), 16u);

  // A stock fork duplicates each swap PTE into the child's own page
  // table, with a slot reference per copy.
  const ForkOutcome fork = kernel.Fork(*parent, "child");
  Task* child = fork.child;
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(fork.stats.slots_shared, 0u);
  EXPECT_GE(fork.stats.ptes_copied, 16u);
  const auto swaps = SwapPtesIn(*parent, base, 16);
  ASSERT_EQ(swaps.size(), 16u);
  EXPECT_EQ(SwapPtesIn(*child, base, 16).size(), 16u);
  for (const auto& [va, slot] : swaps) {
    EXPECT_EQ(kernel.zram().SlotRefCount(slot), 2u);
  }
  ExpectAuditOk(kernel, "after fork");

  // The parent's exit releases its references; the child's swap PTEs keep
  // every slot alive.
  kernel.Exit(*parent);
  for (const auto& [va, slot] : swaps) {
    EXPECT_EQ(kernel.zram().SlotRefCount(slot), 1u);
  }
  EXPECT_EQ(kernel.zram().live_slots(), 16u);
  ExpectAuditOk(kernel, "after parent exit");

  // The child can still fault everything in (the whole point of swap
  // PTEs surviving fork), and its exit empties the store.
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(
        kernel.TouchPage(*child, base + i * kPageSize, AccessType::kRead));
  }
  kernel.Exit(*child);
  EXPECT_EQ(kernel.zram().live_slots(), 0u);
  EXPECT_EQ(kernel.zram().stored_bytes(), 0u);
  EXPECT_EQ(kernel.phys().CountFrames(FrameKind::kZram), 0u);
  ExpectAuditOk(kernel, "after child exit");
}

// ---------------------------------------------------------------------------
// ENOMEM during swap-in.
// ---------------------------------------------------------------------------

TEST(SwapTest, SwapInEnomemRollsBackCleanly) {
  Kernel kernel(SwapParams(32, 16));
  Task* task = kernel.CreateTask("app");
  const VirtAddr base = MapAndWrite(kernel, *task, 8, 0x40000000);
  ASSERT_EQ(SwapOutAll(kernel, 8), 8u);
  const auto swaps = SwapPtesIn(*task, base, 8);
  ASSERT_EQ(swaps.size(), 8u);
  const auto [va, slot] = swaps[0];
  const uint32_t refs_before = kernel.zram().SlotRefCount(slot);

  // Fail the frame allocation the decompress needs, driving the fault
  // handler directly (the kernel wrapper would reclaim-and-retry).
  kernel.fault_injector().SetRule(AllocSite::kFrame, FaultRule{0, 1, 0.0});
  MemoryAbort abort;
  abort.status = FaultStatus::kTranslation;
  abort.fault_address = va;
  abort.access = AccessType::kRead;
  const FaultOutcome outcome = kernel.vm().HandleFault(*task->mm, abort, {});
  EXPECT_FALSE(outcome.ok);
  EXPECT_TRUE(outcome.oom);

  // Nothing moved: the PTE is still a swap entry for the same slot, the
  // refcount is unchanged, no cache entry appeared.
  const auto ref = task->mm->page_table().FindPte(va);
  ASSERT_TRUE(ref.has_value());
  EXPECT_TRUE(ref->ptp->sw(ref->index).is_swap());
  EXPECT_EQ(ref->ptp->sw(ref->index).swap_slot(), slot);
  EXPECT_EQ(kernel.zram().SlotRefCount(slot), refs_before);
  EXPECT_EQ(kernel.zram().CacheLookup(slot), ZramStore::kNoFrame);
  ExpectAuditOk(kernel, "after injected ENOMEM");

  // With the injector off the same access succeeds.
  kernel.fault_injector().Reset();
  EXPECT_TRUE(kernel.TouchPage(*task, va, AccessType::kRead));
  ExpectAuditOk(kernel, "after retry");
  kernel.Exit(*task);
  ExpectAuditOk(kernel, "after exit");
}

// ---------------------------------------------------------------------------
// Clean swap-cache pages re-swap without recompressing.
// ---------------------------------------------------------------------------

TEST(SwapTest, CleanCachedPageIsDroppedWithoutRecompressing) {
  Kernel kernel(SwapParams(32, 16));
  Task* parent = kernel.CreateTask("parent");
  const VirtAddr base = MapAndWrite(kernel, *parent, 4, 0x40000000);
  ASSERT_EQ(SwapOutAll(kernel, 4), 4u);
  // A stock fork keeps a second swap PTE per slot, so slots survive the
  // parent's swap-ins and the cache association persists.
  Task* child = kernel.Fork(*parent, "child").child;
  ASSERT_NE(child, nullptr);

  for (uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        kernel.TouchPage(*parent, base + i * kPageSize, AccessType::kRead));
  }
  EXPECT_EQ(kernel.zram().cached_entries(), 4u);
  const uint64_t stored_total = kernel.zram().pages_stored_total();
  ExpectAuditOk(kernel, "after cached swap-in");

  // The pages were only read, so the compressed copies are still current:
  // re-swapping them must reuse the slots (no new compression), just
  // dropping the clean decompressed frames.
  EXPECT_EQ(SwapOutAll(kernel, 4), 4u);
  EXPECT_EQ(kernel.counters().swap_clean_drops, 4u);
  EXPECT_EQ(kernel.zram().pages_stored_total(), stored_total);
  EXPECT_EQ(kernel.zram().cached_entries(), 0u);
  for (const auto& [va, slot] : SwapPtesIn(*parent, base, 4)) {
    EXPECT_EQ(kernel.zram().SlotRefCount(slot), 2u);
  }
  ExpectAuditOk(kernel, "after clean drop");

  kernel.Exit(*parent);
  kernel.Exit(*child);
  EXPECT_EQ(kernel.zram().live_slots(), 0u);
  ExpectAuditOk(kernel, "after exits");
}

// ---------------------------------------------------------------------------
// Emulated referenced/dirty bits.
// ---------------------------------------------------------------------------

TEST(SwapTest, AccessBitsDriveAgingAndDirtyTracking) {
  Kernel kernel(SwapParams(32, 16));
  Task* task = kernel.CreateTask("app");
  const VirtAddr base = MapAndWrite(kernel, *task, 4, 0x40000000);
  PageTable& pt = task->mm->page_table();

  const auto sw_at = [&](VirtAddr va) {
    const auto ref = pt.FindPte(va);
    EXPECT_TRUE(ref.has_value());
    return ref->ptp->sw(ref->index);
  };

  // A write leaves young + dirty set.
  EXPECT_TRUE(sw_at(base).young());
  EXPECT_TRUE(sw_at(base).dirty());

  // The first swap-out pass harvests the referenced bits instead of
  // evicting (second chance): pages stay resident, young goes false.
  EXPECT_EQ(kernel.SwapOutAnonPages(4), 0u);
  EXPECT_EQ(kernel.counters().lru_activations, 4u);
  EXPECT_FALSE(sw_at(base).young());
  EXPECT_TRUE(sw_at(base).dirty());  // harvest clears reference, not dirty

  // A read re-marks the page referenced, rescuing it from eviction while
  // the untouched pages are reclaimed around it.
  EXPECT_TRUE(kernel.TouchPage(*task, base, AccessType::kRead));
  EXPECT_TRUE(sw_at(base).young());
  EXPECT_EQ(SwapOutAll(kernel, 3), 3u);
  EXPECT_FALSE(sw_at(base).is_swap());
  EXPECT_EQ(SwapPtesIn(*task, base, 4).size(), 3u);
  ExpectAuditOk(kernel, "after selective eviction");

  // A swapped-in page starts clean; only a write dirties it again.
  EXPECT_TRUE(
      kernel.TouchPage(*task, base + kPageSize, AccessType::kRead));
  EXPECT_FALSE(sw_at(base + kPageSize).dirty());
  EXPECT_TRUE(
      kernel.TouchPage(*task, base + kPageSize, AccessType::kWrite));
  EXPECT_TRUE(sw_at(base + kPageSize).dirty());
  ExpectAuditOk(kernel, "after dirty tracking");
  kernel.Exit(*task);
}

// ---------------------------------------------------------------------------
// kswapd keeps the machine out of the OOM killer.
// ---------------------------------------------------------------------------

TEST(SwapTest, KswapdHoldsWatermarksWithoutOomKills) {
  // 16 MB of RAM (4096 frames; watermarks 256/384) against a ~17.6 MB
  // anonymous working set: only background + direct swap-out can make
  // this fit. No OOM kill is acceptable.
  Kernel kernel(SwapParams(16, 32));
  Task* task = kernel.CreateTask("hog");
  const uint32_t pages = 4500;
  MmapRequest request;
  request.length = pages * kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  request.fixed_address = 0x40000000;
  ASSERT_NE(kernel.Mmap(*task, request).value, 0u);
  for (uint32_t i = 0; i < pages; ++i) {
    ASSERT_EQ(kernel.TouchPageStatus(*task, 0x40000000 + i * kPageSize,
                                     AccessType::kWrite),
              TouchStatus::kOk)
        << "page " << i << " with " << kernel.phys().free_frames()
        << " free frames";
  }

  EXPECT_EQ(kernel.counters().oom_kills, 0u);
  EXPECT_GT(kernel.counters().kswapd_runs, 0u);
  EXPECT_GT(kernel.counters().kswapd_pages, 0u);
  EXPECT_GT(kernel.counters().swap_outs, 0u);
  EXPECT_GT(kernel.phys().free_frames(), 0u);
  ExpectAuditOk(kernel, "after pressure");

  kernel.Exit(*task);
  EXPECT_EQ(kernel.zram().live_slots(), 0u);
  EXPECT_EQ(kernel.phys().CountFrames(FrameKind::kZram), 0u);
  ExpectAuditOk(kernel, "after exit");
}

// ---------------------------------------------------------------------------
// The auditor actually detects swap corruption.
// ---------------------------------------------------------------------------

TEST(SwapTest, AuditorCatchesSkewedSlotRefcount) {
  Kernel kernel(SwapParams(32, 16));
  Task* task = kernel.CreateTask("app");
  const VirtAddr base = MapAndWrite(kernel, *task, 4, 0x40000000);
  ASSERT_EQ(SwapOutAll(kernel, 4), 4u);
  const auto swaps = SwapPtesIn(*task, base, 4);
  ASSERT_FALSE(swaps.empty());
  const SwapSlotId slot = swaps[0].second;

  ExpectAuditOk(kernel, "healthy baseline");

  // Inject a reference from nowhere; the recount must flag it.
  kernel.zram().Ref(slot);
  const AuditReport skewed = kernel.AuditInvariants();
  EXPECT_FALSE(skewed.ok());
  EXPECT_NE(skewed.ToString().find("swap-slot-refcount"), std::string::npos)
      << skewed.ToString();

  kernel.zram().Unref(slot);
  ExpectAuditOk(kernel, "after repair");
  kernel.Exit(*task);
  ExpectAuditOk(kernel, "after exit");
}

}  // namespace
}  // namespace sat
