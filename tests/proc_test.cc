// Unit tests for the process layer: task lifecycle, zygote flags and DACR
// propagation, the kernel's mmap policy, TouchPage semantics, ASID
// management, and the scheduler's grouping policy.

#include <gtest/gtest.h>

#include "src/proc/kernel.h"
#include "src/proc/scheduler.h"

namespace sat {
namespace {

KernelParams SharedParams() {
  KernelParams params;
  params.vm = VmConfig::SharedPtpAndTlb();
  return params;
}

MmapRequest AnonRequest(VirtAddr at, uint32_t pages, bool stack = false) {
  MmapRequest request;
  request.length = pages * kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  request.fixed_address = at;
  request.is_stack = stack;
  return request;
}

MmapRequest CodeRequest(VirtAddr at, uint32_t pages, FileId file) {
  MmapRequest request;
  request.length = pages * kPageSize;
  request.prot = VmProt::ReadExec();
  request.kind = VmKind::kFilePrivate;
  request.file = file;
  request.fixed_address = at;
  return request;
}

TEST(KernelTest, CreateTaskAssignsPidAndAsid) {
  Kernel kernel{KernelParams{}};
  Task* a = kernel.CreateTask("a");
  Task* b = kernel.CreateTask("b");
  EXPECT_NE(a->pid, b->pid);
  EXPECT_NE(a->asid, b->asid);
  EXPECT_FALSE(a->IsZygoteLike());
}

TEST(KernelTest, ExecSetsZygoteFlagAndDomain) {
  Kernel kernel{KernelParams{}};
  Task* task = kernel.CreateTask("init");
  kernel.Exec(*task, "app_process", /*is_zygote=*/true);
  EXPECT_TRUE(task->zygote);
  EXPECT_FALSE(task->zygote_child);
  EXPECT_EQ(task->dacr.Get(kDomainZygote), DomainAccess::kClient);
  EXPECT_EQ(task->mm->user_domain(), kDomainZygote);
}

TEST(KernelTest, ForkPropagatesZygoteChildFlag) {
  Kernel kernel{KernelParams{}};
  Task* init = kernel.CreateTask("init");
  Task* zygote = kernel.Fork(*init, "zygote").child;
  kernel.Exec(*zygote, "app_process", true);
  Task* app = kernel.Fork(*zygote, "app").child;
  EXPECT_TRUE(app->zygote_child);
  EXPECT_FALSE(app->zygote);
  EXPECT_TRUE(app->IsZygoteLike());
  EXPECT_EQ(app->dacr.Get(kDomainZygote), DomainAccess::kClient);
  EXPECT_EQ(app->mm->user_domain(), kDomainZygote);

  // Grandchildren keep the flag.
  Task* grandchild = kernel.Fork(*app, "svc").child;
  EXPECT_TRUE(grandchild->zygote_child);

  // Children of plain processes do not acquire it.
  Task* plain = kernel.Fork(*init, "daemon").child;
  EXPECT_FALSE(plain->IsZygoteLike());
  EXPECT_EQ(plain->mm->user_domain(), kDomainUser);
}

TEST(KernelTest, ZygoteMmapOfCodeIsMarkedGlobalAndPreloaded) {
  Kernel kernel{SharedParams()};
  Task* zygote = kernel.CreateTask("zygote");
  kernel.Exec(*zygote, "app_process", true);

  kernel.Mmap(*zygote, CodeRequest(0x40000000, 4, 7));
  const VmArea* code = zygote->mm->FindVma(0x40000000);
  ASSERT_NE(code, nullptr);
  EXPECT_TRUE(code->global);
  EXPECT_TRUE(code->zygote_preloaded);

  // Data (non-executable) is preloaded but not global.
  MmapRequest data = AnonRequest(0x40400000, 4);
  data.kind = VmKind::kFilePrivate;
  data.file = 7;
  kernel.Mmap(*zygote, data);
  const VmArea* data_vma = zygote->mm->FindVma(0x40400000);
  EXPECT_FALSE(data_vma->global);
  EXPECT_TRUE(data_vma->zygote_preloaded);

  // Non-zygote mmaps of code get neither.
  Task* plain = kernel.CreateTask("plain");
  kernel.Mmap(*plain, CodeRequest(0x40000000, 4, 8));
  EXPECT_FALSE(plain->mm->FindVma(0x40000000)->global);
  EXPECT_FALSE(plain->mm->FindVma(0x40000000)->zygote_preloaded);
}

TEST(KernelTest, TouchPageFaultsOnceThenNot) {
  Kernel kernel{KernelParams{}};
  Task* task = kernel.CreateTask("t");
  kernel.Mmap(*task, CodeRequest(0x40000000, 2, 7));
  EXPECT_TRUE(kernel.TouchPage(*task, 0x40000000, AccessType::kExecute));
  EXPECT_EQ(kernel.counters().faults_file_backed, 1u);
  EXPECT_TRUE(kernel.TouchPage(*task, 0x40000000, AccessType::kExecute));
  EXPECT_EQ(kernel.counters().faults_file_backed, 1u);
  EXPECT_FALSE(kernel.TouchPage(*task, 0x70000000, AccessType::kRead));
}

TEST(KernelTest, TouchPageWriteUpgradesThroughCow) {
  Kernel kernel{KernelParams{}};
  Task* task = kernel.CreateTask("t");
  kernel.Mmap(*task, AnonRequest(0x50000000, 2));
  EXPECT_TRUE(kernel.TouchPage(*task, 0x50000000, AccessType::kRead));
  EXPECT_TRUE(kernel.TouchPage(*task, 0x50000000, AccessType::kWrite));
  const auto ref = task->mm->page_table().FindPte(0x50000000);
  EXPECT_EQ(ref->ptp->hw(ref->index).perm(), PtePerm::kReadWrite);
}

TEST(KernelTest, SharedForkThenTouchSharesSoftFaults) {
  Kernel kernel{SharedParams()};
  Task* zygote = kernel.CreateTask("zygote");
  kernel.Exec(*zygote, "app_process", true);
  kernel.Mmap(*zygote, CodeRequest(0x40000000, 8, 7));
  kernel.TouchPage(*zygote, 0x40000000, AccessType::kExecute);

  Task* app = kernel.Fork(*zygote, "app").child;
  // The PTE populated by the zygote is inherited: no fault.
  const uint64_t faults = kernel.counters().faults_file_backed;
  EXPECT_TRUE(kernel.TouchPage(*app, 0x40000000, AccessType::kExecute));
  EXPECT_EQ(kernel.counters().faults_file_backed, faults);

  // A page the app faults in becomes visible to a *later* fork.
  kernel.TouchPage(*app, 0x40001000, AccessType::kExecute);
  Task* app2 = kernel.Fork(*zygote, "app2").child;
  const uint64_t faults2 = kernel.counters().faults_file_backed;
  EXPECT_TRUE(kernel.TouchPage(*app2, 0x40001000, AccessType::kExecute));
  EXPECT_EQ(kernel.counters().faults_file_backed, faults2);
}

TEST(KernelTest, ExitFreesSharedPtpsByRefcount) {
  Kernel kernel{SharedParams()};
  Task* zygote = kernel.CreateTask("zygote");
  kernel.Exec(*zygote, "app_process", true);
  kernel.Mmap(*zygote, CodeRequest(0x40000000, 8, 7));
  kernel.TouchPage(*zygote, 0x40000000, AccessType::kExecute);

  const uint64_t live_before = kernel.ptp_allocator().live_ptps();
  Task* app = kernel.Fork(*zygote, "app").child;
  EXPECT_EQ(kernel.ptp_allocator().live_ptps(), live_before);  // shared
  kernel.Exit(*app);
  EXPECT_EQ(kernel.ptp_allocator().live_ptps(), live_before);
  EXPECT_FALSE(app->alive);
}

TEST(KernelTest, LastForkResultExposesTable4Stats) {
  Kernel kernel{SharedParams()};
  Task* zygote = kernel.CreateTask("zygote");
  kernel.Exec(*zygote, "app_process", true);
  kernel.Mmap(*zygote, CodeRequest(0x40000000, 8, 7));
  kernel.Mmap(*zygote, AnonRequest(0xB0000000, 8, /*stack=*/true));
  kernel.TouchPage(*zygote, 0x40000000, AccessType::kExecute);
  kernel.TouchPage(*zygote, 0xB0000000, AccessType::kWrite);

  const ForkResult result = kernel.Fork(*zygote, "app").stats;
  EXPECT_EQ(result.slots_shared, 1u);           // the code slot
  EXPECT_EQ(result.ptes_copied, 1u);            // the stack page
  EXPECT_EQ(result.child_ptps_allocated, 1u);   // the stack PTP
  EXPECT_GT(result.cycles, 0u);
}

// Regression: the old rollover reset next_asid_ to 1 and reissued ASIDs
// still held by live tasks, so the 256th allocation aliased a live
// address space (two tasks sharing one ASID can hit each other's TLB
// entries). The allocator must skip live ASIDs across the wrap.
TEST(KernelTest, AsidRolloverSkipsLiveTasks) {
  Kernel kernel{KernelParams{}};
  Task* keeper = kernel.CreateTask("keeper");
  const Asid kept = keeper->asid;
  // 300 short-lived tasks push the 8-bit ASID space around the horn
  // while `keeper` stays alive holding the first ASID.
  for (int i = 0; i < 300; ++i) {
    Task* t = kernel.CreateTask("t" + std::to_string(i));
    ASSERT_NE(t->asid, kept) << "live ASID reissued at iteration " << i;
    ASSERT_NE(t->asid, 0);
    kernel.Exit(*t);
  }
  // The wrap flushed a generation and the survivor kept its ASID.
  EXPECT_GE(kernel.counters().tlb_full_flushes, 1u);
  EXPECT_EQ(keeper->asid, kept);
  const AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(SchedulerTest, RoundRobinCyclesThroughTasks) {
  Kernel kernel{KernelParams{}};
  Task* a = kernel.CreateTask("a");
  Task* b = kernel.CreateTask("b");
  Scheduler scheduler(&kernel, /*group_zygote_like=*/false);
  scheduler.AddTask(a);
  scheduler.AddTask(b);
  Task* first = scheduler.RunQuantum();
  Task* second = scheduler.RunQuantum();
  EXPECT_NE(first, second);
  EXPECT_EQ(scheduler.stats().switches, 2u);
}

TEST(SchedulerTest, GroupingReducesCrossGroupSwitches) {
  auto run = [](bool grouped) {
    Kernel kernel{KernelParams{}};
    Task* init = kernel.CreateTask("init");
    Task* zygote = kernel.Fork(*init, "zygote").child;
    kernel.Exec(*zygote, "app_process", true);
    Scheduler scheduler(&kernel, grouped);
    // Two zygote-like apps and two plain daemons.
    scheduler.AddTask(kernel.Fork(*zygote, "app1").child);
    scheduler.AddTask(kernel.CreateTask("daemon1"));
    scheduler.AddTask(kernel.Fork(*zygote, "app2").child);
    scheduler.AddTask(kernel.CreateTask("daemon2"));
    for (int i = 0; i < 100; ++i) {
      scheduler.RunQuantum();
    }
    return scheduler.stats();
  };
  const SchedulerStats plain = run(false);
  const SchedulerStats grouped = run(true);
  EXPECT_LT(grouped.cross_group_switches, plain.cross_group_switches);
}

TEST(SchedulerTest, DeadTasksAreDropped) {
  Kernel kernel{KernelParams{}};
  Task* a = kernel.CreateTask("a");
  Task* b = kernel.CreateTask("b");
  Scheduler scheduler(&kernel, false);
  scheduler.AddTask(a);
  scheduler.AddTask(b);
  kernel.Exit(*b);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(scheduler.RunQuantum(), a);
  }
}

}  // namespace
}  // namespace sat
