// Tests for the methodology tools: the smaps analogue (Rss/PSS including
// page-table PSS) and the perf-style PC sampler.

#include <gtest/gtest.h>

#include "src/core/sat.h"

namespace sat {
namespace {

// ---------------------------------------------------------------------------
// Smaps.
// ---------------------------------------------------------------------------

TEST(SmapsTest, RssCountsResidentPagesOnly) {
  System system(ConfigByName("stock"));
  Kernel& kernel = system.kernel();
  Task* task = kernel.CreateTask("t");
  MmapRequest request;
  request.length = 16 * kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  request.fixed_address = 0x50000000;
  request.name = "probe";
  kernel.Mmap(*task, request);
  for (uint32_t i = 0; i < 5; ++i) {
    kernel.TouchPage(*task, 0x50000000 + i * kPageSize, AccessType::kWrite);
  }

  const SmapsReport report =
      GenerateSmaps(*task->mm, kernel.ptp_allocator(), &kernel.rmap());
  ASSERT_EQ(report.vmas.size(), 1u);
  EXPECT_EQ(report.vmas[0].name, "probe");
  EXPECT_EQ(report.vmas[0].size_kb, 64u);
  EXPECT_EQ(report.vmas[0].rss_kb, 20u);
  EXPECT_DOUBLE_EQ(report.vmas[0].pss_kb, 20.0);  // private: full charge
  EXPECT_EQ(report.vmas[0].private_kb, 20u);
  EXPECT_EQ(report.page_table_kb, 4u);
  EXPECT_NE(report.ToString().find("probe"), std::string::npos);
}

TEST(SmapsTest, PssSplitsSharedFramesAcrossProcesses) {
  // Under the stock kernel, N processes mapping the same file page each
  // get a 1/N PSS share.
  System system(ConfigByName("stock"));
  Kernel& kernel = system.kernel();
  Task* a = system.android().ForkApp("a");
  Task* b = system.android().ForkApp("b");
  const LibraryImage* libc = system.android().catalog().FindByName("libc.so");
  const VirtAddr va = system.android().CodePageVa(libc->id, 0);
  kernel.TouchPage(*a, va, AccessType::kExecute);
  kernel.TouchPage(*b, va, AccessType::kExecute);

  const SmapsReport report =
      GenerateSmaps(*a->mm, kernel.ptp_allocator(), &kernel.rmap());
  for (const VmaReport& vma : report.vmas) {
    if (vma.name == "libc.so:code") {
      EXPECT_EQ(vma.rss_kb, 4u);
      EXPECT_DOUBLE_EQ(vma.pss_kb, 2.0);  // split between a and b
      EXPECT_EQ(vma.shared_clean_kb, 4u);
    }
  }
}

TEST(SmapsTest, SharedPtpPssCountsSharersThroughOnePte) {
  // Under shared PTPs, one PTE serves both apps; PSS must still split the
  // page between the two processes (via the PTP's sharer count).
  System system(ConfigByName("shared-ptp"));
  Kernel& kernel = system.kernel();
  Task* a = system.android().ForkApp("a");
  Task* b = system.android().ForkApp("b");
  (void)b;
  const LibraryImage* libpng = system.android().catalog().FindByName("libpng.so");
  const VirtAddr va = system.android().CodePageVa(libpng->id, 0);
  kernel.TouchPage(*a, va, AccessType::kExecute);

  const SmapsReport report =
      GenerateSmaps(*a->mm, kernel.ptp_allocator(), &kernel.rmap());
  bool found = false;
  for (const VmaReport& vma : report.vmas) {
    if (vma.name == "libpng.so:code") {
      found = true;
      // The resident pages (ours + whatever the zygote's boot touched)
      // are all shared through one PTP by zygote + system_server + a + b:
      // PSS is exactly a quarter of Rss.
      EXPECT_GE(vma.rss_kb, 4u);
      EXPECT_NEAR(vma.pss_kb, vma.rss_kb / 4.0, 0.01);
      EXPECT_EQ(vma.shared_clean_kb, vma.rss_kb);
      EXPECT_EQ(vma.private_kb, 0u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SmapsTest, PageTablePssShowsTheTranslationSaving) {
  auto page_table_columns = [](const SystemConfig& config) {
    System system(config);
    Task* app = system.android().ForkApp("app");
    // Touch some code so stock builds private tables.
    const AppFootprint& boot = system.android().zygote_boot_footprint();
    for (size_t i = 0; i < boot.pages.size(); i += 8) {
      system.kernel().TouchPage(
          *app,
          system.android().CodePageVa(boot.pages[i].lib, boot.pages[i].page_index),
          AccessType::kExecute);
    }
    const SmapsReport report = GenerateSmaps(
        *app->mm, system.kernel().ptp_allocator(), &system.kernel().rmap());
    return std::pair<uint32_t, double>(report.page_table_kb,
                                       report.page_table_pss_kb);
  };

  const auto [stock_kb, stock_pss] = page_table_columns(ConfigByName("stock"));
  const auto [shared_kb, shared_pss] =
      page_table_columns(ConfigByName("shared-ptp"));
  // Stock: every PTP is private; PSS equals the classic footprint.
  EXPECT_DOUBLE_EQ(stock_pss, static_cast<double>(stock_kb));
  // Shared: the app's table footprint is mostly inherited PTPs whose cost
  // splits across zygote + system_server + app.
  EXPECT_LT(shared_pss, static_cast<double>(shared_kb) / 2.0);
  EXPECT_GT(shared_kb, 0u);
}

// ---------------------------------------------------------------------------
// PerfSampler.
// ---------------------------------------------------------------------------

TEST(ProfilerTest, SamplesAtTheConfiguredRate) {
  ZygoteParams params;
  params.kernel.vm = VmConfig::SharedPtpAndTlb();
  ZygoteSystem system(params);
  Kernel& kernel = system.kernel();
  Task* app = system.ForkApp("app");
  kernel.ScheduleTo(*app);

  PerfSampler sampler(&system, 0, /*interval=*/5000);
  const Cycles before = kernel.core().counters().cycles;
  const AppFootprint& boot = system.zygote_boot_footprint();
  for (int i = 0; i < 4000; ++i) {
    const TouchedPage& page = boot.pages[static_cast<size_t>(i * 13) % boot.pages.size()];
    kernel.core().FetchBurst(system.CodePageVa(page.lib, page.page_index), 20);
  }
  const Cycles elapsed = kernel.core().counters().cycles - before;
  const double expected = static_cast<double>(elapsed) / 5000.0;
  EXPECT_GT(sampler.sample_count(), expected * 0.5);
  EXPECT_LT(sampler.sample_count(), expected * 1.5);
}

TEST(ProfilerTest, ClassifiesSamplesByCategory) {
  ZygoteParams params;
  params.kernel.vm = VmConfig::SharedPtpAndTlb();
  ZygoteSystem system(params);
  Kernel& kernel = system.kernel();
  Task* app = system.ForkApp("app");
  kernel.ScheduleTo(*app);

  PerfSampler sampler(&system, 0, /*interval=*/800);
  // Fetch exclusively from one zygote-preloaded .so.
  const LibraryImage* libskia = system.catalog().FindByName("libskia.so");
  for (uint32_t i = 0; i < 3000; ++i) {
    kernel.core().FetchBurst(system.CodePageVa(libskia->id, (i * 5) % 512), 8);
  }
  const SampleBreakdown breakdown = sampler.Analyze(*app);
  ASSERT_GT(breakdown.total, 50u);
  // All user samples classify as zygote-preloaded dynamic libs; the only
  // other samples are kernel text (fault handlers).
  EXPECT_GT(breakdown.UserShare(CodeCategory::kZygoteDynamicLib), 0.99);
  EXPECT_GT(breakdown.SharedCodeShare(), 0.99);
}

TEST(ProfilerTest, KernelSamplesShowUpDuringFaultStorms) {
  ZygoteParams params;  // stock: every page faults
  ZygoteSystem system(params);
  Kernel& kernel = system.kernel();
  Task* app = system.ForkApp("app");
  kernel.ScheduleTo(*app);

  PerfSampler sampler(&system, 0, /*interval=*/400);
  const AppFootprint& boot = system.zygote_boot_footprint();
  for (size_t i = 0; i < 1500; ++i) {
    const TouchedPage& page = boot.pages[i % boot.pages.size()];
    kernel.core().FetchLine(system.CodePageVa(page.lib, page.page_index));
  }
  const SampleBreakdown breakdown = sampler.Analyze(*app);
  // A cold fault storm spends real time in the kernel fault path.
  EXPECT_GT(breakdown.KernelFraction(), 0.2);
  EXPECT_NE(breakdown.ToString().find("kernel="), std::string::npos);
}

}  // namespace
}  // namespace sat
