#!/bin/sh
# Build, test, and regenerate every table/figure. See EXPERIMENTS.md for
# how to read the outputs.
set -e
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/bench_*; do "$b"; done
