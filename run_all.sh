#!/bin/sh
# Build, test, and regenerate every table/figure. See EXPERIMENTS.md for
# how to read the outputs.
#
#   ./run_all.sh          normal build + tests + benches
#   ./run_all.sh --asan   ASan+UBSan build (separate build dir) + tests only
set -e

if [ "$1" = "--asan" ]; then
  cmake -B build-asan -G Ninja -DSAT_SANITIZE=ON
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure
  exit 0
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/bench_*; do "$b"; done
