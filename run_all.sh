#!/bin/sh
# Build, test, and regenerate every table/figure. See EXPERIMENTS.md for
# how to read the outputs.
#
#   ./run_all.sh                 normal build + tests + benches
#   ./run_all.sh --asan          ASan+UBSan build (separate build dir) + tests
#   ./run_all.sh --tsan          TSan build (separate build dir) + tests
#   ./run_all.sh --chaos         ASan build + the chaos suite only: audit
#                                fuzz under bit-flip + allocation-failure
#                                injection, and the oops/quarantine death
#                                tests (graceful degradation end to end)
#   ./run_all.sh --huge          the translation-reach suite only: huged
#                                collapse/split tests, the huge audit-fuzz
#                                cases, and the promotion-policy bench
#   ./run_all.sh --jobs N        worker threads per bench (default: cores)
#   ./run_all.sh --json-out DIR  write BENCH_<name>.json files into DIR
#   ./run_all.sh --smoke         reduced footprints (CI-sized runs)
set -e

JOBS=""
JSON_OUT=""
SMOKE=""
while [ $# -gt 0 ]; do
  case "$1" in
    --asan)
      cmake -B build-asan -G Ninja -DSAT_SANITIZE=ASAN
      cmake --build build-asan
      ctest --test-dir build-asan --output-on-failure
      exit 0
      ;;
    --tsan)
      cmake -B build-tsan -G Ninja -DSAT_SANITIZE=TSAN
      cmake --build build-tsan
      ctest --test-dir build-tsan --output-on-failure
      exit 0
      ;;
    --chaos)
      cmake -B build-asan -G Ninja -DSAT_SANITIZE=ASAN
      cmake --build build-asan
      ctest --test-dir build-asan --output-on-failure \
        -R '_chaos|OopsRecovery|InvariantDeath|Watchdog|ScrubRepairsRottenLargeReplica|ScrubSweepVotesRottenWords'
      exit 0
      ;;
    --huge)
      cmake -B build -G Ninja
      cmake --build build
      ctest --test-dir build --output-on-failure -R 'Huge|_huge'
      ./build/bench/bench_largepage --smoke
      exit 0
      ;;
    --jobs)
      JOBS="--jobs $2"
      shift
      ;;
    --json-out)
      JSON_OUT="$2"
      shift
      ;;
    --smoke)
      SMOKE="--smoke"
      ;;
    *)
      echo "unknown option: $1" >&2
      exit 2
      ;;
  esac
  shift
done

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

BENCH_FLAGS="$JOBS $SMOKE"
if [ -n "$JSON_OUT" ]; then
  mkdir -p "$JSON_OUT"
  BENCH_FLAGS="$BENCH_FLAGS --json-out $JSON_OUT"
fi
# shellcheck disable=SC2086  # BENCH_FLAGS is a deliberate word list
for b in build/bench/bench_*; do "$b" $BENCH_FLAGS; done
