#!/usr/bin/env python3
"""Diff two directories of BENCH_*.json experiment results.

The bench harness is deterministic: the same binary, seed and workload
produce bit-identical simulated metrics at any --jobs value. That makes
the JSON output diffable — this tool compares a checked-in baseline
sweep against a fresh run and reports every metric that moved, so a PR
that shifts simulated behaviour shows its effect in CI instead of
burying it.

Usage:
    tools/bench_diff.py BASELINE_DIR CURRENT_DIR [--tolerance FRAC]

Host-side measurements (host_ms) and run-shape fields (jobs) are
ignored; every simulated metric is compared exactly by default, or to a
relative tolerance with --tolerance. Any job in the current sweep whose
"status" label is not "ok" (the harness records "error" for a job that
threw and "timeout" for one that blew its --job-timeout deadline) fails
the diff outright, even where the baseline agrees. Exit status is 0
when the sweeps match, 1 when anything differs (including added/removed
benches or jobs, or a non-ok status), 2 on usage errors.

Only the Python standard library is used.
"""

import argparse
import json
import os
import sys

# Fields that legitimately differ between runs of identical simulations.
IGNORED_TOP_LEVEL = {"host_ms", "jobs"}
IGNORED_METRICS = set()


def find_results(root):
    """Maps relative path -> absolute path for every BENCH_*.json under root."""
    out = {}
    for dirpath, _, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.startswith("BENCH_") and name.endswith(".json"):
                path = os.path.join(dirpath, name)
                out[os.path.relpath(path, root)] = path
    return out


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def numbers_differ(a, b, tolerance):
    if a == b:
        return False
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        if tolerance > 0:
            scale = max(abs(a), abs(b))
            return abs(a - b) > tolerance * scale
        return True
    return True


def diff_job(rel, base_job, cur_job, tolerance, report):
    """Compares one job record (one entry of the 'configs' list)."""
    name = base_job.get("config", "?")
    base_metrics = {
        k: v
        for k, v in base_job.get("metrics", {}).items()
        if k not in IGNORED_METRICS
    }
    cur_metrics = {
        k: v
        for k, v in cur_job.get("metrics", {}).items()
        if k not in IGNORED_METRICS
    }
    for key in sorted(base_metrics.keys() - cur_metrics.keys()):
        report.append(f"{rel} [{name}] metric removed: {key} "
                      f"(was {base_metrics[key]})")
    for key in sorted(cur_metrics.keys() - base_metrics.keys()):
        report.append(f"{rel} [{name}] metric added: {key} "
                      f"(now {cur_metrics[key]})")
    for key in sorted(base_metrics.keys() & cur_metrics.keys()):
        old, new = base_metrics[key], cur_metrics[key]
        if numbers_differ(old, new, tolerance):
            delta = ""
            if isinstance(old, (int, float)) and isinstance(new, (int, float)) \
                    and old != 0:
                delta = f" ({(new - old) / abs(old):+.1%})"
            report.append(f"{rel} [{name}] {key}: {old} -> {new}{delta}")
    base_labels = base_job.get("labels", {})
    cur_labels = cur_job.get("labels", {})
    for key in sorted(base_labels.keys() | cur_labels.keys()):
        if base_labels.get(key) != cur_labels.get(key):
            report.append(f"{rel} [{name}] label {key}: "
                          f"{base_labels.get(key)!r} -> {cur_labels.get(key)!r}")


def diff_file(rel, base_path, cur_path, tolerance, report):
    base = load(base_path)
    cur = load(cur_path)
    for key in sorted(set(base) | set(cur)):
        if key in IGNORED_TOP_LEVEL or key == "configs":
            continue
        if base.get(key) != cur.get(key):
            report.append(f"{rel} {key}: {base.get(key)!r} -> {cur.get(key)!r}")
    base_jobs = {job.get("config", "?"): job for job in base.get("configs", [])}
    cur_jobs = {job.get("config", "?"): job for job in cur.get("configs", [])}
    for name in sorted(base_jobs.keys() - cur_jobs.keys()):
        report.append(f"{rel} job removed: {name}")
    for name in sorted(cur_jobs.keys() - base_jobs.keys()):
        report.append(f"{rel} job added: {name}")
    for name in sorted(base_jobs.keys() & cur_jobs.keys()):
        diff_job(rel, base_jobs[name], cur_jobs[name], tolerance, report)


def check_statuses(files, report):
    """Fails any job that crashed, hung, or was cut short.

    Checked over the *current* sweep only, and independently of the
    baseline: two sweeps that broke identically still must not pass.
    Skipped jobs carry no "status" label and are exempt.
    """
    for rel in sorted(files):
        for job in load(files[rel]).get("configs", []):
            labels = job.get("labels", {})
            status = labels.get("status")
            if status is not None and status != "ok":
                reason = labels.get("status_reason", "")
                suffix = f" ({reason})" if reason else ""
                report.append(f"{rel} [{job.get('config', '?')}] "
                              f"non-ok status: {status}{suffix}")


def main(argv):
    parser = argparse.ArgumentParser(
        description="Diff two directories of BENCH_*.json results.")
    parser.add_argument("baseline", help="directory with the baseline sweep")
    parser.add_argument("current", help="directory with the fresh sweep")
    parser.add_argument("--tolerance", type=float, default=0.0, metavar="FRAC",
                        help="relative tolerance for numeric metrics "
                             "(default 0: exact)")
    args = parser.parse_args(argv)
    for d in (args.baseline, args.current):
        if not os.path.isdir(d):
            parser.error(f"not a directory: {d}")

    base_files = find_results(args.baseline)
    cur_files = find_results(args.current)
    report = []
    for rel in sorted(base_files.keys() - cur_files.keys()):
        report.append(f"result file removed: {rel}")
    for rel in sorted(cur_files.keys() - base_files.keys()):
        report.append(f"result file added: {rel}")
    compared = sorted(base_files.keys() & cur_files.keys())
    for rel in compared:
        diff_file(rel, base_files[rel], cur_files[rel], args.tolerance, report)
    check_statuses(cur_files, report)

    if report:
        print(f"{len(report)} difference(s) across {len(compared)} "
              f"compared file(s):")
        for line in report:
            print(f"  {line}")
        return 1
    print(f"no differences across {len(compared)} compared file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
