#include "src/loader/library.h"

#include <cassert>

namespace sat {

LibraryId LibraryCatalog::Register(std::string name, CodeCategory category,
                                   uint32_t code_pages, uint32_t data_pages) {
  assert(code_pages > 0);
  LibraryImage image;
  image.id = static_cast<LibraryId>(libs_.size());
  image.name = std::move(name);
  image.category = category;
  // One backing "file" per library; file ids are 1:1 with library ids.
  image.file = static_cast<FileId>(image.id);
  image.code_pages = code_pages;
  image.data_pages = data_pages;
  libs_.push_back(std::move(image));
  return libs_.back().id;
}

const LibraryImage& LibraryCatalog::Get(LibraryId id) const {
  assert(id >= 0 && static_cast<size_t>(id) < libs_.size());
  return libs_[static_cast<size_t>(id)];
}

const LibraryImage* LibraryCatalog::FindByName(const std::string& name) const {
  for (const LibraryImage& image : libs_) {
    if (image.name == name) {
      return &image;
    }
  }
  return nullptr;
}

std::vector<LibraryId> LibraryCatalog::ZygotePreloadSet() const {
  std::vector<LibraryId> out;
  for (const LibraryImage& image : libs_) {
    if (IsZygotePreloadedCategory(image.category)) {
      out.push_back(image.id);
    }
  }
  return out;
}

uint64_t LibraryCatalog::TotalPreloadedCodePages() const {
  uint64_t total = 0;
  for (const LibraryImage& image : libs_) {
    if (IsZygotePreloadedCategory(image.category)) {
      total += image.code_pages;
    }
  }
  return total;
}

namespace {

constexpr uint32_t Kb(uint32_t kb) { return (kb + 3) / 4; }  // KB -> pages
constexpr uint32_t Mb(uint32_t mb) { return mb * 256; }      // MB -> pages

}  // namespace

LibraryCatalog LibraryCatalog::AndroidDefault() {
  LibraryCatalog catalog;

  // The zygote's main program (category 3 of Section 2.1).
  catalog.Register("app_process", CodeCategory::kZygoteProgramBinary,
                   Kb(16), Kb(4));

  // The AOT-compiled Java boot image (category 2): ART replaces Dalvik's
  // JIT with install-time compilation; boot.oat holds the native code of
  // the Java framework libraries. This is the 35 MB top end the paper
  // reports.
  catalog.Register("boot.oat", CodeCategory::kZygoteJavaLib, Mb(30), Mb(3));
  catalog.Register("boot-framework.oat", CodeCategory::kZygoteJavaLib,
                   Mb(6), Mb(1));

  // Zygote-preloaded native libraries (category 1), sized after the real
  // KitKat-era platform set.
  struct NativeLib {
    const char* name;
    uint32_t code_kb;
    uint32_t data_kb;
  };
  static constexpr NativeLib kNativeLibs[] = {
      {"linker", 92, 8},
      {"libc.so", 792, 48},
      {"libm.so", 220, 8},
      {"libdl.so", 8, 4},
      {"libstdc++.so", 12, 4},
      {"libc++.so", 840, 40},
      {"libart.so", 6200, 280},
      {"libandroid_runtime.so", 2200, 140},
      {"libandroidfw.so", 280, 16},
      {"libbinder.so", 420, 32},
      {"libutils.so", 260, 16},
      {"libcutils.so", 120, 12},
      {"liblog.so", 32, 8},
      {"libskia.so", 4200, 180},
      {"libhwui.so", 1400, 96},
      {"libGLESv2.so", 64, 12},
      {"libGLESv1_CM.so", 44, 8},
      {"libEGL.so", 180, 20},
      {"libgui.so", 560, 40},
      {"libui.so", 140, 12},
      {"libft2.so", 1200, 48},
      {"libicuuc.so", 1900, 120},
      {"libicui18n.so", 1800, 100},
      {"libsqlite.so", 840, 40},
      {"libssl.so", 420, 28},
      {"libcrypto.so", 1700, 96},
      {"libz.so", 96, 8},
      {"libexpat.so", 180, 12},
      {"libmedia.so", 1100, 88},
      {"libstagefright.so", 1900, 120},
      {"libcamera_client.so", 360, 24},
      {"libsonivox.so", 340, 20},
      {"libharfbuzz_ng.so", 620, 28},
      {"libwebviewchromium.so", 11000, 700},
      {"libjavacore.so", 420, 28},
      {"libnativehelper.so", 64, 8},
      {"libselinux.so", 88, 8},
      {"libpackagelistparser.so", 12, 4},
      {"libprocessgroup.so", 20, 4},
      {"libmemtrack.so", 8, 4},
      {"libnetd_client.so", 16, 4},
      {"libsoundpool.so", 72, 8},
      {"libaudioeffect_jni.so", 48, 8},
      {"libjnigraphics.so", 12, 4},
      {"librs_jni.so", 40, 8},
      {"libRS.so", 620, 36},
      {"libbcc.so", 1400, 64},
      {"libLLVM.so", 3200, 120},
      {"libpixelflinger.so", 180, 12},
      {"libETC1.so", 16, 4},
      {"libhardware.so", 12, 4},
      {"libhardware_legacy.so", 96, 12},
      {"libsurfaceflinger_client.so", 140, 12},
      {"libemoji.so", 24, 4},
      {"libjpeg.so", 280, 16},
      {"libpng.so", 200, 12},
      {"libgif.so", 36, 4},
      {"libwebp.so", 320, 16},
      {"libexif.so", 60, 8},
      {"libstlport.so", 380, 20},
      {"libusbhost.so", 12, 4},
      {"libvorbisidec.so", 160, 12},
      {"libnfc_ndef.so", 24, 4},
      {"libwilhelm.so", 680, 48},
      {"libdrmframework.so", 260, 20},
      {"libmtp.so", 200, 16},
      {"libexpat_shared.so", 180, 12},
      {"libtextclassifier.so", 540, 28},
      {"libminikin.so", 240, 16},
      {"libinput.so", 320, 20},
      {"libinputflinger.so", 280, 20},
      {"libcamera_metadata.so", 64, 8},
      {"libspeexresampler.so", 40, 4},
      {"libaudioutils.so", 52, 8},
      {"libpower.so", 8, 4},
      {"libsync.so", 8, 4},
      {"libion.so", 8, 4},
      {"libtinyalsa.so", 36, 4},
      {"libbacktrace.so", 76, 8},
      {"libunwind.so", 160, 12},
      {"libbase.so", 44, 4},
      {"libtimezone.so", 120, 8},
      {"libphonenumber.so", 420, 24},
      {"libkeystore_client.so", 48, 8},
      {"libsoftkeymaster.so", 88, 8},
  };
  for (const NativeLib& lib : kNativeLibs) {
    catalog.Register(lib.name, CodeCategory::kZygoteDynamicLib,
                     Kb(lib.code_kb), Kb(lib.data_kb));
  }

  // 88 zygote-preloaded objects, matching the paper's platform count.
  assert(catalog.ZygotePreloadSet().size() == 88);
  return catalog;
}

}  // namespace sat
