// Shared-library images and the library catalog.
//
// The catalog is the simulation's stand-in for the on-disk library set of
// the paper's Nexus 7 (Android KitKat + ART): 88 zygote-preloaded
// libraries — the dynamic loader and .so files, the AOT-compiled Java boot
// image, and the app_process program binary — plus platform-specific and
// app-private libraries registered by the workload layer. Sizes are
// representative of the real platform (the paper reports preloaded shared
// code ranging from 4 KB to ~35 MB per object).

#ifndef SRC_LOADER_LIBRARY_H_
#define SRC_LOADER_LIBRARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/arch/types.h"

namespace sat {

using LibraryId = int32_t;

// The instruction-footprint categories of Figures 2 and 3.
enum class CodeCategory : uint8_t {
  kPrivateCode = 0,       // the application's own code
  kOtherSharedLib,        // app-specific + platform-specific dynamic libs
  kZygoteProgramBinary,   // app_process
  kZygoteJavaLib,         // AOT-compiled Java shared libraries (boot image)
  kZygoteDynamicLib,      // zygote-preloaded .so files
};

constexpr const char* CodeCategoryName(CodeCategory category) {
  switch (category) {
    case CodeCategory::kPrivateCode:
      return "private code";
    case CodeCategory::kOtherSharedLib:
      return "dynamic shared lib not preloaded by zygote";
    case CodeCategory::kZygoteProgramBinary:
      return "zygote program binary";
    case CodeCategory::kZygoteJavaLib:
      return "zygote-preloaded Java shared lib";
    case CodeCategory::kZygoteDynamicLib:
      return "zygote-preloaded dynamic shared lib";
  }
  return "?";
}

constexpr bool IsZygotePreloadedCategory(CodeCategory category) {
  return category == CodeCategory::kZygoteProgramBinary ||
         category == CodeCategory::kZygoteJavaLib ||
         category == CodeCategory::kZygoteDynamicLib;
}

constexpr bool IsSharedCodeCategory(CodeCategory category) {
  return category != CodeCategory::kPrivateCode;
}

struct LibraryImage {
  LibraryId id = -1;
  std::string name;
  CodeCategory category = CodeCategory::kZygoteDynamicLib;
  FileId file = kNoFile;       // backing "file"; data follows code in it
  uint32_t code_pages = 0;     // r-x segment size
  uint32_t data_pages = 0;     // rw- segment size (COW private)

  uint32_t code_bytes() const { return code_pages * kPageSize; }
  uint32_t data_bytes() const { return data_pages * kPageSize; }
};

class LibraryCatalog {
 public:
  LibraryCatalog() = default;

  LibraryId Register(std::string name, CodeCategory category,
                     uint32_t code_pages, uint32_t data_pages);

  const LibraryImage& Get(LibraryId id) const;
  const LibraryImage* FindByName(const std::string& name) const;

  size_t size() const { return libs_.size(); }

  // Every library the zygote preloads, in preload order (app_process
  // first, then the Java boot image, then the native libraries).
  std::vector<LibraryId> ZygotePreloadSet() const;

  uint64_t TotalPreloadedCodePages() const;

  // The Android-flavoured default: 88 zygote-preloaded objects.
  static LibraryCatalog AndroidDefault();

 private:
  std::vector<LibraryImage> libs_;
};

}  // namespace sat

#endif  // SRC_LOADER_LIBRARY_H_
