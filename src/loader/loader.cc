#include "src/loader/loader.h"

#include <cassert>

namespace sat {

MappedLibrary DynamicLoader::MapLibrary(Task& task, LibraryId lib,
                                        VirtAddr low, VirtAddr high) {
  const LibraryImage& image = catalog_->Get(lib);
  MmStruct& mm = *task.mm;
  MappedLibrary mapped;
  mapped.lib = lib;

  const uint32_t code_bytes = image.code_pages * kPageSize;
  const uint32_t data_bytes = image.data_pages * kPageSize;

  if (policy_ == MappingPolicy::kOriginal) {
    // Stock layout: data immediately follows code in one reservation.
    if (large_code_pages_) {
      // 64 KB mappings need 64 KB-aligned virtual bases.
      const auto base = mm.FindFreeRangeAligned(code_bytes + data_bytes,
                                                kLargePageSize, low, high);
      assert(base.has_value() && "library window exhausted");
      mapped.code_base = *base;
      mapped.data_base = *base + ((code_bytes + kLargePageSize - 1) &
                                  ~(kLargePageSize - 1));
    } else {
      const auto base = mm.FindFreeRange(code_bytes + data_bytes, low, high);
      assert(base.has_value() && "library window exhausted");
      mapped.code_base = *base;
      mapped.data_base = *base + code_bytes;
    }
  } else {
    // 2 MB policy: code at a 2 MB boundary; the data segment in its own
    // 2 MB-aligned reservation so it can never share a PTP with any code.
    const auto code = mm.FindFreeRangeAligned(code_bytes, kPtpSpan, low, high);
    assert(code.has_value() && "library window exhausted");
    mapped.code_base = *code;
    if (data_bytes > 0) {
      // Reserve from beyond the code segment so the data search does not
      // land inside the code PTP span.
      const VirtAddr data_low =
          (mapped.code_base + code_bytes + kPtpSpan - 1) & ~(kPtpSpan - 1);
      const auto data =
          mm.FindFreeRangeAligned(data_bytes, kPtpSpan, data_low, high);
      assert(data.has_value() && "library window exhausted");
      mapped.data_base = *data;
    }
  }

  MmapRequest code_request;
  code_request.use_large_pages = large_code_pages_;
  code_request.length = code_bytes;
  code_request.prot = VmProt::ReadExec();
  code_request.kind = VmKind::kFilePrivate;
  code_request.file = image.file;
  code_request.file_page_offset = 0;
  code_request.fixed_address = mapped.code_base;
  code_request.name = image.name + ":code";
  const VirtAddr code_at = kernel_->Mmap(task, code_request).value;
  assert(code_at == mapped.code_base);
  (void)code_at;

  if (data_bytes > 0) {
    MmapRequest data_request;
    data_request.length = data_bytes;
    data_request.prot = VmProt::ReadWrite();
    data_request.kind = VmKind::kFilePrivate;
    data_request.file = image.file;
    data_request.file_page_offset = image.code_pages;  // data follows code
    data_request.fixed_address = mapped.data_base;
    data_request.name = image.name + ":data";
    const VirtAddr data_at = kernel_->Mmap(task, data_request).value;
    assert(data_at == mapped.data_base);
    (void)data_at;
  }
  return mapped;
}

const std::vector<MappedLibrary>& DynamicLoader::PreloadAll(Task& zygote) {
  assert(zygote.zygote && "preload target must carry the zygote flag");
  zygote_layout_.clear();
  zygote_index_.clear();
  for (LibraryId lib : catalog_->ZygotePreloadSet()) {
    MappedLibrary mapped =
        MapLibrary(zygote, lib, kPreloadRegionLow, kPreloadRegionHigh);
    zygote_index_[lib] = zygote_layout_.size();
    zygote_layout_.push_back(mapped);
  }
  return zygote_layout_;
}

const MappedLibrary* DynamicLoader::FindZygoteMapping(LibraryId lib) const {
  const auto it = zygote_index_.find(lib);
  if (it == zygote_index_.end()) {
    return nullptr;
  }
  return &zygote_layout_[it->second];
}

}  // namespace sat
