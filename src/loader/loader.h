// The dynamic loader: maps library segments into a task's address space
// under one of two mapping policies.
//
//   kOriginal     — the stock Android/ARM layout: a library's rw- data
//                   segment is placed immediately after its r-x code
//                   segment, so both usually land in the same 2 MB
//                   page-table page. A write to the data segment then
//                   unshares the code segment's translations too — the
//                   lost-sharing problem of Section 3.1.3.
//   kTwoMbAligned — the paper's remedy: code segments are mapped at 2 MB
//                   boundaries and data segments at separate 2 MB-aligned
//                   addresses, so code and data never share a PTP (the
//                   x86-64 ABI already separates code and data by 2 MB).

#ifndef SRC_LOADER_LOADER_H_
#define SRC_LOADER_LOADER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/loader/library.h"
#include "src/proc/kernel.h"
#include "src/proc/task.h"

namespace sat {

enum class MappingPolicy : uint8_t {
  kOriginal = 0,
  kTwoMbAligned,
};

constexpr const char* MappingPolicyName(MappingPolicy policy) {
  return policy == MappingPolicy::kOriginal ? "original" : "2MB-aligned";
}

struct MappedLibrary {
  LibraryId lib = -1;
  VirtAddr code_base = 0;
  VirtAddr data_base = 0;
};

class DynamicLoader {
 public:
  // Default placement windows.
  static constexpr VirtAddr kPreloadRegionLow = 0x40000000;
  static constexpr VirtAddr kPreloadRegionHigh = 0x9F000000;
  static constexpr VirtAddr kAppLibRegionLow = 0x9F000000;
  static constexpr VirtAddr kAppLibRegionHigh = 0xAF000000;

  DynamicLoader(Kernel* kernel, const LibraryCatalog* catalog,
                MappingPolicy policy)
      : kernel_(kernel), catalog_(catalog), policy_(policy) {}

  MappingPolicy policy() const { return policy_; }

  // Map code segments with 64 KB large pages (the Section 2.3.3
  // complement experiment). Code bases are then 64 KB-aligned.
  void set_large_code_pages(bool on) { large_code_pages_ = on; }
  bool large_code_pages() const { return large_code_pages_; }
  const LibraryCatalog& catalog() const { return *catalog_; }

  // Maps `lib`'s code (r-x) and data (rw-, private COW) segments for
  // `task` inside [low, high). Returns the placement.
  MappedLibrary MapLibrary(Task& task, LibraryId lib, VirtAddr low,
                           VirtAddr high);

  // Maps an app-specific/platform library in the app window.
  MappedLibrary MapAppLibrary(Task& task, LibraryId lib) {
    return MapLibrary(task, lib, kAppLibRegionLow, kAppLibRegionHigh);
  }

  // Preloads the whole zygote set into `zygote` (which must carry the
  // zygote flag so the kernel applies the global-region policy). Records
  // and returns the canonical layout that every forked app inherits.
  const std::vector<MappedLibrary>& PreloadAll(Task& zygote);

  // The canonical zygote layout (valid after PreloadAll).
  const std::vector<MappedLibrary>& zygote_layout() const {
    return zygote_layout_;
  }
  const MappedLibrary* FindZygoteMapping(LibraryId lib) const;

 private:
  Kernel* kernel_;
  const LibraryCatalog* catalog_;
  MappingPolicy policy_;
  bool large_code_pages_ = false;
  std::vector<MappedLibrary> zygote_layout_;
  std::unordered_map<LibraryId, size_t> zygote_index_;
};

}  // namespace sat

#endif  // SRC_LOADER_LOADER_H_
