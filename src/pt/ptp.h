// Page-table pages (PTPs) and their allocator.
//
// One PTP is a single 4 KB physical frame laid out exactly as Linux/ARM
// lays it out (the paper's Figure 5):
//
//     +0     Linux PTE table 0   (256 software entries for the even MB)
//     +1024  Linux PTE table 1   (256 software entries for the odd MB)
//     +2048  HW PTE table 0      (256 hardware entries for the even MB)
//     +3072  HW PTE table 1      (256 hardware entries for the odd MB)
//
// so a PTP maps a 2 MB-aligned span of virtual address space. The hardware
// walker reads the HW half; the simulated cache hierarchy therefore sees
// PTE fetches as loads from `frame * 4096 + 2048 + index * 4` — which is
// how a *shared* PTP turns into shared L2 cache lines across processes,
// one of the paper's claimed benefits.
//
// The PTP sharer count is kept in the frame's `map_count`, mirroring the
// paper's reuse of `struct page::mapcount`.

#ifndef SRC_PT_PTP_H_
#define SRC_PT_PTP_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/arch/pte.h"
#include "src/arch/types.h"
#include "src/mem/phys_memory.h"
#include "src/stats/counters.h"

namespace sat {

// Observes every mutation of a PTP's hardware half — the single
// write-through path the NUMA replication engine (src/numa) keeps
// per-node replicas coherent with. Notified by Set/Clear/UpdateFlags/
// RepairHw; deliberately NOT by CorruptHwForChaos, which models a stray
// bit flip in the master frame's DRAM and must leave replicas intact so
// scrubd can use them as a repair source.
class PtpWriteObserver {
 public:
  virtual ~PtpWriteObserver() = default;
  // The hardware descriptor word at (`ptp`, `index`) is now `raw_hw`.
  virtual void OnHwWrite(PtpId ptp, uint32_t index, uint32_t raw_hw) = 0;
  // The PTP's last sharer dropped; any replicas are now stale.
  virtual void OnPtpDestroyed(PtpId ptp) = 0;
};

class PageTablePage {
 public:
  PageTablePage(PtpId id, FrameNumber frame) : id_(id), frame_(frame) {}

  PtpId id() const { return id_; }
  FrameNumber frame() const { return frame_; }

  const HwPte& hw(uint32_t index) const { return hw_[index]; }
  const LinuxPte& sw(uint32_t index) const { return sw_[index]; }

  // Number of valid hardware entries, maintained by Set/Clear.
  uint32_t present_count() const { return present_count_; }

  // Installs (or replaces) the entry at `index`.
  void Set(uint32_t index, HwPte hw_pte, LinuxPte sw_pte);

  // Invalidates the entry at `index`.
  void Clear(uint32_t index);

  // In-place mutation that cannot change validity (permission twiddles,
  // referenced/dirty updates). Kept separate from Set so present_count
  // stays trivially correct.
  void UpdateFlags(uint32_t index, HwPte hw_pte, LinuxPte sw_pte);

  // Chaos backdoor: XORs the raw hardware descriptor word at `index`
  // without maintaining present_count_ or the shadow entry — exactly what
  // a stray bit flip in the PTP's frame does. The Linux shadow entry and
  // the rmap survive as the redundant copy scrubd repairs from.
  void CorruptHwForChaos(uint32_t index, uint32_t xor_mask);

  // Scrub repair: overwrites the hardware descriptor from a trusted
  // source and resynchronises present_count_ with the table.
  void RepairHw(uint32_t index, HwPte hw_pte);

  // Recounts present_count_ from the hardware table (hygiene after
  // corruption was detected and healed). Returns the fresh count.
  uint32_t RecountPresentForScrub();

  // Physical address of the hardware PTE for `index` (the address the
  // hardware walker loads, and thus the address the cache model sees).
  PhysAddr HwEntryPhysAddr(uint32_t index) const {
    const uint32_t mb = index / kL2EntriesPerTable;            // 0 or 1
    const uint32_t within = index % kL2EntriesPerTable;
    return FrameToPhys(frame_) + 2048 + mb * 1024 + within * 4;
  }

  // NUMA migration: retargets this PTP onto a frame on another node.
  // Translations are unchanged (the PTE *contents* stay identical), only
  // the physical address walkers fetch them from moves, so no TLB flush
  // is required. Frame metadata transfer is the caller's job.
  void SetFrameForMigration(FrameNumber frame) { frame_ = frame; }

  void set_write_observer(PtpWriteObserver* observer) {
    write_observer_ = observer;
  }

 private:
  void NotifyHwWrite(uint32_t index) {
    if (write_observer_ != nullptr) {
      write_observer_->OnHwWrite(id_, index, hw_[index].raw());
    }
  }

  PtpId id_;
  FrameNumber frame_;
  uint32_t present_count_ = 0;
  PtpWriteObserver* write_observer_ = nullptr;
  std::array<HwPte, kPtesPerPtp> hw_{};
  std::array<LinuxPte, kPtesPerPtp> sw_{};
};

// Owns every PTP in the simulated kernel. L1 entries reference PTPs by id;
// sharing is reference counting on the PTP's frame map_count.
class PtpAllocator {
 public:
  PtpAllocator(PhysicalMemory* phys, KernelCounters* counters)
      : phys_(phys), counters_(counters) {}

  PtpAllocator(const PtpAllocator&) = delete;
  PtpAllocator& operator=(const PtpAllocator&) = delete;

  // Allocates a PTP with sharer count 1 and bumps ptps_allocated, or
  // returns nullopt if no physical frame is available.
  std::optional<PtpId> TryAlloc();

  // Infallible wrapper: SAT_CHECK-aborts instead of returning failure.
  PtpId Alloc();

  PageTablePage& Get(PtpId id);
  const PageTablePage& Get(PtpId id) const;

  // Like Get but returns nullptr for freed/out-of-range ids (for the
  // invariant auditor, which must not abort on the corruption it reports).
  const PageTablePage* GetIfLive(PtpId id) const;

  // Sharer-count (map_count) manipulation.
  uint32_t SharerCount(PtpId id) const;
  void AddSharer(PtpId id);
  // Drops one sharer; frees the PTP (and its frame) when none remain.
  // Returns true if the PTP was destroyed. Frames mapped by its PTEs must
  // already have been released by the caller (the VM layer owns data-frame
  // reference counting).
  bool DropSharer(PtpId id);

  // Attaches the NUMA replication engine's coherence hook to every live
  // PTP and every PTP allocated from here on. Pass nullptr to detach.
  void set_write_observer(PtpWriteObserver* observer);

  uint64_t live_ptps() const { return live_count_; }

  // Deterministically picks a live PTP (scan from rand % slab size), or
  // nullopt when none is live. For chaos-injection target selection.
  std::optional<PtpId> AnyLiveId(uint64_t rand) const;

  // Visits every live PTP (for the invariant auditor).
  template <typename Fn>
  void ForEachLive(Fn&& fn) const {
    for (const auto& ptp : slab_) {
      if (ptp != nullptr) {
        fn(*ptp);
      }
    }
  }

 private:
  PhysicalMemory* phys_;
  KernelCounters* counters_;
  PtpWriteObserver* write_observer_ = nullptr;
  std::vector<std::unique_ptr<PageTablePage>> slab_;
  std::vector<PtpId> free_ids_;
  uint64_t live_count_ = 0;
};

}  // namespace sat

#endif  // SRC_PT_PTP_H_
