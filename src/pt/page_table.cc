#include "src/pt/page_table.h"

#include <cassert>

#include "src/arch/check.h"
#include "src/mem/zram.h"
#include "src/trace/trace.h"

namespace sat {

PageTable::~PageTable() { ReleaseAll(); }

PageTablePage* PageTable::TryEnsurePtp(VirtAddr va, DomainId domain) {
  SAT_CHECK(IsUserAddress(va));
  L1Entry& entry = l1_[PtpSlotIndex(va)];
  SAT_CHECK(!entry.need_copy &&
            "mutating access to a NEED_COPY slot; unshare first");
  if (!entry.present()) {
    const std::optional<PtpId> id = alloc_->TryAlloc();
    if (!id.has_value()) {
      return nullptr;
    }
    entry.ptp = *id;
    entry.domain = domain;
  }
  return &alloc_->Get(entry.ptp);
}

PageTablePage& PageTable::EnsurePtp(VirtAddr va, DomainId domain) {
  PageTablePage* ptp = TryEnsurePtp(va, domain);
  SAT_CHECK(ptp != nullptr && "out of physical memory for page tables");
  return *ptp;
}

std::optional<PteRef> PageTable::FindPte(VirtAddr va) const {
  assert(IsUserAddress(va));
  const L1Entry& entry = l1_[PtpSlotIndex(va)];
  if (!entry.present()) {
    return std::nullopt;
  }
  return PteRef{&alloc_->Get(entry.ptp), PteIndexInPtp(va)};
}

void PageTable::TakeFrame(const HwPte& pte, PtpId ptp, uint32_t index,
                          VirtAddr va) {
  const FrameNumber frame = MappedFrameOf(pte, index);
  phys_->RefFrame(frame);
  const FrameKind kind = phys_->frame(frame).kind;
  if (rmap_ != nullptr && kind != FrameKind::kZero &&
      kind != FrameKind::kKernel) {
    rmap_->Add(frame, ptp, index, va);
  }
}

void PageTable::DropFrame(const HwPte& pte, PtpId ptp, uint32_t index) {
  if (!pte.valid()) {
    return;
  }
  // Teardown must survive descriptors whose frame bits rotted (chaos
  // injection): the frame number is untrusted until the rmap confirms it.
  const FrameNumber frame = MappedFrameOf(pte, index);
  const bool in_range = frame < phys_->total_frames();
  if (in_range) {
    const FrameKind kind = phys_->frame(frame).kind;
    if (kind == FrameKind::kZero || kind == FrameKind::kKernel) {
      phys_->UnrefFrame(frame);  // permanent frames: no rmap, no refcount
      return;
    }
  }
  if (rmap_ == nullptr) {
    if (in_range) {
      phys_->UnrefFrame(frame);
    }
    return;
  }
  if (in_range && rmap_->Remove(frame, ptp, index)) {
    phys_->UnrefFrame(frame);  // the normal path: rmap agreed
    return;
  }
  // The descriptor lied. Release whatever the rmap says was really mapped
  // here; if it knows nothing, no reference was ever taken through this
  // descriptor (spurious-valid corruption, or a zero-page mapping whose
  // frame bits rotted) and there is nothing to drop.
  const auto truth = rmap_->FindAtSite(ptp, index);
  if (truth.has_value()) {
    rmap_->Remove(truth->first, ptp, index);
    phys_->UnrefFrame(truth->first);
  }
}

void PageTable::DropSwap(const LinuxPte& sw_pte) {
  if (!sw_pte.is_swap()) {
    return;
  }
  SAT_CHECK(zram_ != nullptr && "swap entry without a zram store attached");
  zram_->Unref(sw_pte.swap_slot());
}

void PageTable::SetPte(VirtAddr va, HwPte hw_pte, LinuxPte sw_pte,
                       bool allow_shared) {
  const L1Entry& entry = l1_[PtpSlotIndex(va)];
  SAT_CHECK(entry.present() && "SetPte without a PTP; call EnsurePtp");
  SAT_CHECK((!entry.need_copy || allow_shared) &&
            "mutating a NEED_COPY slot; unshare first");
  SAT_CHECK((!entry.need_copy || hw_pte.perm() != PtePerm::kReadWrite) &&
            "a PTE installed in a shared PTP must be write-protected");
  (void)allow_shared;
  PageTablePage& ptp = alloc_->Get(entry.ptp);
  const uint32_t index = PteIndexInPtp(va);
  // Take the new reference before dropping the old one so replacing a frame
  // (or swap slot) with itself stays safe.
  if (sw_pte.is_swap()) {
    SAT_CHECK(!hw_pte.valid() && "a swap entry has no hardware mapping");
    SAT_CHECK(!sw_pte.present());
    SAT_CHECK(zram_ != nullptr && "swap entry without a zram store attached");
    zram_->Ref(sw_pte.swap_slot());
  }
  if (hw_pte.valid()) {
    TakeFrame(hw_pte, entry.ptp, index, PageAlignDown(va));
  }
  const LinuxPte old_sw = ptp.sw(index);
  DropFrame(ptp.hw(index), entry.ptp, index);
  ptp.Set(index, hw_pte, sw_pte);
  DropSwap(old_sw);
}

void PageTable::ClearPte(VirtAddr va) {
  const L1Entry& entry = l1_[PtpSlotIndex(va)];
  if (!entry.present()) {
    return;
  }
  SAT_CHECK(!entry.need_copy &&
            "clearing a PTE in a NEED_COPY slot; unshare first");
  PageTablePage& ptp = alloc_->Get(entry.ptp);
  const uint32_t index = PteIndexInPtp(va);
  const LinuxPte old_sw = ptp.sw(index);
  DropFrame(ptp.hw(index), entry.ptp, index);
  ptp.Clear(index);
  DropSwap(old_sw);
}

void PageTable::UpdatePte(VirtAddr va, HwPte hw_pte, LinuxPte sw_pte,
                          bool allow_shared) {
  const L1Entry& entry = l1_[PtpSlotIndex(va)];
  SAT_CHECK(entry.present());
  SAT_CHECK((!entry.need_copy || allow_shared) &&
            "updating a PTE in a NEED_COPY slot; unshare first");
  (void)allow_shared;
  PageTablePage& ptp = alloc_->Get(entry.ptp);
  const uint32_t index = PteIndexInPtp(va);
  assert(ptp.hw(index).valid() == hw_pte.valid());
  if (hw_pte.valid() && hw_pte.frame() != ptp.hw(index).frame()) {
    TakeFrame(hw_pte, entry.ptp, index, PageAlignDown(va));
    DropFrame(ptp.hw(index), entry.ptp, index);
  }
  ptp.UpdateFlags(index, hw_pte, sw_pte);
}

void PageTable::ClearRange(VirtAddr start, VirtAddr end) {
  assert(IsPageAligned(start) && IsPageAligned(end));
  for (uint64_t va = start; va < end; va += kPageSize) {
    ClearPte(static_cast<VirtAddr>(va));
  }
}

void PageTable::WriteProtectRange(VirtAddr start, VirtAddr end) {
  assert(IsPageAligned(start) && IsPageAligned(end));
  for (uint64_t va64 = start; va64 < end; va64 += kPageSize) {
    const auto va = static_cast<VirtAddr>(va64);
    const auto ref = FindPte(va);
    if (!ref || !ref->ptp->hw(ref->index).valid()) {
      continue;
    }
    assert(!l1_[PtpSlotIndex(va)].need_copy);
    HwPte hw = ref->ptp->hw(ref->index);
    hw.WriteProtect();
    ref->ptp->UpdateFlags(ref->index, hw, ref->ptp->sw(ref->index));
  }
}

void PageTable::PromoteRunInPlace(VirtAddr block_base) {
  SAT_CHECK((block_base & (kLargePageSize - 1)) == 0 &&
            "promotion target must be 64 KB aligned");
  const L1Entry& entry = l1_[PtpSlotIndex(block_base)];
  SAT_CHECK(entry.present());
  PageTablePage& ptp = alloc_->Get(entry.ptp);
  const uint32_t index0 = PteIndexInPtp(block_base);
  const HwPte first = ptp.hw(index0);
  SAT_CHECK(first.valid() && !first.large());
  const FrameNumber base = first.frame();
  SAT_CHECK(base % kPtesPerLargePage == 0 &&
            "promotion base frame must be 16-aligned");
  for (uint32_t i = 0; i < kPtesPerLargePage; ++i) {
    const HwPte hw = ptp.hw(index0 + i);
    SAT_CHECK(hw.valid() && !hw.large() && hw.frame() == base + i &&
              hw.perm() == first.perm() && hw.global() == first.global() &&
              hw.executable() == first.executable() &&
              "promotion run must be uniform and contiguous");
    // Same frame (MappedFrameOf of the replica is base + i), same
    // permissions: no reference or rmap changes, just the descriptor.
    ptp.UpdateFlags(index0 + i,
                    HwPte::MakePage(base, first.perm(), first.global(),
                                    first.executable(), /*large=*/true),
                    ptp.sw(index0 + i));
  }
}

uint32_t PageTable::SplitLargeRun(VirtAddr block_base) {
  SAT_CHECK((block_base & (kLargePageSize - 1)) == 0 &&
            "split target must be 64 KB aligned");
  const L1Entry& entry = l1_[PtpSlotIndex(block_base)];
  if (!entry.present()) {
    return 0;
  }
  SAT_CHECK(!entry.need_copy && "splitting in a NEED_COPY slot; unshare first");
  PageTablePage& ptp = alloc_->Get(entry.ptp);
  const uint32_t index0 = PteIndexInPtp(block_base);
  uint32_t split = 0;
  for (uint32_t i = 0; i < kPtesPerLargePage; ++i) {
    const HwPte hw = ptp.hw(index0 + i);
    if (!hw.valid() || !hw.large()) {
      continue;
    }
    // The replica at offset i maps frame() + i; the small replacement
    // names that frame directly, so again no reference churn.
    ptp.UpdateFlags(index0 + i,
                    HwPte::MakePage(MappedFrameOf(hw, index0 + i), hw.perm(),
                                    hw.global(), hw.executable(),
                                    /*large=*/false),
                    ptp.sw(index0 + i));
    split++;
  }
  return split;
}

void PageTable::InstallSection(VirtAddr va, FrameNumber base, bool global,
                               bool executable, DomainId domain) {
  SAT_CHECK(IsUserAddress(va) && (va & (kSectionSize - 1)) == 0 &&
            "section target must be 1 MB aligned");
  SAT_CHECK(base % kPtesPerSection == 0 &&
            "section base frame must be 256-aligned");
  L1Entry& entry = l1_[PtpSlotIndex(va)];
  SAT_CHECK(!entry.need_copy &&
            "installing a section over a NEED_COPY slot; unshare first");
  SectionDesc& half = entry.section[SectionHalfIndex(va)];
  SAT_CHECK(!half.present() && "section half already mapped");
  if (!entry.present()) {
    entry.domain = domain;
  }
  half.base = base;
  half.global = global;
  half.executable = executable;
}

void PageTable::ClearSection(VirtAddr va) {
  l1_[PtpSlotIndex(va)].section[SectionHalfIndex(va)].Clear();
}

void PageTable::CopySectionsInto(PageTable& child, uint32_t slot) const {
  const L1Entry& entry = l1_[slot];
  if (!entry.any_section()) {
    return;
  }
  L1Entry& child_entry = child.l1_[slot];
  child_entry.section[0] = entry.section[0];
  child_entry.section[1] = entry.section[1];
  if (!child_entry.present()) {
    child_entry.domain = entry.domain;
  }
}

uint32_t PageTable::CountPresentInRange(VirtAddr start, VirtAddr end) const {
  uint32_t count = 0;
  for (uint64_t va = start; va < end; va += kPageSize) {
    const auto ref = FindPte(static_cast<VirtAddr>(va));
    if (ref && ref->ptp->hw(ref->index).valid()) {
      count++;
    }
  }
  return count;
}

uint32_t PageTable::ShareSlotInto(PageTable& child, uint32_t slot,
                                  bool skip_write_protect_pass) {
  L1Entry& entry = l1_[slot];
  SAT_CHECK(entry.present() && "cannot share an empty slot");
  SAT_CHECK(!child.l1_[slot].present() && "child slot already populated");

  PageTablePage& ptp = alloc_->Get(entry.ptp);
  uint32_t protected_count = 0;
  if (!entry.need_copy) {
    // Age the referenced bits at first share: "referenced" thereafter
    // means "accessed since this PTP became shared", which is what the
    // copy-referenced-only unshare ablation (Section 3.1.3) keys on.
    for (uint32_t i = 0; i < kPtesPerPtp; ++i) {
      if (ptp.hw(i).valid() && ptp.sw(i).young()) {
        LinuxPte aged = ptp.sw(i);
        aged.set_young(false);
        ptp.UpdateFlags(i, ptp.hw(i), aged);
      }
    }
    if (!skip_write_protect_pass) {
      // First share of this PTP: write-protect every writable PTE so any
      // store through it faults, then mark it COW here.
      for (uint32_t i = 0; i < kPtesPerPtp; ++i) {
        const HwPte& hw = ptp.hw(i);
        if (hw.valid() && hw.perm() == PtePerm::kReadWrite) {
          HwPte updated = hw;
          updated.WriteProtect();
          ptp.UpdateFlags(i, updated, ptp.sw(i));
          protected_count++;
        }
      }
      counters_->ptes_write_protected += protected_count;
    }
    entry.need_copy = true;
  }
  alloc_->AddSharer(entry.ptp);
  child.l1_[slot] = L1Entry{entry.ptp, entry.domain, /*need_copy=*/true};
  counters_->ptps_shared++;
  Tracer::Emit(tracer_, TraceEventType::kShareSlot, 0, slot, protected_count);
  return protected_count;
}

uint32_t PageTable::UnshareSlot(uint32_t slot, bool copy_referenced_only,
                                const std::function<void()>& flush_tlb,
                                bool write_protect_on_copy) {
  std::optional<uint32_t> copied =
      TryUnshareSlot(slot, copy_referenced_only, flush_tlb,
                     write_protect_on_copy);
  SAT_CHECK(copied.has_value() &&
            "out of physical memory for page tables while unsharing");
  return *copied;
}

std::optional<uint32_t> PageTable::TryUnshareSlot(
    uint32_t slot, bool copy_referenced_only,
    const std::function<void()>& flush_tlb, bool write_protect_on_copy) {
  L1Entry& entry = l1_[slot];
  SAT_CHECK(entry.present());
  if (!entry.need_copy) {
    return 0;  // already private
  }
  if (alloc_->SharerCount(entry.ptp) == 1) {
    // Sole remaining user: the PTP is ours again; just drop the COW mark.
    counters_->ptps_unshared++;
    TraceSpan span(tracer_, TraceEventType::kUnshareSlot);
    span.set_args(slot, 0);
    entry.need_copy = false;
    return 0;
  }

  // Allocate the private PTP before detaching anything, so an allocation
  // failure is invisible: both sharers keep their (still valid) view of
  // the shared slot and the caller can reclaim and retry.
  const std::optional<PtpId> fresh_opt = alloc_->TryAlloc();
  if (!fresh_opt.has_value()) {
    return std::nullopt;
  }
  const PtpId fresh_id = *fresh_opt;
  counters_->ptps_unshared++;
  // The span brackets the flush + copy work; `b` carries the copy count.
  TraceSpan span(tracer_, TraceEventType::kUnshareSlot);
  span.set_args(slot, 0);

  // Figure 6, shared path: detach, flush our TLB entries, copy into the
  // fresh private PTP, release the shared one. Section halves are value
  // descriptors over permanent frames — they survive the unshare as-is.
  const PtpId shared_id = entry.ptp;
  const DomainId domain = entry.domain;
  const SectionDesc section0 = entry.section[0];
  const SectionDesc section1 = entry.section[1];
  entry.Clear();
  if (flush_tlb) {
    flush_tlb();
  }

  PageTablePage& fresh = alloc_->Get(fresh_id);
  PageTablePage& shared = alloc_->Get(shared_id);

  // Is this descriptor's frame number confirmed by a trusted source? Wrong
  // bits must not be copied into the private PTP (TakeFrame on them would
  // corrupt someone else's reference counts).
  const auto frame_trusted = [&](const HwPte& hw, uint32_t i) {
    const FrameNumber f = MappedFrameOf(hw, i);
    if (f >= phys_->total_frames()) {
      return false;
    }
    const FrameKind kind = phys_->frame(f).kind;
    if (kind == FrameKind::kZero || kind == FrameKind::kKernel) {
      return true;  // not rmap-tracked; nothing further to confirm
    }
    if (kind != FrameKind::kAnon && kind != FrameKind::kFileCache) {
      return false;
    }
    if (rmap_ == nullptr) {
      return true;
    }
    for (const RmapEntry& entry : rmap_->MappingsOf(f)) {
      if (entry.ptp == shared_id && entry.index == i) {
        return true;
      }
    }
    return false;
  };

  uint32_t copied = 0;
  for (uint32_t i = 0; i < kPtesPerPtp; ++i) {
    const HwPte& hw = shared.hw(i);
    if (!hw.valid()) {
      // Swap entries are copied unconditionally — even under the
      // copy-referenced-only ablation — because a dropped swap entry
      // cannot be repopulated by a soft fault: it is the only name the
      // compressed page has in this address space.
      if (shared.sw(i).is_swap()) {
        SAT_CHECK(zram_ != nullptr);
        zram_->Ref(shared.sw(i).swap_slot());
        fresh.Set(i, HwPte{}, shared.sw(i));
        copied++;
      }
      continue;
    }
    if (copy_referenced_only && !shared.sw(i).young()) {
      continue;  // ablation: let a soft fault repopulate it on demand
    }
    HwPte copy = hw;
    if (!frame_trusted(hw, i)) {
      // Rotted descriptor: rebuild the private copy from the rmap's record
      // of this site (conservatively read-only and small — a permission
      // fault restores precise attributes), or as a zero-page mapping when
      // nothing was ever installed through it. A dirty page with no rmap
      // record has no surviving copy; leave the private slot empty rather
      // than copy garbage — the shared PTP's scrub/oops machinery owns
      // that damage.
      const auto truth =
          rmap_ != nullptr
              ? rmap_->FindAtSite(shared_id, i)
              : std::optional<std::pair<FrameNumber, VirtAddr>>{};
      if (truth.has_value()) {
        copy = HwPte::MakePage(truth->first, PtePerm::kReadOnly,
                               /*global=*/false, /*executable=*/true);
      } else if (!shared.sw(i).dirty()) {
        copy = HwPte::MakePage(phys_->zero_frame(), PtePerm::kReadOnly,
                               /*global=*/false, /*executable=*/true);
      } else {
        continue;
      }
    }
    if (write_protect_on_copy) {
      copy.WriteProtect();
    }
    TakeFrame(copy, fresh_id, i,
              PtpSlotBase(slot) + i * kPageSize);
    fresh.Set(i, copy, shared.sw(i));
    copied++;
  }
  counters_->ptes_copied += copied;

  const bool destroyed = alloc_->DropSharer(shared_id);
  SAT_CHECK(!destroyed && "sharer count said >1");
  (void)destroyed;

  entry = L1Entry{fresh_id, domain, /*need_copy=*/false};
  entry.section[0] = section0;
  entry.section[1] = section1;
  span.set_args(slot, copied);
  return copied;
}

void PageTable::ReleaseSlot(uint32_t slot) {
  L1Entry& entry = l1_[slot];
  if (!entry.present()) {
    return;
  }
  PageTablePage& ptp = alloc_->Get(entry.ptp);
  if (alloc_->SharerCount(entry.ptp) == 1) {
    // Last sharer: release every mapped frame and swap slot, then the PTP
    // itself. Resync the present count first and release the swap slot even
    // when the hardware half claims to be valid — flipped validity bits
    // must not trip Clear's bookkeeping or leak a slot reference.
    ptp.RecountPresentForScrub();
    for (uint32_t i = 0; i < kPtesPerPtp; ++i) {
      const LinuxPte old_sw = ptp.sw(i);
      if (ptp.hw(i).valid()) {
        DropFrame(ptp.hw(i), entry.ptp, i);
      }
      if (ptp.hw(i).valid() || old_sw.raw() != 0) {
        ptp.Clear(i);
      }
      DropSwap(old_sw);
    }
  }
  alloc_->DropSharer(entry.ptp);
  entry.Clear();
}

void PageTable::ReleaseAll() {
  for (uint32_t slot = 0; slot < kUserPtpSlots; ++slot) {
    ReleaseSlot(slot);
  }
}

uint32_t PageTable::PresentSlotCount() const {
  uint32_t count = 0;
  for (const L1Entry& entry : l1_) {
    if (entry.present()) {
      count++;
    }
  }
  return count;
}

uint32_t PageTable::SharedSlotCount() const {
  uint32_t count = 0;
  for (const L1Entry& entry : l1_) {
    if (entry.present() && entry.need_copy) {
      count++;
    }
  }
  return count;
}

uint64_t PageTable::PresentPteCount() const {
  uint64_t count = 0;
  for (const L1Entry& entry : l1_) {
    if (entry.present()) {
      count += alloc_->Get(entry.ptp).present_count();
    }
  }
  return count;
}

}  // namespace sat
