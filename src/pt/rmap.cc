#include "src/pt/rmap.h"

#include <algorithm>
#include <cassert>

namespace sat {

void ReverseMap::Add(FrameNumber frame, PtpId ptp, uint32_t index,
                     VirtAddr va) {
  map_[frame].push_back(
      RmapEntry{ptp, static_cast<uint16_t>(index), va});
  total_entries_++;
}

bool ReverseMap::Remove(FrameNumber frame, PtpId ptp, uint32_t index) {
  const auto it = map_.find(frame);
  if (it == map_.end()) {
    return false;
  }
  auto& entries = it->second;
  const auto match = std::find_if(
      entries.begin(), entries.end(), [&](const RmapEntry& entry) {
        return entry.ptp == ptp && entry.index == index;
      });
  if (match == entries.end()) {
    return false;
  }
  entries.erase(match);
  total_entries_--;
  if (entries.empty()) {
    map_.erase(it);
  }
  return true;
}

uint32_t ReverseMap::MapCount(FrameNumber frame) const {
  const auto it = map_.find(frame);
  return it == map_.end() ? 0 : static_cast<uint32_t>(it->second.size());
}

void ReverseMap::ForEach(
    FrameNumber frame, const std::function<void(const RmapEntry&)>& fn) const {
  const auto it = map_.find(frame);
  if (it == map_.end()) {
    return;
  }
  for (const RmapEntry& entry : it->second) {
    fn(entry);
  }
}

std::vector<RmapEntry> ReverseMap::MappingsOf(FrameNumber frame) const {
  const auto it = map_.find(frame);
  return it == map_.end() ? std::vector<RmapEntry>{} : it->second;
}

std::optional<std::pair<FrameNumber, VirtAddr>> ReverseMap::FindAtSite(
    PtpId ptp, uint32_t index) const {
  for (const auto& [frame, entries] : map_) {
    for (const RmapEntry& entry : entries) {
      if (entry.ptp == ptp && entry.index == index) {
        return std::make_pair(frame, entry.va);
      }
    }
  }
  return std::nullopt;
}

}  // namespace sat
