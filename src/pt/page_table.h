// The per-address-space page table: a first-level directory of 2 MB slots,
// each naming a page-table page (PTP), plus the paper's PTP sharing and
// unsharing operations (Sections 3.1.1-3.1.2, Figure 6).
//
// Reference-counting discipline
// -----------------------------
// A valid PTE holds exactly one reference on the data frame it maps, owned
// by the *PTP* (not by the process) — this is what makes a PTE installed in
// a shared PTP correctly visible to, and accounted for, all sharers at
// once. SetPte takes the reference (and releases the previously mapped
// frame if the entry was valid); ClearPte releases it; unsharing copies
// entries into the new private PTP and thereby re-references the frames.
// Destroying a PTP (last sharer gone) releases every remaining reference.
//
// Swap entries follow the same discipline against the zram store: a swap
// PTE (LinuxPte::is_swap, hardware entry invalid) holds exactly one swap
// slot reference, owned by the PTP. Installing one refs the slot,
// overwriting or clearing one unrefs it, unsharing copies it into the
// private PTP with a fresh reference, and PTP teardown releases the rest.
// Attach the store with set_zram() before any swap entry can appear.

#ifndef SRC_PT_PAGE_TABLE_H_
#define SRC_PT_PAGE_TABLE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <optional>

#include "src/arch/domain.h"
#include "src/arch/pte.h"
#include "src/arch/types.h"
#include "src/mem/phys_memory.h"
#include "src/pt/ptp.h"
#include "src/pt/rmap.h"
#include "src/stats/counters.h"

namespace sat {

class Tracer;
class ZramStore;

// Location of one PTE: which PTP and which index within it.
struct PteRef {
  PageTablePage* ptp = nullptr;
  uint32_t index = 0;
};

// The frame a PTE at `index` actually maps. ARM large-page descriptors
// are 16 identical replicas all naming the *base* frame of the 64 KB
// block; the replica at offset i maps base + i. Shared with the invariant
// auditor, which recounts frame references from raw PTEs.
inline FrameNumber MappedFrameOf(const HwPte& pte, uint32_t index) {
  if (!pte.large()) {
    return pte.frame();
  }
  return pte.frame() + (index & (kPtesPerLargePage - 1));
}

class PageTable {
 public:
  // `rmap` is the kernel-wide reverse map; pass nullptr in page-table-only
  // tests to skip rmap maintenance (reclaim then cannot run).
  PageTable(PtpAllocator* alloc, PhysicalMemory* phys, KernelCounters* counters,
            ReverseMap* rmap = nullptr)
      : alloc_(alloc), phys_(phys), counters_(counters), rmap_(rmap) {}

  ~PageTable();

  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  // -------------------------------------------------------------------------
  // First level.
  // -------------------------------------------------------------------------

  const L1Entry& l1(uint32_t slot) const { return l1_[slot]; }

  // True when `va`'s slot points at a PTP marked NEED_COPY (shared, COW).
  bool SlotNeedsCopy(VirtAddr va) const {
    return l1_[PtpSlotIndex(va)].need_copy;
  }

  // Returns the PTP of `va`'s slot, allocating a fresh (private) one if the
  // slot is empty. Must not be called on a NEED_COPY slot for a mutating
  // purpose — unshare first; aborts on that misuse.
  PageTablePage& EnsurePtp(VirtAddr va, DomainId domain);

  // Fallible variant: returns nullptr if an empty slot needs a PTP and no
  // physical frame is available. The slot is left untouched on failure.
  PageTablePage* TryEnsurePtp(VirtAddr va, DomainId domain);

  // -------------------------------------------------------------------------
  // Second level.
  // -------------------------------------------------------------------------

  // Finds the PTE mapping `va`; nullopt if the slot has no PTP. The PTE
  // itself may still be invalid.
  std::optional<PteRef> FindPte(VirtAddr va) const;

  // Installs a PTE, taking a reference on hw_pte's frame and releasing the
  // previously mapped frame if any. The slot must already have a PTP (use
  // EnsurePtp) and must not be NEED_COPY — except for the paper's read
  // fault path, which deliberately populates *new* entries in a shared PTP
  // so they become visible to every sharer (pass allow_shared=true; the
  // entry must then be COW-safe, i.e. not hardware-writable).
  void SetPte(VirtAddr va, HwPte hw_pte, LinuxPte sw_pte, bool allow_shared = false);

  // Invalidates the PTE mapping `va` (no-op when absent or invalid),
  // releasing the mapped frame. The slot must not be NEED_COPY.
  void ClearPte(VirtAddr va);

  // Permission/flag update that keeps the entry valid (COW resolution,
  // referenced/dirty bookkeeping). The slot must not be NEED_COPY unless
  // allow_shared (used only for referenced/dirty bit upkeep, which is
  // harmlessly shared between sharers).
  void UpdatePte(VirtAddr va, HwPte hw_pte, LinuxPte sw_pte,
                 bool allow_shared = false);

  // Clears every valid PTE in [start, end). Caller must have unshared every
  // overlapped slot first; asserts on NEED_COPY slots.
  void ClearRange(VirtAddr start, VirtAddr end);

  // Write-protects every present PTE in [start, end) (mprotect support).
  void WriteProtectRange(VirtAddr start, VirtAddr end);

  // -------------------------------------------------------------------------
  // Large-page representation changes (the translation-reach engine).
  //
  // Both operations rewrite descriptors in place without touching frame
  // reference counts or the rmap: a large PTE's replica at offset i and a
  // small PTE at the same index map the same frame (MappedFrameOf), so
  // promotion and demotion are pure representation changes.
  // -------------------------------------------------------------------------

  // Rewrites the 16 PTEs of the 64 KB block at `block_base` (all valid,
  // small, uniform attributes, mapping frames base..base+15 in order;
  // asserts otherwise) as one large PTE — 16 replicas naming `base`.
  // Legal even in a shared (NEED_COPY) PTP: the translation every sharer
  // sees is unchanged, so one promotion serves all of them.
  void PromoteRunInPlace(VirtAddr block_base);

  // Rewrites a large PTE's replicas in the 64 KB block at `block_base`
  // back to 4 KB PTEs mapping the same frames. The slot must be private
  // (unshare first). Returns the number of replicas rewritten (0 when the
  // block holds no large replicas).
  uint32_t SplitLargeRun(VirtAddr block_base);

  // -------------------------------------------------------------------------
  // 1 MB section mappings (first-level, no second level).
  //
  // Sections map permanent kernel-owned frames (the eager zygote-code
  // mapping), so they carry no frame references: install/clear/copy are
  // pure descriptor edits. A section half takes precedence over any PTE
  // for the same range; the kernel never installs both.
  // -------------------------------------------------------------------------

  // The section descriptor covering `va`, or nullptr.
  const SectionDesc* SectionAt(VirtAddr va) const {
    const L1Entry& entry = l1_[PtpSlotIndex(va)];
    const SectionDesc& half = entry.section[SectionHalfIndex(va)];
    return half.present() ? &half : nullptr;
  }

  // Installs a 1 MB section at `va` (section-aligned) over `base` (first
  // of 256 contiguous frames). The half must not already be mapped.
  void InstallSection(VirtAddr va, FrameNumber base, bool global,
                      bool executable, DomainId domain);

  // Drops the section descriptor covering `va` (no-op when absent). This
  // mm's view only; the permanent frames are untouched.
  void ClearSection(VirtAddr va);

  // Copies `slot`'s section descriptors into `child` (fork). Pure value
  // copy; both parents and children translate through the same frames.
  void CopySectionsInto(PageTable& child, uint32_t slot) const;

  // Number of present PTEs in [start, end) (diagnostic / fork costing).
  uint32_t CountPresentInRange(VirtAddr start, VirtAddr end) const;

  // -------------------------------------------------------------------------
  // Sharing (the paper's mechanism).
  // -------------------------------------------------------------------------

  // Shares this table's `slot` into `child` at fork time (Section 3.1.1).
  // If the PTP is not yet marked NEED_COPY, performs the write-protect pass
  // over its writable PTEs and marks it here first. Returns the number of
  // PTEs write-protected (0 on the already-shared fast path).
  //
  // `skip_write_protect_pass` models the hardware-support ablation of
  // Section 3.1.3: an x86-style first-level write-protect bit would make
  // the per-PTE pass unnecessary (the walker then treats NEED_COPY itself
  // as denying writes; see src/hw).
  uint32_t ShareSlotInto(PageTable& child, uint32_t slot,
                         bool skip_write_protect_pass = false);

  // Unshares `slot` (Figure 6). If this table is the sole sharer, just
  // clears NEED_COPY. Otherwise clears the L1 entry, invokes `flush_tlb`
  // (the "flush all TLB entries occupied by the current process" step),
  // allocates a private PTP, copies the valid PTEs (only the referenced
  // ones when `copy_referenced_only`, the Section 3.1.3 ablation), and
  // drops this table's sharer reference. Returns the number of PTEs copied.
  //
  // `write_protect_on_copy` supports the x86-style L1-write-protect
  // ablation: when the share-time per-PTE protection pass was skipped
  // (hardware enforces COW at the first level), writable entries must be
  // write-protected as they are copied out so per-page COW still works.
  uint32_t UnshareSlot(uint32_t slot, bool copy_referenced_only,
                       const std::function<void()>& flush_tlb,
                       bool write_protect_on_copy = false);

  // Fallible variant: returns nullopt if the private copy's PTP cannot be
  // allocated. The fresh PTP is allocated *before* the slot is detached,
  // so failure leaves the slot (and both sharers' view of it) untouched —
  // callers can reclaim and retry.
  std::optional<uint32_t> TryUnshareSlot(uint32_t slot,
                                         bool copy_referenced_only,
                                         const std::function<void()>& flush_tlb,
                                         bool write_protect_on_copy = false);

  // Releases `slot` entirely (process exit / full teardown): drops the
  // sharer reference, destroying the PTP and releasing its mapped frames
  // if this was the last sharer.
  void ReleaseSlot(uint32_t slot);

  // Releases every slot (exit path).
  void ReleaseAll();

  // -------------------------------------------------------------------------
  // Statistics.
  // -------------------------------------------------------------------------

  // Number of slots with a PTP.
  uint32_t PresentSlotCount() const;
  // Number of slots whose PTP is marked NEED_COPY here.
  uint32_t SharedSlotCount() const;
  // Number of valid PTEs across all present slots — the space's resident
  // set, counting pages in shared PTPs for every sharer (the OOM killer's
  // RSS metric).
  uint64_t PresentPteCount() const;

  PtpAllocator& allocator() { return *alloc_; }

  // Share/unshare operations report trace events when a tracer is set.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // Swap-slot refcounting target. Required before swap PTEs are installed;
  // tables that never see swap entries can leave it unset.
  void set_zram(ZramStore* zram) { zram_ = zram; }

 private:
  // Reference + rmap bookkeeping for the frame a PTE maps. Every valid
  // PTE holds one frame reference and (for reclaimable frames) one rmap
  // entry; Take/Drop keep the two in lockstep.
  void TakeFrame(const HwPte& pte, PtpId ptp, uint32_t index, VirtAddr va);
  void DropFrame(const HwPte& pte, PtpId ptp, uint32_t index);
  // Releases the swap-slot reference a swap software entry holds (no-op
  // for non-swap entries).
  void DropSwap(const LinuxPte& sw_pte);

  PtpAllocator* alloc_;
  PhysicalMemory* phys_;
  KernelCounters* counters_;
  ReverseMap* rmap_;
  Tracer* tracer_ = nullptr;
  ZramStore* zram_ = nullptr;
  std::array<L1Entry, kUserPtpSlots> l1_{};
};

}  // namespace sat

#endif  // SRC_PT_PAGE_TABLE_H_
