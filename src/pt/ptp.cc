#include "src/pt/ptp.h"

#include <cassert>

#include "src/arch/check.h"

namespace sat {

void PageTablePage::Set(uint32_t index, HwPte hw_pte, LinuxPte sw_pte) {
  assert(index < kPtesPerPtp);
  if (!hw_[index].valid() && hw_pte.valid()) {
    present_count_++;
  } else if (hw_[index].valid() && !hw_pte.valid()) {
    assert(present_count_ > 0);
    present_count_--;
  }
  hw_[index] = hw_pte;
  sw_[index] = sw_pte;
  NotifyHwWrite(index);
}

void PageTablePage::Clear(uint32_t index) {
  assert(index < kPtesPerPtp);
  if (hw_[index].valid()) {
    assert(present_count_ > 0);
    present_count_--;
  }
  hw_[index].Clear();
  sw_[index].Clear();
  NotifyHwWrite(index);
}

void PageTablePage::UpdateFlags(uint32_t index, HwPte hw_pte, LinuxPte sw_pte) {
  assert(index < kPtesPerPtp);
  assert(hw_[index].valid() == hw_pte.valid() &&
         "UpdateFlags cannot change entry validity");
  hw_[index] = hw_pte;
  sw_[index] = sw_pte;
  NotifyHwWrite(index);
}

void PageTablePage::CorruptHwForChaos(uint32_t index, uint32_t xor_mask) {
  SAT_CHECK(index < kPtesPerPtp);
  SAT_CHECK(xor_mask != 0 && "corruption must change something");
  hw_[index] = HwPte::FromRaw(hw_[index].raw() ^ xor_mask);
}

void PageTablePage::RepairHw(uint32_t index, HwPte hw_pte) {
  SAT_CHECK(index < kPtesPerPtp);
  hw_[index] = hw_pte;
  RecountPresentForScrub();
  NotifyHwWrite(index);
}

uint32_t PageTablePage::RecountPresentForScrub() {
  uint32_t count = 0;
  for (uint32_t i = 0; i < kPtesPerPtp; ++i) {
    if (hw_[i].valid()) {
      count++;
    }
  }
  present_count_ = count;
  return count;
}

std::optional<PtpId> PtpAllocator::TryAlloc() {
  const std::optional<FrameNumber> frame =
      phys_->TryAllocFrame(FrameKind::kPageTable);
  if (!frame.has_value()) {
    return std::nullopt;
  }
  phys_->frame(*frame).map_count = 1;
  PtpId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
    slab_[static_cast<size_t>(id)] =
        std::make_unique<PageTablePage>(id, *frame);
  } else {
    id = static_cast<PtpId>(slab_.size());
    slab_.push_back(std::make_unique<PageTablePage>(id, *frame));
  }
  counters_->ptps_allocated++;
  live_count_++;
  slab_[static_cast<size_t>(id)]->set_write_observer(write_observer_);
  return id;
}

void PtpAllocator::set_write_observer(PtpWriteObserver* observer) {
  write_observer_ = observer;
  for (const auto& ptp : slab_) {
    if (ptp != nullptr) {
      ptp->set_write_observer(observer);
    }
  }
}

PtpId PtpAllocator::Alloc() {
  std::optional<PtpId> id = TryAlloc();
  SAT_CHECK(id.has_value() && "out of physical memory for page tables");
  return *id;
}

PageTablePage& PtpAllocator::Get(PtpId id) {
  assert(id >= 0 && static_cast<size_t>(id) < slab_.size());
  assert(slab_[static_cast<size_t>(id)] != nullptr && "use of freed PTP");
  return *slab_[static_cast<size_t>(id)];
}

const PageTablePage& PtpAllocator::Get(PtpId id) const {
  assert(id >= 0 && static_cast<size_t>(id) < slab_.size());
  assert(slab_[static_cast<size_t>(id)] != nullptr && "use of freed PTP");
  return *slab_[static_cast<size_t>(id)];
}

const PageTablePage* PtpAllocator::GetIfLive(PtpId id) const {
  if (id < 0 || static_cast<size_t>(id) >= slab_.size()) {
    return nullptr;
  }
  return slab_[static_cast<size_t>(id)].get();
}

std::optional<PtpId> PtpAllocator::AnyLiveId(uint64_t rand) const {
  if (slab_.empty()) {
    return std::nullopt;
  }
  const size_t n = slab_.size();
  const size_t start = static_cast<size_t>(rand % n);
  for (size_t k = 0; k < n; ++k) {
    const size_t i = (start + k) % n;
    if (slab_[i] != nullptr) {
      return static_cast<PtpId>(i);
    }
  }
  return std::nullopt;
}

uint32_t PtpAllocator::SharerCount(PtpId id) const {
  return phys_->frame(Get(id).frame()).map_count;
}

void PtpAllocator::AddSharer(PtpId id) {
  phys_->frame(Get(id).frame()).map_count++;
}

bool PtpAllocator::DropSharer(PtpId id) {
  PageTablePage& ptp = Get(id);
  PageFrame& frame = phys_->frame(ptp.frame());
  assert(frame.map_count > 0);
  if (--frame.map_count > 0) {
    return false;
  }
  if (write_observer_ != nullptr) {
    write_observer_->OnPtpDestroyed(id);
  }
  phys_->UnrefFrame(ptp.frame());
  slab_[static_cast<size_t>(id)].reset();
  free_ids_.push_back(id);
  assert(live_count_ > 0);
  live_count_--;
  return true;
}

}  // namespace sat
