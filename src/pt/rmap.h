// Reverse mapping: frame -> the page-table entries mapping it (the
// analogue of Linux's rmap, which page reclaim uses to unmap a victim
// page from every address space).
//
// The unit of an rmap entry is a *PTE in a PTP*, not a process. That is
// the point: when a PTP is shared by N processes, the frame has ONE rmap
// entry for it, and one PTE clear unmaps the page from all N sharers at
// once. Under the stock kernel the same page costs N entries and N
// clears. bench_reclaim measures exactly this (the introduction's
// "overhead grows linearly with the number of processes" claim, from the
// reclaim side).

#ifndef SRC_PT_RMAP_H_
#define SRC_PT_RMAP_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/arch/pte.h"
#include "src/arch/types.h"

namespace sat {

struct RmapEntry {
  PtpId ptp = kNoPtp;
  uint16_t index = 0;   // PTE index within the PTP
  VirtAddr va = 0;      // identical across sharers (the zygote model)

  bool operator==(const RmapEntry&) const = default;
};

class ReverseMap {
 public:
  ReverseMap() = default;

  ReverseMap(const ReverseMap&) = delete;
  ReverseMap& operator=(const ReverseMap&) = delete;

  void Add(FrameNumber frame, PtpId ptp, uint32_t index, VirtAddr va);

  // Removes one (ptp, index) mapping of `frame`. Returns whether an entry
  // was actually there — false is the O(1) tell that the PTE's frame bits
  // and the rmap disagree (corruption), since every legal teardown removes
  // an entry its install added.
  bool Remove(FrameNumber frame, PtpId ptp, uint32_t index);

  // Number of PTEs mapping `frame` (NOT the number of processes — a
  // shared PTP contributes one).
  uint32_t MapCount(FrameNumber frame) const;

  // Visits every mapping of `frame`. The callback must not mutate this
  // frame's rmap; reclaim collects first, then clears.
  void ForEach(FrameNumber frame,
               const std::function<void(const RmapEntry&)>& fn) const;

  std::vector<RmapEntry> MappingsOf(FrameNumber frame) const;

  // Which frame does the rmap believe is mapped at (ptp, index)? Linear
  // scan over all entries — only used by scrub repair, where the hardware
  // PTE's frame bits are suspect and the rmap is the surviving copy of
  // the truth. Returns nullopt when no entry names the site.
  std::optional<std::pair<FrameNumber, VirtAddr>> FindAtSite(
      PtpId ptp, uint32_t index) const;

  uint64_t total_entries() const { return total_entries_; }

 private:
  std::unordered_map<FrameNumber, std::vector<RmapEntry>> map_;
  uint64_t total_entries_ = 0;
};

}  // namespace sat

#endif  // SRC_PT_RMAP_H_
