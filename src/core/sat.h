// The public entry point of libsat: one header, one config struct, one
// System class.
//
//   sat::SystemConfig config = sat::ConfigByName("shared-ptp-tlb-2mb");
//   sat::System system(config);
//   sat::AppRunner runner(&system.android());
//   auto stats = runner.Run(footprint);
//
// A System is a fully booted simulated Android machine (zygote preloaded,
// system_server running) under one of the kernel configurations the paper
// evaluates. Everything below this facade — the VM subsystem, page-table
// sharing, the TLB/cache/core models, the workload generators — is also
// public and usable directly; this header is the curated starting point.

#ifndef SRC_CORE_SAT_H_
#define SRC_CORE_SAT_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/android/app_runner.h"
#include "src/android/binder.h"
#include "src/android/launch.h"
#include "src/android/profiler.h"
#include "src/android/zygote.h"
#include "src/loader/loader.h"
#include "src/proc/kernel.h"
#include "src/proc/scheduler.h"
#include "src/vm/config.h"
#include "src/vm/reclaim.h"
#include "src/vm/smaps.h"
#include "src/workload/analysis.h"
#include "src/workload/app_profile.h"
#include "src/workload/footprint.h"

namespace sat {

struct SystemConfig {
  // The paper's two mechanisms.
  bool share_ptps = false;
  bool share_tlb = false;
  // Map shared-library code at 2 MB boundaries, data in separate PTPs.
  bool two_mb_alignment = false;
  // Hardware ASIDs available (Figure 13's enabled/disabled dimension).
  bool asids_enabled = true;

  // Comparison kernel of Table 4: copy zygote-preloaded code PTEs at fork.
  bool copy_ptes_at_fork = false;

  // Extension: map shared-library code with 64 KB large pages (the
  // Section 2.3.3 complement experiment — PTPs holding large-page
  // entries share exactly like 4 KB ones).
  bool large_pages_for_code = false;

  // Ablation: Linux-3.15-style fault-around window (pages); 0 = off, as
  // on the paper's 3.4-era kernel.
  uint32_t fault_around_pages = 0;

  // Section 3.1.3 ablations.
  bool copy_referenced_only_on_unshare = false;
  bool lazy_unshare_on_new_region = false;
  bool hw_l1_write_protect = false;

  // Extension: simulated core count (the paper's experiments pin to one
  // of the Tegra 3's four cores). With >1 core, TLB maintenance becomes
  // IPI shootdowns over each address space's cpumask.
  uint32_t num_cores = 1;

  // Extension: NUMA nodes the cores and physical frames split into (must
  // divide num_cores). Off-node L2 misses and cross-node IPIs pay the
  // cost model's remote surcharges.
  uint32_t num_nodes = 1;

  // Extension: page-table placement policy on a NUMA machine (src/numa).
  // kLocal leaves PTPs where first-touch put them; kReplicate has the
  // numad daemon maintain per-node replicas of walk-hot PTPs so hardware
  // walks hit local DRAM; kMigrate moves sole-owner PTPs to the dominant
  // accessor's node. Ignored on single-node machines.
  PtPlacement pt_placement = PtPlacement::kLocal;
  // numad daemon cadence and promotion threshold (remote walks a PTP must
  // accumulate between passes before it is promoted/migrated).
  uint32_t numad_wake_interval = 1024;
  uint32_t numad_remote_threshold = 8;

  // Extension: immediate per-PTE shootdown IPIs, or batched per-core
  // deferred-flush queues drained at kernel sync points (the many-core
  // scaling knob bench_smp sweeps).
  ShootdownPolicy shootdown_policy = ShootdownPolicy::kImmediate;

  // Extension: how shared TLB entries are protected from non-members
  // (Section 5.2's design space: ARM domains / MPK / flush-on-switch).
  IsolationModel isolation = IsolationModel::kArmDomains;

  uint64_t phys_bytes = 512ull * 1024 * 1024;
  // Compressed (zram) swap capacity; 0 disables swap. With swap on, the
  // kernel ages anonymous pages, kswapd runs between the low/high
  // watermarks, and direct reclaim swaps before OOM-killing.
  uint64_t swap_bytes = 0;
  // KSM same-page merging: ksmd scans madvise(MERGEABLE) anonymous
  // regions and deduplicates content-identical pages (src/ksm).
  bool ksm = false;
  uint32_t ksm_wake_interval = 1024;
  // Background corruption scrubbing (scrubd): at kswapd/ksmd-style wake
  // points the kernel incrementally re-validates page-table pages against
  // the rmap, repairs what it can, and oops-kills only the sharers of
  // damage it cannot repair. Mainly useful together with fault injection
  // (chaos testing); harmless but pure overhead on a healthy system.
  bool scrub = false;
  uint32_t scrub_wake_interval = 1024;
  // Automatic large-page promotion (huged, src/huge): a khugepaged-style
  // daemon collapses eligible 64 KB runs of 4 KB PTEs into large PTEs
  // (migrating frames into contiguous blocks when needed) at ksmd-style
  // wake points, and the zygote's preloaded code is eagerly mapped with
  // 1 MB L1 sections at boot — the translation-reach engine.
  bool huge = false;
  uint32_t huge_wake_interval = 1024;
  // Let huged unmerge KSM-stable frames when a collapse needs them
  // (trading dedup back for reach).
  bool huge_unmerge_ksm = false;
  uint64_t seed = 42;

  // Kernel event tracing (src/trace): off by default; when enabled the
  // kernel records fork/fault/unshare/shootdown/... events without
  // perturbing any cycle totals. Export via System::tracer().
  TraceConfig trace;

  std::string Name() const;

  ZygoteParams ToZygoteParams() const;
};

// -----------------------------------------------------------------
// The registry of named configurations used throughout the evaluation.
// -----------------------------------------------------------------

// One registry entry: the stable machine-friendly key (usable as a
// --config=<key> flag value and in filenames) plus the configuration.
struct NamedSystemConfig {
  std::string_view key;
  SystemConfig config;
};

// Every named configuration, in the paper's canonical presentation order
// (stock first, the full shared design last, the Table-4 comparison
// kernel after that). Benches, tests, and --config flags all derive
// their config lists from this one table.
const std::vector<NamedSystemConfig>& NamedConfigs();

// Looks up a registry key; dies on an unknown key (call sites pass
// compile-time constants). For user input use TryConfigByName.
SystemConfig ConfigByName(std::string_view key);

// Flag-parsing variant: nullopt on an unknown key.
std::optional<SystemConfig> TryConfigByName(std::string_view key);

// "stock, stock-2mb, ..." — for --help text and error messages.
std::string NamedConfigKeyList();

class System {
 public:
  explicit System(const SystemConfig& config);

  const SystemConfig& config() const { return config_; }
  const std::string& name() const { return name_; }

  ZygoteSystem& android() { return *zygote_system_; }
  Kernel& kernel() { return zygote_system_->kernel(); }
  Core& core() { return kernel().core(); }
  DynamicLoader& loader() { return zygote_system_->loader(); }
  WorkloadFactory& workload() { return zygote_system_->workload(); }
  Tracer& tracer() { return kernel().tracer(); }

 private:
  SystemConfig config_;
  std::string name_;
  std::unique_ptr<ZygoteSystem> zygote_system_;
};

}  // namespace sat

#endif  // SRC_CORE_SAT_H_
