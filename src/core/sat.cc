#include "src/core/sat.h"

#include "src/arch/check.h"

namespace sat {

namespace {

SystemConfig MakeConfig(bool share_ptps, bool share_tlb, bool two_mb,
                        bool copy_ptes) {
  SystemConfig config;
  config.share_ptps = share_ptps;
  config.share_tlb = share_tlb;
  config.two_mb_alignment = two_mb;
  config.copy_ptes_at_fork = copy_ptes;
  return config;
}

SystemConfig MakeHugeConfig() {
  // The translation-reach configuration: the full shared design plus the
  // promotion daemon and eager zygote-code sections.
  SystemConfig config = MakeConfig(true, true, false, false);
  config.huge = true;
  return config;
}

SystemConfig MakeNumaConfig() {
  // The numaPTE-vs-sharing configuration: the full shared design on a
  // two-node four-core machine with numad replicating hot PTPs.
  SystemConfig config = MakeConfig(true, true, false, false);
  config.num_cores = 4;
  config.num_nodes = 2;
  config.pt_placement = PtPlacement::kReplicate;
  return config;
}

}  // namespace

const std::vector<NamedSystemConfig>& NamedConfigs() {
  static const std::vector<NamedSystemConfig>* registry =
      new std::vector<NamedSystemConfig>{
          {"stock", MakeConfig(false, false, false, false)},
          {"stock-2mb", MakeConfig(false, false, true, false)},
          {"shared-ptp", MakeConfig(true, false, false, false)},
          {"shared-ptp-2mb", MakeConfig(true, false, true, false)},
          {"shared-ptp-tlb", MakeConfig(true, true, false, false)},
          {"shared-ptp-tlb-2mb", MakeConfig(true, true, true, false)},
          {"copied-ptes", MakeConfig(false, false, false, true)},
          {"huge", MakeHugeConfig()},
          {"numa", MakeNumaConfig()},
      };
  return *registry;
}

SystemConfig ConfigByName(std::string_view key) {
  const std::optional<SystemConfig> config = TryConfigByName(key);
  SAT_CHECK(config.has_value() && "unknown config key");
  return *config;
}

std::optional<SystemConfig> TryConfigByName(std::string_view key) {
  for (const NamedSystemConfig& entry : NamedConfigs()) {
    if (entry.key == key) {
      return entry.config;
    }
  }
  return std::nullopt;
}

std::string NamedConfigKeyList() {
  std::string list;
  for (const NamedSystemConfig& entry : NamedConfigs()) {
    if (!list.empty()) {
      list += ", ";
    }
    list += entry.key;
  }
  return list;
}

std::string SystemConfig::Name() const {
  std::string name;
  if (copy_ptes_at_fork) {
    name = "Copied PTEs";
  } else if (share_ptps && share_tlb) {
    name = "Shared PTP & TLB";
  } else if (share_ptps) {
    name = "Shared PTP";
  } else {
    name = "Stock Android";
  }
  if (two_mb_alignment) {
    name += " - 2MB";
  }
  if (!asids_enabled) {
    name += " (no ASID)";
  }
  if (copy_referenced_only_on_unshare) {
    name += " [ref-only unshare]";
  }
  if (lazy_unshare_on_new_region) {
    name += " [lazy unshare]";
  }
  if (hw_l1_write_protect) {
    name += " [L1 WP]";
  }
  if (large_pages_for_code) {
    name += " [64KB code]";
  }
  if (fault_around_pages > 0) {
    name += " [FA" + std::to_string(fault_around_pages) + "]";
  }
  if (isolation != IsolationModel::kArmDomains) {
    name += std::string(" [") + IsolationModelName(isolation) + "]";
  }
  if (swap_bytes > 0) {
    name += " [zram " + std::to_string(swap_bytes >> 20) + "MB]";
  }
  if (ksm) {
    name += " [ksm]";
  }
  if (scrub) {
    name += " [scrub]";
  }
  if (huge) {
    name += huge_unmerge_ksm ? " [huge+unmerge]" : " [huge]";
  }
  if (num_cores > 1) {
    name += " [" + std::to_string(num_cores) + " cores";
    if (num_nodes > 1) {
      name += ", " + std::to_string(num_nodes) + " nodes";
      if (pt_placement != PtPlacement::kLocal) {
        name += std::string(", pt-") + PtPlacementName(pt_placement);
      }
    }
    name += "]";
  }
  if (shootdown_policy == ShootdownPolicy::kBatched) {
    name += " [batched shootdown]";
  }
  return name;
}

ZygoteParams SystemConfig::ToZygoteParams() const {
  ZygoteParams params;
  params.kernel.phys_bytes = phys_bytes;
  params.kernel.swap_bytes = swap_bytes;
  params.kernel.vm.share_ptps = share_ptps;
  params.kernel.vm.share_tlb_global = share_tlb;
  params.kernel.vm.copy_zygote_code_ptes_at_fork = copy_ptes_at_fork;
  params.kernel.vm.copy_referenced_only_on_unshare =
      copy_referenced_only_on_unshare;
  params.kernel.vm.lazy_unshare_on_new_region = lazy_unshare_on_new_region;
  params.kernel.vm.hw_l1_write_protect = hw_l1_write_protect;
  params.kernel.vm.fault_around_pages = fault_around_pages;
  params.kernel.core.asids_enabled = asids_enabled;
  params.kernel.core.isolation = isolation;
  params.kernel.num_cores = num_cores;
  params.kernel.num_nodes = num_nodes;
  params.kernel.pt_placement = pt_placement;
  params.kernel.numad_wake_interval = numad_wake_interval;
  params.kernel.numad_remote_threshold = numad_remote_threshold;
  params.kernel.shootdown_policy = shootdown_policy;
  params.kernel.trace = trace;
  params.kernel.ksm_enabled = ksm;
  params.kernel.ksm_wake_interval = ksm_wake_interval;
  params.kernel.scrub = scrub;
  params.kernel.scrub_wake_interval = scrub_wake_interval;
  params.kernel.huge = huge;
  params.kernel.huge_wake_interval = huge_wake_interval;
  params.kernel.huge_unmerge_ksm = huge_unmerge_ksm;
  params.mapping_policy = two_mb_alignment ? MappingPolicy::kTwoMbAligned
                                           : MappingPolicy::kOriginal;
  params.large_code_pages = large_pages_for_code;
  params.seed = seed;
  return params;
}

System::System(const SystemConfig& config)
    : config_(config), name_(config.Name()) {
  zygote_system_ = std::make_unique<ZygoteSystem>(config.ToZygoteParams());
}

}  // namespace sat
