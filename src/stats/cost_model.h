// The cycle-cost model for the simulated machine.
//
// All latencies live here, in one table, so that every experiment and every
// calibration decision is visible in one place. Values are loosely derived
// from the Cortex-A9 / Tegra 3 platform the paper measures on:
//
//   * cache latencies from the Cortex-A9 TRM ballpark (L1 ~1 cycle when
//     pipelined, L2 ~8, DRAM ~80-100 at 1.2 GHz);
//   * the soft-page-fault cost of ~2,700 cycles is the paper's own LMbench
//     lat_pagefault measurement on the Nexus 7 (Section 4.2.1);
//   * fork-path costs are decomposed so that Table 4's three kernel
//     configurations reproduce the paper's ratios (1.4 / 2.9 / 4.6 Mcycles
//     for shared / stock / copy-all) from first principles: per-vma
//     traversal, per-PTE copy, per-PTP allocation, per-PTE write-protect.
//
// The simulation claims *shape* fidelity, not absolute Tegra-3 numbers;
// EXPERIMENTS.md records both.

#ifndef SRC_STATS_COST_MODEL_H_
#define SRC_STATS_COST_MODEL_H_

#include <cstdint>

namespace sat {

using Cycles = uint64_t;

struct CostModel {
  // -------------------------------------------------------------------------
  // Memory hierarchy.
  // -------------------------------------------------------------------------
  Cycles l1_hit = 1;
  Cycles l2_hit = 8;        // on an L1 miss, total so far = l1_hit + l2_hit
  Cycles dram = 90;         // on an L2 miss
  // A main-TLB hit after a micro-TLB miss costs a couple of cycles.
  Cycles main_tlb_hit = 2;
  // Fixed sequencing overhead of a hardware table walk, on top of the
  // cache-modelled PTE fetches themselves.
  Cycles walk_overhead = 10;

  // -------------------------------------------------------------------------
  // Kernel paths.
  // -------------------------------------------------------------------------
  // Trap entry/exit + vma lookup + PTE population for a soft (minor) page
  // fault; the remaining soft-fault cost comes from the kernel instruction
  // footprint the fault handler drags through the I-cache, which the core
  // model simulates explicitly. 2,700 total is the paper's measurement.
  Cycles fault_trap = 1400;
  // Extra cost of a major fault (page not in the page cache): a flash read
  // is ~100 us; we charge a conservative stand-in since the experiments are
  // warm-cache by design.
  Cycles fault_disk = 120000;
  // Handling a domain fault: identify FSR cause, flush matching entries.
  Cycles domain_fault = 400;
  // Context switch base cost (register save/restore, runqueue).
  Cycles context_switch = 900;
  // Binder IPC kernel path per transaction hop, excluding the context
  // switch itself.
  Cycles binder_hop = 1500;
  // TLB shootdown: cost of one inter-processor interrupt round trip to a
  // remote core (send, remote handler, acknowledge). The paper evaluates
  // on one core; the multi-core extension measures how unshare-triggered
  // shootdowns scale.
  Cycles tlb_shootdown_ipi = 1800;

  // -------------------------------------------------------------------------
  // NUMA (the scale-out extension; single-node machines never pay these).
  // -------------------------------------------------------------------------
  // Extra latency of an L2-missing access whose frame lives on another
  // node's memory (interconnect hop on top of `dram`).
  Cycles numa_remote_dram = 120;
  // Extra cost of an IPI that crosses the node interconnect.
  Cycles numa_remote_ipi = 900;

  // -------------------------------------------------------------------------
  // Fork path (Table 4 decomposition).
  // -------------------------------------------------------------------------
  // Fixed fork overhead: task allocation, descriptor table copy, runtime
  // bookkeeping — everything outside the address-space copy. Derived from
  // Table 4: the shared-PTP fork (which copies almost nothing) costs
  // 1.4 Mcycles, nearly all of it fixed. ~1.1 ms at 1.2 GHz, consistent
  // with real zygote fork latencies.
  Cycles fork_base = 1300000;
  // Examining one vm_area (range checks, policy decision).
  Cycles fork_per_vma = 900;
  // Copying one present PTE (read parent entry, adjust, write child entry,
  // COW write-protect of the parent where needed). Derived from Table 4's
  // stock-vs-shared delta: ~1.5 Mcycles for 3,900 copies.
  Cycles fork_per_pte_copy = 380;
  // Allocating and linking one page-table page in the child.
  Cycles fork_per_ptp_alloc = 2000;
  // Write-protecting one present PTE during the share-time protection pass
  // (cheaper than a copy: read-modify-write in place, no allocation).
  Cycles fork_per_pte_wrprotect = 90;
  // Taking a PTP share reference (set NEED_COPY, bump mapcount, write the
  // child's L1 entry).
  Cycles fork_per_ptp_share = 350;

  // -------------------------------------------------------------------------
  // Unshare path (Figure 6).
  // -------------------------------------------------------------------------
  Cycles unshare_base = 1200;          // L1 clear, TLB flush request, relink
  Cycles unshare_per_pte_copy = 120;   // in-kernel memcpy-style copy loop

  // -------------------------------------------------------------------------
  // Swap path (zram-style compressed store, so no disk latency).
  // -------------------------------------------------------------------------
  // LZO-class compression of one 4 KB page on a Cortex-A9 runs on the
  // order of a few microseconds; decompression is roughly half that.
  // These charge the CPU work of zram store/load on top of the fault
  // trap / reclaim bookkeeping modelled elsewhere.
  Cycles swap_compress_page = 9000;
  Cycles swap_decompress_page = 5000;

  // -------------------------------------------------------------------------
  // Kernel instruction footprints (drive I-cache pollution).
  // -------------------------------------------------------------------------
  // Cache lines of kernel text executed per soft page fault. ~6 KB of
  // fault-path code at 32-byte lines. This is what couples "fewer page
  // faults" to "fewer I-cache stalls" in Figures 7-8.
  uint32_t fault_kernel_lines = 190;
  // Cache lines of kernel text executed per context switch.
  uint32_t switch_kernel_lines = 60;
  // Cache lines of kernel text executed per binder transaction hop.
  uint32_t binder_kernel_lines = 120;

  static const CostModel& Default();
};

}  // namespace sat

#endif  // SRC_STATS_COST_MODEL_H_
