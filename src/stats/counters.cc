#include "src/stats/counters.h"

#include <sstream>

namespace sat {

// All four operations per struct expand the same field table from the
// header; see SAT_KERNEL_COUNTER_FIELDS / SAT_CORE_COUNTER_FIELDS.

#define SAT_FIELD_SUB(field) out.field -= rhs.field;
#define SAT_FIELD_ADD(field) field += rhs.field;
#define SAT_FIELD_PRINT(field)        \
  os << separator << #field << "=" << field; \
  separator = " ";

KernelCounters KernelCounters::operator-(const KernelCounters& rhs) const {
  KernelCounters out = *this;
  SAT_KERNEL_COUNTER_FIELDS(SAT_FIELD_SUB)
  return out;
}

KernelCounters& KernelCounters::operator+=(const KernelCounters& rhs) {
  SAT_KERNEL_COUNTER_FIELDS(SAT_FIELD_ADD)
  return *this;
}

std::string KernelCounters::ToString() const {
  std::ostringstream os;
  const char* separator = "";
  os << "KernelCounters{";
  SAT_KERNEL_COUNTER_FIELDS(SAT_FIELD_PRINT)
  os << "}";
  return os.str();
}

CoreCounters CoreCounters::operator-(const CoreCounters& rhs) const {
  CoreCounters out = *this;
  SAT_CORE_COUNTER_FIELDS(SAT_FIELD_SUB)
  return out;
}

CoreCounters& CoreCounters::operator+=(const CoreCounters& rhs) {
  SAT_CORE_COUNTER_FIELDS(SAT_FIELD_ADD)
  return *this;
}

std::string CoreCounters::ToString() const {
  std::ostringstream os;
  const char* separator = "";
  os << "CoreCounters{";
  SAT_CORE_COUNTER_FIELDS(SAT_FIELD_PRINT)
  os << "}";
  return os.str();
}

#undef SAT_FIELD_SUB
#undef SAT_FIELD_ADD
#undef SAT_FIELD_PRINT

}  // namespace sat
