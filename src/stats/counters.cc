#include "src/stats/counters.h"

#include <sstream>

namespace sat {

KernelCounters KernelCounters::operator-(const KernelCounters& rhs) const {
  KernelCounters out = *this;
  out.faults_file_backed -= rhs.faults_file_backed;
  out.faults_anonymous -= rhs.faults_anonymous;
  out.faults_cow -= rhs.faults_cow;
  out.faults_hard -= rhs.faults_hard;
  out.domain_faults -= rhs.domain_faults;
  out.ptps_allocated -= rhs.ptps_allocated;
  out.ptps_shared -= rhs.ptps_shared;
  out.ptps_unshared -= rhs.ptps_unshared;
  out.ptes_copied -= rhs.ptes_copied;
  out.ptes_write_protected -= rhs.ptes_write_protected;
  out.ptes_faulted_around -= rhs.ptes_faulted_around;
  out.pages_reclaimed -= rhs.pages_reclaimed;
  out.ptes_cleared_by_reclaim -= rhs.ptes_cleared_by_reclaim;
  out.forks -= rhs.forks;
  out.tlb_full_flushes -= rhs.tlb_full_flushes;
  out.tlb_asid_flushes -= rhs.tlb_asid_flushes;
  out.tlb_va_flushes -= rhs.tlb_va_flushes;
  return out;
}

KernelCounters& KernelCounters::operator+=(const KernelCounters& rhs) {
  faults_file_backed += rhs.faults_file_backed;
  faults_anonymous += rhs.faults_anonymous;
  faults_cow += rhs.faults_cow;
  faults_hard += rhs.faults_hard;
  domain_faults += rhs.domain_faults;
  ptps_allocated += rhs.ptps_allocated;
  ptps_shared += rhs.ptps_shared;
  ptps_unshared += rhs.ptps_unshared;
  ptes_copied += rhs.ptes_copied;
  ptes_write_protected += rhs.ptes_write_protected;
  ptes_faulted_around += rhs.ptes_faulted_around;
  pages_reclaimed += rhs.pages_reclaimed;
  ptes_cleared_by_reclaim += rhs.ptes_cleared_by_reclaim;
  forks += rhs.forks;
  tlb_full_flushes += rhs.tlb_full_flushes;
  tlb_asid_flushes += rhs.tlb_asid_flushes;
  tlb_va_flushes += rhs.tlb_va_flushes;
  return *this;
}

std::string KernelCounters::ToString() const {
  std::ostringstream os;
  os << "KernelCounters{faults: file=" << faults_file_backed
     << " anon=" << faults_anonymous << " cow=" << faults_cow
     << " hard=" << faults_hard << " domain=" << domain_faults
     << "; ptps: alloc=" << ptps_allocated << " shared=" << ptps_shared
     << " unshared=" << ptps_unshared << "; ptes: copied=" << ptes_copied
     << " wrprot=" << ptes_write_protected << "; forks=" << forks << "}";
  return os.str();
}

CoreCounters CoreCounters::operator-(const CoreCounters& rhs) const {
  CoreCounters out = *this;
  out.cycles -= rhs.cycles;
  out.icache_stall_cycles -= rhs.icache_stall_cycles;
  out.dcache_stall_cycles -= rhs.dcache_stall_cycles;
  out.itlb_stall_cycles -= rhs.itlb_stall_cycles;
  out.dtlb_stall_cycles -= rhs.dtlb_stall_cycles;
  out.inst_fetch_lines -= rhs.inst_fetch_lines;
  out.data_accesses -= rhs.data_accesses;
  out.itlb_main_misses -= rhs.itlb_main_misses;
  out.dtlb_main_misses -= rhs.dtlb_main_misses;
  out.micro_tlb_misses -= rhs.micro_tlb_misses;
  out.l1i_misses -= rhs.l1i_misses;
  out.l1d_misses -= rhs.l1d_misses;
  out.l2_misses -= rhs.l2_misses;
  out.user_inst_lines -= rhs.user_inst_lines;
  out.kernel_inst_lines -= rhs.kernel_inst_lines;
  out.context_switches -= rhs.context_switches;
  out.unsound_global_hits -= rhs.unsound_global_hits;
  return out;
}

CoreCounters& CoreCounters::operator+=(const CoreCounters& rhs) {
  cycles += rhs.cycles;
  icache_stall_cycles += rhs.icache_stall_cycles;
  dcache_stall_cycles += rhs.dcache_stall_cycles;
  itlb_stall_cycles += rhs.itlb_stall_cycles;
  dtlb_stall_cycles += rhs.dtlb_stall_cycles;
  inst_fetch_lines += rhs.inst_fetch_lines;
  data_accesses += rhs.data_accesses;
  itlb_main_misses += rhs.itlb_main_misses;
  dtlb_main_misses += rhs.dtlb_main_misses;
  micro_tlb_misses += rhs.micro_tlb_misses;
  l1i_misses += rhs.l1i_misses;
  l1d_misses += rhs.l1d_misses;
  l2_misses += rhs.l2_misses;
  user_inst_lines += rhs.user_inst_lines;
  kernel_inst_lines += rhs.kernel_inst_lines;
  context_switches += rhs.context_switches;
  unsound_global_hits += rhs.unsound_global_hits;
  return *this;
}

std::string CoreCounters::ToString() const {
  std::ostringstream os;
  os << "CoreCounters{cycles=" << cycles << ", stalls: i$=" << icache_stall_cycles
     << " d$=" << dcache_stall_cycles << " itlb=" << itlb_stall_cycles
     << " dtlb=" << dtlb_stall_cycles << "; itlb_miss=" << itlb_main_misses
     << " dtlb_miss=" << dtlb_main_misses << " l1i_miss=" << l1i_misses
     << " l1d_miss=" << l1d_misses << " l2_miss=" << l2_misses
     << "; switches=" << context_switches << "}";
  return os.str();
}

}  // namespace sat
