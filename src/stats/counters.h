// Software and hardware event counters.
//
// KernelCounters mirrors the new software counters the paper adds to the
// kernel (Section 4.1.1): page faults by kind, PTPs allocated, PTPs shared,
// PTPs unshared, PTEs copied. CoreCounters mirrors the PMU events read from
// the Cortex-A9 Performance Monitor Unit: execution cycles, cache and TLB
// stall cycles, instruction counts.

#ifndef SRC_STATS_COUNTERS_H_
#define SRC_STATS_COUNTERS_H_

#include <cstdint>
#include <string>

#include "src/stats/cost_model.h"

namespace sat {

// Counters maintained by the simulated kernel, system-wide or snapshot-able
// per experiment window (snapshots subtract).
struct KernelCounters {
  // Page faults, split the way the paper reports them.
  uint64_t faults_file_backed = 0;   // soft + hard faults on file mappings
  uint64_t faults_anonymous = 0;     // anon zero-fill and stack growth
  uint64_t faults_cow = 0;           // write faults that copied a page
  uint64_t faults_hard = 0;          // subset that missed the page cache
  uint64_t domain_faults = 0;        // zygote-domain aborts by non-zygote tasks

  // Page-table bookkeeping.
  uint64_t ptps_allocated = 0;       // PTPs newly allocated
  uint64_t ptps_shared = 0;          // share references taken at fork
  uint64_t ptps_unshared = 0;        // Figure-6 unshare operations
  uint64_t ptes_copied = 0;          // PTEs copied at fork or unshare
  uint64_t ptes_write_protected = 0; // share-time protection pass work

  // PTEs populated speculatively by fault-around (in addition to the
  // faulting page itself).
  uint64_t ptes_faulted_around = 0;

  // Reclaim statistics (the rmap-driven shrink path).
  uint64_t pages_reclaimed = 0;
  uint64_t ptes_cleared_by_reclaim = 0;

  // Fork statistics.
  uint64_t forks = 0;

  // TLB maintenance issued by the kernel.
  uint64_t tlb_full_flushes = 0;
  uint64_t tlb_asid_flushes = 0;
  uint64_t tlb_va_flushes = 0;

  KernelCounters operator-(const KernelCounters& rhs) const;
  KernelCounters& operator+=(const KernelCounters& rhs);

  std::string ToString() const;
};

// Per-core counters, the PMU analogue.
struct CoreCounters {
  Cycles cycles = 0;                  // total execution cycles
  Cycles icache_stall_cycles = 0;     // L1 I-cache miss stalls
  Cycles dcache_stall_cycles = 0;     // L1 D-cache miss stalls
  Cycles itlb_stall_cycles = 0;       // instruction main-TLB miss stalls
  Cycles dtlb_stall_cycles = 0;       // data main-TLB miss stalls

  uint64_t inst_fetch_lines = 0;      // instruction cache-line fetches issued
  uint64_t data_accesses = 0;

  uint64_t itlb_main_misses = 0;
  uint64_t dtlb_main_misses = 0;
  uint64_t micro_tlb_misses = 0;

  uint64_t l1i_misses = 0;
  uint64_t l1d_misses = 0;
  uint64_t l2_misses = 0;

  uint64_t user_inst_lines = 0;       // user-mode share of inst_fetch_lines
  uint64_t kernel_inst_lines = 0;     // kernel-mode share

  uint64_t context_switches = 0;

  // Instruction fetches served by a global TLB entry whose domain the
  // running process has no rights to — permitted (and therefore unsound)
  // under the MPK data-only isolation model.
  uint64_t unsound_global_hits = 0;

  CoreCounters operator-(const CoreCounters& rhs) const;
  CoreCounters& operator+=(const CoreCounters& rhs);

  std::string ToString() const;
};

}  // namespace sat

#endif  // SRC_STATS_COUNTERS_H_
