// Software and hardware event counters.
//
// KernelCounters mirrors the new software counters the paper adds to the
// kernel (Section 4.1.1): page faults by kind, PTPs allocated, PTPs shared,
// PTPs unshared, PTEs copied. CoreCounters mirrors the PMU events read from
// the Cortex-A9 Performance Monitor Unit: execution cycles, cache and TLB
// stall cycles, instruction counts.

#ifndef SRC_STATS_COUNTERS_H_
#define SRC_STATS_COUNTERS_H_

#include <cstdint>
#include <string>

#include "src/stats/cost_model.h"

namespace sat {

// X-macro field tables. ToString, operator-, operator+= and the round-trip
// tests all expand the same list, so the three can never drift from the
// struct again (a static_assert below pins the list length to the struct
// size). Adding a counter means adding the field *and* one X(...) line.
#define SAT_KERNEL_COUNTER_FIELDS(X) \
  X(faults_file_backed)              \
  X(faults_anonymous)                \
  X(faults_cow)                      \
  X(faults_hard)                     \
  X(domain_faults)                   \
  X(ptps_allocated)                  \
  X(ptps_shared)                     \
  X(ptps_unshared)                   \
  X(ptes_copied)                     \
  X(ptes_write_protected)            \
  X(ptes_faulted_around)             \
  X(pages_reclaimed)                 \
  X(ptes_cleared_by_reclaim)         \
  X(direct_reclaims)                 \
  X(swap_outs)                       \
  X(swap_ins)                        \
  X(swap_ins_cache_hit)              \
  X(swap_clean_drops)                \
  X(swap_out_failures)               \
  X(swap_out_store_full)             \
  X(swap_out_pool_enomem)            \
  X(lru_rotations)                   \
  X(lru_activations)                 \
  X(kswapd_runs)                     \
  X(kswapd_pages)                    \
  X(forks)                           \
  X(forks_failed)                    \
  X(oom_kills)                       \
  X(tlb_full_flushes)                \
  X(tlb_asid_flushes)                \
  X(tlb_va_flushes)                  \
  X(tlb_shootdown_ipis)              \
  X(tlb_batched_flushes)             \
  X(tlb_batch_drains)                \
  X(ksm_scans)                       \
  X(ksm_pages_scanned)               \
  X(ksm_pages_merged)                \
  X(ksm_ptes_write_protected)        \
  X(ksm_unmerge_faults)              \
  X(ksm_unshares)                    \
  X(ksm_merge_failures)              \
  X(oops_kills)                      \
  X(frames_quarantined)              \
  X(scrub_runs)                      \
  X(scrub_repairs)                   \
  X(scrub_unrepairable)              \
  X(huge_scans)                      \
  X(huge_pages_scanned)              \
  X(huge_collapses)                  \
  X(huge_collapse_failures)          \
  X(huge_splits)                     \
  X(huge_pages_migrated)             \
  X(huge_unshares)                   \
  X(huge_ksm_unmerges)               \
  X(huge_sections_mapped)            \
  X(numa_walks)                      \
  X(numa_remote_walks)               \
  X(numa_replica_walks)              \
  X(numad_runs)                      \
  X(numa_replica_promotions)         \
  X(numa_replica_updates)            \
  X(numa_replica_reclaims)           \
  X(numa_ptp_migrations)             \
  X(numa_replica_repairs)            \
  X(numa_master_repairs)             \
  X(numa_alloc_fallbacks)            \
  X(numa_cross_node_runs)

#define SAT_CORE_COUNTER_FIELDS(X) \
  X(cycles)                        \
  X(icache_stall_cycles)           \
  X(dcache_stall_cycles)           \
  X(itlb_stall_cycles)             \
  X(dtlb_stall_cycles)             \
  X(inst_fetch_lines)              \
  X(data_accesses)                 \
  X(itlb_main_misses)              \
  X(dtlb_main_misses)              \
  X(micro_tlb_misses)              \
  X(l1i_misses)                    \
  X(l1d_misses)                    \
  X(l2_misses)                     \
  X(user_inst_lines)               \
  X(kernel_inst_lines)             \
  X(context_switches)              \
  X(unsound_global_hits)           \
  X(numa_remote_accesses)

// Counters maintained by the simulated kernel, system-wide or snapshot-able
// per experiment window (snapshots subtract).
struct KernelCounters {
  // Page faults, split the way the paper reports them.
  uint64_t faults_file_backed = 0;   // soft + hard faults on file mappings
  uint64_t faults_anonymous = 0;     // anon zero-fill and stack growth
  uint64_t faults_cow = 0;           // write faults that copied a page
  uint64_t faults_hard = 0;          // subset that missed the page cache
  uint64_t domain_faults = 0;        // zygote-domain aborts by non-zygote tasks

  // Page-table bookkeeping.
  uint64_t ptps_allocated = 0;       // PTPs newly allocated
  uint64_t ptps_shared = 0;          // share references taken at fork
  uint64_t ptps_unshared = 0;        // Figure-6 unshare operations
  uint64_t ptes_copied = 0;          // PTEs copied at fork or unshare
  uint64_t ptes_write_protected = 0; // share-time protection pass work

  // PTEs populated speculatively by fault-around (in addition to the
  // faulting page itself).
  uint64_t ptes_faulted_around = 0;

  // Reclaim statistics (the rmap-driven shrink path).
  uint64_t pages_reclaimed = 0;
  uint64_t ptes_cleared_by_reclaim = 0;
  uint64_t direct_reclaims = 0;       // allocation-failure reclaim passes

  // Anonymous swap (zram) statistics.
  uint64_t swap_outs = 0;             // pages compressed out (incl. clean drops)
  uint64_t swap_ins = 0;              // swap faults resolved
  uint64_t swap_ins_cache_hit = 0;    // subset served by the swap cache
  uint64_t swap_clean_drops = 0;      // cached clean pages dropped, no recompress
  uint64_t swap_out_failures = 0;     // zram full / pool allocation failed
  uint64_t swap_out_store_full = 0;   // subset: compressed store at disksize cap
  uint64_t swap_out_pool_enomem = 0;  // subset: backing pool frame alloc failed
  uint64_t lru_rotations = 0;         // unreclaimable candidates rotated to tail
  uint64_t lru_activations = 0;       // referenced pages promoted to active
  uint64_t kswapd_runs = 0;           // background reclaim activations
  uint64_t kswapd_pages = 0;          // pages freed by those runs

  // Fork statistics.
  uint64_t forks = 0;
  uint64_t forks_failed = 0;          // ENOMEM even after reclaim/OOM-kill

  // Tasks killed by the OOM killer.
  uint64_t oom_kills = 0;

  // TLB maintenance issued by the kernel.
  uint64_t tlb_full_flushes = 0;
  uint64_t tlb_asid_flushes = 0;
  uint64_t tlb_va_flushes = 0;
  uint64_t tlb_shootdown_ipis = 0;    // remote cores interrupted for flushes
  uint64_t tlb_batched_flushes = 0;   // remote flushes deferred to a queue
  uint64_t tlb_batch_drains = 0;      // pending-queue drains performed

  // KSM same-page merging (src/ksm).
  uint64_t ksm_scans = 0;                 // completed ksmd scan passes
  uint64_t ksm_pages_scanned = 0;         // merge candidates examined
  uint64_t ksm_pages_merged = 0;          // PTEs repointed at a stable frame
  uint64_t ksm_ptes_write_protected = 0;  // RW PTEs downgraded for merging
  uint64_t ksm_unmerge_faults = 0;        // COW breaks away from stable frames
  uint64_t ksm_unshares = 0;              // shared PTPs privatized to merge
  uint64_t ksm_merge_failures = 0;        // merges abandoned (ENOMEM unshare)

  // Graceful degradation (recoverable oops + scrubd).
  uint64_t oops_kills = 0;            // tasks killed by a recoverable oops
  uint64_t frames_quarantined = 0;    // frames pulled from circulation
  uint64_t scrub_runs = 0;            // scrubd incremental passes
  uint64_t scrub_repairs = 0;         // corruptions scrubd healed in place
  uint64_t scrub_unrepairable = 0;    // corruptions that forced an oops

  // Translation-reach engine (src/huge): khugepaged-style promotion.
  uint64_t huge_scans = 0;              // completed huged scan passes
  uint64_t huge_pages_scanned = 0;      // candidate 4 KB PTEs examined
  uint64_t huge_collapses = 0;          // 64 KB runs promoted to large PTEs
  uint64_t huge_collapse_failures = 0;  // abandons (ENOMEM migrate/unshare)
  uint64_t huge_splits = 0;             // large runs demoted back to 4 KB
  uint64_t huge_pages_migrated = 0;     // pages copied into contiguous runs
  uint64_t huge_unshares = 0;           // shared PTPs privatized to collapse
  uint64_t huge_ksm_unmerges = 0;       // stable frames copied out of a run
  uint64_t huge_sections_mapped = 0;    // eager 1 MB sections at boot

  // NUMA page-table placement engine (src/numa) and numad daemon.
  uint64_t numa_walks = 0;              // PTE fetches resolved by the engine
  uint64_t numa_remote_walks = 0;       // subset served from remote DRAM
  uint64_t numa_replica_walks = 0;      // subset served by a local replica
  uint64_t numad_runs = 0;              // numad policy passes
  uint64_t numa_replica_promotions = 0; // PTPs promoted to replicated
  uint64_t numa_replica_updates = 0;    // replica words rewritten (coherence)
  uint64_t numa_replica_reclaims = 0;   // replica frames freed under pressure
  uint64_t numa_ptp_migrations = 0;     // sole-owner PTPs moved cross-node
  uint64_t numa_replica_repairs = 0;    // rotten replica words healed by scrubd
  uint64_t numa_master_repairs = 0;     // master words outvoted by replicas
  uint64_t numa_alloc_fallbacks = 0;    // allocations pushed off-node
  uint64_t numa_cross_node_runs = 0;    // contiguous runs straddling nodes

  KernelCounters operator-(const KernelCounters& rhs) const;
  KernelCounters& operator+=(const KernelCounters& rhs);

  std::string ToString() const;
};

// Per-core counters, the PMU analogue.
struct CoreCounters {
  Cycles cycles = 0;                  // total execution cycles
  Cycles icache_stall_cycles = 0;     // L1 I-cache miss stalls
  Cycles dcache_stall_cycles = 0;     // L1 D-cache miss stalls
  Cycles itlb_stall_cycles = 0;       // instruction main-TLB miss stalls
  Cycles dtlb_stall_cycles = 0;       // data main-TLB miss stalls

  uint64_t inst_fetch_lines = 0;      // instruction cache-line fetches issued
  uint64_t data_accesses = 0;

  uint64_t itlb_main_misses = 0;
  uint64_t dtlb_main_misses = 0;
  uint64_t micro_tlb_misses = 0;

  uint64_t l1i_misses = 0;
  uint64_t l1d_misses = 0;
  uint64_t l2_misses = 0;

  uint64_t user_inst_lines = 0;       // user-mode share of inst_fetch_lines
  uint64_t kernel_inst_lines = 0;     // kernel-mode share

  uint64_t context_switches = 0;

  // Instruction fetches served by a global TLB entry whose domain the
  // running process has no rights to — permitted (and therefore unsound)
  // under the MPK data-only isolation model.
  uint64_t unsound_global_hits = 0;

  // L2-missing accesses served by DRAM on a remote NUMA node.
  uint64_t numa_remote_accesses = 0;

  CoreCounters operator-(const CoreCounters& rhs) const;
  CoreCounters& operator+=(const CoreCounters& rhs);

  std::string ToString() const;
};

// Every field is a uint64_t (Cycles included), so equating the struct size
// with the X-macro line count catches a field added to one but not the
// other at compile time.
#define SAT_COUNT_FIELD(field) +1
static_assert(sizeof(KernelCounters) ==
                  (0 SAT_KERNEL_COUNTER_FIELDS(SAT_COUNT_FIELD)) *
                      sizeof(uint64_t),
              "KernelCounters fields and SAT_KERNEL_COUNTER_FIELDS differ");
static_assert(sizeof(CoreCounters) ==
                  (0 SAT_CORE_COUNTER_FIELDS(SAT_COUNT_FIELD)) *
                      sizeof(uint64_t),
              "CoreCounters fields and SAT_CORE_COUNTER_FIELDS differ");
#undef SAT_COUNT_FIELD

}  // namespace sat

#endif  // SRC_STATS_COUNTERS_H_
