// Small statistics helpers used by the evaluation harness: five-number
// summaries for the paper's box-and-whisker plots (Figures 7-8), empirical
// CDFs (Figure 4), and aligned-column table printing with paper-vs-measured
// annotations.

#ifndef SRC_STATS_SUMMARY_H_
#define SRC_STATS_SUMMARY_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sat {

// The five-number summary a box-and-whisker plot draws.
struct FiveNumberSummary {
  double minimum = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double maximum = 0;

  std::string ToString() const;
};

// Computes min/Q1/median/Q3/max over `samples` (copied, then sorted).
// Quartiles use linear interpolation between order statistics (type 7, the
// numpy/R default). An empty input returns all zeros.
FiveNumberSummary Summarize(std::vector<double> samples);

double Mean(const std::vector<double>& samples);
double Median(std::vector<double> samples);

// An empirical CDF over integer-valued observations in [0, max_value]:
// cdf[v] = fraction of observations <= v.
std::vector<double> EmpiricalCdf(const std::vector<uint32_t>& observations,
                                 uint32_t max_value);

// ---------------------------------------------------------------------------
// Table printing.
// ---------------------------------------------------------------------------

// A minimal fixed-layout table printer: set headers once, add rows of
// strings, print with aligned columns. Used by every bench binary so the
// reproduced tables all look alike.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `digits` decimal places.
std::string FormatDouble(double value, int digits = 1);

// Formats `value` as a percentage with one decimal, e.g. "92.8%".
std::string FormatPercent(double fraction, int digits = 1);

// Prints a "shape check" line comparing a measured value to the paper's
// reported value: "  [shape] <label>: paper=<p>  measured=<m>  (<ok|off>)".
// `tolerance` is relative (0.5 = within 50%); a zero paper value only
// checks the sign. Returns true when the check passes.
bool ShapeCheck(std::ostream& os, const std::string& label, double paper,
                double measured, double tolerance);

}  // namespace sat

#endif  // SRC_STATS_SUMMARY_H_
