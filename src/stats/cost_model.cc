#include "src/stats/cost_model.h"

namespace sat {

const CostModel& CostModel::Default() {
  static const CostModel model;
  return model;
}

}  // namespace sat
