#include "src/stats/summary.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <numeric>
#include <ostream>
#include <sstream>

namespace sat {

namespace {

// Type-7 quantile (numpy/R default): linear interpolation between order
// statistics of the sorted sample.
double QuantileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0;
  }
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<size_t>(std::floor(pos));
  const auto hi = static_cast<size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

FiveNumberSummary Summarize(std::vector<double> samples) {
  FiveNumberSummary out;
  if (samples.empty()) {
    return out;
  }
  std::sort(samples.begin(), samples.end());
  out.minimum = samples.front();
  out.maximum = samples.back();
  out.q1 = QuantileSorted(samples, 0.25);
  out.median = QuantileSorted(samples, 0.50);
  out.q3 = QuantileSorted(samples, 0.75);
  return out;
}

std::string FiveNumberSummary::ToString() const {
  std::ostringstream os;
  os << "min=" << FormatDouble(minimum, 0) << " q1=" << FormatDouble(q1, 0)
     << " med=" << FormatDouble(median, 0) << " q3=" << FormatDouble(q3, 0)
     << " max=" << FormatDouble(maximum, 0);
  return os.str();
}

double Mean(const std::vector<double>& samples) {
  if (samples.empty()) {
    return 0;
  }
  const double sum = std::accumulate(samples.begin(), samples.end(), 0.0);
  return sum / static_cast<double>(samples.size());
}

double Median(std::vector<double> samples) {
  if (samples.empty()) {
    return 0;
  }
  std::sort(samples.begin(), samples.end());
  return QuantileSorted(samples, 0.5);
}

std::vector<double> EmpiricalCdf(const std::vector<uint32_t>& observations,
                                 uint32_t max_value) {
  std::vector<double> cdf(static_cast<size_t>(max_value) + 1, 0.0);
  if (observations.empty()) {
    return cdf;
  }
  std::vector<uint64_t> hist(static_cast<size_t>(max_value) + 1, 0);
  for (uint32_t obs : observations) {
    hist[std::min(obs, max_value)]++;
  }
  uint64_t running = 0;
  for (size_t v = 0; v <= max_value; ++v) {
    running += hist[v];
    cdf[v] = static_cast<double>(running) / static_cast<double>(observations.size());
  }
  return cdf;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "  ";
    for (size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << "\n";
  };
  print_row(headers_);
  std::string rule;
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  os << "  " << rule << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string FormatDouble(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string FormatPercent(double fraction, int digits) {
  return FormatDouble(fraction * 100.0, digits) + "%";
}

bool ShapeCheck(std::ostream& os, const std::string& label, double paper,
                double measured, double tolerance) {
  bool ok = false;
  if (paper == 0.0) {
    ok = measured == 0.0;
  } else {
    const double rel = std::abs(measured - paper) / std::abs(paper);
    ok = rel <= tolerance;
  }
  os << "  [shape] " << label << ": paper=" << FormatDouble(paper, 2)
     << "  measured=" << FormatDouble(measured, 2) << "  ("
     << (ok ? "ok" : "OFF") << ")\n";
  return ok;
}

}  // namespace sat
