#include "src/proc/kernel.h"

#include <algorithm>
#include <cassert>

#include "src/arch/check.h"

namespace sat {

namespace {

// Pages a direct-reclaim pass tries to free per allocation failure (the
// kernel's batch; small enough to keep the cache warm, large enough that
// one pass usually unblocks the allocation).
constexpr uint32_t kDirectReclaimBatch = 256;

// Anonymous pages one swap-out pass targets (SWAP_CLUSTER_MAX scaled to
// the simulated machine).
constexpr uint32_t kSwapOutBatch = 64;

}  // namespace

const char* ErrnoName(Errno error) {
  switch (error) {
    case Errno::kOk:
      return "OK";
    case Errno::kEnomem:
      return "ENOMEM";
    case Errno::kEfault:
      return "EFAULT";
    case Errno::kEinval:
      return "EINVAL";
    case Errno::kKilled:
      return "KILLED";
  }
  return "?";
}

Kernel::Kernel(const KernelParams& params) : costs_(params.costs) {
  tracer_ = std::make_unique<Tracer>(params.trace);
  fault_injector_ =
      std::make_unique<FaultInjector>(params.fault_injection_seed);
  phys_ = std::make_unique<PhysicalMemory>(params.phys_bytes,
                                           params.num_nodes);
  phys_->set_fault_injector(fault_injector_.get());
  lru_ = std::make_unique<FrameLru>(phys_->total_frames());
  phys_->AddObserver(lru_.get());
  page_cache_ = std::make_unique<PageCache>(phys_.get());
  ptp_allocator_ = std::make_unique<PtpAllocator>(phys_.get(), &counters_);
  // The zram store is always constructed; swap_bytes == 0 leaves it
  // disabled (TryStore always fails, no swap PTE is ever created).
  zram_ = std::make_unique<ZramStore>(phys_.get(), params.swap_bytes,
                                      params.fault_injection_seed);
  vm_ = std::make_unique<VmManager>(phys_.get(), page_cache_.get(), &counters_,
                                    &costs_, params.vm);
  vm_->set_zram(zram_.get());
  reclaimer_ = std::make_unique<Reclaimer>(phys_.get(), page_cache_.get(),
                                           ptp_allocator_.get(), &rmap_,
                                           &counters_, lru_.get());
  swap_mgr_ = std::make_unique<SwapManager>(phys_.get(), zram_.get(),
                                            ptp_allocator_.get(), &rmap_,
                                            lru_.get(), &counters_);
  // The KSM daemon is always constructed (so madvise(MERGEABLE) always
  // works and tests can drive scans directly); ksm_enabled only gates the
  // periodic wake-ups. It observes frame lifecycle to prune stable-tree
  // nodes whose frame is freed by any path.
  ksm_ = std::make_unique<KsmDaemon>(phys_.get(), ptp_allocator_.get(), &rmap_,
                                     vm_.get(), &counters_);
  phys_->AddObserver(ksm_.get());
  ksm_enabled_ = params.ksm_enabled;
  ksm_wake_interval_ = std::max<uint32_t>(1, params.ksm_wake_interval);
  // Watermarks, Linux-style: wake kswapd below `low`, stop at `high`.
  kswapd_low_watermark_ = static_cast<uint32_t>(
      std::max<uint64_t>(64, phys_->total_frames() / 16));
  kswapd_high_watermark_ = kswapd_low_watermark_ + kswapd_low_watermark_ / 2;
  // Kernel text lives just past the end of simulated RAM: a unique,
  // collision-free physical window for the cache model (the kernel image
  // itself is not simulated as data).
  const PhysAddr kernel_text_base = FrameToPhys(
      static_cast<FrameNumber>(phys_->total_frames()));
  machine_ = std::make_unique<Machine>(&costs_, &counters_, kernel_text_base,
                                       params.core, params.num_cores,
                                       params.num_nodes,
                                       params.shootdown_policy);
  if (params.num_nodes > 1) {
    for (uint32_t i = 0; i < machine_->num_cores(); ++i) {
      machine_->core(i).ConfigureNuma(machine_->NodeOfCore(i),
                                      phys_->frames_per_node());
    }
  }
  // Thread the tracer through every instrumented subsystem; its clock is
  // the machine's summed execution cycles.
  tracer_->set_clock([this] { return machine_->TotalCycles(); });
  machine_->set_tracer(tracer_.get());
  vm_->set_tracer(tracer_.get());
  reclaimer_->set_tracer(tracer_.get());
  swap_mgr_->set_tracer(tracer_.get());
  ksm_->set_tracer(tracer_.get());
  // ksmd edits PTEs from outside any one task's context; the shootdown
  // mask comes from the rmap sharer set of the PTP it edited (KSM pages
  // are anonymous, never global), and the IPIs are attributed to the
  // core whose kernel entry woke the daemon.
  ksm_->set_flush_va([this](VirtAddr va, PtpId ptp) {
    machine_->ShootdownVa(va, SharerMaskFor(va, ptp, /*global=*/false),
                          active_core_);
  });
  current_.resize(machine_->num_cores(), nullptr);
  for (uint32_t i = 0; i < machine_->num_cores(); ++i) {
    machine_->core(i).set_abort_handler([this, i](const MemoryAbort& abort) {
      Task* task = current_[i];
      assert(task != nullptr && "abort with no current task");
      SetActiveCore(i);
      const FaultOutcome outcome =
          vm_->HandleFault(*task->mm, abort, FlushFnFor(*task));
      machine_->core(i).RunKernelPath(KernelPath::kFaultHandler,
                                      outcome.kernel_cycles,
                                      costs_.fault_kernel_lines);
      // Fault-handler exit is a batched-shootdown sync point.
      SyncShootdowns();
      return outcome.ok;
    });
  }
}

Asid Kernel::AllocateAsid() {
  // Scan from next_asid_, skipping ASIDs still held by live tasks. The
  // old "reset to 1 and reissue" rollover aliased the 256th task with a
  // live one: two address spaces under one ASID means one can hit the
  // other's TLB entries.
  for (uint32_t scanned = 0; scanned <= 255; ++scanned) {
    if (next_asid_ > 255) {
      // ASID rollover: new generation, flush everything everywhere (the
      // Linux/ARM rollover analogue, kept simple). Live tasks keep their
      // ASIDs — their entries are refetched after the flush. Rollover is
      // a correctness point, so the flush may not linger in a pending
      // queue: drain immediately.
      machine_->ShootdownAll(AllCoresMask(machine_->num_cores()),
                             active_core_);
      machine_->DrainAllPendingFlushes();
      next_asid_ = 1;
    }
    const Asid asid = static_cast<Asid>(next_asid_++);
    if (!asid_live_[asid]) {
      asid_live_[asid] = true;
      return asid;
    }
  }
  SAT_CHECK(false && "ASID space exhausted: 255 live tasks");
  return 0;
}

void Kernel::ReleaseAsid(Asid asid) {
  SAT_CHECK(asid_live_[asid] && "releasing an ASID that was never issued");
  asid_live_[asid] = false;
}

MmuContext Kernel::ContextFor(Task& task) {
  MmuContext context;
  context.asid = task.asid;
  context.dacr = task.dacr;
  context.page_table = task.mm ? &task.mm->page_table() : nullptr;
  context.zygote_like = task.IsZygoteLike();
  return context;
}

TlbFlushFn Kernel::FlushFnFor(Task& task) {
  return [this, &task]() {
    // "Flush all TLB entries occupied by the current process": an ASID
    // shootdown over every core the address space has run on.
    const CpuMask mask = task.cpu_mask | CpuBit(task.last_core);
    machine_->ShootdownAsid(task.asid, mask, task.last_core);
  };
}

void Kernel::FlushRange(Task& task, VirtAddr start, VirtAddr end,
                        CpuMask extra_mask) {
  // Linux-style heuristic: a handful of page flushes for small ranges, a
  // full flush otherwise. Per-VA flushes also evict matching *global*
  // entries, which matters when global mappings are modified — the caller
  // widens the mask past the task's own cores for that case, because a
  // global entry is cached wherever the *sharing group* ran, not just
  // where this task did.
  constexpr uint32_t kMaxPageFlushes = 64;
  const CpuMask mask = (task.cpu_mask | CpuBit(task.last_core) | extra_mask) &
                       AllCoresMask(machine_->num_cores());
  if ((end - start) / kPageSize <= kMaxPageFlushes) {
    for (uint64_t va = start; va < end; va += kPageSize) {
      machine_->ShootdownVa(static_cast<VirtAddr>(va), mask, task.last_core);
    }
  } else {
    machine_->ShootdownAll(mask, task.last_core);
  }
}

CpuMask Kernel::SharerMaskFor(VirtAddr va, PtpId ptp, bool global) const {
  // The rmap tells the daemons *which PTPs* map a frame; which *cores*
  // may cache the translation follows from the tasks whose L1 points at
  // that PTP — exactly the sharer set a shared PTP accumulates.
  CpuMask mask = CpuBit(active_core_);
  const uint32_t slot = PtpSlotIndex(va);
  for (const auto& t : tasks_) {
    if (!t->alive || t->mm == nullptr) {
      continue;
    }
    if (t->mm->page_table().l1(slot).ptp != ptp) {
      continue;
    }
    mask |= t->cpu_mask | CpuBit(t->last_core);
  }
  if (global) {
    mask |= zygote_cpu_mask_;
  }
  return mask & AllCoresMask(machine_->num_cores());
}

CpuMask Kernel::GlobalFlushExtraMask(Task& task, VirtAddr start,
                                     VirtAddr end) const {
  if (!vm_->config().share_tlb_global) {
    return 0;
  }
  for (const VmArea* vma : task.mm->VmasOverlapping(start, end)) {
    if (vma->global) {
      return zygote_cpu_mask_;
    }
  }
  return 0;
}

void Kernel::SyncShootdowns() { machine_->DrainAllPendingFlushes(); }

void Kernel::SetActiveCore(uint32_t core_id) {
  active_core_ = core_id;
  if (machine_->num_nodes() > 1) {
    phys_->set_preferred_node(machine_->NodeOfCore(core_id));
  }
}

Task* Kernel::CreateTask(const std::string& name) {
  auto task = std::make_unique<Task>();
  task->pid = next_pid_++;
  task->name = name;
  task->asid = AllocateAsid();
  task->mm = std::make_unique<MmStruct>(ptp_allocator_.get(), phys_.get(),
                                        &counters_, kDomainUser, &rmap_);
  task->mm->page_table().set_tracer(tracer_.get());
  task->mm->page_table().set_zram(zram_.get());
  Task* raw = task.get();
  tasks_.push_back(std::move(task));
  return raw;
}

ForkOutcome Kernel::Fork(Task& parent, const std::string& name) {
  assert(parent.mm != nullptr);
  SetActiveCore(parent.last_core);
  TraceSpan span(tracer_.get(), TraceEventType::kFork, parent.pid);
  ForkOutcome outcome;
  Task* child = CreateTask(name);

  // Section 3.2.2: children of the zygote get the zygote-child flag and
  // with it client access to the zygote domain; their user mappings live
  // in the zygote domain like the parent's.
  if (parent.zygote || parent.zygote_child) {
    child->zygote_child = true;
    child->dacr = parent.dacr;
    child->mm->set_user_domain(parent.mm->user_domain());
  }

  while (true) {
    outcome.stats = vm_->Fork(*parent.mm, *child->mm, FlushFnFor(parent));
    if (outcome.stats.ok) {
      break;
    }
    // ENOMEM mid-copy: tear the partial child address space down (regions,
    // PTEs, PTPs, sharer and frame references), then try to free memory.
    // The parent is immune — killing the forking task to satisfy its own
    // fork would be absurd.
    vm_->ExitMm(*child->mm);
    if (!RelieveMemoryPressure(&parent, child)) {
      // Nothing reclaimable and nobody to kill: the fork fails. Undo the
      // task creation entirely — the child is the youngest task, so its
      // pid and ASID are simply un-issued again.
      counters_.forks_failed++;
      assert(tasks_.back().get() == child);
      ReleaseAsid(child->asid);
      // Un-issue the ASID number too when it was the newest, so a failed
      // fork leaves the allocator exactly where it started.
      if (next_asid_ == static_cast<uint32_t>(child->asid) + 1) {
        next_asid_--;
      }
      tasks_.pop_back();
      next_pid_--;
      span.set_args(0, 0);
      outcome.error = Errno::kEnomem;
      SyncShootdowns();
      return outcome;
    }
  }
  machine_->core(parent.last_core)
      .RunKernelPath(KernelPath::kFork, outcome.stats.cycles,
                     /*text_lines=*/180);
  span.set_args(child->pid, outcome.stats.ptes_copied);
  span.set_duration(outcome.stats.cycles);
  RunKswapdIfNeeded();
  outcome.child = child;
  SyncShootdowns();
  return outcome;
}

void Kernel::Exec(Task& task, const std::string& name, bool is_zygote) {
  SetActiveCore(task.last_core);
  Tracer::Emit(tracer_.get(), TraceEventType::kExec, task.pid, task.pid);
  vm_->ExitMm(*task.mm);
  FlushFnFor(task)();
  SyncShootdowns();
  task.name = name;
  task.zygote = is_zygote;
  task.zygote_child = false;
  if (is_zygote) {
    task.dacr = DomainAccessControl::ZygoteLike();
    task.mm->set_user_domain(kDomainZygote);
  } else {
    task.dacr = DomainAccessControl::StockDefault();
    task.mm->set_user_domain(kDomainUser);
  }
}

void Kernel::Exit(Task& task) {
  assert(task.alive);
  SetActiveCore(task.last_core);
  Tracer::Emit(tracer_.get(), TraceEventType::kExit, task.pid, task.pid);
  vm_->ExitMm(*task.mm);
  FlushFnFor(task)();
  if (task.zygote && vm_->config().share_tlb_global) {
    // The zygote's global entries are not ASID-tagged, so the ASID flush
    // above leaves them cached on every core the sharing group ever ran
    // on. Zygote exit is rare enough to pay for a full shootdown there.
    machine_->ShootdownAll(
        (zygote_cpu_mask_ | task.cpu_mask | CpuBit(task.last_core)) &
            AllCoresMask(machine_->num_cores()),
        task.last_core);
  }
  // Drain before the ASID goes back in the pool: reissuing an ASID whose
  // flush is still queued would alias the new task with this one.
  SyncShootdowns();
  ReleaseAsid(task.asid);
  task.alive = false;
  task.cpu_mask = 0;
  for (Task*& current : current_) {
    if (current == &task) {
      current = nullptr;
    }
  }
}

SyscallResult<VirtAddr> Kernel::Mmap(Task& task, MmapRequest request) {
  if (request.length == 0 || !IsPageAligned(request.length) ||
      !IsPageAligned(request.fixed_address)) {
    return SyscallResult<VirtAddr>::Err(Errno::kEinval);
  }
  SetActiveCore(task.last_core);
  // Section 3.2.2's global-region policy: the zygote mapping shared
  // library code marks the region global (only meaningful when TLB
  // sharing is on; the bit is still recorded so experiments can observe
  // the policy independent of the config).
  if (task.zygote && IsFileBacked(request.kind) && request.prot.execute) {
    request.global = true;
  }
  if (task.zygote) {
    request.zygote_preloaded = true;
  }
  while (true) {
    bool oom = false;
    const VirtAddr addr = vm_->Mmap(*task.mm, request, FlushFnFor(task), &oom);
    if (addr != 0) {
      RunKswapdIfNeeded();
      SyncShootdowns();
      return SyscallResult<VirtAddr>::Ok(addr);
    }
    if (!oom) {
      // No free range in the address space.
      return SyscallResult<VirtAddr>::Err(Errno::kEnomem);
    }
    if (!RelieveMemoryPressure(&task)) {
      // ENOMEM with nothing left to free.
      return SyscallResult<VirtAddr>::Err(Errno::kEnomem);
    }
  }
}

SyscallResult<void> Kernel::Munmap(Task& task, VirtAddr start,
                                   uint32_t length) {
  if (length == 0 || !IsPageAligned(start) || !IsPageAligned(length)) {
    return SyscallResult<void>::Err(Errno::kEinval);
  }
  if (task.mm->VmasOverlapping(start, start + length).empty()) {
    return SyscallResult<void>::Err(Errno::kEfault);
  }
  SetActiveCore(task.last_core);
  // A global mapping's stale entries live on the whole sharing group's
  // cores; the vmas are gone after the unmap, so widen the mask now.
  const CpuMask extra = GlobalFlushExtraMask(task, start, start + length);
  while (true) {
    bool oom = false;
    vm_->Munmap(*task.mm, start, length, FlushFnFor(task), &oom);
    if (!oom) {
      break;
    }
    if (!RelieveMemoryPressure(&task)) {
      // Nothing left to free and the unmap's unshare step cannot proceed:
      // the caller is the last resort (its teardown completes the unmap).
      OomKill(task);
      return SyscallResult<void>::Err(Errno::kKilled);
    }
  }
  FlushRange(task, start, start + length, extra);
  SyncShootdowns();
  return SyscallResult<void>::Ok();
}

SyscallResult<void> Kernel::Mprotect(Task& task, VirtAddr start,
                                     uint32_t length, VmProt prot) {
  if (length == 0 || !IsPageAligned(start) || !IsPageAligned(length)) {
    return SyscallResult<void>::Err(Errno::kEinval);
  }
  if (task.mm->VmasOverlapping(start, start + length).empty()) {
    return SyscallResult<void>::Err(Errno::kEfault);
  }
  SetActiveCore(task.last_core);
  const CpuMask extra = GlobalFlushExtraMask(task, start, start + length);
  while (true) {
    bool oom = false;
    vm_->Mprotect(*task.mm, start, length, prot, FlushFnFor(task), &oom);
    if (!oom) {
      break;
    }
    if (!RelieveMemoryPressure(&task)) {
      OomKill(task);
      return SyscallResult<void>::Err(Errno::kKilled);
    }
  }
  FlushRange(task, start, start + length, extra);
  SyncShootdowns();
  return SyscallResult<void>::Ok();
}

SyscallResult<void> Kernel::Madvise(Task& task, VirtAddr start,
                                    uint32_t length, MadviseAdvice advice) {
  if (length == 0 || !IsPageAligned(start) || !IsPageAligned(length)) {
    return SyscallResult<void>::Err(Errno::kEinval);
  }
  if (task.mm->VmasOverlapping(start, start + length).empty()) {
    return SyscallResult<void>::Err(Errno::kEfault);
  }
  // Split at the boundaries by removing and re-inserting the covered
  // pieces with the flag flipped. RemoveRange is pure region bookkeeping;
  // no PTE changes, so nothing to flush and nothing can fail.
  const bool mergeable = advice == MadviseAdvice::kMergeable;
  for (VmArea piece : task.mm->RemoveRange(start, start + length)) {
    piece.mergeable = mergeable;
    task.mm->InsertVma(piece);
  }
  return SyscallResult<void>::Ok();
}

TouchStatus Kernel::TouchPageStatus(Task& task, VirtAddr va,
                                    AccessType access) {
  return TouchAndMaybeStore(task, va, access, nullptr);
}

TouchStatus Kernel::TouchAndMaybeStore(Task& task, VirtAddr va,
                                       AccessType access,
                                       const uint64_t* store) {
  assert(task.mm != nullptr);
  SetActiveCore(task.last_core);
  PageTable& pt = task.mm->page_table();
  // Each iteration either succeeds, makes fault progress, or frees
  // memory; the cap only guards against a livelocked fault handler.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto ref = pt.FindPte(va);
    if (ref.has_value() && ref->ptp->hw(ref->index).valid()) {
      const HwPte hw = ref->ptp->hw(ref->index);
      const bool l1_write_block = vm_->config().hw_l1_write_protect &&
                                  pt.SlotNeedsCopy(va) &&
                                  access == AccessType::kWrite;
      bool allowed = !l1_write_block;
      if (allowed) {
        switch (access) {
          case AccessType::kRead:
            allowed = hw.perm() != PtePerm::kNone;
            break;
          case AccessType::kWrite:
            allowed = hw.perm() == PtePerm::kReadWrite;
            break;
          case AccessType::kExecute:
            allowed = hw.perm() != PtePerm::kNone && hw.executable();
            break;
        }
      }
      if (allowed) {
        // Emulated referenced/dirty bits: the hardware format has none, so
        // the "MMU" sets them in the shadow PTE on access. The swap-out
        // aging pass harvests young (second chance) and uses dirty to
        // decide whether a swap-cached page can be dropped without
        // recompressing.
        LinuxPte sw = ref->ptp->sw(ref->index);
        const bool need_dirty =
            access == AccessType::kWrite && !sw.dirty();
        if (!sw.young() || need_dirty) {
          sw.set_young(true);
          if (access == AccessType::kWrite) {
            sw.set_dirty(true);
          }
          pt.UpdatePte(va, hw, sw, /*allow_shared=*/true);
        }
        if (store != nullptr) {
          // The store retires the instant the access is allowed — before
          // the daemon wake point below, where ksmd could otherwise merge
          // the page between the fault and the store and the new content
          // would land on a stable frame.
          const FrameNumber frame = MappedFrameOf(hw, ref->index);
          SAT_CHECK(frame != phys_->zero_frame());
          SAT_CHECK(!phys_->frame(frame).ksm_stable);
          phys_->frame(frame).content = *store;
        }
        RunKswapdIfNeeded();
        SyncShootdowns();
        return TouchStatus::kOk;
      }
    }
    MemoryAbort abort;
    abort.status = (ref.has_value() && ref->ptp->hw(ref->index).valid())
                       ? FaultStatus::kPermission
                       : FaultStatus::kTranslation;
    abort.fault_address = va;
    abort.access = access;
    abort.is_prefetch_abort = access == AccessType::kExecute;
    const FaultOutcome outcome =
        vm_->HandleFault(*task.mm, abort, FlushFnFor(task));
    SyncShootdowns();  // fault-handler exit
    if (outcome.ok) {
      continue;
    }
    if (!outcome.oom) {
      return TouchStatus::kSigSegv;
    }
    // The fault handler could not allocate. Reclaim / kill and retry; the
    // toucher itself is a legitimate victim (no immunity), and if nothing
    // else can be freed it falls on its own sword, Linux-style.
    if (!RelieveMemoryPressure(nullptr)) {
      OomKill(task);
      return TouchStatus::kOomKill;
    }
    if (!task.alive) {
      return TouchStatus::kOomKill;  // we were the chosen victim
    }
  }
  SAT_CHECK(false && "TouchPage made no progress");
  return TouchStatus::kSigSegv;
}

bool Kernel::TouchPage(Task& task, VirtAddr va, AccessType access) {
  return TouchPageStatus(task, va, access) == TouchStatus::kOk;
}

TouchStatus Kernel::WritePage(Task& task, VirtAddr va, uint64_t value) {
  // A successful write access always lands on a private writable frame
  // (the fault path COWed away from anything shared, including stable
  // frames); the simulated content is stamped as part of the access.
  return TouchAndMaybeStore(task, va, AccessType::kWrite, &value);
}

ReclaimStats Kernel::ReclaimFileCache(uint32_t target) {
  // Each cleared PTE is flushed over its PTP's sharer set (not a blind
  // all-cores broadcast), attributed to the core whose kernel entry is
  // doing the reclaiming.
  const ReclaimStats stats = reclaimer_->ReclaimFileCache(
      target, [this](VirtAddr va, PtpId ptp, bool global) {
        machine_->ShootdownVa(va, SharerMaskFor(va, ptp, global),
                              active_core_);
      });
  SyncShootdowns();  // daemon tick
  return stats;
}

uint32_t Kernel::SwapOutAnonPages(uint32_t target) {
  if (!zram_->enabled()) {
    return 0;
  }
  const uint32_t freed = swap_mgr_->SwapOut(
      target, [this](VirtAddr va, PtpId ptp, bool global) {
        machine_->ShootdownVa(va, SharerMaskFor(va, ptp, global),
                              active_core_);
      });
  SyncShootdowns();  // daemon tick
  return freed;
}

uint32_t Kernel::RunKsmScan() {
  std::vector<KsmScanTarget> targets;
  for (const auto& task : tasks_) {
    Task* t = task.get();
    if (!t->alive || t->mm == nullptr) {
      continue;
    }
    targets.push_back(KsmScanTarget{t->mm.get(), t->pid, FlushFnFor(*t)});
  }
  const uint32_t merged = ksm_->ScanOnce(targets);
  SyncShootdowns();  // daemon tick
  return merged;
}

void Kernel::RunKswapdIfNeeded() {
  // ksmd shares kswapd's wake points but fires on a wake-count period,
  // not the watermark — merging saves memory even before pressure. Placed
  // ahead of the zram gate so KSM works with swap disabled.
  if (ksm_enabled_ && !in_ksmd_ && !in_kswapd_ &&
      ++ksm_wake_ticks_ >= ksm_wake_interval_) {
    ksm_wake_ticks_ = 0;
    in_ksmd_ = true;
    RunKsmScan();
    in_ksmd_ = false;
  }
  if (in_kswapd_ || !zram_->enabled()) {
    return;
  }
  if (phys_->free_frames() >= kswapd_low_watermark_) {
    return;
  }
  in_kswapd_ = true;
  counters_.kswapd_runs++;
  TraceSpan span(tracer_.get(), TraceEventType::kKswapd);
  uint64_t freed_total = 0;
  while (phys_->free_frames() < kswapd_high_watermark_) {
    // Cheap memory first (clean file pages: refetchable), anonymous
    // swap-out second (costs compression now and a decompress fault
    // later). kswapd never OOM-kills; if neither pass makes progress it
    // goes back to sleep and the allocation paths handle the shortfall.
    uint64_t freed = ReclaimFileCache(kSwapOutBatch).pages_reclaimed;
    if (phys_->free_frames() < kswapd_high_watermark_) {
      freed += SwapOutAnonPages(kSwapOutBatch);
    }
    freed_total += freed;
    if (freed == 0) {
      break;
    }
  }
  counters_.kswapd_pages += freed_total;
  span.set_args(freed_total, phys_->free_frames());
  in_kswapd_ = false;
  SyncShootdowns();  // daemon tick
}

uint64_t Kernel::TaskRssPages(const Task& task) const {
  return task.mm == nullptr ? 0 : task.mm->page_table().PresentPteCount();
}

Task* Kernel::PickOomVictim(const Task* immune, const Task* immune2) {
  Task* victim = nullptr;
  uint64_t victim_rss = 0;
  for (const auto& candidate : tasks_) {
    Task* t = candidate.get();
    if (!t->alive || t->zygote || t == immune || t == immune2 ||
        t->mm == nullptr) {
      continue;  // the zygote is sacred (Android's oom_score_adj analogue)
    }
    const uint64_t rss = TaskRssPages(*t);
    // Largest RSS wins; ties go to the younger task (higher pid), which
    // matches "kill the most recently spawned of equals".
    if (victim == nullptr || rss > victim_rss ||
        (rss == victim_rss && t->pid > victim->pid)) {
      victim = t;
      victim_rss = rss;
    }
  }
  return victim;
}

void Kernel::OomKill(Task& victim) {
  counters_.oom_kills++;
  Tracer::Emit(tracer_.get(), TraceEventType::kOomKill, victim.pid,
               victim.pid, TaskRssPages(victim));
  victim.oom_killed = true;
  Exit(victim);
}

bool Kernel::RelieveMemoryPressure(const Task* immune, const Task* immune2) {
  // Stage 1: direct reclaim of clean file-cache pages. Their contents are
  // refetchable, so dropping them is free apart from future soft faults.
  counters_.direct_reclaims++;
  const ReclaimStats stats = ReclaimFileCache(kDirectReclaimBatch);
  Tracer::Emit(tracer_.get(), TraceEventType::kDirectReclaim, 0,
               stats.pages_reclaimed, phys_->free_frames());
  if (stats.pages_reclaimed > 0) {
    return true;
  }
  // Stage 2: swap out anonymous pages to the compressed store. More
  // expensive than dropping clean file pages (compression now, a
  // decompress fault later) but far cheaper than killing someone.
  if (SwapOutAnonPages(kSwapOutBatch) > 0) {
    return true;
  }
  // Stage 3: the OOM killer.
  Task* victim = PickOomVictim(immune, immune2);
  if (victim == nullptr) {
    return false;
  }
  OomKill(*victim);
  return true;
}

AuditReport Kernel::AuditInvariants() const {
  AuditInput input;
  input.phys = phys_.get();
  input.page_cache = page_cache_.get();
  input.ptps = ptp_allocator_.get();
  input.rmap = &rmap_;
  input.zram = zram_.get();
  input.lru = lru_.get();
  input.hw_l1_write_protect = vm_->config().hw_l1_write_protect;
  input.ksm_audited = true;
  ksm_->ForEachStable([&](uint64_t content, FrameNumber frame) {
    input.ksm_stable.emplace_back(content, frame);
  });
  for (const auto& task : tasks_) {
    if (!task->alive || task->mm == nullptr) {
      continue;
    }
    input.spaces.push_back(AuditSpace{task->mm.get(), task->pid, task->asid,
                                      task->IsZygoteLike(), task->dacr});
  }
  // A TLB entry may legally be stale while a covering flush sits in a
  // pending queue; hand the auditor the queues so it can tell that
  // window from a genuine under-flush.
  for (const PendingFlush& p : machine_->PendingFlushesSnapshot()) {
    AuditPendingFlush pending;
    pending.kind =
        static_cast<AuditPendingFlush::Kind>(static_cast<uint8_t>(p.kind));
    pending.asid = p.asid;
    pending.va = p.va;
    pending.cpu_mask = p.mask;
    input.pending_flushes.push_back(pending);
  }
  for (uint32_t c = 0; c < machine_->num_cores(); ++c) {
    Core& core = machine_->core(c);
    const MainTlb& main = core.main_tlb();
    for (uint32_t set = 0; set < main.num_sets(); ++set) {
      for (uint32_t way = 0; way < main.ways(); ++way) {
        const TlbEntry& entry = main.EntryAt(set, way);
        if (entry.valid) {
          input.tlb_entries.push_back(AuditTlbEntry{entry, c, "main"});
        }
      }
    }
    const auto collect_micro = [&](const MicroTlb& micro, const char* which) {
      for (uint32_t i = 0; i < micro.num_entries(); ++i) {
        if (micro.EntryAt(i).valid) {
          input.tlb_entries.push_back(AuditTlbEntry{micro.EntryAt(i), c, which});
        }
      }
    };
    collect_micro(core.micro_itlb(), "micro-i");
    collect_micro(core.micro_dtlb(), "micro-d");
  }
  return sat::AuditInvariants(input);
}

void Kernel::ScheduleTo(Task& task, uint32_t core_id) {
  assert(task.alive);
  assert(core_id < machine_->num_cores());
  // Context switch is a batched-shootdown sync point: no stale window may
  // outlive the switch into another address space.
  SyncShootdowns();
  current_[core_id] = &task;
  task.cpu_mask |= CpuBit(core_id);
  task.last_core = core_id;
  SetActiveCore(core_id);
  if (task.IsZygoteLike()) {
    zygote_cpu_mask_ |= CpuBit(core_id);
  }
  Tracer::Emit(tracer_.get(), TraceEventType::kContextSwitch, task.pid,
               task.asid, core_id);
  machine_->core(core_id).SwitchContext(ContextFor(task));
}

void Kernel::SetCurrent(Task& task, uint32_t core_id) {
  assert(core_id < machine_->num_cores());
  SyncShootdowns();
  current_[core_id] = &task;
  task.cpu_mask |= CpuBit(core_id);
  task.last_core = core_id;
  SetActiveCore(core_id);
  if (task.IsZygoteLike()) {
    zygote_cpu_mask_ |= CpuBit(core_id);
  }
  machine_->core(core_id).SetContext(ContextFor(task));
}

}  // namespace sat
