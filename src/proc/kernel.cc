#include "src/proc/kernel.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/arch/check.h"

namespace sat {

namespace {

// Pages a direct-reclaim pass tries to free per allocation failure (the
// kernel's batch; small enough to keep the cache warm, large enough that
// one pass usually unblocks the allocation).
constexpr uint32_t kDirectReclaimBatch = 256;

// Anonymous pages one swap-out pass targets (SWAP_CLUSTER_MAX scaled to
// the simulated machine).
constexpr uint32_t kSwapOutBatch = 64;

}  // namespace

const char* ErrnoName(Errno error) {
  switch (error) {
    case Errno::kOk:
      return "OK";
    case Errno::kEnomem:
      return "ENOMEM";
    case Errno::kEfault:
      return "EFAULT";
    case Errno::kEinval:
      return "EINVAL";
    case Errno::kKilled:
      return "KILLED";
  }
  return "?";
}

Kernel::Kernel(const KernelParams& params) : costs_(params.costs) {
  tracer_ = std::make_unique<Tracer>(params.trace);
  fault_injector_ =
      std::make_unique<FaultInjector>(params.fault_injection_seed);
  phys_ = std::make_unique<PhysicalMemory>(params.phys_bytes,
                                           params.num_nodes);
  phys_->set_fault_injector(fault_injector_.get());
  lru_ = std::make_unique<FrameLru>(phys_->total_frames());
  phys_->AddObserver(lru_.get());
  page_cache_ = std::make_unique<PageCache>(phys_.get());
  ptp_allocator_ = std::make_unique<PtpAllocator>(phys_.get(), &counters_);
  // The zram store is always constructed; swap_bytes == 0 leaves it
  // disabled (TryStore always fails, no swap PTE is ever created).
  zram_ = std::make_unique<ZramStore>(phys_.get(), params.swap_bytes,
                                      params.fault_injection_seed);
  vm_ = std::make_unique<VmManager>(phys_.get(), page_cache_.get(), &counters_,
                                    &costs_, params.vm);
  vm_->set_zram(zram_.get());
  reclaimer_ = std::make_unique<Reclaimer>(phys_.get(), page_cache_.get(),
                                           ptp_allocator_.get(), &rmap_,
                                           &counters_, lru_.get());
  swap_mgr_ = std::make_unique<SwapManager>(phys_.get(), zram_.get(),
                                            ptp_allocator_.get(), &rmap_,
                                            lru_.get(), &counters_);
  // scrubd, like ksmd, is always constructed (RunScrubPass and the touch
  // path's inline repair work regardless); `scrub` only gates the periodic
  // wake-ups.
  scrubber_ = std::make_unique<Scrubber>(phys_.get(), ptp_allocator_.get(),
                                         &rmap_, zram_.get(), &counters_);
  scrubber_->set_flush_site([this](PtpId ptp, uint32_t index, VirtAddr va) {
    FlushScrubSite(ptp, index, va);
  });
  scrub_enabled_ = params.scrub;
  scrub_wake_interval_ = std::max<uint32_t>(1, params.scrub_wake_interval);
  // The KSM daemon is always constructed (so madvise(MERGEABLE) always
  // works and tests can drive scans directly); ksm_enabled only gates the
  // periodic wake-ups. It observes frame lifecycle to prune stable-tree
  // nodes whose frame is freed by any path.
  ksm_ = std::make_unique<KsmDaemon>(phys_.get(), ptp_allocator_.get(), &rmap_,
                                     vm_.get(), &counters_);
  phys_->AddObserver(ksm_.get());
  ksm_enabled_ = params.ksm_enabled;
  ksm_wake_interval_ = std::max<uint32_t>(1, params.ksm_wake_interval);
  // huged is always constructed (RunHugeScan and MapZygoteSections can be
  // driven directly); `huge` only gates the periodic wake-ups and the
  // boot-time section mapping.
  huge_ = std::make_unique<HugeDaemon>(phys_.get(), vm_.get(), &counters_);
  huge_->set_unmerge_ksm(params.huge_unmerge_ksm);
  huge_enabled_ = params.huge;
  huge_wake_interval_ = std::max<uint32_t>(1, params.huge_wake_interval);
  // The NUMA placement engine exists whenever the machine has more than
  // one node (it resolves walks and audits replicas even under kLocal,
  // where it never creates any); the numad daemon only ticks when the
  // policy asks for replication or migration.
  if (params.num_nodes > 1) {
    numa_ = std::make_unique<NumaEngine>(phys_.get(), ptp_allocator_.get(),
                                         &counters_, params.pt_placement,
                                         params.numad_remote_threshold);
    // The single write-through mutation path: every PTE write notifies
    // the engine so all replicas are rewritten in the same operation.
    ptp_allocator_->set_write_observer(numa_.get());
    numad_enabled_ = params.pt_placement != PtPlacement::kLocal;
    numad_wake_interval_ =
        std::max<uint32_t>(1, params.numad_wake_interval);
  }
  // Watermarks, Linux-style: wake kswapd below `low`, stop at `high`.
  kswapd_low_watermark_ = static_cast<uint32_t>(
      std::max<uint64_t>(64, phys_->total_frames() / 16));
  kswapd_high_watermark_ = kswapd_low_watermark_ + kswapd_low_watermark_ / 2;
  if (params.num_nodes > 1) {
    // Per-node watermarks: a node's free count can sink (pushing every
    // allocation remote) while the machine-wide count looks healthy.
    kswapd_node_low_watermark_ = std::max<uint32_t>(
        16, kswapd_low_watermark_ / params.num_nodes);
    kswapd_node_high_watermark_ =
        kswapd_node_low_watermark_ + kswapd_node_low_watermark_ / 2;
  }
  // Kernel text lives just past the end of simulated RAM: a unique,
  // collision-free physical window for the cache model (the kernel image
  // itself is not simulated as data).
  const PhysAddr kernel_text_base = FrameToPhys(
      static_cast<FrameNumber>(phys_->total_frames()));
  machine_ = std::make_unique<Machine>(&costs_, &counters_, kernel_text_base,
                                       params.core, params.num_cores,
                                       params.num_nodes,
                                       params.shootdown_policy);
  if (params.num_nodes > 1) {
    for (uint32_t i = 0; i < machine_->num_cores(); ++i) {
      machine_->core(i).ConfigureNuma(machine_->NodeOfCore(i),
                                      phys_->frames_per_node());
      // Hardware walks fetch PTEs from the walking core's node-local
      // replica when one exists (and record placement statistics either
      // way).
      machine_->core(i).set_pte_addr_resolver(
          [this](const PageTablePage& ptp, uint32_t index, uint32_t node) {
            return numa_->ResolveWalk(ptp, index, node);
          });
    }
  }
  // Thread the tracer through every instrumented subsystem; its clock is
  // the machine's summed execution cycles.
  tracer_->set_clock([this] { return machine_->TotalCycles(); });
  machine_->set_tracer(tracer_.get());
  vm_->set_tracer(tracer_.get());
  reclaimer_->set_tracer(tracer_.get());
  swap_mgr_->set_tracer(tracer_.get());
  ksm_->set_tracer(tracer_.get());
  // ksmd edits PTEs from outside any one task's context; the shootdown
  // mask comes from the rmap sharer set of the PTP it edited (KSM pages
  // are anonymous, never global), and the IPIs are attributed to the
  // core whose kernel entry woke the daemon.
  ksm_->set_flush_va([this](VirtAddr va, PtpId ptp) {
    machine_->ShootdownVa(va, SharerMaskFor(va, ptp, /*global=*/false),
                          active_core_);
  });
  // huged edits PTEs the same way ksmd does (from outside any one task's
  // context, over anonymous memory): same rmap-derived shootdown mask.
  huge_->set_tracer(tracer_.get());
  huge_->set_flush_va([this](VirtAddr va, PtpId ptp) {
    machine_->ShootdownVa(va, SharerMaskFor(va, ptp, /*global=*/false),
                          active_core_);
  });
  current_.resize(machine_->num_cores(), nullptr);
  for (uint32_t i = 0; i < machine_->num_cores(); ++i) {
    machine_->core(i).set_abort_handler([this, i](const MemoryAbort& abort) {
      Task* task = current_[i];
      SAT_CHECK(task != nullptr && "abort with no current task");
      SetActiveCore(i);
      FaultOutcome outcome;
      {
        // A recoverable oops in the fault handler (e.g. a corrupt swap
        // slot discovered at decompress) kills the sharers and fails the
        // access instead of taking the machine down.
        OopsRecoveryScope oops_scope;
        try {
          outcome = vm_->HandleFault(*task->mm, abort, FlushFnFor(*task));
        } catch (const KernelOops& oops) {
          OopsKillByDamage(oops.damage, task);
          SyncShootdowns();
          return false;
        }
      }
      machine_->core(i).RunKernelPath(KernelPath::kFaultHandler,
                                      outcome.kernel_cycles,
                                      costs_.fault_kernel_lines);
      // Fault-handler exit is a batched-shootdown sync point.
      SyncShootdowns();
      return outcome.ok;
    });
  }
}

Asid Kernel::AllocateAsid() {
  // Scan from next_asid_, skipping ASIDs still held by live tasks. The
  // old "reset to 1 and reissue" rollover aliased the 256th task with a
  // live one: two address spaces under one ASID means one can hit the
  // other's TLB entries.
  for (uint32_t scanned = 0; scanned <= 255; ++scanned) {
    if (next_asid_ > 255) {
      // ASID rollover: new generation, flush everything everywhere (the
      // Linux/ARM rollover analogue, kept simple). Live tasks keep their
      // ASIDs — their entries are refetched after the flush. Rollover is
      // a correctness point, so the flush may not linger in a pending
      // queue: drain immediately.
      machine_->ShootdownAll(AllCoresMask(machine_->num_cores()),
                             active_core_);
      machine_->DrainAllPendingFlushes();
      next_asid_ = 1;
    }
    const Asid asid = static_cast<Asid>(next_asid_++);
    if (!asid_live_[asid]) {
      asid_live_[asid] = true;
      return asid;
    }
  }
  SAT_CHECK(false && "ASID space exhausted: 255 live tasks");
  return 0;
}

void Kernel::ReleaseAsid(Asid asid) {
  SAT_CHECK(asid_live_[asid] && "releasing an ASID that was never issued");
  asid_live_[asid] = false;
}

MmuContext Kernel::ContextFor(Task& task) {
  MmuContext context;
  context.asid = task.asid;
  context.dacr = task.dacr;
  context.page_table = task.mm ? &task.mm->page_table() : nullptr;
  context.zygote_like = task.IsZygoteLike();
  return context;
}

TlbFlushFn Kernel::FlushFnFor(Task& task) {
  return [this, &task]() {
    // "Flush all TLB entries occupied by the current process": an ASID
    // shootdown over every core the address space has run on.
    const CpuMask mask = task.cpu_mask | CpuBit(task.last_core);
    machine_->ShootdownAsid(task.asid, mask, task.last_core);
  };
}

void Kernel::FlushRange(Task& task, VirtAddr start, VirtAddr end,
                        CpuMask extra_mask) {
  // Linux-style heuristic: a handful of page flushes for small ranges, a
  // full flush otherwise. Per-VA flushes also evict matching *global*
  // entries, which matters when global mappings are modified — the caller
  // widens the mask past the task's own cores for that case, because a
  // global entry is cached wherever the *sharing group* ran, not just
  // where this task did.
  constexpr uint32_t kMaxPageFlushes = 64;
  const CpuMask mask = (task.cpu_mask | CpuBit(task.last_core) | extra_mask) &
                       AllCoresMask(machine_->num_cores());
  if ((end - start) / kPageSize <= kMaxPageFlushes) {
    for (uint64_t va = start; va < end; va += kPageSize) {
      machine_->ShootdownVa(static_cast<VirtAddr>(va), mask, task.last_core);
    }
  } else {
    machine_->ShootdownAll(mask, task.last_core);
  }
}

CpuMask Kernel::SharerMaskFor(VirtAddr va, PtpId ptp, bool global) const {
  // The rmap tells the daemons *which PTPs* map a frame; which *cores*
  // may cache the translation follows from the tasks whose L1 points at
  // that PTP — exactly the sharer set a shared PTP accumulates.
  CpuMask mask = CpuBit(active_core_);
  const uint32_t slot = PtpSlotIndex(va);
  for (const auto& t : tasks_) {
    if (!t->alive || t->mm == nullptr) {
      continue;
    }
    if (t->mm->page_table().l1(slot).ptp != ptp) {
      continue;
    }
    mask |= t->cpu_mask | CpuBit(t->last_core);
  }
  if (global) {
    mask |= zygote_cpu_mask_;
  }
  return mask & AllCoresMask(machine_->num_cores());
}

CpuMask Kernel::GlobalFlushExtraMask(Task& task, VirtAddr start,
                                     VirtAddr end) const {
  if (!vm_->config().share_tlb_global) {
    return 0;
  }
  for (const VmArea* vma : task.mm->VmasOverlapping(start, end)) {
    if (vma->global) {
      return zygote_cpu_mask_;
    }
  }
  return 0;
}

void Kernel::SyncShootdowns() { machine_->DrainAllPendingFlushes(); }

void Kernel::SetActiveCore(uint32_t core_id) {
  active_core_ = core_id;
  if (machine_->num_nodes() > 1) {
    phys_->set_preferred_node(machine_->NodeOfCore(core_id));
  }
}

Task* Kernel::CreateTask(const std::string& name) {
  auto task = std::make_unique<Task>();
  task->pid = next_pid_++;
  task->name = name;
  task->asid = AllocateAsid();
  task->mm = std::make_unique<MmStruct>(ptp_allocator_.get(), phys_.get(),
                                        &counters_, kDomainUser, &rmap_);
  task->mm->page_table().set_tracer(tracer_.get());
  task->mm->page_table().set_zram(zram_.get());
  Task* raw = task.get();
  tasks_.push_back(std::move(task));
  return raw;
}

ForkOutcome Kernel::Fork(Task& parent, const std::string& name) {
  SAT_CHECK(parent.mm != nullptr && "fork from a task without an mm");
  SetActiveCore(parent.last_core);
  TraceSpan span(tracer_.get(), TraceEventType::kFork, parent.pid);
  ForkOutcome outcome;
  Task* child = CreateTask(name);

  // Section 3.2.2: children of the zygote get the zygote-child flag and
  // with it client access to the zygote domain; their user mappings live
  // in the zygote domain like the parent's.
  if (parent.zygote || parent.zygote_child) {
    child->zygote_child = true;
    child->dacr = parent.dacr;
    child->mm->set_user_domain(parent.mm->user_domain());
  }

  while (true) {
    try {
      OopsRecoveryScope oops_scope;
      outcome.stats = vm_->Fork(*parent.mm, *child->mm, FlushFnFor(parent));
    } catch (const KernelOops& oops) {
      // Corrupt parent page table discovered mid-copy: roll the fork back
      // exactly as an ENOMEM would, then contain the damage (which kills
      // the parent as a sharer of the damaged PTP).
      vm_->ExitMm(*child->mm);
      counters_.forks_failed++;
      SAT_CHECK(tasks_.back().get() == child &&
                "fork rollback: child is not the youngest task");
      ReleaseAsid(child->asid);
      if (next_asid_ == static_cast<uint32_t>(child->asid) + 1) {
        next_asid_--;
      }
      tasks_.pop_back();
      next_pid_--;
      span.set_args(0, 0);
      outcome.error = Errno::kKilled;
      OopsKillByDamage(oops.damage, &parent);
      SyncShootdowns();
      return outcome;
    }
    if (outcome.stats.ok) {
      break;
    }
    // ENOMEM mid-copy: tear the partial child address space down (regions,
    // PTEs, PTPs, sharer and frame references), then try to free memory.
    // The parent is immune — killing the forking task to satisfy its own
    // fork would be absurd.
    vm_->ExitMm(*child->mm);
    if (!RelieveMemoryPressure(&parent, child)) {
      // Nothing reclaimable and nobody to kill: the fork fails. Undo the
      // task creation entirely — the child is the youngest task, so its
      // pid and ASID are simply un-issued again.
      counters_.forks_failed++;
      SAT_CHECK(tasks_.back().get() == child &&
                "fork rollback: child is not the youngest task");
      ReleaseAsid(child->asid);
      // Un-issue the ASID number too when it was the newest, so a failed
      // fork leaves the allocator exactly where it started.
      if (next_asid_ == static_cast<uint32_t>(child->asid) + 1) {
        next_asid_--;
      }
      tasks_.pop_back();
      next_pid_--;
      span.set_args(0, 0);
      outcome.error = Errno::kEnomem;
      SyncShootdowns();
      return outcome;
    }
  }
  machine_->core(parent.last_core)
      .RunKernelPath(KernelPath::kFork, outcome.stats.cycles,
                     /*text_lines=*/180);
  span.set_args(child->pid, outcome.stats.ptes_copied);
  span.set_duration(outcome.stats.cycles);
  RunKswapdIfNeeded();
  outcome.child = child;
  SyncShootdowns();
  return outcome;
}

void Kernel::Exec(Task& task, const std::string& name, bool is_zygote) {
  SetActiveCore(task.last_core);
  Tracer::Emit(tracer_.get(), TraceEventType::kExec, task.pid, task.pid);
  vm_->ExitMm(*task.mm);
  FlushFnFor(task)();
  SyncShootdowns();
  task.name = name;
  task.zygote = is_zygote;
  task.zygote_child = false;
  if (is_zygote) {
    task.dacr = DomainAccessControl::ZygoteLike();
    task.mm->set_user_domain(kDomainZygote);
  } else {
    task.dacr = DomainAccessControl::StockDefault();
    task.mm->set_user_domain(kDomainUser);
  }
}

void Kernel::Exit(Task& task) {
  SAT_CHECK(task.alive && "exit of a task that is already dead");
  SetActiveCore(task.last_core);
  Tracer::Emit(tracer_.get(), TraceEventType::kExit, task.pid, task.pid);
  vm_->ExitMm(*task.mm);
  FlushFnFor(task)();
  if (task.zygote && vm_->config().share_tlb_global) {
    // The zygote's global entries are not ASID-tagged, so the ASID flush
    // above leaves them cached on every core the sharing group ever ran
    // on. Zygote exit is rare enough to pay for a full shootdown there.
    machine_->ShootdownAll(
        (zygote_cpu_mask_ | task.cpu_mask | CpuBit(task.last_core)) &
            AllCoresMask(machine_->num_cores()),
        task.last_core);
  }
  // Drain before the ASID goes back in the pool: reissuing an ASID whose
  // flush is still queued would alias the new task with this one.
  SyncShootdowns();
  ReleaseAsid(task.asid);
  task.alive = false;
  task.cpu_mask = 0;
  for (Task*& current : current_) {
    if (current == &task) {
      current = nullptr;
    }
  }
}

SyscallResult<VirtAddr> Kernel::Mmap(Task& task, MmapRequest request) {
  if (request.length == 0 || !IsPageAligned(request.length) ||
      !IsPageAligned(request.fixed_address)) {
    return SyscallResult<VirtAddr>::Err(Errno::kEinval);
  }
  SetActiveCore(task.last_core);
  // Section 3.2.2's global-region policy: the zygote mapping shared
  // library code marks the region global (only meaningful when TLB
  // sharing is on; the bit is still recorded so experiments can observe
  // the policy independent of the config).
  if (task.zygote && IsFileBacked(request.kind) && request.prot.execute) {
    request.global = true;
  }
  if (task.zygote) {
    request.zygote_preloaded = true;
  }
  while (true) {
    bool oom = false;
    const VirtAddr addr = vm_->Mmap(*task.mm, request, FlushFnFor(task), &oom);
    if (addr != 0) {
      RunKswapdIfNeeded();
      SyncShootdowns();
      if (!task.alive) {
        // A scrubd pass at the wake point found unrepairable damage whose
        // blast radius included the caller.
        return SyscallResult<VirtAddr>::Err(Errno::kKilled);
      }
      return SyscallResult<VirtAddr>::Ok(addr);
    }
    if (!oom) {
      // No free range in the address space.
      return SyscallResult<VirtAddr>::Err(Errno::kEnomem);
    }
    if (!RelieveMemoryPressure(&task)) {
      // ENOMEM with nothing left to free.
      return SyscallResult<VirtAddr>::Err(Errno::kEnomem);
    }
  }
}

SyscallResult<void> Kernel::Munmap(Task& task, VirtAddr start,
                                   uint32_t length) {
  if (length == 0 || !IsPageAligned(start) || !IsPageAligned(length)) {
    return SyscallResult<void>::Err(Errno::kEinval);
  }
  if (task.mm->VmasOverlapping(start, start + length).empty()) {
    return SyscallResult<void>::Err(Errno::kEfault);
  }
  SetActiveCore(task.last_core);
  // A global mapping's stale entries live on the whole sharing group's
  // cores; the vmas are gone after the unmap, so widen the mask now.
  const CpuMask extra = GlobalFlushExtraMask(task, start, start + length);
  while (true) {
    bool oom = false;
    vm_->Munmap(*task.mm, start, length, FlushFnFor(task), &oom);
    if (!oom) {
      break;
    }
    if (!RelieveMemoryPressure(&task)) {
      // Nothing left to free and the unmap's unshare step cannot proceed:
      // the caller is the last resort (its teardown completes the unmap).
      OomKill(task);
      return SyscallResult<void>::Err(Errno::kKilled);
    }
  }
  FlushRange(task, start, start + length, extra);
  SyncShootdowns();
  return SyscallResult<void>::Ok();
}

SyscallResult<void> Kernel::Mprotect(Task& task, VirtAddr start,
                                     uint32_t length, VmProt prot) {
  if (length == 0 || !IsPageAligned(start) || !IsPageAligned(length)) {
    return SyscallResult<void>::Err(Errno::kEinval);
  }
  if (task.mm->VmasOverlapping(start, start + length).empty()) {
    return SyscallResult<void>::Err(Errno::kEfault);
  }
  SetActiveCore(task.last_core);
  const CpuMask extra = GlobalFlushExtraMask(task, start, start + length);
  while (true) {
    bool oom = false;
    vm_->Mprotect(*task.mm, start, length, prot, FlushFnFor(task), &oom);
    if (!oom) {
      break;
    }
    if (!RelieveMemoryPressure(&task)) {
      OomKill(task);
      return SyscallResult<void>::Err(Errno::kKilled);
    }
  }
  FlushRange(task, start, start + length, extra);
  SyncShootdowns();
  return SyscallResult<void>::Ok();
}

SyscallResult<void> Kernel::Madvise(Task& task, VirtAddr start,
                                    uint32_t length, MadviseAdvice advice) {
  if (length == 0 || !IsPageAligned(start) || !IsPageAligned(length)) {
    return SyscallResult<void>::Err(Errno::kEinval);
  }
  if (task.mm->VmasOverlapping(start, start + length).empty()) {
    return SyscallResult<void>::Err(Errno::kEfault);
  }
  // Split at the boundaries by removing and re-inserting the covered
  // pieces with the flag flipped. RemoveRange is pure region bookkeeping;
  // no PTE changes, so nothing to flush and nothing can fail.
  const bool mergeable = advice == MadviseAdvice::kMergeable;
  for (VmArea piece : task.mm->RemoveRange(start, start + length)) {
    piece.mergeable = mergeable;
    task.mm->InsertVma(piece);
  }
  return SyscallResult<void>::Ok();
}

TouchStatus Kernel::TouchPageStatus(Task& task, VirtAddr va,
                                    AccessType access) {
  return TouchAndMaybeStore(task, va, access, nullptr);
}

TouchStatus Kernel::TouchAndMaybeStore(Task& task, VirtAddr va,
                                       AccessType access,
                                       const uint64_t* store) {
  SAT_CHECK(task.mm != nullptr && "touch through a task without an mm");
  SetActiveCore(task.last_core);
  MaybeInjectChaos();
  PageTable& pt = task.mm->page_table();
  // Every kernel entry on the touch path runs under a recovery scope: a
  // corrupt descriptor or swap slot becomes a KernelOops that unwinds to
  // the catch below, which kills only the sharers of the damaged state
  // and quarantines it — the rest of the machine keeps running.
  OopsRecoveryScope oops_scope;
  try {
    // Each iteration either succeeds, makes fault progress, or frees
    // memory; the cap only guards against a livelocked fault handler.
    for (int attempt = 0; attempt < 64; ++attempt) {
      if (const SectionDesc* section = pt.SectionAt(va)) {
        // Served at the first level: no PTE exists (or may be installed)
        // under a live section. Sections map read-only code, so only a
        // write is refused — and a real write would have cleared the
        // section via mprotect first.
        if (access == AccessType::kWrite ||
            (access == AccessType::kExecute && !section->executable)) {
          return TouchStatus::kSigSegv;
        }
        RunKswapdIfNeeded();
        SyncShootdowns();
        return task.alive ? TouchStatus::kOk : TouchStatus::kOopsKill;
      }
      const auto ref = pt.FindPte(va);
      if (ref.has_value() && !ValidateOrRepairSite(*ref)) {
        SAT_OOPS_CHECK(
            false && "unrepairable corrupt PTE at touch",
            (OopsDamage{OopsDamage::Kind::kPtp, ref->ptp->id()}));
      }
      if (ref.has_value() && ref->ptp->hw(ref->index).valid()) {
        const HwPte hw = ref->ptp->hw(ref->index);
        const bool l1_write_block = vm_->config().hw_l1_write_protect &&
                                    pt.SlotNeedsCopy(va) &&
                                    access == AccessType::kWrite;
        bool allowed = !l1_write_block;
        if (allowed) {
          switch (access) {
            case AccessType::kRead:
              allowed = hw.perm() != PtePerm::kNone;
              break;
            case AccessType::kWrite:
              allowed = hw.perm() == PtePerm::kReadWrite;
              break;
            case AccessType::kExecute:
              allowed = hw.perm() != PtePerm::kNone && hw.executable();
              break;
          }
        }
        if (allowed) {
          // Emulated referenced/dirty bits: the hardware format has none,
          // so the "MMU" sets them in the shadow PTE on access. The
          // swap-out aging pass harvests young (second chance) and uses
          // dirty to decide whether a swap-cached page can be dropped
          // without recompressing.
          LinuxPte sw = ref->ptp->sw(ref->index);
          const bool need_dirty =
              access == AccessType::kWrite && !sw.dirty();
          if (!sw.young() || need_dirty) {
            sw.set_young(true);
            if (access == AccessType::kWrite) {
              sw.set_dirty(true);
            }
            pt.UpdatePte(va, hw, sw, /*allow_shared=*/true);
          }
          if (store != nullptr) {
            // The store retires the instant the access is allowed —
            // before the daemon wake point below, where ksmd could
            // otherwise merge the page between the fault and the store
            // and the new content would land on a stable frame.
            const FrameNumber frame = MappedFrameOf(hw, ref->index);
            SAT_CHECK(frame != phys_->zero_frame());
            SAT_CHECK(!phys_->frame(frame).ksm_stable);
            phys_->frame(frame).content = *store;
          }
          if (numa_ != nullptr) {
            // The page-granular access path has no hardware walker, but
            // numad's placement policy still needs to see which node
            // walked which PTP (and the remote/replica split reported by
            // bench_numa counts these logical walks the same way).
            numa_->ResolveWalk(*ref->ptp, ref->index,
                               machine_->NodeOfCore(task.last_core));
          }
          RunKswapdIfNeeded();
          SyncShootdowns();
          if (!task.alive) {
            // The access itself succeeded, but a scrubd pass at the wake
            // point found unrepairable damage whose blast radius included
            // the toucher.
            return TouchStatus::kOopsKill;
          }
          return TouchStatus::kOk;
        }
      }
      MemoryAbort abort;
      abort.status = (ref.has_value() && ref->ptp->hw(ref->index).valid())
                         ? FaultStatus::kPermission
                         : FaultStatus::kTranslation;
      abort.fault_address = va;
      abort.access = access;
      abort.is_prefetch_abort = access == AccessType::kExecute;
      const FaultOutcome outcome =
          vm_->HandleFault(*task.mm, abort, FlushFnFor(task));
      SyncShootdowns();  // fault-handler exit
      if (outcome.ok) {
        continue;
      }
      if (!outcome.oom) {
        return TouchStatus::kSigSegv;
      }
      // The fault handler could not allocate. Reclaim / kill and retry;
      // the toucher itself is a legitimate victim (no immunity), and if
      // nothing else can be freed it falls on its own sword, Linux-style.
      if (!RelieveMemoryPressure(nullptr)) {
        OomKill(task);
        return TouchStatus::kOomKill;
      }
      if (!task.alive) {
        return TouchStatus::kOomKill;  // we were the chosen victim
      }
    }
    SAT_CHECK(false && "TouchPage made no progress");
    return TouchStatus::kSigSegv;
  } catch (const KernelOops& oops) {
    OopsKillByDamage(oops.damage, &task);
    SyncShootdowns();
    return TouchStatus::kOopsKill;
  }
}

bool Kernel::TouchPage(Task& task, VirtAddr va, AccessType access) {
  return TouchPageStatus(task, va, access) == TouchStatus::kOk;
}

TouchStatus Kernel::WritePage(Task& task, VirtAddr va, uint64_t value) {
  // A successful write access always lands on a private writable frame
  // (the fault path COWed away from anything shared, including stable
  // frames); the simulated content is stamped as part of the access.
  return TouchAndMaybeStore(task, va, AccessType::kWrite, &value);
}

ReclaimStats Kernel::ReclaimFileCache(uint32_t target) {
  // Each cleared PTE is flushed over its PTP's sharer set (not a blind
  // all-cores broadcast), attributed to the core whose kernel entry is
  // doing the reclaiming.
  const ReclaimStats stats = reclaimer_->ReclaimFileCache(
      target, [this](VirtAddr va, PtpId ptp, bool global) {
        machine_->ShootdownVa(va, SharerMaskFor(va, ptp, global),
                              active_core_);
      });
  SyncShootdowns();  // daemon tick
  return stats;
}

uint32_t Kernel::SwapOutAnonPages(uint32_t target) {
  if (!zram_->enabled()) {
    return 0;
  }
  const uint32_t freed = swap_mgr_->SwapOut(
      target, [this](VirtAddr va, PtpId ptp, bool global) {
        machine_->ShootdownVa(va, SharerMaskFor(va, ptp, global),
                              active_core_);
      });
  SyncShootdowns();  // daemon tick
  return freed;
}

uint32_t Kernel::RunKsmScan() {
  std::vector<KsmScanTarget> targets;
  for (const auto& task : tasks_) {
    Task* t = task.get();
    if (!t->alive || t->mm == nullptr) {
      continue;
    }
    targets.push_back(KsmScanTarget{t->mm.get(), t->pid, FlushFnFor(*t)});
  }
  const uint32_t merged = ksm_->ScanOnce(targets);
  SyncShootdowns();  // daemon tick
  return merged;
}

uint32_t Kernel::RunHugeScan() {
  std::vector<HugeScanTarget> targets;
  for (const auto& task : tasks_) {
    Task* t = task.get();
    if (!t->alive || t->mm == nullptr) {
      continue;
    }
    targets.push_back(HugeScanTarget{t->mm.get(), t->pid, FlushFnFor(*t)});
  }
  const uint32_t collapsed = huge_->ScanOnce(targets);
  SyncShootdowns();  // daemon tick
  return collapsed;
}

uint32_t Kernel::MapZygoteSections(Task& task) {
  if (!huge_enabled_) {
    return 0;
  }
  SAT_CHECK(task.mm != nullptr);
  MmStruct& mm = *task.mm;
  PageTable& pt = mm.page_table();
  // Snapshot the candidate code regions (the loop below loads cache pages,
  // which never mutates the region list, but a snapshot keeps that a
  // non-assumption).
  struct Candidate {
    VirtAddr start;
    VirtAddr end;
    FileId file;
    uint32_t first_file_page;
    bool global;
  };
  std::vector<Candidate> candidates;
  mm.ForEachVma([&](const VmArea& vma) {
    // The preload set's code: read-only, executable, file-backed, mapped
    // at 4 KB (the 64 KB file-block policy caches the file at a
    // granularity GetOrLoad must not mix with).
    if (vma.zygote_preloaded && vma.prot.execute && !vma.prot.write &&
        IsFileBacked(vma.kind) && !vma.use_large_pages) {
      candidates.push_back(Candidate{vma.start, vma.end, vma.file,
                                     vma.FilePageFor(vma.start), vma.global});
    }
  });
  const bool share_global = vm_->config().share_tlb_global;
  uint32_t mapped = 0;
  for (const Candidate& c : candidates) {
    const uint64_t first =
        (static_cast<uint64_t>(c.start) + kSectionSize - 1) &
        ~static_cast<uint64_t>(kSectionSize - 1);
    for (uint64_t va64 = first; va64 + kSectionSize <= c.end;
         va64 += kSectionSize) {
      const auto va = static_cast<VirtAddr>(va64);
      if (pt.SectionAt(va) != nullptr) {
        continue;  // already mapped (idempotent re-run)
      }
      // Bring the whole megabyte of file content into the page cache
      // *before* allocating the permanent frames, so a load failure is a
      // clean skip with nothing to unwind.
      const uint32_t file_page =
          c.first_file_page + static_cast<uint32_t>((va64 - c.start) >> kPageShift);
      bool resident = true;
      for (uint32_t i = 0; i < kPtesPerSection && resident; ++i) {
        bool hard = false;
        resident =
            page_cache_->GetOrLoad(c.file, file_page + i, &hard) !=
            PageCache::kNoFrame;
      }
      if (!resident) {
        counters_.huge_collapse_failures++;
        continue;
      }
      const std::optional<FrameNumber> base =
          phys_->TryAllocContiguousFrames(kPtesPerSection, FrameKind::kKernel);
      if (!base.has_value()) {
        // No megabyte of contiguous frames this early would be unusual,
        // but fragmentation is a clean abandon like any failed collapse.
        counters_.huge_collapse_failures++;
        continue;
      }
      for (uint32_t i = 0; i < kPtesPerSection; ++i) {
        const FrameNumber src = page_cache_->Lookup(c.file, file_page + i);
        SAT_CHECK(src != PageCache::kNoFrame);
        phys_->frame(*base + i).content = phys_->frame(src).content;
      }
      // Any 4 KB PTEs already faulted in under the half would shadow the
      // section; drop them (they refault harmlessly if the section is
      // ever cleared again).
      pt.ClearRange(va, va + kSectionSize);
      pt.InstallSection(va, *base, c.global && share_global,
                        /*executable=*/true, mm.user_domain());
      counters_.huge_sections_mapped++;
      mapped++;
    }
  }
  if (mapped > 0) {
    FlushFnFor(task)();
    SyncShootdowns();
  }
  return mapped;
}

void Kernel::RunKswapdIfNeeded() {
  // ksmd shares kswapd's wake points but fires on a wake-count period,
  // not the watermark — merging saves memory even before pressure. Placed
  // ahead of the zram gate so KSM works with swap disabled.
  if (ksm_enabled_ && !in_ksmd_ && !in_kswapd_ &&
      ++ksm_wake_ticks_ >= ksm_wake_interval_) {
    ksm_wake_ticks_ = 0;
    in_ksmd_ = true;
    RunKsmScan();
    in_ksmd_ = false;
  }
  // scrubd shares the wake points the same way: a wake-count period, not
  // the watermark — corruption does not wait for memory pressure. Callers
  // on a task's behalf must re-check task.alive afterwards: a pass that
  // found unrepairable damage kills the sharers right here.
  if (scrub_enabled_ && !in_scrubd_ && !in_ksmd_ && !in_kswapd_ &&
      ++scrub_wake_ticks_ >= scrub_wake_interval_) {
    scrub_wake_ticks_ = 0;
    in_scrubd_ = true;
    RunScrubPass();
    in_scrubd_ = false;
  }
  // huged: the same wake-count pattern once more. Promotion is a reach
  // optimization, not a pressure response, so it fires regardless of the
  // watermark (and regardless of whether swap exists).
  if (huge_enabled_ && !in_huged_ && !in_scrubd_ && !in_ksmd_ &&
      !in_kswapd_ && ++huge_wake_ticks_ >= huge_wake_interval_) {
    huge_wake_ticks_ = 0;
    in_huged_ = true;
    RunHugeScan();
    in_huged_ = false;
  }
  // numad: placement is a locality optimization, not a pressure response,
  // so it too fires on a wake-count period regardless of the watermark.
  if (numad_enabled_ && !in_numad_ && !in_huged_ && !in_scrubd_ &&
      !in_ksmd_ && !in_kswapd_ &&
      ++numad_wake_ticks_ >= numad_wake_interval_) {
    numad_wake_ticks_ = 0;
    in_numad_ = true;
    RunNumadPass();
    in_numad_ = false;
  }
  if (numa_ != nullptr) {
    SyncNumaCounters();
  }
  if (in_kswapd_ || !zram_->enabled()) {
    return;
  }
  // Wake below the global low watermark, or — on a multi-node machine —
  // when any single node sinks below its per-node low watermark (its
  // allocations are already silently falling back to remote nodes even
  // though the machine-wide count looks healthy).
  bool node_pressure = false;
  if (kswapd_node_low_watermark_ > 0) {
    for (uint32_t node = 0; node < phys_->num_nodes(); ++node) {
      node_pressure |=
          phys_->free_frames_on_node(node) < kswapd_node_low_watermark_;
    }
  }
  if (phys_->free_frames() >= kswapd_low_watermark_ && !node_pressure) {
    return;
  }
  in_kswapd_ = true;
  counters_.kswapd_runs++;
  TraceSpan span(tracer_.get(), TraceEventType::kKswapd);
  uint64_t freed_total = 0;
  const auto below_high = [this] {
    if (phys_->free_frames() < kswapd_high_watermark_) {
      return true;
    }
    if (kswapd_node_high_watermark_ > 0) {
      for (uint32_t node = 0; node < phys_->num_nodes(); ++node) {
        if (phys_->free_frames_on_node(node) < kswapd_node_high_watermark_) {
          return true;
        }
      }
    }
    return false;
  };
  while (below_high()) {
    // Page-table replicas first (pure redundancy: dropping one costs a
    // few remote walks, not a refetch or a decompress fault), then clean
    // file pages (refetchable), anonymous swap-out last (costs
    // compression now and a decompress fault later). kswapd never
    // OOM-kills; if no pass makes progress it goes back to sleep and the
    // allocation paths handle the shortfall.
    uint64_t freed = 0;
    if (numa_ != nullptr) {
      freed += numa_->ReclaimReplicas(kSwapOutBatch);
    }
    if (below_high()) {
      freed += ReclaimFileCache(kSwapOutBatch).pages_reclaimed;
    }
    if (below_high()) {
      freed += SwapOutAnonPages(kSwapOutBatch);
    }
    freed_total += freed;
    if (freed == 0) {
      break;
    }
  }
  counters_.kswapd_pages += freed_total;
  span.set_args(freed_total, phys_->free_frames());
  in_kswapd_ = false;
  SyncShootdowns();  // daemon tick
}

uint32_t Kernel::RunNumadPass() {
  if (numa_ == nullptr) {
    return 0;
  }
  counters_.numad_runs++;
  const uint32_t actions = numa_->RunPass();
  SyncNumaCounters();
  SyncShootdowns();  // daemon tick
  return actions;
}

void Kernel::SyncNumaCounters() {
  counters_.numa_alloc_fallbacks = phys_->numa_fallbacks();
  counters_.numa_cross_node_runs = phys_->numa_cross_node_runs();
}

void Kernel::MaybeInjectChaos() {
  FaultInjector& inj = *fault_injector_;
  if (inj.ShouldCorrupt(CorruptSite::kPteWord)) {
    const std::optional<PtpId> id = ptp_allocator_->AnyLiveId(inj.Rand64());
    if (id.has_value()) {
      PageTablePage& ptp = ptp_allocator_->Get(*id);
      uint32_t index = static_cast<uint32_t>(inj.Rand64() % kPtesPerPtp);
      // Bias the flip toward a live descriptor: rot in a word that maps
      // nothing (and shadows nothing) is semantically inert, and page
      // tables are sparse enough that a uniform pick would mostly land
      // there. Real corruption studies weight by payload for the same
      // reason.
      for (uint32_t probe = 0; probe < kPtesPerPtp; ++probe) {
        const uint32_t i = (index + probe) % kPtesPerPtp;
        if (ptp.hw(i).valid() || ptp.sw(i).raw() != 0) {
          index = i;
          break;
        }
      }
      const uint32_t bit = static_cast<uint32_t>(inj.Rand64() % 32);
      ptp.CorruptHwForChaos(index, 1u << bit);
    }
  }
  if (inj.ShouldCorrupt(CorruptSite::kZramByte)) {
    const std::optional<SwapSlotId> slot = zram_->AnyLiveSlot(inj.Rand64());
    if (slot.has_value()) {
      const uint32_t byte = static_cast<uint32_t>(inj.Rand64() % 8);
      uint64_t flip = (inj.Rand64() & 0xffull) << (8 * byte);
      if (flip == 0) {
        flip = 1ull << (8 * byte);
      }
      zram_->CorruptSlotForChaos(*slot, flip);
    }
  }
  if (inj.ShouldCorrupt(CorruptSite::kTlbTag)) {
    const uint32_t core_id =
        static_cast<uint32_t>(inj.Rand64() % machine_->num_cores());
    MainTlb& tlb = machine_->core(core_id).main_tlb();
    const uint32_t set = static_cast<uint32_t>(inj.Rand64() % tlb.num_sets());
    const uint32_t way = static_cast<uint32_t>(inj.Rand64() % tlb.ways());
    TlbEntry& entry = tlb.EntryAtForChaos(set, way);
    if (entry.valid) {
      switch (inj.Rand64() % 4) {
        case 0:
          entry.vpn ^= 1u << (inj.Rand64() % 20);
          break;
        case 1:
          entry.asid = static_cast<Asid>(entry.asid ^
                                         (1u << (inj.Rand64() % 8)));
          break;
        case 2:
          entry.global = !entry.global;
          break;
        case 3:
          entry.frame ^= 1u << (inj.Rand64() % 16);
          break;
      }
    }
  }
  // Appended after the original sites so an un-ruled kNumaReplica never
  // perturbs the PRNG stream of existing chaos configurations.
  if (numa_ != nullptr && inj.ShouldCorrupt(CorruptSite::kNumaReplica)) {
    const uint64_t pick = inj.Rand64();
    const uint32_t index = static_cast<uint32_t>(inj.Rand64() % kPtesPerPtp);
    const uint32_t bit = static_cast<uint32_t>(inj.Rand64() % 32);
    numa_->CorruptReplicaForChaos(pick, index, 1u << bit);
  }
}

bool Kernel::ScrubSiteNow(PageTablePage& ptp, uint32_t index) {
  return scrubber_->ScrubSite(ptp, index, BuildScrubContext()) !=
         ScrubSiteResult::kUnrepairable;
}

bool Kernel::ValidateOrRepairSite(const PteRef& ref) {
  const HwPte hw = ref.ptp->hw(ref.index);
  const LinuxPte sw = ref.ptp->sw(ref.index);
  bool suspicious;
  if (hw.valid()) {
    suspicious = !sw.present();
    if (!suspicious) {
      const uint8_t perm_raw = static_cast<uint8_t>(hw.perm());
      suspicious = perm_raw == 0 || perm_raw == 3;
    }
    if (!suspicious) {
      const FrameNumber frame = MappedFrameOf(hw, ref.index);
      if (frame >= phys_->total_frames()) {
        suspicious = true;
      } else {
        const PageFrame& meta = phys_->frame(frame);
        switch (meta.kind) {
          case FrameKind::kAnon:
          case FrameKind::kFileCache:
          case FrameKind::kZero:
          case FrameKind::kKernel:
            break;
          default:
            suspicious = true;
            break;
        }
        if (!suspicious && hw.perm() == PtePerm::kReadWrite &&
            (frame == phys_->zero_frame() || meta.ksm_stable)) {
          suspicious = true;  // COW-only frames are never writable
        }
      }
    }
  } else {
    // Invalid hardware entry over a present shadow entry: the validity
    // bits rotted off a live mapping (a legal invalid entry is either
    // empty or a swap entry, both non-present).
    suspicious = sw.present();
  }
  if (!suspicious) {
    // No rmap cross-check here: this runs on every touch, and the rmap
    // walk is what the suspicion-driven ScrubSiteNow path is for.
    return true;
  }
  return ScrubSiteNow(*ref.ptp, ref.index);
}

uint32_t Kernel::RunScrubPass() {
  counters_.scrub_runs++;
  // PTPs validated per pass: large enough to cover a small system in one
  // pass, small enough that a wake point stays cheap on a big one.
  constexpr uint32_t kScrubPtpBudget = 64;
  const ScrubPassResult result =
      scrubber_->RunPass(BuildScrubContext(), kScrubPtpBudget);
  uint32_t repairs = result.repairs;
  repairs += ScrubTlbs();
  // Unrepairable damage is acted on after the walk, never during it: the
  // kills below tear down page tables the walk may still be indexing.
  for (const ScrubSiteRef& site : result.unrepairable_sites) {
    if (ptp_allocator_->GetIfLive(site.ptp) == nullptr) {
      continue;  // an earlier kill this pass already tore it down
    }
    counters_.scrub_unrepairable++;
    OopsKillByDamage(OopsDamage{OopsDamage::Kind::kPtp, site.ptp}, nullptr);
  }
  for (const SwapSlotId slot : result.unrepairable_slots) {
    if (!zram_->SlotLive(slot)) {
      continue;
    }
    counters_.scrub_unrepairable++;
    OopsKillByDamage(OopsDamage{OopsDamage::Kind::kSwapSlot, slot}, nullptr);
  }
  if (numa_ != nullptr) {
    // Replica coherence sweep (after the kill loop, so destroyed PTPs
    // have already dropped their sets): every replica word is compared
    // against its master; a majority against the master repairs the
    // master, anything else re-converges the replicas. Full coverage
    // each pass — the audit requires replicas bit-identical afterwards.
    repairs += numa_->ScrubReplicaSweep([this](PtpId ptp, uint32_t index) {
      FlushScrubSite(ptp, index, /*va_hint=*/0);
    });
  }
  counters_.frames_quarantined = phys_->quarantined_frames();
  SyncShootdowns();
  return repairs;
}

ScrubContext Kernel::BuildScrubContext() const {
  // One walk over every live task's L1 table up front; the per-PTP lambdas
  // the scrubber calls per suspicious site then cost a hash lookup, not a
  // task scan.
  struct L1Facts {
    DomainId domain = kDomainUser;
    bool need_copy = false;
  };
  auto facts = std::make_shared<std::unordered_map<PtpId, L1Facts>>();
  for (const auto& t : tasks_) {
    if (!t->alive || t->mm == nullptr) {
      continue;
    }
    const PageTable& pt = t->mm->page_table();
    for (uint32_t slot = 0; slot < kUserPtpSlots; ++slot) {
      const L1Entry& entry = pt.l1(slot);
      if (!entry.present()) {
        continue;
      }
      L1Facts& f = (*facts)[entry.ptp];
      f.domain = entry.domain;
      f.need_copy = f.need_copy || entry.need_copy;
    }
  }
  ScrubContext ctx;
  ctx.share_tlb_global = vm_->config().share_tlb_global;
  ctx.hw_l1_write_protect = vm_->config().hw_l1_write_protect;
  ctx.domain_of = [facts](PtpId ptp) {
    const auto it = facts->find(ptp);
    return it == facts->end() ? kDomainUser : it->second.domain;
  };
  ctx.need_copy_of = [facts](PtpId ptp) {
    const auto it = facts->find(ptp);
    return it != facts->end() && it->second.need_copy;
  };
  if (numa_ != nullptr) {
    // Replicas as a repair source: before declaring a site unrepairable
    // the scrubber consults the majority word across {master, replicas}.
    ctx.replica_majority_of = [this](PtpId ptp, uint32_t index) {
      return numa_->ReplicaMajorityWord(ptp, index);
    };
  }
  return ctx;
}

void Kernel::FlushScrubSite(PtpId ptp, uint32_t index, VirtAddr va_hint) {
  VirtAddr va = va_hint;
  if (va == 0) {
    // The rmap did not know the address; recover it from any live task's
    // L1 slot referencing the PTP (sharers map it at the same address —
    // the zygote model).
    for (const auto& t : tasks_) {
      if (!t->alive || t->mm == nullptr) {
        continue;
      }
      const PageTable& pt = t->mm->page_table();
      for (uint32_t slot = 0; slot < kUserPtpSlots && va == 0; ++slot) {
        if (pt.l1(slot).ptp == ptp) {
          va = PtpSlotBase(slot) + index * kPageSize;
        }
      }
      if (va != 0) {
        break;
      }
    }
  }
  if (va == 0) {
    return;  // unreferenced PTP: no TLB can be caching it
  }
  // global=true widens the mask over the zygote group's cores — the
  // repaired entry's old global bit is exactly what may have rotted, so
  // assume the worst.
  machine_->ShootdownVa(va, SharerMaskFor(va, ptp, /*global=*/true),
                        active_core_);
}

uint32_t Kernel::ScrubTlbs() {
  uint32_t flushed = 0;
  const auto backs_entry = [&](const Task& t, const TlbEntry& entry,
                               VirtAddr va) {
    const PageTable& pt = t.mm->page_table();
    const auto ref = pt.FindPte(va);
    if (!ref.has_value()) {
      return false;
    }
    const HwPte hw = ref->ptp->hw(ref->index);
    if (!hw.valid()) {
      return false;
    }
    if ((entry.size_pages == kPtesPerLargePage) != hw.large()) {
      return false;
    }
    const FrameNumber frame = entry.size_pages == kPtesPerLargePage
                                  ? hw.frame()
                                  : MappedFrameOf(hw, ref->index);
    return entry.frame == frame && entry.perm == hw.perm() &&
           entry.executable == hw.executable() &&
           entry.global == hw.global() &&
           entry.domain == pt.l1(PtpSlotIndex(va)).domain;
  };
  for (uint32_t c = 0; c < machine_->num_cores(); ++c) {
    MainTlb& tlb = machine_->core(c).main_tlb();
    for (uint32_t set = 0; set < tlb.num_sets(); ++set) {
      for (uint32_t way = 0; way < tlb.ways(); ++way) {
        const TlbEntry& entry = tlb.EntryAt(set, way);
        if (!entry.valid) {
          continue;
        }
        const VirtAddr va = entry.vpn << kPageShift;
        if (!IsUserAddress(va)) {
          tlb.FlushVa(va);  // no modelled mapping is outside user space
          counters_.scrub_repairs++;
          flushed++;
          continue;
        }
        bool ok = false;
        for (const auto& t : tasks_) {
          if (!t->alive || t->mm == nullptr) {
            continue;
          }
          if (!entry.global && t->asid != entry.asid) {
            continue;
          }
          if (backs_entry(*t, entry, va)) {
            ok = true;
            break;
          }
        }
        if (!ok) {
          // Stale or rotten (possibly legitimately stale under a pending
          // batched flush — flushing early is always safe).
          tlb.FlushVa(va);
          counters_.scrub_repairs++;
          flushed++;
        }
      }
    }
  }
  return flushed;
}

void Kernel::CollectPtpSharers(PtpId ptp, std::vector<Task*>* victims) {
  for (const auto& t : tasks_) {
    if (!t->alive || t->mm == nullptr) {
      continue;
    }
    const PageTable& pt = t->mm->page_table();
    for (uint32_t slot = 0; slot < kUserPtpSlots; ++slot) {
      if (pt.l1(slot).ptp == ptp) {
        victims->push_back(t.get());
        break;
      }
    }
  }
}

void Kernel::OopsKillByDamage(const OopsDamage& damage, Task* offender) {
  std::vector<Task*> victims;
  switch (damage.kind) {
    case OopsDamage::Kind::kNone:
      break;
    case OopsDamage::Kind::kPtp: {
      const PtpId ptp = static_cast<PtpId>(damage.id);
      CollectPtpSharers(ptp, &victims);
      const PageTablePage* page = ptp_allocator_->GetIfLive(ptp);
      if (page != nullptr) {
        phys_->QuarantineFrame(page->frame());
      }
      break;
    }
    case OopsDamage::Kind::kFrame: {
      const FrameNumber frame = static_cast<FrameNumber>(damage.id);
      if (frame < phys_->total_frames()) {
        for (const RmapEntry& entry : rmap_.MappingsOf(frame)) {
          CollectPtpSharers(entry.ptp, &victims);
        }
        phys_->QuarantineFrame(frame);
      }
      break;
    }
    case OopsDamage::Kind::kSwapSlot: {
      const SwapSlotId slot = static_cast<SwapSlotId>(damage.id);
      // Victims: every task whose page table holds a swap PTE naming the
      // slot. (The swap-cache reference, if any, is torn down with them.)
      for (const auto& t : tasks_) {
        if (!t->alive || t->mm == nullptr) {
          continue;
        }
        const PageTable& pt = t->mm->page_table();
        bool references = false;
        for (uint32_t s = 0; s < kUserPtpSlots && !references; ++s) {
          const L1Entry& l1 = pt.l1(s);
          if (!l1.present()) {
            continue;
          }
          const PageTablePage& page = ptp_allocator_->Get(l1.ptp);
          for (uint32_t i = 0; i < kPtesPerPtp; ++i) {
            const LinuxPte& sw = page.sw(i);
            if (sw.is_swap() && sw.swap_slot() == slot) {
              references = true;
              break;
            }
          }
        }
        if (references) {
          victims.push_back(t.get());
        }
      }
      break;
    }
  }
  if (offender != nullptr &&
      std::find(victims.begin(), victims.end(), offender) == victims.end()) {
    victims.push_back(offender);
  }
  // Damage reaching the zygote itself is unrecoverable: every future app
  // is forked from that address space, so killing it (or limping on with
  // it corrupt) would be a lie. Zygote *children* are ordinary victims.
  for (const Task* victim : victims) {
    if (victim->zygote) {
      SAT_PANIC("oops damage reaches the zygote address space");
    }
  }
  for (Task* victim : victims) {
    if (!victim->alive) {
      continue;  // double-listed, or torn down by an earlier kill
    }
    counters_.oops_kills++;
    Tracer::Emit(tracer_.get(), TraceEventType::kOomKill, victim->pid,
                 victim->pid, TaskRssPages(*victim));
    victim->oops_killed = true;
    Exit(*victim);
  }
  counters_.frames_quarantined = phys_->quarantined_frames();
}

uint64_t Kernel::TaskRssPages(const Task& task) const {
  return task.mm == nullptr ? 0 : task.mm->page_table().PresentPteCount();
}

Task* Kernel::PickOomVictim(const Task* immune, const Task* immune2) {
  Task* victim = nullptr;
  uint64_t victim_rss = 0;
  for (const auto& candidate : tasks_) {
    Task* t = candidate.get();
    if (!t->alive || t->zygote || t == immune || t == immune2 ||
        t->mm == nullptr) {
      continue;  // the zygote is sacred (Android's oom_score_adj analogue)
    }
    const uint64_t rss = TaskRssPages(*t);
    // Largest RSS wins; ties go to the younger task (higher pid), which
    // matches "kill the most recently spawned of equals".
    if (victim == nullptr || rss > victim_rss ||
        (rss == victim_rss && t->pid > victim->pid)) {
      victim = t;
      victim_rss = rss;
    }
  }
  return victim;
}

void Kernel::OomKill(Task& victim) {
  counters_.oom_kills++;
  Tracer::Emit(tracer_.get(), TraceEventType::kOomKill, victim.pid,
               victim.pid, TaskRssPages(victim));
  victim.oom_killed = true;
  Exit(victim);
}

bool Kernel::RelieveMemoryPressure(const Task* immune, const Task* immune2) {
  // Stage 0: page-table replicas are pure redundancy — dropping a set
  // costs a few remote walks later, nothing else. Always the first
  // sacrifice.
  if (numa_ != nullptr && numa_->ReclaimReplicas(kDirectReclaimBatch) > 0) {
    return true;
  }
  // Stage 1: direct reclaim of clean file-cache pages. Their contents are
  // refetchable, so dropping them is free apart from future soft faults.
  counters_.direct_reclaims++;
  const ReclaimStats stats = ReclaimFileCache(kDirectReclaimBatch);
  Tracer::Emit(tracer_.get(), TraceEventType::kDirectReclaim, 0,
               stats.pages_reclaimed, phys_->free_frames());
  if (stats.pages_reclaimed > 0) {
    return true;
  }
  // Stage 2: swap out anonymous pages to the compressed store. More
  // expensive than dropping clean file pages (compression now, a
  // decompress fault later) but far cheaper than killing someone.
  if (SwapOutAnonPages(kSwapOutBatch) > 0) {
    return true;
  }
  // Stage 3: the OOM killer.
  Task* victim = PickOomVictim(immune, immune2);
  if (victim == nullptr) {
    return false;
  }
  OomKill(*victim);
  return true;
}

AuditReport Kernel::AuditInvariants() const {
  AuditInput input;
  input.phys = phys_.get();
  input.page_cache = page_cache_.get();
  input.ptps = ptp_allocator_.get();
  input.rmap = &rmap_;
  input.zram = zram_.get();
  input.lru = lru_.get();
  input.hw_l1_write_protect = vm_->config().hw_l1_write_protect;
  input.ksm_audited = true;
  if (numa_ != nullptr) {
    input.numa_audited = true;
    numa_->ForEachReplica([&](PtpId id, const NumaEngine::Replica& replica) {
      AuditReplica snap;
      snap.ptp = id;
      snap.node = replica.node;
      snap.frame = replica.frame;
      snap.hw_raw.assign(replica.words.begin(), replica.words.end());
      input.replicas.push_back(std::move(snap));
    });
  }
  ksm_->ForEachStable([&](uint64_t content, FrameNumber frame) {
    input.ksm_stable.emplace_back(content, frame);
  });
  for (const auto& task : tasks_) {
    if (!task->alive || task->mm == nullptr) {
      continue;
    }
    input.spaces.push_back(AuditSpace{task->mm.get(), task->pid, task->asid,
                                      task->IsZygoteLike(), task->dacr});
  }
  // A TLB entry may legally be stale while a covering flush sits in a
  // pending queue; hand the auditor the queues so it can tell that
  // window from a genuine under-flush.
  for (const PendingFlush& p : machine_->PendingFlushesSnapshot()) {
    AuditPendingFlush pending;
    pending.kind =
        static_cast<AuditPendingFlush::Kind>(static_cast<uint8_t>(p.kind));
    pending.asid = p.asid;
    pending.va = p.va;
    pending.cpu_mask = p.mask;
    input.pending_flushes.push_back(pending);
  }
  for (uint32_t c = 0; c < machine_->num_cores(); ++c) {
    Core& core = machine_->core(c);
    const MainTlb& main = core.main_tlb();
    for (uint32_t set = 0; set < main.num_sets(); ++set) {
      for (uint32_t way = 0; way < main.ways(); ++way) {
        const TlbEntry& entry = main.EntryAt(set, way);
        if (entry.valid) {
          input.tlb_entries.push_back(AuditTlbEntry{entry, c, "main"});
        }
      }
    }
    const auto collect_micro = [&](const MicroTlb& micro, const char* which) {
      for (uint32_t i = 0; i < micro.num_entries(); ++i) {
        if (micro.EntryAt(i).valid) {
          input.tlb_entries.push_back(AuditTlbEntry{micro.EntryAt(i), c, which});
        }
      }
    };
    collect_micro(core.micro_itlb(), "micro-i");
    collect_micro(core.micro_dtlb(), "micro-d");
  }
  return sat::AuditInvariants(input);
}

void Kernel::ScheduleTo(Task& task, uint32_t core_id) {
  SAT_CHECK(task.alive && "scheduling a dead task");
  SAT_CHECK(core_id < machine_->num_cores());
  // Context switch is a batched-shootdown sync point: no stale window may
  // outlive the switch into another address space.
  SyncShootdowns();
  current_[core_id] = &task;
  task.cpu_mask |= CpuBit(core_id);
  task.last_core = core_id;
  SetActiveCore(core_id);
  if (task.IsZygoteLike()) {
    zygote_cpu_mask_ |= CpuBit(core_id);
  }
  Tracer::Emit(tracer_.get(), TraceEventType::kContextSwitch, task.pid,
               task.asid, core_id);
  machine_->core(core_id).SwitchContext(ContextFor(task));
}

void Kernel::SetCurrent(Task& task, uint32_t core_id) {
  SAT_CHECK(core_id < machine_->num_cores());
  SyncShootdowns();
  current_[core_id] = &task;
  task.cpu_mask |= CpuBit(core_id);
  task.last_core = core_id;
  SetActiveCore(core_id);
  if (task.IsZygoteLike()) {
    zygote_cpu_mask_ |= CpuBit(core_id);
  }
  machine_->core(core_id).SetContext(ContextFor(task));
}

}  // namespace sat
