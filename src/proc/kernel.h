// Kernel: the facade that owns every simulated subsystem — physical
// memory, the page cache, the PTP allocator, the VM manager, the CPU core,
// and the task table — and exposes the system-call surface the experiments
// drive (fork, exec, exit, mmap, munmap, mprotect) plus two ways of
// touching memory:
//
//   * TouchPage — page-granular access that faults and populates exactly
//     like a real access but skips the TLB/cache/cycle machinery. Used by
//     the footprint-replay experiments (Figures 10-12, Table 3), where
//     only page-fault and page-table counts matter.
//   * Through the Core (kernel().core().FetchLine/Load/Store after
//     ScheduleTo) — the full cycle-level pipeline, used for the launch and
//     IPC experiments (Figures 7-8, 13).

#ifndef SRC_PROC_KERNEL_H_
#define SRC_PROC_KERNEL_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/arch/check.h"
#include "src/huge/huge.h"
#include "src/hw/machine.h"
#include "src/ksm/ksm.h"
#include "src/mem/fault_injector.h"
#include "src/mem/page_cache.h"
#include "src/mem/phys_memory.h"
#include "src/mem/zram.h"
#include "src/numa/numa.h"
#include "src/pt/ptp.h"
#include "src/stats/cost_model.h"
#include "src/stats/counters.h"
#include "src/proc/syscall.h"
#include "src/proc/task.h"
#include "src/trace/trace.h"
#include "src/vm/audit.h"
#include "src/vm/reclaim.h"
#include "src/vm/scrub.h"
#include "src/vm/swap.h"
#include "src/vm/vm_manager.h"

namespace sat {

struct KernelParams {
  uint64_t phys_bytes = 512ull * 1024 * 1024;
  // Capacity of the compressed swap store (zram disksize). 0 disables
  // swap entirely: no swap PTEs, no kswapd, reclaim behaves as before.
  uint64_t swap_bytes = 0;
  VmConfig vm;
  CoreConfig core;
  // Number of simulated cores (the paper's Tegra 3 has four; its
  // experiments pin to one). TLB maintenance becomes an IPI shootdown
  // over each address space's cpumask when > 1.
  uint32_t num_cores = 1;
  // NUMA nodes: cores and physical frames are split into this many equal
  // contiguous blocks. Off-node L2 misses and cross-node IPIs pay the
  // cost model's remote surcharges. Must divide num_cores.
  uint32_t num_nodes = 1;
  // How TLB shootdowns reach remote cores: kImmediate IPIs on every
  // flush; kBatched defers remote flushes to per-core queues drained at
  // the kernel's sync points (context switch, syscall return, fault
  // return, daemon tick) — one IPI per distinct target per drain.
  ShootdownPolicy shootdown_policy = ShootdownPolicy::kImmediate;
  CostModel costs = CostModel::Default();
  // Event tracing (off by default; never charges simulated cycles).
  TraceConfig trace;
  // Seed for the deterministic allocation-failure injector (inert until a
  // rule is set via kernel.fault_injector().SetRule(...)).
  uint64_t fault_injection_seed = 42;
  // KSM same-page merging (src/ksm). When enabled, a ksmd scan pass runs
  // from the same wake points as kswapd, every `ksm_wake_interval`-th
  // wake-up; RunKsmScan() also drives passes directly. The daemon itself
  // is always constructed so madvise(MERGEABLE) is always accepted.
  bool ksm_enabled = false;
  uint32_t ksm_wake_interval = 1024;
  // scrubd corruption scrubbing (src/vm/scrub). When enabled, an
  // incremental scrub pass — PTPs cross-checked against the rmap, zram
  // slots against their checksums, TLB entries against the page tables —
  // runs from the kswapd/ksmd wake points every `scrub_wake_interval`-th
  // wake-up. RunScrubPass() also drives passes directly.
  bool scrub = false;
  uint32_t scrub_wake_interval = 512;
  // huged large-page promotion (src/huge). When enabled, a khugepaged-
  // style pass — collapsing eligible 64 KB runs of 4 KB PTEs into large
  // PTEs, migrating frames when they are not contiguous — runs from the
  // same wake points every `huge_wake_interval`-th wake-up, and the
  // zygote's preloaded code is eagerly mapped with 1 MB sections at boot.
  // RunHugeScan() also drives passes directly.
  bool huge = false;
  uint32_t huge_wake_interval = 1024;
  // Let huged trade KSM dedup back for reach: a collapse may copy stable
  // frames' content into the new contiguous block (an unmerge). Off by
  // default — deduplicated memory usually wins on a memory-tight phone.
  bool huge_unmerge_ksm = false;
  // NUMA page-table placement (src/numa). On a multi-node machine the
  // engine is always constructed (it resolves walks and audits replicas);
  // the numad daemon only ticks when the policy is not kLocal. numad runs
  // from the same wake points as the other daemons every
  // `numad_wake_interval`-th wake-up; RunNumadPass() also drives passes
  // directly. A PTP is promoted (kReplicate) or migrated (kMigrate) after
  // `numad_remote_threshold` remote walks between passes.
  PtPlacement pt_placement = PtPlacement::kLocal;
  uint32_t numad_wake_interval = 1024;
  uint32_t numad_remote_threshold = 8;
};

// How a TouchPage access ended.
enum class TouchStatus : uint8_t {
  kOk = 0,
  kSigSegv,   // unresolvable fault (bad address / permission)
  kOomKill,   // the touching task was OOM-killed while faulting
  kOopsKill,  // a recoverable kernel oops killed the task (corruption in
              // state it shared; see SAT_OOPS_CHECK / OopsDamage)
};

// The madvise subset the simulator models.
enum class MadviseAdvice : uint8_t {
  kMergeable,    // MADV_MERGEABLE: register the range with KSM
  kUnmergeable,  // MADV_UNMERGEABLE: deregister (already-merged pages stay
                 // merged until written; Linux additionally breaks them)
};

class Kernel {
 public:
  explicit Kernel(const KernelParams& params);

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // -------------------------------------------------------------------------
  // Process lifecycle.
  // -------------------------------------------------------------------------

  // Creates a task with an empty address space (the init process).
  Task* CreateTask(const std::string& name);

  // Forks `parent`. Copies the address space under the configured kernel
  // (stock / copied-PTEs / shared-PTPs), propagates the zygote-child flag
  // and DACR, assigns a fresh ASID, and charges the modelled fork cost to
  // the core. The outcome carries the child and the per-fork statistics
  // (Table 4's cycles/PTPs/PTEs); on kEnomem — after direct reclaim and
  // OOM-kills (never of the parent) have failed to free enough memory —
  // `child` is nullptr and every piece of partially-built child state
  // (task slot, pid, ASID, page tables, frame references) is rolled back.
  ForkOutcome Fork(Task& parent, const std::string& name);

  // Replaces the task's address space (execve). `is_zygote` sets the
  // zygote flag and grants the zygote-domain DACR (Section 3.2.2).
  void Exec(Task& task, const std::string& name, bool is_zygote);

  // Tears down the task's address space and frees its page tables
  // (performing the unshare-at-free logic, Section 3.1.2 case 5).
  void Exit(Task& task);

  // -------------------------------------------------------------------------
  // The mmap family.
  // -------------------------------------------------------------------------

  // The kernel-side global-region policy rides on mmap (Section 3.2.2): a
  // file-backed executable mapping created by a task with the zygote flag
  // is marked global (when TLB sharing is configured). Under memory
  // pressure the kernel reclaims / OOM-kills (never `task`) and retries.
  //
  // Errnos: Mmap — kEinval (zero-length or unaligned request), kEnomem
  // (no free range, or memory exhausted even after reclaim). Munmap —
  // kEinval (unaligned/zero range), kEfault (the range touches no
  // mapping), kKilled (the unmap's unshare step could not allocate and
  // the caller was OOM-killed as the very last resort). Mprotect — like
  // Munmap.
  SyscallResult<VirtAddr> Mmap(Task& task, MmapRequest request);
  SyscallResult<void> Munmap(Task& task, VirtAddr start, uint32_t length);
  SyscallResult<void> Mprotect(Task& task, VirtAddr start, uint32_t length,
                               VmProt prot);

  // Flips the MERGEABLE flag on [start, start+length), splitting regions
  // at the boundaries. Pure region bookkeeping: no PTE is touched, so it
  // can never OOM. Errnos like Munmap's (kEinval, kEfault).
  SyscallResult<void> Madvise(Task& task, VirtAddr start, uint32_t length,
                              MadviseAdvice advice);

  // -------------------------------------------------------------------------
  // Memory access.
  // -------------------------------------------------------------------------

  // Page-granular access on behalf of `task` (no TLB/cache simulation).
  // Distinguishes a bad access (kSigSegv) from death under memory
  // pressure (kOomKill: the task was chosen — or fell back to — as the
  // OOM victim while faulting; it is no longer alive).
  TouchStatus TouchPageStatus(Task& task, VirtAddr va, AccessType access);

  // Convenience wrapper: true iff the access succeeded.
  bool TouchPage(Task& task, VirtAddr va, AccessType access);

  // A write access that also stamps the page's content tag (the
  // simulator's stand-in for the bytes written — see PageFrame::content).
  // Two pages written with the same value are "byte-identical" to KSM.
  TouchStatus WritePage(Task& task, VirtAddr va, uint64_t value);

  // Installs `task` on a core with full context-switch modelling.
  void ScheduleTo(Task& task, uint32_t core_id = 0);
  // Installs without switch costs (experiment setup).
  void SetCurrent(Task& task, uint32_t core_id = 0);

  Task* current(uint32_t core_id = 0) { return current_[core_id]; }

  // -------------------------------------------------------------------------
  // Subsystem access.
  // -------------------------------------------------------------------------

  // Reclaims up to `target` clean page-cache pages, unmapping them from
  // every mapping page table via the reverse map, with TLB shootdowns.
  ReclaimStats ReclaimFileCache(uint32_t target);

  // Swaps out up to `target` anonymous pages to the compressed store,
  // scanning the inactive-anonymous LRU with second-chance aging (see
  // SwapManager). Returns the pages actually freed; 0 when swap is
  // disabled or nothing is evictable.
  uint32_t SwapOutAnonPages(uint32_t target);

  // One full ksmd pass over every live task's mergeable regions (also run
  // periodically from the kswapd wake points when ksm_enabled). Returns
  // the number of PTEs merged.
  uint32_t RunKsmScan();

  // One incremental scrubd pass (also run periodically from the kswapd
  // wake points when KernelParams::scrub is set): walks a batch of live
  // PTPs validating hardware descriptors against the shadow entries and
  // the rmap, checks zram slot checksums, and cross-checks main-TLB
  // entries against the page tables. Repairs what it can (rebuild from
  // the rmap, drop-and-refault clean file pages, re-duplicate a cached
  // swap slot, flush a rotten TLB entry); what it cannot repair
  // oops-kills exactly the sharers of the damaged state. Returns the
  // number of repairs made this pass.
  uint32_t RunScrubPass();

  // One huged pass over every live task's anonymous regions (also run
  // periodically from the kswapd wake points when KernelParams::huge is
  // set): collapses eligible 64 KB runs into large PTEs. Returns blocks
  // collapsed.
  uint32_t RunHugeScan();

  // Eagerly maps `task`'s zygote-preloaded executable regions with 1 MB
  // L1 sections (boot-time reach for the code every app inherits): each
  // fully covered, resident 1 MB half gets a permanent kernel-owned
  // contiguous copy of the file content, the underlying 4 KB PTEs are
  // cleared, and the section descriptor serves translations from then
  // on. Returns sections mapped; 0 when KernelParams::huge is off.
  uint32_t MapZygoteSections(Task& task);

  // One numad placement pass (also run periodically from the kswapd wake
  // points when pt_placement is not kLocal on a multi-node machine):
  // promotes walk-hot PTPs to replicated or migrates sole-owner PTPs to
  // their dominant accessor's node, per KernelParams::pt_placement.
  // Returns promotions + migrations; 0 on a single-node machine.
  uint32_t RunNumadPass();

  // The allocate → direct-reclaim → OOM-kill chain (run automatically by
  // the fault/fork/mmap paths; public so tests can drive it). Returns
  // true if it freed anything: first a direct-reclaim pass over the file
  // cache, then — if that freed nothing — the OOM killer picks the
  // largest-RSS task that is not the zygote and not in `immune` and
  // kills it. Returns false when there is nothing left to reclaim or
  // kill. `immune2` exists for fork, which must protect both the parent
  // and the half-built child.
  bool RelieveMemoryPressure(const Task* immune, const Task* immune2 = nullptr);

  // The victim the OOM killer would pick right now (nullptr when none).
  Task* PickOomVictim(const Task* immune, const Task* immune2 = nullptr);

  // A task's resident set in pages (valid PTEs across its page table) —
  // the OOM killer's badness metric.
  uint64_t TaskRssPages(const Task& task) const;

  // Deterministic allocation-failure injection (inert until rules are
  // set); wired into PhysicalMemory's fallible allocators.
  FaultInjector& fault_injector() { return *fault_injector_; }

  // Cross-checks every redundant piece of kernel state — frame reference
  // counts, rmap, PTP sharer counts, NEED_COPY write protection, TLB
  // contents, DACR/domain assignments — over all live tasks and cores.
  // Read-only; see src/vm/audit.h. Tests assert report.ok().
  AuditReport AuditInvariants() const;

  Machine& machine() { return *machine_; }
  Core& core(uint32_t index = 0) { return machine_->core(index); }
  uint32_t num_cores() const { return machine_->num_cores(); }
  PhysicalMemory& phys() { return *phys_; }
  PageCache& page_cache() { return *page_cache_; }
  PtpAllocator& ptp_allocator() { return *ptp_allocator_; }
  ReverseMap& rmap() { return rmap_; }
  ZramStore& zram() { return *zram_; }
  FrameLru& lru() { return *lru_; }
  KsmDaemon& ksm() { return *ksm_; }
  HugeDaemon& huge() { return *huge_; }
  // The NUMA placement engine; nullptr on a single-node machine.
  NumaEngine* numa() { return numa_.get(); }
  uint32_t kswapd_low_watermark() const { return kswapd_low_watermark_; }
  uint32_t kswapd_high_watermark() const { return kswapd_high_watermark_; }
  VmManager& vm() { return *vm_; }
  KernelCounters& counters() { return counters_; }
  const CostModel& costs() const { return costs_; }
  const VmConfig& vm_config() const { return vm_->config(); }

  // The event tracer, always constructed (a disabled tracer records
  // nothing); its clock is the machine's total cycle count.
  Tracer& tracer() { return *tracer_; }

  const std::vector<std::unique_ptr<Task>>& tasks() const { return tasks_; }

 private:
  // Hands out an ASID no live task holds (scanning from next_asid_ and
  // wrapping). On rollover — the search passes 255 — every TLB is flushed
  // before the generation restarts, exactly like Linux/ARM's rollover.
  Asid AllocateAsid();
  // Returns a dead task's ASID to the allocator. Call only after the
  // ASID's TLB entries are flushed (pending queues drained): reissuing a
  // still-cached ASID would alias two address spaces.
  void ReleaseAsid(Asid asid);
  // The common access path: fault until the access is allowed, then (for
  // WritePage) stamp the frame's content before the daemon wake point.
  TouchStatus TouchAndMaybeStore(Task& task, VirtAddr va, AccessType access,
                                 const uint64_t* store);
  // Kills `victim`: counters, trace, oom_killed flag, then Exit.
  void OomKill(Task& victim);
  // The recoverable-oops back end: quarantines the damaged frame/PTP and
  // SIGKILL-style kills every task sharing the damaged state (plus
  // `offender`, the task whose kernel entry tripped the oops, if any).
  // Damage reaching the zygote's address space is treated as
  // unrecoverable and escalates to a kernel panic.
  void OopsKillByDamage(const OopsDamage& damage, Task* offender);
  // Every live task whose L1 references `ptp` (the oops blast radius).
  void CollectPtpSharers(PtpId ptp, std::vector<Task*>* victims);
  // Chaos injection (inert until a corrupt rule is set on the fault
  // injector): flips one seeded bit in a live PTE word, zram slot, or
  // main-TLB entry. Called once per TouchPage entry.
  void MaybeInjectChaos();
  // Scrubs one PTE site immediately (the touch path's detect-and-repair
  // step before it resorts to an oops). True when the site was repaired.
  bool ScrubSiteNow(PageTablePage& ptp, uint32_t index);
  // Cheap per-touch validation of the PTE about to be used; on suspicion
  // runs ScrubSiteNow. False only when the site is corrupt AND
  // unrepairable — the caller's cue to oops.
  bool ValidateOrRepairSite(const PteRef& ref);
  // The scrub context for the current pass: PTP -> L1 domain, resolved
  // from every live task's first-level table.
  ScrubContext BuildScrubContext() const;
  // Flush one repaired site over its sharer set (scrubd's TLB hook).
  void FlushScrubSite(PtpId ptp, uint32_t index, VirtAddr va_hint);
  // Cross-checks every core's main TLB against the page tables, flushing
  // entries that no longer match (chaos-rotted tags). Returns flush count.
  uint32_t ScrubTlbs();
  // Background-reclaim analogue: when free memory sinks below the low
  // watermark (and swap is enabled), reclaims file cache and swaps out
  // anonymous pages until the high watermark is restored or no further
  // progress is possible. Never OOM-kills. Called from the success paths
  // of TouchPage / Fork / Mmap (where a real kswapd would be woken).
  void RunKswapdIfNeeded();
  MmuContext ContextFor(Task& task);
  // The flush-current-process callback handed to VM operations: an ASID
  // shootdown over the task's cpumask.
  TlbFlushFn FlushFnFor(Task& task);
  // Precise range flush after PTE-clearing operations. `extra_mask` adds
  // cores beyond the task's own cpumask — the global-entry case, where
  // the stale translations live wherever the sharing group ran.
  void FlushRange(Task& task, VirtAddr start, VirtAddr end,
                  CpuMask extra_mask = 0);
  // The rmap-derived shootdown mask for a PTE edit at `va` through `ptp`:
  // every core used by any address space whose L1 points at that PTP,
  // plus (for global entries) every core the zygote sharing group ran on.
  CpuMask SharerMaskFor(VirtAddr va, PtpId ptp, bool global) const;
  // Extra flush targets for [start, end): the zygote group's cores when
  // the range covers a global mapping, else 0. Computed *before* the VM
  // operation drops the vma.
  CpuMask GlobalFlushExtraMask(Task& task, VirtAddr start, VirtAddr end) const;
  // A batched-shootdown sync point: drains every pending flush queue.
  void SyncShootdowns();

  // Records which core entered the kernel (every syscall, fault, and
  // schedule path calls this first): daemon shootdowns attribute their
  // IPIs here, and under NUMA the first-touch allocation preference
  // follows the entering core's node.
  void SetActiveCore(uint32_t core_id);

  CostModel costs_;
  KernelCounters counters_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<FaultInjector> fault_injector_;
  std::unique_ptr<PhysicalMemory> phys_;
  // Declared after phys_ (it observes frame lifecycle) and before zram_
  // (whose destructor frees pool frames, which notifies the observer).
  std::unique_ptr<FrameLru> lru_;
  std::unique_ptr<PageCache> page_cache_;
  std::unique_ptr<PtpAllocator> ptp_allocator_;
  std::unique_ptr<ZramStore> zram_;
  ReverseMap rmap_;
  std::unique_ptr<VmManager> vm_;
  std::unique_ptr<Reclaimer> reclaimer_;
  std::unique_ptr<SwapManager> swap_mgr_;
  std::unique_ptr<KsmDaemon> ksm_;
  std::unique_ptr<HugeDaemon> huge_;
  std::unique_ptr<Scrubber> scrubber_;
  // Declared before machine_ (cores hold a resolver callback into the
  // engine) and after ptp_allocator_/phys_ (replica teardown unrefs
  // frames and reads PTP liveness).
  std::unique_ptr<NumaEngine> numa_;
  std::unique_ptr<Machine> machine_;
  // Declared after every subsystem: tasks are destroyed first, so page-
  // table teardown can still release swap slots and frames.
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<Task*> current_;
  Pid next_pid_ = 1;
  uint32_t next_asid_ = 1;
  // Which ASIDs are held by live tasks. AllocateAsid skips these: the
  // 8-bit space wraps after 255 tasks, and blindly reissuing a live ASID
  // lets a new address space hit the old one's TLB entries.
  std::array<bool, 256> asid_live_{};
  // The core driving the current kernel entry (syscall or fault) — the
  // initiator of any shootdown a daemon path issues on its behalf.
  uint32_t active_core_ = 0;
  // Every core any zygote-like task has run on: where global (shared
  // group) TLB entries may be cached.
  CpuMask zygote_cpu_mask_ = 0;
  // kswapd state: watermarks in frames, plus a reentrancy guard (the
  // reclaim work kswapd runs must not wake kswapd again).
  uint32_t kswapd_low_watermark_ = 0;
  uint32_t kswapd_high_watermark_ = 0;
  bool in_kswapd_ = false;
  // ksmd state: scans fire from the same wake points as kswapd but on a
  // wake-count period, not a watermark (KSM trades CPU for memory even
  // without pressure). The guard keeps a scan's own allocations (the lazy
  // PTP unshare) from waking another scan.
  bool ksm_enabled_ = false;
  uint32_t ksm_wake_interval_ = 0;
  uint32_t ksm_wake_ticks_ = 0;
  bool in_ksmd_ = false;
  // scrubd state: same wake-point pattern as ksmd. The guard keeps a
  // pass's own work (flushes, oops kills) from waking another pass.
  bool scrub_enabled_ = false;
  uint32_t scrub_wake_interval_ = 0;
  uint32_t scrub_wake_ticks_ = 0;
  bool in_scrubd_ = false;
  // huged state: same wake-point pattern again. The guard keeps a pass's
  // own allocations (contiguous blocks, unshare PTPs) from waking a
  // nested pass.
  bool huge_enabled_ = false;
  uint32_t huge_wake_interval_ = 0;
  uint32_t huge_wake_ticks_ = 0;
  bool in_huged_ = false;
  // numad state: same wake-point pattern. The guard keeps a pass's own
  // allocations (replica frames) from waking a nested pass.
  bool numad_enabled_ = false;
  uint32_t numad_wake_interval_ = 0;
  uint32_t numad_wake_ticks_ = 0;
  bool in_numad_ = false;
  // Per-node kswapd watermarks (multi-node machines only): a single node
  // can exhaust — pushing every allocation remote — while the global
  // count still looks healthy, so kswapd also watches each node.
  uint32_t kswapd_node_low_watermark_ = 0;
  uint32_t kswapd_node_high_watermark_ = 0;

  // Mirrors PhysicalMemory's NUMA allocator statistics into counters_
  // (sat_mem cannot depend on sat_stats, so the kernel carries them over).
  void SyncNumaCounters();
};

}  // namespace sat

#endif  // SRC_PROC_KERNEL_H_
