// Task: the simulated task_struct.

#ifndef SRC_PROC_TASK_H_
#define SRC_PROC_TASK_H_

#include <memory>
#include <string>

#include "src/arch/domain.h"
#include "src/arch/types.h"
#include "src/vm/mm.h"

namespace sat {

struct Task {
  Pid pid = 0;
  std::string name;
  std::unique_ptr<MmStruct> mm;
  Asid asid = 0;

  // Cores this task has run on since its last full TLB purge — the
  // mm_cpumask analogue bounding TLB-shootdown broadcasts. 64-bit, like
  // CpuMask: the machine scales to 64 cores.
  uint64_t cpu_mask = 0;
  uint32_t last_core = 0;

  // The paper's two new task_struct flags (Section 3.2.2): `zygote` is set
  // by exec when the zygote starts; `zygote_child` is set by fork for its
  // descendants.
  bool zygote = false;
  bool zygote_child = false;

  // Loaded into the simulated DACR on every switch to this task.
  DomainAccessControl dacr = DomainAccessControl::StockDefault();

  bool alive = true;
  // Set when the OOM killer (not a voluntary Exit) terminated the task.
  bool oom_killed = false;
  // Set when a recoverable kernel oops killed the task (blast-radius
  // containment for corrupted state it was sharing; see src/arch/check.h).
  bool oops_killed = false;

  bool IsZygoteLike() const { return zygote || zygote_child; }
};

}  // namespace sat

#endif  // SRC_PROC_TASK_H_
