#include "src/proc/scheduler.h"

#include <algorithm>

namespace sat {

Task* Scheduler::PickNext(const Task* current) {
  // Drop dead tasks lazily.
  run_queue_.erase(std::remove_if(run_queue_.begin(), run_queue_.end(),
                                  [](const Task* t) { return !t->alive; }),
                   run_queue_.end());
  if (run_queue_.empty()) {
    return nullptr;
  }
  if (cursor_ >= run_queue_.size()) {
    cursor_ = 0;
  }

  if (!group_zygote_like_ || current == nullptr) {
    Task* next = run_queue_[cursor_];
    cursor_ = (cursor_ + 1) % run_queue_.size();
    return next;
  }

  // Grouped policy: prefer the next runnable task in the same group
  // (zygote-like vs not) as the current one; fall back to round-robin.
  const bool group = current->IsZygoteLike();
  for (size_t probe = 0; probe < run_queue_.size(); ++probe) {
    const size_t index = (cursor_ + probe) % run_queue_.size();
    Task* candidate = run_queue_[index];
    if (candidate != current && candidate->IsZygoteLike() == group) {
      cursor_ = (index + 1) % run_queue_.size();
      return candidate;
    }
  }
  Task* next = run_queue_[cursor_];
  cursor_ = (cursor_ + 1) % run_queue_.size();
  return next;
}

Task* Scheduler::RunQuantum() {
  Task* current = kernel_->current();
  Task* next = PickNext(current);
  if (next == nullptr) {
    return nullptr;
  }
  if (next != current) {
    stats_.switches++;
    if (current != nullptr &&
        current->IsZygoteLike() != next->IsZygoteLike()) {
      stats_.cross_group_switches++;
    }
    kernel_->ScheduleTo(*next);
  }
  return next;
}

}  // namespace sat
