// The errno-style result types of the Kernel system-call surface.
//
// Every syscall returns a SyscallResult<T> (or ForkOutcome for fork):
// the value plus an Errno describing how the call ended. This replaces
// two older conventions — Mmap's 0-on-failure return and the silent
// OOM-kill inside Munmap/Mprotect (which callers could only detect by
// checking task.alive afterwards) — and it folds fork's per-call
// statistics into the return value, so no syscall leaves its outcome in
// shared kernel-level state that concurrent driver jobs would have to
// coordinate over.

#ifndef SRC_PROC_SYSCALL_H_
#define SRC_PROC_SYSCALL_H_

#include <cstdint>

#include "src/vm/vm_manager.h"

namespace sat {

struct Task;

// How a system call ended, errno-style.
enum class Errno : uint8_t {
  kOk = 0,
  kEnomem,   // allocation failed after reclaim / swap-out / OOM-kill
  kEfault,   // the range touches no mapping (bad address)
  kEinval,   // malformed arguments (unaligned or zero-length range)
  kKilled,   // the *calling* task was OOM-killed inside the syscall
};

const char* ErrnoName(Errno error);

// Value-plus-errno. `value` is always the T default on failure, so code
// ported from the old 0-on-failure convention keeps working off `.value`.
template <typename T>
struct SyscallResult {
  T value{};
  Errno error = Errno::kOk;

  bool ok() const { return error == Errno::kOk; }
  explicit operator bool() const { return ok(); }

  static SyscallResult Ok(T v) { return SyscallResult{v, Errno::kOk}; }
  static SyscallResult Err(Errno e) { return SyscallResult{T{}, e}; }
};

// Valueless syscalls (munmap, mprotect) carry only the errno.
template <>
struct SyscallResult<void> {
  Errno error = Errno::kOk;

  bool ok() const { return error == Errno::kOk; }
  explicit operator bool() const { return ok(); }

  static SyscallResult Ok() { return SyscallResult{Errno::kOk}; }
  static SyscallResult Err(Errno e) { return SyscallResult{e}; }
};

// Fork's result: the child and the per-fork statistics (Table 4's
// cycles/PTPs/PTEs), returned together. `child` is nullptr — and `error`
// kEnomem — when the copy failed even after reclaim and OOM-kills.
struct ForkOutcome {
  Task* child = nullptr;
  ForkResult stats;
  Errno error = Errno::kOk;

  bool ok() const { return error == Errno::kOk; }
  explicit operator bool() const { return ok(); }
};

}  // namespace sat

#endif  // SRC_PROC_SYSCALL_H_
