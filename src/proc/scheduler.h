// A small round-robin scheduler with the paper's portability fallback
// policy (Section 3.2.3): on architectures without ARM's domain model,
// shared TLB entries can still be protected by flushing on cross-group
// switches; grouping zygote-like processes together in the run order
// minimizes how often that happens. The `group_zygote_like` policy makes
// the scheduler exhaust one group before switching to the other, and the
// cross-group switch count quantifies the benefit.

#ifndef SRC_PROC_SCHEDULER_H_
#define SRC_PROC_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "src/proc/kernel.h"
#include "src/proc/task.h"

namespace sat {

struct SchedulerStats {
  uint64_t switches = 0;
  // Switches between a zygote-like and a non-zygote task (either way):
  // the switches that would force a TLB flush on a domain-less
  // architecture.
  uint64_t cross_group_switches = 0;
};

class Scheduler {
 public:
  Scheduler(Kernel* kernel, bool group_zygote_like)
      : kernel_(kernel), group_zygote_like_(group_zygote_like) {}

  void AddTask(Task* task) { run_queue_.push_back(task); }

  // Picks the next runnable task after `current` under the configured
  // policy; nullptr when the queue is empty.
  Task* PickNext(const Task* current);

  // Picks, switches the core to it, and updates statistics. Returns the
  // task now running (nullptr when idle).
  Task* RunQuantum();

  const SchedulerStats& stats() const { return stats_; }
  void ResetStats() { stats_ = SchedulerStats{}; }

 private:
  Kernel* kernel_;
  bool group_zygote_like_;
  std::vector<Task*> run_queue_;
  size_t cursor_ = 0;
  SchedulerStats stats_;
};

}  // namespace sat

#endif  // SRC_PROC_SCHEDULER_H_
