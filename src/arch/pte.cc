#include "src/arch/pte.h"

#include <sstream>

namespace sat {

std::string HwPte::ToString() const {
  if (!valid()) {
    return "HwPte{invalid}";
  }
  std::ostringstream os;
  os << "HwPte{frame=" << frame() << ", perm=";
  switch (perm()) {
    case PtePerm::kNone:
      os << "none";
      break;
    case PtePerm::kReadOnly:
      os << "ro";
      break;
    case PtePerm::kReadWrite:
      os << "rw";
      break;
  }
  os << (executable() ? ", x" : ", nx") << (global() ? ", global" : "")
     << (large() ? ", large" : "") << "}";
  return os.str();
}

}  // namespace sat
