// Basic architectural types and address-space constants for the simulated
// 32-bit ARMv7-A machine (modelled on the Cortex-A9 in the paper's Nexus 7).
//
// The simulated machine uses the classic Linux/ARM 3G/1G split: user
// virtual addresses run from 0 to 0xBFFFFFFF and the kernel owns the top
// gigabyte. The ARMv7 short-descriptor translation scheme has a 4096-entry
// first level (one entry per 1 MB "section" of virtual address space) and a
// 256-entry second level (one entry per 4 KB small page).
//
// Linux on ARM manages first-level entries in *pairs*: one 4 KB page-table
// page (PTP) holds two hardware second-level tables plus two parallel
// "Linux" shadow tables (for the dirty/young bits the hardware lacks), so a
// single PTP maps a 2 MB aligned region of virtual address space. That
// 2 MB unit is the granularity at which the paper shares page tables, and
// it is the granularity used throughout this simulation.

#ifndef SRC_ARCH_TYPES_H_
#define SRC_ARCH_TYPES_H_

#include <cstdint>

namespace sat {

// A 32-bit virtual address.
using VirtAddr = uint32_t;

// A physical address. Kept 64-bit so frame numbers never overflow in
// intermediate arithmetic even though the simulated machine is 32-bit.
using PhysAddr = uint64_t;

// Index of a 4 KB physical page frame.
using FrameNumber = uint32_t;

// Address-space identifier. ARMv7 ASIDs are 8 bits.
using Asid = uint8_t;

// ARM domain identifier, 0..15.
using DomainId = uint8_t;

// Process identifier in the simulated kernel.
using Pid = int32_t;

// Identifier of a simulated backing file (a shared-library segment, an oat
// file, ...). Negative values mean "no file" (anonymous memory).
using FileId = int32_t;
inline constexpr FileId kNoFile = -1;

// ---------------------------------------------------------------------------
// Page geometry.
// ---------------------------------------------------------------------------

inline constexpr uint32_t kPageShift = 12;
inline constexpr uint32_t kPageSize = 1u << kPageShift;          // 4 KB
inline constexpr uint32_t kPageOffsetMask = kPageSize - 1;

// ARMv7 "large page": 64 KB, implemented as 16 replicated consecutive
// second-level entries.
inline constexpr uint32_t kLargePageShift = 16;
inline constexpr uint32_t kLargePageSize = 1u << kLargePageShift;  // 64 KB
inline constexpr uint32_t kPtesPerLargePage = kLargePageSize / kPageSize;

// ARMv7 "section": 1 MB, mapped by a single first-level entry.
inline constexpr uint32_t kSectionShift = 20;
inline constexpr uint32_t kSectionSize = 1u << kSectionShift;     // 1 MB
inline constexpr uint32_t kPtesPerSection = kSectionSize / kPageSize;  // 256

// One hardware second-level table covers 1 MB (256 entries x 4 KB).
inline constexpr uint32_t kL2EntriesPerTable = 256;

// One Linux/ARM page-table page (PTP) covers 2 MB of virtual address space:
// two hardware tables plus their two shadow tables share a 4 KB frame.
inline constexpr uint32_t kPtpSpanShift = 21;
inline constexpr uint32_t kPtpSpan = 1u << kPtpSpanShift;         // 2 MB
inline constexpr uint32_t kPtesPerPtp = kPtpSpan / kPageSize;     // 512

// ---------------------------------------------------------------------------
// Virtual address-space layout.
// ---------------------------------------------------------------------------

inline constexpr VirtAddr kUserSpaceEnd = 0xC0000000u;   // exclusive
inline constexpr VirtAddr kKernelSpaceStart = kUserSpaceEnd;

// Number of 2 MB PTP slots covering the whole 4 GB address space, and the
// number covering user space only.
inline constexpr uint32_t kPtpSlots = 4096u / 2;                  // 2048
inline constexpr uint32_t kUserPtpSlots =
    static_cast<uint32_t>(static_cast<uint64_t>(kUserSpaceEnd) >> kPtpSpanShift);  // 1536

// ---------------------------------------------------------------------------
// Address helpers.
// ---------------------------------------------------------------------------

// Virtual page number of a 4 KB page.
constexpr uint32_t VirtPageNumber(VirtAddr va) { return va >> kPageShift; }

// Index of the 2 MB PTP slot containing `va`.
constexpr uint32_t PtpSlotIndex(VirtAddr va) { return va >> kPtpSpanShift; }

// Index of `va`'s PTE within its PTP (0..511).
constexpr uint32_t PteIndexInPtp(VirtAddr va) {
  return (va >> kPageShift) & (kPtesPerPtp - 1);
}

// First virtual address of the 2 MB slot with the given index.
constexpr VirtAddr PtpSlotBase(uint32_t slot) { return slot << kPtpSpanShift; }

// First address of the 1 MB section containing `va`, and the section's
// index (0 or 1) within its 2 MB PTP slot.
constexpr VirtAddr SectionAlignDown(VirtAddr va) {
  return va & ~(kSectionSize - 1);
}
constexpr uint32_t SectionHalfIndex(VirtAddr va) {
  return (va >> kSectionShift) & 1u;
}

constexpr VirtAddr PageAlignDown(VirtAddr va) { return va & ~kPageOffsetMask; }

constexpr VirtAddr PageAlignUp(VirtAddr va) {
  return (va + kPageSize - 1) & ~kPageOffsetMask;
}

constexpr bool IsPageAligned(VirtAddr va) { return (va & kPageOffsetMask) == 0; }

constexpr bool IsUserAddress(VirtAddr va) { return va < kUserSpaceEnd; }

constexpr PhysAddr FrameToPhys(FrameNumber frame) {
  return static_cast<PhysAddr>(frame) << kPageShift;
}

constexpr FrameNumber PhysToFrame(PhysAddr pa) {
  return static_cast<FrameNumber>(pa >> kPageShift);
}

// ---------------------------------------------------------------------------
// Access kinds, shared by the TLB, caches and fault handling.
// ---------------------------------------------------------------------------

enum class AccessType : uint8_t {
  kRead = 0,
  kWrite = 1,
  kExecute = 2,
};

constexpr const char* AccessTypeName(AccessType type) {
  switch (type) {
    case AccessType::kRead:
      return "read";
    case AccessType::kWrite:
      return "write";
    case AccessType::kExecute:
      return "execute";
  }
  return "?";
}

}  // namespace sat

#endif  // SRC_ARCH_TYPES_H_
