#include "src/arch/check.h"

#include <cstdio>
#include <cstdlib>

namespace sat {
namespace {

// Per-thread so parallel driver workers each get their own recovery
// window; a worker mid-oops must not flip a sibling's failures from
// abort to throw.
thread_local int g_recovery_depth = 0;

}  // namespace

OopsRecoveryScope::OopsRecoveryScope() { ++g_recovery_depth; }

OopsRecoveryScope::~OopsRecoveryScope() { --g_recovery_depth; }

bool OopsRecoveryScope::Active() { return g_recovery_depth > 0; }

void KernelPanic(const char* file, int line, const char* what) {
  std::fprintf(stderr, "%s:%d: KERNEL PANIC: %s\n", file, line, what);
  std::fflush(stderr);
  std::abort();
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "%s:%d: SAT_CHECK failed: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

void OopsFailed(const char* file, int line, const char* expr,
                OopsDamage damage) {
  if (!OopsRecoveryScope::Active()) {
    // No one offered to recover: keep the SAT_CHECK abort contract.
    std::fprintf(stderr, "%s:%d: SAT_CHECK failed: %s\n", file, line, expr);
    std::fflush(stderr);
    std::abort();
  }
  std::fprintf(stderr, "%s:%d: kernel oops (recovering): %s\n", file, line,
               expr);
  std::fflush(stderr);
  throw KernelOops{file, line, expr, damage};
}

}  // namespace internal
}  // namespace sat
