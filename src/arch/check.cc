#include "src/arch/check.h"

#include <cstdio>
#include <cstdlib>

namespace sat {
namespace internal {

void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "%s:%d: SAT_CHECK failed: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace sat
