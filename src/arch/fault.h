// Memory-abort reporting, modelled on the ARMv7 Fault Status Register (FSR)
// and Fault Address Register (FAR).
//
// On real hardware an instruction-fetch fault raises a prefetch abort and a
// data-access fault raises a data abort; in both cases the FSR encodes the
// cause (translation fault, permission fault, domain fault, ...) and the
// FAR holds the faulting virtual address. The simulation funnels both abort
// flavours through one MemoryAbort record; the handler dispatches on the
// FaultStatus exactly as the paper's modified kernel dispatches on the FSR.

#ifndef SRC_ARCH_FAULT_H_
#define SRC_ARCH_FAULT_H_

#include <cstdint>
#include <string>

#include "src/arch/types.h"

namespace sat {

enum class FaultStatus : uint8_t {
  kNone = 0,
  // No valid translation at any level ("translation fault"): the classic
  // page fault. The kernel's fault handler must populate the mapping.
  kTranslation,
  // A valid entry exists but its permission bits deny the access: COW
  // write faults and genuine protection violations land here.
  kPermission,
  // The DACR denies all access to the entry's domain. In the paper this is
  // the signal that a non-zygote process hit a global zygote-domain TLB
  // entry; the handler flushes the conflicting TLB entries and retries.
  kDomain,
  // The access hit an address with no memory region at all (SIGSEGV).
  kNoRegion,
};

constexpr const char* FaultStatusName(FaultStatus status) {
  switch (status) {
    case FaultStatus::kNone:
      return "none";
    case FaultStatus::kTranslation:
      return "translation";
    case FaultStatus::kPermission:
      return "permission";
    case FaultStatus::kDomain:
      return "domain";
    case FaultStatus::kNoRegion:
      return "no-region";
  }
  return "?";
}

// The record the abort handler receives: FSR + FAR + the abort flavour.
struct MemoryAbort {
  FaultStatus status = FaultStatus::kNone;
  VirtAddr fault_address = 0;   // FAR
  AccessType access = AccessType::kRead;
  bool is_prefetch_abort = false;  // instruction fetch vs data access

  bool faulted() const { return status != FaultStatus::kNone; }

  std::string ToString() const;
};

}  // namespace sat

#endif  // SRC_ARCH_FAULT_H_
