#include "src/arch/fault.h"

#include <iomanip>
#include <sstream>

namespace sat {

std::string MemoryAbort::ToString() const {
  std::ostringstream os;
  os << (is_prefetch_abort ? "PrefetchAbort" : "DataAbort") << "{"
     << FaultStatusName(status) << ", va=0x" << std::hex << std::setw(8)
     << std::setfill('0') << fault_address << std::dec << ", "
     << AccessTypeName(access) << "}";
  return os.str();
}

}  // namespace sat
