// The 32-bit ARM domain protection model (ARMv7-A short descriptors).
//
// A domain is a collection of memory regions. Each first-level entry names
// one of 16 domains; second-level entries and TLB entries inherit the
// domain of their parent first-level entry. The Domain Access Control
// Register (DACR) holds a 2-bit access field per domain for the *current*
// process:
//
//   kNoAccess — any access faults (a "domain fault"), regardless of the
//               entry's own permission bits;
//   kClient   — accesses are checked against the entry's permission bits;
//   kManager  — accesses bypass the permission bits entirely.
//
// The stock Linux/ARM kernel uses only a user domain and a kernel domain.
// The paper adds a third, the *zygote domain*, holding the global mappings
// of zygote-preloaded shared code: zygote-descended processes get client
// access, everything else gets no access, so a non-zygote process touching
// a stale global TLB entry takes a precise domain fault instead of silently
// using another address space's translation.

#ifndef SRC_ARCH_DOMAIN_H_
#define SRC_ARCH_DOMAIN_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/arch/types.h"

namespace sat {

inline constexpr uint32_t kNumDomains = 16;

// Well-known domain assignments in the simulated kernel.
inline constexpr DomainId kDomainKernel = 0;
inline constexpr DomainId kDomainUser = 1;
// The new domain introduced by the paper for zygote-preloaded shared code.
inline constexpr DomainId kDomainZygote = 2;

enum class DomainAccess : uint8_t {
  kNoAccess = 0,
  kClient = 1,
  kManager = 3,
};

// A DACR value: 16 two-bit access fields packed into 32 bits, exactly as on
// real hardware. Each task carries one of these in its control block; it is
// loaded into the (simulated) coprocessor register on context switch.
class DomainAccessControl {
 public:
  constexpr DomainAccessControl() = default;
  explicit constexpr DomainAccessControl(uint32_t raw) : raw_(raw) {}

  DomainAccess Get(DomainId domain) const {
    return static_cast<DomainAccess>((raw_ >> (2 * domain)) & 0x3u);
  }

  void Set(DomainId domain, DomainAccess access) {
    const uint32_t shift = 2u * domain;
    raw_ = (raw_ & ~(0x3u << shift)) | (static_cast<uint32_t>(access) << shift);
  }

  constexpr uint32_t raw() const { return raw_; }
  constexpr bool operator==(const DomainAccessControl& other) const = default;

  // The DACR every process starts with: manager access to the kernel domain
  // (the kernel polices itself via PTE permissions when it cares) and
  // client access to the user domain. No access to the zygote domain.
  static DomainAccessControl StockDefault() {
    DomainAccessControl dacr;
    dacr.Set(kDomainKernel, DomainAccess::kClient);
    dacr.Set(kDomainUser, DomainAccess::kClient);
    return dacr;
  }

  // The DACR of zygote-like (zygote and zygote-child) processes: adds
  // client access to the zygote domain.
  static DomainAccessControl ZygoteLike() {
    DomainAccessControl dacr = StockDefault();
    dacr.Set(kDomainZygote, DomainAccess::kClient);
    return dacr;
  }

  std::string ToString() const;

 private:
  uint32_t raw_ = 0;
};

}  // namespace sat

#endif  // SRC_ARCH_DOMAIN_H_
