// SAT_CHECK / SAT_OOPS / KernelPanic: the simulator's invariant net.
//
// The simulator's safety net — reference counts, sharer counts, COW
// discipline — must hold in every build. Plain assert() happens to stay
// live here because the top-level CMakeLists strips -DNDEBUG, but anything
// embedding these sources with standard Release flags would silently lose
// the net and corrupt state instead of stopping. Neither macro depends
// on NDEBUG at all: the condition is always evaluated.
//
// Two severities:
//
//  - SAT_CHECK(expr): unconditional. A failure prints the site and
//    aborts the whole process. Use it for states where continuing is
//    meaningless — broken allocator metadata, corrupt zygote state,
//    programming errors in the simulator itself.
//
//  - SAT_OOPS_CHECK(expr, damage): recoverable when an OopsRecoveryScope
//    is active on the current thread (the kernel opens one around each
//    syscall / fault entry). Inside a scope a failure throws KernelOops,
//    which the kernel catches to kill only the tasks that depend on the
//    damaged state, quarantine the damage, and keep serving everyone
//    else. Outside any scope it behaves exactly like SAT_CHECK, so unit
//    tests and embedders that never opt in keep the abort contract.
//
// The failure message includes the stringified condition, so the
//   SAT_CHECK(cond && "explanation");
// idiom carries the explanation into the abort output (and into the
// death-test expectations that pin these contracts).

#ifndef SRC_ARCH_CHECK_H_
#define SRC_ARCH_CHECK_H_

#include <cstdint>

namespace sat {

// What a recoverable oops found damaged, so the catcher can scope the
// kill set and quarantine precisely instead of guessing.
struct OopsDamage {
  enum class Kind : uint8_t {
    kNone = 0,   // no specific object; kill the current task only
    kFrame,      // id = FrameNumber of a corrupt physical frame
    kPtp,        // id = PtpId of a corrupt page-table page
    kSwapSlot,   // id = SwapSlotId of a corrupt zram slot
  };
  Kind kind = Kind::kNone;
  int64_t id = -1;
};

// Thrown by SAT_OOPS_CHECK inside an OopsRecoveryScope. Deliberately not
// derived from std::exception: nothing but the kernel's recovery handlers
// should catch it, and a stray catch (const std::exception&) must not
// swallow an oops by accident.
struct KernelOops {
  const char* file = nullptr;
  int line = 0;
  const char* what = nullptr;
  OopsDamage damage;
};

// Opens a recovery window on the current thread: SAT_OOPS_CHECK failures
// throw KernelOops instead of aborting while at least one scope is alive.
// Nests (syscall entry may sit above a fault handler's own scope).
class OopsRecoveryScope {
 public:
  OopsRecoveryScope();
  ~OopsRecoveryScope();
  OopsRecoveryScope(const OopsRecoveryScope&) = delete;
  OopsRecoveryScope& operator=(const OopsRecoveryScope&) = delete;

  // True while any scope is alive on this thread.
  static bool Active();
};

// Unconditional panic for states where recovery would lie: prints the
// reason dmesg-style and aborts even inside a recovery scope. Used when
// an oops handler discovers the damage reaches the zygote triple or
// allocator metadata.
[[noreturn]] void KernelPanic(const char* file, int line, const char* what);

namespace internal {

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);

// Throws KernelOops when a recovery scope is active; aborts like
// CheckFailed otherwise.
void OopsFailed(const char* file, int line, const char* expr,
                OopsDamage damage);

}  // namespace internal
}  // namespace sat

#define SAT_CHECK(expr)                                          \
  ((expr) ? static_cast<void>(0)                                 \
          : ::sat::internal::CheckFailed(__FILE__, __LINE__, #expr))

// Recoverable variant: `damage` is an ::sat::OopsDamage describing what
// is corrupt (use {} when no specific object is implicated).
#define SAT_OOPS_CHECK(expr, damage)                                     \
  ((expr) ? static_cast<void>(0)                                         \
          : ::sat::internal::OopsFailed(__FILE__, __LINE__, #expr,       \
                                        (damage)))

#define SAT_PANIC(msg) ::sat::KernelPanic(__FILE__, __LINE__, (msg))

#endif  // SRC_ARCH_CHECK_H_
