// SAT_CHECK: an always-on invariant check.
//
// The simulator's safety net — reference counts, sharer counts, COW
// discipline — must hold in every build. Plain assert() happens to stay
// live here because the top-level CMakeLists strips -DNDEBUG, but anything
// embedding these sources with standard Release flags would silently lose
// the net and corrupt state instead of stopping. SAT_CHECK does not depend
// on NDEBUG at all: the condition is always evaluated, and a failure
// prints the site and aborts.
//
// Use it for checks that guard state integrity (the ones whose failure
// means later behaviour is undefined). Cheap debug-only sanity checks can
// stay assert().
//
// The failure message includes the stringified condition, so the
//   SAT_CHECK(cond && "explanation");
// idiom carries the explanation into the abort output (and into the
// death-test expectations that pin these contracts).

#ifndef SRC_ARCH_CHECK_H_
#define SRC_ARCH_CHECK_H_

namespace sat {
namespace internal {

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);

}  // namespace internal
}  // namespace sat

#define SAT_CHECK(expr)                                          \
  ((expr) ? static_cast<void>(0)                                 \
          : ::sat::internal::CheckFailed(__FILE__, __LINE__, #expr))

#endif  // SRC_ARCH_CHECK_H_
