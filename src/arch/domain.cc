#include "src/arch/domain.h"

#include <sstream>

namespace sat {

std::string DomainAccessControl::ToString() const {
  std::ostringstream os;
  os << "DACR{";
  bool first = true;
  for (uint32_t d = 0; d < kNumDomains; ++d) {
    const DomainAccess access = Get(static_cast<DomainId>(d));
    if (access == DomainAccess::kNoAccess) {
      continue;
    }
    if (!first) {
      os << ", ";
    }
    first = false;
    os << d << ":" << (access == DomainAccess::kClient ? "client" : "manager");
  }
  os << "}";
  return os.str();
}

}  // namespace sat
