// Page-table entry formats for the simulated ARMv7 short-descriptor scheme.
//
// Three entry kinds are modelled:
//   * HwPte      — a hardware second-level ("small page" / "large page")
//                  descriptor. These are what the MMU's table walker reads
//                  and what gets loaded into the TLB.
//   * LinuxPte   — the parallel software entry Linux/ARM keeps alongside
//                  each hardware entry, holding the "young" (referenced)
//                  and "dirty" bits the hardware format lacks.
//   * L1Entry    — a first-level entry. In this simulation L1 entries are
//                  managed at the paired 2 MB granularity (see types.h), so
//                  an L1Entry here corresponds to a *pair* of hardware
//                  first-level descriptors pointing into one PTP. The
//                  NEED_COPY bit of the paper lives here.
//
// The hardware bit layout follows the ARMv7-A short descriptor format
// closely enough that the simulated cache hierarchy can treat a PTE as a
// real 4-byte datum at a real physical address inside its page-table page.

#ifndef SRC_ARCH_PTE_H_
#define SRC_ARCH_PTE_H_

#include <cstdint>
#include <string>

#include "src/arch/types.h"

namespace sat {

// Access-permission encoding, a simplified version of ARM's AP[2:0].
enum class PtePerm : uint8_t {
  kNone = 0,         // no user access
  kReadOnly = 1,     // user read (and execute unless XN)
  kReadWrite = 2,    // user read/write
};

// A hardware second-level descriptor.
//
// Simulated layout (bit positions chosen to mirror ARMv7 small pages):
//   [31:12] physical frame number
//   [11]    nG   (not-global; 0 means the mapping is global)
//   [10:9]  AP   (PtePerm)
//   [8]     large (part of a 64 KB large-page run)
//   [2]     XN   (execute never)
//   [1:0]   type (0 = invalid, 2 = valid small/large page)
class HwPte {
 public:
  constexpr HwPte() = default;

  static HwPte MakePage(FrameNumber frame, PtePerm perm, bool global,
                        bool executable, bool large = false) {
    HwPte pte;
    pte.raw_ = (static_cast<uint32_t>(frame) << kPageShift) |
               (global ? 0u : kNotGlobalBit) |
               (static_cast<uint32_t>(perm) << kApShift) |
               (large ? kLargeBit : 0u) | (executable ? 0u : kXnBit) | kTypePage;
    return pte;
  }

  // Reconstitutes an entry from its raw 4-byte image. Chaos injection and
  // scrub repair operate on the raw word, the same view the hardware
  // walker has.
  static constexpr HwPte FromRaw(uint32_t raw) {
    HwPte pte;
    pte.raw_ = raw;
    return pte;
  }

  constexpr bool valid() const { return (raw_ & kTypeMask) == kTypePage; }
  constexpr FrameNumber frame() const { return raw_ >> kPageShift; }
  constexpr bool global() const { return valid() && (raw_ & kNotGlobalBit) == 0; }
  constexpr bool executable() const { return (raw_ & kXnBit) == 0; }
  constexpr bool large() const { return (raw_ & kLargeBit) != 0; }

  constexpr PtePerm perm() const {
    return static_cast<PtePerm>((raw_ >> kApShift) & 0x3u);
  }

  void set_perm(PtePerm perm) {
    raw_ = (raw_ & ~(0x3u << kApShift)) | (static_cast<uint32_t>(perm) << kApShift);
  }

  void set_global(bool global) {
    if (global) {
      raw_ &= ~kNotGlobalBit;
    } else {
      raw_ |= kNotGlobalBit;
    }
  }

  // Write-protects the entry (AP read-write -> read-only). Used both for
  // COW at fork and for the write-protect pass when a PTP becomes shared.
  void WriteProtect() {
    if (perm() == PtePerm::kReadWrite) {
      set_perm(PtePerm::kReadOnly);
    }
  }

  void Clear() { raw_ = 0; }

  constexpr uint32_t raw() const { return raw_; }
  constexpr bool operator==(const HwPte& other) const = default;

  std::string ToString() const;

 private:
  static constexpr uint32_t kTypeMask = 0x3u;
  static constexpr uint32_t kTypePage = 0x2u;
  static constexpr uint32_t kXnBit = 1u << 2;
  static constexpr uint32_t kLargeBit = 1u << 8;
  static constexpr uint32_t kApShift = 9;
  static constexpr uint32_t kNotGlobalBit = 1u << 11;

  uint32_t raw_ = 0;
};

// Identifier of a compressed swap slot in the zram store (src/mem/zram).
using SwapSlotId = uint32_t;

// The parallel Linux software entry. ARMv7 second-level descriptors have no
// referenced/dirty bits, so Linux keeps them in a shadow table that shares
// the PTP's 4 KB frame with the hardware tables.
//
// A non-present software entry can instead hold a *swap entry* — the ARM
// Linux trick of encoding the swap slot in the free bits of the invalid
// descriptor. The hardware entry stays invalid (type 0) so the walker
// faults; the fault handler recognises the swap bit and decompresses the
// page from the zram store.
class LinuxPte {
 public:
  constexpr LinuxPte() = default;

  constexpr bool present() const { return (raw_ & kPresentBit) != 0; }
  constexpr bool young() const { return (raw_ & kYoungBit) != 0; }
  constexpr bool dirty() const { return (raw_ & kDirtyBit) != 0; }
  // Set when the *region* allows writes even though the hardware entry may
  // currently be write-protected (COW / shared-PTP protection).
  constexpr bool writable() const { return (raw_ & kWritableBit) != 0; }

  void set_present(bool v) { SetBit(kPresentBit, v); }
  void set_young(bool v) { SetBit(kYoungBit, v); }
  void set_dirty(bool v) { SetBit(kDirtyBit, v); }
  void set_writable(bool v) { SetBit(kWritableBit, v); }

  // Swap-entry encoding: slot number in the high bits, swap marker in a
  // free low bit, present bit clear. A swap entry carries no other flags.
  static LinuxPte MakeSwap(SwapSlotId slot) {
    LinuxPte pte;
    pte.raw_ = kSwapBit | (slot << kSwapSlotShift);
    return pte;
  }
  constexpr bool is_swap() const { return (raw_ & kSwapBit) != 0; }
  constexpr SwapSlotId swap_slot() const { return raw_ >> kSwapSlotShift; }
  static constexpr SwapSlotId kMaxSwapSlot =
      (1u << (32 - 5 /*kSwapSlotShift*/)) - 1;

  void Clear() { raw_ = 0; }

  constexpr uint32_t raw() const { return raw_; }
  constexpr bool operator==(const LinuxPte& other) const = default;

 private:
  static constexpr uint32_t kPresentBit = 1u << 0;
  static constexpr uint32_t kYoungBit = 1u << 1;
  static constexpr uint32_t kDirtyBit = 1u << 2;
  static constexpr uint32_t kWritableBit = 1u << 3;
  static constexpr uint32_t kSwapBit = 1u << 4;
  static constexpr uint32_t kSwapSlotShift = 5;

  void SetBit(uint32_t bit, bool v) {
    if (v) {
      raw_ |= bit;
    } else {
      raw_ &= ~bit;
    }
  }

  uint32_t raw_ = 0;
};

// Identifier of a page-table page object in the simulated kernel. PTPs live
// in a slab owned by the PtpAllocator (src/pt); L1 entries refer to them by
// id rather than by pointer so that sharing and reference counting stay
// explicit.
using PtpId = int32_t;
inline constexpr PtpId kNoPtp = -1;

// One half of an L1 pair mapped as an ARMv7 1 MB *section*: a single
// first-level descriptor naming 256 physically contiguous frames, no
// second level at all. kNoSectionFrame marks the half as not
// section-mapped (the normal case).
inline constexpr FrameNumber kNoSectionFrame = 0xFFFFFFFFu;

struct SectionDesc {
  FrameNumber base = kNoSectionFrame;  // first of 256 contiguous frames
  bool global = false;                 // nG clear (zygote shared code)
  bool executable = false;

  bool present() const { return base != kNoSectionFrame; }

  void Clear() {
    base = kNoSectionFrame;
    global = false;
    executable = false;
  }

  bool operator==(const SectionDesc& other) const = default;
};

// A first-level entry at 2 MB (PTP-pair) granularity.
//
// The NEED_COPY flag is the paper's spare-bit annotation: it marks the
// referenced PTP as shared copy-on-write, meaning any modification of the
// 2 MB range must first unshare (privatize) the PTP.
//
// The two `section` halves model the pair's hardware descriptors being
// *section* mappings (1 MB each) instead of pointers into the PTP: a half
// that is section-mapped translates without any second-level walk, and
// takes precedence over any PTE the PTP might hold for the same range
// (the kernel never installs both). Sections here always map permanent
// read-only kernel-owned frames (the eager zygote-code mapping), so they
// carry no refcounts and are copied by value at fork.
struct L1Entry {
  PtpId ptp = kNoPtp;
  DomainId domain = 0;
  bool need_copy = false;
  SectionDesc section[2];

  bool present() const { return ptp != kNoPtp; }

  bool has_section(uint32_t half) const { return section[half].present(); }
  bool any_section() const {
    return section[0].present() || section[1].present();
  }

  void Clear() {
    ptp = kNoPtp;
    domain = 0;
    need_copy = false;
    section[0].Clear();
    section[1].Clear();
  }

  bool operator==(const L1Entry& other) const = default;
};

}  // namespace sat

#endif  // SRC_ARCH_PTE_H_
