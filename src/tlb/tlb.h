// The TLB model: per-core micro TLBs plus a unified set-associative main
// TLB, mirroring the Cortex-A9 arrangement the paper evaluates on
// (instruction/data micro TLBs that are flushed on every context switch,
// and a unified 128-entry main TLB with round-robin replacement).
//
// Entries carry the fields the paper's mechanism depends on:
//   * an ASID, ignored when the entry is global (the global bit is how
//     zygote-preloaded shared code gets one TLB entry for all apps);
//   * a domain id, checked against the current DACR on every hit — a
//     kNoAccess domain produces a *domain fault*, the paper's trap for
//     non-zygote processes touching zygote-domain global entries.

#ifndef SRC_TLB_TLB_H_
#define SRC_TLB_TLB_H_

#include <cstdint>
#include <vector>

#include "src/arch/domain.h"
#include "src/arch/pte.h"
#include "src/arch/types.h"

namespace sat {

class Tracer;

struct TlbEntry {
  bool valid = false;
  uint32_t vpn = 0;          // virtual page number of the entry's base
  uint32_t size_pages = 1;   // 1 (4 KB), 16 (64 KB large page) or
                             // 256 (1 MB section)
  Asid asid = 0;
  bool global = false;
  DomainId domain = 0;
  PtePerm perm = PtePerm::kNone;
  bool executable = false;
  FrameNumber frame = 0;

  // Does this entry translate `vpn_query` for `asid_query`?
  bool Matches(uint32_t vpn_query, Asid asid_query) const {
    if (!valid) {
      return false;
    }
    if (!global && asid != asid_query) {
      return false;
    }
    return (vpn_query & ~(size_pages - 1)) == vpn;
  }

  // Covers the virtual page regardless of ASID (for flush-by-VA).
  bool CoversVpn(uint32_t vpn_query) const {
    return valid && (vpn_query & ~(size_pages - 1)) == vpn;
  }
};

// Could a lookup ever return either of these two valid entries for one and
// the same (vpn, asid) query? True when their page ranges overlap and they
// serve a common address space (same ASID, or either one is global). Insert
// uses this to scrub stale duplicates; the property tests use it as the
// no-duplicate invariant.
bool EntriesConflict(const TlbEntry& lhs, const TlbEntry& rhs);

enum class TlbResult : uint8_t {
  kMiss = 0,
  kHit,
  kDomainFault,    // DACR gives no access to the entry's domain
  kPermissionFault,  // domain is client and the PTE permissions deny
};

struct TlbStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t domain_faults = 0;
  uint64_t permission_faults = 0;
  uint64_t insertions = 0;
  uint64_t flushes = 0;
  uint64_t entries_flushed = 0;
};

// Checks `access` against a matching entry under `dacr`.
TlbResult CheckEntryAccess(const TlbEntry& entry, AccessType access,
                           const DomainAccessControl& dacr);

// The unified main TLB: set-associative, round-robin replacement per set.
// 64 KB and 1 MB entries are indexed by their aligned base VPN; lookups
// therefore probe the 4 KB-index set, the 64 KB-index set and the
// 1 MB-index set.
class MainTlb {
 public:
  MainTlb(uint32_t num_entries, uint32_t ways);

  TlbResult Lookup(VirtAddr va, Asid asid, AccessType access,
                   const DomainAccessControl& dacr, TlbEntry* out);

  void Insert(const TlbEntry& entry);

  // Invalidate everything, including global entries (full flush; the
  // no-ASID fallback configuration uses this on context switch... except
  // that global entries surviving is precisely the point, so the fallback
  // uses FlushNonGlobal instead; FlushAll models `TLBIALL`).
  void FlushAll();

  // Invalidate all non-global entries (context switch without ASIDs).
  void FlushNonGlobal();

  // Invalidate every *global* entry (the software fallback for
  // architectures without domains: drop shared entries before running a
  // process outside the sharing group).
  void FlushGlobal();

  // Invalidate non-global entries of one address space.
  void FlushAsid(Asid asid);

  // Invalidate every entry covering `va`, global or not (the domain-fault
  // handler's "flush all TLB entries that match the faulting address").
  void FlushVa(VirtAddr va);

  const TlbStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TlbStats{}; }

  uint32_t ValidEntryCount() const;
  // Bytes of virtual address space the valid entries currently translate —
  // the translation-reach metric the promotion engine exists to grow.
  uint64_t ReachBytes() const;
  uint32_t num_entries() const { return static_cast<uint32_t>(entries_.size()); }

  // Geometry and raw-entry inspection, for invariant-checking tests.
  uint32_t ways() const { return ways_; }
  uint32_t num_sets() const { return num_sets_; }
  const TlbEntry& EntryAt(uint32_t set, uint32_t way) const {
    return entries_[set * ways_ + way];
  }

  // Chaos backdoor: mutable access to a stored entry so the injector can
  // flip tag/attribute bits in place, bypassing Insert's dedup scrubbing.
  // Never used by the lookup/insert machinery itself.
  TlbEntry& EntryAtForChaos(uint32_t set, uint32_t way) {
    return entries_[set * ways_ + way];
  }

  // Flush operations report entries-flushed counts as trace events.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  // Flush kinds as reported in kTlbFlush events' `a` payload.
  enum FlushKind : uint64_t {
    kFlushKindAll = 0,
    kFlushKindNonGlobal,
    kFlushKindGlobal,
    kFlushKindAsid,
    kFlushKindVa,
  };

  uint32_t SetIndexOf(uint32_t vpn) const { return vpn & (num_sets_ - 1); }
  TlbEntry* FindInSet(uint32_t set, uint32_t vpn, Asid asid);

  uint32_t ways_;
  uint32_t num_sets_;
  std::vector<TlbEntry> entries_;        // num_sets_ x ways_
  std::vector<uint32_t> replace_cursor_; // round-robin per set
  TlbStats stats_;
  Tracer* tracer_ = nullptr;
};

// A micro TLB: small, fully associative, FIFO replacement, flushed on
// every context switch (Cortex-A9 behaviour the paper leans on).
class MicroTlb {
 public:
  explicit MicroTlb(uint32_t num_entries);

  TlbResult Lookup(VirtAddr va, Asid asid, AccessType access,
                   const DomainAccessControl& dacr, TlbEntry* out);

  void Insert(const TlbEntry& entry);
  void FlushAll();
  void FlushVa(VirtAddr va);

  const TlbStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TlbStats{}; }

  // Raw-entry inspection (for the invariant auditor).
  uint32_t num_entries() const { return static_cast<uint32_t>(entries_.size()); }
  const TlbEntry& EntryAt(uint32_t index) const { return entries_[index]; }

 private:
  std::vector<TlbEntry> entries_;
  uint32_t fifo_cursor_ = 0;
  TlbStats stats_;
};

}  // namespace sat

#endif  // SRC_TLB_TLB_H_
