#include "src/tlb/tlb.h"

#include <cassert>

#include "src/trace/trace.h"

namespace sat {

bool EntriesConflict(const TlbEntry& lhs, const TlbEntry& rhs) {
  if (!lhs.valid || !rhs.valid) {
    return false;
  }
  const bool overlap = lhs.vpn < rhs.vpn + rhs.size_pages &&
                       rhs.vpn < lhs.vpn + lhs.size_pages;
  return overlap && (lhs.global || rhs.global || lhs.asid == rhs.asid);
}

TlbResult CheckEntryAccess(const TlbEntry& entry, AccessType access,
                           const DomainAccessControl& dacr) {
  switch (dacr.Get(entry.domain)) {
    case DomainAccess::kNoAccess:
      return TlbResult::kDomainFault;
    case DomainAccess::kManager:
      return TlbResult::kHit;  // permission bits are bypassed
    case DomainAccess::kClient:
      break;
  }
  switch (access) {
    case AccessType::kRead:
      if (entry.perm == PtePerm::kNone) {
        return TlbResult::kPermissionFault;
      }
      return TlbResult::kHit;
    case AccessType::kWrite:
      if (entry.perm != PtePerm::kReadWrite) {
        return TlbResult::kPermissionFault;
      }
      return TlbResult::kHit;
    case AccessType::kExecute:
      if (entry.perm == PtePerm::kNone || !entry.executable) {
        return TlbResult::kPermissionFault;
      }
      return TlbResult::kHit;
  }
  return TlbResult::kPermissionFault;
}

namespace {

bool IsPowerOfTwo(uint32_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace

MainTlb::MainTlb(uint32_t num_entries, uint32_t ways) : ways_(ways) {
  assert(ways > 0 && num_entries % ways == 0);
  num_sets_ = num_entries / ways;
  assert(IsPowerOfTwo(num_sets_));
  entries_.resize(num_entries);
  replace_cursor_.resize(num_sets_, 0);
}

TlbEntry* MainTlb::FindInSet(uint32_t set, uint32_t vpn, Asid asid) {
  for (uint32_t w = 0; w < ways_; ++w) {
    TlbEntry& entry = entries_[set * ways_ + w];
    if (entry.Matches(vpn, asid)) {
      return &entry;
    }
  }
  return nullptr;
}

TlbResult MainTlb::Lookup(VirtAddr va, Asid asid, AccessType access,
                          const DomainAccessControl& dacr, TlbEntry* out) {
  stats_.lookups++;
  const uint32_t vpn = VirtPageNumber(va);
  TlbEntry* entry = FindInSet(SetIndexOf(vpn), vpn, asid);
  if (entry == nullptr) {
    // A 64 KB entry lives in the set of its aligned base VPN.
    const uint32_t large_vpn = vpn & ~(kPtesPerLargePage - 1);
    if (large_vpn != vpn || SetIndexOf(large_vpn) != SetIndexOf(vpn)) {
      entry = FindInSet(SetIndexOf(large_vpn), vpn, asid);
      if (entry != nullptr && entry->size_pages == 1) {
        entry = nullptr;  // only large entries are valid matches there
      }
    }
  }
  if (entry == nullptr) {
    // A 1 MB section entry lives in the set of its section-aligned base.
    const uint32_t section_vpn = vpn & ~(kPtesPerSection - 1);
    const uint32_t large_vpn = vpn & ~(kPtesPerLargePage - 1);
    if (SetIndexOf(section_vpn) != SetIndexOf(vpn) &&
        SetIndexOf(section_vpn) != SetIndexOf(large_vpn)) {
      entry = FindInSet(SetIndexOf(section_vpn), vpn, asid);
      if (entry != nullptr && entry->size_pages != kPtesPerSection) {
        entry = nullptr;  // only section entries are valid matches there
      }
    }
  }
  if (entry == nullptr) {
    stats_.misses++;
    return TlbResult::kMiss;
  }
  const TlbResult result = CheckEntryAccess(*entry, access, dacr);
  if (out != nullptr) {
    *out = *entry;  // filled on faults too: the core models protection
                    // schemes that override the domain verdict
  }
  switch (result) {
    case TlbResult::kHit:
      stats_.hits++;
      break;
    case TlbResult::kDomainFault:
      stats_.domain_faults++;
      break;
    case TlbResult::kPermissionFault:
      stats_.permission_faults++;
      break;
    case TlbResult::kMiss:
      break;
  }
  return result;
}

void MainTlb::Insert(const TlbEntry& entry) {
  assert(entry.valid);
  assert((entry.vpn & (entry.size_pages - 1)) == 0 &&
         "TLB entry base must be size-aligned");
  const uint32_t home = SetIndexOf(entry.vpn);

  // First scrub every existing entry a lookup could still find for any page
  // the new entry translates: matching attributes or not, two live entries
  // for one (vpn, asid) — or one global plus one per-ASID — would leave
  // FindInSet returning whichever way comes first. Re-inserting a VPN with a
  // changed attribute (the zygote global-bit promotion, a 4 KB→64 KB
  // upgrade, an ASID reused after rollover) must replace, never duplicate.
  // Conflicts can sit in the home set of any covered VPN or in the 64 KB /
  // 1 MB base-index sets that Lookup also probes.
  int64_t reuse_way = -1;
  const auto scrub = [&](uint32_t set) {
    for (uint32_t w = 0; w < ways_; ++w) {
      TlbEntry& candidate = entries_[set * ways_ + w];
      if (!EntriesConflict(candidate, entry)) {
        continue;
      }
      candidate.valid = false;
      if (set == home && reuse_way < 0) {
        reuse_way = w;
      }
    }
  };
  scrub(home);
  const uint32_t large_base = entry.vpn & ~(kPtesPerLargePage - 1);
  if (SetIndexOf(large_base) != home) {
    scrub(SetIndexOf(large_base));
  }
  const uint32_t section_base = entry.vpn & ~(kPtesPerSection - 1);
  if (SetIndexOf(section_base) != home &&
      SetIndexOf(section_base) != SetIndexOf(large_base)) {
    scrub(SetIndexOf(section_base));
  }
  for (uint32_t i = 1; i < entry.size_pages; ++i) {
    const uint32_t set = SetIndexOf(entry.vpn + i);
    if (set != home && set != SetIndexOf(large_base) &&
        set != SetIndexOf(section_base)) {
      scrub(set);
    }
  }

  // Then place the new entry: the way a duplicate vacated first (keeps
  // exact re-inserts in place), else any invalid way, else round-robin.
  if (reuse_way >= 0) {
    entries_[home * ways_ + static_cast<uint32_t>(reuse_way)] = entry;
    stats_.insertions++;
    return;
  }
  for (uint32_t w = 0; w < ways_; ++w) {
    TlbEntry& candidate = entries_[home * ways_ + w];
    if (!candidate.valid) {
      candidate = entry;
      stats_.insertions++;
      return;
    }
  }
  const uint32_t victim = replace_cursor_[home];
  replace_cursor_[home] = (victim + 1) % ways_;
  entries_[home * ways_ + victim] = entry;
  stats_.insertions++;
}

void MainTlb::FlushAll() {
  stats_.flushes++;
  uint64_t flushed = 0;
  for (TlbEntry& entry : entries_) {
    if (entry.valid) {
      entry.valid = false;
      flushed++;
    }
  }
  stats_.entries_flushed += flushed;
  Tracer::Emit(tracer_, TraceEventType::kTlbFlush, 0, kFlushKindAll, flushed);
}

void MainTlb::FlushNonGlobal() {
  stats_.flushes++;
  uint64_t flushed = 0;
  for (TlbEntry& entry : entries_) {
    if (entry.valid && !entry.global) {
      entry.valid = false;
      flushed++;
    }
  }
  stats_.entries_flushed += flushed;
  Tracer::Emit(tracer_, TraceEventType::kTlbFlush, 0, kFlushKindNonGlobal,
               flushed);
}

void MainTlb::FlushGlobal() {
  stats_.flushes++;
  uint64_t flushed = 0;
  for (TlbEntry& entry : entries_) {
    if (entry.valid && entry.global) {
      entry.valid = false;
      flushed++;
    }
  }
  stats_.entries_flushed += flushed;
  Tracer::Emit(tracer_, TraceEventType::kTlbFlush, 0, kFlushKindGlobal,
               flushed);
}

void MainTlb::FlushAsid(Asid asid) {
  stats_.flushes++;
  uint64_t flushed = 0;
  for (TlbEntry& entry : entries_) {
    if (entry.valid && !entry.global && entry.asid == asid) {
      entry.valid = false;
      flushed++;
    }
  }
  stats_.entries_flushed += flushed;
  Tracer::Emit(tracer_, TraceEventType::kTlbFlush, 0, kFlushKindAsid, flushed);
}

void MainTlb::FlushVa(VirtAddr va) {
  stats_.flushes++;
  uint64_t flushed = 0;
  const uint32_t vpn = VirtPageNumber(va);
  for (TlbEntry& entry : entries_) {
    if (entry.CoversVpn(vpn)) {
      entry.valid = false;
      flushed++;
    }
  }
  stats_.entries_flushed += flushed;
  Tracer::Emit(tracer_, TraceEventType::kTlbFlush, 0, kFlushKindVa, flushed);
}

uint32_t MainTlb::ValidEntryCount() const {
  uint32_t count = 0;
  for (const TlbEntry& entry : entries_) {
    if (entry.valid) {
      count++;
    }
  }
  return count;
}

uint64_t MainTlb::ReachBytes() const {
  uint64_t bytes = 0;
  for (const TlbEntry& entry : entries_) {
    if (entry.valid) {
      bytes += static_cast<uint64_t>(entry.size_pages) * kPageSize;
    }
  }
  return bytes;
}

MicroTlb::MicroTlb(uint32_t num_entries) { entries_.resize(num_entries); }

TlbResult MicroTlb::Lookup(VirtAddr va, Asid asid, AccessType access,
                           const DomainAccessControl& dacr, TlbEntry* out) {
  stats_.lookups++;
  const uint32_t vpn = VirtPageNumber(va);
  for (TlbEntry& entry : entries_) {
    if (!entry.Matches(vpn, asid)) {
      continue;
    }
    const TlbResult result = CheckEntryAccess(entry, access, dacr);
    if (out != nullptr) {
      *out = entry;
    }
    switch (result) {
      case TlbResult::kHit:
        stats_.hits++;
        break;
      case TlbResult::kDomainFault:
        stats_.domain_faults++;
        break;
      case TlbResult::kPermissionFault:
        stats_.permission_faults++;
        break;
      case TlbResult::kMiss:
        break;
    }
    return result;
  }
  stats_.misses++;
  return TlbResult::kMiss;
}

void MicroTlb::Insert(const TlbEntry& entry) {
  assert(entry.valid);
  for (TlbEntry& candidate : entries_) {
    if (!candidate.valid) {
      candidate = entry;
      stats_.insertions++;
      return;
    }
  }
  entries_[fifo_cursor_] = entry;
  fifo_cursor_ = (fifo_cursor_ + 1) % static_cast<uint32_t>(entries_.size());
  stats_.insertions++;
}

void MicroTlb::FlushAll() {
  stats_.flushes++;
  for (TlbEntry& entry : entries_) {
    if (entry.valid) {
      entry.valid = false;
      stats_.entries_flushed++;
    }
  }
}

void MicroTlb::FlushVa(VirtAddr va) {
  stats_.flushes++;
  const uint32_t vpn = VirtPageNumber(va);
  for (TlbEntry& entry : entries_) {
    if (entry.CoversVpn(vpn)) {
      entry.valid = false;
      stats_.entries_flushed++;
    }
  }
}

}  // namespace sat
