// Application profiles: the calibrated synthetic stand-in for the paper's
// 11 Android benchmarks (Section 4.1.2).
//
// The real traces (perf PC samples + page-fault logs from a Nexus 7) are
// unavailable, so each profile carries the *structure* the paper measures
// in Section 2 — how many instruction pages per code category (Figure 2),
// what share of fetches per category (Figure 3), the user/kernel split
// (Table 1), how many libraries the footprint spreads across, and how
// strongly the app biases towards library-common hot pages (the overlap
// knob behind Table 2). The system-level experiments (Tables 3-4, Figures
// 7-13) then *measure* outcomes on address spaces built from these
// profiles; those numbers are outputs of the simulated kernel, not inputs.

#ifndef SRC_WORKLOAD_APP_PROFILE_H_
#define SRC_WORKLOAD_APP_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sat {

struct AppProfile {
  std::string name;

  // Table 1: fraction of instruction fetches executed in kernel mode
  // (I/O-heavy apps like Chrome Privilege, MX Player and WPS are high).
  double kernel_fraction = 0.1;

  // Figure 2 targets: touched instruction pages per category.
  uint32_t zygote_so_pages = 0;     // zygote-preloaded .so code
  uint32_t zygote_java_pages = 0;   // AOT boot image code
  uint32_t app_process_pages = 0;   // the zygote program binary
  uint32_t other_lib_pages = 0;     // app-/platform-specific dynamic libs
  uint32_t private_pages = 0;       // the app's own code

  // Footprint spread.
  uint32_t num_zygote_libs = 40;    // preloaded .so objects invoked
  uint32_t num_other_libs = 8;      // non-preloaded libs linked

  // Probability that a footprint cluster lands on the library's common
  // hot set rather than an app-specific spot: the Table 2 overlap knob.
  double common_page_bias = 0.82;

  // Figure 3 targets: share of user-mode fetches per category
  // (remainder goes to app_process).
  double fetch_share_zygote_so = 0.61;
  double fetch_share_java = 0.11;
  double fetch_share_other = 0.26;
  double fetch_share_private = 0.019;

  // Steady-state dynamics: writes into library data segments (the
  // unshare driver), spread over this many distinct libraries, plus
  // anonymous heap pages touched.
  uint32_t data_pages_written = 120;
  uint32_t dirty_libs = 18;
  uint32_t anon_pages_touched = 900;

  // Non-library files the app reads via mmap (its apk, resources, fonts):
  // contributes file-backed faults that sharing cannot eliminate.
  uint32_t private_file_pages = 400;

  uint64_t seed = 1;

  uint32_t TotalInstPages() const {
    return zygote_so_pages + zygote_java_pages + app_process_pages +
           other_lib_pages + private_pages;
  }

  // The paper's 11-app suite with per-app parameters calibrated to
  // Section 2's measurements.
  static std::vector<AppProfile> PaperBenchmarks();

  // A single named profile (asserts on unknown names).
  static AppProfile Named(const std::string& name);
};

}  // namespace sat

#endif  // SRC_WORKLOAD_APP_PROFILE_H_
