// Footprint analytics: the Section 2 characterization computations —
// category breakdowns (Figures 2-3), pairwise footprint intersection
// (Table 2), and 64 KB large-page sparsity (Figure 4).

#ifndef SRC_WORKLOAD_ANALYSIS_H_
#define SRC_WORKLOAD_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "src/workload/footprint.h"

namespace sat {

struct CategoryBreakdown {
  // Indexed by CodeCategory.
  uint32_t pages[5] = {};
  double fetch_share[5] = {};

  uint32_t TotalPages() const {
    return pages[0] + pages[1] + pages[2] + pages[3] + pages[4];
  }
  double SharedCodePageFraction() const {
    const uint32_t total = TotalPages();
    if (total == 0) {
      return 0;
    }
    return 1.0 - static_cast<double>(pages[static_cast<int>(
                     CodeCategory::kPrivateCode)]) /
                     static_cast<double>(total);
  }
  double SharedCodeFetchFraction() const {
    return 1.0 - fetch_share[static_cast<int>(CodeCategory::kPrivateCode)];
  }
};

CategoryBreakdown AnalyzeCategories(const AppFootprint& fp);

// Table 2 cell: the fraction of *all* instruction pages accessed by `row`
// whose shared-code portion intersects `col`'s shared-code footprint.
// `zygote_preloaded_only` selects the outside-brackets (zygote-preloaded)
// vs inside-brackets (all shared code) variant.
double IntersectionFraction(const AppFootprint& row, const AppFootprint& col,
                            bool zygote_preloaded_only);

// Figure 4: for every 64 KB chunk of zygote-preloaded code containing at
// least one touched 4 KB page, how many of its 16 pages are untouched?
struct SparsityResult {
  std::vector<uint32_t> untouched_per_chunk;  // one entry per occupied chunk
  uint64_t touched_pages_4k = 0;              // 4 KB-page memory use (pages)
  uint64_t occupied_chunks_64k = 0;           // 64 KB-page memory use (chunks)

  double MemoryBytes4k() const {
    return static_cast<double>(touched_pages_4k) * 4096.0;
  }
  double MemoryBytes64k() const {
    return static_cast<double>(occupied_chunks_64k) * 65536.0;
  }
};

SparsityResult AnalyzeSparsity(const AppFootprint& fp);

// The same over the union of several apps' zygote-preloaded footprints.
SparsityResult AnalyzeSparsityUnion(const std::vector<AppFootprint>& fps);

}  // namespace sat

#endif  // SRC_WORKLOAD_ANALYSIS_H_
