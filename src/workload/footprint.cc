#include "src/workload/footprint.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <random>
#include <set>

namespace sat {

namespace {

uint64_t PageKey(LibraryId lib, uint32_t page) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(lib)) << 32) | page;
}

// Zipf-like weight for popularity rank r (0 = hottest).
double RankWeight(size_t rank) {
  return 1.0 / std::pow(static_cast<double>(rank) + 1.0, 0.8);
}

}  // namespace

uint32_t AppFootprint::PagesOf(CodeCategory category) const {
  uint32_t count = 0;
  for (const TouchedPage& page : pages) {
    if (page.category == category) {
      count++;
    }
  }
  return count;
}

double AppFootprint::FetchShareOf(CodeCategory category) const {
  double share = 0;
  for (const TouchedPage& page : pages) {
    if (page.category == category) {
      share += page.fetch_weight;
    }
  }
  return share;
}

std::vector<uint64_t> AppFootprint::SharedPageKeys(
    bool zygote_preloaded_only) const {
  std::vector<uint64_t> keys;
  for (const TouchedPage& page : pages) {
    const bool include = zygote_preloaded_only
                             ? IsZygotePreloadedCategory(page.category)
                             : IsSharedCodeCategory(page.category);
    if (include) {
      keys.push_back(PageKey(page.lib, page.page_index));
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

WorkloadFactory::WorkloadFactory(LibraryCatalog* catalog) : catalog_(catalog) {
  // The shared platform-specific libraries (GPU driver stack etc.): not
  // preloaded by the zygote, but linked by many apps — the gap between
  // Table 2's "zygote-preloaded" and "all shared code" numbers.
  static constexpr struct {
    const char* name;
    uint32_t code_pages;
    uint32_t data_pages;
  } kPlatformLibs[] = {
      {"libnvgr.so", 220, 16},          {"libGLESv2_tegra.so", 760, 40},
      {"libnvrm.so", 130, 12},          {"libnvos.so", 60, 8},
      {"libnvddk_2d_v2.so", 90, 8},     {"libnvmm.so", 340, 24},
  };
  for (const auto& lib : kPlatformLibs) {
    platform_libs_.push_back(catalog_->Register(
        lib.name, CodeCategory::kOtherSharedLib, lib.code_pages, lib.data_pages));
  }
}

const std::vector<uint32_t>& WorkloadFactory::HotAnchors(LibraryId lib) {
  auto it = anchor_cache_.find(lib);
  if (it != anchor_cache_.end()) {
    return it->second;
  }
  const LibraryImage& image = catalog_->Get(lib);
  // One anchor per ~8 pages of code, scattered uniformly, in a
  // library-seeded popularity order identical for every consumer.
  const uint32_t count = std::max(1u, image.code_pages / 8);
  std::mt19937_64 rng(0x9E3779B97F4A7C15ull ^ (static_cast<uint64_t>(lib) << 17));
  std::uniform_int_distribution<uint32_t> dist(0, image.code_pages - 1);
  std::vector<uint32_t> anchors;
  anchors.reserve(count);
  std::set<uint32_t> seen;
  while (anchors.size() < count) {
    const uint32_t anchor = dist(rng);
    if (seen.insert(anchor).second) {
      anchors.push_back(anchor);
    }
  }
  return anchor_cache_.emplace(lib, std::move(anchors)).first->second;
}

void WorkloadFactory::PickLibraryPages(LibraryId lib, CodeCategory category,
                                       uint32_t target, double common_bias,
                                       uint64_t rng_seed,
                                       std::vector<TouchedPage>* out,
                                       double skip_probability) {
  const LibraryImage& image = catalog_->Get(lib);
  if (image.code_pages == 0 || target == 0) {
    return;
  }
  const uint32_t capped_target = std::min(target, image.code_pages);
  const std::vector<uint32_t>& anchors = HotAnchors(lib);

  std::mt19937_64 rng(rng_seed * 0x2545F4914F6CDD1Dull +
                      static_cast<uint64_t>(static_cast<uint32_t>(lib)));
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::uniform_int_distribution<uint32_t> page_dist(0, image.code_pages - 1);
  std::geometric_distribution<uint32_t> cluster_tail(0.45);

  // Anchor clusters have a *deterministic* length, the same for every
  // consumer: two applications hitting the same hot anchor touch the
  // identical page run (a function group has one size). The heavy-tailed
  // length distribution produces the mix of sparse and dense 64 KB chunks
  // behind Figure 4.
  static constexpr uint32_t kAnchorLengths[] = {1, 1, 2, 2, 3, 3,
                                                4, 6, 8, 12, 16};
  auto anchor_length = [](uint32_t anchor) {
    const uint32_t h = anchor * 2654435761u;
    return kAnchorLengths[(h >> 7) % std::size(kAnchorLengths)];
  };

  std::set<uint32_t> picked;
  // Common picks walk the popularity-ordered anchor list *sequentially*
  // with occasional per-app skips: every consumer of the library covers
  // nearly the same prefix of hot anchors (diverging only by the skips
  // and by how deep its page budget reaches), which is what produces the
  // strong cross-application footprint overlap of Table 2. App-specific
  // picks land anywhere.
  size_t anchor_cursor = 0;
  // Bounded attempts: tiny libraries can saturate before reaching target.
  const uint32_t max_attempts = capped_target * 8 + 64;
  for (uint32_t attempt = 0;
       attempt < max_attempts && picked.size() < capped_target; ++attempt) {
    uint32_t start;
    uint32_t len;
    if (uniform(rng) < common_bias && anchor_cursor < anchors.size()) {
      while (anchor_cursor < anchors.size() &&
             uniform(rng) < skip_probability) {
        anchor_cursor++;
      }
      if (anchor_cursor >= anchors.size()) {
        continue;
      }
      start = anchors[anchor_cursor++];
      len = anchor_length(start);
    } else {
      start = page_dist(rng);
      len = std::min(1 + cluster_tail(rng), 4u);
    }
    for (uint32_t i = 0; i < len && start + i < image.code_pages; ++i) {
      picked.insert(start + i);
      if (picked.size() >= capped_target) {
        break;
      }
    }
  }

  for (uint32_t page : picked) {
    TouchedPage touched;
    touched.lib = lib;
    touched.category = category;
    touched.page_index = page;
    touched.fetch_weight = 0;  // assigned by Generate
    out->push_back(touched);
  }
}

AppFootprint WorkloadFactory::Generate(const AppProfile& profile) {
  AppFootprint fp;
  fp.app_name = profile.name;
  fp.kernel_fraction = profile.kernel_fraction;
  fp.anon_pages = profile.anon_pages_touched;
  fp.private_file_pages = profile.private_file_pages;

  std::mt19937_64 rng(profile.seed);

  // ------------------------------------------------------------------
  // Which zygote-preloaded .so objects does this app invoke? The catalog
  // lists the platform's most important libraries first; a core set is
  // used by everything, the tail is app-dependent.
  // ------------------------------------------------------------------
  std::vector<LibraryId> preload_sos;
  LibraryId app_process = -1;
  std::vector<LibraryId> java_libs;
  for (LibraryId lib : catalog_->ZygotePreloadSet()) {
    switch (catalog_->Get(lib).category) {
      case CodeCategory::kZygoteDynamicLib:
        preload_sos.push_back(lib);
        break;
      case CodeCategory::kZygoteJavaLib:
        java_libs.push_back(lib);
        break;
      case CodeCategory::kZygoteProgramBinary:
        app_process = lib;
        break;
      default:
        break;
    }
  }
  assert(app_process >= 0 && !java_libs.empty());

  const uint32_t core_count = 28;
  const uint32_t want =
      std::min<uint32_t>(profile.num_zygote_libs,
                         static_cast<uint32_t>(preload_sos.size()));
  const auto core_take = static_cast<std::ptrdiff_t>(
      std::min<size_t>(core_count, preload_sos.size()));
  std::vector<LibraryId> used(preload_sos.begin(),
                              preload_sos.begin() + core_take);
  {
    std::vector<LibraryId> tail(
        preload_sos.begin() + static_cast<std::ptrdiff_t>(used.size()),
        preload_sos.end());
    std::shuffle(tail.begin(), tail.end(), rng);
    for (LibraryId lib : tail) {
      if (used.size() >= want) {
        break;
      }
      used.push_back(lib);
    }
  }
  fp.zygote_libs_used = used;

  // ------------------------------------------------------------------
  // Zygote-preloaded .so pages: distribute the target across the used
  // libraries proportionally to code size (with jitter).
  // ------------------------------------------------------------------
  {
    uint64_t total_size = 0;
    for (LibraryId lib : used) {
      total_size += catalog_->Get(lib).code_pages;
    }
    std::uniform_real_distribution<double> jitter(0.8, 1.2);
    for (LibraryId lib : used) {
      const double share = static_cast<double>(catalog_->Get(lib).code_pages) /
                           static_cast<double>(total_size);
      const auto target = static_cast<uint32_t>(
          share * profile.zygote_so_pages * jitter(rng) + 1.0);
      PickLibraryPages(lib, CodeCategory::kZygoteDynamicLib, target,
                       profile.common_page_bias, profile.seed, &fp.pages);
    }
  }

  // Java boot image pages.
  {
    uint64_t total_size = 0;
    for (LibraryId lib : java_libs) {
      total_size += catalog_->Get(lib).code_pages;
    }
    for (LibraryId lib : java_libs) {
      const double share = static_cast<double>(catalog_->Get(lib).code_pages) /
                           static_cast<double>(total_size);
      const auto target =
          static_cast<uint32_t>(share * profile.zygote_java_pages + 0.5);
      PickLibraryPages(lib, CodeCategory::kZygoteJavaLib, target,
                       profile.common_page_bias, profile.seed, &fp.pages);
    }
  }

  // app_process pages: tiny and fully common.
  PickLibraryPages(app_process, CodeCategory::kZygoteProgramBinary,
                   profile.app_process_pages, 1.0, /*rng_seed=*/7, &fp.pages);

  // ------------------------------------------------------------------
  // Other shared libraries: a couple of the shared platform libs plus
  // app-private ones registered here.
  // ------------------------------------------------------------------
  {
    std::vector<LibraryId> others;
    const uint32_t platform_used = std::min<uint32_t>(
        2 + static_cast<uint32_t>(rng() % 3),
        static_cast<uint32_t>(platform_libs_.size()));
    for (uint32_t i = 0; i < platform_used; ++i) {
      others.push_back(platform_libs_[i]);
    }
    const uint32_t private_libs =
        profile.num_other_libs > platform_used
            ? profile.num_other_libs - platform_used
            : 0;
    std::uniform_int_distribution<uint32_t> lib_pages(40, 600);
    for (uint32_t i = 0; i < private_libs; ++i) {
      const uint32_t code_pages = lib_pages(rng);
      others.push_back(catalog_->Register(
          profile.name + ":lib" + std::to_string(i) + ".so",
          CodeCategory::kOtherSharedLib, code_pages,
          std::max(2u, code_pages / 12)));
    }
    fp.other_libs = others;

    uint64_t total_size = 0;
    for (LibraryId lib : others) {
      total_size += catalog_->Get(lib).code_pages;
    }
    for (LibraryId lib : others) {
      const double share = static_cast<double>(catalog_->Get(lib).code_pages) /
                           static_cast<double>(total_size);
      const auto target =
          static_cast<uint32_t>(share * profile.other_lib_pages + 0.5);
      // Platform libs keep the common-anchor structure (shared across
      // apps); app-private libs are inherently app-specific.
      const bool platform = std::find(platform_libs_.begin(), platform_libs_.end(),
                                      lib) != platform_libs_.end();
      PickLibraryPages(lib, CodeCategory::kOtherSharedLib, target,
                       platform ? profile.common_page_bias : 0.0,
                       profile.seed + 13, &fp.pages);
    }
  }

  // The app's own code.
  {
    fp.private_code_lib = catalog_->Register(
        profile.name + ":base.odex", CodeCategory::kPrivateCode,
        std::max(profile.private_pages * 2, 8u), 8);
    PickLibraryPages(fp.private_code_lib, CodeCategory::kPrivateCode,
                     profile.private_pages, 0.0, profile.seed + 29, &fp.pages);
  }

  // ------------------------------------------------------------------
  // Fetch weights: zipf within each category, scaled to the profile's
  // category shares.
  // ------------------------------------------------------------------
  {
    double category_share[5] = {};
    category_share[static_cast<int>(CodeCategory::kPrivateCode)] =
        profile.fetch_share_private;
    category_share[static_cast<int>(CodeCategory::kOtherSharedLib)] =
        profile.fetch_share_other;
    category_share[static_cast<int>(CodeCategory::kZygoteJavaLib)] =
        profile.fetch_share_java;
    category_share[static_cast<int>(CodeCategory::kZygoteDynamicLib)] =
        profile.fetch_share_zygote_so;
    category_share[static_cast<int>(CodeCategory::kZygoteProgramBinary)] =
        std::max(0.0, 1.0 - profile.fetch_share_private -
                          profile.fetch_share_other - profile.fetch_share_java -
                          profile.fetch_share_zygote_so);

    // Rank pages within each category deterministically (shuffled by the
    // app seed) and weight by rank.
    std::vector<size_t> indices(fp.pages.size());
    for (size_t i = 0; i < indices.size(); ++i) {
      indices[i] = i;
    }
    std::shuffle(indices.begin(), indices.end(), rng);
    size_t rank_in_category[5] = {};
    double total_weight[5] = {};
    for (size_t idx : indices) {
      const int c = static_cast<int>(fp.pages[idx].category);
      fp.pages[idx].fetch_weight = RankWeight(rank_in_category[c]++);
      total_weight[c] += fp.pages[idx].fetch_weight;
    }
    for (TouchedPage& page : fp.pages) {
      const int c = static_cast<int>(page.category);
      if (total_weight[c] > 0) {
        page.fetch_weight =
            page.fetch_weight / total_weight[c] * category_share[c];
      }
    }
  }

  // ------------------------------------------------------------------
  // Steady-state data writes: concentrated in the most-used libraries.
  // ------------------------------------------------------------------
  {
    std::vector<LibraryId> dirty_candidates = fp.zygote_libs_used;
    const uint32_t dirty =
        std::min<uint32_t>(profile.dirty_libs,
                           static_cast<uint32_t>(dirty_candidates.size()));
    uint32_t remaining = profile.data_pages_written;
    for (uint32_t i = 0; i < dirty && remaining > 0; ++i) {
      const LibraryImage& image = catalog_->Get(dirty_candidates[i]);
      if (image.data_pages == 0) {
        continue;
      }
      const uint32_t here =
          std::min<uint32_t>(std::max(1u, remaining / (dirty - i)),
                             image.data_pages);
      std::set<uint32_t> pages;
      std::uniform_int_distribution<uint32_t> dist(0, image.data_pages - 1);
      while (pages.size() < here) {
        pages.insert(dist(rng));
      }
      for (uint32_t page : pages) {
        fp.data_writes.push_back(DataWrite{dirty_candidates[i], page});
      }
      remaining -= here;
    }
  }

  return fp;
}

AppFootprint WorkloadFactory::GenerateZygoteFootprint(uint32_t target_pages,
                                                      uint64_t seed) {
  AppFootprint fp;
  fp.app_name = "zygote";
  fp.kernel_fraction = 0.1;

  const auto preload = catalog_->ZygotePreloadSet();
  uint64_t total_size = 0;
  for (LibraryId lib : preload) {
    total_size += catalog_->Get(lib).code_pages;
  }
  for (LibraryId lib : preload) {
    const LibraryImage& image = catalog_->Get(lib);
    const double share =
        static_cast<double>(image.code_pages) / static_cast<double>(total_size);
    const auto target = static_cast<uint32_t>(share * target_pages + 1.0);
    // The zygote's boot work runs the very hottest paths of every library
    // (class preloading, resource decoding): fully head-biased, but it is
    // one workload, not the union of all of them — it covers the hot
    // prefix sparsely (higher skip rate), so a typical app inherits
    // roughly half of its own hot set from the boot work (Table 3's
    // cold-start column).
    PickLibraryPages(lib, image.category, target, /*common_bias=*/1.0, seed,
                     &fp.pages, /*skip_probability=*/0.45);
    fp.zygote_libs_used.push_back(lib);
  }
  return fp;
}

}  // namespace sat
