#include "src/workload/analysis.h"

#include <algorithm>
#include <map>
#include <set>

namespace sat {

CategoryBreakdown AnalyzeCategories(const AppFootprint& fp) {
  CategoryBreakdown out;
  for (const TouchedPage& page : fp.pages) {
    const int c = static_cast<int>(page.category);
    out.pages[c]++;
    out.fetch_share[c] += page.fetch_weight;
  }
  return out;
}

double IntersectionFraction(const AppFootprint& row, const AppFootprint& col,
                            bool zygote_preloaded_only) {
  const auto row_keys = row.SharedPageKeys(zygote_preloaded_only);
  const auto col_keys = col.SharedPageKeys(zygote_preloaded_only);
  std::vector<uint64_t> common;
  std::set_intersection(row_keys.begin(), row_keys.end(), col_keys.begin(),
                        col_keys.end(), std::back_inserter(common));
  const uint32_t total = row.TotalPages();
  if (total == 0) {
    return 0;
  }
  return static_cast<double>(common.size()) / static_cast<double>(total);
}

namespace {

SparsityResult AnalyzeChunks(
    const std::map<std::pair<LibraryId, uint32_t>, uint32_t>& chunk_counts,
    uint64_t touched_pages) {
  SparsityResult out;
  out.touched_pages_4k = touched_pages;
  out.occupied_chunks_64k = chunk_counts.size();
  out.untouched_per_chunk.reserve(chunk_counts.size());
  for (const auto& [chunk, touched] : chunk_counts) {
    out.untouched_per_chunk.push_back(kPtesPerLargePage -
                                      std::min(touched, kPtesPerLargePage));
  }
  return out;
}

void Accumulate(const AppFootprint& fp,
                std::map<std::pair<LibraryId, uint32_t>, uint32_t>* chunks,
                std::set<uint64_t>* pages) {
  for (const TouchedPage& page : fp.pages) {
    if (!IsZygotePreloadedCategory(page.category)) {
      continue;
    }
    const uint64_t key =
        (static_cast<uint64_t>(static_cast<uint32_t>(page.lib)) << 32) |
        page.page_index;
    if (!pages->insert(key).second) {
      continue;
    }
    (*chunks)[{page.lib, page.page_index / kPtesPerLargePage}]++;
  }
}

}  // namespace

SparsityResult AnalyzeSparsity(const AppFootprint& fp) {
  std::map<std::pair<LibraryId, uint32_t>, uint32_t> chunks;
  std::set<uint64_t> pages;
  Accumulate(fp, &chunks, &pages);
  return AnalyzeChunks(chunks, pages.size());
}

SparsityResult AnalyzeSparsityUnion(const std::vector<AppFootprint>& fps) {
  std::map<std::pair<LibraryId, uint32_t>, uint32_t> chunks;
  std::set<uint64_t> pages;
  for (const AppFootprint& fp : fps) {
    Accumulate(fp, &chunks, &pages);
  }
  return AnalyzeChunks(chunks, pages.size());
}

}  // namespace sat
