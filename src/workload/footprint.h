// Footprint generation: materializes an AppProfile into a concrete
// instruction footprint — which pages of which libraries the app touches,
// with what fetch weights — plus its steady-state write behaviour.
//
// The generator is deterministic (profile seeds) and structured so the
// aggregate statistics the paper measures emerge:
//
//   * Per-library "hot anchors": every library has a fixed, library-seeded
//     list of cluster anchor points ordered by popularity. All apps draw
//     most of their clusters from the head of the same anchor list
//     (controlled by AppProfile::common_page_bias), which produces the
//     cross-application overlap of Table 2, and the zygote's boot-time
//     footprint covers the hottest anchors, which produces the inherited-
//     PTE counts of Table 3.
//   * Clustered, scattered touches: footprints are unions of short page
//     clusters (function groups) spread across each library, producing
//     the 64 KB-page sparsity of Figure 4.

#ifndef SRC_WORKLOAD_FOOTPRINT_H_
#define SRC_WORKLOAD_FOOTPRINT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/loader/library.h"
#include "src/workload/app_profile.h"

namespace sat {

// One touched instruction page.
struct TouchedPage {
  LibraryId lib = -1;
  CodeCategory category = CodeCategory::kPrivateCode;
  uint32_t page_index = 0;   // within the library's code segment
  double fetch_weight = 0;   // share of the app's user-mode fetches
};

// One library-data-segment page the app writes during execution.
struct DataWrite {
  LibraryId lib = -1;
  uint32_t page_index = 0;   // within the library's data segment
};

struct AppFootprint {
  std::string app_name;
  double kernel_fraction = 0;

  std::vector<TouchedPage> pages;
  std::vector<DataWrite> data_writes;
  uint32_t anon_pages = 0;
  uint32_t private_file_pages = 0;

  std::vector<LibraryId> zygote_libs_used;  // preloaded objects invoked
  std::vector<LibraryId> other_libs;        // platform + app-private libs
  LibraryId private_code_lib = -1;

  uint32_t TotalPages() const { return static_cast<uint32_t>(pages.size()); }
  uint32_t PagesOf(CodeCategory category) const;
  double FetchShareOf(CodeCategory category) const;

  // Identity keys ((lib << 32) | page) of the touched *shared-code* pages:
  // zygote-preloaded only, or all shared code (adds platform/app libs).
  std::vector<uint64_t> SharedPageKeys(bool zygote_preloaded_only) const;
};

class WorkloadFactory {
 public:
  // Registers the shared platform-library set (the "Nvidia graphics
  // driver" analogues) into `catalog`; per-app libraries are registered
  // lazily by Generate.
  explicit WorkloadFactory(LibraryCatalog* catalog);

  AppFootprint Generate(const AppProfile& profile);

  // The zygote's boot-time footprint: the hottest ~`target_pages` pages of
  // the preload set (these are the PTEs populated in the zygote's page
  // table before any app is forked — 5,900 in the paper's measurement).
  AppFootprint GenerateZygoteFootprint(uint32_t target_pages = 5900,
                                       uint64_t seed = 42);

  const std::vector<LibraryId>& platform_libs() const { return platform_libs_; }
  LibraryCatalog& catalog() { return *catalog_; }

 private:
  // Popularity-ordered cluster anchors for a library (cached).
  const std::vector<uint32_t>& HotAnchors(LibraryId lib);

  // Picks ~`target` pages of `lib` into `out`, clustered, head-biased by
  // `common_bias`, with `rng_seed` controlling the app-specific tail and
  // `skip_probability` controlling how sparsely the common anchor prefix
  // is walked.
  void PickLibraryPages(LibraryId lib, CodeCategory category, uint32_t target,
                        double common_bias, uint64_t rng_seed,
                        std::vector<TouchedPage>* out,
                        double skip_probability = 0.15);

  LibraryCatalog* catalog_;
  std::vector<LibraryId> platform_libs_;
  std::unordered_map<LibraryId, std::vector<uint32_t>> anchor_cache_;
};

}  // namespace sat

#endif  // SRC_WORKLOAD_FOOTPRINT_H_
