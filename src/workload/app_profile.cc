#include "src/workload/app_profile.h"

#include <cassert>

namespace sat {

namespace {

AppProfile Make(const std::string& name, double kernel_fraction,
                uint32_t so_pages, uint32_t java_pages, uint32_t other_pages,
                uint32_t private_pages, uint32_t num_zygote_libs,
                uint32_t num_other_libs, uint32_t data_pages_written,
                uint32_t dirty_libs, uint32_t anon_pages,
                uint32_t private_file_pages, uint64_t seed) {
  AppProfile p;
  p.name = name;
  p.kernel_fraction = kernel_fraction;
  p.zygote_so_pages = so_pages;
  p.zygote_java_pages = java_pages;
  p.app_process_pages = 4;  // ~0.1% of the footprint, matching Figure 2
  p.other_lib_pages = other_pages;
  p.private_pages = private_pages;
  p.num_zygote_libs = num_zygote_libs;
  p.num_other_libs = num_other_libs;
  p.data_pages_written = data_pages_written;
  p.dirty_libs = dirty_libs;
  p.anon_pages_touched = anon_pages;
  p.private_file_pages = private_file_pages;
  p.seed = seed;
  return p;
}

}  // namespace

std::vector<AppProfile> AppProfile::PaperBenchmarks() {
  // Per-app parameters calibrated to Section 2: kernel fractions from
  // Table 1; page-count breakdowns sized to Figure 2's bars; library
  // spread in the paper's reported 40-62 range; write behaviour chosen so
  // the steady-state outcomes land in Figure 10's spread (Angrybirds and
  // Google Calendar write little library data, the office/browser apps a
  // lot).
  std::vector<AppProfile> apps;
  apps.push_back(Make("Angrybirds", 0.078, 1550, 1500, 1100, 330, 48, 9,
                      40, 8, 700, 350, 1001));
  apps.push_back(Make("Adobe Reader", 0.067, 1900, 1600, 1300, 390, 55, 12,
                      150, 20, 900, 600, 1002));
  apps.push_back(Make("Android Browser", 0.142, 2000, 1800, 1300, 390, 58, 11,
                      190, 24, 1300, 700, 1003));
  apps.push_back(Make("Chrome", 0.147, 2400, 1900, 2500, 580, 62, 16,
                      240, 28, 1800, 900, 1004));
  apps.push_back(Make("Chrome Sandbox", 0.112, 900, 700, 750, 140, 42, 8,
                      90, 12, 600, 250, 1005));
  apps.push_back(Make("Chrome Privilege", 0.721, 950, 800, 700, 140, 44, 8,
                      110, 14, 650, 900, 1006));
  apps.push_back(Make("Email", 0.130, 1100, 1100, 600, 190, 50, 7,
                      120, 16, 800, 450, 1007));
  apps.push_back(Make("Google Calendar", 0.038, 1000, 1100, 550, 140, 46, 6,
                      36, 7, 650, 300, 1008));
  apps.push_back(Make("MX Player", 0.407, 2100, 1700, 1600, 390, 56, 13,
                      200, 22, 1200, 1500, 1009));
  apps.push_back(Make("Laya Music Player", 0.174, 1700, 1500, 1100, 290, 52, 10,
                      150, 18, 900, 800, 1010));
  apps.push_back(Make("WPS", 0.529, 2300, 2100, 1900, 590, 60, 15,
                      260, 30, 1700, 1100, 1011));
  return apps;
}

AppProfile AppProfile::Named(const std::string& name) {
  for (AppProfile& profile : PaperBenchmarks()) {
    if (profile.name == name) {
      return profile;
    }
  }
  assert(false && "unknown benchmark name");
  return AppProfile{};
}

}  // namespace sat
