// Kernel event tracing (the observability layer the paper's Section 4.1.1
// counters gesture at): a fixed-capacity ring buffer of typed events with
// simulated-cycle timestamps, per-event-type latency histograms, and two
// exporters — Chrome `trace_event` JSON (loads in about:tracing / Perfetto)
// and a compact text dump.
//
// Counters say *how many* forks, faults, unshares and shootdowns a run
// performed; the trace says *when* each one happened and what it cost, so a
// figure can be replayed as a timeline. Tracing is off by default and adds
// no simulated cycles ever: recording is bookkeeping outside the cost
// model, so enabling it never perturbs an experiment's cycle totals.
//
// Usage from instrumented kernel code (null-tolerant by design, so
// subsystems constructed without a tracer need no guards):
//
//   TraceSpan span(tracer_, TraceEventType::kFork, parent.pid);
//   ... do the work ...
//   span.set_args(child->pid, ptes_copied);
//   span.set_duration(modelled_cycles);   // floor for lump-charged costs
//
//   Tracer::Emit(tracer_, TraceEventType::kTlbIpi, 0, target_core);

#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/stats/cost_model.h"

namespace sat {

// The event taxonomy: every operation kind the simulated kernel reports.
enum class TraceEventType : uint8_t {
  // Process lifecycle.
  kFork = 0,
  kExec,
  kExit,
  kContextSwitch,
  // Page-table sharing (Sections 3.1.1-3.1.2).
  kShareSlot,    // ShareSlotInto at fork
  kUnshareSlot,  // the Figure-6 unshare
  // Page faults, split the way KernelCounters splits them.
  kFaultFile,
  kFaultAnon,
  kFaultCow,
  kFaultHard,
  kFaultSegv,
  kFaultOom,     // fault handler could not allocate (reclaim-and-retry)
  kDomainFault,  // non-member touched a zygote-domain global entry
  // TLB maintenance.
  kTlbShootdown,  // one broadcast operation (machine level)
  kTlbIpi,        // one remote core interrupted by a shootdown
  kTlbFlush,      // one main-TLB flush operation (core level)
  // Reclaim (the rmap-driven shrink path).
  kReclaimPass,
  kReclaimPage,
  // Memory-pressure recovery (allocate → direct reclaim → OOM-kill).
  kDirectReclaim,  // a=pages reclaimed, b=free frames afterwards
  kOomKill,        // a=victim pid, b=victim RSS in pages
  // Anonymous swap (zram).
  kSwapOut,        // a=frame evicted, b=swap slot
  kSwapIn,         // a=faulting va page, b=1 if served by the swap cache
  kKswapd,         // a=pages freed, b=free frames afterwards
  // KSM same-page merging (src/ksm).
  kKsmScan,        // a=pages scanned, b=pages merged this pass
  kKsmMerge,       // a=merged va page, b=stable frame
  kKsmUnmerge,     // a=faulting va page, b=former stable frame
  // Translation-reach engine (src/huge).
  kHugeCollapse,   // a=block base va page, b=1 if frames were migrated
  kHugeSplit,      // a=block base va page, b=trigger (HugeSplitReason)
  // Android launch phases (fork / map / replay / window).
  kAppPhase,
  kCount,  // sentinel, not a recordable type
};

constexpr uint32_t kTraceEventTypeCount =
    static_cast<uint32_t>(TraceEventType::kCount);

const char* TraceEventTypeName(TraceEventType type);

// Phase ids carried in `a` by kAppPhase events.
enum class AppPhase : uint8_t {
  kRun = 0,    // whole touch-replay app run
  kForkApp,    // fork-from-zygote portion
  kMap,        // mapping the app-local regions
  kReplay,     // the footprint replay itself
  kLaunch,     // whole cycle-level launch (fork included)
  kWindow,     // the paper's measured launch window
};

const char* AppPhaseName(AppPhase phase);

// One recorded event. `start == end` marks an instant event. `a` and `b`
// are type-specific payloads (addresses, counts, pids) that the exporters
// label per type.
struct TraceEvent {
  TraceEventType type = TraceEventType::kFork;
  uint32_t pid = 0;   // responsible task, 0 when not task-scoped
  Cycles start = 0;
  Cycles end = 0;
  uint64_t a = 0;
  uint64_t b = 0;

  Cycles duration() const { return end - start; }
};

// Power-of-two-bucketed latency histogram over span durations, in cycles.
// Percentiles are bucket-boundary estimates (exact for min/max), which is
// all "where do fork p99s sit relative to p50" needs.
class LatencyHistogram {
 public:
  void Record(Cycles duration);

  uint64_t count() const { return count_; }
  Cycles min() const { return count_ == 0 ? 0 : min_; }
  Cycles max() const { return max_; }
  Cycles sum() const { return sum_; }
  double Mean() const;

  // p in [0, 1]; returns the upper bound of the bucket holding the p-th
  // sample, clamped to the observed min/max.
  Cycles Percentile(double p) const;

 private:
  static uint32_t BucketOf(Cycles duration);

  std::array<uint64_t, 65> buckets_{};
  uint64_t count_ = 0;
  Cycles min_ = 0;
  Cycles max_ = 0;
  Cycles sum_ = 0;
};

struct TraceConfig {
  // Master switch. Off by default: no events are recorded and every
  // instrumentation site reduces to one predictable branch.
  bool enabled = false;
  // Ring capacity in events; the oldest events are overwritten once the
  // ring is full (`dropped()` counts them).
  uint32_t capacity = 1 << 16;
  // Timestamp scale for the Chrome exporter, simulated cycles per
  // microsecond (the Tegra 3 runs at ~1.2 GHz).
  double cycles_per_us = 1200.0;
};

class Tracer {
 public:
  explicit Tracer(const TraceConfig& config);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return config_.enabled; }
  const TraceConfig& config() const { return config_; }

  // The simulated-cycle clock, supplied by the owner (the kernel wires it
  // to the machine's total cycle count). Monotone; 0 until set.
  void set_clock(std::function<Cycles()> clock) { clock_ = std::move(clock); }
  Cycles Now() const { return clock_ ? clock_() : 0; }

  // Records a complete event (spans funnel through here).
  void Record(const TraceEvent& event);

  // Records an instant event stamped at Now(). The static form tolerates a
  // null tracer so call sites in optional-tracer subsystems stay one line.
  void EmitInstant(TraceEventType type, uint32_t pid = 0, uint64_t a = 0,
                   uint64_t b = 0);
  static void Emit(Tracer* tracer, TraceEventType type, uint32_t pid = 0,
                   uint64_t a = 0, uint64_t b = 0);

  // Events currently held by the ring, oldest first.
  std::vector<TraceEvent> Events() const;

  uint64_t total_recorded() const { return recorded_; }
  uint64_t dropped() const {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }

  const LatencyHistogram& histogram(TraceEventType type) const {
    return histograms_[static_cast<size_t>(type)];
  }

  // Chrome trace_event JSON ({"traceEvents": [...]}), loadable in
  // about:tracing and Perfetto. Timestamps are cycles / cycles_per_us;
  // raw cycle values ride along in args.
  void WriteChromeTrace(std::ostream& os) const;
  bool WriteChromeTraceFile(const std::string& path) const;

  // Compact text dump: per-type latency table (count, p50/p95/p99, max)
  // plus the most recent `tail_events` events.
  void WriteText(std::ostream& os, size_t tail_events = 32) const;
  std::string SummaryText() const;

  void Reset();

 private:
  TraceConfig config_;
  std::function<Cycles()> clock_;
  std::vector<TraceEvent> ring_;  // empty when disabled
  uint64_t recorded_ = 0;
  std::array<LatencyHistogram, kTraceEventTypeCount> histograms_;
};

// RAII span: stamps the start cycle at construction, records the event
// (and feeds its duration to the type's histogram) at destruction. When
// the tracer is null or disabled, construction and destruction are no-ops.
//
// Durations: end = start + max(clock delta, explicit duration). The
// explicit duration exists because the simulator often charges an
// operation's modelled cost in one lump outside the instrumented scope;
// set_duration() lets the span carry that cost on the timeline anyway.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, TraceEventType type, uint32_t pid = 0);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void set_type(TraceEventType type) { event_.type = type; }
  void set_pid(uint32_t pid) { event_.pid = pid; }
  void set_args(uint64_t a, uint64_t b = 0) {
    event_.a = a;
    event_.b = b;
  }
  void set_duration(Cycles cycles) { explicit_duration_ = cycles; }

  bool armed() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;  // null when tracing is off
  TraceEvent event_;
  Cycles explicit_duration_ = 0;
};

}  // namespace sat

#endif  // SRC_TRACE_TRACE_H_
